#!/usr/bin/env bash
# cluster_bench.sh — the serving-cluster scaling experiment.
#
# Measures jobs/s for the same synthetic corpus served by one replica
# versus three fingerprint-routed replicas, appending both runs as
# mcfi-bench records (experiment "serving_cluster", benchmarks
# "replicas=1" / "replicas=3") to one snapshot, and fails unless the
# 3-replica rate is at least RATIO_MIN times the 1-replica rate.
#
# Method (see EXPERIMENTS.md "Serving-cluster scaling"): every replica
# gets an in-memory build cache (-cache-entries) smaller than the
# corpus working set (-distinct), so a single replica thrashes — most
# jobs pay a full MCFI build — while three replicas shard the corpus
# by build fingerprint and each shard fits its owner's cache. On a
# single-core host this isolates the cache-aggregation effect: the
# replicas add no CPU, only cache.
#
# Usage:
#   scripts/cluster_bench.sh [out.json]
# Tunables (env): N1 N3 DISTINCT FUNCS CACHE WORKERS QUEUE CONC BATCH
#                 TENANTS RATIO_MIN BASE_PORT
set -euo pipefail

OUT=${1:-BENCH_$(date +%F)_serving_cluster.json}
N1=${N1:-2500}             # jobs against the single replica
N3=${N3:-10000}            # jobs against the 3-replica set
DISTINCT=${DISTINCT:-64}   # corpus working set (distinct fingerprints)
FUNCS=${FUNCS:-1024}       # functions per synthetic variant (sets build cost)
CACHE=${CACHE:-32}         # per-replica mem-tier capacity, < DISTINCT
WORKERS=${WORKERS:-2}
QUEUE=${QUEUE:-64}
CONC=${CONC:-16}
BATCH=${BATCH:-16}
TENANTS=${TENANTS:-alpha,beta,gamma}
RATIO_MIN=${RATIO_MIN:-2.0}
BASE_PORT=${BASE_PORT:-8481}

cd "$(dirname "$0")/.."
BIN=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$BIN"' EXIT
go build -o "$BIN/mcfi-serve" ./cmd/mcfi-serve
go build -o "$BIN/mcfi-load" ./cmd/mcfi-load

wait_healthy() {
  for _ in $(seq 1 100); do
    curl -sf "$1/v1/healthz" >/dev/null && return 0
    sleep 0.2
  done
  echo "replica $1 never became healthy" >&2
  return 1
}

echo "== phase 1: single replica, $N1 jobs (cache $CACHE < working set $DISTINCT: thrash) =="
"$BIN/mcfi-serve" -addr "127.0.0.1:$BASE_PORT" -workers "$WORKERS" -queue "$QUEUE" \
  -cache-entries "$CACHE" &
SINGLE=$!
wait_healthy "http://127.0.0.1:$BASE_PORT"
"$BIN/mcfi-load" -addrs "http://127.0.0.1:$BASE_PORT" -c "$CONC" -batch "$BATCH" \
  -tenants "$TENANTS" -distinct "$DISTINCT" -synth-funcs "$FUNCS" -n "$N1" \
  -bench-json "$OUT" -bench-label replicas=1
kill -TERM "$SINGLE" && wait "$SINGLE" || true

echo "== phase 2: 3 replicas, $N3 jobs (each shard fits its owner's cache) =="
PEERS=""
for i in 0 1 2; do
  PEERS="$PEERS,http://127.0.0.1:$((BASE_PORT + i))"
done
PEERS=${PEERS#,}
PIDS=""
for i in 0 1 2; do
  url="http://127.0.0.1:$((BASE_PORT + i))"
  "$BIN/mcfi-serve" -addr "127.0.0.1:$((BASE_PORT + i))" -workers "$WORKERS" \
    -queue "$QUEUE" -cache-entries "$CACHE" -self "$url" -peers "$PEERS" &
  PIDS="$PIDS $!"
done
for i in 0 1 2; do
  wait_healthy "http://127.0.0.1:$((BASE_PORT + i))"
done
"$BIN/mcfi-load" -addrs "$PEERS" -c "$CONC" -batch "$BATCH" \
  -tenants "$TENANTS" -distinct "$DISTINCT" -synth-funcs "$FUNCS" -n "$N3" \
  -bench-json "$OUT" -bench-label replicas=3
for pid in $PIDS; do kill -TERM "$pid" 2>/dev/null || true; done
for pid in $PIDS; do wait "$pid" || true; done

python3 - "$OUT" "$RATIO_MIN" <<'EOF'
import json, sys
recs = {r["benchmark"]: r for r in json.load(open(sys.argv[1]))
        if r["experiment"] == "serving_cluster"}
one, three = recs["replicas=1"], recs["replicas=3"]
ratio = three["minstr_per_sec"] / one["minstr_per_sec"]
print(f'replicas=1: {one["minstr_per_sec"]:.1f} jobs/s   '
      f'replicas=3: {three["minstr_per_sec"]:.1f} jobs/s   scaling: {ratio:.2f}x')
if ratio < float(sys.argv[2]):
    sys.exit(f'cluster scaling {ratio:.2f}x below required {sys.argv[2]}x')
EOF
echo "snapshot written to $OUT"
