package baseline_test

import (
	"testing"

	"mcfi/internal/air"
	"mcfi/internal/baseline"
	"mcfi/internal/cfg"
	"mcfi/internal/linker"
	"mcfi/internal/toolchain"
	"mcfi/internal/visa"
)

const progSrc = `
int add(int a, int b) { return a + b; }
int sub(int a, int b) { return a - b; }
void note(void) {}
int (*ops[2])(int, int) = {add, sub};
void (*cb)(void) = note;
int main(void) {
	int acc = 0;
	for (int i = 0; i < 4; i++) acc = ops[i & 1](acc, i);
	cb();
	return acc;
}`

func buildPolicies(t *testing.T) ([]baseline.Policy, *cfg.Graph, *linker.Image) {
	t.Helper()
	img, err := toolchain.New(
		toolchain.WithProfile(visa.Profile64),
		toolchain.WithInstrumentation(),
	).Build(toolchain.Source{Name: "prog", Text: progSrc})
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.Generate(cfg.Input{
		Funcs: img.Aux.Funcs, IBs: img.Aux.IBs, RetSites: img.Aux.RetSites,
		SetjmpConts: img.Aux.SetjmpConts, Annotations: img.Aux.AsmAnnotations,
		Profile: img.Profile,
	})
	return baseline.Evaluate(img, g, len(img.Code)), g, img
}

func policyByName(t *testing.T, ps []baseline.Policy, name string) baseline.Policy {
	t.Helper()
	for _, p := range ps {
		if p.Name == name {
			return p
		}
	}
	t.Fatalf("policy %q missing", name)
	return baseline.Policy{}
}

func TestAIROrdering(t *testing.T) {
	ps, _, img := buildPolicies(t)
	airOf := map[string]float64{}
	for _, p := range ps {
		airOf[p.Name] = air.Compute(p.TargetSizes, len(img.Code))
		t.Logf("%-12s AIR = %.4f", p.Name, airOf[p.Name])
	}
	// The paper's ordering (§8.3): none < chunk CFI < binCFI <=
	// classic CFI <= MCFI, with MCFI the best.
	if airOf["none"] != 0 {
		t.Errorf("none AIR = %v, want 0", airOf["none"])
	}
	if !(airOf["NaCl-32"] > airOf["none"]) {
		t.Error("chunk CFI should beat no CFI")
	}
	if !(airOf["binCFI"] > airOf["NaCl-32"]) {
		t.Error("binCFI should beat chunk CFI")
	}
	if !(airOf["classic CFI"] >= airOf["binCFI"]) {
		t.Error("classic CFI should be at least as strong as binCFI")
	}
	if !(airOf["MCFI"] >= airOf["classic CFI"]) {
		t.Error("MCFI should produce the best AIR (paper Table, §8.3)")
	}
	if airOf["MCFI"] < 0.97 {
		t.Errorf("MCFI AIR = %v, expected > 0.97", airOf["MCFI"])
	}
}

func TestAllowsSemantics(t *testing.T) {
	ps, g, img := buildPolicies(t)
	// Find the indirect call through ops[] and the note() entry.
	var icall int
	for _, ib := range img.Aux.IBs {
		if ib.Kind.String() == "icall" && ib.FpSig != "" && icall == 0 {
			icall = ib.Offset
		}
	}
	if icall == 0 {
		t.Fatal("no indirect call found")
	}
	var noteAddr, addAddr int
	for _, f := range img.Aux.Funcs {
		switch f.Name {
		case "note":
			noteAddr = f.Offset
		case "add":
			addAddr = f.Offset
		}
	}
	mcfi := policyByName(t, ps, "MCFI")
	coarse := policyByName(t, ps, "binCFI")
	classic := policyByName(t, ps, "classic CFI")

	// The int(int,int) call may reach add under every policy.
	if !mcfi.Allows(icall, addAddr) {
		t.Error("MCFI must allow the type-matched target")
	}
	// note (void(void)) is address-taken, so coarse policies allow the
	// hijack, but MCFI's type matching forbids it — the GnuPG argument.
	if !coarse.Allows(icall, noteAddr) {
		t.Error("binCFI-style policy should allow any address-taken function")
	}
	if !classic.Allows(icall, noteAddr) {
		t.Error("classic CFI's published CFG generation allows any address-taken function")
	}
	if mcfi.Allows(icall, noteAddr) {
		t.Error("MCFI must reject the type-mismatched target")
	}
	_ = g
}
