// Package baseline models the comparison CFI policies of the paper's
// evaluation (§3, §8.3): no protection, chunk-based CFI (NaCl/MIP),
// coarse-grained CFI with two target classes (binCFI/CCFIR), and the
// classic CFI whose published CFG generation lets any indirect call
// target any address-taken function. Each policy produces the
// per-branch allowed-target-set sizes that the AIR metric consumes,
// and a membership predicate used by the attack demos.
package baseline

import (
	"mcfi/internal/cfg"
	"mcfi/internal/linker"
	"mcfi/internal/module"
)

// Policy is one CFI policy evaluated over a linked image.
type Policy struct {
	// Name labels the policy in reports ("none", "NaCl", "binCFI",
	// "classic CFI", "MCFI").
	Name string
	// TargetSizes holds |T_j| for each instrumented indirect branch.
	TargetSizes []int
	// Allows reports whether the given branch (by code address) may
	// transfer to the given target address under this policy.
	Allows func(branch, target int) bool
}

// Evaluate computes every comparison policy for an image whose
// fine-grained policy is g. codeSize is the unrestricted target-space
// size S (the image's code bytes).
func Evaluate(img *linker.Image, g *cfg.Graph, codeSize int) []Policy {
	// Shared facts.
	var branches []module.IndirectBranch
	for _, ib := range img.Aux.IBs {
		if ib.Kind == module.IBSwitch {
			continue
		}
		branches = append(branches, ib)
	}
	n := len(branches)

	addrTaken := map[int]bool{} // entry addresses of address-taken functions
	for _, f := range img.Aux.Funcs {
		if f.AddrTaken {
			addrTaken[f.Offset] = true
		}
	}
	retSites := map[int]bool{}
	for _, rs := range img.Aux.RetSites {
		retSites[rs.Offset] = true
	}

	var policies []Policy

	// No CFI: every branch reaches every code byte.
	none := make([]int, n)
	for i := range none {
		none[i] = codeSize
	}
	policies = append(policies, Policy{
		Name:        "none",
		TargetSizes: none,
		Allows:      func(branch, target int) bool { return true },
	})

	// Chunk CFI (NaCl 32-byte, MIP-style): any chunk start.
	for _, chunk := range []int{16, 32} {
		c := chunk
		sizes := make([]int, n)
		for i := range sizes {
			sizes[i] = codeSize / c
		}
		name := "NaCl-32"
		if c == 16 {
			name = "chunk-16"
		}
		policies = append(policies, Policy{
			Name:        name,
			TargetSizes: sizes,
			Allows: func(branch, target int) bool {
				return target%c == 0
			},
		})
	}

	// Coarse two-class CFI (binCFI/CCFIR): indirect calls and jumps may
	// target any address-taken function entry; returns may target any
	// address following a call.
	coarse := make([]int, n)
	coarseKind := map[int]module.IBKind{}
	for i, ib := range branches {
		coarseKind[ib.Offset] = ib.Kind
		if ib.Kind == module.IBRet || ib.Kind == module.IBLongjmp {
			coarse[i] = len(retSites)
		} else {
			coarse[i] = len(addrTaken)
		}
	}
	policies = append(policies, Policy{
		Name:        "binCFI",
		TargetSizes: coarse,
		Allows: func(branch, target int) bool {
			k, ok := coarseKind[branch]
			if !ok {
				return false
			}
			if k == module.IBRet || k == module.IBLongjmp {
				return retSites[target]
			}
			return addrTaken[target]
		},
	})

	// Classic CFI: fine-grained returns (the same call-graph analysis
	// as MCFI) but, per its published CFG generation, any indirect call
	// may target any address-taken function (paper §8.2).
	classic := make([]int, n)
	for i, ib := range branches {
		switch ib.Kind {
		case module.IBCall, module.IBTailJmp, module.IBPLT:
			classic[i] = len(addrTaken)
		default:
			classic[i] = len(g.BranchTargets[ib.Offset])
		}
	}
	policies = append(policies, Policy{
		Name:        "classic CFI",
		TargetSizes: classic,
		Allows: func(branch, target int) bool {
			k, ok := coarseKind[branch]
			if !ok {
				return false
			}
			switch k {
			case module.IBCall, module.IBTailJmp, module.IBPLT:
				return addrTaken[target]
			}
			for _, t := range g.BranchTargets[branch] {
				if t == target {
					return true
				}
			}
			return false
		},
	})

	// MCFI: each branch reaches its merged equivalence class.
	mcfiSizes := make([]int, n)
	branchClass := map[int][]int{}
	for i, ib := range branches {
		ecn, ok := g.BranchECN[ib.Offset]
		if !ok {
			mcfiSizes[i] = 0
			continue
		}
		members := g.ClassMembers[ecn]
		branchClass[ib.Offset] = members
		mcfiSizes[i] = len(members)
	}
	policies = append(policies, Policy{
		Name:        "MCFI",
		TargetSizes: mcfiSizes,
		Allows: func(branch, target int) bool {
			for _, t := range branchClass[branch] {
				if t == target {
					return true
				}
			}
			return false
		},
	})

	return policies
}
