package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestHistogramBucketsAreCumulative(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	h.Observe(5 * time.Millisecond)   // bucket 0.01
	h.Observe(50 * time.Millisecond)  // bucket 0.1
	h.Observe(500 * time.Millisecond) // bucket 1
	h.Observe(5 * time.Second)        // +Inf
	s := h.Snapshot()
	if got, want := s.Buckets, []int64{1, 2, 3}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("buckets = %v, want %v", got, want)
	}
	if s.Count != 4 {
		t.Errorf("count = %d, want 4", s.Count)
	}
	wantSum := 5.555
	if s.SumSecs < wantSum-1e-9 || s.SumSecs > wantSum+1e-9 {
		t.Errorf("sum = %v, want %v", s.SumSecs, wantSum)
	}
	// An observation exactly on a bound lands in that bound's bucket
	// (le is inclusive).
	h2 := NewHistogram([]float64{0.01})
	h2.Observe(10 * time.Millisecond)
	if s2 := h2.Snapshot(); s2.Buckets[0] != 1 {
		t.Errorf("le bound not inclusive: %v", s2.Buckets)
	}
}

// validateExposition is the same well-formedness check CI runs against
// /v1/metrics?format=prom: every sample's family has a TYPE line, no
// family appears in two blocks, no NaN/Inf values, histogram buckets
// are cumulative and end in +Inf.
func validateExposition(t *testing.T, text []byte) {
	t.Helper()
	typed := map[string]bool{}
	closed := map[string]bool{} // families whose block has ended
	var last string
	sc := bufio.NewScanner(bytes.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			name := parts[2]
			if typed[name] {
				t.Fatalf("duplicate TYPE for %s", name)
			}
			typed[name] = true
			if last != "" && last != name {
				closed[last] = true
			}
			last = name
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if typed[strings.TrimSuffix(name, suf)] {
				family = strings.TrimSuffix(name, suf)
				break
			}
		}
		if !typed[family] {
			t.Fatalf("sample %q has no TYPE line", name)
		}
		if closed[family] {
			t.Fatalf("family %s reopened after another family's block", family)
		}
		if family != last {
			closed[last] = true
			last = family
		}
		val := line[strings.LastIndex(line, " ")+1:]
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		if f != f || f > 1e308 || f < -1e308 {
			t.Fatalf("non-finite value in %q", line)
		}
	}
}

func TestPromExpositionWellFormed(t *testing.T) {
	p := NewProm()
	p.Counter("mcfi_jobs_total", "jobs completed", 42)
	p.CounterVec("mcfi_outcomes_total", "by outcome", []Label{{"outcome", "ok"}}, 40)
	p.CounterVec("mcfi_outcomes_total", "by outcome", []Label{{"outcome", "cfi_violation"}}, 2)
	p.Gauge("mcfi_queue_depth", "queued jobs", 3)
	hv := NewHistVec([]float64{0.01, 0.1})
	hv.Observe("alice", 5*time.Millisecond)
	hv.Observe("alice", 50*time.Millisecond)
	hv.Observe("bob\"x\n", 2*time.Second) // hostile label value
	p.Histogram("mcfi_queue_wait_seconds", "queue wait", "tenant", hv.Snapshot())
	out := p.Bytes()
	validateExposition(t, out)

	text := string(out)
	for _, want := range []string{
		"# TYPE mcfi_jobs_total counter",
		"# TYPE mcfi_queue_wait_seconds histogram",
		`mcfi_outcomes_total{outcome="cfi_violation"} 2`,
		`mcfi_queue_wait_seconds_bucket{le="+Inf",tenant="alice"} 2`,
		`tenant="bob\"x\n"`,
		"mcfi_queue_wait_seconds_count{tenant=\"alice\"} 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// A duplicate family keeps one TYPE line.
	if strings.Count(text, "# TYPE mcfi_outcomes_total") != 1 {
		t.Errorf("duplicate TYPE lines:\n%s", text)
	}
}

func TestRecorderSamplingIsDeterministic(t *testing.T) {
	all := NewRecorder(1, 8)
	none := NewRecorder(0, 8)
	half1 := NewRecorder(0.5, 8)
	half2 := NewRecorder(0.5, 8)
	kept := 0
	for i := 0; i < 400; i++ {
		id := Mint()
		if len(id) != 16 {
			t.Fatalf("Mint() = %q, want 16 hex chars", id)
		}
		if !all.Sampled(id) {
			t.Fatalf("sample=1 dropped %s", id)
		}
		if none.Sampled(id) {
			t.Fatalf("sample=0 kept %s", id)
		}
		// The decision is a pure function of (id, rate): what one
		// replica keeps, every replica keeps.
		if half1.Sampled(id) != half2.Sampled(id) {
			t.Fatalf("sampling decision not deterministic for %s", id)
		}
		if half1.Sampled(id) {
			kept++
		}
	}
	if kept < 120 || kept > 280 {
		t.Errorf("sample=0.5 kept %d/400, want roughly half", kept)
	}
	// Unsampled spans are dropped entirely.
	none.Record(Span{Trace: "deadbeefdeadbeef", Name: SpanRun})
	if st := none.Stats(); st.Spans != 0 || st.Retained != 0 {
		t.Errorf("sample=0 recorded spans: %+v", st)
	}
}

func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(1, 3)
	ids := []string{"aaaa", "bbbb", "cccc", "dddd"}
	for _, id := range ids {
		r.Record(Span{Trace: id, Name: SpanRun, DurNs: 1})
	}
	if _, ok := r.Get("aaaa"); ok {
		t.Error("oldest trace not evicted")
	}
	for _, id := range ids[1:] {
		if _, ok := r.Get(id); !ok {
			t.Errorf("trace %s missing", id)
		}
	}
	st := r.Stats()
	if st.Retained != 3 || st.Evicted != 1 || st.Sampled != 4 {
		t.Errorf("stats = %+v", st)
	}
	// Spans append in arrival order; the per-trace cap holds.
	for i := 0; i < maxSpansPerTrace+10; i++ {
		r.Record(Span{Trace: "bbbb", Name: SpanQueue})
	}
	tr, _ := r.Get("bbbb")
	if len(tr.Spans) != maxSpansPerTrace {
		t.Errorf("span cap: %d spans, want %d", len(tr.Spans), maxSpansPerTrace)
	}
}

// TestAuditRingWraparound: the ring keeps the newest records in order
// once capacity is exceeded, the total keeps counting, and the NDJSON
// sink sees every record exactly once.
func TestAuditRingWraparound(t *testing.T) {
	var sink bytes.Buffer
	l := NewAuditLog(4, &sink)
	for i := 0; i < 10; i++ {
		l.Emit(AuditRecord{PC: int64(1000 + i), Target: int64(i), Check: "indirect"})
	}
	recs := l.Records()
	if len(recs) != 4 {
		t.Fatalf("retained %d records, want 4", len(recs))
	}
	for i, r := range recs {
		wantSeq := int64(7 + i)
		if r.Seq != wantSeq || r.PC != 1000+wantSeq-1 {
			t.Errorf("record %d: seq=%d pc=%#x, want seq=%d", i, r.Seq, r.PC, wantSeq)
		}
		if r.TimeUnixNs == 0 {
			t.Errorf("record %d: no timestamp", i)
		}
	}
	if l.Total() != 10 {
		t.Errorf("total = %d, want 10", l.Total())
	}
	// Every emit reached the sink as one parseable NDJSON line.
	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	if len(lines) != 10 {
		t.Fatalf("sink got %d lines, want 10", len(lines))
	}
	for i, line := range lines {
		var r AuditRecord
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("line %d unparseable: %v", i, err)
		}
		if r.Seq != int64(i+1) {
			t.Errorf("sink line %d: seq=%d", i, r.Seq)
		}
	}
	if l.SinkErrs() != 0 {
		t.Errorf("sink errors: %d", l.SinkErrs())
	}
}
