package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// DefaultAuditBuffer is the default audit-ring capacity.
const DefaultAuditBuffer = 1024

// AuditRecord is one CFI-violation forensics record: enough context to
// answer who ran what, where the check halted, and which branch target
// the policy refused — the violation forensics the CFI evaluation
// literature treats as a first-class output of an enforcement system.
type AuditRecord struct {
	// Seq is the record's position in the log since process start
	// (monotonic, 1-based); TimeUnixNs timestamps the emit.
	Seq        int64 `json:"seq"`
	TimeUnixNs int64 `json:"time_unix_ns"`
	// Trace links the violation to its job trace (empty if unsampled).
	Trace string `json:"trace,omitempty"`
	// Tenant/Replica/Job/Engine identify the execution context;
	// Fingerprint is the content hash of the build that violated.
	Tenant      string `json:"tenant,omitempty"`
	Replica     string `json:"replica,omitempty"`
	Job         string `json:"job,omitempty"`
	Engine      string `json:"engine,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	// PC is the faulting hlt's address; Target the masked branch target
	// the check refused (0 for a direct/raw hlt); Check the template
	// kind: "direct", "indirect", or "plt".
	PC     int64  `json:"pc"`
	Target int64  `json:"target"`
	Check  string `json:"check"`
	Msg    string `json:"msg,omitempty"`
	// Instret is the guest's retired-instruction count at the halt.
	Instret int64 `json:"instret,omitempty"`
}

// AuditLog is a bounded ring of the most recent CFI-violation records,
// optionally teeing every record as one NDJSON line to a sink (the
// -audit-log file). Emitting never fails the caller: sink errors are
// counted, not propagated — a full disk must not change verdicts.
type AuditLog struct {
	mu       sync.Mutex
	ring     []AuditRecord
	start    int // index of oldest record
	n        int // filled entries
	seq      int64
	sink     io.Writer
	sinkErrs int64
}

// NewAuditLog builds a log retaining the last capacity records (<=0 →
// DefaultAuditBuffer). sink, when non-nil, receives every record as a
// newline-terminated JSON object.
func NewAuditLog(capacity int, sink io.Writer) *AuditLog {
	if capacity <= 0 {
		capacity = DefaultAuditBuffer
	}
	return &AuditLog{ring: make([]AuditRecord, capacity), sink: sink}
}

// Emit records one violation, assigning its sequence number and
// timestamp, and returns the stored record.
func (l *AuditLog) Emit(rec AuditRecord) AuditRecord {
	l.mu.Lock()
	l.seq++
	rec.Seq = l.seq
	rec.TimeUnixNs = time.Now().UnixNano()
	if l.n < len(l.ring) {
		l.ring[(l.start+l.n)%len(l.ring)] = rec
		l.n++
	} else {
		l.ring[l.start] = rec
		l.start = (l.start + 1) % len(l.ring)
	}
	sink := l.sink
	l.mu.Unlock()
	if sink != nil {
		line, err := json.Marshal(rec)
		if err == nil {
			line = append(line, '\n')
			_, err = sink.Write(line)
		}
		if err != nil {
			l.mu.Lock()
			l.sinkErrs++
			l.mu.Unlock()
		}
	}
	return rec
}

// Records returns the retained records, oldest first.
func (l *AuditLog) Records() []AuditRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]AuditRecord, 0, l.n)
	for i := 0; i < l.n; i++ {
		out = append(out, l.ring[(l.start+i)%len(l.ring)])
	}
	return out
}

// Total reports how many records have ever been emitted (>= len of
// Records once the ring wraps).
func (l *AuditLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// SinkErrs reports how many records failed to reach the sink.
func (l *AuditLog) SinkErrs() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinkErrs
}
