package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets are the histogram bucket upper bounds in
// seconds, spanning sub-millisecond queue waits through minute-scale
// guest runs.
var DefaultLatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is a fixed-bucket latency histogram with lock-free
// observation (Prometheus classic-histogram semantics: cumulative
// buckets plus sum and count are derived at render time).
type Histogram struct {
	bounds []float64 // upper bounds in seconds, ascending
	counts []atomic.Int64
	count  atomic.Int64
	sumNs  atomic.Int64
}

// NewHistogram builds a histogram over the given bucket upper bounds
// (nil → DefaultLatencyBuckets). Bounds must be ascending.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1), // +Inf overflow
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	secs := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, secs)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(d.Nanoseconds())
}

// HistSnapshot is a render-ready histogram state: Buckets[i] is the
// cumulative count at Bounds[i]; Count covers +Inf.
type HistSnapshot struct {
	Bounds  []float64
	Buckets []int64
	Count   int64
	SumSecs float64
}

// Snapshot reads the histogram. Concurrent observers may land between
// the bucket reads and the totals; Count is recomputed from the bucket
// reads so the exposition is always internally consistent (bucket sums
// equal count), which the Prometheus format requires.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Bounds: h.bounds, Buckets: make([]int64, len(h.bounds))}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if i < len(s.Buckets) {
			s.Buckets[i] = cum
		}
	}
	s.Count = cum
	s.SumSecs = float64(h.sumNs.Load()) / 1e9
	return s
}

// HistVec is a histogram family keyed by one label value (tenant,
// engine, store tier, ...). Label values are created on first use.
type HistVec struct {
	bounds []float64
	mu     sync.Mutex
	hists  map[string]*Histogram
}

// NewHistVec builds a labeled histogram family (nil bounds →
// DefaultLatencyBuckets).
func NewHistVec(bounds []float64) *HistVec {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	return &HistVec{bounds: bounds, hists: map[string]*Histogram{}}
}

// With returns the histogram for one label value.
func (v *HistVec) With(label string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.hists[label]
	if !ok {
		h = NewHistogram(v.bounds)
		v.hists[label] = h
	}
	return h
}

// Observe records a duration under a label value.
func (v *HistVec) Observe(label string, d time.Duration) { v.With(label).Observe(d) }

// Snapshot returns every label's histogram state, sorted by label.
func (v *HistVec) Snapshot() []LabeledHist {
	v.mu.Lock()
	labels := make([]string, 0, len(v.hists))
	for l := range v.hists {
		labels = append(labels, l)
	}
	hists := make(map[string]*Histogram, len(v.hists))
	for l, h := range v.hists {
		hists[l] = h
	}
	v.mu.Unlock()
	sort.Strings(labels)
	out := make([]LabeledHist, 0, len(labels))
	for _, l := range labels {
		out = append(out, LabeledHist{Label: l, Hist: hists[l].Snapshot()})
	}
	return out
}

// LabeledHist pairs a label value with its histogram snapshot.
type LabeledHist struct {
	Label string
	Hist  HistSnapshot
}
