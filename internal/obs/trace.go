// Package obs is the serving stack's observability plane: per-job
// traces (one bounded in-memory ring of span sets, sampled at ingress
// and propagated across replica hops), latency histograms with
// Prometheus text exposition, and the CFI security audit log.
//
// The package is deliberately free of HTTP and server types — it holds
// the data structures; internal/server wires them to endpoints. All
// types are safe for concurrent use.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// Span names used across the serving pipeline. A job's trace is the
// ordered set of these phases; a proxied job additionally carries the
// proxying replica's relay span.
const (
	SpanAdmission = "admission" // ingress → admitted by the DWRR scheduler
	SpanQueue     = "queue"     // admitted → dequeued by a worker
	SpanBuild     = "build"     // store probe + (on miss) compile + link
	SpanStore     = "store"     // build sub-phase: tier probe / inflight wait
	SpanCompile   = "compile"   // build sub-phase: TU + libc compiles
	SpanLink      = "link"      // build sub-phase: static link
	SpanRun       = "run"       // guest execution in its vm.Process
	SpanRelay     = "relay"     // proxy hop to the owning replica
)

// Span is one timed phase of a job, attributed to a trace.
type Span struct {
	Trace   string            `json:"trace"`
	Name    string            `json:"name"`
	Replica string            `json:"replica,omitempty"`
	StartNs int64             `json:"start_unix_ns"`
	DurNs   int64             `json:"dur_ns"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Trace is the span set recorded under one trace ID, in arrival order.
type Trace struct {
	ID    string `json:"id"`
	Spans []Span `json:"spans"`
}

// maxSpansPerTrace bounds one trace's span set: /v1/trace/{id} accepts
// pushed spans from peers, and an unbounded set would let a hostile
// peer grow one entry without limit.
const maxSpansPerTrace = 512

// DefaultTraceBuffer is the default trace-ring capacity.
const DefaultTraceBuffer = 1024

// RecorderStats is a Recorder counter snapshot (exported on /metrics).
type RecorderStats struct {
	Sampled  int64 `json:"traces_sampled"`
	Spans    int64 `json:"spans_recorded"`
	Evicted  int64 `json:"traces_evicted"`
	Retained int   `json:"traces_retained"`
}

// Recorder is a bounded in-memory ring of sampled traces. Sampling is
// deterministic in the trace ID, so every replica that sees a
// propagated ID makes the same keep/drop decision without coordination.
type Recorder struct {
	sample   float64 // fraction of traces kept, (0, 1]
	capacity int

	mu     sync.Mutex
	traces map[string]*Trace
	order  []string // insertion order, FIFO eviction

	sampled atomic.Int64
	spans   atomic.Int64
	evicted atomic.Int64
}

// NewRecorder builds a recorder keeping the given fraction of traces
// (clamped to [0, 1]; 0 records nothing) in a ring of at most capacity
// traces (<=0 → DefaultTraceBuffer).
func NewRecorder(sample float64, capacity int) *Recorder {
	if sample < 0 {
		sample = 0
	}
	if sample > 1 {
		sample = 1
	}
	if capacity <= 0 {
		capacity = DefaultTraceBuffer
	}
	return &Recorder{
		sample:   sample,
		capacity: capacity,
		traces:   make(map[string]*Trace),
	}
}

// Mint returns a fresh 16-hex-digit trace ID.
func Mint() string {
	var b [8]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// Sampled reports whether spans under this trace ID are recorded. The
// decision hashes the ID against the sample rate, so it is identical on
// every replica running the same rate — a proxied job is either traced
// end to end or not at all.
func (r *Recorder) Sampled(id string) bool {
	if r == nil || r.sample <= 0 || id == "" {
		return false
	}
	if r.sample >= 1 {
		return true
	}
	h := fnv.New64a()
	h.Write([]byte(id))
	const buckets = 1 << 20
	return float64(h.Sum64()%buckets) < r.sample*buckets
}

// Record appends a span to its trace, creating the trace (and evicting
// the oldest, if at capacity) on first sight. Spans for unsampled
// trace IDs are dropped.
func (r *Recorder) Record(sp Span) {
	if !r.Sampled(sp.Trace) {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	tr, ok := r.traces[sp.Trace]
	if !ok {
		for len(r.order) >= r.capacity {
			delete(r.traces, r.order[0])
			r.order = r.order[1:]
			r.evicted.Add(1)
		}
		tr = &Trace{ID: sp.Trace}
		r.traces[sp.Trace] = tr
		r.order = append(r.order, sp.Trace)
		r.sampled.Add(1)
	}
	if len(tr.Spans) >= maxSpansPerTrace {
		return
	}
	tr.Spans = append(tr.Spans, sp)
	r.spans.Add(1)
}

// Get returns a copy of the trace recorded under id.
func (r *Recorder) Get(id string) (Trace, bool) {
	if r == nil {
		return Trace{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	tr, ok := r.traces[id]
	if !ok {
		return Trace{}, false
	}
	out := Trace{ID: tr.ID, Spans: append([]Span(nil), tr.Spans...)}
	return out, true
}

// SampleRate reports the configured sampling fraction.
func (r *Recorder) SampleRate() float64 {
	if r == nil {
		return 0
	}
	return r.sample
}

// Stats snapshots the recorder's counters.
func (r *Recorder) Stats() RecorderStats {
	if r == nil {
		return RecorderStats{}
	}
	r.mu.Lock()
	retained := len(r.order)
	r.mu.Unlock()
	return RecorderStats{
		Sampled:  r.sampled.Load(),
		Spans:    r.spans.Load(),
		Evicted:  r.evicted.Load(),
		Retained: retained,
	}
}
