package obs

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Prom renders metrics in the Prometheus text exposition format
// (version 0.0.4). Families are emitted in the order first added, each
// exactly once (a duplicate family name is silently merged into the
// first, preserving the format's one-TYPE-per-name rule), with all of
// a family's series contiguous under its HELP/TYPE header. NaN and
// infinite values are dropped rather than emitted — a scraper should
// never see a non-finite sample from us.
type Prom struct {
	buf   bytes.Buffer
	typed map[string]bool
}

// Label is one name="value" pair.
type Label struct {
	Name, Value string
}

// NewProm returns an empty exposition.
func NewProm() *Prom { return &Prom{typed: map[string]bool{}} }

// header writes the HELP/TYPE block once per family.
func (p *Prom) header(name, typ, help string) bool {
	if p.typed[name] {
		return false
	}
	p.typed[name] = true
	if help != "" {
		fmt.Fprintf(&p.buf, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(&p.buf, "# TYPE %s %s\n", name, typ)
	return true
}

func (p *Prom) sample(name string, labels []Label, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	p.buf.WriteString(name)
	writeLabels(&p.buf, labels)
	fmt.Fprintf(&p.buf, " %s\n", formatValue(v))
}

// Counter emits one counter family with a single unlabeled sample.
func (p *Prom) Counter(name, help string, v float64) {
	p.CounterVec(name, help, []Label(nil), v)
}

// CounterVec emits one labeled counter sample, opening the family on
// first use. Callers must group a family's samples together.
func (p *Prom) CounterVec(name, help string, labels []Label, v float64) {
	p.header(name, "counter", help)
	p.sample(name, labels, v)
}

// Gauge emits one gauge family with a single unlabeled sample.
func (p *Prom) Gauge(name, help string, v float64) {
	p.GaugeVec(name, help, nil, v)
}

// GaugeVec emits one labeled gauge sample.
func (p *Prom) GaugeVec(name, help string, labels []Label, v float64) {
	p.header(name, "gauge", help)
	p.sample(name, labels, v)
}

// Histogram emits a histogram family from a HistVec snapshot, one
// series per label value of labelName.
func (p *Prom) Histogram(name, help, labelName string, series []LabeledHist) {
	p.header(name, "histogram", help)
	for _, s := range series {
		base := []Label(nil)
		if labelName != "" {
			base = []Label{{labelName, s.Label}}
		}
		for i, bound := range s.Hist.Bounds {
			p.sample(name+"_bucket",
				append(append([]Label(nil), base...), Label{"le", formatValue(bound)}),
				float64(s.Hist.Buckets[i]))
		}
		p.sample(name+"_bucket",
			append(append([]Label(nil), base...), Label{"le", "+Inf"}),
			float64(s.Hist.Count))
		p.sample(name+"_sum", base, s.Hist.SumSecs)
		p.sample(name+"_count", base, float64(s.Hist.Count))
	}
}

// Bytes returns the rendered exposition.
func (p *Prom) Bytes() []byte { return p.buf.Bytes() }

func writeLabels(b *bytes.Buffer, labels []Label) {
	if len(labels) == 0 {
		return
	}
	sorted := append([]Label(nil), labels...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, `%s="%s"`, l.Name, escapeLabel(l.Value))
	}
	b.WriteByte('}')
}

// formatValue renders a float the way Prometheus expects: integers
// without a decimal point, everything else in shortest-round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// escapeLabel escapes a label value per the exposition format: only
// backslash, double quote, and newline are escaped; everything else is
// UTF-8 verbatim.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
