package tables

import (
	"sync"
	"sync/atomic"
)

// This file implements the synchronization alternatives that the paper
// micro-benchmarks against MCFI's custom transactions (§8.1, "Evaluating
// MCFI's transaction algorithm"):
//
//	MCFI   — the fused-word speculative scheme in Tables.Check
//	TML    — Transactional Mutex Locks [6]: a global sequence lock read
//	         before and after the data reads
//	RWL    — a readers/writer lock
//	Mutex  — a compare-and-swap spinlock
//
// All four run over the same table layout so the benchmark isolates the
// synchronization cost. The paper reports normalized check costs of
// 1 : 2 : 29 : 22 (MCFI : TML : RWL : Mutex).

// Checker is a synchronization strategy for check/update transactions
// over a Tables instance.
type Checker interface {
	// Name identifies the strategy in benchmark output.
	Name() string
	// Check decides whether the indirect branch with the given Bary
	// index may transfer to target.
	Check(baryIndex, target int) Verdict
	// Reversion performs an ECN-preserving table re-version (the
	// Fig. 6 update workload) under this strategy's write protocol.
	Reversion()
}

// MCFIChecker adapts Tables' native transactions to the Checker
// interface.
type MCFIChecker struct{ T *Tables }

// Name implements Checker.
func (c *MCFIChecker) Name() string { return "MCFI" }

// Check implements Checker using the fused-word transaction.
func (c *MCFIChecker) Check(baryIndex, target int) Verdict {
	return c.T.Check(baryIndex, target)
}

// Reversion implements Checker.
func (c *MCFIChecker) Reversion() { c.T.Reversion(UpdateOpts{}) }

// TMLChecker implements Transactional Mutex Locks: writers increment a
// global sequence counter to odd on entry and even on exit; readers
// sample the counter before and after their reads and retry on any
// change. Unlike MCFI's scheme it needs two extra shared-counter loads
// per check — the paper measured this at ~2x MCFI's cost.
type TMLChecker struct {
	T   *Tables
	seq atomic.Uint64
}

// Name implements Checker.
func (c *TMLChecker) Name() string { return "TML" }

// Check implements Checker with a seqlock read protocol.
func (c *TMLChecker) Check(baryIndex, target int) Verdict {
	for {
		s1 := c.seq.Load()
		if s1&1 == 1 {
			continue // writer active
		}
		bid := c.T.BaryID(baryIndex)
		tid := c.T.TaryID(target)
		if c.seq.Load() != s1 {
			continue // raced with a writer; retry
		}
		// With TML the version field is redundant (the seqlock already
		// serialized us against writers) but we keep the same ID layout.
		if bid == tid {
			return Pass
		}
		if !tid.LowBitSet() || bid.ECN() != tid.ECN() {
			return Violation
		}
		return Pass
	}
}

// Reversion implements Checker.
func (c *TMLChecker) Reversion() {
	c.seq.Add(1) // odd: writer in progress
	c.T.Reversion(UpdateOpts{})
	c.seq.Add(1) // even: done
}

// RWLChecker wraps every check in a readers/writer lock. Acquiring
// even the read side is a shared-memory RMW, which is why the paper
// measures it an order of magnitude slower under read-heavy load.
type RWLChecker struct {
	T  *Tables
	mu sync.RWMutex
}

// Name implements Checker.
func (c *RWLChecker) Name() string { return "RWL" }

// Check implements Checker under the read lock.
func (c *RWLChecker) Check(baryIndex, target int) Verdict {
	c.mu.RLock()
	defer c.mu.RUnlock()
	bid := c.T.BaryID(baryIndex)
	tid := c.T.TaryID(target)
	if bid == tid {
		return Pass
	}
	if !tid.LowBitSet() || bid.ECN() != tid.ECN() {
		return Violation
	}
	return Pass
}

// Reversion implements Checker under the write lock.
func (c *RWLChecker) Reversion() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.T.Reversion(UpdateOpts{})
}

// MutexChecker serializes checks and updates with a compare-and-swap
// spinlock (the paper's "mutex implemented by atomic Compare-And-Swap").
type MutexChecker struct {
	T    *Tables
	lock atomic.Uint32
}

// Name implements Checker.
func (c *MutexChecker) Name() string { return "Mutex" }

func (c *MutexChecker) acquire() {
	for !c.lock.CompareAndSwap(0, 1) {
	}
}

func (c *MutexChecker) release() { c.lock.Store(0) }

// Check implements Checker under the spinlock.
func (c *MutexChecker) Check(baryIndex, target int) Verdict {
	c.acquire()
	bid := c.T.BaryID(baryIndex)
	tid := c.T.TaryID(target)
	c.release()
	if bid == tid {
		return Pass
	}
	if !tid.LowBitSet() || bid.ECN() != tid.ECN() {
		return Violation
	}
	return Pass
}

// Reversion implements Checker under the spinlock.
func (c *MutexChecker) Reversion() {
	c.acquire()
	defer c.release()
	c.T.Reversion(UpdateOpts{})
}

// NewCheckers returns one checker of each strategy over fresh tables
// initialized identically by init — convenience for the §8.1
// micro-benchmark and its tests.
func NewCheckers(codeLimit, maxBranches int, init func(*Tables)) []Checker {
	mk := func() *Tables {
		t := New(codeLimit, maxBranches)
		init(t)
		return t
	}
	return []Checker{
		&MCFIChecker{T: mk()},
		&TMLChecker{T: mk()},
		&RWLChecker{T: mk()},
		&MutexChecker{T: mk()},
	}
}
