package tables

import (
	"sync"
	"testing"
	"testing/quick"

	"mcfi/internal/id"
)

// setupTwoClasses installs a tiny CFG: target address 0 is in class 1
// (reached by branch 0), target address 4 is in class 2 (reached by
// branch 1).
func setupTwoClasses(t *Tables) {
	taryECN := func(addr int) int {
		switch addr {
		case 0:
			return 1
		case 4:
			return 2
		}
		return -1
	}
	baryECN := func(i int) int {
		switch i {
		case 0:
			return 1
		case 1:
			return 2
		}
		return -1
	}
	t.Update(taryECN, baryECN, UpdateOpts{})
}

func TestCheckBasic(t *testing.T) {
	tb := New(64, 4)
	setupTwoClasses(tb)

	if got := tb.Check(0, 0); got != Pass {
		t.Errorf("branch 0 -> addr 0: %v, want pass", got)
	}
	if got := tb.Check(1, 4); got != Pass {
		t.Errorf("branch 1 -> addr 4: %v, want pass", got)
	}
	if got := tb.Check(0, 4); got != Violation {
		t.Errorf("branch 0 -> addr 4 (wrong class): %v, want violation", got)
	}
	if got := tb.Check(0, 8); got != Violation {
		t.Errorf("branch 0 -> addr 8 (not a target): %v, want violation", got)
	}
	if got := tb.Check(0, 2); got != Violation {
		t.Errorf("branch 0 -> addr 2 (misaligned): %v, want violation", got)
	}
	if got := tb.Check(0, -8); got != Violation {
		t.Errorf("branch 0 -> negative addr: %v, want violation", got)
	}
	if got := tb.Check(0, 1<<20); got != Violation {
		t.Errorf("branch 0 -> out of range: %v, want violation", got)
	}
}

func TestUpdateChangesPolicy(t *testing.T) {
	tb := New(64, 4)
	setupTwoClasses(tb)
	if tb.Check(0, 4) != Violation {
		t.Fatal("precondition: 0->4 denied")
	}
	// New CFG merges both targets into class 1 for branch 0.
	tb.Update(
		func(addr int) int {
			if addr == 0 || addr == 4 {
				return 1
			}
			return -1
		},
		func(i int) int {
			if i == 0 {
				return 1
			}
			return -1
		},
		UpdateOpts{})
	if got := tb.Check(0, 4); got != Pass {
		t.Errorf("after policy update, 0 -> 4 = %v, want pass", got)
	}
	if tb.Version() != 2 {
		t.Errorf("version = %d, want 2", tb.Version())
	}
	if tb.Updates() != 2 {
		t.Errorf("updates = %d, want 2", tb.Updates())
	}
}

func TestReversionPreservesECNs(t *testing.T) {
	tb := New(64, 4)
	setupTwoClasses(tb)
	before := tb.TaryID(0).ECN()
	tb.Reversion(UpdateOpts{})
	after := tb.TaryID(0)
	if after.ECN() != before {
		t.Errorf("reversion changed ECN: %d -> %d", before, after.ECN())
	}
	if after.Version() != 2 {
		t.Errorf("reversion version = %d, want 2", after.Version())
	}
	if tb.Check(0, 0) != Pass {
		t.Error("check must still pass after reversion")
	}
}

func TestLoad32Routing(t *testing.T) {
	tb := New(64, 4)
	setupTwoClasses(tb)
	// Tary entry for addr 4.
	if got := id.ID(tb.Load32(4)); !got.Valid() || got.ECN() != 2 {
		t.Errorf("Load32(4) = %08x", got)
	}
	// Bary entry 1 lives at BaryBase + 4.
	if got := id.ID(tb.Load32(int64(tb.BaryBase() + 4))); !got.Valid() || got.ECN() != 2 {
		t.Errorf("Load32(bary 1) = %08x", got)
	}
	// Misaligned loads return the straddled bytes (hardware behavior),
	// which the reserved bits make invalid as an ID.
	if got := id.ID(tb.Load32(3)); got.Valid() {
		t.Errorf("misaligned Load32 yields valid ID %08x", uint32(got))
	}
	if tb.Load32(-4) != 0 {
		t.Error("negative Load32 should be 0")
	}
	if tb.Load32(int64(tb.BaryBase()+4*100)) != 0 {
		t.Error("past-end Load32 should be 0")
	}
}

func TestMisalignedTaryLoadNeverValid(t *testing.T) {
	tb := New(256, 1)
	// Fill every entry with a valid ID.
	tb.Update(func(addr int) int { return (addr / 4) % 7 },
		func(i int) int { return 0 }, UpdateOpts{})
	for addr := 1; addr < 252; addr++ {
		if addr%4 == 0 {
			continue
		}
		if tb.TaryID(addr).Valid() {
			t.Fatalf("misaligned TaryID(%d) is valid", addr)
		}
	}
}

// TestConcurrentCheckUpdateInvariant is the linearizability property
// from §5.2: while update transactions concurrently re-version all
// IDs, every check must still return the verdict of a consistent CFG —
// allowed edges never spuriously fail, forbidden edges never
// spuriously pass.
func TestConcurrentCheckUpdateInvariant(t *testing.T) {
	tb := New(1024, 16)
	taryECN := func(addr int) int {
		if addr%8 == 0 {
			return (addr / 8 % 8) + 1
		}
		return -1
	}
	baryECN := func(i int) int {
		if i < 8 {
			return i + 1
		}
		return -1
	}
	tb.Update(taryECN, baryECN, UpdateOpts{})

	const checkers = 4
	const iters = 20000
	stop := make(chan struct{})
	var updWG sync.WaitGroup

	// Updater thread: continuous re-versioning (an aggressive Fig. 6).
	updWG.Add(1)
	go func() {
		defer updWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tb.Reversion(UpdateOpts{Parallel: false})
			}
		}
	}()

	errc := make(chan string, 3*checkers)
	var chkWG sync.WaitGroup
	for c := 0; c < checkers; c++ {
		chkWG.Add(1)
		go func(seed int) {
			defer chkWG.Done()
			for i := 0; i < iters; i++ {
				branch := (i + seed) % 8
				// Allowed: branch b -> address 8*b.
				if v := tb.Check(branch, 8*branch); v != Pass {
					errc <- "allowed edge failed"
					return
				}
				// Forbidden: branch b -> address of another class.
				other := 8 * ((branch + 1) % 8)
				if v := tb.Check(branch, other); v != Violation {
					errc <- "forbidden edge passed"
					return
				}
				// Never a target.
				if v := tb.Check(branch, 4); v != Violation {
					errc <- "non-target passed"
					return
				}
			}
		}(c)
	}
	chkWG.Wait()
	close(stop)
	updWG.Wait()
	close(errc)
	for msg := range errc {
		t.Error(msg)
	}
	if tb.Updates() < 2 {
		t.Logf("warning: only %d updates ran during the race window", tb.Updates())
	}
}

func TestParallelPublish(t *testing.T) {
	tb := New(1<<17, 4) // large enough to trigger the parallel path
	tb.Update(func(addr int) int { return addr / 4 % 100 },
		func(i int) int { return i }, UpdateOpts{Parallel: true})
	// Spot-check several entries.
	for _, addr := range []int{0, 4, 400, 1 << 16} {
		got := tb.TaryID(addr)
		if !got.Valid() || got.ECN() != addr/4%100 {
			t.Errorf("TaryID(%d) = %08x, ECN %d", addr, uint32(got), got.ECN())
		}
	}
}

func TestSTMCheckersAgree(t *testing.T) {
	checkers := NewCheckers(64, 4, setupTwoClasses)
	cases := []struct {
		branch, target int
		want           Verdict
	}{
		{0, 0, Pass}, {1, 4, Pass}, {0, 4, Violation}, {0, 8, Violation},
	}
	for _, ck := range checkers {
		for _, c := range cases {
			if got := ck.Check(c.branch, c.target); got != c.want {
				t.Errorf("%s: check(%d, %d) = %v, want %v",
					ck.Name(), c.branch, c.target, got, c.want)
			}
		}
		ck.Reversion()
		for _, c := range cases {
			if got := ck.Check(c.branch, c.target); got != c.want {
				t.Errorf("%s after reversion: check(%d, %d) = %v, want %v",
					ck.Name(), c.branch, c.target, got, c.want)
			}
		}
	}
}

func TestSTMCheckersConcurrent(t *testing.T) {
	for _, ck := range NewCheckers(1024, 16, func(tb *Tables) {
		tb.Update(func(addr int) int {
			if addr%8 == 0 {
				return addr/8%8 + 1
			}
			return -1
		}, func(i int) int {
			if i < 8 {
				return i + 1
			}
			return -1
		}, UpdateOpts{})
	}) {
		ck := ck
		t.Run(ck.Name(), func(t *testing.T) {
			var wg sync.WaitGroup
			stop := make(chan struct{})
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						ck.Reversion()
					}
				}
			}()
			bad := false
			for i := 0; i < 5000 && !bad; i++ {
				b := i % 8
				if ck.Check(b, 8*b) != Pass {
					t.Errorf("%s: allowed edge failed at %d", ck.Name(), i)
					bad = true
				}
				if ck.Check(b, 8*((b+1)%8)) != Violation {
					t.Errorf("%s: forbidden edge passed at %d", ck.Name(), i)
					bad = true
				}
			}
			close(stop)
			wg.Wait()
		})
	}
}

func TestABARisk(t *testing.T) {
	tb := New(16, 1)
	if tb.ABARisk() {
		t.Error("fresh tables should not report ABA risk")
	}
	// Simulate many updates cheaply.
	for i := 0; i < 100; i++ {
		tb.Reversion(UpdateOpts{})
	}
	if tb.ABARisk() {
		t.Error("100 updates is far from 2^14")
	}
}

func TestVersionWrapsAt14Bits(t *testing.T) {
	tb := New(16, 1)
	tb.Update(func(int) int { return 1 }, func(int) int { return 1 }, UpdateOpts{})
	for i := 0; i < id.MaxVersion+5; i++ {
		tb.Reversion(UpdateOpts{})
	}
	if v := tb.Version(); v >= id.MaxVersion {
		t.Errorf("version %d out of 14-bit range", v)
	}
	// Checks still pass after wraparound.
	if tb.Check(0, 0) != Pass {
		t.Error("check fails after version wraparound")
	}
}

func TestPropCheckTotal(t *testing.T) {
	tb := New(256, 8)
	setupTwoClasses(tb)
	f := func(branch int16, target int32) bool {
		v := tb.Check(int(branch)%16, int(target)%512)
		return v == Pass || v == Violation
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestStringSummary(t *testing.T) {
	tb := New(64, 4)
	setupTwoClasses(tb)
	s := tb.String()
	if s == "" {
		t.Error("empty summary")
	}
}
