// Package tables implements MCFI's runtime ID tables — the Bary
// (branch-ID) and Tary (target-ID) tables — and the transactions that
// access them (paper §5).
//
// Both tables live in a dedicated table region outside the sandbox,
// modelled as a []uint32 accessed only through sync/atomic (the VM's
// TLOAD/TLOADI instructions route here, standing in for the paper's
// %gs-relative loads). The Tary table is an array indexed by
// code address / 4: every four-byte-aligned code address has an entry,
// either a valid ID or all zeros. The Bary table is a dense array of
// branch IDs; the loader patches each check sequence with its constant
// Bary index (paper §5.1).
//
// Update transactions (paper Fig. 3) serialize on an update lock,
// increment the global version, rebuild the Tary table, publish it
// entry-by-atomic-entry (the movnti parallel copy), execute a memory
// barrier, and only then update the Bary table — so concurrent check
// transactions observe either the old CFG or the new CFG, never a mix.
//
// Check transactions (paper Fig. 4) are implemented twice: natively in
// the VM's instrumentation sequence, and here in Check for host-side
// use (the dynamic linker, tests, and the STM micro-benchmarks).
package tables

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"mcfi/internal/id"
)

// Verdict is the outcome of a check transaction.
type Verdict int

// Check outcomes.
const (
	// Pass: branch ID equals target ID; control transfer allowed.
	Pass Verdict = iota
	// Violation: the target is not a valid indirect-branch target or
	// belongs to a different equivalence class. Execution must halt.
	Violation
)

// String names the verdict.
func (v Verdict) String() string {
	if v == Pass {
		return "pass"
	}
	return "violation"
}

// Tables is the MCFI table region.
type Tables struct {
	// tary has one entry per four bytes of code region.
	tary []uint32
	// bary is the dense branch-ID array.
	bary []uint32
	// version is the current 14-bit global version number.
	version uint32
	// updMu is the global update lock (Fig. 3 line 3).
	updMu sync.Mutex
	// updates counts completed update transactions, for ABA tracking
	// (§5.2 "The ABA Problem").
	updates atomic.Int64
	// sinceQuiescence counts update transactions since the last
	// observed quiescence point — the counter the paper proposes to
	// keep below 2^14: "if every thread is observed to finish using
	// old-version IDs (e.g., when each thread invokes a system call),
	// the counter is reset to zero".
	sinceQuiescence atomic.Int64
	// retries counts check-transaction retries observed by host-side
	// Check calls (telemetry for the Fig. 6 experiment).
	retries atomic.Int64
	// codeLimit is the capacity of the Tary table in code bytes.
	codeLimit int
	// covered is the currently loaded code extent: update transactions
	// rebuild only [0, covered), keeping their cost proportional to
	// the program like the paper's code-sized Tary table. Reads may
	// still probe the whole capacity (uncovered entries are zero).
	covered atomic.Int64
	// hooks run at the end of every update transaction, while updMu is
	// still held — after the new Bary IDs are published. Subscribers
	// (the VM's fused-check verdict cache) use them to drop state bound
	// to the previous CFG. Each hook receives the code-byte extent
	// [lo, hi) whose Tary entries the transaction may have changed;
	// full transactions pass the whole covered range.
	hooks []func(lo, hi int)
	// scratch is the reusable staging buffer update transactions batch-
	// construct fresh IDs into before publishing. One buffer suffices:
	// updates are serialized by updMu.
	scratch []uint32
}

// BaryBase is the byte offset of the Bary table within the table
// region as seen by TLOADI (the Tary table starts at offset 0,
// mirroring "the Tary table starts at %gs").
func (t *Tables) BaryBase() int { return t.codeLimit }

// New creates tables covering codeLimit bytes of code and maxBranches
// indirect branches. codeLimit is rounded up to a multiple of 4.
func New(codeLimit, maxBranches int) *Tables {
	codeLimit = (codeLimit + 3) &^ 3
	t := &Tables{
		tary:      make([]uint32, codeLimit/4),
		bary:      make([]uint32, maxBranches),
		codeLimit: codeLimit,
	}
	t.covered.Store(int64(codeLimit))
	return t
}

// SetCovered bounds the code extent that update transactions rebuild
// (rounded up to a word). The loader raises it as modules are linked.
func (t *Tables) SetCovered(limit int) {
	if limit < 0 {
		limit = 0
	}
	if limit > t.codeLimit {
		limit = t.codeLimit
	}
	t.covered.Store(int64((limit + 3) &^ 3))
}

// coveredWords returns the number of Tary words updates must rebuild.
func (t *Tables) coveredWords() int { return int(t.covered.Load()) / 4 }

// CodeLimit returns the size of the code region covered by Tary.
func (t *Tables) CodeLimit() int { return t.codeLimit }

// Version returns the current global version number.
func (t *Tables) Version() int { return int(atomic.LoadUint32(&t.version)) }

// Updates returns the number of completed update transactions.
func (t *Tables) Updates() int64 { return t.updates.Load() }

// OnUpdate subscribes fn to run at the end of every update transaction
// (Update, Reversion, and UpdateDelta), after the new IDs are published
// and before the update lock is released. fn must be fast and must not
// call back into update transactions; it may run concurrently with
// check transactions, which is exactly the situation it exists to
// signal.
func (t *Tables) OnUpdate(fn func()) {
	t.OnUpdateExtent(func(int, int) { fn() })
}

// OnUpdateExtent is OnUpdate with the changed code-byte extent [lo, hi)
// passed to the hook, so subscribers can invalidate only the state
// bound to code whose Tary entries may actually have moved. Full
// transactions (Update/Reversion) report the entire covered range;
// UpdateDelta reports the delta extent.
func (t *Tables) OnUpdateExtent(fn func(lo, hi int)) {
	t.updMu.Lock()
	defer t.updMu.Unlock()
	t.hooks = append(t.hooks, fn)
}

// notifyUpdate runs the subscribed hooks; the caller holds updMu.
func (t *Tables) notifyUpdate(lo, hi int) {
	for _, fn := range t.hooks {
		fn(lo, hi)
	}
}

// Retries returns the number of host-side check retries observed.
func (t *Tables) Retries() int64 { return t.retries.Load() }

// Load32 performs the table-region read used by the VM's TLOAD/TLOADI:
// a single atomic 32-bit load at a byte offset. Offsets in
// [0, codeLimit) read the Tary table; offsets past BaryBase() read the
// Bary table. Misaligned or out-of-range offsets return 0 — an invalid
// ID, so the check transaction treats them as violations, exactly as a
// stray read of unmapped table memory would behave.
func (t *Tables) Load32(byteOff int64) uint32 {
	if byteOff < 0 {
		return 0
	}
	if byteOff < int64(t.codeLimit) {
		if byteOff&3 != 0 {
			// A real 4-byte load at a misaligned address returns the
			// straddled bytes of the neighboring IDs — which the
			// reserved-bit layout guarantees can never form a valid ID
			// (paper §5.1). Reproduce the exact bytes hardware would
			// observe.
			return t.misalignedLoad(int(byteOff))
		}
		return atomic.LoadUint32(&t.tary[byteOff/4])
	}
	if byteOff&3 != 0 {
		return 0
	}
	bi := (byteOff - int64(t.codeLimit)) / 4
	if bi < int64(len(t.bary)) {
		return atomic.LoadUint32(&t.bary[bi])
	}
	return 0
}

// TaryID returns the target ID stored for a code address (atomic).
// Misaligned addresses yield an invalid ID by construction.
func (t *Tables) TaryID(addr int) id.ID {
	if addr < 0 || addr >= t.codeLimit {
		return 0
	}
	if addr&3 != 0 {
		// A real 4-byte load at a misaligned address straddles entries;
		// reconstruct the exact bytes it would observe.
		return id.ID(t.misalignedLoad(addr))
	}
	return id.ID(atomic.LoadUint32(&t.tary[addr/4]))
}

func (t *Tables) misalignedLoad(addr int) uint32 {
	var v uint32
	for i := 0; i < 4; i++ {
		a := addr + i
		var b byte
		if a >= 0 && a < t.codeLimit {
			w := atomic.LoadUint32(&t.tary[a/4])
			b = byte(w >> (8 * (a % 4)))
		}
		v |= uint32(b) << (8 * i)
	}
	return v
}

// BaryID returns the branch ID at a Bary index (atomic).
func (t *Tables) BaryID(index int) id.ID {
	if index < 0 || index >= len(t.bary) {
		return 0
	}
	return id.ID(atomic.LoadUint32(&t.bary[index]))
}

// NumBranches returns the Bary table capacity.
func (t *Tables) NumBranches() int { return len(t.bary) }

// Check runs a check transaction (TxCheck, paper Fig. 4): given the
// Bary index embedded at the branch site and the dynamic target
// address, it decides whether the transfer is allowed. On a version
// mismatch — an update transaction is concurrently publishing a new
// CFG — it retries until the relevant IDs agree.
func (t *Tables) Check(baryIndex, target int) Verdict {
	for {
		bid := t.BaryID(baryIndex) // movl %gs:ConstBaryIndex, %edi
		tid := t.TaryID(target)    // movl %gs:(%rcx), %esi
		if bid == tid {            // cmpl %edi, %esi — the fast path:
			return Pass // validity, version, and ECN in one compare
		}
		if !tid.LowBitSet() { // testb $1, %sil
			return Violation // invalid target (misaligned or not an IBT)
		}
		if !id.SameVersion(bid, tid) { // cmpw %di, %si
			// The paper's loader guarantees branch IDs are always valid
			// (§5.1), so a version mismatch can only mean a concurrent
			// update. Defensively, an invalid branch ID (unset or out of
			// range Bary index) is reported as a violation rather than
			// retried forever.
			if !bid.Valid() {
				return Violation
			}
			t.retries.Add(1)
			continue // jne Try — concurrent update in flight
		}
		return Violation // same version, different ECN: CFI violation
	}
}

// ECNFunc maps a code address to its equivalence-class number, or a
// negative value when the address is not an indirect-branch target
// (paper §5.2 getTaryECN) or the index holds no branch (getBaryECN).
type ECNFunc func(addrOrIndex int) int

// UpdateOpts tunes an update transaction.
type UpdateOpts struct {
	// Parallel publishes the new Tary table with multiple goroutines,
	// modelling the paper's movnti parallel memory copy. Sequential
	// publication is the ablation baseline (BenchmarkAblationCopy).
	Parallel bool
	// Between, if non-nil, runs after the Tary phase and before the
	// Bary phase — the slot where the dynamic linker rewrites GOT
	// entries (paper §5.2, PLT discussion), serialized by the same
	// barrier discipline.
	Between func()
}

// scratchWords returns the zeroed staging buffer for n words, growing
// it as the covered extent grows. Callers hold updMu.
func (t *Tables) scratchWords(n int) []uint32 {
	if cap(t.scratch) < n {
		t.scratch = make([]uint32, n)
		return t.scratch
	}
	s := t.scratch[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// transact is the shared body of the full update transactions (Update
// and Reversion): acquire the update lock, consume a fresh version,
// batch-construct the new Tary contents into the scratch buffer,
// publish, barrier, run the Between slot, rewrite every Bary entry.
func (t *Tables) transact(opts UpdateOpts, fillTary func(fresh []uint32, ver int), baryID func(i, ver int) uint32) {
	t.updMu.Lock() // globalUpdateLock.acquire()
	defer t.updMu.Unlock()

	ver := int(t.version+1) % id.MaxVersion
	atomic.StoreUint32(&t.version, uint32(ver))

	// updTaryTable: construct the new table, then publish it with
	// atomic per-entry stores (each ID update is atomic; entries are
	// independent, enabling the parallel copy).
	nw := t.coveredWords()
	fresh := t.scratchWords(nw)
	fillTary(fresh, ver)
	t.publish(t.tary[:nw], fresh, opts.Parallel)

	// sfence: all Tary writes complete before any Bary write. Go's
	// atomic stores are sequentially consistent, which subsumes the
	// paper's store-ordering barrier; the call below marks the
	// linearization point.
	memoryBarrier()

	if opts.Between != nil {
		opts.Between()
		memoryBarrier()
	}

	// updBaryTable.
	for i := range t.bary {
		atomic.StoreUint32(&t.bary[i], baryID(i, ver))
	}
	t.updates.Add(1)
	t.sinceQuiescence.Add(1)
	t.notifyUpdate(0, nw*4)
}

// Update runs an update transaction (TxUpdate, paper Fig. 3): it
// acquires the global update lock, increments the version, installs
// new Tary IDs for every four-byte-aligned code address, issues the
// memory barrier, then installs new Bary IDs.
func (t *Tables) Update(getTaryECN, getBaryECN ECNFunc, opts UpdateOpts) {
	t.transact(opts, func(fresh []uint32, ver int) {
		for w := range fresh {
			if ecn := getTaryECN(w * 4); ecn >= 0 {
				fresh[w] = uint32(id.Encode(ecn, ver))
			}
		}
	}, func(i, ver int) uint32 {
		if ecn := getBaryECN(i); ecn >= 0 {
			return uint32(id.Encode(ecn, ver))
		}
		return 0
	})
}

// Reversion re-publishes every existing ID under a new version while
// preserving ECNs — the synthetic 50 Hz update used in the Fig. 6
// experiment ("updates the version numbers of all IDs in the ID tables
// (but preserving the ECNs)").
func (t *Tables) Reversion(opts UpdateOpts) {
	t.transact(opts, func(fresh []uint32, ver int) {
		for w := range fresh {
			if old := id.ID(atomic.LoadUint32(&t.tary[w])); old.Valid() {
				fresh[w] = uint32(id.Encode(old.ECN(), ver))
			}
		}
	}, func(i, ver int) uint32 {
		if old := id.ID(atomic.LoadUint32(&t.bary[i])); old.Valid() {
			return uint32(id.Encode(old.ECN(), ver))
		}
		return uint32(atomic.LoadUint32(&t.bary[i]))
	})
}

// UpdateDelta runs a delta update transaction: instead of rebuilding
// and republishing the whole covered Tary range, it publishes only the
// IDs a module load actually changed — the freshly covered extent
// [covered, newLimit) plus any already-covered words and Bary entries
// whose equivalence class moved — so a dlopen costs O(module), not
// O(program).
//
// The delta is version-NEUTRAL: new IDs are encoded under the current
// global version and the version is not bumped. This is what makes
// partial publication safe. The check transaction's retry fires only
// on a version mismatch between a valid branch ID and a valid target
// ID; were the delta to consume a new version while leaving untouched
// words at the old one, a checker could pair a new-version branch ID
// with an old-version target ID of the same class and spin forever.
// At a single version every published ID is immediately consistent
// with every untouched ID, so checks decide without retrying.
//
// Version-neutrality is sound because a delta never moves an existing
// address to a *different* valid class — callers fall back to a full
// Update when classes merge across modules. Each word therefore goes
// monotonically from invalid (or absent) to its one new ID, every
// individual store is atomic, and any interleaving a checker observes
// is either the old policy (target invalid → violation, as before the
// load) or the new one. Because no version is consumed, delta updates
// do not advance the ABA counter: a parked checker that saw version v
// still finds version v, not a 2^14-wrapped reincarnation (§5.2's ABA
// guard continues to govern the full-update path only).
//
// taryECN maps code addresses (4-byte aligned) to their new ECNs and
// baryECN maps Bary indexes likewise; a negative ECN clears the entry.
// The freshly covered extent is batch-built into the reusable scratch
// buffer and published in one pass; entries inside the old extent are
// compare-before-store so untouched words generate no coherence
// traffic. Returns the number of table words actually stored.
func (t *Tables) UpdateDelta(newLimit int, taryECN, baryECN map[int]int, opts UpdateOpts) int {
	t.updMu.Lock()
	defer t.updMu.Unlock()

	oldCov := int(t.covered.Load())
	if newLimit < oldCov {
		newLimit = oldCov
	}
	if newLimit > t.codeLimit {
		newLimit = t.codeLimit
	}
	newCov := (newLimit + 3) &^ 3
	oldNW, nw := oldCov/4, newCov/4
	ver := int(atomic.LoadUint32(&t.version)) // version-neutral: see above
	stored := 0
	lo := oldCov // changed-extent low bound, for the invalidation hooks

	// Changed words inside the already-covered extent (e.g. an old
	// function newly made address-taken): compare-before-store.
	for addr, ecn := range taryECN {
		if addr < 0 || addr >= oldCov || addr&3 != 0 {
			continue
		}
		var nid uint32
		if ecn >= 0 {
			nid = uint32(id.Encode(ecn, ver))
		}
		if atomic.LoadUint32(&t.tary[addr/4]) != nid {
			atomic.StoreUint32(&t.tary[addr/4], nid)
			stored++
			if addr < lo {
				lo = addr
			}
		}
	}

	// The freshly covered extent is batch-built once into the scratch
	// buffer, then published like a full transaction's Tary phase
	// (publish itself skips the goroutine fan-out for small deltas).
	if nw > oldNW {
		fresh := t.scratchWords(nw - oldNW)
		for w := range fresh {
			if ecn, ok := taryECN[(oldNW+w)*4]; ok && ecn >= 0 {
				fresh[w] = uint32(id.Encode(ecn, ver))
			}
		}
		t.publish(t.tary[oldNW:nw], fresh, opts.Parallel)
		stored += nw - oldNW
	}
	t.covered.Store(int64(newCov))

	memoryBarrier()
	if opts.Between != nil {
		opts.Between()
		memoryBarrier()
	}

	for i, ecn := range baryECN {
		if i < 0 || i >= len(t.bary) {
			continue
		}
		var nid uint32
		if ecn >= 0 {
			nid = uint32(id.Encode(ecn, ver))
		}
		if atomic.LoadUint32(&t.bary[i]) != nid {
			atomic.StoreUint32(&t.bary[i], nid)
			stored++
		}
	}
	t.updates.Add(1)
	// No version was consumed, so sinceQuiescence stays put: the ABA
	// hazard exists only when versions can wrap past a parked checker.
	t.notifyUpdate(lo, newCov)
	return stored
}

// publish copies fresh into dst with atomic stores, optionally fanned
// out over goroutines (the movnti parallel copy). The fan-out width
// follows the host's parallelism; small inputs — full tables of small
// programs and most delta extents — stay sequential, where the
// goroutine handoff would cost more than the copy.
func (t *Tables) publish(dst, fresh []uint32, parallel bool) {
	shards := runtime.GOMAXPROCS(0)
	if !parallel || shards < 2 || len(dst) < 1<<14 {
		for w := range dst {
			atomic.StoreUint32(&dst[w], fresh[w])
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (len(dst) + shards - 1) / shards
	for s := 0; s < shards; s++ {
		lo := s * chunk
		hi := lo + chunk
		if hi > len(dst) {
			hi = len(dst)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for w := lo; w < hi; w++ {
				atomic.StoreUint32(&dst[w], fresh[w])
			}
		}(lo, hi)
	}
	wg.Wait()
}

// memoryBarrier is the paper's sfence. Go's sync/atomic operations are
// sequentially consistent, so a no-op suffices for correctness; the
// function exists to mark the linearization points in the code.
func memoryBarrier() {}

// ABARisk reports whether the version space could have wrapped while a
// check transaction was parked: 2^14 update transactions have completed
// since the last quiescence point (§5.2). The runtime refuses further
// policy updates while this holds; QuiescencePoint clears it.
func (t *Tables) ABARisk() bool {
	return t.sinceQuiescence.Load() >= id.MaxVersion-1
}

// UpdatesSinceQuiescence returns the paper's ABA counter.
func (t *Tables) UpdatesSinceQuiescence() int64 { return t.sinceQuiescence.Load() }

// QuiescencePoint resets the ABA counter. The runtime calls it when
// every thread has been observed outside a check transaction (at a
// system call) since the most recent update transaction.
func (t *Tables) QuiescencePoint() { t.sinceQuiescence.Store(0) }

// Snapshot returns a copy of the live Tary and Bary contents, used by
// the verifier and by debugging tools.
func (t *Tables) Snapshot() (tary, bary []uint32) {
	tary = make([]uint32, len(t.tary))
	for i := range t.tary {
		tary[i] = atomic.LoadUint32(&t.tary[i])
	}
	bary = make([]uint32, len(t.bary))
	for i := range t.bary {
		bary[i] = atomic.LoadUint32(&t.bary[i])
	}
	return tary, bary
}

// String summarizes table occupancy.
func (t *Tables) String() string {
	tary, bary := t.Snapshot()
	nt, nb := 0, 0
	for _, w := range tary {
		if id.ID(w).Valid() {
			nt++
		}
	}
	for _, w := range bary {
		if id.ID(w).Valid() {
			nb++
		}
	}
	return fmt.Sprintf("tables{code=%dB, tary=%d/%d, bary=%d/%d, ver=%d}",
		t.codeLimit, nt, len(tary), nb, len(bary), t.Version())
}
