// Package tables implements MCFI's runtime ID tables — the Bary
// (branch-ID) and Tary (target-ID) tables — and the transactions that
// access them (paper §5).
//
// Both tables live in a dedicated table region outside the sandbox,
// modelled as a []uint32 accessed only through sync/atomic (the VM's
// TLOAD/TLOADI instructions route here, standing in for the paper's
// %gs-relative loads). The Tary table is an array indexed by
// code address / 4: every four-byte-aligned code address has an entry,
// either a valid ID or all zeros. The Bary table is a dense array of
// branch IDs; the loader patches each check sequence with its constant
// Bary index (paper §5.1).
//
// Update transactions (paper Fig. 3) serialize on an update lock,
// increment the global version, rebuild the Tary table, publish it
// entry-by-atomic-entry (the movnti parallel copy), execute a memory
// barrier, and only then update the Bary table — so concurrent check
// transactions observe either the old CFG or the new CFG, never a mix.
//
// Check transactions (paper Fig. 4) are implemented twice: natively in
// the VM's instrumentation sequence, and here in Check for host-side
// use (the dynamic linker, tests, and the STM micro-benchmarks).
package tables

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mcfi/internal/id"
)

// Verdict is the outcome of a check transaction.
type Verdict int

// Check outcomes.
const (
	// Pass: branch ID equals target ID; control transfer allowed.
	Pass Verdict = iota
	// Violation: the target is not a valid indirect-branch target or
	// belongs to a different equivalence class. Execution must halt.
	Violation
)

// String names the verdict.
func (v Verdict) String() string {
	if v == Pass {
		return "pass"
	}
	return "violation"
}

// Tables is the MCFI table region.
type Tables struct {
	// tary has one entry per four bytes of code region.
	tary []uint32
	// bary is the dense branch-ID array.
	bary []uint32
	// version is the current 14-bit global version number.
	version uint32
	// updMu is the global update lock (Fig. 3 line 3).
	updMu sync.Mutex
	// updates counts completed update transactions, for ABA tracking
	// (§5.2 "The ABA Problem").
	updates atomic.Int64
	// sinceQuiescence counts update transactions since the last
	// observed quiescence point — the counter the paper proposes to
	// keep below 2^14: "if every thread is observed to finish using
	// old-version IDs (e.g., when each thread invokes a system call),
	// the counter is reset to zero".
	sinceQuiescence atomic.Int64
	// retries counts check-transaction retries observed by host-side
	// Check calls (telemetry for the Fig. 6 experiment).
	retries atomic.Int64
	// codeLimit is the capacity of the Tary table in code bytes.
	codeLimit int
	// covered is the currently loaded code extent: update transactions
	// rebuild only [0, covered), keeping their cost proportional to
	// the program like the paper's code-sized Tary table. Reads may
	// still probe the whole capacity (uncovered entries are zero).
	covered atomic.Int64
	// hooks run at the end of every update transaction, while updMu is
	// still held — after the new Bary IDs are published. Subscribers
	// (the VM's fused-check verdict cache) use them to drop state bound
	// to the previous CFG.
	hooks []func()
}

// BaryBase is the byte offset of the Bary table within the table
// region as seen by TLOADI (the Tary table starts at offset 0,
// mirroring "the Tary table starts at %gs").
func (t *Tables) BaryBase() int { return t.codeLimit }

// New creates tables covering codeLimit bytes of code and maxBranches
// indirect branches. codeLimit is rounded up to a multiple of 4.
func New(codeLimit, maxBranches int) *Tables {
	codeLimit = (codeLimit + 3) &^ 3
	t := &Tables{
		tary:      make([]uint32, codeLimit/4),
		bary:      make([]uint32, maxBranches),
		codeLimit: codeLimit,
	}
	t.covered.Store(int64(codeLimit))
	return t
}

// SetCovered bounds the code extent that update transactions rebuild
// (rounded up to a word). The loader raises it as modules are linked.
func (t *Tables) SetCovered(limit int) {
	if limit < 0 {
		limit = 0
	}
	if limit > t.codeLimit {
		limit = t.codeLimit
	}
	t.covered.Store(int64((limit + 3) &^ 3))
}

// coveredWords returns the number of Tary words updates must rebuild.
func (t *Tables) coveredWords() int { return int(t.covered.Load()) / 4 }

// CodeLimit returns the size of the code region covered by Tary.
func (t *Tables) CodeLimit() int { return t.codeLimit }

// Version returns the current global version number.
func (t *Tables) Version() int { return int(atomic.LoadUint32(&t.version)) }

// Updates returns the number of completed update transactions.
func (t *Tables) Updates() int64 { return t.updates.Load() }

// OnUpdate subscribes fn to run at the end of every update transaction
// (Update and Reversion), after the new IDs are published and before
// the update lock is released. fn must be fast and must not call back
// into update transactions; it may run concurrently with check
// transactions, which is exactly the situation it exists to signal.
func (t *Tables) OnUpdate(fn func()) {
	t.updMu.Lock()
	defer t.updMu.Unlock()
	t.hooks = append(t.hooks, fn)
}

// notifyUpdate runs the subscribed hooks; the caller holds updMu.
func (t *Tables) notifyUpdate() {
	for _, fn := range t.hooks {
		fn()
	}
}

// Retries returns the number of host-side check retries observed.
func (t *Tables) Retries() int64 { return t.retries.Load() }

// Load32 performs the table-region read used by the VM's TLOAD/TLOADI:
// a single atomic 32-bit load at a byte offset. Offsets in
// [0, codeLimit) read the Tary table; offsets past BaryBase() read the
// Bary table. Misaligned or out-of-range offsets return 0 — an invalid
// ID, so the check transaction treats them as violations, exactly as a
// stray read of unmapped table memory would behave.
func (t *Tables) Load32(byteOff int64) uint32 {
	if byteOff < 0 {
		return 0
	}
	if byteOff < int64(t.codeLimit) {
		if byteOff&3 != 0 {
			// A real 4-byte load at a misaligned address returns the
			// straddled bytes of the neighboring IDs — which the
			// reserved-bit layout guarantees can never form a valid ID
			// (paper §5.1). Reproduce the exact bytes hardware would
			// observe.
			return t.misalignedLoad(int(byteOff))
		}
		return atomic.LoadUint32(&t.tary[byteOff/4])
	}
	if byteOff&3 != 0 {
		return 0
	}
	bi := (byteOff - int64(t.codeLimit)) / 4
	if bi < int64(len(t.bary)) {
		return atomic.LoadUint32(&t.bary[bi])
	}
	return 0
}

// TaryID returns the target ID stored for a code address (atomic).
// Misaligned addresses yield an invalid ID by construction.
func (t *Tables) TaryID(addr int) id.ID {
	if addr < 0 || addr >= t.codeLimit {
		return 0
	}
	if addr&3 != 0 {
		// A real 4-byte load at a misaligned address straddles entries;
		// reconstruct the exact bytes it would observe.
		return id.ID(t.misalignedLoad(addr))
	}
	return id.ID(atomic.LoadUint32(&t.tary[addr/4]))
}

func (t *Tables) misalignedLoad(addr int) uint32 {
	var v uint32
	for i := 0; i < 4; i++ {
		a := addr + i
		var b byte
		if a >= 0 && a < t.codeLimit {
			w := atomic.LoadUint32(&t.tary[a/4])
			b = byte(w >> (8 * (a % 4)))
		}
		v |= uint32(b) << (8 * i)
	}
	return v
}

// BaryID returns the branch ID at a Bary index (atomic).
func (t *Tables) BaryID(index int) id.ID {
	if index < 0 || index >= len(t.bary) {
		return 0
	}
	return id.ID(atomic.LoadUint32(&t.bary[index]))
}

// NumBranches returns the Bary table capacity.
func (t *Tables) NumBranches() int { return len(t.bary) }

// Check runs a check transaction (TxCheck, paper Fig. 4): given the
// Bary index embedded at the branch site and the dynamic target
// address, it decides whether the transfer is allowed. On a version
// mismatch — an update transaction is concurrently publishing a new
// CFG — it retries until the relevant IDs agree.
func (t *Tables) Check(baryIndex, target int) Verdict {
	for {
		bid := t.BaryID(baryIndex) // movl %gs:ConstBaryIndex, %edi
		tid := t.TaryID(target)    // movl %gs:(%rcx), %esi
		if bid == tid {            // cmpl %edi, %esi — the fast path:
			return Pass // validity, version, and ECN in one compare
		}
		if !tid.LowBitSet() { // testb $1, %sil
			return Violation // invalid target (misaligned or not an IBT)
		}
		if !id.SameVersion(bid, tid) { // cmpw %di, %si
			// The paper's loader guarantees branch IDs are always valid
			// (§5.1), so a version mismatch can only mean a concurrent
			// update. Defensively, an invalid branch ID (unset or out of
			// range Bary index) is reported as a violation rather than
			// retried forever.
			if !bid.Valid() {
				return Violation
			}
			t.retries.Add(1)
			continue // jne Try — concurrent update in flight
		}
		return Violation // same version, different ECN: CFI violation
	}
}

// ECNFunc maps a code address to its equivalence-class number, or a
// negative value when the address is not an indirect-branch target
// (paper §5.2 getTaryECN) or the index holds no branch (getBaryECN).
type ECNFunc func(addrOrIndex int) int

// UpdateOpts tunes an update transaction.
type UpdateOpts struct {
	// Parallel publishes the new Tary table with multiple goroutines,
	// modelling the paper's movnti parallel memory copy. Sequential
	// publication is the ablation baseline (BenchmarkAblationCopy).
	Parallel bool
	// Between, if non-nil, runs after the Tary phase and before the
	// Bary phase — the slot where the dynamic linker rewrites GOT
	// entries (paper §5.2, PLT discussion), serialized by the same
	// barrier discipline.
	Between func()
}

// Update runs an update transaction (TxUpdate, paper Fig. 3): it
// acquires the global update lock, increments the version, installs
// new Tary IDs for every four-byte-aligned code address, issues the
// memory barrier, then installs new Bary IDs.
func (t *Tables) Update(getTaryECN, getBaryECN ECNFunc, opts UpdateOpts) {
	t.updMu.Lock() // globalUpdateLock.acquire()
	defer t.updMu.Unlock()

	ver := int(t.version+1) % id.MaxVersion
	atomic.StoreUint32(&t.version, uint32(ver))

	// updTaryTable: construct the new table, then publish it with
	// atomic per-entry stores (each ID update is atomic; entries are
	// independent, enabling the parallel copy).
	nw := t.coveredWords()
	fresh := make([]uint32, nw)
	for w := range fresh {
		addr := w * 4
		if ecn := getTaryECN(addr); ecn >= 0 {
			fresh[w] = uint32(id.Encode(ecn, ver))
		}
	}
	t.publish(t.tary[:nw], fresh, opts.Parallel)

	// sfence: all Tary writes complete before any Bary write. Go's
	// atomic stores are sequentially consistent, which subsumes the
	// paper's store-ordering barrier; the call below marks the
	// linearization point.
	memoryBarrier()

	if opts.Between != nil {
		opts.Between()
		memoryBarrier()
	}

	// updBaryTable.
	for i := range t.bary {
		if ecn := getBaryECN(i); ecn >= 0 {
			atomic.StoreUint32(&t.bary[i], uint32(id.Encode(ecn, ver)))
		} else {
			atomic.StoreUint32(&t.bary[i], 0)
		}
	}
	t.updates.Add(1)
	t.sinceQuiescence.Add(1)
	t.notifyUpdate()
}

// Reversion re-publishes every existing ID under a new version while
// preserving ECNs — the synthetic 50 Hz update used in the Fig. 6
// experiment ("updates the version numbers of all IDs in the ID tables
// (but preserving the ECNs)").
func (t *Tables) Reversion(opts UpdateOpts) {
	t.updMu.Lock()
	defer t.updMu.Unlock()

	ver := int(t.version+1) % id.MaxVersion
	atomic.StoreUint32(&t.version, uint32(ver))

	nw := t.coveredWords()
	fresh := make([]uint32, nw)
	for w := 0; w < nw; w++ {
		old := id.ID(atomic.LoadUint32(&t.tary[w]))
		if old.Valid() {
			fresh[w] = uint32(id.Encode(old.ECN(), ver))
		}
	}
	t.publish(t.tary[:nw], fresh, opts.Parallel)
	memoryBarrier()
	if opts.Between != nil {
		opts.Between()
		memoryBarrier()
	}
	for i := range t.bary {
		old := id.ID(atomic.LoadUint32(&t.bary[i]))
		if old.Valid() {
			atomic.StoreUint32(&t.bary[i], uint32(id.Encode(old.ECN(), ver)))
		}
	}
	t.updates.Add(1)
	t.sinceQuiescence.Add(1)
	t.notifyUpdate()
}

// publish copies fresh into dst with atomic stores, optionally fanned
// out over goroutines (the movnti parallel copy).
func (t *Tables) publish(dst, fresh []uint32, parallel bool) {
	if !parallel || len(dst) < 1<<14 {
		for w := range dst {
			atomic.StoreUint32(&dst[w], fresh[w])
		}
		return
	}
	const shards = 8
	var wg sync.WaitGroup
	chunk := (len(dst) + shards - 1) / shards
	for s := 0; s < shards; s++ {
		lo := s * chunk
		hi := lo + chunk
		if hi > len(dst) {
			hi = len(dst)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for w := lo; w < hi; w++ {
				atomic.StoreUint32(&dst[w], fresh[w])
			}
		}(lo, hi)
	}
	wg.Wait()
}

// memoryBarrier is the paper's sfence. Go's sync/atomic operations are
// sequentially consistent, so a no-op suffices for correctness; the
// function exists to mark the linearization points in the code.
func memoryBarrier() {}

// ABARisk reports whether the version space could have wrapped while a
// check transaction was parked: 2^14 update transactions have completed
// since the last quiescence point (§5.2). The runtime refuses further
// policy updates while this holds; QuiescencePoint clears it.
func (t *Tables) ABARisk() bool {
	return t.sinceQuiescence.Load() >= id.MaxVersion-1
}

// UpdatesSinceQuiescence returns the paper's ABA counter.
func (t *Tables) UpdatesSinceQuiescence() int64 { return t.sinceQuiescence.Load() }

// QuiescencePoint resets the ABA counter. The runtime calls it when
// every thread has been observed outside a check transaction (at a
// system call) since the most recent update transaction.
func (t *Tables) QuiescencePoint() { t.sinceQuiescence.Store(0) }

// Snapshot returns a copy of the live Tary and Bary contents, used by
// the verifier and by debugging tools.
func (t *Tables) Snapshot() (tary, bary []uint32) {
	tary = make([]uint32, len(t.tary))
	for i := range t.tary {
		tary[i] = atomic.LoadUint32(&t.tary[i])
	}
	bary = make([]uint32, len(t.bary))
	for i := range t.bary {
		bary[i] = atomic.LoadUint32(&t.bary[i])
	}
	return tary, bary
}

// String summarizes table occupancy.
func (t *Tables) String() string {
	tary, bary := t.Snapshot()
	nt, nb := 0, 0
	for _, w := range tary {
		if id.ID(w).Valid() {
			nt++
		}
	}
	for _, w := range bary {
		if id.ID(w).Valid() {
			nb++
		}
	}
	return fmt.Sprintf("tables{code=%dB, tary=%d/%d, bary=%d/%d, ver=%d}",
		t.codeLimit, nt, len(tary), nb, len(bary), t.Version())
}
