package codegen

import (
	"math"

	"mcfi/internal/ctypes"
	"mcfi/internal/minic"
	"mcfi/internal/rewrite"
	"mcfi/internal/visa"
)

// loadOp picks the typed load instruction for t.
func loadOp(t *ctypes.Type) visa.Op {
	switch t.Kind {
	case ctypes.Char:
		return visa.LD8
	case ctypes.Bool, ctypes.UChar:
		return visa.LD8U
	case ctypes.Short:
		return visa.LD16
	case ctypes.UShort:
		return visa.LD16U
	case ctypes.Int, ctypes.Enum:
		return visa.LD32
	case ctypes.UInt:
		return visa.LD32U
	}
	return visa.LD64
}

// storeOp picks the typed store instruction for t.
func storeOp(t *ctypes.Type) visa.Op {
	switch t.Size() {
	case 1:
		return visa.ST8
	case 2:
		return visa.ST16
	case 4:
		return visa.ST32
	}
	return visa.ST64
}

func (c *compiler) push() { c.asm.Emit(visa.Instr{Op: visa.PUSH, R1: visa.R0}) }

func (c *compiler) popTo(r byte) { c.asm.Emit(visa.Instr{Op: visa.POP, R1: r}) }

// markRef records a cross-module reference if name is not defined here.
func (c *compiler) markRef(name string) {
	if sym, ok := c.unit.Syms[name]; ok {
		switch d := sym.Def.(type) {
		case *minic.FuncDecl:
			if d.Body != nil {
				return
			}
		case *minic.VarDecl:
			if !d.Extern {
				return
			}
		case *minic.DeclStmt:
			return // hoisted static
		}
	} else {
		// Locally hoisted statics are defined in this module.
		if c.dataLocal[name] {
			return
		}
	}
	if c.dataLocal[name] {
		return
	}
	c.undefined[name] = true
}

// genExpr evaluates e into R0. Scalars are 64-bit normalized per their
// static type; struct/union values evaluate to their address.
func (c *compiler) genExpr(e minic.Expr) {
	switch x := e.(type) {
	case *minic.IntLit:
		c.asm.Emit(visa.Instr{Op: visa.MOVI, R1: visa.R0, Imm: x.Value})
	case *minic.FloatLit:
		c.asm.Emit(visa.Instr{Op: visa.MOVI, R1: visa.R0, Imm: int64(math.Float64bits(x.Value))})
	case *minic.StrLit:
		sym := c.internString(x.Value)
		c.asm.EmitMoviSym(visa.R0, sym, 0)
	case *minic.Ident:
		c.genIdentValue(x)
	case *minic.Unary:
		c.genUnary(x)
	case *minic.Postfix:
		c.genIncDec(x.X, x.Op == minic.INC, false)
	case *minic.Binary:
		c.genBinary(x)
	case *minic.Assign:
		c.genAssign(x)
	case *minic.Cond:
		els := c.label("condF")
		end := c.label("condEnd")
		c.genCondBranch(x.C, els)
		c.genExpr(x.T)
		c.asm.EmitBranch(visa.JMP, end)
		c.asm.Label(els)
		c.genExpr(x.F)
		c.asm.Label(end)
	case *minic.Call:
		c.genCall(x)
	case *minic.Index:
		// Use the raw element type: sema decays array-typed elements
		// to pointers, but an array-valued element evaluates to its
		// address, not to an 8-byte load.
		raw := e.ExprType()
		if bt := x.X.ExprType(); bt != nil && bt.Elem != nil {
			raw = bt.Elem
		}
		c.genAddr(e)
		c.genLoadFromR0(raw)
	case *minic.Member:
		raw := e.ExprType()
		rt := x.X.ExprType()
		if x.Arrow && rt != nil {
			rt = rt.Elem
		}
		if rt != nil {
			if f, ok := rt.Field(x.Name); ok {
				raw = f.Type
			}
		}
		c.genAddr(e)
		c.genLoadFromR0(raw)
	case *minic.Cast:
		c.genExpr(x.X)
		c.genConvert(x.X.ExprType(), x.To)
	case *minic.ImplicitCast:
		c.genExpr(x.X)
		c.genConvert(x.X.ExprType(), x.To)
	case *minic.SizeofType:
		c.asm.Emit(visa.Instr{Op: visa.MOVI, R1: visa.R0, Imm: int64(x.Of.Size())})
	case *minic.InitList:
		c.errf(x.Pos, "braced initializer used as an expression")
	default:
		c.errf(e.NodePos(), "codegen: unhandled expression %T", e)
	}
}

// genLoadFromR0 loads the value at address R0 according to type t.
// Records and arrays stay as addresses.
func (c *compiler) genLoadFromR0(t *ctypes.Type) {
	if t == nil || isRecord(t) || t.Kind == ctypes.Array {
		return
	}
	c.asm.Emit(visa.Instr{Op: loadOp(t), R1: visa.R0, R2: visa.R0, Imm: 0})
}

func (c *compiler) genIdentValue(x *minic.Ident) {
	sym := x.Sym
	if sym == nil {
		c.errf(x.Pos, "unresolved identifier %q", x.Name)
		return
	}
	if sym.Kind == minic.SymFunc {
		// Decayed function value: its address (an indirect-call target).
		c.asm.EmitMoviSym(visa.R0, sym.Name, 0)
		c.markRef(sym.Name)
		return
	}
	t := sym.Type
	if sym.Global {
		c.asm.EmitMoviSym(visa.R0, sym.Name, 0)
		c.markRef(sym.Name)
		c.genLoadFromR0(t)
		return
	}
	off, isParam := c.localOffset(sym)
	if t.Kind == ctypes.Array || (isRecord(t) && !isParam) || (isRecord(t) && isParam) {
		// Address-valued: arrays decay; records evaluate to addresses.
		c.asm.Emit(visa.Instr{Op: visa.MOV, R1: visa.R0, R2: visa.FP})
		c.asm.Emit(visa.Instr{Op: visa.ADDI, R1: visa.R0, Imm: int64(off)})
		return
	}
	c.asm.Emit(visa.Instr{Op: loadOp(t), R1: visa.R0, R2: visa.FP, Imm: int64(off)})
}

// localOffset returns the FP-relative offset of a local or parameter.
func (c *compiler) localOffset(sym *minic.Symbol) (off int, isParam bool) {
	if sym.Kind == minic.SymParam {
		return c.paramOff[sym.Name], true
	}
	if o, ok := c.locals[sym]; ok {
		return o, false
	}
	// Late-allocated local (declared in a block we pre-walked past).
	o := c.allocLocal(sym.Type)
	c.locals[sym] = o
	return o, false
}

// genAddr evaluates the address of an lvalue into R0.
func (c *compiler) genAddr(e minic.Expr) {
	switch x := e.(type) {
	case *minic.Ident:
		sym := x.Sym
		if sym == nil {
			c.errf(x.Pos, "unresolved identifier %q", x.Name)
			return
		}
		if sym.Kind == minic.SymFunc || sym.Global {
			c.asm.EmitMoviSym(visa.R0, sym.Name, 0)
			c.markRef(sym.Name)
			return
		}
		off, _ := c.localOffset(sym)
		c.asm.Emit(visa.Instr{Op: visa.MOV, R1: visa.R0, R2: visa.FP})
		c.asm.Emit(visa.Instr{Op: visa.ADDI, R1: visa.R0, Imm: int64(off)})
	case *minic.Index:
		bt := x.X.ExprType()
		elem := bt.Elem
		c.genExpr(x.X) // pointer value or array address
		c.push()
		c.genExpr(x.I)
		if sz := elem.Size(); sz != 1 {
			c.asm.Emit(visa.Instr{Op: visa.MOVI, R1: visa.R1, Imm: int64(sz)})
			c.asm.Emit(visa.Instr{Op: visa.MUL, R1: visa.R0, R2: visa.R1})
		}
		c.popTo(visa.R1)
		c.asm.Emit(visa.Instr{Op: visa.ADD, R1: visa.R0, R2: visa.R1})
	case *minic.Member:
		rt := x.X.ExprType()
		if x.Arrow {
			c.genExpr(x.X) // pointer value
			rt = rt.Elem
		} else {
			c.genAddr(x.X)
		}
		f, ok := rt.Field(x.Name)
		if !ok {
			c.errf(x.Pos, "no field %q", x.Name)
			return
		}
		if f.Offset != 0 {
			c.asm.Emit(visa.Instr{Op: visa.ADDI, R1: visa.R0, Imm: int64(f.Offset)})
		}
	case *minic.Unary:
		if x.Op == minic.STAR {
			c.genExpr(x.X)
			return
		}
		c.errf(x.Pos, "expression is not addressable")
	case *minic.Call:
		// Struct-returning call used as an lvalue source (e.g. f().x):
		// its value is already an address.
		c.genExpr(x)
	case *minic.ImplicitCast:
		c.genAddr(x.X)
	default:
		c.errf(e.NodePos(), "expression is not addressable (%T)", e)
	}
}

// genConvert emits the conversion from type 'from' to type 'to' on R0.
func (c *compiler) genConvert(from, to *ctypes.Type) {
	if from == nil || to == nil {
		return
	}
	fd := from.Kind == ctypes.Double
	td := to.Kind == ctypes.Double
	switch {
	case fd && td:
		return
	case fd && !td:
		c.asm.Emit(visa.Instr{Op: visa.CVFI, R1: visa.R0})
		c.genNormalize(to)
	case !fd && td:
		c.asm.Emit(visa.Instr{Op: visa.CVIF, R1: visa.R0})
	default:
		c.genNormalize(to)
	}
}

// genNormalize truncates/extends R0 to the representation of an
// integer type.
func (c *compiler) genNormalize(t *ctypes.Type) {
	switch t.Kind {
	case ctypes.Char:
		c.asm.Emit(visa.Instr{Op: visa.SX8, R1: visa.R0})
	case ctypes.Bool, ctypes.UChar:
		c.asm.Emit(visa.Instr{Op: visa.ZX8, R1: visa.R0})
	case ctypes.Short:
		c.asm.Emit(visa.Instr{Op: visa.SX16, R1: visa.R0})
	case ctypes.UShort:
		c.asm.Emit(visa.Instr{Op: visa.ZX16, R1: visa.R0})
	case ctypes.Int, ctypes.Enum:
		c.asm.Emit(visa.Instr{Op: visa.SX32, R1: visa.R0})
	case ctypes.UInt:
		c.asm.Emit(visa.Instr{Op: visa.AND32, R1: visa.R0})
	}
}

func (c *compiler) genUnary(x *minic.Unary) {
	switch x.Op {
	case minic.AMP:
		if id, ok := x.X.(*minic.Ident); ok && id.Sym != nil && id.Sym.Kind == minic.SymFunc {
			c.asm.EmitMoviSym(visa.R0, id.Sym.Name, 0)
			c.markRef(id.Sym.Name)
			return
		}
		c.genAddr(x.X)
	case minic.STAR:
		c.genExpr(x.X)
		c.genLoadFromR0(x.ExprType())
	case minic.MINUS:
		c.genExpr(x.X)
		if x.ExprType().Kind == ctypes.Double {
			c.asm.Emit(visa.Instr{Op: visa.MOVI, R1: visa.R1, Imm: int64(-1) << 63})
			c.asm.Emit(visa.Instr{Op: visa.XOR, R1: visa.R0, R2: visa.R1})
		} else {
			c.asm.Emit(visa.Instr{Op: visa.NEG, R1: visa.R0})
			c.genNarrow(x.ExprType())
		}
	case minic.TILDE:
		c.genExpr(x.X)
		c.asm.Emit(visa.Instr{Op: visa.NOTI, R1: visa.R0})
		c.genNarrow(x.ExprType())
	case minic.NOT:
		c.genExpr(x.X)
		c.asm.Emit(visa.Instr{Op: visa.CMPI, R1: visa.R0, Imm: 0})
		c.asm.Emit(visa.Instr{Op: visa.SET, R1: visa.CcE, R2: visa.R0})
	case minic.INC:
		c.genIncDec(x.X, true, true)
	case minic.DEC:
		c.genIncDec(x.X, false, true)
	case minic.KwSizeof:
		t := x.X.ExprType()
		sz := 8
		if t != nil {
			sz = t.Size()
		}
		c.asm.Emit(visa.Instr{Op: visa.MOVI, R1: visa.R0, Imm: int64(sz)})
	default:
		c.errf(x.Pos, "codegen: unhandled unary %s", x.Op)
	}
}

// genNarrow re-normalizes R0 after arithmetic when the result type is a
// 32-bit integer, so int/unsigned overflow wraps as on x86.
func (c *compiler) genNarrow(t *ctypes.Type) {
	if t == nil {
		return
	}
	switch t.Kind {
	case ctypes.Int, ctypes.Enum:
		c.asm.Emit(visa.Instr{Op: visa.SX32, R1: visa.R0})
	case ctypes.UInt:
		c.asm.Emit(visa.Instr{Op: visa.AND32, R1: visa.R0})
	}
}

// genIncDec implements ++/-- (pre when pre is true, post otherwise),
// with pointer scaling. Result left in R0.
func (c *compiler) genIncDec(lv minic.Expr, inc, pre bool) {
	t := lv.ExprType()
	delta := int64(1)
	if t.Kind == ctypes.Pointer {
		delta = int64(t.Elem.Size())
	}
	if !inc {
		delta = -delta
	}
	c.genAddr(lv)
	c.asm.Emit(visa.Instr{Op: visa.MOV, R1: visa.R2, R2: visa.R0})
	c.asm.Emit(visa.Instr{Op: loadOp(t), R1: visa.R0, R2: visa.R2, Imm: 0})
	if !pre {
		c.push() // old value
	}
	c.asm.Emit(visa.Instr{Op: visa.ADDI, R1: visa.R0, Imm: delta})
	c.genNarrow(t)
	rewrite.EmitStoreMask(c.asm, visa.R2, c.opts.Instrument, c.opts.Profile)
	c.asm.Emit(visa.Instr{Op: storeOp(t), R1: visa.R0, R2: visa.R2, Imm: 0})
	if !pre {
		c.popTo(visa.R0)
	}
}

var setCCSigned = map[minic.Tok]byte{
	minic.EQ: visa.CcE, minic.NE: visa.CcNE, minic.LT: visa.CcL,
	minic.GT: visa.CcG, minic.LE: visa.CcLE, minic.GE: visa.CcGE,
}

var setCCUnsigned = map[minic.Tok]byte{
	minic.EQ: visa.CcE, minic.NE: visa.CcNE, minic.LT: visa.CcB,
	minic.GT: visa.CcA, minic.LE: visa.CcBE, minic.GE: visa.CcAE,
}

func (c *compiler) genBinary(x *minic.Binary) {
	switch x.Op {
	case minic.LAND, minic.LOR:
		c.genShortCircuit(x)
		return
	}
	lt := x.L.ExprType()
	rt := x.R.ExprType()

	// Pointer arithmetic scaling.
	if x.Op == minic.PLUS || x.Op == minic.MINUS {
		switch {
		case lt.Kind == ctypes.Pointer && rt.IsInteger():
			c.genExpr(x.L)
			c.push()
			c.genExpr(x.R)
			if sz := lt.Elem.Size(); sz != 1 {
				c.asm.Emit(visa.Instr{Op: visa.MOVI, R1: visa.R1, Imm: int64(sz)})
				c.asm.Emit(visa.Instr{Op: visa.MUL, R1: visa.R0, R2: visa.R1})
			}
			c.asm.Emit(visa.Instr{Op: visa.MOV, R1: visa.R1, R2: visa.R0})
			c.popTo(visa.R0)
			op := visa.ADD
			if x.Op == minic.MINUS {
				op = visa.SUB
			}
			c.asm.Emit(visa.Instr{Op: op, R1: visa.R0, R2: visa.R1})
			return
		case lt.Kind == ctypes.Pointer && rt.Kind == ctypes.Pointer && x.Op == minic.MINUS:
			c.genOperands(x)
			c.asm.Emit(visa.Instr{Op: visa.SUB, R1: visa.R0, R2: visa.R1})
			if sz := lt.Elem.Size(); sz > 1 {
				c.asm.Emit(visa.Instr{Op: visa.MOVI, R1: visa.R1, Imm: int64(sz)})
				c.asm.Emit(visa.Instr{Op: visa.DIV, R1: visa.R0, R2: visa.R1})
			}
			return
		case rt.Kind == ctypes.Pointer && lt.IsInteger() && x.Op == minic.PLUS:
			c.genExpr(x.R)
			c.push()
			c.genExpr(x.L)
			if sz := rt.Elem.Size(); sz != 1 {
				c.asm.Emit(visa.Instr{Op: visa.MOVI, R1: visa.R1, Imm: int64(sz)})
				c.asm.Emit(visa.Instr{Op: visa.MUL, R1: visa.R0, R2: visa.R1})
			}
			c.popTo(visa.R1)
			c.asm.Emit(visa.Instr{Op: visa.ADD, R1: visa.R0, R2: visa.R1})
			return
		}
	}

	isF := lt.Kind == ctypes.Double
	unsigned := lt.IsUnsigned() || lt.Kind == ctypes.Pointer

	// Comparisons.
	if cc, ok := setCCSigned[x.Op]; ok {
		c.genOperands(x)
		if isF {
			c.asm.Emit(visa.Instr{Op: visa.FCMP, R1: visa.R0, R2: visa.R1})
		} else {
			c.asm.Emit(visa.Instr{Op: visa.CMP, R1: visa.R0, R2: visa.R1})
		}
		if unsigned {
			cc = setCCUnsigned[x.Op]
		}
		c.asm.Emit(visa.Instr{Op: visa.SET, R1: cc, R2: visa.R0})
		return
	}

	c.genOperands(x)
	var op visa.Op
	switch x.Op {
	case minic.PLUS:
		op = visa.ADD
		if isF {
			op = visa.FADD
		}
	case minic.MINUS:
		op = visa.SUB
		if isF {
			op = visa.FSUB
		}
	case minic.STAR:
		op = visa.MUL
		if isF {
			op = visa.FMUL
		}
	case minic.SLASH:
		switch {
		case isF:
			op = visa.FDIV
		case unsigned:
			op = visa.UDIV
		default:
			op = visa.DIV
		}
	case minic.PERCENT:
		op = visa.MOD
		if unsigned {
			op = visa.UMOD
		}
	case minic.AMP:
		op = visa.AND
	case minic.PIPE:
		op = visa.OR
	case minic.CARET:
		op = visa.XOR
	case minic.SHL:
		op = visa.SHL
	case minic.SHR:
		op = visa.SHR
		if !unsigned {
			op = visa.SAR
		}
	default:
		c.errf(x.Pos, "codegen: unhandled binary %s", x.Op)
		return
	}
	c.asm.Emit(visa.Instr{Op: op, R1: visa.R0, R2: visa.R1})
	switch x.Op {
	case minic.PLUS, minic.MINUS, minic.STAR, minic.SHL:
		if !isF {
			c.genNarrow(x.ExprType())
		}
	}
}

// genOperands evaluates L into R0 and R into R1.
func (c *compiler) genOperands(x *minic.Binary) {
	c.genExpr(x.L)
	c.push()
	c.genExpr(x.R)
	c.asm.Emit(visa.Instr{Op: visa.MOV, R1: visa.R1, R2: visa.R0})
	c.popTo(visa.R0)
}

func (c *compiler) genShortCircuit(x *minic.Binary) {
	end := c.label("sc")
	if x.Op == minic.LAND {
		fail := c.label("scF")
		c.genExpr(x.L)
		c.asm.Emit(visa.Instr{Op: visa.CMPI, R1: visa.R0, Imm: 0})
		c.asm.EmitBranch(visa.JE, fail)
		c.genExpr(x.R)
		c.asm.Emit(visa.Instr{Op: visa.CMPI, R1: visa.R0, Imm: 0})
		c.asm.Emit(visa.Instr{Op: visa.SET, R1: visa.CcNE, R2: visa.R0})
		c.asm.EmitBranch(visa.JMP, end)
		c.asm.Label(fail)
		c.asm.Emit(visa.Instr{Op: visa.MOVI, R1: visa.R0, Imm: 0})
		c.asm.Label(end)
		return
	}
	succ := c.label("scT")
	c.genExpr(x.L)
	c.asm.Emit(visa.Instr{Op: visa.CMPI, R1: visa.R0, Imm: 0})
	c.asm.EmitBranch(visa.JNE, succ)
	c.genExpr(x.R)
	c.asm.Emit(visa.Instr{Op: visa.CMPI, R1: visa.R0, Imm: 0})
	c.asm.Emit(visa.Instr{Op: visa.SET, R1: visa.CcNE, R2: visa.R0})
	c.asm.EmitBranch(visa.JMP, end)
	c.asm.Label(succ)
	c.asm.Emit(visa.Instr{Op: visa.MOVI, R1: visa.R0, Imm: 1})
	c.asm.Label(end)
}

func (c *compiler) genAssign(x *minic.Assign) {
	lt := x.L.ExprType()
	if isRecord(lt) && x.Op == minic.ASSIGN {
		c.genAddr(x.L)
		c.push()
		c.genExpr(x.R) // source record address
		c.asm.Emit(visa.Instr{Op: visa.MOV, R1: visa.R1, R2: visa.R0})
		c.popTo(visa.R2)
		c.genMemCopy(visa.R2, visa.R1, lt.Size())
		c.asm.Emit(visa.Instr{Op: visa.MOV, R1: visa.R0, R2: visa.R2})
		return
	}
	if x.Op == minic.ASSIGN {
		c.genAddr(x.L)
		c.push()
		c.genExpr(x.R)
		c.popTo(visa.R2)
		rewrite.EmitStoreMask(c.asm, visa.R2, c.opts.Instrument, c.opts.Profile)
		c.asm.Emit(visa.Instr{Op: storeOp(lt), R1: visa.R0, R2: visa.R2, Imm: 0})
		return
	}
	// Compound assignment: load, combine, store back.
	c.genAddr(x.L)
	c.push() // address
	c.asm.Emit(visa.Instr{Op: loadOp(lt), R1: visa.R0, R2: visa.R0, Imm: 0})
	c.push() // old value
	c.genExpr(x.R)
	c.asm.Emit(visa.Instr{Op: visa.MOV, R1: visa.R1, R2: visa.R0}) // rhs in R1
	c.popTo(visa.R0)                                               // old value

	isF := lt.Kind == ctypes.Double
	unsigned := lt.IsUnsigned() || lt.Kind == ctypes.Pointer
	if lt.Kind == ctypes.Pointer {
		if sz := lt.Elem.Size(); sz != 1 {
			c.asm.Emit(visa.Instr{Op: visa.MOVI, R1: visa.R3, Imm: int64(sz)})
			c.asm.Emit(visa.Instr{Op: visa.MUL, R1: visa.R1, R2: visa.R3})
		}
	}
	var op visa.Op
	switch x.Op {
	case minic.ADDEQ:
		op = visa.ADD
		if isF {
			op = visa.FADD
		}
	case minic.SUBEQ:
		op = visa.SUB
		if isF {
			op = visa.FSUB
		}
	case minic.MULEQ:
		op = visa.MUL
		if isF {
			op = visa.FMUL
		}
	case minic.DIVEQ:
		switch {
		case isF:
			op = visa.FDIV
		case unsigned:
			op = visa.UDIV
		default:
			op = visa.DIV
		}
	case minic.MODEQ:
		op = visa.MOD
		if unsigned {
			op = visa.UMOD
		}
	case minic.ANDEQ:
		op = visa.AND
	case minic.OREQ:
		op = visa.OR
	case minic.XOREQ:
		op = visa.XOR
	case minic.SHLEQ:
		op = visa.SHL
	case minic.SHREQ:
		op = visa.SHR
		if !unsigned {
			op = visa.SAR
		}
	default:
		c.errf(x.Pos, "codegen: unhandled compound assignment %s", x.Op)
		return
	}
	c.asm.Emit(visa.Instr{Op: op, R1: visa.R0, R2: visa.R1})
	if !isF {
		c.genNarrow(lt)
	}
	c.popTo(visa.R2) // address
	rewrite.EmitStoreMask(c.asm, visa.R2, c.opts.Instrument, c.opts.Profile)
	c.asm.Emit(visa.Instr{Op: storeOp(lt), R1: visa.R0, R2: visa.R2, Imm: 0})
}
