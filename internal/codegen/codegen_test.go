package codegen_test

import (
	"testing"

	"mcfi/internal/codegen"
	"mcfi/internal/ctypes"
	"mcfi/internal/minic"
	"mcfi/internal/module"
	"mcfi/internal/sema"
	"mcfi/internal/visa"
)

func compile(t *testing.T, src string, opts codegen.Options) *module.Object {
	t.Helper()
	f, err := minic.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	u, err := sema.Analyze(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	obj, err := codegen.Compile(u, opts)
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	return obj
}

func instrOpts() codegen.Options {
	return codegen.Options{Profile: visa.Profile64, Instrument: true, ModuleName: "t"}
}

func TestAuxRecordsFunctions(t *testing.T) {
	obj := compile(t, `
static int hidden(int x) { return x; }
int visible(int x) { return hidden(x); }
int (*fp)(int) = visible;
`, instrOpts())
	byName := map[string]module.FuncInfo{}
	for _, f := range obj.Aux.Funcs {
		byName[f.Name] = f
	}
	if len(byName) != 2 {
		t.Fatalf("funcs = %d, want 2", len(byName))
	}
	if !byName["visible"].AddrTaken {
		t.Error("visible should be address-taken")
	}
	if byName["hidden"].AddrTaken {
		t.Error("hidden is never address-taken")
	}
	sig := ctypes.Signature(ctypes.FuncOf(ctypes.IntType, []*ctypes.Type{ctypes.IntType}, false))
	if byName["visible"].Sig != sig {
		t.Errorf("visible sig = %q, want %q", byName["visible"].Sig, sig)
	}
	// Function symbols carry linkage.
	if s := obj.FindSymbol("hidden"); s == nil || !s.Local {
		t.Error("static function should be a local symbol")
	}
	if s := obj.FindSymbol("visible"); s == nil || s.Local {
		t.Error("extern function should be global")
	}
}

func TestIndirectCallAux(t *testing.T) {
	obj := compile(t, `
int cb(int x) { return x; }
int (*fp)(int) = cb;
int main(void) { return fp(1); }
`, instrOpts())
	var icalls, rets int
	for _, ib := range obj.Aux.IBs {
		switch ib.Kind {
		case module.IBCall:
			icalls++
			if ib.FpSig == "" {
				t.Error("icall without a type signature")
			}
			if ib.TLoadIOffset < 0 {
				t.Error("instrumented icall must record its TLOADI")
			}
		case module.IBRet:
			rets++
			if ib.Func == "" {
				t.Error("ret without enclosing function")
			}
		}
	}
	if icalls != 1 {
		t.Errorf("icalls = %d, want 1", icalls)
	}
	if rets != 2 {
		t.Errorf("rets = %d, want 2 (cb + main)", rets)
	}
	// Indirect ret-site recorded with the fp signature.
	found := false
	for _, rs := range obj.Aux.RetSites {
		if rs.FpSig != "" {
			found = true
			if rs.Offset%4 != 0 {
				t.Error("instrumented ret site must be 4-byte aligned")
			}
		}
	}
	if !found {
		t.Error("no indirect-call ret site recorded")
	}
}

func TestBaselineHasNoChecks(t *testing.T) {
	src := `
int cb(int x) { return x; }
int (*fp)(int) = cb;
int main(void) { return fp(1); }
`
	obj := compile(t, src, codegen.Options{Profile: visa.Profile64, Instrument: false})
	instrs, err := visa.DecodeAll(obj.Code)
	if err != nil {
		t.Fatalf("baseline must fully decode: %v", err)
	}
	for _, i := range instrs {
		switch i.Op {
		case visa.TLOAD, visa.TLOADI, visa.CMPW, visa.TESTB:
			t.Fatalf("baseline contains check instruction %s", i.Op.Name())
		}
	}
	// Baseline keeps plain RETs.
	hasRet := false
	for _, i := range instrs {
		if i.Op == visa.RET {
			hasRet = true
		}
	}
	if !hasRet {
		t.Error("baseline should use plain ret")
	}
}

func TestInstrumentedAlignment(t *testing.T) {
	obj := compile(t, `
int a(int x) { return x + 1; }
int b(int x) { return a(x) + a(x + 1); }
int (*fp)(int) = a;
int main(void) { return b(fp(1)); }
`, instrOpts())
	for _, f := range obj.Aux.Funcs {
		if f.AddrTaken && f.Offset%4 != 0 {
			t.Errorf("address-taken %s at %#x not aligned", f.Name, f.Offset)
		}
	}
	for _, rs := range obj.Aux.RetSites {
		if rs.Offset%4 != 0 {
			t.Errorf("ret site %#x not aligned", rs.Offset)
		}
	}
}

func TestSwitchEmitsJumpTable(t *testing.T) {
	obj := compile(t, `
int f(int x) {
	switch (x) {
	case 0: return 5;
	case 1: return 6;
	case 2: return 7;
	case 3: return 8;
	case 4: return 9;
	default: return -1;
	}
}
int main(void) { return f(3); }
`, instrOpts())
	var sw *module.IndirectBranch
	for i := range obj.Aux.IBs {
		if obj.Aux.IBs[i].Kind == module.IBSwitch {
			sw = &obj.Aux.IBs[i]
		}
	}
	if sw == nil {
		t.Fatal("no jump-table switch emitted for a dense case set")
	}
	if sw.TableLen != 8*5 {
		t.Errorf("table len = %d, want 40 (5 slots)", sw.TableLen)
	}
	if len(sw.Targets) != 5 {
		t.Errorf("targets = %d, want 5", len(sw.Targets))
	}
	if sw.TLoadIOffset != -1 {
		t.Error("switch jumps are statically verified, not table-checked")
	}
}

func TestSparseSwitchAvoidsTable(t *testing.T) {
	obj := compile(t, `
int f(int x) {
	switch (x) {
	case 1: return 5;
	case 1000: return 6;
	case 100000: return 7;
	default: return -1;
	}
}
int main(void) { return f(1000); }
`, instrOpts())
	for _, ib := range obj.Aux.IBs {
		if ib.Kind == module.IBSwitch {
			t.Error("sparse switch should compile to compare chains")
		}
	}
}

func TestTailCallAuxProfile64(t *testing.T) {
	src := `
int sink(int x) { return x; }
int relay(int x) { return sink(x + 1); }
int main(void) { return relay(1); }
`
	obj64 := compile(t, src, instrOpts())
	var relay64 *module.FuncInfo
	for i := range obj64.Aux.Funcs {
		if obj64.Aux.Funcs[i].Name == "relay" {
			relay64 = &obj64.Aux.Funcs[i]
		}
	}
	if relay64 == nil || len(relay64.TailCalls) != 1 || relay64.TailCalls[0] != "sink" {
		t.Errorf("Profile64 should record the tail call, got %+v", relay64)
	}
	obj32 := compile(t, src, codegen.Options{Profile: visa.Profile32, Instrument: true})
	for _, f := range obj32.Aux.Funcs {
		if f.Name == "relay" && len(f.TailCalls) != 0 {
			t.Error("Profile32 must not tail-call optimize")
		}
	}
}

func TestStaticLocalHoisted(t *testing.T) {
	obj := compile(t, `
int counter(void) {
	static int n;
	n++;
	return n;
}
int main(void) { counter(); return counter(); }
`, instrOpts())
	found := false
	for _, s := range obj.Symbols {
		if s.Kind == module.SymData && s.Local && s.Size == 4 {
			found = true
		}
	}
	if !found {
		t.Error("static local should become a local data symbol")
	}
}

func TestGlobalInitializers(t *testing.T) {
	obj := compile(t, `
int answer = 42;
long big = 1234567890123;
double pi = 3.25;
char msg[8] = "hi";
int *ptr = &answer;
int arr[3] = {7, 8, 9};
`, instrOpts())
	sym := func(name string) module.Symbol {
		s := obj.FindSymbol(name)
		if s == nil {
			t.Fatalf("symbol %s missing", name)
		}
		return *s
	}
	get32 := func(off int) uint32 {
		d := obj.Data[off:]
		return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24
	}
	if v := get32(sym("answer").Offset); v != 42 {
		t.Errorf("answer = %d", v)
	}
	if obj.Data[sym("msg").Offset] != 'h' {
		t.Error("msg bytes wrong")
	}
	if v := get32(sym("arr").Offset + 8); v != 9 {
		t.Errorf("arr[2] = %d", v)
	}
	// ptr carries a data relocation to answer.
	found := false
	for _, r := range obj.DataRelocs {
		if r.Symbol == "answer" && r.Offset == sym("ptr").Offset {
			found = true
		}
	}
	if !found {
		t.Error("missing data relocation for &answer")
	}
}

func TestBSSAllocation(t *testing.T) {
	obj := compile(t, `
int zeroed[1000];
int initialized = 1;
`, instrOpts())
	if obj.BSS < 4000 {
		t.Errorf("BSS = %d, want >= 4000", obj.BSS)
	}
	z := obj.FindSymbol("zeroed")
	if z == nil || z.Offset < len(obj.Data) {
		t.Error("zeroed should live in BSS (offset past initialized data)")
	}
}

func TestUndefinedCollected(t *testing.T) {
	obj := compile(t, `
int external_fn(int);
int main(void) { return external_fn(1); }
`, instrOpts())
	if len(obj.Undefined) != 1 || obj.Undefined[0] != "external_fn" {
		t.Errorf("undefined = %v", obj.Undefined)
	}
}

func TestSetjmpContinuationRecorded(t *testing.T) {
	obj := compile(t, `
typedef long jmp_buf[4];
int setjmp(long *env);
void longjmp(long *env, int val);
jmp_buf env;
int main(void) {
	if (setjmp(env) == 0) longjmp(env, 3);
	return 0;
}
`, instrOpts())
	if len(obj.Aux.SetjmpConts) != 1 {
		t.Fatalf("setjmp continuations = %d, want 1", len(obj.Aux.SetjmpConts))
	}
	if obj.Aux.SetjmpConts[0]%4 != 0 {
		t.Error("setjmp continuation must be aligned")
	}
	haveLJ := false
	for _, ib := range obj.Aux.IBs {
		if ib.Kind == module.IBLongjmp {
			haveLJ = true
		}
	}
	if !haveLJ {
		t.Error("longjmp branch not recorded")
	}
}

func TestAsmAnnotationsFlow(t *testing.T) {
	obj := compile(t, `
void fast(void) { asm("xyz" : "fast : f()->v"); }
int main(void) { fast(); return 0; }
`, instrOpts())
	if len(obj.Aux.AsmAnnotations) != 1 {
		t.Errorf("annotations = %v", obj.Aux.AsmAnnotations)
	}
}

func TestInstrumentedCodeLarger(t *testing.T) {
	src := `
int work(int x) { return x * 3 + 1; }
int main(void) {
	int acc = 0;
	for (int i = 0; i < 10; i++) acc += work(i);
	return acc;
}`
	base := compile(t, src, codegen.Options{Profile: visa.Profile64})
	inst := compile(t, src, instrOpts())
	if len(inst.Code) <= len(base.Code) {
		t.Errorf("instrumented %d <= baseline %d", len(inst.Code), len(base.Code))
	}
	growth := float64(len(inst.Code)-len(base.Code)) / float64(len(base.Code))
	if growth > 1.0 {
		t.Errorf("code growth %.0f%% implausible", growth*100)
	}
}
