package codegen

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"mcfi/internal/ctypes"
	"mcfi/internal/minic"
	"mcfi/internal/module"
)

// internString places a string literal (NUL-terminated) in the data
// section once and returns its local symbol name.
func (c *compiler) internString(s string) string {
	if sym, ok := c.strPool[s]; ok {
		return sym
	}
	sym := fmt.Sprintf(".Lstr%d", c.strCount)
	c.strCount++
	off := len(c.data)
	c.data = append(c.data, s...)
	c.data = append(c.data, 0)
	c.strPool[s] = sym
	c.dataSyms[sym] = off
	c.dataSizes[sym] = len(s) + 1
	c.dataLocal[sym] = true
	c.dataOrder = append(c.dataOrder, sym)
	return sym
}

func (c *compiler) alignData(a int) {
	if a < 1 {
		a = 1
	}
	for len(c.data)%a != 0 {
		c.data = append(c.data, 0)
	}
}

// genGlobal lays out one global variable.
func (c *compiler) genGlobal(name string, t *ctypes.Type, init minic.Expr, static bool) {
	size := t.Size()
	if size < 1 {
		size = 8
	}
	if init == nil {
		// BSS: offset assigned after initialized data in finishObject.
		c.bss = (c.bss + t.Align() - 1) / max(t.Align(), 1) * max(t.Align(), 1)
		c.bssSyms[name] = c.bss
		c.bss += size
	} else {
		c.alignData(t.Align())
		off := len(c.data)
		c.data = append(c.data, make([]byte, size)...)
		c.dataSyms[name] = off
		c.serializeInit(t, off, init)
	}
	c.dataSizes[name] = size
	if static {
		c.dataLocal[name] = true
	}
	c.dataOrder = append(c.dataOrder, name)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// serializeInit writes a constant initializer into the data section at
// byte offset off, emitting data relocations for address constants.
func (c *compiler) serializeInit(t *ctypes.Type, off int, init minic.Expr) {
	switch iv := init.(type) {
	case *minic.IntLit:
		c.putScalar(t, off, uint64(iv.Value))
	case *minic.FloatLit:
		if t.Kind == ctypes.Double {
			c.putScalar(t, off, math.Float64bits(iv.Value))
		} else {
			c.putScalar(t, off, uint64(int64(iv.Value)))
		}
	case *minic.StrLit:
		if t.Kind == ctypes.Array {
			n := len(iv.Value) + 1
			if n > t.Size() {
				n = t.Size()
			}
			copy(c.data[off:off+n], iv.Value)
			return
		}
		sym := c.internString(iv.Value)
		c.dataRelocs = append(c.dataRelocs, module.Reloc{Offset: off, Symbol: sym})
	case *minic.Ident:
		if iv.Sym == nil {
			c.errf(iv.Pos, "unresolved initializer %q", iv.Name)
			return
		}
		c.dataRelocs = append(c.dataRelocs, module.Reloc{Offset: off, Symbol: iv.Sym.Name})
		c.markRef(iv.Sym.Name)
	case *minic.Unary:
		if iv.Op == minic.AMP {
			if id, ok := iv.X.(*minic.Ident); ok && id.Sym != nil {
				c.dataRelocs = append(c.dataRelocs, module.Reloc{Offset: off, Symbol: id.Sym.Name})
				c.markRef(id.Sym.Name)
				return
			}
		}
		c.serializeConst(t, off, init)
	case *minic.Cast:
		c.serializeInit(t, off, iv.X)
	case *minic.ImplicitCast:
		c.serializeInit(t, off, iv.X)
	case *minic.InitList:
		switch t.Kind {
		case ctypes.Array:
			esz := t.Elem.Size()
			for i, el := range iv.Elems {
				c.serializeInit(t.Elem, off+i*esz, el)
			}
		case ctypes.Struct, ctypes.Union:
			for i, el := range iv.Elems {
				if i < len(t.Fields) {
					c.serializeInit(t.Fields[i].Type, off+t.Fields[i].Offset, el)
				}
			}
		default:
			if len(iv.Elems) == 1 {
				c.serializeInit(t, off, iv.Elems[0])
			}
		}
	case *minic.SizeofType:
		c.putScalar(t, off, uint64(iv.Of.Size()))
	default:
		c.serializeConst(t, off, init)
	}
}

// serializeConst folds an arbitrary constant expression.
func (c *compiler) serializeConst(t *ctypes.Type, off int, init minic.Expr) {
	v, err := minic.EvalConstExpr(init, c.unit.File.EnumConsts)
	if err != nil {
		c.errf(init.NodePos(), "global initializer is not constant: %v", err)
		return
	}
	c.putScalar(t, off, uint64(v))
}

// putScalar writes a little-endian scalar of t's width at off.
func (c *compiler) putScalar(t *ctypes.Type, off int, v uint64) {
	switch t.Size() {
	case 1:
		c.data[off] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(c.data[off:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(c.data[off:], uint32(v))
	default:
		binary.LittleEndian.PutUint64(c.data[off:], v)
	}
}

// finishObject assembles the final module object.
func (c *compiler) finishObject() *module.Object {
	o := &module.Object{
		Name:         c.opts.ModuleName,
		Profile:      c.opts.Profile,
		Instrumented: c.opts.Instrument,
		Code:         c.asm.Code,
		Data:         c.data,
		BSS:          c.bss,
		DataRelocs:   c.dataRelocs,
		Aux:          c.aux,
	}

	// Function symbols, from aux (sizes are final).
	for _, f := range c.aux.Funcs {
		var local bool
		if sym, ok := c.unit.Syms[f.Name]; ok {
			if fd, ok := sym.Def.(*minic.FuncDecl); ok {
				local = fd.Static
			}
		}
		o.Symbols = append(o.Symbols, module.Symbol{
			Name: f.Name, Kind: module.SymFunc,
			Offset: f.Offset, Size: f.Size, Local: local,
		})
	}
	// Data symbols: initialized first, then BSS shifted past Data.
	for _, name := range c.dataOrder {
		if off, ok := c.dataSyms[name]; ok {
			o.Symbols = append(o.Symbols, module.Symbol{
				Name: name, Kind: module.SymData,
				Offset: off, Size: c.dataSizes[name], Local: c.dataLocal[name],
			})
		}
	}
	for name, boff := range c.bssSyms {
		o.Symbols = append(o.Symbols, module.Symbol{
			Name: name, Kind: module.SymData,
			Offset: len(c.data) + boff, Size: c.dataSizes[name], Local: c.dataLocal[name],
		})
	}

	// Code relocations: absolute MOVI immediates from the assembler
	// plus rel32 call fixups.
	for _, r := range c.asm.Relocs {
		kind := module.RelAbs64
		if r.JumpTable {
			kind = module.RelJumpTable
		}
		o.CodeRelocs = append(o.CodeRelocs, module.Reloc{
			Offset: r.Offset, Symbol: r.Symbol, Addend: r.Addend, Kind: kind,
		})
	}
	o.CodeRelocs = append(o.CodeRelocs, c.callRelocs...)

	var undef []string
	for name := range c.undefined {
		undef = append(undef, name)
	}
	sort.Strings(undef)
	o.Undefined = undef
	return o
}
