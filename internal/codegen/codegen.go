// Package codegen lowers a type-checked MiniC translation unit to a
// VISA object module, emitting MCFI instrumentation (via
// internal/rewrite) and the auxiliary type information that CFG
// generation consumes at link time.
//
// The calling convention is stack-based, matching the x86-ish threat
// model: the caller reserves an argument area below its stack pointer,
// stores evaluated arguments into it left to right, then CALL pushes
// the return address. Inside a function, FP+16 addresses the first
// argument slot (above the saved FP and the return address) and
// locals live at negative FP offsets. Struct values travel by copy;
// struct returns use a hidden destination pointer in the first slot.
//
// On Profile64 the compiler performs tail-call optimization for
// same-argument-size calls in tail position (the LLVM behaviour the
// paper credits for the smaller x86-64 equivalence-class counts) and
// records all tail calls in the module's aux info for return-edge
// chasing during CFG generation.
package codegen

import (
	"fmt"

	"mcfi/internal/ctypes"
	"mcfi/internal/minic"
	"mcfi/internal/module"
	"mcfi/internal/rewrite"
	"mcfi/internal/sema"
	"mcfi/internal/visa"
)

// Options configures a compilation.
type Options struct {
	Profile visa.Profile
	// Instrument enables MCFI check transactions, target alignment,
	// and store sandboxing. Baseline (false) builds are used by the
	// Fig. 5/6 overhead experiments.
	Instrument bool
	// ModuleName names the emitted module; defaults to the file name.
	ModuleName string
}

// Error is a code-generation error.
type Error struct {
	Pos minic.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

type compiler struct {
	unit *sema.Unit
	opts Options
	asm  *visa.Asm

	// data section state.
	data       []byte
	bss        int
	dataSyms   map[string]int // symbol -> data offset (or BSS offset encoded later)
	bssSyms    map[string]int // symbol -> bss-relative offset
	dataSizes  map[string]int
	dataLocal  map[string]bool
	dataOrder  []string
	dataRelocs []module.Reloc
	strCount   int
	strPool    map[string]string // literal -> rodata symbol

	// per-function state.
	fn          *minic.FuncDecl
	fnStart     int
	locals      map[*minic.Symbol]int // FP-relative offsets (negative)
	paramOff    map[string]int        // param name -> positive FP offset
	frame       int                   // current frame size (bytes)
	frameFixup  int                   // code offset of the ADDI SP imm32 field
	breakLbl    []string
	contLbl     []string
	nextLbl     int
	sretHidden  bool // function returns a struct via hidden pointer
	curFuncInfo *module.FuncInfo

	// aux accumulation.
	aux           module.AuxInfo
	undefined     map[string]bool
	statics       []staticInit
	pendingTables []pendingTable
	callRelocs    []module.Reloc

	errs []error
}

// caseVal pairs one switch case constant with its arm label.
type caseVal struct {
	val int64
	lbl string
}

type staticInit struct {
	name string
	typ  *ctypes.Type
	init minic.Expr
}

// Compile lowers unit to an object module.
func Compile(unit *sema.Unit, opts Options) (*module.Object, error) {
	if opts.Profile == 0 {
		opts.Profile = visa.Profile64
	}
	if opts.ModuleName == "" {
		opts.ModuleName = unit.File.Name
	}
	c := &compiler{
		unit:      unit,
		opts:      opts,
		asm:       visa.NewAsm(),
		dataSyms:  map[string]int{},
		bssSyms:   map[string]int{},
		dataSizes: map[string]int{},
		dataLocal: map[string]bool{},
		strPool:   map[string]string{},
		undefined: map[string]bool{},
	}

	// Emit all function bodies.
	for _, fd := range unit.Funcs {
		c.genFunc(fd)
		if len(c.errs) > 0 {
			return nil, c.errs[0]
		}
	}
	if err := c.asm.Finish(); err != nil {
		return nil, err
	}

	// Lay out globals (including statics hoisted from function bodies).
	for _, g := range unit.Globals {
		c.genGlobal(g.Name, g.Type, g.Init, g.Static)
	}
	for _, s := range c.statics {
		c.genGlobal(s.name, s.typ, s.init, true)
	}
	if len(c.errs) > 0 {
		return nil, c.errs[0]
	}

	return c.finishObject(), nil
}

func (c *compiler) errf(pos minic.Pos, format string, args ...interface{}) {
	c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (c *compiler) label(what string) string {
	c.nextLbl++
	return fmt.Sprintf("%s.%s.%d", c.fn.Name, what, c.nextLbl)
}

// slotSize returns the argument-slot size of a type (rounded to 8).
func slotSize(t *ctypes.Type) int {
	s := t.Size()
	if s < 8 {
		return 8
	}
	return (s + 7) &^ 7
}

// isRecord reports whether t is passed/returned by copy.
func isRecord(t *ctypes.Type) bool {
	return t != nil && (t.Kind == ctypes.Struct || t.Kind == ctypes.Union)
}

// defined reports whether name is a function defined (with body) in
// this unit.
func (c *compiler) definedFunc(name string) bool {
	s, ok := c.unit.Syms[name]
	if !ok || s.Kind != minic.SymFunc {
		return false
	}
	fd, ok := s.Def.(*minic.FuncDecl)
	return ok && fd.Body != nil
}

func (c *compiler) genFunc(fd *minic.FuncDecl) {
	c.fn = fd
	c.locals = map[*minic.Symbol]int{}
	c.paramOff = map[string]int{}
	c.frame = 0
	c.breakLbl, c.contLbl = nil, nil
	c.sretHidden = isRecord(fd.Type.Result)

	if c.opts.Instrument {
		rewrite.AlignIBT(c.asm)
	}
	c.fnStart = c.asm.Pos()
	c.asm.Label("fn." + fd.Name)

	sym := c.unit.Syms[fd.Name]
	c.aux.Funcs = append(c.aux.Funcs, module.FuncInfo{
		Name:      fd.Name,
		Offset:    c.fnStart,
		Sig:       ctypes.Signature(fd.Type),
		AddrTaken: sym != nil && sym.AddrTaken,
	})
	c.curFuncInfo = &c.aux.Funcs[len(c.aux.Funcs)-1]

	// Parameter offsets: FP+16 upward; hidden sret pointer first.
	off := 16
	if c.sretHidden {
		c.paramOff["__sret"] = off
		off += 8
	}
	for i, pt := range fd.Type.Params {
		name := ""
		if i < len(fd.ParamNames) {
			name = fd.ParamNames[i]
		}
		c.paramOff[name] = off
		off += slotSize(pt)
	}

	// Prologue.
	c.asm.Emit(visa.Instr{Op: visa.PUSH, R1: visa.FP})
	c.asm.Emit(visa.Instr{Op: visa.MOV, R1: visa.FP, R2: visa.SP})
	c.frameFixup = c.asm.Pos() + 2 // offset of the imm32 in the ADDI below
	c.asm.Emit(visa.Instr{Op: visa.ADDI, R1: visa.SP, Imm: 0})

	for _, s := range fd.Body.Stmts {
		c.genStmt(s)
	}

	// Implicit return (void or falling off the end); skipped when the
	// body already ends with an unconditional return.
	n := len(fd.Body.Stmts)
	if n == 0 {
		c.genEpilogueReturn()
	} else if _, endsWithRet := fd.Body.Stmts[n-1].(*minic.Return); !endsWithRet {
		c.genEpilogueReturn()
	}

	// Materialize jump tables at the end of the function: read-only
	// data hard-coded into the code region (paper §6).
	c.materializeTables()

	// Patch the frame size into the prologue ADDI.
	fr := int32(-c.frame)
	c.asm.Code[c.frameFixup] = byte(fr)
	c.asm.Code[c.frameFixup+1] = byte(fr >> 8)
	c.asm.Code[c.frameFixup+2] = byte(fr >> 16)
	c.asm.Code[c.frameFixup+3] = byte(fr >> 24)

	c.curFuncInfo.Size = c.asm.Pos() - c.fnStart
	c.fn = nil
}

// genEpilogueReturn tears the frame down and emits the (instrumented)
// return, recording it as an IBRet.
func (c *compiler) genEpilogueReturn() {
	c.asm.Emit(visa.Instr{Op: visa.MOV, R1: visa.SP, R2: visa.FP})
	c.asm.Emit(visa.Instr{Op: visa.POP, R1: visa.FP})
	site := rewrite.EmitReturn(c.asm, c.opts.Instrument)
	c.aux.IBs = append(c.aux.IBs, module.IndirectBranch{
		Offset:       site.BranchOffset,
		Kind:         module.IBRet,
		Func:         c.fn.Name,
		TLoadIOffset: site.TLoadIOffset,
		CheckStart:   site.CheckStart,
		GotSlot:      -1,
	})
}

// allocLocal reserves frame space for a local of the given type and
// returns its FP-relative (negative) offset.
func (c *compiler) allocLocal(t *ctypes.Type) int {
	sz := t.Size()
	if sz < 1 {
		sz = 8
	}
	al := t.Align()
	if al < 1 {
		al = 8
	}
	c.frame = (c.frame + sz + al - 1) / al * al
	// Keep the frame 8-aligned overall so SP stays aligned.
	if c.frame%8 != 0 {
		c.frame = (c.frame + 7) &^ 7
	}
	return -c.frame
}

// allocTemp reserves an 8-aligned scratch slot of sz bytes.
func (c *compiler) allocTemp(sz int) int {
	c.frame = (c.frame + sz + 7) &^ 7
	return -c.frame
}

func (c *compiler) genStmt(s minic.Stmt) {
	switch st := s.(type) {
	case nil:
	case *minic.Block:
		for _, inner := range st.Stmts {
			c.genStmt(inner)
		}
	case *minic.ExprStmt:
		c.genExpr(st.X)
	case *minic.DeclGroup:
		for _, d := range st.Decls {
			c.genDeclStmt(d)
		}
	case *minic.DeclStmt:
		c.genDeclStmt(st)
	case *minic.If:
		els := c.label("else")
		end := c.label("endif")
		c.genCondBranch(st.Cond, els)
		c.genStmt(st.Then)
		if st.Else != nil {
			c.asm.EmitBranch(visa.JMP, end)
			c.asm.Label(els)
			c.genStmt(st.Else)
			c.asm.Label(end)
		} else {
			c.asm.Label(els)
		}
	case *minic.While:
		head := c.label("while")
		end := c.label("endwhile")
		c.asm.Label(head)
		c.genCondBranch(st.Cond, end)
		c.pushLoop(end, head)
		c.genStmt(st.Body)
		c.popLoop()
		c.asm.EmitBranch(visa.JMP, head)
		c.asm.Label(end)
	case *minic.DoWhile:
		head := c.label("do")
		cond := c.label("docond")
		end := c.label("enddo")
		c.asm.Label(head)
		c.pushLoop(end, cond)
		c.genStmt(st.Body)
		c.popLoop()
		c.asm.Label(cond)
		c.genExpr(st.Cond)
		c.asm.Emit(visa.Instr{Op: visa.CMPI, R1: visa.R0, Imm: 0})
		c.asm.EmitBranch(visa.JNE, head)
		c.asm.Label(end)
	case *minic.For:
		head := c.label("for")
		post := c.label("forpost")
		end := c.label("endfor")
		if st.Init != nil {
			c.genStmt(st.Init)
		}
		c.asm.Label(head)
		if st.Cond != nil {
			c.genCondBranch(st.Cond, end)
		}
		c.pushLoop(end, post)
		c.genStmt(st.Body)
		c.popLoop()
		c.asm.Label(post)
		if st.Post != nil {
			c.genExpr(st.Post)
		}
		c.asm.EmitBranch(visa.JMP, head)
		c.asm.Label(end)
	case *minic.Switch:
		c.genSwitch(st)
	case *minic.Break:
		if n := len(c.breakLbl); n > 0 {
			c.asm.EmitBranch(visa.JMP, c.breakLbl[n-1])
		}
	case *minic.Continue:
		if n := len(c.contLbl); n > 0 {
			c.asm.EmitBranch(visa.JMP, c.contLbl[n-1])
		}
	case *minic.Return:
		c.genReturn(st)
	case *minic.Goto:
		c.asm.EmitBranch(visa.JMP, "user."+c.fn.Name+"."+st.Label)
	case *minic.Label:
		c.asm.Label("user." + c.fn.Name + "." + st.Name)
		c.genStmt(st.Stmt)
	case *minic.AsmStmt:
		// The assembly text itself is opaque to VISA; a NOP stands in.
		// Its function-pointer type annotations flow into aux info so
		// the CFG generator can honor them (paper §6, condition C2).
		c.asm.Emit(visa.Instr{Op: visa.NOP})
		c.aux.AsmAnnotations = append(c.aux.AsmAnnotations, st.Annotations...)
	default:
		c.errf(s.NodePos(), "codegen: unhandled statement %T", s)
	}
}

func (c *compiler) pushLoop(brk, cont string) {
	c.breakLbl = append(c.breakLbl, brk)
	c.contLbl = append(c.contLbl, cont)
}

func (c *compiler) popLoop() {
	c.breakLbl = c.breakLbl[:len(c.breakLbl)-1]
	c.contLbl = c.contLbl[:len(c.contLbl)-1]
}

// genCondBranch evaluates cond and branches to target when it is false.
func (c *compiler) genCondBranch(cond minic.Expr, target string) {
	c.genExpr(cond)
	c.asm.Emit(visa.Instr{Op: visa.CMPI, R1: visa.R0, Imm: 0})
	c.asm.EmitBranch(visa.JE, target)
}

func (c *compiler) genDeclStmt(st *minic.DeclStmt) {
	if st.Static {
		// Hoist to module data with a mangled name; rewrite the symbol
		// so later references hit the global path.
		mangled := fmt.Sprintf("%s.%s.%d", c.fn.Name, st.Name, len(c.statics))
		c.statics = append(c.statics, staticInit{name: mangled, typ: st.Type, init: st.Init})
		st.Sym.Global = true
		st.Sym.Name = mangled
		c.dataLocal[mangled] = true
		return
	}
	off := c.allocLocal(st.Type)
	c.locals[st.Sym] = off
	if st.Init == nil {
		return
	}
	c.genLocalInit(st.Type, off, st.Init)
}

// genLocalInit stores an initializer into FP+off.
func (c *compiler) genLocalInit(t *ctypes.Type, off int, init minic.Expr) {
	switch iv := init.(type) {
	case *minic.InitList:
		c.genZeroFill(off, t.Size())
		switch t.Kind {
		case ctypes.Array:
			esz := t.Elem.Size()
			for i, el := range iv.Elems {
				c.genLocalInit(t.Elem, off+i*esz, el)
			}
		case ctypes.Struct, ctypes.Union:
			for i, el := range iv.Elems {
				if i < len(t.Fields) {
					c.genLocalInit(t.Fields[i].Type, off+t.Fields[i].Offset, el)
				}
			}
		default:
			if len(iv.Elems) == 1 {
				c.genLocalInit(t, off, iv.Elems[0])
			}
		}
	case *minic.StrLit:
		if t.Kind == ctypes.Array {
			// char buf[N] = "str": copy bytes, zero the rest.
			c.genZeroFill(off, t.Size())
			sym := c.internString(iv.Value)
			c.asm.EmitMoviSym(visa.R1, sym, 0)
			c.asm.Emit(visa.Instr{Op: visa.MOV, R1: visa.R2, R2: visa.FP})
			c.asm.Emit(visa.Instr{Op: visa.ADDI, R1: visa.R2, Imm: int64(off)})
			n := len(iv.Value) + 1
			if n > t.Size() {
				n = t.Size()
			}
			c.genMemCopy(visa.R2, visa.R1, n)
			return
		}
		c.genExpr(init)
		c.storeToFP(off, t)
	default:
		if isRecord(t) {
			c.genExpr(init) // address of the source record in R0
			c.asm.Emit(visa.Instr{Op: visa.MOV, R1: visa.R1, R2: visa.R0})
			c.asm.Emit(visa.Instr{Op: visa.MOV, R1: visa.R2, R2: visa.FP})
			c.asm.Emit(visa.Instr{Op: visa.ADDI, R1: visa.R2, Imm: int64(off)})
			c.genMemCopy(visa.R2, visa.R1, t.Size())
			return
		}
		c.genExpr(init)
		c.storeToFP(off, t)
	}
}

// storeToFP stores R0 into FP+off with the width of t.
func (c *compiler) storeToFP(off int, t *ctypes.Type) {
	c.asm.Emit(visa.Instr{Op: storeOp(t), R1: visa.R0, R2: visa.FP, Imm: int64(off)})
}

// genZeroFill zeroes size bytes at FP+off.
func (c *compiler) genZeroFill(off, size int) {
	if size <= 0 {
		return
	}
	c.asm.Emit(visa.Instr{Op: visa.MOVI, R1: visa.R1, Imm: 0})
	if size <= 128 {
		for b := 0; b+8 <= size; b += 8 {
			c.asm.Emit(visa.Instr{Op: visa.ST64, R1: visa.R1, R2: visa.FP, Imm: int64(off + b)})
		}
		for b := size &^ 7; b < size; b++ {
			c.asm.Emit(visa.Instr{Op: visa.ST8, R1: visa.R1, R2: visa.FP, Imm: int64(off + b)})
		}
		return
	}
	// Loop for large objects: R2 = dest cursor, R3 = end.
	c.asm.Emit(visa.Instr{Op: visa.MOV, R1: visa.R2, R2: visa.FP})
	c.asm.Emit(visa.Instr{Op: visa.ADDI, R1: visa.R2, Imm: int64(off)})
	c.asm.Emit(visa.Instr{Op: visa.MOV, R1: visa.R3, R2: visa.R2})
	c.asm.Emit(visa.Instr{Op: visa.ADDI, R1: visa.R3, Imm: int64(size &^ 7)})
	loop := c.label("zfill")
	c.asm.Label(loop)
	rewrite.EmitStoreMask(c.asm, visa.R2, c.opts.Instrument, c.opts.Profile)
	c.asm.Emit(visa.Instr{Op: visa.ST64, R1: visa.R1, R2: visa.R2, Imm: 0})
	c.asm.Emit(visa.Instr{Op: visa.ADDI, R1: visa.R2, Imm: 8})
	c.asm.Emit(visa.Instr{Op: visa.CMP, R1: visa.R2, R2: visa.R3})
	c.asm.EmitBranch(visa.JB, loop)
	for b := size &^ 7; b < size; b++ {
		c.asm.Emit(visa.Instr{Op: visa.ST8, R1: visa.R1, R2: visa.FP, Imm: int64(off + b)})
	}
}

// genMemCopy copies n bytes from [src] to [dst]; clobbers R5 and the
// cursor registers. dst and src must be distinct registers other than
// R5.
func (c *compiler) genMemCopy(dst, src byte, n int) {
	if n <= 0 {
		return
	}
	if n <= 64 {
		for b := 0; b+8 <= n; b += 8 {
			c.asm.Emit(visa.Instr{Op: visa.LD64, R1: visa.R5, R2: src, Imm: int64(b)})
			rewrite.EmitStoreMask(c.asm, dst, c.opts.Instrument, c.opts.Profile)
			c.asm.Emit(visa.Instr{Op: visa.ST64, R1: visa.R5, R2: dst, Imm: int64(b)})
		}
		for b := n &^ 7; b < n; b++ {
			c.asm.Emit(visa.Instr{Op: visa.LD8U, R1: visa.R5, R2: src, Imm: int64(b)})
			rewrite.EmitStoreMask(c.asm, dst, c.opts.Instrument, c.opts.Profile)
			c.asm.Emit(visa.Instr{Op: visa.ST8, R1: visa.R5, R2: dst, Imm: int64(b)})
		}
		return
	}
	// Word-copy loop; uses R4 as the byte counter.
	c.asm.Emit(visa.Instr{Op: visa.MOVI, R1: visa.R4, Imm: 0})
	loop := c.label("memcpy")
	tail := c.label("memcpytail")
	c.asm.Label(loop)
	c.asm.Emit(visa.Instr{Op: visa.MOV, R1: visa.R5, R2: visa.R4})
	c.asm.Emit(visa.Instr{Op: visa.CMPI, R1: visa.R5, Imm: int64(n &^ 7)})
	c.asm.EmitBranch(visa.JAE, tail)
	c.asm.Emit(visa.Instr{Op: visa.ADD, R1: visa.R5, R2: src})
	c.asm.Emit(visa.Instr{Op: visa.LD64, R1: visa.R5, R2: visa.R5, Imm: 0})
	c.asm.Emit(visa.Instr{Op: visa.MOV, R1: visa.R3, R2: visa.R4})
	c.asm.Emit(visa.Instr{Op: visa.ADD, R1: visa.R3, R2: dst})
	rewrite.EmitStoreMask(c.asm, visa.R3, c.opts.Instrument, c.opts.Profile)
	c.asm.Emit(visa.Instr{Op: visa.ST64, R1: visa.R5, R2: visa.R3, Imm: 0})
	c.asm.Emit(visa.Instr{Op: visa.ADDI, R1: visa.R4, Imm: 8})
	c.asm.EmitBranch(visa.JMP, loop)
	c.asm.Label(tail)
	for b := n &^ 7; b < n; b++ {
		c.asm.Emit(visa.Instr{Op: visa.LD8U, R1: visa.R5, R2: src, Imm: int64(b)})
		rewrite.EmitStoreMask(c.asm, dst, c.opts.Instrument, c.opts.Profile)
		c.asm.Emit(visa.Instr{Op: visa.ST8, R1: visa.R5, R2: dst, Imm: int64(b)})
	}
}

func (c *compiler) genReturn(st *minic.Return) {
	if st.X != nil {
		if c.sretHidden {
			// Copy the record into *__sret and return the pointer.
			c.genExpr(st.X) // source address in R0
			c.asm.Emit(visa.Instr{Op: visa.MOV, R1: visa.R1, R2: visa.R0})
			c.asm.Emit(visa.Instr{Op: visa.LD64, R1: visa.R2, R2: visa.FP, Imm: int64(c.paramOff["__sret"])})
			c.genMemCopy(visa.R2, visa.R1, c.fn.Type.Result.Size())
			c.asm.Emit(visa.Instr{Op: visa.LD64, R1: visa.R0, R2: visa.FP, Imm: int64(c.paramOff["__sret"])})
		} else {
			// Tail-call optimization (Profile64 only).
			if c.opts.Profile == visa.Profile64 && c.tryTailCall(st.X) {
				return
			}
			c.genExpr(st.X)
		}
	}
	c.genEpilogueReturn()
}

func (c *compiler) genSwitch(st *minic.Switch) {
	end := c.label("endswitch")
	c.breakLbl = append(c.breakLbl, end)
	c.contLbl = append(c.contLbl, "") // switch does not catch continue
	defer func() {
		c.breakLbl = c.breakLbl[:len(c.breakLbl)-1]
		c.contLbl = c.contLbl[:len(c.contLbl)-1]
	}()

	c.genExpr(st.Cond)

	var vals []caseVal
	defaultLbl := end
	armLbls := make([]string, len(st.Cases))
	for i, arm := range st.Cases {
		armLbls[i] = c.label(fmt.Sprintf("case%d", i))
		if arm.IsDefault {
			defaultLbl = armLbls[i]
		}
		for _, v := range arm.Vals {
			cv, err := minic.EvalConstExpr(v, c.unit.File.EnumConsts)
			if err != nil {
				c.errf(v.NodePos(), "non-constant case: %v", err)
				continue
			}
			vals = append(vals, caseVal{val: cv, lbl: armLbls[i]})
		}
	}

	lo, hi := int64(0), int64(0)
	for i, v := range vals {
		if i == 0 || v.val < lo {
			lo = v.val
		}
		if i == 0 || v.val > hi {
			hi = v.val
		}
	}
	span := hi - lo + 1
	dense := len(vals) >= 4 && span <= int64(4*len(vals)) && span < 4096

	if dense {
		c.genJumpTableSwitch(vals, lo, span, defaultLbl)
	} else {
		for _, v := range vals {
			c.asm.Emit(visa.Instr{Op: visa.CMPI, R1: visa.R0, Imm: v.val})
			c.asm.EmitBranch(visa.JE, v.lbl)
		}
		c.asm.EmitBranch(visa.JMP, defaultLbl)
	}

	for i, arm := range st.Cases {
		c.asm.Label(armLbls[i])
		for _, inner := range arm.Stmts {
			c.genStmt(inner)
		}
		// fallthrough to the next arm (C semantics)
	}
	c.asm.Label(end)
}

// pendingTable defers jump-table materialization to the end of the
// function; entries are function-relative offsets of case labels.
type pendingTable struct {
	labels     []string
	relocIndex int // index into asm.Relocs of the table-base MOVI
	ibIndex    int // index into c.aux.IBs of the IBSwitch record
}

// genJumpTableSwitch emits the jump-table lowering: the
// intraprocedural indirect jump whose targets are "organized in
// read-only jump tables, which are hard-coded into the program" and
// are "statically analyzed to determine their control-flow targets"
// rather than instrumented (paper §6).
func (c *compiler) genJumpTableSwitch(vals []caseVal, lo, span int64, defaultLbl string) {
	// Index = cond - lo; bounds-check against span.
	c.asm.Emit(visa.Instr{Op: visa.ADDI, R1: visa.R0, Imm: -lo})
	c.asm.Emit(visa.Instr{Op: visa.CMPI, R1: visa.R0, Imm: span})
	c.asm.EmitBranch(visa.JAE, defaultLbl)

	// R1 = table base (function symbol + table delta, patched later).
	c.asm.Emit(visa.Instr{Op: visa.MOVI, R1: visa.R1})
	relocIdx := len(c.asm.Relocs)
	c.asm.Relocs = append(c.asm.Relocs, visa.Reloc{
		Offset: c.asm.Pos() - 8, Symbol: c.fn.Name, JumpTable: true, // addend patched
	})
	// R2 = 8 * index; R1 = &table[index]; R2 = entry (fn-relative).
	c.asm.Emit(visa.Instr{Op: visa.MOV, R1: visa.R2, R2: visa.R0})
	c.asm.Emit(visa.Instr{Op: visa.MOVI, R1: visa.R3, Imm: 3})
	c.asm.Emit(visa.Instr{Op: visa.SHL, R1: visa.R2, R2: visa.R3})
	c.asm.Emit(visa.Instr{Op: visa.ADD, R1: visa.R1, R2: visa.R2})
	c.asm.Emit(visa.Instr{Op: visa.LD64, R1: visa.R2, R2: visa.R1, Imm: 0})
	// R1 = function base; target = base + entry.
	c.asm.Emit(visa.Instr{Op: visa.MOVI, R1: visa.R1})
	c.asm.Relocs = append(c.asm.Relocs, visa.Reloc{
		Offset: c.asm.Pos() - 8, Symbol: c.fn.Name, JumpTable: true,
	})
	c.asm.Emit(visa.Instr{Op: visa.ADD, R1: visa.R2, R2: visa.R1})
	ibOff := c.asm.Pos()
	c.asm.Emit(visa.Instr{Op: visa.JMPR, R1: visa.R2})

	// Table entries: one per span slot, default for holes.
	labels := make([]string, span)
	for i := range labels {
		labels[i] = defaultLbl
	}
	for _, v := range vals {
		labels[v.val-lo] = v.lbl
	}
	c.aux.IBs = append(c.aux.IBs, module.IndirectBranch{
		Offset:       ibOff,
		Kind:         module.IBSwitch,
		Func:         c.fn.Name,
		TLoadIOffset: -1,
		CheckStart:   -1,
		GotSlot:      -1,
	})
	c.pendingTables = append(c.pendingTables, pendingTable{
		labels:     labels,
		relocIndex: relocIdx,
		ibIndex:    len(c.aux.IBs) - 1,
	})
}

// materializeTables appends this function's pending jump tables to the
// code stream. All case labels are bound by the end of the function,
// so entries (function-relative target offsets) resolve immediately.
func (c *compiler) materializeTables() {
	for _, pt := range c.pendingTables {
		for c.asm.Pos()%8 != 0 {
			c.asm.Emit(visa.Instr{Op: visa.NOP})
		}
		tableOff := c.asm.Pos()
		c.asm.Relocs[pt.relocIndex].Addend = int64(tableOff - c.fnStart)
		ib := &c.aux.IBs[pt.ibIndex]
		ib.TableOff = tableOff
		ib.TableLen = 8 * len(pt.labels)
		var entries []byte
		for _, lbl := range pt.labels {
			off, ok := c.asm.LabelAt(lbl)
			if !ok {
				c.errf(c.fn.Pos, "jump table label %q unbound", lbl)
				off = c.fnStart
			}
			ib.Targets = append(ib.Targets, off)
			rel := uint64(off - c.fnStart)
			for b := 0; b < 8; b++ {
				entries = append(entries, byte(rel>>(8*b)))
			}
		}
		c.asm.EmitRaw(entries)
	}
	c.pendingTables = c.pendingTables[:0]
}
