package codegen

import (
	"mcfi/internal/ctypes"
	"mcfi/internal/minic"
	"mcfi/internal/module"
	"mcfi/internal/rewrite"
	"mcfi/internal/visa"
)

// calleeFuncType returns the function type being invoked by the call
// and whether it is a direct call to a named function.
func calleeFuncType(x *minic.Call) (ft *ctypes.Type, direct *minic.Ident) {
	t := x.Fun.ExprType()
	if t == nil {
		return nil, nil
	}
	if t.Kind == ctypes.Func {
		d, _ := x.Fun.(*minic.Ident)
		return t, d
	}
	if t.IsFuncPointer() {
		return t.Elem, nil
	}
	return nil, nil
}

// argArea computes the argument-area layout of a call: per-arg slot
// offsets and the total size, including the hidden sret slot.
func argArea(ft *ctypes.Type, args []minic.Expr) (offs []int, total int, sret bool) {
	sret = isRecord(ft.Result)
	if sret {
		total += 8
	}
	offs = make([]int, len(args))
	for i, a := range args {
		offs[i] = total
		at := a.ExprType()
		if at == nil {
			total += 8
			continue
		}
		total += slotSize(at)
	}
	return offs, total, sret
}

func (c *compiler) genCall(x *minic.Call) {
	if id, ok := x.Fun.(*minic.Ident); ok {
		if c.genBuiltin(id.Name, x) {
			return
		}
	}
	ft, direct := calleeFuncType(x)
	if ft == nil {
		c.errf(x.Pos, "call through non-function value")
		return
	}
	offs, total, sret := argArea(ft, x.Args)

	var sretTemp int
	if sret {
		sretTemp = c.allocTemp(ft.Result.Size())
	}

	// Reserve the argument area and fill it left to right.
	if total > 0 {
		c.asm.Emit(visa.Instr{Op: visa.ADDI, R1: visa.SP, Imm: int64(-total)})
	}
	for i, a := range x.Args {
		at := a.ExprType()
		if isRecord(at) {
			c.genExpr(a) // source address
			c.asm.Emit(visa.Instr{Op: visa.MOV, R1: visa.R1, R2: visa.R0})
			c.asm.Emit(visa.Instr{Op: visa.MOV, R1: visa.R2, R2: visa.SP})
			c.asm.Emit(visa.Instr{Op: visa.ADDI, R1: visa.R2, Imm: int64(offs[i])})
			c.genMemCopy(visa.R2, visa.R1, at.Size())
			continue
		}
		c.genExpr(a)
		c.asm.Emit(visa.Instr{Op: visa.ST64, R1: visa.R0, R2: visa.SP, Imm: int64(offs[i])})
	}
	if sret {
		c.asm.Emit(visa.Instr{Op: visa.MOV, R1: visa.R1, R2: visa.FP})
		c.asm.Emit(visa.Instr{Op: visa.ADDI, R1: visa.R1, Imm: int64(sretTemp)})
		c.asm.Emit(visa.Instr{Op: visa.ST64, R1: visa.R1, R2: visa.SP, Imm: 0})
	}

	if direct != nil {
		c.genDirectCall(direct.Name, ft)
	} else {
		// Evaluate the function pointer after the arguments.
		c.genExpr(x.Fun)
		c.asm.Emit(visa.Instr{Op: visa.MOV, R1: visa.R11, R2: visa.R0})
		site := rewrite.EmitIndirectCall(c.asm, c.opts.Instrument)
		sig := ctypes.Signature(ft)
		c.aux.IBs = append(c.aux.IBs, module.IndirectBranch{
			Offset:       site.BranchOffset,
			Kind:         module.IBCall,
			Func:         c.fn.Name,
			FpSig:        sig,
			TLoadIOffset: site.TLoadIOffset,
			CheckStart:   site.CheckStart,
			GotSlot:      -1,
		})
		c.aux.RetSites = append(c.aux.RetSites, module.RetSite{
			Offset: c.asm.Pos(),
			FpSig:  sig,
		})
	}

	if total > 0 {
		c.asm.Emit(visa.Instr{Op: visa.ADDI, R1: visa.SP, Imm: int64(total)})
	}
	// Result: scalars in R0; records as the sret address (already in R0
	// per the callee's return protocol).
}

// genDirectCall emits a direct CALL to a named function, with return-
// site alignment and aux recording. Cross-module calls carry a
// RelCall32 relocation the linker resolves (possibly via a PLT entry).
func (c *compiler) genDirectCall(name string, ft *ctypes.Type) {
	callSize := visa.Instr{Op: visa.CALL}.Size()
	if c.opts.Instrument {
		rewrite.PadForAlignedEnd(c.asm, callSize)
	}
	if c.definedFunc(name) {
		c.asm.EmitBranch(visa.CALL, "fn."+name)
	} else {
		c.markRef(name)
		start := c.asm.Pos()
		c.asm.Emit(visa.Instr{Op: visa.CALL, Imm: 0})
		c.callRelocs = append(c.callRelocs, module.Reloc{
			Offset: start + 1, // rel32 field
			Symbol: name,
			Kind:   module.RelCall32,
		})
	}
	c.aux.RetSites = append(c.aux.RetSites, module.RetSite{
		Offset: c.asm.Pos(),
		Callee: name,
	})
}

// genBuiltin lowers compiler-intrinsic calls; returns false when the
// name is an ordinary function.
func (c *compiler) genBuiltin(name string, x *minic.Call) bool {
	switch name {
	case "setjmp", "_setjmp":
		if len(x.Args) != 1 {
			c.errf(x.Pos, "setjmp takes one argument")
			return true
		}
		c.genExpr(x.Args[0]) // env pointer in R0
		setjSize := visa.Instr{Op: visa.SETJ}.Size()
		if c.opts.Instrument {
			rewrite.PadForAlignedEnd(c.asm, setjSize)
		}
		c.asm.Emit(visa.Instr{Op: visa.SETJ, R1: visa.R0})
		// The instruction after SETJ is the longjmp continuation — an
		// indirect-branch target (paper §6: "connects the longjmp's
		// indirect jump to the return address of each setjmp").
		c.aux.SetjmpConts = append(c.aux.SetjmpConts, c.asm.Pos())
		return true
	case "longjmp", "_longjmp":
		if len(x.Args) != 2 {
			c.errf(x.Pos, "longjmp takes two arguments")
			return true
		}
		c.genExpr(x.Args[0])
		c.push() // env
		c.genExpr(x.Args[1])
		c.popTo(visa.R1) // env
		// R0 = val, forced nonzero (C11 7.13.2.1p4).
		nz := c.label("ljnz")
		c.asm.Emit(visa.Instr{Op: visa.CMPI, R1: visa.R0, Imm: 0})
		c.asm.EmitBranch(visa.JNE, nz)
		c.asm.Emit(visa.Instr{Op: visa.MOVI, R1: visa.R0, Imm: 1})
		c.asm.Label(nz)
		c.asm.Emit(visa.Instr{Op: visa.LD64, R1: visa.R3, R2: visa.R1, Imm: 0})   // SP
		c.asm.Emit(visa.Instr{Op: visa.LD64, R1: visa.R4, R2: visa.R1, Imm: 8})   // FP
		c.asm.Emit(visa.Instr{Op: visa.LD64, R1: visa.R11, R2: visa.R1, Imm: 16}) // PC
		site := rewrite.EmitLongjmp(c.asm, c.opts.Instrument)
		c.aux.IBs = append(c.aux.IBs, module.IndirectBranch{
			Offset:       site.BranchOffset,
			Kind:         module.IBLongjmp,
			Func:         c.fn.Name,
			TLoadIOffset: site.TLoadIOffset,
			CheckStart:   site.CheckStart,
			GotSlot:      -1,
		})
		return true
	case "__sys0", "__sys1", "__sys2", "__sys3":
		nargs := int(name[5] - '0')
		if len(x.Args) != nargs+1 {
			c.errf(x.Pos, "%s takes %d arguments", name, nargs+1)
			return true
		}
		num, err := minic.EvalConstExpr(x.Args[0], c.unit.File.EnumConsts)
		if err != nil {
			c.errf(x.Pos, "syscall number must be constant: %v", err)
			return true
		}
		for i := 1; i <= nargs; i++ {
			c.genExpr(x.Args[i])
			c.push()
		}
		for i := nargs - 1; i >= 0; i-- {
			c.popTo(byte(i)) // R0..R2
		}
		c.asm.Emit(visa.Instr{Op: visa.SYS, Imm: num})
		return true
	case "__vararg", "__vararg_d":
		if len(x.Args) != 1 {
			c.errf(x.Pos, "%s takes one argument", name)
			return true
		}
		if !c.fn.Type.Variadic {
			c.errf(x.Pos, "%s used outside a variadic function", name)
			return true
		}
		fixed := 16
		if c.sretHidden {
			fixed += 8
		}
		for _, pt := range c.fn.Type.Params {
			fixed += slotSize(pt)
		}
		c.genExpr(x.Args[0])
		c.asm.Emit(visa.Instr{Op: visa.MOVI, R1: visa.R1, Imm: 8})
		c.asm.Emit(visa.Instr{Op: visa.MUL, R1: visa.R0, R2: visa.R1})
		c.asm.Emit(visa.Instr{Op: visa.ADD, R1: visa.R0, R2: visa.FP})
		c.asm.Emit(visa.Instr{Op: visa.LD64, R1: visa.R0, R2: visa.R0, Imm: int64(fixed)})
		return true
	case "__trap":
		c.asm.Emit(visa.Instr{Op: visa.HLT})
		return true
	}
	return false
}

// fnParamBytes is the size of the current function's incoming argument
// area.
func (c *compiler) fnParamBytes() int {
	total := 0
	if c.sretHidden {
		total += 8
	}
	for _, pt := range c.fn.Type.Params {
		total += slotSize(pt)
	}
	return total
}

// tryTailCall emits a tail-call for "return f(args);" when legal on
// this profile, returning true on success. The transformation requires
// the callee's argument area to have exactly the caller's size so the
// frame can be reused in place — the restriction real compilers share.
func (c *compiler) tryTailCall(e minic.Expr) bool {
	x, ok := e.(*minic.Call)
	if !ok {
		return false
	}
	if id, ok := x.Fun.(*minic.Ident); ok {
		switch id.Name {
		case "setjmp", "_setjmp", "longjmp", "_longjmp",
			"__sys0", "__sys1", "__sys2", "__sys3",
			"__vararg", "__vararg_d", "__trap":
			return false
		}
	}
	ft, direct := calleeFuncType(x)
	if ft == nil || ft.Variadic || c.fn.Type.Variadic {
		return false
	}
	if isRecord(ft.Result) || c.sretHidden {
		return false
	}
	for _, a := range x.Args {
		if isRecord(a.ExprType()) {
			return false
		}
	}
	offs, total, _ := argArea(ft, x.Args)
	if total != c.fnParamBytes() {
		return false
	}
	// Direct tail calls must stay within the module (PLT round trips
	// are not tail-callable).
	if direct != nil && !c.definedFunc(direct.Name) {
		return false
	}

	// Evaluate arguments into a temporary area below SP.
	if total > 0 {
		c.asm.Emit(visa.Instr{Op: visa.ADDI, R1: visa.SP, Imm: int64(-total)})
	}
	for i, a := range x.Args {
		c.genExpr(a)
		c.asm.Emit(visa.Instr{Op: visa.ST64, R1: visa.R0, R2: visa.SP, Imm: int64(offs[i])})
	}
	var sig string
	if direct == nil {
		c.genExpr(x.Fun)
		c.asm.Emit(visa.Instr{Op: visa.MOV, R1: visa.R12, R2: visa.R0})
		sig = ctypes.Signature(ft)
	}
	// Copy into the incoming argument slots, which the callee will own.
	for w := 0; w < total; w += 8 {
		c.asm.Emit(visa.Instr{Op: visa.LD64, R1: visa.R1, R2: visa.SP, Imm: int64(w)})
		c.asm.Emit(visa.Instr{Op: visa.ST64, R1: visa.R1, R2: visa.FP, Imm: int64(16 + w)})
	}
	if total > 0 {
		c.asm.Emit(visa.Instr{Op: visa.ADDI, R1: visa.SP, Imm: int64(total)})
	}
	// Tear down the frame; the caller's return address becomes the
	// callee's.
	c.asm.Emit(visa.Instr{Op: visa.MOV, R1: visa.SP, R2: visa.FP})
	c.asm.Emit(visa.Instr{Op: visa.POP, R1: visa.FP})

	if direct != nil {
		c.asm.EmitBranch(visa.JMP, "fn."+direct.Name)
		c.curFuncInfo.TailCalls = append(c.curFuncInfo.TailCalls, direct.Name)
		return true
	}
	c.asm.Emit(visa.Instr{Op: visa.MOV, R1: visa.R11, R2: visa.R12})
	site := rewrite.EmitTailJump(c.asm, c.opts.Instrument)
	c.aux.IBs = append(c.aux.IBs, module.IndirectBranch{
		Offset:       site.BranchOffset,
		Kind:         module.IBTailJmp,
		Func:         c.fn.Name,
		FpSig:        sig,
		TLoadIOffset: site.TLoadIOffset,
		CheckStart:   site.CheckStart,
		GotSlot:      -1,
	})
	c.curFuncInfo.TailSigs = append(c.curFuncInfo.TailSigs, sig)
	return true
}
