// Package air computes the Average Indirect-target Reduction metric
// (AIR, from Zhang & Sekar's binCFI, used by the paper in §8.3):
//
//	AIR = 1 - (1/n) * Σ_j |T_j| / S
//
// where n is the number of indirect branches, T_j the target set the
// CFI policy allows branch j, and S the size of the unrestricted
// target space (all code addresses). A program without CFI has AIR 0;
// tighter policies approach 1.
package air

// Compute evaluates the AIR formula over per-branch target-set sizes.
// space is S; it must be positive. With no branches the reduction is
// vacuously perfect (1).
func Compute(targetSizes []int, space int) float64 {
	if space <= 0 {
		return 0
	}
	if len(targetSizes) == 0 {
		return 1
	}
	sum := 0.0
	for _, t := range targetSizes {
		if t < 0 {
			t = 0
		}
		if t > space {
			t = space
		}
		sum += float64(t) / float64(space)
	}
	return 1 - sum/float64(len(targetSizes))
}
