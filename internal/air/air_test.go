package air

import (
	"math"
	"testing"
	"testing/quick"
)

func TestComputeBounds(t *testing.T) {
	// No protection: every branch targets the whole space -> AIR 0.
	if got := Compute([]int{1000, 1000}, 1000); got != 0 {
		t.Errorf("unprotected AIR = %v, want 0", got)
	}
	// Perfect protection: single-target branches in a big space.
	got := Compute([]int{1, 1, 1}, 1_000_000)
	if got < 0.999996 || got > 1 {
		t.Errorf("tight AIR = %v", got)
	}
	// Empty and degenerate inputs.
	if Compute(nil, 100) != 1 {
		t.Error("no branches should give AIR 1")
	}
	if Compute([]int{5}, 0) != 0 {
		t.Error("zero space should give 0")
	}
}

func TestComputeKnownValue(t *testing.T) {
	// Two branches: |T| = 10 and 30 in S=100: AIR = 1 - (0.1+0.3)/2 = 0.8.
	got := Compute([]int{10, 30}, 100)
	if math.Abs(got-0.8) > 1e-12 {
		t.Errorf("AIR = %v, want 0.8", got)
	}
}

func TestMonotonicity(t *testing.T) {
	// Shrinking any target set cannot decrease AIR.
	a := Compute([]int{50, 50}, 100)
	b := Compute([]int{50, 10}, 100)
	if b <= a {
		t.Errorf("AIR should improve when a set shrinks: %v -> %v", a, b)
	}
}

func TestPropRange(t *testing.T) {
	f := func(sizes []uint16, space uint16) bool {
		s := int(space%10000) + 1
		ts := make([]int, len(sizes))
		for i, v := range sizes {
			ts[i] = int(v)
		}
		got := Compute(ts, s)
		return got >= 0 && got <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
