// Package id implements MCFI's ID encoding (paper Fig. 2).
//
// An ID is four bytes. The least-significant bit of each byte is
// reserved with the fixed values 0, 0, 0, 1 from the high byte to the
// low byte; an ID carrying those values is "valid". The reserved bits
// guarantee that a four-byte load from a misaligned address — which
// straddles two IDs or picks up an ID's interior — cannot itself be a
// valid ID, which is how MCFI rejects indirect branches to addresses
// that are not four-byte aligned without masking them.
//
// The remaining 28 bits hold a 14-bit equivalence-class number (ECN) in
// the high two bytes and a 14-bit version number in the low two bytes.
// Fusing the ECN (real data) and the version (transaction metadata)
// into one atomically-loadable word is the paper's key departure from
// generic STM: one load retrieves both, and one comparison checks
// validity, version, and ECN simultaneously (§5.2).
package id

// Limits imposed by the 14-bit fields.
const (
	// MaxECN is the number of distinct equivalence classes (2^14).
	MaxECN = 1 << 14
	// MaxVersion is the number of distinct version numbers (2^14).
	MaxVersion = 1 << 14
)

// ID is an MCFI identifier.
type ID uint32

// reservedMask selects the reserved (low) bit of each byte; a valid ID
// has exactly reservedWant in those positions.
const (
	reservedMask = 0x01010101
	reservedWant = 0x00000001
)

// Encode builds a valid ID from an ECN and a version number. Values
// out of range are truncated to 14 bits.
func Encode(ecn, version int) ID {
	e := uint32(ecn) & (MaxECN - 1)
	v := uint32(version) & (MaxVersion - 1)
	b3 := ((e >> 7) & 0x7F) << 1
	b2 := (e & 0x7F) << 1
	b1 := ((v >> 7) & 0x7F) << 1
	b0 := (v&0x7F)<<1 | 1
	return ID(b3<<24 | b2<<16 | b1<<8 | b0)
}

// Valid reports whether the reserved bits carry their required values.
// An all-zero Tary entry (no indirect-branch target at this address)
// and any word fetched from a misaligned address are invalid.
func (d ID) Valid() bool { return uint32(d)&reservedMask == reservedWant }

// ECN extracts the 14-bit equivalence class number.
func (d ID) ECN() int {
	b3 := (uint32(d) >> 24) & 0xFF
	b2 := (uint32(d) >> 16) & 0xFF
	return int((b3>>1)<<7 | b2>>1)
}

// Version extracts the 14-bit version number.
func (d ID) Version() int {
	b1 := (uint32(d) >> 8) & 0xFF
	b0 := uint32(d) & 0xFF
	return int((b1>>1)<<7 | b0>>1)
}

// SameVersion reports whether two IDs carry the same version number —
// the CMPW (16-bit compare) of the check transaction. Per Fig. 4 the
// low two bytes hold the version, so comparing the low 16 bits
// compares versions (plus two reserved bits that are fixed anyway).
func SameVersion(a, b ID) bool { return uint32(a)&0xFFFF == uint32(b)&0xFFFF }

// LowBitSet reports the "testb $1" validity probe of the check
// transaction: the lowest bit of the low byte must be 1.
func (d ID) LowBitSet() bool { return uint32(d)&1 == 1 }
