package id

import (
	"testing"
	"testing/quick"
)

func TestEncodeRoundTrip(t *testing.T) {
	cases := []struct{ ecn, ver int }{
		{0, 0}, {1, 0}, {0, 1}, {127, 127}, {128, 128},
		{MaxECN - 1, MaxVersion - 1}, {4242, 137}, {9999, 16000},
	}
	for _, c := range cases {
		d := Encode(c.ecn, c.ver)
		if !d.Valid() {
			t.Errorf("Encode(%d,%d) = %08x not valid", c.ecn, c.ver, uint32(d))
		}
		if d.ECN() != c.ecn {
			t.Errorf("ECN(Encode(%d,%d)) = %d", c.ecn, c.ver, d.ECN())
		}
		if d.Version() != c.ver {
			t.Errorf("Version(Encode(%d,%d)) = %d", c.ecn, c.ver, d.Version())
		}
	}
}

func TestReservedBitLayout(t *testing.T) {
	d := Encode(MaxECN-1, MaxVersion-1)
	// From high byte to low byte, the reserved (low) bits must be 0,0,0,1.
	b := uint32(d)
	if (b>>24)&1 != 0 || (b>>16)&1 != 0 || (b>>8)&1 != 0 || b&1 != 1 {
		t.Errorf("reserved bits wrong in %08x", b)
	}
	if !d.LowBitSet() {
		t.Error("LowBitSet must hold on a valid ID")
	}
}

func TestZeroIsInvalid(t *testing.T) {
	// An all-zero Tary entry must never validate: that is how MCFI
	// rejects jumps to addresses that are not indirect-branch targets.
	if ID(0).Valid() {
		t.Error("zero ID must be invalid")
	}
	if ID(0).LowBitSet() {
		t.Error("zero ID must fail the testb probe")
	}
}

func TestMisalignedReadCannotBeValid(t *testing.T) {
	// Simulate the Tary table as consecutive valid IDs and check that a
	// 4-byte load at any misaligned offset yields an invalid ID — the
	// guarantee the reserved bits exist for (paper §5.1).
	words := []ID{Encode(5, 9), Encode(6, 9), Encode(7, 9), Encode(8, 9)}
	var bytes []byte
	for _, w := range words {
		bytes = append(bytes, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	for off := 0; off+4 <= len(bytes); off++ {
		v := ID(uint32(bytes[off]) | uint32(bytes[off+1])<<8 |
			uint32(bytes[off+2])<<16 | uint32(bytes[off+3])<<24)
		if off%4 == 0 {
			if !v.Valid() {
				t.Errorf("aligned read at %d should be valid", off)
			}
		} else if v.Valid() {
			t.Errorf("misaligned read at %d yields valid ID %08x", off, uint32(v))
		}
	}
}

func TestSameVersion(t *testing.T) {
	a := Encode(1, 77)
	b := Encode(2, 77)
	c := Encode(1, 78)
	if !SameVersion(a, b) {
		t.Error("same version, different ECN should report SameVersion")
	}
	if SameVersion(a, c) {
		t.Error("different versions should not report SameVersion")
	}
}

func TestVersionWraparound(t *testing.T) {
	d := Encode(3, MaxVersion+5) // wraps to 5
	if d.Version() != 5 {
		t.Errorf("wrapped version = %d, want 5", d.Version())
	}
	e := Encode(MaxECN+7, 0) // wraps to 7
	if e.ECN() != 7 {
		t.Errorf("wrapped ECN = %d, want 7", e.ECN())
	}
}

func TestPropEncodeDistinct(t *testing.T) {
	// Distinct (ecn, version) pairs encode to distinct IDs: the check
	// transaction's single comparison can only pass on an exact match.
	f := func(e1, v1, e2, v2 uint16) bool {
		a := Encode(int(e1)%MaxECN, int(v1)%MaxVersion)
		b := Encode(int(e2)%MaxECN, int(v2)%MaxVersion)
		sameInput := int(e1)%MaxECN == int(e2)%MaxECN && int(v1)%MaxVersion == int(v2)%MaxVersion
		return (a == b) == sameInput
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestPropEqualIDsMatchECNAndVersion(t *testing.T) {
	// ID equality must be exactly "same ECN and same version" — the
	// single-comparison fast path of TxCheck (paper Fig. 4 case 1).
	f := func(e1, v1 uint16) bool {
		d := Encode(int(e1), int(v1))
		return d.Valid() &&
			d.ECN() == int(e1)%MaxECN &&
			d.Version() == int(v1)%MaxVersion
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
