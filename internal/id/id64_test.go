package id

import (
	"testing"
	"testing/quick"
)

func TestEncode64RoundTrip(t *testing.T) {
	cases := []struct{ ecn, ver int }{
		{0, 0}, {1, 2}, {127, 127}, {128, 129},
		{MaxECN64 - 1, MaxVersion64 - 1}, {1 << 20, 1 << 21},
	}
	for _, c := range cases {
		d := Encode64(c.ecn, c.ver)
		if !d.Valid() {
			t.Errorf("Encode64(%d,%d) not valid: %016x", c.ecn, c.ver, uint64(d))
		}
		if d.ECN() != c.ecn || d.Version() != c.ver {
			t.Errorf("round trip (%d,%d) -> (%d,%d)", c.ecn, c.ver, d.ECN(), d.Version())
		}
	}
}

func TestID64ReservedBits(t *testing.T) {
	d := Encode64(MaxECN64-1, MaxVersion64-1)
	b := uint64(d)
	for byteIdx := 1; byteIdx < 8; byteIdx++ {
		if (b>>(8*byteIdx))&1 != 0 {
			t.Errorf("reserved bit of byte %d set in %016x", byteIdx, b)
		}
	}
	if b&1 != 1 {
		t.Error("lowest reserved bit must be 1")
	}
	if ID64(0).Valid() {
		t.Error("zero wide ID must be invalid")
	}
}

func TestID64MisalignedNeverValid(t *testing.T) {
	// Lay out consecutive valid wide IDs and read at all misaligned
	// 8-byte offsets.
	ids := []ID64{Encode64(3, 5), Encode64(4, 5), Encode64(5, 5)}
	var bytes []byte
	for _, w := range ids {
		for i := 0; i < 8; i++ {
			bytes = append(bytes, byte(uint64(w)>>(8*i)))
		}
	}
	for off := 0; off+8 <= len(bytes); off++ {
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(bytes[off+i]) << (8 * i)
		}
		if off%8 == 0 {
			if !ID64(v).Valid() {
				t.Errorf("aligned read at %d invalid", off)
			}
		} else if ID64(v).Valid() {
			t.Errorf("misaligned read at %d valid: %016x", off, v)
		}
	}
}

func TestID64VersionSpaceExceeds32Bit(t *testing.T) {
	// The point of the extension: the version space is 2^28, far past
	// the 2^14 where narrow IDs could hit the ABA bound.
	if MaxVersion64 <= MaxVersion {
		t.Fatal("wide version space must exceed the narrow one")
	}
	a := Encode64(1, MaxVersion+1) // would have wrapped in 14-bit space
	if a.Version() != MaxVersion+1 {
		t.Errorf("version %d wrapped prematurely", a.Version())
	}
}

func TestPropEncode64Injective(t *testing.T) {
	f := func(e1, v1, e2, v2 uint32) bool {
		a := Encode64(int(e1)%MaxECN64, int(v1)%MaxVersion64)
		b := Encode64(int(e2)%MaxECN64, int(v2)%MaxVersion64)
		same := int(e1)%MaxECN64 == int(e2)%MaxECN64 &&
			int(v1)%MaxVersion64 == int(v2)%MaxVersion64
		if (a == b) != same {
			return false
		}
		return SameVersion64(a, Encode64(int(e2)%MaxECN64, int(v1)%MaxVersion64))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
