package id

// This file implements the paper's proposed ABA hardening (§5.2):
// "MCFI could use a larger space for version numbers such as 8-byte
// IDs on x86-64". ID64 widens both fields — a 28-bit ECN and a 28-bit
// version — while keeping the reserved-bit discipline: the lowest bit
// of each of the eight bytes is reserved, with values 0 everywhere
// except the lowest byte, so a misaligned 8-byte load can never parse
// as a valid wide ID. The runtime keeps 4-byte IDs (an 8-byte Tary
// would double table memory, and 2^14 versions already make ABA a
// counter-checkable non-event); ID64 exists as the drop-in encoding a
// port would use, with the same operations and tests.

// Wide-ID limits.
const (
	// MaxECN64 is the number of equivalence classes for wide IDs (2^28).
	MaxECN64 = 1 << 28
	// MaxVersion64 is the number of wide version numbers (2^28).
	MaxVersion64 = 1 << 28
)

// ID64 is the widened MCFI identifier.
type ID64 uint64

const (
	reservedMask64 = 0x0101010101010101
	reservedWant64 = 0x0000000000000001
)

// Encode64 packs ecn and version into a valid wide ID. The ECN
// occupies the payload bits of the four high bytes, the version those
// of the four low bytes (7 payload bits per byte).
func Encode64(ecn, version int) ID64 {
	e := uint64(ecn) & (MaxECN64 - 1)
	v := uint64(version) & (MaxVersion64 - 1)
	var out uint64
	for b := 0; b < 4; b++ {
		out |= ((v >> (7 * b)) & 0x7F) << (8*b + 1)
	}
	for b := 0; b < 4; b++ {
		out |= ((e >> (7 * b)) & 0x7F) << (8*(b+4) + 1)
	}
	return ID64(out | 1) // reserved low bit of the lowest byte
}

// Valid reports whether the reserved bits carry their required values.
func (d ID64) Valid() bool { return uint64(d)&reservedMask64 == reservedWant64 }

// ECN extracts the 28-bit equivalence-class number.
func (d ID64) ECN() int {
	var e uint64
	for b := 0; b < 4; b++ {
		e |= ((uint64(d) >> (8*(b+4) + 1)) & 0x7F) << (7 * b)
	}
	return int(e)
}

// Version extracts the 28-bit version number.
func (d ID64) Version() int {
	var v uint64
	for b := 0; b < 4; b++ {
		v |= ((uint64(d) >> (8*b + 1)) & 0x7F) << (7 * b)
	}
	return int(v)
}

// SameVersion compares the version halves (the wide CMPW analogue: a
// 32-bit compare of the low words).
func SameVersion64(a, b ID64) bool {
	return uint64(a)&0xFFFFFFFF == uint64(b)&0xFFFFFFFF
}

// LowBitSet is the testb validity probe.
func (d ID64) LowBitSet() bool { return uint64(d)&1 == 1 }
