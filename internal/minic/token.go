// Package minic implements the MiniC front end: a lexer, AST, and
// recursive-descent parser for the C subset used throughout the MCFI
// reproduction. MiniC covers the features MCFI's type-matching CFG
// generation cares about: structs, unions, enums, typedefs, function
// pointers, variadic prototypes, explicit and implicit casts, switch
// statements (compiled to jump tables), setjmp/longjmp, and an asm()
// escape hatch (for the C2 analyzer).
package minic

import "fmt"

// Tok identifies a lexical token kind.
type Tok int

// Token kinds.
const (
	EOF Tok = iota
	IDENT
	NUMBER  // integer literal
	FNUMBER // floating literal
	STRING  // string literal
	CHARLIT // character literal

	// Punctuation and operators.
	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACKET // [
	RBRACKET // ]
	SEMI     // ;
	COMMA    // ,
	DOT      // .
	ARROW    // ->
	ELLIPSIS // ...
	QUESTION // ?
	COLON    // :
	ASSIGN   // =
	ADDEQ    // +=
	SUBEQ    // -=
	MULEQ    // *=
	DIVEQ    // /=
	MODEQ    // %=
	SHLEQ    // <<=
	SHREQ    // >>=
	ANDEQ    // &=
	OREQ     // |=
	XOREQ    // ^=
	PLUS     // +
	MINUS    // -
	STAR     // *
	SLASH    // /
	PERCENT  // %
	INC      // ++
	DEC      // --
	EQ       // ==
	NE       // !=
	LT       // <
	GT       // >
	LE       // <=
	GE       // >=
	NOT      // !
	LAND     // &&
	LOR      // ||
	AMP      // &
	PIPE     // |
	CARET    // ^
	TILDE    // ~
	SHL      // <<
	SHR      // >>

	// Keywords.
	KwVoid
	KwChar
	KwShort
	KwInt
	KwLong
	KwUnsigned
	KwSigned
	KwDouble
	KwStruct
	KwUnion
	KwEnum
	KwTypedef
	KwIf
	KwElse
	KwWhile
	KwDo
	KwFor
	KwSwitch
	KwCase
	KwDefault
	KwBreak
	KwContinue
	KwReturn
	KwGoto
	KwSizeof
	KwStatic
	KwExtern
	KwConst
	KwAsm
)

var tokNames = map[Tok]string{
	EOF: "EOF", IDENT: "identifier", NUMBER: "number", FNUMBER: "float",
	STRING: "string", CHARLIT: "char literal",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}",
	LBRACKET: "[", RBRACKET: "]", SEMI: ";", COMMA: ",", DOT: ".",
	ARROW: "->", ELLIPSIS: "...", QUESTION: "?", COLON: ":",
	ASSIGN: "=", ADDEQ: "+=", SUBEQ: "-=", MULEQ: "*=", DIVEQ: "/=",
	MODEQ: "%=", SHLEQ: "<<=", SHREQ: ">>=", ANDEQ: "&=", OREQ: "|=",
	XOREQ: "^=", PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/",
	PERCENT: "%", INC: "++", DEC: "--", EQ: "==", NE: "!=", LT: "<",
	GT: ">", LE: "<=", GE: ">=", NOT: "!", LAND: "&&", LOR: "||",
	AMP: "&", PIPE: "|", CARET: "^", TILDE: "~", SHL: "<<", SHR: ">>",
	KwVoid: "void", KwChar: "char", KwShort: "short", KwInt: "int",
	KwLong: "long", KwUnsigned: "unsigned", KwSigned: "signed",
	KwDouble: "double", KwStruct: "struct", KwUnion: "union",
	KwEnum: "enum", KwTypedef: "typedef", KwIf: "if", KwElse: "else",
	KwWhile: "while", KwDo: "do", KwFor: "for", KwSwitch: "switch",
	KwCase: "case", KwDefault: "default", KwBreak: "break",
	KwContinue: "continue", KwReturn: "return", KwGoto: "goto",
	KwSizeof: "sizeof", KwStatic: "static", KwExtern: "extern",
	KwConst: "const", KwAsm: "asm",
}

// String returns a printable name for the token kind.
func (t Tok) String() string {
	if s, ok := tokNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Tok(%d)", int(t))
}

var keywords = map[string]Tok{
	"void": KwVoid, "char": KwChar, "short": KwShort, "int": KwInt,
	"long": KwLong, "unsigned": KwUnsigned, "signed": KwSigned,
	"double": KwDouble, "float": KwDouble, // float is widened to double
	"struct": KwStruct, "union": KwUnion, "enum": KwEnum,
	"typedef": KwTypedef, "if": KwIf, "else": KwElse, "while": KwWhile,
	"do": KwDo, "for": KwFor, "switch": KwSwitch, "case": KwCase,
	"default": KwDefault, "break": KwBreak, "continue": KwContinue,
	"return": KwReturn, "goto": KwGoto, "sizeof": KwSizeof,
	"static": KwStatic, "extern": KwExtern, "const": KwConst,
	"asm": KwAsm, "__asm__": KwAsm,
}

// Pos is a source position.
type Pos struct {
	File string
	Line int
	Col  int
}

// String renders the position as file:line:col.
func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Token is one lexical token with its source position and payload.
type Token struct {
	Kind Tok
	Pos  Pos
	Text string  // raw text for IDENT/STRING; decoded for STRING
	Int  int64   // value for NUMBER/CHARLIT
	Flt  float64 // value for FNUMBER
}
