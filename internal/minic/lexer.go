package minic

import (
	"fmt"
	"strconv"
	"strings"
)

// Lexer turns MiniC source text into a token stream. It strips //- and
// /* */-style comments and decodes the usual C escapes in string and
// character literals.
type Lexer struct {
	src  string
	file string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src; file is used in positions.
func NewLexer(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

// LexError describes a lexical error at a position.
type LexError struct {
	Pos Pos
	Msg string
}

func (e *LexError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func (l *Lexer) pos() Pos { return Pos{File: l.file, Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &LexError{Pos: start, Msg: "unterminated block comment"}
			}
		case c == '#':
			// MiniC has no preprocessor; treat #-lines (e.g. #include in
			// pasted sources) as comments so fixtures stay readable.
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token, or a token with Kind EOF at end of input.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	start := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: start}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		begin := l.off
		for l.off < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		text := l.src[begin:l.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Pos: start, Text: text}, nil
		}
		return Token{Kind: IDENT, Pos: start, Text: text}, nil
	case isDigit(c):
		return l.lexNumber(start)
	case c == '"':
		return l.lexString(start)
	case c == '\'':
		return l.lexChar(start)
	}
	return l.lexOperator(start)
}

func (l *Lexer) lexNumber(start Pos) (Token, error) {
	begin := l.off
	isHex := false
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		isHex = true
		l.advance()
		l.advance()
		for l.off < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
		}
	} else {
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	isFloat := false
	if !isHex && l.peek() == '.' && isDigit(l.peek2()) {
		isFloat = true
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if !isHex && (l.peek() == 'e' || l.peek() == 'E') {
		save := l.off
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if isDigit(l.peek()) {
			isFloat = true
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		} else {
			l.off = save
		}
	}
	text := l.src[begin:l.off]
	// Swallow C integer/float suffixes.
	for l.off < len(l.src) && strings.ContainsRune("uUlLfF", rune(l.peek())) {
		l.advance()
	}
	if isFloat {
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Token{}, &LexError{Pos: start, Msg: "bad float literal: " + text}
		}
		return Token{Kind: FNUMBER, Pos: start, Text: text, Flt: v}, nil
	}
	v, err := strconv.ParseUint(text, 0, 64)
	if err != nil {
		return Token{}, &LexError{Pos: start, Msg: "bad integer literal: " + text}
	}
	return Token{Kind: NUMBER, Pos: start, Text: text, Int: int64(v)}, nil
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (l *Lexer) lexEscape(start Pos) (byte, error) {
	if l.off >= len(l.src) {
		return 0, &LexError{Pos: start, Msg: "unterminated escape"}
	}
	c := l.advance()
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	case 'x':
		v := 0
		n := 0
		for n < 2 && l.off < len(l.src) && isHexDigit(l.peek()) {
			d, _ := strconv.ParseUint(string(l.advance()), 16, 8)
			v = v*16 + int(d)
			n++
		}
		if n == 0 {
			return 0, &LexError{Pos: start, Msg: "bad \\x escape"}
		}
		return byte(v), nil
	}
	return 0, &LexError{Pos: start, Msg: fmt.Sprintf("unknown escape \\%c", c)}
}

func (l *Lexer) lexString(start Pos) (Token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.off >= len(l.src) {
			return Token{}, &LexError{Pos: start, Msg: "unterminated string literal"}
		}
		c := l.advance()
		if c == '"' {
			break
		}
		if c == '\\' {
			e, err := l.lexEscape(start)
			if err != nil {
				return Token{}, err
			}
			b.WriteByte(e)
			continue
		}
		b.WriteByte(c)
	}
	return Token{Kind: STRING, Pos: start, Text: b.String()}, nil
}

func (l *Lexer) lexChar(start Pos) (Token, error) {
	l.advance() // opening quote
	if l.off >= len(l.src) {
		return Token{}, &LexError{Pos: start, Msg: "unterminated char literal"}
	}
	var v byte
	c := l.advance()
	if c == '\\' {
		e, err := l.lexEscape(start)
		if err != nil {
			return Token{}, err
		}
		v = e
	} else {
		v = c
	}
	if l.off >= len(l.src) || l.advance() != '\'' {
		return Token{}, &LexError{Pos: start, Msg: "unterminated char literal"}
	}
	return Token{Kind: CHARLIT, Pos: start, Int: int64(v)}, nil
}

// multi-character operators, longest first.
var operators = []struct {
	text string
	kind Tok
}{
	{"...", ELLIPSIS}, {"<<=", SHLEQ}, {">>=", SHREQ},
	{"->", ARROW}, {"++", INC}, {"--", DEC}, {"<<", SHL}, {">>", SHR},
	{"<=", LE}, {">=", GE}, {"==", EQ}, {"!=", NE}, {"&&", LAND},
	{"||", LOR}, {"+=", ADDEQ}, {"-=", SUBEQ}, {"*=", MULEQ},
	{"/=", DIVEQ}, {"%=", MODEQ}, {"&=", ANDEQ}, {"|=", OREQ},
	{"^=", XOREQ},
	{"(", LPAREN}, {")", RPAREN}, {"{", LBRACE}, {"}", RBRACE},
	{"[", LBRACKET}, {"]", RBRACKET}, {";", SEMI}, {",", COMMA},
	{".", DOT}, {"?", QUESTION}, {":", COLON}, {"=", ASSIGN},
	{"+", PLUS}, {"-", MINUS}, {"*", STAR}, {"/", SLASH},
	{"%", PERCENT}, {"<", LT}, {">", GT}, {"!", NOT}, {"&", AMP},
	{"|", PIPE}, {"^", CARET}, {"~", TILDE},
}

func (l *Lexer) lexOperator(start Pos) (Token, error) {
	rest := l.src[l.off:]
	for _, op := range operators {
		if strings.HasPrefix(rest, op.text) {
			for range op.text {
				l.advance()
			}
			return Token{Kind: op.kind, Pos: start, Text: op.text}, nil
		}
	}
	return Token{}, &LexError{Pos: start, Msg: fmt.Sprintf("unexpected character %q", l.peek())}
}

// Tokenize runs the lexer to EOF and returns all tokens (excluding the
// final EOF token).
func Tokenize(file, src string) ([]Token, error) {
	l := NewLexer(file, src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == EOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}
