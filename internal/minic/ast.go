package minic

import "mcfi/internal/ctypes"

// Node is implemented by every AST node.
type Node interface {
	NodePos() Pos
}

// Expr is an expression node. After semantic analysis every expression
// carries its computed type in ExprType.
type Expr interface {
	Node
	ExprType() *ctypes.Type
	SetType(*ctypes.Type)
}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// Decl is a top-level declaration.
type Decl interface {
	Node
	declNode()
}

// exprBase provides Pos and Type storage for expressions.
type exprBase struct {
	Pos  Pos
	Type *ctypes.Type
}

func (e *exprBase) NodePos() Pos           { return e.Pos }
func (e *exprBase) ExprType() *ctypes.Type { return e.Type }
func (e *exprBase) SetType(t *ctypes.Type) { e.Type = t }

// IntLit is an integer (or character) literal.
type IntLit struct {
	exprBase
	Value int64
}

// FloatLit is a floating literal.
type FloatLit struct {
	exprBase
	Value float64
}

// StrLit is a string literal; it has type char* after sema (the
// underlying bytes live in rodata).
type StrLit struct {
	exprBase
	Value string
}

// Ident is a name reference. Sema resolves it and fills Sym.
type Ident struct {
	exprBase
	Name string
	Sym  *Symbol // filled by sema
}

// Unary is a prefix unary expression: - ! ~ * & ++ -- sizeof(expr).
type Unary struct {
	exprBase
	Op Tok
	X  Expr
}

// Postfix is a postfix ++ or --.
type Postfix struct {
	exprBase
	Op Tok
	X  Expr
}

// Binary is a binary arithmetic/logical/comparison expression.
type Binary struct {
	exprBase
	Op   Tok
	L, R Expr
}

// Assign is an assignment; Op is ASSIGN or a compound op (ADDEQ etc.).
type Assign struct {
	exprBase
	Op   Tok
	L, R Expr
}

// Cond is the ternary ?: operator.
type Cond struct {
	exprBase
	C, T, F Expr
}

// Call is a function call; Fun is either an Ident naming a function or
// an arbitrary expression of function-pointer type (indirect call).
type Call struct {
	exprBase
	Fun  Expr
	Args []Expr
}

// Index is array/pointer subscripting.
type Index struct {
	exprBase
	X, I Expr
}

// Member is field access: X.Name or X->Name (Arrow).
type Member struct {
	exprBase
	X     Expr
	Name  string
	Arrow bool
}

// Cast is an explicit C cast "(T)x".
type Cast struct {
	exprBase
	To *ctypes.Type
	X  Expr
}

// ImplicitCast is inserted by sema at implicit conversion points
// (assignment, argument passing, return, initialization). The C1
// analyzer inspects both Cast and ImplicitCast nodes.
type ImplicitCast struct {
	exprBase
	To *ctypes.Type
	X  Expr
}

// SizeofType is sizeof(T) where T is a type name.
type SizeofType struct {
	exprBase
	Of *ctypes.Type
}

// InitList is a braced initializer list {a, b, c}.
type InitList struct {
	exprBase
	Elems []Expr
}

// --- Statements ---

type stmtBase struct{ Pos Pos }

func (s *stmtBase) NodePos() Pos { return s.Pos }
func (s *stmtBase) stmtNode()    {}

// ExprStmt is an expression evaluated for effect.
type ExprStmt struct {
	stmtBase
	X Expr
}

// DeclStmt declares a local variable.
type DeclStmt struct {
	stmtBase
	Name   string
	Type   *ctypes.Type
	Init   Expr // may be nil
	Sym    *Symbol
	Static bool
}

// Block is a compound statement; it opens a new scope.
type Block struct {
	stmtBase
	Stmts []Stmt
}

// DeclGroup holds the DeclStmts of one multi-declarator local
// declaration ("int a, *b;"). Unlike Block it does NOT open a scope:
// the variables belong to the enclosing block.
type DeclGroup struct {
	stmtBase
	Decls []*DeclStmt
}

// If is an if/else statement.
type If struct {
	stmtBase
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// While is a while loop.
type While struct {
	stmtBase
	Cond Expr
	Body Stmt
}

// DoWhile is a do/while loop.
type DoWhile struct {
	stmtBase
	Body Stmt
	Cond Expr
}

// For is a for loop; any of Init/Cond/Post may be nil. Init may be a
// DeclStmt or an ExprStmt.
type For struct {
	stmtBase
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
}

// SwitchCase is one case arm. IsDefault marks the default arm (an arm
// may carry both case labels and default). Fallthrough between arms
// follows C semantics (no implicit break).
type SwitchCase struct {
	Pos       Pos
	Vals      []Expr // constant expressions
	IsDefault bool
	Stmts     []Stmt
}

// Switch is a switch statement; it compiles to a jump table plus an
// indirect jump (the paper's intraprocedural indirect-jump case).
type Switch struct {
	stmtBase
	Cond  Expr
	Cases []SwitchCase
}

// Break exits the nearest loop or switch.
type Break struct{ stmtBase }

// Continue continues the nearest loop.
type Continue struct{ stmtBase }

// Return returns from the current function; X may be nil.
type Return struct {
	stmtBase
	X Expr
}

// Goto jumps to a label in the same function.
type Goto struct {
	stmtBase
	Label string
}

// Label names a statement.
type Label struct {
	stmtBase
	Name string
	Stmt Stmt
}

// AsmStmt is MiniC's inline-assembly escape hatch: asm("text"). It is
// what the C2 analyzer reports. An optional type annotation list
// (Annotations) models the paper's requirement that assembly using
// function pointers be annotated.
type AsmStmt struct {
	stmtBase
	Text        string
	Annotations []string // "name : type" annotations, if provided
}

// --- Declarations ---

type declBase struct{ Pos Pos }

func (d *declBase) NodePos() Pos { return d.Pos }
func (d *declBase) declNode()    {}

// FuncDecl is a function definition or prototype (Body == nil).
type FuncDecl struct {
	declBase
	Name       string
	Type       *ctypes.Type // always Kind == Func
	ParamNames []string
	Body       *Block
	Static     bool
	Sym        *Symbol
}

// VarDecl is a global variable declaration.
type VarDecl struct {
	declBase
	Name   string
	Type   *ctypes.Type
	Init   Expr
	Static bool
	Extern bool
	Sym    *Symbol
}

// File is a parsed translation unit (one MCFI module source).
type File struct {
	Name       string
	Decls      []Decl
	EnumConsts map[string]int64 // enum constant environment from the parser
}

// SymKind classifies symbols.
type SymKind int

// Symbol kinds.
const (
	SymVar SymKind = iota
	SymFunc
	SymParam
	SymEnumConst
)

// Symbol is a resolved name, produced by sema.
type Symbol struct {
	Name   string
	Kind   SymKind
	Type   *ctypes.Type
	Global bool
	// AddrTaken is set when the symbol's address is taken anywhere in
	// the module — the precondition for a function to be an
	// indirect-call target under MCFI.
	AddrTaken bool
	// EnumVal is the value for SymEnumConst.
	EnumVal int64
	// Local slot index assigned by codegen.
	FrameOff int
	Def      Node // defining node
}
