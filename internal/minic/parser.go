package minic

import (
	"fmt"

	"mcfi/internal/ctypes"
)

// Parser is a recursive-descent parser for MiniC. It maintains typedef
// and struct/union/enum tag environments so that types (including
// function-pointer declarators) resolve during parsing — the classic
// "lexer hack" needed to tell a cast from a parenthesized expression.
type Parser struct {
	toks []Token
	pos  int

	typedefs map[string]*ctypes.Type
	tags     map[string]*ctypes.Type // struct/union/enum tags
	enums    map[string]int64        // enum constant values
}

// ParseError reports a syntax error at a position.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Parse tokenizes and parses a MiniC translation unit.
func Parse(file, src string) (*File, error) {
	toks, err := Tokenize(file, src)
	if err != nil {
		return nil, err
	}
	p := &Parser{
		toks:     toks,
		typedefs: map[string]*ctypes.Type{},
		tags:     map[string]*ctypes.Type{},
		enums:    map[string]int64{},
	}
	f := &File{Name: file}
	for !p.atEOF() {
		decls, err := p.topLevel()
		if err != nil {
			return nil, err
		}
		f.Decls = append(f.Decls, decls...)
	}
	f.EnumConsts = p.enums
	return f, nil
}

func (p *Parser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *Parser) cur() Token {
	if p.atEOF() {
		last := Pos{}
		if len(p.toks) > 0 {
			last = p.toks[len(p.toks)-1].Pos
		}
		return Token{Kind: EOF, Pos: last}
	}
	return p.toks[p.pos]
}

func (p *Parser) peekAt(n int) Token {
	if p.pos+n >= len(p.toks) {
		return Token{Kind: EOF}
	}
	return p.toks[p.pos+n]
}

func (p *Parser) next() Token {
	t := p.cur()
	if !p.atEOF() {
		p.pos++
	}
	return t
}

func (p *Parser) accept(k Tok) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k Tok) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, &ParseError{Pos: t.Pos, Msg: fmt.Sprintf("expected %s, found %s %q", k, t.Kind, t.Text)}
	}
	p.pos++
	return t, nil
}

func (p *Parser) errf(pos Pos, format string, args ...interface{}) error {
	return &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// --- type parsing ---

// isTypeStart reports whether the token at offset n begins a type name.
func (p *Parser) isTypeStart(n int) bool {
	t := p.peekAt(n)
	switch t.Kind {
	case KwVoid, KwChar, KwShort, KwInt, KwLong, KwUnsigned, KwSigned,
		KwDouble, KwStruct, KwUnion, KwEnum, KwConst:
		return true
	case IDENT:
		_, ok := p.typedefs[t.Text]
		return ok
	}
	return false
}

// declSpecifiers parses the base type of a declaration (everything
// before the declarator) and the storage-class flags.
func (p *Parser) declSpecifiers() (base *ctypes.Type, static, extern, isTypedef bool, err error) {
	for {
		switch p.cur().Kind {
		case KwStatic:
			static = true
			p.next()
		case KwExtern:
			extern = true
			p.next()
		case KwTypedef:
			isTypedef = true
			p.next()
		case KwConst:
			p.next() // const is accepted and ignored
		default:
			goto specs
		}
	}
specs:
	base, err = p.typeSpecifier()
	return base, static, extern, isTypedef, err
}

// typeSpecifier parses a type specifier: a basic type (with signedness
// and length combinations), a struct/union/enum, or a typedef name.
func (p *Parser) typeSpecifier() (*ctypes.Type, error) {
	t := p.cur()
	switch t.Kind {
	case KwVoid:
		p.next()
		return ctypes.VoidType, nil
	case KwDouble:
		p.next()
		return ctypes.DoubleType, nil
	case KwStruct, KwUnion:
		return p.recordSpecifier()
	case KwEnum:
		return p.enumSpecifier()
	case IDENT:
		if td, ok := p.typedefs[t.Text]; ok {
			p.next()
			return td, nil
		}
		return nil, p.errf(t.Pos, "unknown type name %q", t.Text)
	}
	// Integer types: [signed|unsigned] [char|short|int|long [long]]
	unsigned := false
	seenSign := false
	switch t.Kind {
	case KwUnsigned:
		unsigned = true
		seenSign = true
		p.next()
	case KwSigned:
		seenSign = true
		p.next()
	}
	switch p.cur().Kind {
	case KwChar:
		p.next()
		if unsigned {
			return ctypes.UCharType, nil
		}
		return ctypes.CharType, nil
	case KwShort:
		p.next()
		p.accept(KwInt)
		if unsigned {
			return ctypes.UShortType, nil
		}
		return ctypes.ShortType, nil
	case KwInt:
		p.next()
		if unsigned {
			return ctypes.UIntType, nil
		}
		return ctypes.IntType, nil
	case KwLong:
		p.next()
		p.accept(KwLong) // long long == long
		p.accept(KwInt)
		if unsigned {
			return ctypes.ULongType, nil
		}
		return ctypes.LongType, nil
	}
	if seenSign {
		if unsigned {
			return ctypes.UIntType, nil
		}
		return ctypes.IntType, nil
	}
	return nil, p.errf(t.Pos, "expected type, found %s %q", t.Kind, t.Text)
}

// recordSpecifier parses struct/union definitions and references.
func (p *Parser) recordSpecifier() (*ctypes.Type, error) {
	kw := p.next() // struct or union
	kind := ctypes.Struct
	if kw.Kind == KwUnion {
		kind = ctypes.Union
	}
	tag := ""
	if p.cur().Kind == IDENT {
		tag = p.next().Text
	}
	key := ""
	if tag != "" {
		if kind == ctypes.Union {
			key = "union " + tag
		} else {
			key = "struct " + tag
		}
	}
	var rec *ctypes.Type
	if key != "" {
		if existing, ok := p.tags[key]; ok {
			rec = existing
		}
	}
	if rec == nil {
		rec = &ctypes.Type{Kind: kind, Name: tag, Incomplete: true}
		if key != "" {
			p.tags[key] = rec
		}
	}
	if !p.accept(LBRACE) {
		if tag == "" {
			return nil, p.errf(kw.Pos, "anonymous %s requires a body", kw.Text)
		}
		return rec, nil
	}
	if !rec.Incomplete {
		return nil, p.errf(kw.Pos, "redefinition of %s", key)
	}
	var fields []ctypes.Field
	for !p.accept(RBRACE) {
		base, err := p.typeSpecifier()
		if err != nil {
			return nil, err
		}
		for {
			name, wrap, err := p.declarator(false)
			if err != nil {
				return nil, err
			}
			if name == "" {
				return nil, p.errf(p.cur().Pos, "field name required")
			}
			fields = append(fields, ctypes.Field{Name: name, Type: wrap(base)})
			if !p.accept(COMMA) {
				break
			}
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
	}
	rec.Fields = fields
	rec.Incomplete = false
	rec.Layout()
	return rec, nil
}

// enumSpecifier parses enum definitions and references; constants are
// registered in the parser's environment.
func (p *Parser) enumSpecifier() (*ctypes.Type, error) {
	kw := p.next() // enum
	tag := ""
	if p.cur().Kind == IDENT {
		tag = p.next().Text
	}
	key := "enum " + tag
	var et *ctypes.Type
	if tag != "" {
		if existing, ok := p.tags[key]; ok {
			et = existing
		}
	}
	if et == nil {
		et = &ctypes.Type{Kind: ctypes.Enum, Name: tag}
		if tag != "" {
			p.tags[key] = et
		}
	}
	if !p.accept(LBRACE) {
		if tag == "" {
			return nil, p.errf(kw.Pos, "anonymous enum requires a body")
		}
		return et, nil
	}
	next := int64(0)
	for !p.accept(RBRACE) {
		nameTok, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if p.accept(ASSIGN) {
			v, err := p.constExpr()
			if err != nil {
				return nil, err
			}
			next = v
		}
		p.enums[nameTok.Text] = next
		next++
		if !p.accept(COMMA) {
			if _, err := p.expect(RBRACE); err != nil {
				return nil, err
			}
			break
		}
	}
	return et, nil
}

// declarator parses a (possibly nested, possibly abstract) C
// declarator. It returns the declared name ("" when abstract), a
// function that wraps a base type into the declared type, and the
// parameter names of the function suffix attached directly to the
// named declarator (for function definitions like
// "int (*getop(int which))(int)", where "which" belongs to getop).
// abstractOK permits omitting the name (parameter declarations, casts).
func (p *Parser) declarator(abstractOK bool) (string, func(*ctypes.Type) *ctypes.Type, error) {
	name, wrap, _, err := p.declaratorNamed(abstractOK)
	return name, wrap, err
}

func (p *Parser) declaratorNamed(abstractOK bool) (string, func(*ctypes.Type) *ctypes.Type, []string, error) {
	nptr := 0
	for p.accept(STAR) {
		nptr++
		for p.accept(KwConst) {
		}
	}
	name := ""
	nameHere := false
	var paramNames []string
	inner := func(t *ctypes.Type) *ctypes.Type { return t }

	// A '(' here is a nested declarator only if it encloses a
	// declarator rather than a parameter list: "(*", "(ident", "((".
	if p.cur().Kind == LPAREN {
		nk := p.peekAt(1).Kind
		isNested := nk == STAR || nk == LPAREN ||
			(nk == IDENT && !p.isTypeStart(1))
		if isNested {
			p.next() // (
			var err error
			name, inner, paramNames, err = p.declaratorNamed(abstractOK)
			if err != nil {
				return "", nil, nil, err
			}
			if _, err := p.expect(RPAREN); err != nil {
				return "", nil, nil, err
			}
		}
	}
	if name == "" && p.cur().Kind == IDENT && !p.isTypeStart(0) {
		name = p.next().Text
		nameHere = true
	}

	// Suffixes: arrays and parameter lists. The first suffix binds
	// outermost around the pointer-decorated base.
	var suffixes []func(*ctypes.Type) *ctypes.Type
	first := true
	for {
		switch p.cur().Kind {
		case LBRACKET:
			p.next()
			n := 0
			if p.cur().Kind != RBRACKET {
				v, err := p.constExpr()
				if err != nil {
					return "", nil, nil, err
				}
				n = int(v)
			}
			if _, err := p.expect(RBRACKET); err != nil {
				return "", nil, nil, err
			}
			ln := n
			suffixes = append(suffixes, func(t *ctypes.Type) *ctypes.Type {
				return ctypes.ArrayOf(t, ln)
			})
			first = false
			continue
		case LPAREN:
			p.next()
			names, params, variadic, err := p.paramListNamed()
			if err != nil {
				return "", nil, nil, err
			}
			if first && nameHere {
				paramNames = names
			}
			ps, vr := params, variadic
			suffixes = append(suffixes, func(t *ctypes.Type) *ctypes.Type {
				return ctypes.FuncOf(t, ps, vr)
			})
			first = false
			continue
		}
		break
	}

	np, sfx, in := nptr, suffixes, inner
	wrap := func(base *ctypes.Type) *ctypes.Type {
		t := base
		for i := 0; i < np; i++ {
			t = ctypes.PointerTo(t)
		}
		for i := len(sfx) - 1; i >= 0; i-- {
			t = sfx[i](t)
		}
		return in(t)
	}
	return name, wrap, paramNames, nil
}

// paramList parses a function parameter list after '('; consumes ')'.
func (p *Parser) paramList() (params []*ctypes.Type, variadic bool, err error) {
	names, params, variadic, err := p.paramListNamed()
	_ = names
	return params, variadic, err
}

func (p *Parser) paramListNamed() (names []string, params []*ctypes.Type, variadic bool, err error) {
	if p.accept(RPAREN) {
		return nil, nil, false, nil
	}
	// (void) means no parameters.
	if p.cur().Kind == KwVoid && p.peekAt(1).Kind == RPAREN {
		p.next()
		p.next()
		return nil, nil, false, nil
	}
	for {
		if p.accept(ELLIPSIS) {
			variadic = true
			break
		}
		base, err := p.typeSpecifier()
		if err != nil {
			return nil, nil, false, err
		}
		name, wrap, err := p.declarator(true)
		if err != nil {
			return nil, nil, false, err
		}
		t := wrap(base)
		// Parameter decay: arrays become pointers, functions become
		// function pointers.
		switch t.Kind {
		case ctypes.Array:
			t = ctypes.PointerTo(t.Elem)
		case ctypes.Func:
			t = ctypes.PointerTo(t)
		}
		names = append(names, name)
		params = append(params, t)
		if !p.accept(COMMA) {
			break
		}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, nil, false, err
	}
	return names, params, variadic, nil
}

// typeName parses a full type name (for casts and sizeof).
func (p *Parser) typeName() (*ctypes.Type, error) {
	base, err := p.typeSpecifier()
	if err != nil {
		return nil, err
	}
	_, wrap, err := p.declarator(true)
	if err != nil {
		return nil, err
	}
	return wrap(base), nil
}

// --- top-level declarations ---

func (p *Parser) topLevel() ([]Decl, error) {
	startPos := p.cur().Pos
	base, static, extern, isTypedef, err := p.declSpecifiers()
	if err != nil {
		return nil, err
	}
	if isTypedef {
		for {
			name, wrap, err := p.declarator(false)
			if err != nil {
				return nil, err
			}
			if name == "" {
				return nil, p.errf(p.cur().Pos, "typedef requires a name")
			}
			t := wrap(base)
			// Record the typedef name for diagnostics without affecting
			// structural equality.
			if t.Name == "" && t.Kind != ctypes.Pointer && t.Kind != ctypes.Func {
				t.Name = name
			}
			p.typedefs[name] = t
			if !p.accept(COMMA) {
				break
			}
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return nil, nil
	}
	// Bare "struct S {...};" or "enum E {...};"
	if p.accept(SEMI) {
		return nil, nil
	}

	var decls []Decl
	for {
		dpos := p.cur().Pos
		name, wrap, paramNames, err := p.declaratorNamed(false)
		if err != nil {
			return nil, err
		}
		t := wrap(base)
		if name == "" {
			return nil, p.errf(dpos, "declaration requires a name")
		}
		if t.Kind == ctypes.Func {
			fd := &FuncDecl{
				Name:       name,
				Type:       t,
				ParamNames: paramNames,
				Static:     static,
			}
			fd.Pos = dpos
			if p.cur().Kind == LBRACE {
				body, err := p.block()
				if err != nil {
					return nil, err
				}
				fd.Body = body
				decls = append(decls, fd)
				return decls, nil // a definition ends the declaration group
			}
			decls = append(decls, fd)
		} else {
			vd := &VarDecl{Name: name, Type: t, Static: static, Extern: extern}
			vd.Pos = dpos
			if p.accept(ASSIGN) {
				init, err := p.initializer()
				if err != nil {
					return nil, err
				}
				vd.Init = init
			}
			decls = append(decls, vd)
		}
		if !p.accept(COMMA) {
			break
		}
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, p.errf(startPos, "%v", err)
	}
	return decls, nil
}

func (p *Parser) initializer() (Expr, error) {
	if p.cur().Kind == LBRACE {
		pos := p.next().Pos
		il := &InitList{}
		il.Pos = pos
		for !p.accept(RBRACE) {
			e, err := p.initializer()
			if err != nil {
				return nil, err
			}
			il.Elems = append(il.Elems, e)
			if !p.accept(COMMA) {
				if _, err := p.expect(RBRACE); err != nil {
					return nil, err
				}
				break
			}
		}
		return il, nil
	}
	return p.assignExpr()
}

// --- statements ---

func (p *Parser) block() (*Block, error) {
	lb, err := p.expect(LBRACE)
	if err != nil {
		return nil, err
	}
	b := &Block{}
	b.Pos = lb.Pos
	for !p.accept(RBRACE) {
		if p.atEOF() {
			return nil, p.errf(lb.Pos, "unterminated block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
	}
	return b, nil
}

func (p *Parser) statement() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case LBRACE:
		return p.block()
	case SEMI:
		p.next()
		return nil, nil
	case KwIf:
		return p.ifStmt()
	case KwWhile:
		return p.whileStmt()
	case KwDo:
		return p.doWhileStmt()
	case KwFor:
		return p.forStmt()
	case KwSwitch:
		return p.switchStmt()
	case KwBreak:
		p.next()
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		s := &Break{}
		s.Pos = t.Pos
		return s, nil
	case KwContinue:
		p.next()
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		s := &Continue{}
		s.Pos = t.Pos
		return s, nil
	case KwReturn:
		p.next()
		s := &Return{}
		s.Pos = t.Pos
		if p.cur().Kind != SEMI {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.X = e
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return s, nil
	case KwGoto:
		p.next()
		lbl, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		s := &Goto{Label: lbl.Text}
		s.Pos = t.Pos
		return s, nil
	case KwAsm:
		return p.asmStmt()
	case IDENT:
		// Label?
		if p.peekAt(1).Kind == COLON {
			name := p.next().Text
			p.next() // :
			inner, err := p.statement()
			if err != nil {
				return nil, err
			}
			s := &Label{Name: name, Stmt: inner}
			s.Pos = t.Pos
			return s, nil
		}
	}
	if p.isTypeStart(0) || t.Kind == KwStatic || t.Kind == KwConst {
		return p.localDecl()
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	s := &ExprStmt{X: e}
	s.Pos = t.Pos
	return s, nil
}

// localDecl parses one or more local variable declarations. Multiple
// declarators become a Block of DeclStmts.
func (p *Parser) localDecl() (Stmt, error) {
	pos := p.cur().Pos
	base, static, _, isTypedef, err := p.declSpecifiers()
	if err != nil {
		return nil, err
	}
	if isTypedef {
		return nil, p.errf(pos, "typedef not supported at block scope")
	}
	var stmts []Stmt
	for {
		dpos := p.cur().Pos
		name, wrap, err := p.declarator(false)
		if err != nil {
			return nil, err
		}
		if name == "" {
			return nil, p.errf(dpos, "variable name required")
		}
		ds := &DeclStmt{Name: name, Type: wrap(base), Static: static}
		ds.Pos = dpos
		if p.accept(ASSIGN) {
			init, err := p.initializer()
			if err != nil {
				return nil, err
			}
			ds.Init = init
		}
		stmts = append(stmts, ds)
		if !p.accept(COMMA) {
			break
		}
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	if len(stmts) == 1 {
		return stmts[0], nil
	}
	g := &DeclGroup{}
	g.Pos = pos
	for _, s := range stmts {
		g.Decls = append(g.Decls, s.(*DeclStmt))
	}
	return g, nil
}

func (p *Parser) parenExpr() (Expr, error) {
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	return e, nil
}

func (p *Parser) ifStmt() (Stmt, error) {
	pos := p.next().Pos // if
	cond, err := p.parenExpr()
	if err != nil {
		return nil, err
	}
	then, err := p.statement()
	if err != nil {
		return nil, err
	}
	s := &If{Cond: cond, Then: then}
	s.Pos = pos
	if p.accept(KwElse) {
		els, err := p.statement()
		if err != nil {
			return nil, err
		}
		s.Else = els
	}
	return s, nil
}

func (p *Parser) whileStmt() (Stmt, error) {
	pos := p.next().Pos
	cond, err := p.parenExpr()
	if err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	s := &While{Cond: cond, Body: body}
	s.Pos = pos
	return s, nil
}

func (p *Parser) doWhileStmt() (Stmt, error) {
	pos := p.next().Pos // do
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KwWhile); err != nil {
		return nil, err
	}
	cond, err := p.parenExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	s := &DoWhile{Body: body, Cond: cond}
	s.Pos = pos
	return s, nil
}

func (p *Parser) forStmt() (Stmt, error) {
	pos := p.next().Pos // for
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	s := &For{}
	s.Pos = pos
	if !p.accept(SEMI) {
		if p.isTypeStart(0) {
			init, err := p.localDecl() // consumes ';'
			if err != nil {
				return nil, err
			}
			s.Init = init
		} else {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			es := &ExprStmt{X: e}
			es.Pos = e.NodePos()
			s.Init = es
			if _, err := p.expect(SEMI); err != nil {
				return nil, err
			}
		}
	}
	if !p.accept(SEMI) {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
	}
	if p.cur().Kind != RPAREN {
		post, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Post = post
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

func (p *Parser) switchStmt() (Stmt, error) {
	pos := p.next().Pos // switch
	cond, err := p.parenExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LBRACE); err != nil {
		return nil, err
	}
	s := &Switch{Cond: cond}
	s.Pos = pos
	for !p.accept(RBRACE) {
		var sc SwitchCase
		sc.Pos = p.cur().Pos
		// One or more case/default labels on the same arm.
		saw := false
		for {
			if p.accept(KwCase) {
				v, err := p.condExpr()
				if err != nil {
					return nil, err
				}
				sc.Vals = append(sc.Vals, v)
				if _, err := p.expect(COLON); err != nil {
					return nil, err
				}
				saw = true
				continue
			}
			if p.cur().Kind == KwDefault {
				p.next()
				if _, err := p.expect(COLON); err != nil {
					return nil, err
				}
				saw = true
				sc.IsDefault = true
				continue
			}
			break
		}
		if !saw {
			return nil, p.errf(p.cur().Pos, "expected case or default in switch body")
		}
		for {
			k := p.cur().Kind
			if k == KwCase || k == KwDefault || k == RBRACE {
				break
			}
			st, err := p.statement()
			if err != nil {
				return nil, err
			}
			if st != nil {
				sc.Stmts = append(sc.Stmts, st)
			}
		}
		s.Cases = append(s.Cases, sc)
	}
	return s, nil
}

func (p *Parser) asmStmt() (Stmt, error) {
	pos := p.next().Pos // asm
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	txt, err := p.expect(STRING)
	if err != nil {
		return nil, err
	}
	s := &AsmStmt{Text: txt.Text}
	s.Pos = pos
	if p.accept(COLON) {
		for {
			ann, err := p.expect(STRING)
			if err != nil {
				return nil, err
			}
			s.Annotations = append(s.Annotations, ann.Text)
			if !p.accept(COMMA) {
				break
			}
		}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return s, nil
}

// --- expressions ---

func (p *Parser) expr() (Expr, error) { return p.assignExpr() }

func (p *Parser) assignExpr() (Expr, error) {
	l, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case ASSIGN, ADDEQ, SUBEQ, MULEQ, DIVEQ, MODEQ, SHLEQ, SHREQ, ANDEQ, OREQ, XOREQ:
		op := p.next()
		r, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		a := &Assign{Op: op.Kind, L: l, R: r}
		a.Pos = op.Pos
		return a, nil
	}
	return l, nil
}

func (p *Parser) condExpr() (Expr, error) {
	c, err := p.binaryExpr(0)
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != QUESTION {
		return c, nil
	}
	qpos := p.next().Pos
	t, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COLON); err != nil {
		return nil, err
	}
	f, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	e := &Cond{C: c, T: t, F: f}
	e.Pos = qpos
	return e, nil
}

// binary operator precedence, C levels 10 (||) down to 3 (* / %).
var binPrec = map[Tok]int{
	LOR: 1, LAND: 2, PIPE: 3, CARET: 4, AMP: 5,
	EQ: 6, NE: 6, LT: 7, GT: 7, LE: 7, GE: 7,
	SHL: 8, SHR: 8, PLUS: 9, MINUS: 9,
	STAR: 10, SLASH: 10, PERCENT: 10,
}

func (p *Parser) binaryExpr(minPrec int) (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur()
		prec, ok := binPrec[op.Kind]
		if !ok || prec < minPrec {
			return l, nil
		}
		p.next()
		r, err := p.binaryExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		b := &Binary{Op: op.Kind, L: l, R: r}
		b.Pos = op.Pos
		l = b
	}
}

func (p *Parser) unaryExpr() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case PLUS:
		p.next()
		return p.unaryExpr()
	case MINUS, NOT, TILDE, STAR, AMP:
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		u := &Unary{Op: t.Kind, X: x}
		u.Pos = t.Pos
		return u, nil
	case INC, DEC:
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		u := &Unary{Op: t.Kind, X: x}
		u.Pos = t.Pos
		return u, nil
	case KwSizeof:
		p.next()
		if p.cur().Kind == LPAREN && p.isTypeStart(1) {
			p.next()
			ty, err := p.typeName()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			e := &SizeofType{Of: ty}
			e.Pos = t.Pos
			return e, nil
		}
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		u := &Unary{Op: KwSizeof, X: x}
		u.Pos = t.Pos
		return u, nil
	case LPAREN:
		if p.isTypeStart(1) {
			p.next()
			ty, err := p.typeName()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			c := &Cast{To: ty, X: x}
			c.Pos = t.Pos
			return c, nil
		}
	}
	return p.postfixExpr()
}

func (p *Parser) postfixExpr() (Expr, error) {
	x, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch t.Kind {
		case LPAREN:
			p.next()
			call := &Call{Fun: x}
			call.Pos = t.Pos
			for p.cur().Kind != RPAREN {
				a, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.accept(COMMA) {
					break
				}
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			x = call
		case LBRACKET:
			p.next()
			i, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBRACKET); err != nil {
				return nil, err
			}
			ix := &Index{X: x, I: i}
			ix.Pos = t.Pos
			x = ix
		case DOT, ARROW:
			p.next()
			name, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			m := &Member{X: x, Name: name.Text, Arrow: t.Kind == ARROW}
			m.Pos = t.Pos
			x = m
		case INC, DEC:
			p.next()
			pf := &Postfix{Op: t.Kind, X: x}
			pf.Pos = t.Pos
			x = pf
		default:
			return x, nil
		}
	}
}

func (p *Parser) primaryExpr() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case NUMBER:
		p.next()
		e := &IntLit{Value: t.Int}
		e.Pos = t.Pos
		return e, nil
	case CHARLIT:
		p.next()
		e := &IntLit{Value: t.Int}
		e.Pos = t.Pos
		return e, nil
	case FNUMBER:
		p.next()
		e := &FloatLit{Value: t.Flt}
		e.Pos = t.Pos
		return e, nil
	case STRING:
		p.next()
		// Adjacent string literals concatenate.
		text := t.Text
		for p.cur().Kind == STRING {
			text += p.next().Text
		}
		e := &StrLit{Value: text}
		e.Pos = t.Pos
		return e, nil
	case IDENT:
		p.next()
		e := &Ident{Name: t.Text}
		e.Pos = t.Pos
		return e, nil
	case LPAREN:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf(t.Pos, "unexpected token %s %q in expression", t.Kind, t.Text)
}

// --- constant expressions (array sizes, enum values, case labels) ---

// constExpr parses a conditional expression and folds it to an integer
// constant; enum constants resolve through the parser environment.
func (p *Parser) constExpr() (int64, error) {
	e, err := p.condExpr()
	if err != nil {
		return 0, err
	}
	return p.EvalConst(e)
}

// EvalConst folds an expression to an integer constant. Exported so
// sema can fold case labels and global initializers with the same
// environment.
func (p *Parser) EvalConst(e Expr) (int64, error) {
	return evalConst(e, p.enums)
}

// EvalConstExpr folds e using the supplied enum environment.
func EvalConstExpr(e Expr, enums map[string]int64) (int64, error) {
	return evalConst(e, enums)
}

func evalConst(e Expr, enums map[string]int64) (int64, error) {
	switch x := e.(type) {
	case *IntLit:
		return x.Value, nil
	case *Ident:
		if v, ok := enums[x.Name]; ok {
			return v, nil
		}
		return 0, &ParseError{Pos: x.Pos, Msg: fmt.Sprintf("%q is not a constant", x.Name)}
	case *Unary:
		v, err := evalConst(x.X, enums)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case MINUS:
			return -v, nil
		case TILDE:
			return ^v, nil
		case NOT:
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
	case *Binary:
		l, err := evalConst(x.L, enums)
		if err != nil {
			return 0, err
		}
		r, err := evalConst(x.R, enums)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case PLUS:
			return l + r, nil
		case MINUS:
			return l - r, nil
		case STAR:
			return l * r, nil
		case SLASH:
			if r == 0 {
				return 0, &ParseError{Pos: x.Pos, Msg: "division by zero in constant"}
			}
			return l / r, nil
		case PERCENT:
			if r == 0 {
				return 0, &ParseError{Pos: x.Pos, Msg: "mod by zero in constant"}
			}
			return l % r, nil
		case SHL:
			return l << uint(r), nil
		case SHR:
			return l >> uint(r), nil
		case AMP:
			return l & r, nil
		case PIPE:
			return l | r, nil
		case CARET:
			return l ^ r, nil
		case EQ:
			return b2i(l == r), nil
		case NE:
			return b2i(l != r), nil
		case LT:
			return b2i(l < r), nil
		case GT:
			return b2i(l > r), nil
		case LE:
			return b2i(l <= r), nil
		case GE:
			return b2i(l >= r), nil
		case LAND:
			return b2i(l != 0 && r != 0), nil
		case LOR:
			return b2i(l != 0 || r != 0), nil
		}
	case *SizeofType:
		return int64(x.Of.Size()), nil
	case *Cast:
		return evalConst(x.X, enums)
	case *ImplicitCast:
		return evalConst(x.X, enums)
	case *Cond:
		c, err := evalConst(x.C, enums)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return evalConst(x.T, enums)
		}
		return evalConst(x.F, enums)
	}
	return 0, &ParseError{Pos: e.NodePos(), Msg: "expression is not constant"}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
