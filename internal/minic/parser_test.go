package minic

import (
	"strings"
	"testing"

	"mcfi/internal/ctypes"
)

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	return f
}

func firstFunc(t *testing.T, f *File, name string) *FuncDecl {
	t.Helper()
	for _, d := range f.Decls {
		if fd, ok := d.(*FuncDecl); ok && fd.Name == name {
			return fd
		}
	}
	t.Fatalf("function %q not found", name)
	return nil
}

func TestLexerBasics(t *testing.T) {
	toks, err := Tokenize("t.c", `int x = 0x1F + 'a'; // comment
	/* block */ double d = 3.5e2; char *s = "hi\n";`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []Tok
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	want := []Tok{KwInt, IDENT, ASSIGN, NUMBER, PLUS, CHARLIT, SEMI,
		KwDouble, IDENT, ASSIGN, FNUMBER, SEMI,
		KwChar, STAR, IDENT, ASSIGN, STRING, SEMI}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, kinds[i], want[i])
		}
	}
	if toks[3].Int != 0x1F {
		t.Errorf("hex literal = %d, want 31", toks[3].Int)
	}
	if toks[5].Int != 'a' {
		t.Errorf("char literal = %d, want %d", toks[5].Int, 'a')
	}
	if toks[10].Flt != 350 {
		t.Errorf("float literal = %v, want 350", toks[10].Flt)
	}
	if toks[16].Text != "hi\n" {
		t.Errorf("string literal = %q", toks[16].Text)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, `'a`, "/* open", "`"} {
		if _, err := Tokenize("t.c", src); err == nil {
			t.Errorf("Tokenize(%q) should fail", src)
		}
	}
}

func TestLexerPositions(t *testing.T) {
	toks, err := Tokenize("f.c", "int\n  x;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("x at %v, want f.c:2:3", toks[1].Pos)
	}
}

func TestParseSimpleFunction(t *testing.T) {
	f := mustParse(t, `
int add(int a, int b) {
	return a + b;
}`)
	fd := firstFunc(t, f, "add")
	if fd.Type.Kind != ctypes.Func || len(fd.Type.Params) != 2 {
		t.Fatalf("bad type: %s", fd.Type)
	}
	if fd.ParamNames[0] != "a" || fd.ParamNames[1] != "b" {
		t.Errorf("param names = %v", fd.ParamNames)
	}
	if len(fd.Body.Stmts) != 1 {
		t.Fatalf("body stmts = %d", len(fd.Body.Stmts))
	}
	ret, ok := fd.Body.Stmts[0].(*Return)
	if !ok {
		t.Fatalf("not a return: %T", fd.Body.Stmts[0])
	}
	if _, ok := ret.X.(*Binary); !ok {
		t.Errorf("return expr %T, want Binary", ret.X)
	}
}

func TestParseFunctionPointerDeclarator(t *testing.T) {
	f := mustParse(t, `
int (*handler)(int, char*);
void install(int (*h)(int, char*)) { handler = h; }
int (*get(void))(int, char*) { return handler; }
`)
	vd, ok := f.Decls[0].(*VarDecl)
	if !ok {
		t.Fatalf("decl 0 is %T", f.Decls[0])
	}
	if !vd.Type.IsFuncPointer() {
		t.Fatalf("handler type = %s, want function pointer", vd.Type)
	}
	ft := vd.Type.Elem
	if len(ft.Params) != 2 || ft.Params[1].Kind != ctypes.Pointer {
		t.Errorf("handler pointee = %s", ft)
	}
	inst := firstFunc(t, f, "install")
	if !inst.Type.Params[0].IsFuncPointer() {
		t.Errorf("install param type = %s", inst.Type.Params[0])
	}
	get := firstFunc(t, f, "get")
	if get.Type.Kind != ctypes.Func || !get.Type.Result.IsFuncPointer() {
		t.Errorf("get type = %s, want func returning fp", get.Type)
	}
}

func TestParseStructAndTypedef(t *testing.T) {
	f := mustParse(t, `
typedef struct node {
	int value;
	struct node *next;
} node_t;
node_t *head;
typedef int (*cmp_fn)(int, int);
cmp_fn comparator;
`)
	vd, ok := f.Decls[0].(*VarDecl)
	if !ok || vd.Name != "head" {
		t.Fatalf("unexpected decl: %#v", f.Decls[0])
	}
	st := vd.Type.Elem
	if st.Kind != ctypes.Struct || len(st.Fields) != 2 {
		t.Fatalf("head pointee = %s", st)
	}
	// Recursive reference must point back to the same struct.
	if st.Fields[1].Type.Elem != st {
		t.Error("struct node.next should point to struct node itself")
	}
	cmp, ok := f.Decls[1].(*VarDecl)
	if !ok || !cmp.Type.IsFuncPointer() {
		t.Fatalf("comparator = %s", cmp.Type)
	}
}

func TestParseUnionEnum(t *testing.T) {
	f := mustParse(t, `
union val { long i; double d; char buf[8]; };
enum color { RED, GREEN = 5, BLUE };
union val v;
enum color c;
int arr[BLUE];
`)
	if f.EnumConsts["RED"] != 0 || f.EnumConsts["GREEN"] != 5 || f.EnumConsts["BLUE"] != 6 {
		t.Errorf("enum consts = %v", f.EnumConsts)
	}
	var arr *VarDecl
	for _, d := range f.Decls {
		if vd, ok := d.(*VarDecl); ok && vd.Name == "arr" {
			arr = vd
		}
	}
	if arr == nil || arr.Type.Kind != ctypes.Array || arr.Type.Len != 6 {
		t.Fatalf("arr type wrong: %v", arr)
	}
}

func TestParseVariadicPrototype(t *testing.T) {
	f := mustParse(t, `int printf(char *fmt, ...);`)
	fd := firstFunc(t, f, "printf")
	if !fd.Type.Variadic || len(fd.Type.Params) != 1 {
		t.Errorf("printf type = %s", fd.Type)
	}
}

func TestParseSwitch(t *testing.T) {
	f := mustParse(t, `
int classify(int x) {
	switch (x) {
	case 0:
	case 1:
		return 10;
	case 2:
		x = x + 1;
		break;
	default:
		return -1;
	}
	return x;
}`)
	fd := firstFunc(t, f, "classify")
	sw, ok := fd.Body.Stmts[0].(*Switch)
	if !ok {
		t.Fatalf("stmt 0 is %T", fd.Body.Stmts[0])
	}
	if len(sw.Cases) != 3 {
		t.Fatalf("cases = %d, want 3", len(sw.Cases))
	}
	if len(sw.Cases[0].Vals) != 2 {
		t.Errorf("first arm vals = %d, want 2 (case 0: case 1:)", len(sw.Cases[0].Vals))
	}
	if !sw.Cases[2].IsDefault {
		t.Error("third arm should be default")
	}
}

func TestParseControlFlow(t *testing.T) {
	f := mustParse(t, `
int f(int n) {
	int s = 0;
	for (int i = 0; i < n; i++) s += i;
	while (s > 100) s /= 2;
	do { s--; } while (s > 50);
	if (s == 0) goto done; else s = -s;
done:
	return s;
}`)
	fd := firstFunc(t, f, "f")
	if len(fd.Body.Stmts) != 6 {
		t.Fatalf("stmts = %d, want 6", len(fd.Body.Stmts))
	}
	if _, ok := fd.Body.Stmts[1].(*For); !ok {
		t.Errorf("stmt 1 = %T, want For", fd.Body.Stmts[1])
	}
	if _, ok := fd.Body.Stmts[3].(*DoWhile); !ok {
		t.Errorf("stmt 3 = %T, want DoWhile", fd.Body.Stmts[3])
	}
	lbl, ok := fd.Body.Stmts[5].(*Label)
	if !ok || lbl.Name != "done" {
		t.Errorf("stmt 5 = %#v, want label done", fd.Body.Stmts[5])
	}
}

func TestParseCastVsParen(t *testing.T) {
	f := mustParse(t, `
typedef int myint;
int g(int y) {
	int a = (myint)y;      // cast via typedef
	int b = (y) + 1;       // parenthesized expr
	char *p = (char*)0;    // cast to pointer
	void (*fp)(void) = (void (*)(void))0;  // cast to function pointer
	return a + b + (p == (char*)0) + (fp == 0);
}`)
	fd := firstFunc(t, f, "g")
	a := fd.Body.Stmts[0].(*DeclStmt)
	if _, ok := a.Init.(*Cast); !ok {
		t.Errorf("a init = %T, want Cast", a.Init)
	}
	b := fd.Body.Stmts[1].(*DeclStmt)
	if _, ok := b.Init.(*Binary); !ok {
		t.Errorf("b init = %T, want Binary", b.Init)
	}
	fp := fd.Body.Stmts[3].(*DeclStmt)
	cast, ok := fp.Init.(*Cast)
	if !ok || !cast.To.IsFuncPointer() {
		t.Errorf("fp init cast = %#v", fp.Init)
	}
}

func TestParsePrecedence(t *testing.T) {
	f := mustParse(t, `int h(int a, int b, int c) { return a + b * c == a << 1 | b; }`)
	fd := firstFunc(t, f, "h")
	ret := fd.Body.Stmts[0].(*Return)
	// Top must be |, left is ==.
	or, ok := ret.X.(*Binary)
	if !ok || or.Op != PIPE {
		t.Fatalf("top = %#v, want |", ret.X)
	}
	eq, ok := or.L.(*Binary)
	if !ok || eq.Op != EQ {
		t.Fatalf("or.L = %#v, want ==", or.L)
	}
}

func TestParseTernaryAndAssignOps(t *testing.T) {
	f := mustParse(t, `int t(int a) { a += 2; a <<= 1; return a > 0 ? a : -a; }`)
	fd := firstFunc(t, f, "t")
	ret := fd.Body.Stmts[2].(*Return)
	if _, ok := ret.X.(*Cond); !ok {
		t.Errorf("return = %T, want Cond", ret.X)
	}
	as := fd.Body.Stmts[0].(*ExprStmt).X.(*Assign)
	if as.Op != ADDEQ {
		t.Errorf("op = %s, want +=", as.Op)
	}
}

func TestParseMemberAccessChain(t *testing.T) {
	f := mustParse(t, `
struct inner { int v; };
struct outer { struct inner in; struct inner *pin; };
int m(struct outer *o) { return o->in.v + o->pin->v; }
`)
	fd := firstFunc(t, f, "m")
	ret := fd.Body.Stmts[0].(*Return)
	add := ret.X.(*Binary)
	l := add.L.(*Member)
	if l.Name != "v" || l.Arrow {
		t.Errorf("left member = %#v", l)
	}
	if inner, ok := l.X.(*Member); !ok || !inner.Arrow || inner.Name != "in" {
		t.Errorf("left inner = %#v", l.X)
	}
}

func TestParseAddressOfFunction(t *testing.T) {
	f := mustParse(t, `
int cb(int x) { return x; }
int (*p1)(int) = cb;
int (*p2)(int) = &cb;
`)
	p2 := f.Decls[2].(*VarDecl)
	u, ok := p2.Init.(*Unary)
	if !ok || u.Op != AMP {
		t.Errorf("p2 init = %#v, want &cb", p2.Init)
	}
}

func TestParseAsm(t *testing.T) {
	f := mustParse(t, `
void fast_memcpy(void) {
	asm("rep movsb");
	asm("call *%rax" : "target: void (*)(void)");
}`)
	fd := firstFunc(t, f, "fast_memcpy")
	a1 := fd.Body.Stmts[0].(*AsmStmt)
	if a1.Text != "rep movsb" || len(a1.Annotations) != 0 {
		t.Errorf("asm1 = %#v", a1)
	}
	a2 := fd.Body.Stmts[1].(*AsmStmt)
	if len(a2.Annotations) != 1 || !strings.Contains(a2.Annotations[0], "void (*)(void)") {
		t.Errorf("asm2 annotations = %v", a2.Annotations)
	}
}

func TestParseGlobalInitializers(t *testing.T) {
	f := mustParse(t, `
int table[4] = {1, 2, 3, 4};
char *msg = "hello";
struct pt { int x; int y; };
struct pt origin = {0, 0};
`)
	tab := f.Decls[0].(*VarDecl)
	il, ok := tab.Init.(*InitList)
	if !ok || len(il.Elems) != 4 {
		t.Errorf("table init = %#v", tab.Init)
	}
}

func TestParseSizeof(t *testing.T) {
	f := mustParse(t, `
struct s { long a; long b; };
long sz1 = sizeof(struct s);
long sz2 = sizeof(long);
int q(int x) { return sizeof x; }
`)
	s1 := f.Decls[0].(*VarDecl)
	st, ok := s1.Init.(*SizeofType)
	if !ok || st.Of.Size() != 16 {
		t.Errorf("sz1 init = %#v", s1.Init)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`int f( {}`,
		`int x = ;`,
		`struct s { int }; `,
		`int f(void) { return 1 }`, // missing semi
		`int f(void) { case 3: ; }`,
		`unknown_t x;`,
		`int f(void) { switch (1) { int x; } }`, // stmt before case
	}
	for _, src := range bad {
		if _, err := Parse("bad.c", src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestConstExprFolding(t *testing.T) {
	f := mustParse(t, `
enum { A = 3, B = A * 4 };
int arr[(B + 2) / 2];   // (12+2)/2 = 7
int arr2[1 << 4];
`)
	a := f.Decls[0].(*VarDecl)
	if a.Type.Len != 7 {
		t.Errorf("arr len = %d, want 7", a.Type.Len)
	}
	a2 := f.Decls[1].(*VarDecl)
	if a2.Type.Len != 16 {
		t.Errorf("arr2 len = %d, want 16", a2.Type.Len)
	}
}

func TestParseMultiDeclarators(t *testing.T) {
	f := mustParse(t, `int a, *b, c[3];`)
	if len(f.Decls) != 3 {
		t.Fatalf("decls = %d, want 3", len(f.Decls))
	}
	if f.Decls[1].(*VarDecl).Type.Kind != ctypes.Pointer {
		t.Error("b should be pointer")
	}
	if f.Decls[2].(*VarDecl).Type.Kind != ctypes.Array {
		t.Error("c should be array")
	}
}

func TestParsePrototypeThenDefinition(t *testing.T) {
	f := mustParse(t, `
int twice(int);
int twice(int x) { return 2 * x; }
`)
	if len(f.Decls) != 2 {
		t.Fatalf("decls = %d", len(f.Decls))
	}
	proto := f.Decls[0].(*FuncDecl)
	def := f.Decls[1].(*FuncDecl)
	if proto.Body != nil || def.Body == nil {
		t.Error("prototype/definition confusion")
	}
	if !ctypes.Equal(proto.Type, def.Type) {
		t.Error("prototype and definition types should match")
	}
}

func TestParseIncompleteStructPointer(t *testing.T) {
	f := mustParse(t, `
struct opaque;
struct opaque *make(void);
`)
	fd := firstFunc(t, f, "make")
	if fd.Type.Result.Kind != ctypes.Pointer || fd.Type.Result.Elem.Kind != ctypes.Struct {
		t.Errorf("make result = %s", fd.Type.Result)
	}
}

func TestParseArrayOfFunctionPointers(t *testing.T) {
	f := mustParse(t, `
int h0(int);
int (*dispatch[4])(int) = {h0, h0, h0, h0};
`)
	vd := f.Decls[1].(*VarDecl)
	if vd.Type.Kind != ctypes.Array || vd.Type.Len != 4 {
		t.Fatalf("dispatch type = %s", vd.Type)
	}
	if !vd.Type.Elem.IsFuncPointer() {
		t.Errorf("dispatch elem = %s", vd.Type.Elem)
	}
}

func TestParseUnsignedVariants(t *testing.T) {
	f := mustParse(t, `
unsigned int a;
unsigned char b;
unsigned long c;
unsigned d;
signed char e;
long long g;
`)
	wants := []ctypes.Kind{ctypes.UInt, ctypes.UChar, ctypes.ULong, ctypes.UInt, ctypes.Char, ctypes.Long}
	for i, w := range wants {
		vd := f.Decls[i].(*VarDecl)
		if vd.Type.Kind != w {
			t.Errorf("decl %d (%s): kind = %v, want %v", i, vd.Name, vd.Type.Kind, w)
		}
	}
}

// TestParserTotality: the parser must return an error, never panic, on
// arbitrary junk — it is the first untrusted-input surface of the
// toolchain.
func TestParserTotality(t *testing.T) {
	seeds := []string{
		"int main(void) { return 0; }",
		"struct s { int a; };",
		"typedef int (*fp)(int);",
	}
	state := uint64(12345)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	tokens := []string{"int", "(", ")", "{", "}", "*", ";", ",", "x",
		"struct", "typedef", "return", "if", "case", "1", "...", "[", "]",
		"\"s\"", "'c'", "+", "=", "->", "&&", "switch", "enum", "void"}
	for round := 0; round < 500; round++ {
		var b []byte
		if next(2) == 0 {
			// Mutated seed.
			s := []byte(seeds[next(len(seeds))])
			for k := 0; k < 3; k++ {
				s[next(len(s))] = byte(next(128))
			}
			b = s
		} else {
			// Random token soup.
			for k := 0; k < next(40)+1; k++ {
				b = append(b, ' ')
				b = append(b, tokens[next(len(tokens))]...)
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on %q: %v", b, r)
				}
			}()
			_, _ = Parse("fuzz.c", string(b))
		}()
	}
}

// TestDeepNestingDoesNotOverflow guards the recursive-descent parser
// against pathological nesting (bounded input, bounded stack).
func TestDeepNestingDoesNotOverflow(t *testing.T) {
	depth := 2000
	src := "int main(void) { return " + strings.Repeat("(", depth) + "1" +
		strings.Repeat(")", depth) + "; }"
	if _, err := Parse("deep.c", src); err != nil {
		t.Logf("deep nesting rejected: %v (acceptable)", err)
	}
}
