// Package rop is the reproduction's gadget finder (the paper uses
// rp++, §8.3): it scans a code image at every byte offset — exploiting
// VISA's variable-length encoding, exactly as on x86 — and collects
// unique instruction sequences of bounded length that end in an
// indirect branch. Under MCFI, a gadget is usable only if control can
// actually reach it: its start address must be four-byte aligned and
// carry a valid Tary ID, and ret-ending gadgets additionally lost
// their raw ret instructions to the popq/jmpq rewriting.
package rop

import (
	"mcfi/internal/visa"
)

// DefaultMaxLen bounds gadget length in instructions (rp++'s default
// depth is comparable).
const DefaultMaxLen = 8

// Gadget is one discovered gadget.
type Gadget struct {
	// Offset of the first instruction within the scanned code.
	Offset int
	// Len is the byte length.
	Len int
	// Instrs is the instruction count including the final branch.
	Instrs int
	// End is the kind of indirect branch terminating the gadget.
	End visa.Op
}

// Find scans code at every byte offset and returns the unique gadgets
// (deduplicated by byte content, as rp++ counts them) of at most
// maxLen instructions ending in an indirect branch.
func Find(code []byte, maxLen int) []Gadget {
	if maxLen <= 0 {
		maxLen = DefaultMaxLen
	}
	seen := map[string]bool{}
	var out []Gadget
	for start := 0; start < len(code); start++ {
		off := start
		count := 0
		for count < maxLen {
			ins, n, err := visa.Decode(code, off)
			if err != nil {
				break
			}
			count++
			off += n
			if ins.IsIndirectBranch() {
				key := string(code[start:off])
				if !seen[key] {
					seen[key] = true
					out = append(out, Gadget{
						Offset: start,
						Len:    off - start,
						Instrs: count,
						End:    ins.Op,
					})
				}
				break
			}
			// Direct control flow ends a gadget usefully too? rp++
			// terminates sequences at any branch; we stop at direct
			// branches without emitting a gadget.
			switch ins.Op {
			case visa.JMP, visa.JE, visa.JNE, visa.JL, visa.JG,
				visa.JLE, visa.JGE, visa.JB, visa.JA, visa.JBE,
				visa.JAE, visa.CALL, visa.HLT:
				count = maxLen // stop scanning this start
			}
		}
	}
	return out
}

// CountUsable counts the gadgets that remain usable when the image is
// protected by MCFI: the gadget's start must be a legal indirect-
// branch target (reachable(addr) — in practice, 4-byte aligned with a
// valid Tary ID). base is the load address of code[0].
func CountUsable(gadgets []Gadget, base int, reachable func(addr int) bool) int {
	n := 0
	for _, g := range gadgets {
		if reachable(base + g.Offset) {
			n++
		}
	}
	return n
}

// Elimination returns the fraction of original gadgets eliminated by
// hardening: 1 - usable/original. original must be positive.
func Elimination(original, usable int) float64 {
	if original <= 0 {
		return 0
	}
	f := 1 - float64(usable)/float64(original)
	if f < 0 {
		return 0
	}
	return f
}
