package rop

import (
	"testing"

	"mcfi/internal/visa"
)

// buildCode assembles a tiny image with known gadget structure.
func buildCode(instrs []visa.Instr) []byte {
	var code []byte
	for _, i := range instrs {
		code = visa.Encode(code, i)
	}
	return code
}

func TestFindsRetGadget(t *testing.T) {
	code := buildCode([]visa.Instr{
		{Op: visa.POP, R1: visa.R1},
		{Op: visa.ADD, R1: visa.R0, R2: visa.R1},
		{Op: visa.RET},
	})
	gs := Find(code, 8)
	if len(gs) == 0 {
		t.Fatal("no gadgets found")
	}
	// The aligned full sequence plus suffixes must be found; every
	// gadget ends in ret.
	for _, g := range gs {
		if g.End != visa.RET {
			t.Errorf("gadget at %d ends in %s", g.Offset, g.End.Name())
		}
	}
	// The 1-instruction gadget (bare ret) exists.
	found := false
	for _, g := range gs {
		if g.Instrs == 1 && g.Len == 1 {
			found = true
		}
	}
	if !found {
		t.Error("bare-ret gadget missing")
	}
}

func TestFindsMisalignedGadgets(t *testing.T) {
	// A MOVI immediate containing the RET encoding yields a gadget
	// starting inside the instruction — the x86 phenomenon the byte
	// encoding reproduces.
	imm := int64(byte(visa.RET)) // low byte of the immediate is 0x28
	code := buildCode([]visa.Instr{
		{Op: visa.MOVI, R1: visa.R0, Imm: imm},
		{Op: visa.HLT},
	})
	gs := Find(code, 8)
	hasInterior := false
	for _, g := range gs {
		if g.Offset > 0 && g.Offset < 10 {
			hasInterior = true
		}
	}
	if !hasInterior {
		t.Errorf("no mid-instruction gadget found: %+v", gs)
	}
}

func TestDedupByContent(t *testing.T) {
	// The same byte sequence twice counts once (unique gadgets, as
	// rp++ reports).
	one := []visa.Instr{
		{Op: visa.POP, R1: visa.R3},
		{Op: visa.RET},
	}
	code := buildCode(append(one, one...))
	gs := Find(code, 8)
	byContent := map[string]int{}
	for _, g := range gs {
		byContent[string(code[g.Offset:g.Offset+g.Len])]++
	}
	for k, n := range byContent {
		if n > 1 {
			t.Errorf("sequence %q reported %d times", k, n)
		}
	}
}

func TestDirectBranchTerminatesScan(t *testing.T) {
	// A direct jmp between the start and any indirect branch makes the
	// sequence useless as a gadget.
	code := buildCode([]visa.Instr{
		{Op: visa.POP, R1: visa.R1},
		{Op: visa.JMP, Imm: 4},
		{Op: visa.RET},
	})
	gs := Find(code, 8)
	for _, g := range gs {
		if g.Offset == 0 {
			t.Errorf("gadget through a direct jmp: %+v", g)
		}
	}
}

func TestCountUsableAndElimination(t *testing.T) {
	code := buildCode([]visa.Instr{
		{Op: visa.POP, R1: visa.R1},  // offset 0 (aligned)
		{Op: visa.ADD, R1: 0, R2: 1}, // offset 2
		{Op: visa.RET},               // offset 5
	})
	gs := Find(code, 8)
	if len(gs) == 0 {
		t.Fatal("no gadgets")
	}
	// Under MCFI, nothing is a valid target: all gadgets die.
	usable := CountUsable(gs, 0x1000, func(addr int) bool { return false })
	if usable != 0 {
		t.Errorf("usable = %d, want 0", usable)
	}
	if e := Elimination(len(gs), usable); e != 1 {
		t.Errorf("elimination = %v, want 1", e)
	}
	// If the aligned start were a legal target, that one survives.
	usable = CountUsable(gs, 0x1000, func(addr int) bool { return addr == 0x1000 })
	if usable != 1 {
		t.Errorf("usable = %d, want 1", usable)
	}
	if Elimination(0, 0) != 0 {
		t.Error("degenerate elimination should be 0")
	}
}

func TestGadgetsNeverPanicOnRandomBytes(t *testing.T) {
	raw := make([]byte, 4096)
	state := uint64(42)
	for i := range raw {
		state = state*6364136223846793005 + 1
		raw[i] = byte(state >> 33)
	}
	gs := Find(raw, DefaultMaxLen)
	for _, g := range gs {
		if g.Offset < 0 || g.Offset+g.Len > len(raw) {
			t.Fatalf("gadget out of range: %+v", g)
		}
	}
}
