package visa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Instr{
		{Op: NOP},
		{Op: HLT},
		{Op: MOVI, R1: R3, Imm: -123456789012345},
		{Op: MOV, R1: R1, R2: R2},
		{Op: LD32, R1: R0, R2: FP, Imm: -16},
		{Op: ST64, R1: R4, R2: SP, Imm: 8},
		{Op: ADD, R1: R0, R2: R1},
		{Op: ADDI, R1: SP, Imm: -32},
		{Op: CMPI, R1: R0, Imm: 2147483647},
		{Op: JMP, Imm: -5},
		{Op: JNE, Imm: 1024},
		{Op: CALL, Imm: 0},
		{Op: CALLR, R1: R11},
		{Op: JMPR, R1: R11},
		{Op: RET},
		{Op: PUSH, R1: R6},
		{Op: POP, R1: R6},
		{Op: SYS, Imm: 3},
		{Op: FADD, R1: R0, R2: R1},
		{Op: CVIF, R1: R2},
		{Op: SET, R1: CcLE, R2: R0},
		{Op: TLOAD, R1: R11, R2: R11},
		{Op: TLOADI, R1: R10, Imm: 4096},
		{Op: AND32, R1: R11},
		{Op: ANDI, R1: R3, Imm: 0xFFFFFFF0},
		{Op: CMPW, R1: R10, R2: R11},
		{Op: TESTB, R1: R11, Imm: 1},
		{Op: SETJ, R1: R0},
		{Op: JRESTORE, R1: R1, R2: R2, R3: R11},
	}
	for _, want := range cases {
		buf := Encode(nil, want)
		if len(buf) != want.Size() {
			t.Errorf("%s: encoded %d bytes, Size() says %d", want, len(buf), want.Size())
		}
		got, n, err := Decode(buf, 0)
		if err != nil {
			t.Errorf("%s: decode error: %v", want, err)
			continue
		}
		if n != len(buf) {
			t.Errorf("%s: decoded %d bytes, want %d", want, n, len(buf))
		}
		if got != want {
			t.Errorf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestDecodeInvalid(t *testing.T) {
	// 0xFF is not an opcode.
	if _, _, err := Decode([]byte{0xFF}, 0); err == nil {
		t.Error("invalid opcode should fail")
	}
	// Truncated MOVI.
	if _, _, err := Decode([]byte{byte(MOVI), 0, 1, 2}, 0); err == nil {
		t.Error("truncated instruction should fail")
	}
	// Register out of range.
	if _, _, err := Decode([]byte{byte(PUSH), 99}, 0); err == nil {
		t.Error("invalid register should fail")
	}
	// Decode past end.
	if _, _, err := Decode([]byte{byte(NOP)}, 5); err == nil {
		t.Error("offset past end should fail")
	}
	// Bad condition code.
	if _, _, err := Decode([]byte{byte(SET), 50, 0}, 0); err == nil {
		t.Error("invalid condition code should fail")
	}
}

func TestDecodeAll(t *testing.T) {
	var buf []byte
	prog := []Instr{
		{Op: MOVI, R1: R0, Imm: 42},
		{Op: PUSH, R1: R0},
		{Op: POP, R1: R1},
		{Op: RET},
	}
	for _, i := range prog {
		buf = Encode(buf, i)
	}
	got, err := DecodeAll(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(prog) {
		t.Fatalf("decoded %d instrs, want %d", len(got), len(prog))
	}
	for i := range prog {
		if got[i] != prog[i] {
			t.Errorf("instr %d: got %+v, want %+v", i, got[i], prog[i])
		}
	}
}

func TestMisalignedDecodeDiffers(t *testing.T) {
	// Decoding from the middle of a MOVI immediate can yield different
	// instructions — the property that makes ROP gadgets possible and
	// Tary validity bits necessary.
	var buf []byte
	buf = Encode(buf, Instr{Op: MOVI, R1: R0, Imm: int64(RET)<<8 | int64(byte(HLT))})
	// At offset 2 the immediate bytes begin; they contain HLT and RET
	// encodings. DecodeAll from 0 must see one instruction.
	all, err := DecodeAll(buf)
	if err != nil || len(all) != 1 {
		t.Fatalf("aligned decode: %v, %d instrs", err, len(all))
	}
	if i, _, err := Decode(buf, 2); err != nil || i.Op != HLT {
		t.Errorf("mid-instruction decode = %v (%v), want HLT", i.Op, err)
	}
}

func TestAsmLabels(t *testing.T) {
	a := NewAsm()
	a.EmitBranch(JMP, "end") // forward reference
	a.Label("loop")
	a.Emit(Instr{Op: ADDI, R1: R0, Imm: 1})
	a.EmitBranch(JNE, "loop") // backward reference
	a.Label("end")
	a.Emit(Instr{Op: RET})
	if err := a.Finish(); err != nil {
		t.Fatal(err)
	}
	instrs, err := DecodeAll(a.Code)
	if err != nil {
		t.Fatal(err)
	}
	// jmp +11: skips addi (6) + jne (5).
	if instrs[0].Imm != 11 {
		t.Errorf("forward jmp disp = %d, want 11", instrs[0].Imm)
	}
	// jne back to loop: -(6+5) = -11.
	if instrs[2].Imm != -11 {
		t.Errorf("backward jne disp = %d, want -11", instrs[2].Imm)
	}
}

func TestAsmUndefinedLabel(t *testing.T) {
	a := NewAsm()
	a.EmitBranch(JMP, "nowhere")
	if err := a.Finish(); err == nil {
		t.Error("Finish should fail on unbound label")
	}
}

func TestAsmRelocs(t *testing.T) {
	a := NewAsm()
	a.EmitMoviSym(R0, "global_x", 4)
	if len(a.Relocs) != 1 {
		t.Fatalf("relocs = %d", len(a.Relocs))
	}
	r := a.Relocs[0]
	if r.Offset != 2 || r.Symbol != "global_x" || r.Addend != 4 {
		t.Errorf("reloc = %+v", r)
	}
}

func TestDisasmOutput(t *testing.T) {
	a := NewAsm()
	a.Emit(Instr{Op: MOVI, R1: R0, Imm: 7})
	a.EmitBranch(CALL, "f")
	a.Label("f")
	a.Emit(Instr{Op: RET})
	if err := a.Finish(); err != nil {
		t.Fatal(err)
	}
	text := Disasm(a.Code, 0x1000)
	for _, want := range []string{"movi r0, 7", "call 0x100f", "ret"} {
		if !strings.Contains(text, want) {
			t.Errorf("disasm missing %q:\n%s", want, text)
		}
	}
}

func TestIndirectBranchClassification(t *testing.T) {
	ib := []Instr{{Op: CALLR}, {Op: JMPR}, {Op: RET}, {Op: JRESTORE}}
	for _, i := range ib {
		if !i.IsIndirectBranch() {
			t.Errorf("%s should be an indirect branch", i.Op.Name())
		}
	}
	notIB := []Instr{{Op: CALL}, {Op: JMP}, {Op: JE}, {Op: NOP}, {Op: SETJ}}
	for _, i := range notIB {
		if i.IsIndirectBranch() {
			t.Errorf("%s should NOT be an indirect branch", i.Op.Name())
		}
	}
}

func TestPropDecodeNeverPanicsAndBounded(t *testing.T) {
	f := func(raw []byte) bool {
		for off := 0; off < len(raw); off++ {
			i, n, err := Decode(raw, off)
			if err != nil {
				continue
			}
			if n <= 0 || off+n > len(raw) {
				return false
			}
			if !i.Op.Valid() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropRoundTripRandomInstr(t *testing.T) {
	f := func(opRaw byte, r1, r2, r3 byte, imm int64) bool {
		op := Op(opRaw)
		if !op.Valid() {
			return true
		}
		i := Instr{Op: op, R1: r1 % NumRegs, R2: r2 % NumRegs, R3: r3 % NumRegs}
		switch op.OpLayout() {
		case LRI64:
			i.Imm = imm
		case LRI32, LRRI32, LI32:
			i.Imm = int64(int32(imm))
		case LI8, LRI8:
			i.Imm = int64(byte(imm))
		case LCR:
			i.R1 = i.R1 % 10 // valid cc
		case L0:
			i.R1, i.R2, i.R3 = 0, 0, 0
		case LR:
			i.R2, i.R3 = 0, 0
		case LRR:
			i.R3 = 0
		}
		// zero out unused fields per layout
		switch op.OpLayout() {
		case LI32, LI8:
			i.R1, i.R2, i.R3 = 0, 0, 0
		case LRI64, LRI32, LRI8:
			i.R2, i.R3 = 0, 0
		case LRRI32, LCR:
			i.R3 = 0
		}
		buf := Encode(nil, i)
		got, n, err := Decode(buf, 0)
		return err == nil && n == len(buf) && got == i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
