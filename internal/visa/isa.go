// Package visa defines the Virtual ISA targeted by the MiniC compiler
// and executed by the MCFI virtual machine.
//
// VISA is deliberately x86-like in the ways that matter to MCFI:
//
//   - Variable-length byte encoding, so code can be disassembled at any
//     byte offset — which is what makes ROP gadgets that start in the
//     middle of an instruction a real phenomenon, and what makes the
//     verifier's complete-disassembly guarantee meaningful.
//   - Return addresses live on the stack (CALL pushes, RET pops), so a
//     memory-corrupting attacker can redirect returns — the threat MCFI
//     defends against.
//   - Dedicated table-region access instructions (TLOAD/TLOADI) mirror
//     the paper's %gs-relative ID-table reads, and CMPW/TESTB mirror
//     the 16-bit version compare and the low-bit validity test of the
//     check transaction (paper Fig. 4).
//
// Two profiles exist: Profile32 and Profile64 (paper: x86-32/x86-64).
// They share the encoding; the profiles differ in pointer width
// reported to the compiler and in whether the compiler performs
// tail-call optimization (enabled on Profile64, mirroring the LLVM
// behaviour the paper credits for the smaller x86-64 EQC counts).
package visa

import "fmt"

// Register numbers. R15 is the stack pointer and R14 the frame
// pointer by convention; R9, R10 and R11 are reserved by the compiler
// as MCFI scratch registers (the paper's reserved-register LLVM pass):
// R11 holds the indirect-branch target address, R10 the branch ID, and
// R9 the target ID. Ordinary codegen never touches them.
const (
	R0  = 0 // return value / scratch
	R1  = 1
	R2  = 2
	R3  = 3
	R4  = 4
	R5  = 5
	R6  = 6
	R7  = 7
	R8  = 8
	R9  = 9
	R10 = 10 // MCFI scratch (branch ID)
	R11 = 11 // MCFI scratch (target ID / target address)
	R12 = 12
	R13 = 13
	FP  = 14
	SP  = 15

	// NumRegs is the size of the register file.
	NumRegs = 16
)

// RegName returns the assembler name of register r.
func RegName(r byte) string {
	switch r {
	case FP:
		return "fp"
	case SP:
		return "sp"
	default:
		return fmt.Sprintf("r%d", r)
	}
}

// Op is a VISA opcode.
type Op byte

// Opcodes. Gaps are intentionally invalid encodings.
const (
	NOP Op = 0x00
	HLT Op = 0x01

	MOVI Op = 0x02 // movi r, imm64
	MOV  Op = 0x03 // mov r, r2

	LD8  Op = 0x04 // ld8 r, [r2+off] (sign-extend)
	LD16 Op = 0x05
	LD32 Op = 0x06
	LD64 Op = 0x07
	ST8  Op = 0x08 // st8 [r2+off], r
	ST16 Op = 0x09
	ST32 Op = 0x0A
	ST64 Op = 0x0B

	ADD Op = 0x0C // add r, r2 (r = r op r2)
	SUB Op = 0x0D
	MUL Op = 0x0E
	DIV Op = 0x0F // signed
	MOD Op = 0x10 // signed
	AND Op = 0x11
	OR  Op = 0x12
	XOR Op = 0x13
	SHL Op = 0x14
	SHR Op = 0x15 // logical
	SAR Op = 0x16 // arithmetic

	ADDI Op = 0x17 // addi r, imm32 (sign-extended)
	CMP  Op = 0x18 // cmp r, r2
	CMPI Op = 0x19 // cmpi r, imm32

	JMP Op = 0x1A // jmp rel32
	JE  Op = 0x1B
	JNE Op = 0x1C
	JL  Op = 0x1D // signed
	JG  Op = 0x1E
	JLE Op = 0x1F
	JGE Op = 0x20
	JB  Op = 0x21 // unsigned
	JA  Op = 0x22
	JBE Op = 0x23
	JAE Op = 0x24

	CALL  Op = 0x25 // call rel32 (pushes return address)
	CALLR Op = 0x26 // callr r (indirect call)
	JMPR  Op = 0x27 // jmpr r (indirect jump)
	RET   Op = 0x28 // ret (pops return address)

	PUSH Op = 0x29
	POP  Op = 0x2A
	SYS  Op = 0x2B // sys imm8 (runtime call; args/results in registers)

	LD8U  Op = 0x30 // zero-extending loads
	LD16U Op = 0x31
	LD32U Op = 0x32

	FADD Op = 0x33 // IEEE float64 ops on register bit patterns
	FSUB Op = 0x34
	FMUL Op = 0x35
	FDIV Op = 0x36
	FCMP Op = 0x37
	CVIF Op = 0x38 // int64  -> float64
	CVFI Op = 0x39 // float64-> int64 (truncate)

	SET Op = 0x3A // set cc, r (r = flags satisfy cc ? 1 : 0)

	UDIV Op = 0x3B // unsigned divide
	UMOD Op = 0x3C
	NEG  Op = 0x3D // neg r
	NOTI Op = 0x3E // bitwise not r

	// --- MCFI instrumentation opcodes ---

	TLOAD    Op = 0x40 // tload r, [r2]: r = 32-bit load from table region at byte offset r2
	TLOADI   Op = 0x41 // tloadi r, imm32: r = 32-bit load from table region at constant offset
	AND32    Op = 0x42 // and32 r: truncate r to its low 32 bits (sandbox/code mask)
	ANDI     Op = 0x43 // andi r, imm64
	CMPW     Op = 0x44 // cmpw r, r2: compare low 16 bits (ID version compare)
	TESTB    Op = 0x45 // testb r, imm8: ZF = (low byte of r & imm) == 0
	SETJ     Op = 0x46 // setj r: env=[r]; save SP, FP, continuation PC; R0 = 0
	JRESTORE Op = 0x48 // jrestore rsp, rfp, rtgt: SP=rsp, FP=rfp, jump rtgt

	SX8  Op = 0x49 // sign-extend low 8 bits of r
	SX16 Op = 0x4A
	SX32 Op = 0x4B
	ZX8  Op = 0x4C // zero-extend low 8 bits of r
	ZX16 Op = 0x4D // (32-bit zero extension is AND32)
)

// Condition codes for SET.
const (
	CcE  = 0
	CcNE = 1
	CcL  = 2
	CcG  = 3
	CcLE = 4
	CcGE = 5
	CcB  = 6
	CcA  = 7
	CcBE = 8
	CcAE = 9
)

// CcName returns the assembler name of a condition code.
func CcName(cc byte) string {
	names := []string{"e", "ne", "l", "g", "le", "ge", "b", "a", "be", "ae"}
	if int(cc) < len(names) {
		return names[cc]
	}
	return fmt.Sprintf("cc%d", cc)
}

// Layout describes an instruction's operand encoding.
type Layout int

// Operand layouts.
const (
	L0     Layout = iota // op
	LR                   // op r
	LRR                  // op r r2
	LRRR                 // op r r2 r3
	LRI64                // op r imm64
	LRI32                // op r imm32
	LRRI32               // op r r2 off32
	LI32                 // op rel32
	LI8                  // op imm8
	LRI8                 // op r imm8
	LCR                  // op cc r
)

// opInfo describes one opcode.
type opInfo struct {
	name   string
	layout Layout
}

var ops = map[Op]opInfo{
	NOP: {"nop", L0}, HLT: {"hlt", L0},
	MOVI: {"movi", LRI64}, MOV: {"mov", LRR},
	LD8: {"ld8", LRRI32}, LD16: {"ld16", LRRI32}, LD32: {"ld32", LRRI32},
	LD64: {"ld64", LRRI32},
	LD8U: {"ld8u", LRRI32}, LD16U: {"ld16u", LRRI32}, LD32U: {"ld32u", LRRI32},
	ST8: {"st8", LRRI32}, ST16: {"st16", LRRI32}, ST32: {"st32", LRRI32},
	ST64: {"st64", LRRI32},
	ADD:  {"add", LRR}, SUB: {"sub", LRR}, MUL: {"mul", LRR},
	DIV: {"div", LRR}, MOD: {"mod", LRR}, UDIV: {"udiv", LRR},
	UMOD: {"umod", LRR},
	AND:  {"and", LRR}, OR: {"or", LRR}, XOR: {"xor", LRR},
	SHL: {"shl", LRR}, SHR: {"shr", LRR}, SAR: {"sar", LRR},
	NEG: {"neg", LR}, NOTI: {"not", LR},
	ADDI: {"addi", LRI32}, CMP: {"cmp", LRR}, CMPI: {"cmpi", LRI32},
	JMP: {"jmp", LI32}, JE: {"je", LI32}, JNE: {"jne", LI32},
	JL: {"jl", LI32}, JG: {"jg", LI32}, JLE: {"jle", LI32},
	JGE: {"jge", LI32}, JB: {"jb", LI32}, JA: {"ja", LI32},
	JBE: {"jbe", LI32}, JAE: {"jae", LI32},
	CALL: {"call", LI32}, CALLR: {"callr", LR}, JMPR: {"jmpr", LR},
	RET: {"ret", L0}, PUSH: {"push", LR}, POP: {"pop", LR},
	SYS:  {"sys", LI8},
	FADD: {"fadd", LRR}, FSUB: {"fsub", LRR}, FMUL: {"fmul", LRR},
	FDIV: {"fdiv", LRR}, FCMP: {"fcmp", LRR},
	CVIF: {"cvif", LR}, CVFI: {"cvfi", LR},
	SET:      {"set", LCR},
	TLOAD:    {"tload", LRR},
	TLOADI:   {"tloadi", LRI32},
	AND32:    {"and32", LR},
	ANDI:     {"andi", LRI64},
	CMPW:     {"cmpw", LRR},
	TESTB:    {"testb", LRI8},
	SETJ:     {"setj", LR},
	JRESTORE: {"jrestore", LRRR},
	SX8:      {"sx8", LR}, SX16: {"sx16", LR}, SX32: {"sx32", LR},
	ZX8: {"zx8", LR}, ZX16: {"zx16", LR},
}

// opTable is the dense lookup used on hot paths (the VM decodes every
// executed instruction); entries with an empty name are invalid.
var opTable [256]opInfo

func init() {
	for op, info := range ops {
		opTable[op] = info
	}
}

// Valid reports whether op is a defined opcode.
func (o Op) Valid() bool { return opTable[o].name != "" }

// Name returns the mnemonic of op.
func (o Op) Name() string {
	if info, ok := ops[o]; ok {
		return info.name
	}
	return fmt.Sprintf("db 0x%02x", byte(o))
}

// OpLayout returns the operand layout of op.
func (o Op) OpLayout() Layout { return ops[o].layout }

// layoutSize returns the encoded size of each layout including the
// opcode byte.
func layoutSize(l Layout) int {
	switch l {
	case L0:
		return 1
	case LR, LI8:
		return 2
	case LRR, LRI8, LCR:
		return 3
	case LRRR:
		return 4
	case LI32:
		return 5
	case LRI32:
		return 6
	case LRRI32:
		return 7
	case LRI64:
		return 10
	}
	return 1
}

// Size returns the encoded byte size of op's instruction.
func (o Op) Size() int {
	info, ok := ops[o]
	if !ok {
		return 1
	}
	return layoutSize(info.layout)
}

// Instr is one decoded (or to-be-encoded) instruction.
type Instr struct {
	Op  Op
	R1  byte  // first register (or condition code for SET)
	R2  byte  // second register
	R3  byte  // third register (JRESTORE)
	Imm int64 // immediate / offset / relative displacement
}

// Size returns the encoded size of the instruction in bytes.
func (i Instr) Size() int { return i.Op.Size() }

// IsIndirectBranch reports whether the instruction is one of MCFI's
// indirect branches: indirect call, indirect jump, return, or the
// longjmp restore.
func (i Instr) IsIndirectBranch() bool {
	switch i.Op {
	case CALLR, JMPR, RET, JRESTORE:
		return true
	}
	return false
}

// IsStore reports whether the instruction writes data memory.
func (i Instr) IsStore() bool {
	switch i.Op {
	case ST8, ST16, ST32, ST64:
		return true
	}
	return false
}

// String renders the instruction in assembler syntax (without address
// resolution; relative branches print their displacement).
func (i Instr) String() string {
	info, ok := ops[i.Op]
	if !ok {
		return fmt.Sprintf("db 0x%02x", byte(i.Op))
	}
	switch info.layout {
	case L0:
		return info.name
	case LR:
		return fmt.Sprintf("%s %s", info.name, RegName(i.R1))
	case LRR:
		return fmt.Sprintf("%s %s, %s", info.name, RegName(i.R1), RegName(i.R2))
	case LRRR:
		return fmt.Sprintf("%s %s, %s, %s", info.name, RegName(i.R1), RegName(i.R2), RegName(i.R3))
	case LRI64:
		return fmt.Sprintf("%s %s, %d", info.name, RegName(i.R1), i.Imm)
	case LRI32:
		return fmt.Sprintf("%s %s, %d", info.name, RegName(i.R1), i.Imm)
	case LRRI32:
		if i.IsStore() {
			return fmt.Sprintf("%s [%s%+d], %s", info.name, RegName(i.R2), i.Imm, RegName(i.R1))
		}
		return fmt.Sprintf("%s %s, [%s%+d]", info.name, RegName(i.R1), RegName(i.R2), i.Imm)
	case LI32:
		return fmt.Sprintf("%s %+d", info.name, i.Imm)
	case LI8:
		return fmt.Sprintf("%s %d", info.name, i.Imm)
	case LRI8:
		return fmt.Sprintf("%s %s, %d", info.name, RegName(i.R1), i.Imm)
	case LCR:
		return fmt.Sprintf("%s%s %s", info.name, CcName(i.R1), RegName(i.R2))
	}
	return info.name
}

// Profile selects the compilation target (paper: x86-32 vs x86-64).
type Profile int

// Profiles.
const (
	// Profile32 models the paper's x86-32 target: no tail-call
	// optimization.
	Profile32 Profile = 32
	// Profile64 models the paper's x86-64 target: the compiler turns
	// eligible calls in tail position into jumps, which merges return
	// equivalence classes exactly as the paper observes in Table 3.
	Profile64 Profile = 64
)

// String names the profile.
func (p Profile) String() string {
	if p == Profile32 {
		return "visa32"
	}
	return "visa64"
}
