package visa

import (
	"encoding/binary"
	"fmt"
)

// Encode appends the encoding of instruction i to buf and returns the
// extended slice.
func Encode(buf []byte, i Instr) []byte {
	info, ok := ops[i.Op]
	if !ok {
		return append(buf, byte(i.Op))
	}
	buf = append(buf, byte(i.Op))
	switch info.layout {
	case L0:
	case LR:
		buf = append(buf, i.R1)
	case LRR:
		buf = append(buf, i.R1, i.R2)
	case LRRR:
		buf = append(buf, i.R1, i.R2, i.R3)
	case LRI64:
		buf = append(buf, i.R1)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(i.Imm))
	case LRI32:
		buf = append(buf, i.R1)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(i.Imm)))
	case LRRI32:
		buf = append(buf, i.R1, i.R2)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(i.Imm)))
	case LI32:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(i.Imm)))
	case LI8:
		buf = append(buf, byte(i.Imm))
	case LRI8:
		buf = append(buf, i.R1, byte(i.Imm))
	case LCR:
		buf = append(buf, i.R1, i.R2)
	}
	return buf
}

// Decode decodes one instruction at code[off:]. It returns the
// instruction and the number of bytes consumed. Invalid or truncated
// encodings return an error; callers that scan at arbitrary offsets
// (the ROP finder) treat an error as "not an instruction here".
func Decode(code []byte, off int) (Instr, int, error) {
	if off < 0 || off >= len(code) {
		return Instr{}, 0, fmt.Errorf("visa: decode at %d past end of code (%d)", off, len(code))
	}
	op := Op(code[off])
	info := opTable[op]
	if info.name == "" {
		return Instr{}, 0, fmt.Errorf("visa: invalid opcode 0x%02x at offset %d", byte(op), off)
	}
	size := layoutSize(info.layout)
	if off+size > len(code) {
		return Instr{}, 0, fmt.Errorf("visa: truncated %s at offset %d", info.name, off)
	}
	i := Instr{Op: op}
	b := code[off+1 : off+size]
	switch info.layout {
	case L0:
	case LR:
		i.R1 = b[0]
	case LRR:
		i.R1, i.R2 = b[0], b[1]
	case LRRR:
		i.R1, i.R2, i.R3 = b[0], b[1], b[2]
	case LRI64:
		i.R1 = b[0]
		i.Imm = int64(binary.LittleEndian.Uint64(b[1:]))
	case LRI32:
		i.R1 = b[0]
		i.Imm = int64(int32(binary.LittleEndian.Uint32(b[1:])))
	case LRRI32:
		i.R1, i.R2 = b[0], b[1]
		i.Imm = int64(int32(binary.LittleEndian.Uint32(b[2:])))
	case LI32:
		i.Imm = int64(int32(binary.LittleEndian.Uint32(b)))
	case LI8:
		i.Imm = int64(b[0])
	case LRI8:
		i.R1 = b[0]
		i.Imm = int64(b[1])
	case LCR:
		i.R1, i.R2 = b[0], b[1]
	}
	// Register validity: any register operand must be < NumRegs.
	switch info.layout {
	case LR, LRR, LRRR, LRI64, LRI32, LRRI32, LRI8:
		if i.R1 >= NumRegs || i.R2 >= NumRegs || i.R3 >= NumRegs {
			return Instr{}, 0, fmt.Errorf("visa: invalid register in %s at offset %d", info.name, off)
		}
	case LCR:
		if i.R1 > CcAE || i.R2 >= NumRegs {
			return Instr{}, 0, fmt.Errorf("visa: invalid operand in %s at offset %d", info.name, off)
		}
	}
	return i, size, nil
}

// DecodeAll decodes a code image from offset 0 to the end, failing on
// the first invalid instruction. Used in tests and by the verifier's
// full-disassembly pass.
func DecodeAll(code []byte) ([]Instr, error) {
	var out []Instr
	off := 0
	for off < len(code) {
		i, n, err := Decode(code, off)
		if err != nil {
			return nil, err
		}
		out = append(out, i)
		off += n
	}
	return out, nil
}

// Disasm renders a code image as an assembler listing with addresses
// resolved for relative branches. base is the load address of code[0].
func Disasm(code []byte, base int64) string {
	out := ""
	off := 0
	for off < len(code) {
		i, n, err := Decode(code, off)
		if err != nil {
			out += fmt.Sprintf("%08x: db 0x%02x\n", base+int64(off), code[off])
			off++
			continue
		}
		switch i.Op {
		case JMP, JE, JNE, JL, JG, JLE, JGE, JB, JA, JBE, JAE, CALL:
			target := base + int64(off) + int64(n) + i.Imm
			out += fmt.Sprintf("%08x: %s 0x%x\n", base+int64(off), i.Op.Name(), target)
		default:
			out += fmt.Sprintf("%08x: %s\n", base+int64(off), i)
		}
		off += n
	}
	return out
}

// Asm is a tiny one-pass assembler with labels and late fixups, used by
// the code generator and by tests to build code images.
type Asm struct {
	Code   []byte
	labels map[string]int
	fixups []fixup
	// Relocs collects absolute-address fixups (MOVI of symbol
	// addresses) to be resolved by the linker; keyed by code offset of
	// the 8-byte immediate.
	Relocs []Reloc
}

// Reloc is a request to patch an absolute 64-bit immediate at Offset
// (offset of the immediate field, not of the instruction) with the
// address of Symbol plus Addend. JumpTable marks switch-lowering
// relocations that must not imply the symbol's address was taken.
type Reloc struct {
	Offset    int
	Symbol    string
	Addend    int64
	JumpTable bool
}

type fixup struct {
	offset int    // offset of the rel32 field
	end    int    // offset of the end of the instruction
	label  string // target label
}

// NewAsm returns an empty assembler.
func NewAsm() *Asm {
	return &Asm{labels: map[string]int{}}
}

// Pos returns the current code offset.
func (a *Asm) Pos() int { return len(a.Code) }

// Label binds name to the current offset.
func (a *Asm) Label(name string) {
	a.labels[name] = len(a.Code)
}

// LabelAt returns the offset of a bound label.
func (a *Asm) LabelAt(name string) (int, bool) {
	off, ok := a.labels[name]
	return off, ok
}

// Emit appends an instruction.
func (a *Asm) Emit(i Instr) {
	a.Code = Encode(a.Code, i)
}

// EmitRaw appends raw bytes (jump tables and other in-code read-only
// data). Callers must record the range so the verifier can skip it
// during disassembly.
func (a *Asm) EmitRaw(b []byte) {
	a.Code = append(a.Code, b...)
}

// EmitMoviSym emits "movi r, <addr of symbol>" with a relocation.
func (a *Asm) EmitMoviSym(r byte, symbol string, addend int64) {
	a.Emit(Instr{Op: MOVI, R1: r})
	a.Relocs = append(a.Relocs, Reloc{Offset: len(a.Code) - 8, Symbol: symbol, Addend: addend})
}

// EmitBranch emits a relative branch to a label (bound now or later).
func (a *Asm) EmitBranch(op Op, label string) {
	start := len(a.Code)
	a.Emit(Instr{Op: op})
	a.fixups = append(a.fixups, fixup{offset: start + 1, end: start + 5, label: label})
}

// Finish resolves all label fixups. It returns an error if a label was
// never bound.
func (a *Asm) Finish() error {
	for _, f := range a.fixups {
		target, ok := a.labels[f.label]
		if !ok {
			return fmt.Errorf("visa: undefined label %q", f.label)
		}
		rel := int32(target - f.end)
		a.Code[f.offset] = byte(rel)
		a.Code[f.offset+1] = byte(rel >> 8)
		a.Code[f.offset+2] = byte(rel >> 16)
		a.Code[f.offset+3] = byte(rel >> 24)
	}
	a.fixups = nil
	return nil
}
