package visa

// Guest address-space layout. A single flat address space holds code
// and data, as on x86; the MCFI runtime maps the regions and enforces
// that no region is writable and executable at the same time (paper
// §4, threat model).
//
// The paper's x86-64 sandbox restricts memory writes to [0, 4GB) by
// masking; VISA scales the same scheme down: stores are instrumented
// with "andi r, StoreMask" so they stay inside [0, SandboxSize), and
// the ID tables live outside the guest address space entirely
// (reachable only through TLOAD/TLOADI, the %gs analogue).
const (
	// NullGuard is the size of the unmapped page at address 0.
	NullGuard = 0x1000
	// CodeBase is where module code is loaded.
	CodeBase = 0x1000
	// CodeLimit is the top of the code region (max total code size).
	CodeLimit = 0x40_0000 // 4 MiB
	// DataBase is where the data region begins (rodata, data, bss,
	// heap; stacks are carved from the top of the sandbox).
	DataBase = CodeLimit
	// SandboxSize is the size of the guest address space. It is a
	// power of two so that a single AND masks stores into it.
	SandboxSize = 1 << 26 // 64 MiB
	// StoreMask is the sandbox write mask applied before instrumented
	// stores.
	StoreMask = SandboxSize - 1
	// GuardSize is the unwritable band above the sandbox that absorbs
	// masked-base-plus-displacement stores (|disp| <= MaxStoreDisp).
	GuardSize = 0x1000
	// MaxStoreDisp bounds the displacement of sandboxed stores; the
	// verifier enforces it so a masked base plus displacement cannot
	// escape the sandbox and its guard band.
	MaxStoreDisp = 2048
)

// Syscall numbers for the SYS instruction. The MCFI runtime interposes
// on every one of them (paper §7: "the runtime does not allow modules
// to directly invoke native system calls ... wraps system calls as API
// functions and checks their arguments").
const (
	SysExit     = 0 // exit(status R0)
	SysWrite    = 1 // write(buf R0, len R1) -> bytes written
	SysSbrk     = 2 // sbrk(delta R0) -> previous break
	SysMmap     = 3 // mmap(len R0, prot R1) -> addr; W^X enforced
	SysMprotect = 4 // mprotect(addr R0, len R1, prot R2); W^X enforced
	SysDlopen   = 5 // dlopen(path R0) -> module handle
	SysDlsym    = 6 // dlsym(handle R0, name R1) -> function address
	SysClock    = 7 // clock() -> retired instruction count
	SysSpawn    = 8 // spawn(fn R0, arg R1) -> thread id
	SysJoin     = 9 // join(tid R0) -> thread exit value
	SysYield    = 10
	SysRand     = 11 // deterministic PRNG for workloads -> R0
	// SysThreadExit terminates the calling thread with value R0; used
	// by the libc thread trampoline (threads never return).
	SysThreadExit = 12
)

// Memory protection bits for SysMmap/SysMprotect.
const (
	ProtRead  = 1
	ProtWrite = 2
	ProtExec  = 4
)
