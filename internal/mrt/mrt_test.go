package mrt_test

import (
	"strings"
	"sync"
	"testing"

	"mcfi/internal/linker"
	"mcfi/internal/module"
	"mcfi/internal/mrt"
	"mcfi/internal/tables"
	"mcfi/internal/toolchain"
	"mcfi/internal/verifier"
	"mcfi/internal/visa"
	"mcfi/internal/vm"
)

func build(t *testing.T, b *toolchain.Builder, srcs ...toolchain.Source) *linker.Image {
	t.Helper()
	img, err := b.Build(srcs...)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return img
}

func newRT(t *testing.T, img *linker.Image, opts mrt.Options) *mrt.Runtime {
	t.Helper()
	rt, err := mrt.New(img, opts)
	if err != nil {
		t.Fatalf("runtime: %v", err)
	}
	return rt
}

// TestReturnAddressCorruptionHalts is the core attack of the threat
// model: a memory write redirects a return to an address-taken
// function, and the MCFI return check must halt the program.
func TestReturnAddressCorruptionHalts(t *testing.T) {
	src := `
int evil_calls = 0;
void evil(void) { evil_calls = 1; }
void (*keep)(void) = evil;   // evil is address-taken (a plausible ROP target)

long victim(long target) {
	long x = 0;
	long *p = &x;
	// Frame layout: x at fp-8, saved fp at fp+0, return address at
	// fp+8 — so p[2] is the return address. This is exactly the
	// stack-smash primitive of the concurrent-attacker model.
	p[2] = target;
	return x;
}
int main(void) {
	victim((long)evil);
	puts("survived");
	return 0;
}`
	cfg := toolchain.New(toolchain.WithInstrumentation())
	img := build(t, cfg, toolchain.Source{Name: "attack", Text: src})
	rt := newRT(t, img, mrt.Options{})
	_, err := rt.Run(50_000_000)
	f, ok := err.(*vm.Fault)
	if !ok || f.Kind != vm.FaultCFI {
		t.Fatalf("want CFI violation fault, got %v (output %q)", err, rt.Output())
	}
	if strings.Contains(rt.Output(), "survived") {
		t.Error("attack should not let the program continue")
	}
	// The same program without MCFI instrumentation is hijacked: the
	// return lands in evil (or at least does not fault with FaultCFI).
	cfgBase := toolchain.New()
	imgBase := build(t, cfgBase, toolchain.Source{Name: "attack", Text: src})
	rtBase := newRT(t, imgBase, mrt.Options{})
	_, errBase := rtBase.Run(50_000_000)
	if fb, ok := errBase.(*vm.Fault); ok && fb.Kind == vm.FaultCFI {
		t.Error("baseline build cannot raise CFI faults")
	}
}

// TestFunctionPointerTypeMismatchHalts mirrors the GnuPG scenario
// (§8.3): an attacker-controlled function pointer aimed at a function
// of a different type is stopped by type-matching CFI.
func TestFunctionPointerTypeMismatchHalts(t *testing.T) {
	src := `
int execve_like(char *path, char **argv) {
	puts("executing!");
	return 0;
}
int (*keep)(char *, char **) = execve_like;  // address-taken, as when linked with libc

void (*handler)(void);

int main(void) {
	// The attacker corrupts 'handler' to point at execve_like.
	handler = (void (*)(void))execve_like;
	handler();
	puts("survived");
	return 0;
}`
	cfg := toolchain.New(toolchain.WithInstrumentation())
	img := build(t, cfg, toolchain.Source{Name: "gnupg", Text: src})
	rt := newRT(t, img, mrt.Options{})
	_, err := rt.Run(50_000_000)
	f, ok := err.(*vm.Fault)
	if !ok || f.Kind != vm.FaultCFI {
		t.Fatalf("want CFI violation, got %v (output %q)", err, rt.Output())
	}
	if strings.Contains(rt.Output(), "executing!") {
		t.Error("execve-like must not run")
	}
}

// TestMatchingFunctionPointerPasses is the complement: a legitimate
// same-type target is allowed.
func TestMatchingFunctionPointerPasses(t *testing.T) {
	src := `
int ok_calls = 0;
void handler_a(void) { ok_calls += 1; }
void handler_b(void) { ok_calls += 10; }
void (*handler)(void) = handler_a;
int main(void) {
	handler();
	handler = handler_b;
	handler();
	return ok_calls;
}`
	cfg := toolchain.New(toolchain.WithInstrumentation())
	img := build(t, cfg, toolchain.Source{Name: "ok", Text: src})
	rt := newRT(t, img, mrt.Options{})
	code, err := rt.Run(50_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 11 {
		t.Errorf("exit code = %d, want 11", code)
	}
}

const pluginSrc = `
long plugin_state = 7;
long plugin_entry(long x) { return x * plugin_state; }
long plugin_other(long x) { return x + 1000; }
`

const dlMainSrc = `
int main(void) {
	long h = dlopen("plugin");
	if (h == 0) { puts("dlopen failed"); return 1; }
	long addr = dlsym(h, "plugin_entry");
	if (addr == 0) { puts("dlsym failed"); return 2; }
	long (*fn)(long) = (long (*)(long))addr;   // the K2-style dlsym cast
	long r = fn(6);
	printf("%ld\n", r);
	return 0;
}`

// TestDlopenDlsym exercises the full dynamic-linking path: load,
// relocate, regenerate the CFG, update the tables, and call into the
// library through a checked function pointer.
func TestDlopenDlsym(t *testing.T) {
	for _, instr := range []bool{true, false} {
		cfg := toolchain.New(toolchain.WithInstrument(instr))
		img := build(t, cfg, toolchain.Source{Name: "main", Text: dlMainSrc})
		plugin, err := cfg.Compile(toolchain.Source{Name: "plugin", Text: pluginSrc})
		if err != nil {
			t.Fatal(err)
		}
		rt := newRT(t, img, mrt.Options{})
		rt.RegisterLibrary(plugin)
		code, err := rt.Run(100_000_000)
		if err != nil {
			t.Fatalf("instrument=%v: %v (output %q)", instr, err, rt.Output())
		}
		if code != 0 || rt.Output() != "42\n" {
			t.Errorf("instrument=%v: code=%d output=%q", instr, code, rt.Output())
		}
		if instr && rt.Tables.Updates() < 2 {
			t.Errorf("expected at least 2 update transactions (load + dlopen), got %d", rt.Tables.Updates())
		}
	}
}

// TestDlopenGrowsCFG checks that dynamic linking extends the policy:
// the library's functions and branches enter the equivalence classes.
func TestDlopenGrowsCFG(t *testing.T) {
	cfg := toolchain.New(toolchain.WithInstrumentation())
	img := build(t, cfg, toolchain.Source{Name: "main", Text: dlMainSrc})
	plugin, err := cfg.Compile(toolchain.Source{Name: "plugin", Text: pluginSrc})
	if err != nil {
		t.Fatal(err)
	}
	rt := newRT(t, img, mrt.Options{})
	rt.RegisterLibrary(plugin)
	before := rt.Graph().Stats
	if _, err := rt.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	after := rt.Graph().Stats
	if after.IBs <= before.IBs {
		t.Errorf("IBs should grow after dlopen: %d -> %d", before.IBs, after.IBs)
	}
	if after.IBTs <= before.IBTs {
		t.Errorf("IBTs should grow after dlopen: %d -> %d", before.IBTs, after.IBTs)
	}
}

// TestPLTCall links a program with an unresolved function routed
// through an MCFI-instrumented PLT entry, loads the defining library at
// runtime, and calls through the PLT.
func TestPLTCall(t *testing.T) {
	mainSrc := `
long ext_mul(long a, long b);
int main(void) {
	long h = dlopen("extlib");
	if (h == 0) return 1;
	printf("%ld\n", ext_mul(6, 7));
	return 0;
}`
	extSrc := `
long ext_mul(long a, long b) { return a * b; }
`
	for _, instr := range []bool{true, false} {
		cfg := toolchain.New(toolchain.WithInstrument(instr),
			toolchain.WithLinkOptions(linker.Options{AllowUnresolved: true}))
		img := build(t, cfg, toolchain.Source{Name: "main", Text: mainSrc})
		if _, ok := img.PLT["ext_mul"]; !ok {
			t.Fatal("no PLT entry for ext_mul")
		}
		ext, err := cfg.Compile(toolchain.Source{Name: "extlib", Text: extSrc})
		if err != nil {
			t.Fatal(err)
		}
		rt := newRT(t, img, mrt.Options{})
		rt.RegisterLibrary(ext)
		code, err := rt.Run(100_000_000)
		if err != nil {
			t.Fatalf("instrument=%v: %v (out=%q)", instr, err, rt.Output())
		}
		if code != 0 || rt.Output() != "42\n" {
			t.Errorf("instrument=%v: code=%d out=%q", instr, code, rt.Output())
		}
	}
}

// TestPLTCallBeforeDlopenFaults: calling an unresolved import before
// its library is loaded must fault (GOT slot points at the null page),
// never silently succeed.
func TestPLTCallBeforeDlopenFaults(t *testing.T) {
	mainSrc := `
long ext_mul(long a, long b);
int main(void) {
	return (int)ext_mul(2, 3);
}`
	cfg := toolchain.New(toolchain.WithInstrumentation(),
		toolchain.WithLinkOptions(linker.Options{AllowUnresolved: true}))
	img := build(t, cfg, toolchain.Source{Name: "main", Text: mainSrc})
	rt := newRT(t, img, mrt.Options{})
	_, err := rt.Run(10_000_000)
	if err == nil {
		t.Fatal("unresolved PLT call should fault")
	}
}

// TestGuestThreads runs real concurrent guest threads through the
// spawn/join syscalls and the libc trampoline's checked indirect call.
func TestGuestThreads(t *testing.T) {
	src := `
long work(long n) {
	long sum = 0;
	for (long i = 1; i <= n; i++) sum += i;
	return sum;
}
int main(void) {
	long t1 = thread_spawn(work, 100);
	long t2 = thread_spawn(work, 200);
	long t3 = thread_spawn(work, 300);
	long total = thread_join(t1) + thread_join(t2) + thread_join(t3);
	printf("%ld\n", total);
	return 0;
}`
	cfg := toolchain.New(toolchain.WithInstrumentation())
	img := build(t, cfg, toolchain.Source{Name: "threads", Text: src})
	rt := newRT(t, img, mrt.Options{})
	code, err := rt.Run(100_000_000)
	if err != nil {
		t.Fatalf("%v (out=%q)", err, rt.Output())
	}
	want := "70300\n" // 5050 + 20100 + 45150
	if code != 0 || rt.Output() != want {
		t.Errorf("code=%d out=%q want %q", code, rt.Output(), want)
	}
}

// TestConcurrentUpdatesDoNotBreakExecution is the Fig. 6 mechanism: a
// host thread re-versions all IDs continuously while the instrumented
// guest runs an indirect-branch-heavy loop. Execution must complete
// with the right answer (check transactions retry through updates).
func TestConcurrentUpdatesDoNotBreakExecution(t *testing.T) {
	src := `
int add(int a, int b) { return a + b; }
int sub(int a, int b) { return a - b; }
int (*ops[2])(int, int) = {add, sub};
int main(void) {
	int acc = 0;
	for (int i = 0; i < 30000; i++) {
		acc = ops[i & 1](acc, i & 15);
	}
	printf("%d\n", acc);
	return 0;
}`
	cfg := toolchain.New(toolchain.WithInstrumentation())
	img := build(t, cfg, toolchain.Source{Name: "spin", Text: src})
	rt := newRT(t, img, mrt.Options{})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				rt.Tables.Reversion(tables.UpdateOpts{})
			}
		}
	}()
	code, err := rt.Run(500_000_000)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("run under concurrent updates: %v", err)
	}
	if code != 0 {
		t.Errorf("exit code = %d", code)
	}
	if rt.Tables.Updates() < 10 {
		t.Logf("only %d updates happened during the run", rt.Tables.Updates())
	}
	t.Logf("updates=%d retries=%d", rt.Tables.Updates(), rt.Tables.Retries())
}

// TestWXEnforcement: guest attempts to map or reprotect memory both
// writable and executable must be refused (paper §4/§7 invariant).
func TestWXEnforcement(t *testing.T) {
	src := `
int main(void) {
	long rwx = __sys2(SYS_MMAP, 4096, 7);        // PROT_READ|WRITE|EXEC
	long rw = __sys2(SYS_MMAP, 4096, 3);         // PROT_READ|WRITE
	if (rwx != -1) return 1;                      // W+X must be refused
	if (rw == -1) return 2;                       // plain RW is fine
	long flip = __sys3(SYS_MPROTECT, rw, 4096, 5); // PROT_READ|EXEC
	if (flip != -1) return 3;                     // guest cannot make code
	return 0;
}`
	cfg := toolchain.New(toolchain.WithInstrumentation())
	img := build(t, cfg, toolchain.Source{Name: "wx", Text: src})
	rt := newRT(t, img, mrt.Options{})
	code, err := rt.Run(10_000_000)
	if err != nil {
		t.Fatalf("%v", err)
	}
	if code != 0 {
		t.Errorf("W^X test exited %d", code)
	}
	if err := rt.Proc.CheckWX(); err != nil {
		t.Errorf("W^X invariant violated: %v", err)
	}
}

// TestBaselineRunsWithoutTables: baseline builds must execute with no
// tables at all (no TLOAD instructions were emitted).
func TestBaselineRunsWithoutTables(t *testing.T) {
	src := `int main(void) { return 5; }`
	cfg := toolchain.New()
	img := build(t, cfg, toolchain.Source{Name: "b", Text: src})
	rt := newRT(t, img, mrt.Options{})
	if rt.Tables != nil {
		t.Error("baseline runtime should not allocate tables")
	}
	code, err := rt.Run(1_000_000)
	if err != nil || code != 5 {
		t.Errorf("code=%d err=%v", code, err)
	}
}

// TestDlsymMarksAddrTaken: before dlsym, a never-address-taken library
// function is not a legal indirect target; after dlsym it is.
func TestDlsymMarksAddrTaken(t *testing.T) {
	cfg := toolchain.New(toolchain.WithInstrumentation())
	img := build(t, cfg, toolchain.Source{Name: "main", Text: dlMainSrc})
	plugin, err := cfg.Compile(toolchain.Source{Name: "plugin", Text: pluginSrc})
	if err != nil {
		t.Fatal(err)
	}
	rt := newRT(t, img, mrt.Options{})
	rt.RegisterLibrary(plugin)
	if code, err := rt.Run(100_000_000); err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	g := rt.Graph()
	entry, ok := rt.Symbol("plugin_entry")
	if !ok {
		t.Fatal("plugin_entry not in symbol table after dlopen")
	}
	if _, ok := g.TaryECN[int(entry.Addr)]; !ok {
		t.Error("plugin_entry should be a Tary target after dlsym")
	}
	other, _ := rt.Symbol("plugin_other")
	if _, ok := g.TaryECN[int(other.Addr)]; ok {
		t.Error("plugin_other was never dlsym'ed or address-taken; must not be a target")
	}
}

// TestABAQuiescenceReset checks the §5.2 ABA mitigation: update
// transactions raise the counter; once every live thread is observed
// at a system call after the latest update, the counter resets.
func TestABAQuiescenceReset(t *testing.T) {
	src := `
int main(void) {
	// Plenty of system calls, giving the runtime quiescence points.
	for (int i = 0; i < 50; i++) {
		char c = (char)('a' + i % 26);
		write(&c, 1);
	}
	return 0;
}`
	cfg := toolchain.New(toolchain.WithInstrumentation())
	img := build(t, cfg, toolchain.Source{Name: "aba", Text: src})
	rt := newRT(t, img, mrt.Options{})
	// Pile up update transactions before the program runs.
	for i := 0; i < 100; i++ {
		rt.Tables.Reversion(tables.UpdateOpts{})
	}
	if rt.Tables.UpdatesSinceQuiescence() < 100 {
		t.Fatalf("counter = %d, want >= 100", rt.Tables.UpdatesSinceQuiescence())
	}
	if code, err := rt.Run(10_000_000); err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	// The main thread's syscalls (with no updates in flight) must have
	// reset the counter.
	if got := rt.Tables.UpdatesSinceQuiescence(); got != 0 {
		t.Errorf("counter after quiescent syscalls = %d, want 0", got)
	}
}

// TestDlopenVerifierRejectsTamperedLibrary wires the independent
// verifier into the dlopen path (paper §6 step 2: code pages are
// "statically verified to obey the CFI policy" before becoming
// executable) and feeds it a tampered module.
func TestDlopenVerifierRejectsTamperedLibrary(t *testing.T) {
	cfg := toolchain.New(toolchain.WithInstrumentation())
	img := build(t, cfg, toolchain.Source{Name: "main", Text: dlMainSrc})
	plugin, err := cfg.Compile(toolchain.Source{Name: "plugin", Text: pluginSrc})
	if err != nil {
		t.Fatal(err)
	}
	// Tamper: replace the first instrumented branch with a raw ret.
	for _, ib := range plugin.Aux.IBs {
		if ib.Kind == module.IBRet {
			plugin.Code[ib.Offset] = 0x28 // RET
			plugin.Code[ib.Offset+1] = 0x00
			break
		}
	}
	rt := newRT(t, img, mrt.Options{
		Verify: func(obj *module.Object) error { return verifier.Verify(obj) },
	})
	rt.RegisterLibrary(plugin)
	code, err := rt.Run(50_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// dlopen fails inside the guest, which prints and exits 1.
	if code != 1 || !strings.Contains(rt.Output(), "dlopen failed") {
		t.Errorf("tampered plugin should fail to load: code=%d out=%q", code, rt.Output())
	}
}

// TestDlopenVerifierAcceptsCleanLibrary is the complement.
func TestDlopenVerifierAcceptsCleanLibrary(t *testing.T) {
	cfg := toolchain.New(toolchain.WithInstrumentation())
	img := build(t, cfg, toolchain.Source{Name: "main", Text: dlMainSrc})
	plugin, err := cfg.Compile(toolchain.Source{Name: "plugin", Text: pluginSrc})
	if err != nil {
		t.Fatal(err)
	}
	rt := newRT(t, img, mrt.Options{
		Verify: func(obj *module.Object) error { return verifier.Verify(obj) },
	})
	rt.RegisterLibrary(plugin)
	code, err := rt.Run(100_000_000)
	if err != nil || code != 0 {
		t.Fatalf("verified dlopen failed: code=%d err=%v out=%q", code, err, rt.Output())
	}
}

// TestDlopenDuplicateSymbolRejected: a library exporting a symbol the
// image already defines must be refused.
func TestDlopenDuplicateSymbolRejected(t *testing.T) {
	cfg := toolchain.New(toolchain.WithInstrumentation())
	img := build(t, cfg, toolchain.Source{Name: "main", Text: `
long clash(long x) { return x; }
int main(void) {
	long h = dlopen("dup");
	return h == 0 ? 0 : 1;   // load must fail
}`})
	dup, err := cfg.Compile(toolchain.Source{Name: "dup", Text: `
long clash(long x) { return x + 1; }
`})
	if err != nil {
		t.Fatal(err)
	}
	rt := newRT(t, img, mrt.Options{})
	rt.RegisterLibrary(dup)
	code, err := rt.Run(50_000_000)
	if err != nil || code != 0 {
		t.Errorf("duplicate-symbol dlopen should fail cleanly: code=%d err=%v", code, err)
	}
}

// TestDlopenProfileMismatchRejected: a 32-bit library cannot be loaded
// into a 64-bit process.
func TestDlopenProfileMismatchRejected(t *testing.T) {
	cfg64 := toolchain.New(toolchain.WithInstrumentation())
	img := build(t, cfg64, toolchain.Source{Name: "main", Text: `
int main(void) { return dlopen("p32") == 0 ? 0 : 1; }`})
	p32, err := toolchain.New(
		toolchain.WithProfile(visa.Profile32),
		toolchain.WithInstrumentation(),
	).Compile(toolchain.Source{Name: "p32", Text: `long f(long x) { return x; }`})
	if err != nil {
		t.Fatal(err)
	}
	rt := newRT(t, img, mrt.Options{})
	rt.RegisterLibrary(p32)
	code, err := rt.Run(50_000_000)
	if err != nil || code != 0 {
		t.Errorf("profile-mismatched dlopen should fail cleanly: code=%d err=%v", code, err)
	}
}
