package mrt

import (
	"fmt"

	"mcfi/internal/visa"
	"mcfi/internal/vm"
)

// threadExit is the sentinel error used by SysThreadExit; the spawn
// wrapper converts it into the thread's join value.
type threadExit struct{ val int64 }

func (threadExit) Error() string { return "mrt: thread exited" }

// Syscall implements vm.SyscallHandler: MCFI's user-space system-call
// interposition (paper §7). Every call validates its arguments; mmap
// and mprotect enforce the W^X invariant.
func (r *Runtime) Syscall(t *vm.Thread, num int) error {
	r.observeSyscall(t)
	switch num {
	case visa.SysExit:
		r.Proc.Exit(t.Reg[visa.R0])
		return nil

	case visa.SysWrite:
		buf, n := t.Reg[visa.R0], t.Reg[visa.R1]
		if n < 0 || buf < 0 || buf+n > visa.SandboxSize {
			t.Reg[visa.R0] = -1
			return nil
		}
		r.outM.Lock()
		_, err := r.out.Write(r.Proc.Mem[buf : buf+n])
		r.outM.Unlock()
		if err != nil {
			t.Reg[visa.R0] = -1
			return nil
		}
		t.Reg[visa.R0] = n
		return nil

	case visa.SysSbrk:
		delta := t.Reg[visa.R0]
		r.mu.Lock()
		old := r.brk
		nb := old + delta
		if nb < heapBase || nb > stackBase {
			r.mu.Unlock()
			t.Reg[visa.R0] = -1
			return nil
		}
		r.brk = nb
		if delta > 0 {
			r.Proc.Protect(old, delta, visa.ProtRead|visa.ProtWrite)
		}
		r.mu.Unlock()
		t.Reg[visa.R0] = old
		return nil

	case visa.SysMmap:
		length, prot := t.Reg[visa.R0], uint32(t.Reg[visa.R1])
		// The runtime checks that newly mapped memory cannot be both
		// writable and executable (paper §7).
		if prot&visa.ProtWrite != 0 && prot&visa.ProtExec != 0 {
			t.Reg[visa.R0] = -1
			return nil
		}
		if prot&visa.ProtExec != 0 {
			// Guest code cannot map executable memory at all; only the
			// trusted dynamic linker installs code.
			t.Reg[visa.R0] = -1
			return nil
		}
		if length <= 0 {
			t.Reg[visa.R0] = -1
			return nil
		}
		length = (length + vm.PageSize - 1) &^ (vm.PageSize - 1)
		r.mu.Lock()
		addr := (r.brk + vm.PageSize - 1) &^ (vm.PageSize - 1)
		if addr+length > stackBase {
			r.mu.Unlock()
			t.Reg[visa.R0] = -1
			return nil
		}
		r.brk = addr + length
		r.Proc.Protect(addr, length, prot)
		r.mu.Unlock()
		t.Reg[visa.R0] = addr
		return nil

	case visa.SysMprotect:
		addr, length, prot := t.Reg[visa.R0], t.Reg[visa.R1], uint32(t.Reg[visa.R2])
		if prot&visa.ProtWrite != 0 && prot&visa.ProtExec != 0 {
			t.Reg[visa.R0] = -1 // W^X refused
			return nil
		}
		if prot&visa.ProtExec != 0 {
			t.Reg[visa.R0] = -1 // only the runtime makes code executable
			return nil
		}
		if addr < heapBase || addr+length > visa.SandboxSize || length < 0 {
			t.Reg[visa.R0] = -1 // guest may only reprotect its own heap
			return nil
		}
		r.Proc.Protect(addr, length, prot)
		t.Reg[visa.R0] = 0
		return nil

	case visa.SysDlopen:
		name, err := r.guestString(t.Reg[visa.R0])
		if err != nil {
			t.Reg[visa.R0] = 0
			return nil
		}
		h, err := r.Dlopen(name)
		if err != nil {
			t.Reg[visa.R0] = 0
			return nil
		}
		t.Reg[visa.R0] = h
		return nil

	case visa.SysDlsym:
		name, err := r.guestString(t.Reg[visa.R1])
		if err != nil {
			t.Reg[visa.R0] = 0
			return nil
		}
		addr, err := r.Dlsym(t.Reg[visa.R0], name)
		if err != nil {
			t.Reg[visa.R0] = 0
			return nil
		}
		t.Reg[visa.R0] = addr
		return nil

	case visa.SysClock:
		t.Reg[visa.R0] = r.Proc.Instret() + t.PendingInstret()
		return nil

	case visa.SysSpawn:
		tid, err := r.spawn(t.Reg[visa.R0], t.Reg[visa.R1])
		if err != nil {
			t.Reg[visa.R0] = -1
			return nil
		}
		t.Reg[visa.R0] = tid
		return nil

	case visa.SysJoin:
		ch, ok := r.Proc.JoinChan(t.Reg[visa.R0])
		if !ok {
			t.Reg[visa.R0] = -1
			return nil
		}
		// A join is a host-side block: it must also unblock on
		// cancellation, or a timeout could never free a thread joining
		// a tid that will never deliver.
		select {
		case v := <-ch:
			t.Reg[visa.R0] = v
		case <-r.Proc.CancelChan():
			return vm.ErrCancelled
		}
		return nil

	case visa.SysYield:
		return nil

	case visa.SysRand:
		r.rngMu.Lock()
		r.rng ^= r.rng << 13
		r.rng ^= r.rng >> 7
		r.rng ^= r.rng << 17
		v := r.rng
		r.rngMu.Unlock()
		t.Reg[visa.R0] = int64(v >> 1)
		return nil

	case visa.SysThreadExit:
		return threadExit{val: t.Reg[visa.R0]}
	}
	return fmt.Errorf("mrt: unknown syscall %d", num)
}

// guestString reads a NUL-terminated string from guest memory.
func (r *Runtime) guestString(addr int64) (string, error) {
	if addr <= 0 || addr >= visa.SandboxSize {
		return "", fmt.Errorf("mrt: bad string pointer %#x", addr)
	}
	end := addr
	limit := addr + 4096
	if limit > visa.SandboxSize {
		limit = visa.SandboxSize
	}
	for end < limit && r.Proc.Mem[end] != 0 {
		end++
	}
	if end == limit {
		return "", fmt.Errorf("mrt: unterminated string at %#x", addr)
	}
	return string(r.Proc.Mem[addr:end]), nil
}

// spawn starts a guest thread running the libc trampoline
// __thread_main(ctl), where ctl is a two-word control block {fn, arg}
// allocated from the heap. The trampoline invokes fn through a checked
// indirect call and exits via SysThreadExit, so spawned control flow
// obeys the same CFG as everything else.
func (r *Runtime) spawn(fn, arg int64) (int64, error) {
	tramp, ok := r.Symbol("__thread_main")
	if !ok {
		return 0, fmt.Errorf("mrt: libc does not define __thread_main")
	}
	sp, err := r.allocStack()
	if err != nil {
		return 0, err
	}
	// Control block from the heap.
	r.mu.Lock()
	ctl := (r.brk + 15) &^ 15
	if ctl+16 > stackBase {
		r.mu.Unlock()
		return 0, fmt.Errorf("mrt: out of heap for thread control block")
	}
	r.brk = ctl + 16
	r.Proc.Protect(ctl, 16, visa.ProtRead|visa.ProtWrite)
	r.mu.Unlock()
	put64guest(r.Proc.Mem, ctl, uint64(fn))
	put64guest(r.Proc.Mem, ctl+8, uint64(arg))

	// Craft the initial stack: [sp] = unused return address (the
	// trampoline never returns), [sp+8] = ctl argument slot.
	sp -= 16
	put64guest(r.Proc.Mem, sp, 0)
	put64guest(r.Proc.Mem, sp+8, uint64(ctl))

	tid, ch := r.Proc.RegisterThread()
	th := r.Proc.NewThread(tramp.Addr, sp)
	r.trackThread(th)
	r.threadWG.Add(1)
	go func() {
		defer r.threadWG.Done()
		defer r.untrackThread(th)
		err := th.Run(0)
		switch e := err.(type) {
		case threadExit:
			ch <- e.val
		default:
			// Process exit or a fault terminates the thread; join
			// observes -1 for faults.
			if err == vm.ErrExited {
				ch <- 0
			} else {
				ch <- -1
			}
		}
	}()
	return tid, nil
}

func put64guest(mem []byte, addr int64, v uint64) {
	for i := int64(0); i < 8; i++ {
		mem[addr+i] = byte(v >> (8 * i))
	}
}
