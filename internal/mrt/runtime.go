// Package mrt implements the trusted MCFI runtime (paper §4, §7): it
// loads linked images into a fresh sandbox, enforces the invariant
// that no memory is writable and executable at once, interposes on
// every system call, generates the initial CFG and ID tables, and
// performs dynamic linking with table-update transactions.
package mrt

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"

	"mcfi/internal/cfg"
	"mcfi/internal/linker"
	"mcfi/internal/module"
	"mcfi/internal/tables"
	"mcfi/internal/visa"
	"mcfi/internal/vm"
)

// Guest memory layout managed by the runtime (addresses within the
// sandbox; see visa layout constants).
const (
	// dataRegionSize bounds static + dynamically loaded module data.
	dataRegionSize = 4 << 20
	// heapBase is where sbrk/mmap allocations start.
	heapBase = visa.DataBase + dataRegionSize
	// stackRegion is carved from the sandbox top.
	stackRegion = 8 << 20
	stackTop    = visa.SandboxSize
	stackBase   = stackTop - stackRegion
	// StackSize is the per-thread stack size.
	StackSize = 1 << 20
	// defaultMaxBranches sizes the Bary table.
	defaultMaxBranches = 1 << 15
)

// Options configures a runtime instance.
type Options struct {
	// Out receives guest writes (default: an internal buffer).
	Out io.Writer
	// MaxBranches caps the Bary table (default 32768).
	MaxBranches int
	// ParallelCopy publishes Tary updates with the parallel copier.
	ParallelCopy bool
	// Verify, if non-nil, is invoked on every dynamically loaded
	// module before its code becomes executable (the paper's modular
	// verifier hook, §6 step 2).
	Verify func(*module.Object) error
	// Seed initializes the deterministic guest PRNG.
	Seed uint64
	// Engine selects the VM execution engine (default: the
	// direct-threaded engine; vm.EngineInterp decodes every
	// instruction).
	Engine vm.Engine
	// JITThreshold sets the block-compile execution threshold for
	// vm.EngineBlockJIT (0 = vm.DefaultJITThreshold).
	JITThreshold int64
	// ForceFullCFG disables the incremental dlopen path: every policy
	// change regenerates the full CFG and republishes the whole table
	// extent. The update-throughput benchmark uses it as the baseline.
	ForceFullCFG bool
}

// Runtime is one loaded MCFI program with its tables and threads.
type Runtime struct {
	Proc   *vm.Process
	Img    *linker.Image
	Tables *tables.Tables

	opts Options
	out  io.Writer
	buf  *bytes.Buffer
	outM sync.Mutex

	// Dynamic-linking state, guarded by mu.
	mu          sync.Mutex
	aux         module.AuxInfo // merged, absolute addresses
	syms        map[string]linker.SymInfo
	branchIndex map[int]int // IB offset -> Bary index
	nextBranch  int
	codeEnd     int64 // next free code address
	dataEnd     int64 // next free data address
	brk         int64
	stackNext   int64
	libs        map[string]*module.Object
	handles     map[int64]*dlHandle
	nextHandle  int64
	// incr is the memoized CFG state behind the published policy; nil
	// when the last Extend failed (or ForceFullCFG), in which case the
	// next publication regenerates in full and rebuilds it.
	incr           *cfg.Incremental
	deltaPublishes int64
	fullPublishes  int64

	rngMu sync.Mutex
	rng   uint64

	threadWG sync.WaitGroup

	// ABA quiescence tracking (§5.2): abaSeen records, per live thread,
	// the update-transaction count observed at its most recent system
	// call. When every live thread has been observed at or after the
	// current count, no thread can still hold an old-version ID, and
	// the ABA counter resets.
	abaMu   sync.Mutex
	abaSeen map[*vm.Thread]int64
}

type dlHandle struct {
	name    string
	exports map[string]linker.SymInfo
}

// New loads a linked image into a fresh sandbox and publishes the
// initial control-flow policy.
func New(img *linker.Image, opts Options) (*Runtime, error) {
	if opts.MaxBranches == 0 {
		opts.MaxBranches = defaultMaxBranches
	}
	r := &Runtime{
		Proc:        vm.NewProcess(),
		Img:         img,
		opts:        opts,
		aux:         img.Aux,
		syms:        map[string]linker.SymInfo{},
		branchIndex: map[int]int{},
		libs:        map[string]*module.Object{},
		handles:     map[int64]*dlHandle{},
		rng:         opts.Seed*2862933555777941757 + 3037000493,
		abaSeen:     map[*vm.Thread]int64{},
	}
	if opts.Out != nil {
		r.out = opts.Out
	} else {
		r.buf = &bytes.Buffer{}
		r.out = r.buf
	}
	for k, v := range img.Syms {
		r.syms[k] = v
	}

	p := r.Proc
	p.Handler = r
	p.SetEngine(opts.Engine)
	p.SetJITThreshold(opts.JITThreshold)

	// Load code and data.
	if visa.CodeBase+len(img.Code) > visa.CodeBase+visa.CodeLimit {
		return nil, fmt.Errorf("mrt: image code exceeds the code region")
	}
	copy(p.Mem[visa.CodeBase:], img.Code)
	copy(p.Mem[visa.DataBase:], img.Data)
	r.codeEnd = int64(visa.CodeBase + len(img.Code))
	r.dataEnd = int64(visa.DataBase + len(img.Data))
	r.brk = heapBase
	r.stackNext = stackTop

	// Page protections: code R+X, data R+W, heap/stack mapped on use.
	p.Protect(visa.CodeBase, int64(len(img.Code)), visa.ProtRead|visa.ProtExec)
	p.Protect(visa.DataBase, dataRegionSize, visa.ProtRead|visa.ProtWrite)
	p.Protect(stackBase, stackRegion, visa.ProtRead|visa.ProtWrite)
	if err := p.CheckWX(); err != nil {
		return nil, err
	}

	if img.Instrumented {
		r.Tables = tables.New(visa.CodeBase+visa.CodeLimit, opts.MaxBranches)
		// Update transactions rebuild only the loaded code extent
		// (the paper's Tary is sized to the code region).
		r.Tables.SetCovered(int(r.codeEnd))
		p.Tables = r.Tables
		// Every completed update transaction invalidates the fused
		// engine's check-verdict cache: a verdict is only reusable
		// within one published CFG. Full-range transactions (lo == 0)
		// also condemn every compiled block; delta transactions start
		// past address 0 (code begins at visa.CodeBase) and condemn
		// only the blocks overlapping the changed extent.
		r.Tables.OnUpdateExtent(func(lo, hi int) {
			if lo == 0 {
				p.BumpCheckEpoch()
			} else {
				p.BumpCheckEpochExtent(int64(lo), int64(hi))
			}
		})
		r.assignBranchIndexes(img.Aux.IBs)
		r.registerFusedSites(img.Aux.IBs)
		if err := r.publishCFG(nil); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// registerFusedSites tells the VM where the image's check transactions
// start — canonical spans and PLT stubs (the GOT-reloading variant)
// alike — so a fusing engine can predecode each into one
// superinstruction. Uninstrumented branches carry CheckStart < 0 and
// are skipped; the VM byte-verifies every registration against its
// templates at predecode time anyway.
func (r *Runtime) registerFusedSites(ibs []module.IndirectBranch) {
	var starts []int64
	for _, ib := range ibs {
		if ib.CheckStart > 0 && ib.TLoadIOffset >= 0 {
			starts = append(starts, int64(ib.CheckStart))
		}
	}
	if len(starts) > 0 {
		r.Proc.RegisterCheckSites(starts)
	}
}

// Output returns everything the guest has written so far (only when
// the runtime owns the buffer).
func (r *Runtime) Output() string {
	if r.buf == nil {
		return ""
	}
	r.outM.Lock()
	defer r.outM.Unlock()
	return r.buf.String()
}

// assignBranchIndexes gives each instrumented indirect branch a stable
// Bary index and patches its TLOADI immediate with the table offset
// (paper §5.1: "MCFI's loader patches the code to embed constant Bary
// table indexes"). Caller holds mu (or is in single-threaded setup).
func (r *Runtime) assignBranchIndexes(ibs []module.IndirectBranch) {
	for _, ib := range ibs {
		if ib.TLoadIOffset < 0 {
			continue
		}
		idx := r.nextBranch
		r.nextBranch++
		r.branchIndex[ib.Offset] = idx
		// TLOADI layout: opcode, register, imm32.
		imm := uint32(r.Tables.BaryBase() + 4*idx)
		off := ib.TLoadIOffset + 2
		r.Proc.Mem[off] = byte(imm)
		r.Proc.Mem[off+1] = byte(imm >> 8)
		r.Proc.Mem[off+2] = byte(imm >> 16)
		r.Proc.Mem[off+3] = byte(imm >> 24)
	}
}

// publishCFG regenerates the control-flow policy from the merged aux
// info and publishes it with one update transaction. between runs in
// the transaction's GOT-update slot.
func (r *Runtime) publishCFG(between func()) error {
	in := cfg.Input{
		Funcs:       r.aux.Funcs,
		IBs:         r.aux.IBs,
		RetSites:    r.aux.RetSites,
		SetjmpConts: r.aux.SetjmpConts,
		Annotations: r.aux.AsmAnnotations,
		Profile:     r.Img.Profile,
	}
	graph := cfg.Generate(in)
	if graph.Classes >= 1<<14 {
		return fmt.Errorf("mrt: %d equivalence classes exceed the 14-bit ECN space", graph.Classes)
	}
	// Bary index -> branch offset (inverse of branchIndex).
	byIndex := make([]int, r.nextBranch)
	for i := range byIndex {
		byIndex[i] = -1
	}
	for off, idx := range r.branchIndex {
		byIndex[idx] = off
	}
	r.Tables.Update(
		func(addr int) int {
			if ecn, ok := graph.TaryECN[addr]; ok {
				return ecn
			}
			return -1
		},
		func(idx int) int {
			if idx >= len(byIndex) || byIndex[idx] < 0 {
				return -1
			}
			if ecn, ok := graph.BranchECN[byIndex[idx]]; ok {
				return ecn
			}
			return -1
		},
		tables.UpdateOpts{Parallel: r.opts.ParallelCopy, Between: between},
	)
	r.fullPublishes++
	// Memoize the generation state so the next dlopen can publish a
	// delta instead of repeating this full rebuild.
	if r.opts.ForceFullCFG {
		r.incr = nil
	} else {
		r.incr = cfg.NewIncremental(in, graph)
	}
	return nil
}

// publishDelta publishes one module's policy change through the
// incremental CFG state and the tables' delta transaction — O(module),
// not O(program). When the change cannot be expressed incrementally
// (classes merge across modules, ECN exhaustion, an annotation retypes
// an existing function) it falls back to SetCovered plus a full
// publishCFG, which also rebuilds the memoized state. Caller holds mu;
// delta carries rebased (absolute) addresses and flipped names
// pre-existing functions that just became address-taken.
func (r *Runtime) publishDelta(delta module.AuxInfo, flipped []string, between func()) error {
	if r.incr != nil && !r.opts.ForceFullCFG {
		d, ok := r.incr.Extend(cfg.Input{
			Funcs:       delta.Funcs,
			IBs:         delta.IBs,
			RetSites:    delta.RetSites,
			SetjmpConts: delta.SetjmpConts,
			Annotations: delta.AsmAnnotations,
			Profile:     r.Img.Profile,
		}, flipped)
		if ok {
			// The delta's branch numbering is keyed by branch address;
			// the tables want Bary indexes.
			baryECN := make(map[int]int, len(d.BranchECN))
			for off, ecn := range d.BranchECN {
				if idx, exists := r.branchIndex[off]; exists {
					baryECN[idx] = ecn
				}
			}
			r.Tables.UpdateDelta(int(r.codeEnd), d.TaryECN, baryECN,
				tables.UpdateOpts{Parallel: r.opts.ParallelCopy, Between: between})
			r.deltaPublishes++
			return nil
		}
		// Extend may have partially mutated the memoized state before
		// detecting the merge; discard it and regenerate.
		r.incr = nil
	}
	r.Tables.SetCovered(int(r.codeEnd))
	return r.publishCFG(between)
}

// PublishStats reports how many policy publications took the delta
// path vs. a full regeneration since load (the initial publication is
// always full).
func (r *Runtime) PublishStats() (delta, full int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.deltaPublishes, r.fullPublishes
}

// Graph exposes the current CFG (regenerated on demand) for metrics
// and the experiment harness.
func (r *Runtime) Graph() *cfg.Graph {
	r.mu.Lock()
	defer r.mu.Unlock()
	return cfg.Generate(cfg.Input{
		Funcs:       r.aux.Funcs,
		IBs:         r.aux.IBs,
		RetSites:    r.aux.RetSites,
		SetjmpConts: r.aux.SetjmpConts,
		Annotations: r.aux.AsmAnnotations,
		Profile:     r.Img.Profile,
	})
}

// RegisterLibrary makes a compiled module available to guest dlopen
// under its module name (the runtime's in-memory filesystem).
func (r *Runtime) RegisterLibrary(obj *module.Object) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.libs[obj.Name] = obj
}

// allocStack carves a fresh thread stack; returns its initial SP.
func (r *Runtime) allocStack() (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sp := r.stackNext
	if sp-StackSize < stackBase {
		return 0, fmt.Errorf("mrt: out of stack space")
	}
	r.stackNext -= StackSize
	return sp, nil
}

// MainThread creates the initial thread at the image entry point.
func (r *Runtime) MainThread() (*vm.Thread, error) {
	sp, err := r.allocStack()
	if err != nil {
		return nil, err
	}
	th := r.Proc.NewThread(r.Img.Entry, sp)
	r.trackThread(th)
	return th, nil
}

// trackThread registers a thread for ABA quiescence observation.
func (r *Runtime) trackThread(th *vm.Thread) {
	if r.Tables == nil {
		return
	}
	r.abaMu.Lock()
	r.abaSeen[th] = r.Tables.Updates()
	r.abaMu.Unlock()
}

// untrackThread removes an exited thread from observation.
func (r *Runtime) untrackThread(th *vm.Thread) {
	if r.Tables == nil {
		return
	}
	r.abaMu.Lock()
	delete(r.abaSeen, th)
	r.abaMu.Unlock()
}

// observeSyscall implements the paper's quiescence rule: a thread at a
// system call cannot be inside a check transaction, so it has finished
// using IDs older than the current update count. When every live
// thread has been observed at or after the current count, the ABA
// counter resets to zero.
func (r *Runtime) observeSyscall(th *vm.Thread) {
	if r.Tables == nil {
		return
	}
	cur := r.Tables.Updates()
	r.abaMu.Lock()
	r.abaSeen[th] = cur
	quiesced := true
	for _, seen := range r.abaSeen {
		if seen < cur {
			quiesced = false
			break
		}
	}
	r.abaMu.Unlock()
	if quiesced {
		r.Tables.QuiescencePoint()
	}
}

// Run executes the program to completion (all spawned threads joined
// or the process exited) and returns the exit code.
func (r *Runtime) Run(maxInstr int64) (int64, error) {
	return r.RunContext(context.Background(), maxInstr)
}

// RunContext is Run with host-side cancellation plumbed into the guest:
// when ctx is done, every guest thread is cancelled (vm.Process.Cancel)
// and the call returns vm.ErrCancelled within the VM's poll window —
// no goroutine keeps running the guest afterwards. The watcher
// goroutine is always reaped before returning.
//
// Whenever the main thread stops abnormally (fault, budget, cancel),
// the rest of the process is cancelled too, so spawned guest threads
// cannot outlive the call and leak their host goroutines.
func (r *Runtime) RunContext(ctx context.Context, maxInstr int64) (int64, error) {
	t, err := r.MainThread()
	if err != nil {
		return -1, err
	}
	watchDone := make(chan struct{})
	stopWatch := make(chan struct{})
	if ctx.Done() != nil {
		go func() {
			defer close(watchDone)
			select {
			case <-ctx.Done():
				r.Proc.Cancel()
			case <-stopWatch:
			}
		}()
	} else {
		close(watchDone)
	}
	err = t.Run(maxInstr)
	if err != nil && err != vm.ErrExited {
		// Abnormal stop: tear down sibling threads so threadWG.Wait
		// cannot block on a still-spinning guest.
		r.Proc.Cancel()
	}
	r.threadWG.Wait()
	close(stopWatch)
	<-watchDone
	if err == nil || err == vm.ErrExited {
		_, code := r.Proc.Exited()
		return code, nil
	}
	return -1, err
}

// Cancel stops every guest thread of the runtime (idempotent).
func (r *Runtime) Cancel() { r.Proc.Cancel() }

// CheckStats snapshots the process's check-transaction counters.
func (r *Runtime) CheckStats() vm.CheckStats { return r.Proc.CheckStatsSnapshot() }

// Instret returns total retired instructions (all threads).
func (r *Runtime) Instret() int64 { return r.Proc.Instret() }

// Symbol looks up a global symbol's address.
func (r *Runtime) Symbol(name string) (linker.SymInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.syms[name]
	return s, ok
}
