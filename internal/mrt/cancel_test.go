package mrt_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"mcfi/internal/mrt"
	"mcfi/internal/toolchain"
	"mcfi/internal/vm"
)

// TestRunContextTimeoutInterruptsGuest: a guest spinning forever is
// stopped by context expiry, RunContext returns vm.ErrCancelled (not a
// CFI fault), and no goroutine keeps executing the guest.
func TestRunContextTimeoutInterruptsGuest(t *testing.T) {
	src := `
int main(void) {
	while (1) {}
	return 0;
}`
	img := build(t, toolchain.New(toolchain.WithInstrumentation()),
		toolchain.Source{Name: "spin", Text: src})
	rt := newRT(t, img, mrt.Options{})
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := rt.RunContext(ctx, 0)
	if !errors.Is(err, vm.ErrCancelled) {
		t.Fatalf("RunContext = %v, want vm.ErrCancelled", err)
	}
	var f *vm.Fault
	if errors.As(err, &f) {
		t.Fatalf("cancellation misclassified as fault %v", f)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("cancellation took %v", el)
	}
	// The watcher and all guest goroutines are reaped before return.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, n)
	}
}

// TestRunContextCancelsSpawnedThreads: when the main thread is torn
// down, spawned guest threads (including one blocked in thread_join)
// are cancelled too and their host goroutines exit.
func TestRunContextCancelsSpawnedThreads(t *testing.T) {
	src := `
long work(long arg) {
	while (1) {}
	return arg;
}
int main(void) {
	long t1 = thread_spawn(work, 1);
	thread_join(t1);   // blocks forever: worker never exits
	return 0;
}`
	img := build(t, toolchain.New(toolchain.WithInstrumentation()),
		toolchain.Source{Name: "spinthreads", Text: src})
	rt := newRT(t, img, mrt.Options{})
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := rt.RunContext(ctx, 0)
	if !errors.Is(err, vm.ErrCancelled) {
		t.Fatalf("RunContext = %v, want vm.ErrCancelled", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, n)
	}
}

// TestBudgetExhaustionTearsDownThreads: when the main thread's budget
// runs out while spawned threads spin, Run still returns (the runtime
// cancels the siblings rather than blocking on threadWG).
func TestBudgetExhaustionTearsDownThreads(t *testing.T) {
	src := `
long work(long arg) {
	while (1) {}
	return arg;
}
int main(void) {
	thread_spawn(work, 1);
	while (1) {}
	return 0;
}`
	img := build(t, toolchain.New(toolchain.WithInstrumentation()),
		toolchain.Source{Name: "budgetspin", Text: src})
	rt := newRT(t, img, mrt.Options{})
	done := make(chan error, 1)
	go func() {
		_, err := rt.Run(5_000_000)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, vm.ErrBudget) {
			t.Fatalf("Run = %v, want vm.ErrBudget", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run blocked on spinning sibling threads after budget exhaustion")
	}
}
