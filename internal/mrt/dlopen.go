package mrt

import (
	"fmt"

	"mcfi/internal/linker"
	"mcfi/internal/module"
	"mcfi/internal/visa"
	"mcfi/internal/vm"
)

// Dlopen dynamically links a registered library into the running
// process, following the paper's three steps (§6):
//
//  1. Module preparation — load the code writable-but-not-executable,
//     resolve its relocations, and compute new PLT/GOT targets.
//  2. New CFG generation — merge the library's auxiliary information,
//     patch Bary indexes into the new code, verify it, then flip the
//     pages to executable-not-writable.
//  3. ID-table updates — one update transaction installs the new IDs
//     and rewrites GOT entries between the Tary and Bary phases.
//
// It returns an opaque handle for Dlsym.
func (r *Runtime) Dlopen(name string) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()

	// Repeated dlopen returns the existing handle (like POSIX).
	for h, dh := range r.handles {
		if dh.name == name {
			return h, nil
		}
	}
	obj, ok := r.libs[name]
	if !ok {
		return 0, fmt.Errorf("mrt: no registered library %q", name)
	}
	// The ABA guard (§5.2): never run so many update transactions
	// between quiescence points that the 14-bit version space could
	// wrap under a parked check transaction.
	if r.Img.Instrumented && r.Tables.ABARisk() {
		return 0, fmt.Errorf("mrt: refusing dlopen: %d update transactions since the last quiescence point (ABA guard)",
			r.Tables.UpdatesSinceQuiescence())
	}
	if obj.Profile != r.Img.Profile {
		return 0, fmt.Errorf("mrt: library %q profile mismatch", name)
	}
	if obj.Instrumented != r.Img.Instrumented {
		return 0, fmt.Errorf("mrt: library %q instrumentation mismatch", name)
	}

	// --- Step 1: module preparation ---
	// Libraries load at page boundaries: their pages flip between
	// writable (while patching) and executable (after verification),
	// and sharing a page with already-executable code would revoke its
	// execute permission mid-run.
	codeBase := (r.codeEnd + vm.PageSize - 1) &^ (vm.PageSize - 1)
	if codeBase+int64(len(obj.Code)) > visa.CodeBase+visa.CodeLimit {
		return 0, fmt.Errorf("mrt: code region exhausted loading %q", name)
	}
	dataBase := (r.dataEnd + vm.PageSize - 1) &^ (vm.PageSize - 1)
	dataSize := int64(len(obj.Data) + obj.BSS)
	if dataBase+dataSize > heapBase {
		return 0, fmt.Errorf("mrt: data region exhausted loading %q", name)
	}

	// Library code is writable and NOT executable while being patched.
	r.Proc.Protect(codeBase, int64(len(obj.Code)), visa.ProtRead|visa.ProtWrite)
	copy(r.Proc.Mem[codeBase:], obj.Code)
	copy(r.Proc.Mem[dataBase:], obj.Data)
	for i := int64(len(obj.Data)); i < dataSize; i++ {
		r.Proc.Mem[dataBase+i] = 0
	}

	// Resolve the library's symbols.
	local := map[string]linker.SymInfo{}
	exports := map[string]linker.SymInfo{}
	for _, s := range obj.Symbols {
		var addr int64
		if s.Kind == module.SymFunc {
			addr = codeBase + int64(s.Offset)
		} else {
			addr = dataBase + int64(s.Offset)
		}
		info := linker.SymInfo{Addr: addr, Kind: s.Kind, Size: s.Size, Module: obj.Name}
		local[s.Name] = info
		if !s.Local {
			if _, dup := r.syms[s.Name]; dup {
				return 0, fmt.Errorf("mrt: symbol %q already defined", s.Name)
			}
			exports[s.Name] = info
		}
	}

	lookup := func(sym string) (linker.SymInfo, bool) {
		if s, ok := local[sym]; ok {
			return s, true
		}
		s, ok := r.syms[sym]
		return s, ok
	}

	// Apply relocations against the library-local + global tables.
	for _, rl := range obj.CodeRelocs {
		sym, ok := lookup(rl.Symbol)
		if !ok {
			return 0, fmt.Errorf("mrt: %s: undefined symbol %q", name, rl.Symbol)
		}
		site := codeBase + int64(rl.Offset)
		switch rl.Kind {
		case module.RelAbs64, module.RelJumpTable:
			put64guest(r.Proc.Mem, site, uint64(sym.Addr+rl.Addend))
		case module.RelCall32:
			rel := sym.Addr - (site + 4)
			for i := int64(0); i < 4; i++ {
				r.Proc.Mem[site+i] = byte(uint32(rel) >> (8 * i))
			}
		default:
			return 0, fmt.Errorf("mrt: unknown relocation kind %d", rl.Kind)
		}
	}
	for _, rl := range obj.DataRelocs {
		sym, ok := lookup(rl.Symbol)
		if !ok {
			return 0, fmt.Errorf("mrt: %s: undefined data symbol %q", name, rl.Symbol)
		}
		put64guest(r.Proc.Mem, dataBase+int64(rl.Offset), uint64(sym.Addr+rl.Addend))
	}

	// --- Step 2: new CFG generation ---
	// Merge rebased aux info. Cross-module address-taken marking: the
	// library may take addresses of functions from the main image and
	// vice versa.
	rebased := rebaseAux(obj.Aux, int(codeBase))
	addrTaken := map[string]bool{}
	for _, rl := range obj.CodeRelocs {
		if rl.Kind == module.RelAbs64 {
			addrTaken[rl.Symbol] = true
		}
	}
	for _, rl := range obj.DataRelocs {
		addrTaken[rl.Symbol] = true
	}
	// Record which pre-existing functions the module's relocations made
	// address-taken — the incremental CFG path republishes exactly those
	// plus the module's own additions — and mark the module's functions
	// before the aux merge.
	var flipped []string
	for i := range r.aux.Funcs {
		f := &r.aux.Funcs[i]
		if addrTaken[f.Name] && !f.AddrTaken {
			f.AddrTaken = true
			flipped = append(flipped, f.Name)
		}
	}
	for i := range rebased.Funcs {
		if addrTaken[rebased.Funcs[i].Name] {
			rebased.Funcs[i].AddrTaken = true
		}
	}
	r.aux.Funcs = append(r.aux.Funcs, rebased.Funcs...)
	r.aux.IBs = append(r.aux.IBs, rebased.IBs...)
	r.aux.RetSites = append(r.aux.RetSites, rebased.RetSites...)
	r.aux.SetjmpConts = append(r.aux.SetjmpConts, rebased.SetjmpConts...)
	r.aux.AsmAnnotations = append(r.aux.AsmAnnotations, rebased.AsmAnnotations...)

	if r.Img.Instrumented {
		// Patch Bary indexes into the freshly loaded code, and let the
		// fused engine know about its check transactions.
		r.assignBranchIndexes(rebased.IBs)
		r.registerFusedSites(rebased.IBs)
	}

	// Verify the patched module before it becomes executable.
	if r.opts.Verify != nil {
		patched := *obj
		patched.Code = append([]byte(nil), r.Proc.Mem[codeBase:codeBase+int64(len(obj.Code))]...)
		if err := r.opts.Verify(&patched); err != nil {
			return 0, fmt.Errorf("mrt: verification of %q failed: %w", name, err)
		}
	}

	// Code becomes executable and not writable; data stays writable.
	r.Proc.Protect(codeBase, int64(len(obj.Code)), visa.ProtRead|visa.ProtExec)
	if err := r.Proc.CheckWX(); err != nil {
		return 0, err
	}

	// Commit layout and symbols.
	r.codeEnd = codeBase + int64(len(obj.Code))
	r.dataEnd = dataBase + dataSize
	for n, s := range exports {
		r.syms[n] = s
	}

	// --- Step 3: ID-table update (with GOT rewriting in the slot
	// between the Tary and Bary phases, paper §5.2). The delta path
	// publishes only the module's additions — its cost scales with the
	// module, not the program — and falls back to the full rebuild when
	// the module actually merges existing equivalence classes. ---
	if r.Img.Instrumented {
		gotUpdates := func() {
			for sym, slot := range r.Img.GOT {
				if s, ok := r.syms[sym]; ok {
					put64guest(r.Proc.Mem, slot, uint64(s.Addr))
				}
			}
		}
		if err := r.publishDelta(rebased, flipped, gotUpdates); err != nil {
			return 0, err
		}
	} else {
		for sym, slot := range r.Img.GOT {
			if s, ok := r.syms[sym]; ok {
				put64guest(r.Proc.Mem, slot, uint64(s.Addr))
			}
		}
	}

	r.nextHandle++
	h := r.nextHandle
	r.handles[h] = &dlHandle{name: name, exports: exports}
	return h, nil
}

// Dlsym resolves an exported function of a dlopen'ed library. Because
// handing out a function address is an address-taken event, the
// runtime marks the function address-taken and republished the CFG if
// that changed the policy.
func (r *Runtime) Dlsym(handle int64, sym string) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	dh, ok := r.handles[handle]
	if !ok {
		return 0, fmt.Errorf("mrt: bad dlopen handle %d", handle)
	}
	s, ok := dh.exports[sym]
	if !ok {
		return 0, fmt.Errorf("mrt: %q does not export %q", dh.name, sym)
	}
	if s.Kind == module.SymFunc && r.Img.Instrumented {
		for i := range r.aux.Funcs {
			f := &r.aux.Funcs[i]
			if f.Name == sym && !f.AddrTaken {
				f.AddrTaken = true
				if err := r.publishDelta(module.AuxInfo{}, []string{sym}, nil); err != nil {
					return 0, err
				}
				break
			}
		}
	}
	return s.Addr, nil
}

// rebaseAux shifts all code offsets of an object's aux info by base.
func rebaseAux(in module.AuxInfo, base int) module.AuxInfo {
	var out module.AuxInfo
	for _, f := range in.Funcs {
		f.Offset += base
		out.Funcs = append(out.Funcs, f)
	}
	for _, ib := range in.IBs {
		ib.Offset += base
		if ib.TLoadIOffset >= 0 {
			ib.TLoadIOffset += base
		}
		if ib.CheckStart >= 0 {
			ib.CheckStart += base
		}
		if ib.TableLen > 0 {
			ib.TableOff += base
		}
		ts := make([]int, len(ib.Targets))
		for i, t := range ib.Targets {
			ts[i] = t + base
		}
		ib.Targets = ts
		out.IBs = append(out.IBs, ib)
	}
	for _, rs := range in.RetSites {
		rs.Offset += base
		out.RetSites = append(out.RetSites, rs)
	}
	for _, sc := range in.SetjmpConts {
		out.SetjmpConts = append(out.SetjmpConts, sc+base)
	}
	out.AsmAnnotations = append(out.AsmAnnotations, in.AsmAnnotations...)
	return out
}
