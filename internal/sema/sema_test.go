package sema

import (
	"strings"
	"testing"

	"mcfi/internal/ctypes"
	"mcfi/internal/minic"
)

func analyze(t *testing.T, src string) *Unit {
	t.Helper()
	f, err := minic.Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	u, err := Analyze(f)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return u
}

func analyzeErr(t *testing.T, src string) error {
	t.Helper()
	f, err := minic.Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Analyze(f)
	if err == nil {
		t.Fatalf("Analyze should have failed for:\n%s", src)
	}
	return err
}

func TestResolveAndTypeBasic(t *testing.T) {
	u := analyze(t, `
int g = 10;
int add(int a, int b) { return a + b; }
int use(void) { return add(g, 32); }
`)
	if len(u.Funcs) != 2 || len(u.Globals) != 1 {
		t.Fatalf("funcs=%d globals=%d", len(u.Funcs), len(u.Globals))
	}
	ret := u.Funcs[1].Body.Stmts[0].(*minic.Return)
	call := ret.X.(*minic.Call)
	if call.ExprType().Kind != ctypes.Int {
		t.Errorf("call type = %s", call.ExprType())
	}
	id := call.Fun.(*minic.Ident)
	if id.Sym == nil || id.Sym.Kind != minic.SymFunc {
		t.Error("callee not resolved to function symbol")
	}
	if id.Sym.AddrTaken {
		t.Error("direct callee must NOT be address-taken")
	}
}

func TestAddrTakenViaValueUse(t *testing.T) {
	u := analyze(t, `
int cb(int x) { return x; }
int cb2(int x) { return x + 1; }
int cb3(int x) { return x + 2; }
int (*fp)(int) = cb;
void setup(void) { fp = &cb2; }
int calldirect(void) { return cb3(1); }
`)
	want := map[string]bool{"cb": true, "cb2": true, "cb3": false}
	for name, w := range want {
		sym := u.Syms[name]
		if sym == nil {
			t.Fatalf("symbol %s missing", name)
		}
		if sym.AddrTaken != w {
			t.Errorf("%s.AddrTaken = %v, want %v", name, sym.AddrTaken, w)
		}
	}
}

func TestIndirectCallTyping(t *testing.T) {
	u := analyze(t, `
int h(int);
int (*fp)(int);
int go1(void) { return fp(3); }
int go2(int (*p)(int)) { return p(4); }
`)
	g1 := u.Funcs[0]
	call := g1.Body.Stmts[0].(*minic.Return).X.(*minic.Call)
	if call.Fun.ExprType() == nil || !call.Fun.ExprType().IsFuncPointer() {
		t.Errorf("fp callee type = %v, want function pointer", call.Fun.ExprType())
	}
}

func TestImplicitCastInsertion(t *testing.T) {
	u := analyze(t, `
long widen(int x) { return x; }
double mix(int a, double b) { return a + b; }
void *vp;
char *cp;
void assign(void) { vp = cp; }
`)
	// return x: int -> long implicit cast
	ret := u.Funcs[0].Body.Stmts[0].(*minic.Return)
	ic, ok := ret.X.(*minic.ImplicitCast)
	if !ok || ic.To.Kind != ctypes.Long {
		t.Errorf("return expr = %T, want ImplicitCast to long", ret.X)
	}
	// a + b: int operand converts to double
	ret2 := u.Funcs[1].Body.Stmts[0].(*minic.Return)
	bin := ret2.X.(*minic.Binary)
	if _, ok := bin.L.(*minic.ImplicitCast); !ok {
		t.Errorf("int operand should carry ImplicitCast to double, got %T", bin.L)
	}
	// vp = cp: pointer-to-pointer implicit cast recorded
	as := u.Funcs[2].Body.Stmts[0].(*minic.ExprStmt).X.(*minic.Assign)
	if _, ok := as.R.(*minic.ImplicitCast); !ok {
		t.Errorf("char*->void* should be an ImplicitCast, got %T", as.R)
	}
}

func TestImplicitFuncPointerCastVisible(t *testing.T) {
	// Storing a function into a void* — the K2 pattern from perlbench —
	// must surface as an implicit cast whose source type has a function
	// pointer, so the C1 analyzer can flag it.
	u := analyze(t, `
int worker(int x) { return x; }
void *slot;
void stash(void) { slot = worker; }
`)
	as := u.Funcs[1].Body.Stmts[0].(*minic.ExprStmt).X.(*minic.Assign)
	ic, ok := as.R.(*minic.ImplicitCast)
	if !ok {
		t.Fatalf("rhs = %T, want ImplicitCast", as.R)
	}
	if !ic.X.ExprType().IsFuncPointer() {
		t.Errorf("cast source type = %s, want function pointer", ic.X.ExprType())
	}
	if !u.Syms["worker"].AddrTaken {
		t.Error("worker should be address-taken")
	}
}

func TestEnumConstantsFold(t *testing.T) {
	u := analyze(t, `
enum { N = 8 };
int arr[N];
int get(void) { return N; }
`)
	ret := u.Funcs[0].Body.Stmts[0].(*minic.Return)
	lit, ok := ret.X.(*minic.IntLit)
	if !ok || lit.Value != 8 {
		t.Errorf("N should fold to IntLit 8, got %#v", ret.X)
	}
}

func TestPointerArithmetic(t *testing.T) {
	u := analyze(t, `
long diff(int *a, int *b) { return a - b; }
int *bump(int *p, int n) { return p + n; }
`)
	d := u.Funcs[0].Body.Stmts[0].(*minic.Return)
	// a-b yields long; the return is long already.
	if inner, ok := d.X.(*minic.ImplicitCast); ok {
		t.Errorf("pointer difference should already be long, got cast %v", inner.To)
	}
	b := u.Funcs[1].Body.Stmts[0].(*minic.Return)
	if b.X.ExprType().Kind != ctypes.Pointer {
		t.Errorf("p+n type = %s", b.X.ExprType())
	}
}

func TestArrayDecay(t *testing.T) {
	u := analyze(t, `
int sum(int *p, int n) { return n; }
int test(void) {
	int arr[4];
	return sum(arr, 4);
}
`)
	call := u.Funcs[1].Body.Stmts[1].(*minic.Return).X.(*minic.Call)
	at := call.Args[0].ExprType()
	if at.Kind != ctypes.Pointer || at.Elem.Kind != ctypes.Int {
		t.Errorf("decayed array arg type = %s", at)
	}
}

func TestSemaErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{`int f(void) { return g; }`, "undeclared"},
		{`int f(int a) { int a; return a; }`, "redeclaration"},
		{`int f(void) { break; return 0; }`, "break outside"},
		{`int f(void) { continue; return 0; }`, "continue outside"},
		{`void f(void) { return 3; }`, "void function"},
		{`int f(void) { return; }`, "without value"},
		{`int f(void) { goto nowhere; return 0; }`, "undefined label"},
		{`int f(int x) { switch (x) { case 1: case 1: break; } return 0; }`, "duplicate case"},
		{`int add(int, int); int f(void) { return add(1); }`, "number of arguments"},
		{`struct s { int v; }; int f(struct s x) { return x.w; }`, "no field"},
		{`int f(int x) { return *x; }`, "dereference non-pointer"},
		{`int f(int x) { return x(); }`, "not a function"},
		{`int f(void); int f(int);`, "conflicting types"},
		{`struct s { int v; }; struct t { int w; }; void f(struct s a, struct t b) { a = b; }`, "cannot convert"},
	}
	for _, tc := range cases {
		err := analyzeErr(t, tc.src)
		if tc.frag != "" && !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("error for %q = %q, want substring %q", tc.src, err, tc.frag)
		}
	}
}

func TestStructAssignCompatible(t *testing.T) {
	analyze(t, `
struct pt { int x; int y; };
struct pt move(struct pt p) { p.x += 1; return p; }
`)
}

func TestVariadicCallPromotions(t *testing.T) {
	u := analyze(t, `
int printf(char *fmt, ...);
int log1(char c, short s) { return printf("x", c, s); }
`)
	call := u.Funcs[0].Body.Stmts[0].(*minic.Return).X.(*minic.Call)
	for i := 1; i <= 2; i++ {
		at := call.Args[i].ExprType()
		if at.Kind != ctypes.Int {
			t.Errorf("variadic arg %d type = %s, want int (default promotion)", i, at)
		}
	}
}

func TestDerefFuncPointerCollapses(t *testing.T) {
	u := analyze(t, `
int cb(int);
int (*fp)(int) = cb;
int call(void) { return (*fp)(7); }
`)
	call := u.Funcs[0].Body.Stmts[0].(*minic.Return).X.(*minic.Call)
	if !call.Fun.ExprType().IsFuncPointer() {
		t.Errorf("(*fp) callee type = %s, want fp", call.Fun.ExprType())
	}
}

func TestGlobalInitListTyped(t *testing.T) {
	u := analyze(t, `
int tbl[3] = {1, 2, 3};
struct cfg { int a; long b; } conf = {1, 2};
`)
	tbl := u.Globals[0]
	il := tbl.Init.(*minic.InitList)
	if il.ExprType().Kind != ctypes.Array {
		t.Errorf("tbl init type = %s", il.ExprType())
	}
	conf := u.Globals[1]
	cil := conf.Init.(*minic.InitList)
	if _, ok := cil.Elems[1].(*minic.ImplicitCast); !ok {
		t.Errorf("conf.b init should be ImplicitCast to long, got %T", cil.Elems[1])
	}
}

func TestFuncReturningFuncPointer(t *testing.T) {
	u := analyze(t, `
int real(int x) { return x; }
int (*pick(void))(int) { return real; }
int use(void) { return pick()(5); }
`)
	// pick()(5): outer call's callee is the inner call with fp type.
	call := u.Funcs[2].Body.Stmts[0].(*minic.Return).X.(*minic.Call)
	if _, ok := call.Fun.(*minic.Call); !ok {
		t.Fatalf("outer callee = %T, want Call", call.Fun)
	}
	if !u.Syms["real"].AddrTaken {
		t.Error("real should be address-taken (returned as value)")
	}
}
