// Package sema implements MiniC semantic analysis: name resolution,
// type checking, implicit-conversion insertion, and address-taken
// analysis.
//
// Sema matters to MCFI in three ways. First, it types every expression,
// which is what the module's auxiliary type information is generated
// from (paper §6: "a modified LLVM ... propagates types from the source
// level to low level"). Second, it inserts explicit ImplicitCast nodes
// so the C1 analyzer can see implicit casts involving function-pointer
// types, not just the syntactic ones. Third, it computes which
// functions have their address taken — the precondition for being an
// indirect-call target under the type-matching policy.
package sema

import (
	"errors"
	"fmt"

	"mcfi/internal/ctypes"
	"mcfi/internal/minic"
)

// Unit is the result of analyzing one translation unit.
type Unit struct {
	File *minic.File
	// Funcs are function definitions (with bodies), in source order.
	Funcs []*minic.FuncDecl
	// Protos are prototypes without a local definition (externs).
	Protos []*minic.FuncDecl
	// Globals are file-scope variables defined in this unit.
	Globals []*minic.VarDecl
	// Syms maps global names to their symbols.
	Syms map[string]*minic.Symbol
}

// Error is a semantic error at a source position.
type Error struct {
	Pos minic.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

const maxErrors = 20

type checker struct {
	unit    *Unit
	scopes  []map[string]*minic.Symbol
	curFunc *minic.FuncDecl
	loops   int
	switchN int
	labels  map[string]bool
	gotos   []*minic.Goto
	errs    []error
	enums   map[string]int64
}

// Analyze resolves and type-checks a parsed file.
func Analyze(f *minic.File) (*Unit, error) {
	c := &checker{
		unit: &Unit{
			File: f,
			Syms: map[string]*minic.Symbol{},
		},
		enums: f.EnumConsts,
	}
	c.push() // global scope

	// Register enum constants as symbols.
	for name, val := range f.EnumConsts {
		sym := &minic.Symbol{Name: name, Kind: minic.SymEnumConst,
			Type: ctypes.IntType, Global: true, EnumVal: val}
		c.declare(minic.Pos{}, sym)
	}

	// Pass 1: declare all globals and functions (so forward references work).
	for _, d := range f.Decls {
		switch decl := d.(type) {
		case *minic.FuncDecl:
			c.declareFunc(decl)
		case *minic.VarDecl:
			c.declareVar(decl)
		}
	}
	// Pass 2: check bodies and initializers.
	for _, d := range f.Decls {
		switch decl := d.(type) {
		case *minic.FuncDecl:
			if decl.Body != nil {
				c.checkFuncBody(decl)
			}
		case *minic.VarDecl:
			if decl.Init != nil {
				init := c.checkExpr(decl.Init)
				decl.Init = c.coerceInit(decl.Type, init)
			}
		}
		if len(c.errs) >= maxErrors {
			break
		}
	}
	if len(c.errs) > 0 {
		return nil, errors.Join(c.errs...)
	}
	return c.unit, nil
}

func (c *checker) errf(pos minic.Pos, format string, args ...interface{}) {
	if len(c.errs) < maxErrors {
		c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]*minic.Symbol{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(pos minic.Pos, sym *minic.Symbol) {
	top := c.scopes[len(c.scopes)-1]
	if _, exists := top[sym.Name]; exists && len(c.scopes) > 1 {
		c.errf(pos, "redeclaration of %q", sym.Name)
		return
	}
	top[sym.Name] = sym
	if len(c.scopes) == 1 {
		c.unit.Syms[sym.Name] = sym
	}
}

func (c *checker) lookup(name string) *minic.Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

func (c *checker) declareFunc(fd *minic.FuncDecl) {
	if existing := c.lookup(fd.Name); existing != nil {
		if existing.Kind != minic.SymFunc {
			c.errf(fd.Pos, "%q redeclared as a function", fd.Name)
			return
		}
		if !ctypes.Equal(existing.Type, fd.Type) {
			c.errf(fd.Pos, "conflicting types for %q: %s vs %s",
				fd.Name, existing.Type, fd.Type)
			return
		}
		fd.Sym = existing
		if fd.Body != nil {
			existing.Def = fd
			c.unit.Funcs = append(c.unit.Funcs, fd)
		}
		return
	}
	sym := &minic.Symbol{Name: fd.Name, Kind: minic.SymFunc,
		Type: fd.Type, Global: true, Def: fd}
	fd.Sym = sym
	c.declare(fd.Pos, sym)
	if fd.Body != nil {
		c.unit.Funcs = append(c.unit.Funcs, fd)
	} else {
		c.unit.Protos = append(c.unit.Protos, fd)
	}
}

func (c *checker) declareVar(vd *minic.VarDecl) {
	if existing := c.lookup(vd.Name); existing != nil {
		if existing.Kind == minic.SymVar && ctypes.Equal(existing.Type, vd.Type) {
			vd.Sym = existing
			return // tentative redefinition, C-style
		}
		c.errf(vd.Pos, "redeclaration of %q", vd.Name)
		return
	}
	if vd.Type.Kind == ctypes.Void {
		c.errf(vd.Pos, "variable %q has void type", vd.Name)
		return
	}
	sym := &minic.Symbol{Name: vd.Name, Kind: minic.SymVar,
		Type: vd.Type, Global: true, Def: vd}
	vd.Sym = sym
	c.declare(vd.Pos, sym)
	if !vd.Extern {
		c.unit.Globals = append(c.unit.Globals, vd)
	}
}

func (c *checker) checkFuncBody(fd *minic.FuncDecl) {
	c.curFunc = fd
	c.labels = map[string]bool{}
	c.gotos = nil
	c.push()
	for i, pt := range fd.Type.Params {
		name := ""
		if i < len(fd.ParamNames) {
			name = fd.ParamNames[i]
		}
		if name == "" {
			c.errf(fd.Pos, "parameter %d of %q is unnamed in definition", i, fd.Name)
			continue
		}
		sym := &minic.Symbol{Name: name, Kind: minic.SymParam, Type: pt}
		c.declare(fd.Pos, sym)
	}
	// The body's outermost block shares the parameter scope (C11 6.2.1).
	for _, s := range fd.Body.Stmts {
		c.checkStmt(s)
	}
	c.pop()
	for _, g := range c.gotos {
		if !c.labels[g.Label] {
			c.errf(g.NodePos(), "goto undefined label %q", g.Label)
		}
	}
	c.curFunc = nil
}

func (c *checker) checkBlock(b *minic.Block) {
	c.push()
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
	c.pop()
}

func (c *checker) checkStmt(s minic.Stmt) {
	switch st := s.(type) {
	case *minic.Block:
		c.checkBlock(st)
	case *minic.DeclGroup:
		for _, d := range st.Decls {
			c.checkStmt(d)
		}
	case *minic.ExprStmt:
		st.X = c.checkExpr(st.X)
	case *minic.DeclStmt:
		if st.Type.Kind == ctypes.Void {
			c.errf(st.Pos, "variable %q has void type", st.Name)
			return
		}
		if st.Type.Kind == ctypes.Struct && st.Type.Incomplete {
			c.errf(st.Pos, "variable %q has incomplete type %s", st.Name, st.Type)
			return
		}
		sym := &minic.Symbol{Name: st.Name, Kind: minic.SymVar, Type: st.Type, Def: st}
		st.Sym = sym
		if st.Init != nil {
			init := c.checkExpr(st.Init)
			st.Init = c.coerceInit(st.Type, init)
		}
		c.declare(st.Pos, sym)
	case *minic.If:
		st.Cond = c.checkCond(st.Cond)
		c.checkStmt(st.Then)
		if st.Else != nil {
			c.checkStmt(st.Else)
		}
	case *minic.While:
		st.Cond = c.checkCond(st.Cond)
		c.loops++
		c.checkStmt(st.Body)
		c.loops--
	case *minic.DoWhile:
		c.loops++
		c.checkStmt(st.Body)
		c.loops--
		st.Cond = c.checkCond(st.Cond)
	case *minic.For:
		c.push()
		if st.Init != nil {
			c.checkStmt(st.Init)
		}
		if st.Cond != nil {
			st.Cond = c.checkCond(st.Cond)
		}
		if st.Post != nil {
			st.Post = c.checkExpr(st.Post)
		}
		c.loops++
		c.checkStmt(st.Body)
		c.loops--
		c.pop()
	case *minic.Switch:
		st.Cond = c.checkExpr(st.Cond)
		if st.Cond.ExprType() != nil && !st.Cond.ExprType().IsInteger() {
			c.errf(st.Pos, "switch condition must be an integer, got %s", st.Cond.ExprType())
		}
		c.switchN++
		seen := map[int64]bool{}
		sawDefault := false
		for i := range st.Cases {
			arm := &st.Cases[i]
			if arm.IsDefault {
				if sawDefault {
					c.errf(arm.Pos, "duplicate default case")
				}
				sawDefault = true
			}
			for _, v := range arm.Vals {
				cv, err := minic.EvalConstExpr(v, c.enums)
				if err != nil {
					c.errf(v.NodePos(), "case label is not constant: %v", err)
					continue
				}
				if seen[cv] {
					c.errf(v.NodePos(), "duplicate case value %d", cv)
				}
				seen[cv] = true
			}
			for _, inner := range arm.Stmts {
				c.checkStmt(inner)
			}
		}
		c.switchN--
	case *minic.Break:
		if c.loops == 0 && c.switchN == 0 {
			c.errf(st.Pos, "break outside loop or switch")
		}
	case *minic.Continue:
		if c.loops == 0 {
			c.errf(st.Pos, "continue outside loop")
		}
	case *minic.Return:
		res := c.curFunc.Type.Result
		if st.X == nil {
			if res.Kind != ctypes.Void {
				c.errf(st.Pos, "return without value in function returning %s", res)
			}
			return
		}
		if res.Kind == ctypes.Void {
			c.errf(st.Pos, "return with value in void function")
			return
		}
		x := c.checkExpr(st.X)
		st.X = c.coerce(res, x, "return")
	case *minic.Goto:
		c.gotos = append(c.gotos, st)
	case *minic.Label:
		if c.labels[st.Name] {
			c.errf(st.Pos, "duplicate label %q", st.Name)
		}
		c.labels[st.Name] = true
		if st.Stmt != nil {
			c.checkStmt(st.Stmt)
		}
	case *minic.AsmStmt:
		// Nothing to check; the C2 analyzer reports these.
	case nil:
	default:
		c.errf(s.NodePos(), "unhandled statement %T", s)
	}
}

// checkCond checks a boolean context expression: any scalar is allowed.
func (c *checker) checkCond(e minic.Expr) minic.Expr {
	x := c.checkExpr(e)
	if t := x.ExprType(); t != nil && !t.IsScalar() {
		c.errf(e.NodePos(), "condition must be scalar, got %s", t)
	}
	return x
}
