package sema

import (
	"mcfi/internal/ctypes"
	"mcfi/internal/minic"
)

// checkExpr types an expression, resolving identifiers, performing
// array/function decay, and returning the (possibly rewritten)
// expression. On error it reports and returns the expression typed as
// int so checking can continue.
func (c *checker) checkExpr(e minic.Expr) minic.Expr {
	switch x := e.(type) {
	case *minic.IntLit:
		// Literals that fit in 32 bits are int; larger are long.
		if x.Value >= -(1<<31) && x.Value < 1<<31 {
			x.SetType(ctypes.IntType)
		} else {
			x.SetType(ctypes.LongType)
		}
		return x
	case *minic.FloatLit:
		x.SetType(ctypes.DoubleType)
		return x
	case *minic.StrLit:
		x.SetType(ctypes.PointerTo(ctypes.CharType))
		return x
	case *minic.Ident:
		return c.checkIdent(x, false)
	case *minic.Unary:
		return c.checkUnary(x)
	case *minic.Postfix:
		x.X = c.checkExpr(x.X)
		t := x.X.ExprType()
		if !c.isLvalue(x.X) {
			c.errf(x.Pos, "operand of %s must be an lvalue", x.Op)
		}
		if t != nil && !t.IsArithmetic() && t.Kind != ctypes.Pointer {
			c.errf(x.Pos, "invalid operand type %s for %s", t, x.Op)
		}
		x.SetType(t)
		return x
	case *minic.Binary:
		return c.checkBinary(x)
	case *minic.Assign:
		return c.checkAssign(x)
	case *minic.Cond:
		x.C = c.checkCond(x.C)
		x.T = c.checkExpr(x.T)
		x.F = c.checkExpr(x.F)
		tt, ft := x.T.ExprType(), x.F.ExprType()
		switch {
		case tt == nil || ft == nil:
			x.SetType(ctypes.IntType)
		case tt.IsArithmetic() && ft.IsArithmetic():
			res := usualArith(tt, ft)
			x.T = c.coerce(res, x.T, "conditional")
			x.F = c.coerce(res, x.F, "conditional")
			x.SetType(res)
		case ctypes.Equal(tt, ft):
			x.SetType(tt)
		case tt.Kind == ctypes.Pointer && ft.Kind == ctypes.Pointer:
			// Unify to the then-arm's type (void* mixing, etc).
			x.F = c.coerce(tt, x.F, "conditional")
			x.SetType(tt)
		case tt.Kind == ctypes.Pointer && ft.IsInteger():
			x.F = c.coerce(tt, x.F, "conditional")
			x.SetType(tt)
		case ft.Kind == ctypes.Pointer && tt.IsInteger():
			x.T = c.coerce(ft, x.T, "conditional")
			x.SetType(ft)
		default:
			c.errf(x.Pos, "incompatible conditional arms: %s vs %s", tt, ft)
			x.SetType(tt)
		}
		return x
	case *minic.Call:
		return c.checkCall(x)
	case *minic.Index:
		x.X = c.checkExpr(x.X)
		x.I = c.checkExpr(x.I)
		bt := x.X.ExprType()
		if it := x.I.ExprType(); it != nil && !it.IsInteger() {
			c.errf(x.Pos, "array index must be an integer, got %s", it)
		}
		switch {
		case bt == nil:
			x.SetType(ctypes.IntType)
		case bt.Kind == ctypes.Pointer:
			x.SetType(bt.Elem)
		case bt.Kind == ctypes.Array:
			x.SetType(bt.Elem)
		default:
			c.errf(x.Pos, "subscript of non-pointer type %s", bt)
			x.SetType(ctypes.IntType)
		}
		return x
	case *minic.Member:
		x.X = c.checkExpr(x.X)
		rt := x.X.ExprType()
		if rt == nil {
			x.SetType(ctypes.IntType)
			return x
		}
		if x.Arrow {
			if rt.Kind != ctypes.Pointer {
				c.errf(x.Pos, "-> on non-pointer type %s", rt)
				x.SetType(ctypes.IntType)
				return x
			}
			rt = rt.Elem
		}
		if rt.Kind != ctypes.Struct && rt.Kind != ctypes.Union {
			c.errf(x.Pos, "member access on non-record type %s", rt)
			x.SetType(ctypes.IntType)
			return x
		}
		f, ok := rt.Field(x.Name)
		if !ok {
			c.errf(x.Pos, "no field %q in %s", x.Name, rt)
			x.SetType(ctypes.IntType)
			return x
		}
		x.SetType(c.decayType(f.Type))
		return x
	case *minic.Cast:
		x.X = c.checkExpr(x.X)
		x.SetType(x.To)
		return x
	case *minic.SizeofType:
		x.SetType(ctypes.LongType)
		return x
	case *minic.InitList:
		for i := range x.Elems {
			x.Elems[i] = c.checkExpr(x.Elems[i])
		}
		// The list's own type is assigned by coerceInit against the target.
		return x
	case *minic.ImplicitCast:
		return x // already typed
	}
	c.errf(e.NodePos(), "unhandled expression %T", e)
	e.SetType(ctypes.IntType)
	return e
}

// checkIdent resolves an identifier. When a function name appears in a
// non-callee position it decays to a function pointer and the function
// is marked address-taken (an MCFI indirect-branch target).
func (c *checker) checkIdent(x *minic.Ident, isCallee bool) minic.Expr {
	sym := c.lookup(x.Name)
	if sym == nil {
		c.errf(x.Pos, "undeclared identifier %q", x.Name)
		x.SetType(ctypes.IntType)
		return x
	}
	x.Sym = sym
	switch sym.Kind {
	case minic.SymEnumConst:
		lit := &minic.IntLit{Value: sym.EnumVal}
		lit.SetType(ctypes.IntType)
		return lit
	case minic.SymFunc:
		if isCallee {
			x.SetType(sym.Type)
			return x
		}
		sym.AddrTaken = true
		x.SetType(ctypes.PointerTo(sym.Type))
		return x
	default:
		x.SetType(c.decayType(sym.Type))
		return x
	}
}

// decayType converts array types to pointers in rvalue contexts.
func (c *checker) decayType(t *ctypes.Type) *ctypes.Type {
	if t != nil && t.Kind == ctypes.Array {
		return ctypes.PointerTo(t.Elem)
	}
	return t
}

func (c *checker) checkUnary(x *minic.Unary) minic.Expr {
	if x.Op == minic.AMP {
		// &f on a function marks it address-taken; &v on a variable.
		if id, ok := x.X.(*minic.Ident); ok {
			if sym := c.lookup(id.Name); sym != nil && sym.Kind == minic.SymFunc {
				sym.AddrTaken = true
				id.Sym = sym
				id.SetType(sym.Type)
				x.SetType(ctypes.PointerTo(sym.Type))
				return x
			}
		}
		x.X = c.checkExprNoDecay(x.X)
		if !c.isLvalue(x.X) {
			c.errf(x.Pos, "cannot take the address of a non-lvalue")
		}
		t := x.X.ExprType()
		if t == nil {
			t = ctypes.IntType
		}
		x.SetType(ctypes.PointerTo(t))
		return x
	}
	x.X = c.checkExpr(x.X)
	t := x.X.ExprType()
	if t == nil {
		t = ctypes.IntType
	}
	switch x.Op {
	case minic.MINUS, minic.TILDE:
		if !t.IsArithmetic() {
			c.errf(x.Pos, "invalid operand type %s for unary %s", t, x.Op)
		}
		if x.Op == minic.TILDE && !t.IsInteger() {
			c.errf(x.Pos, "~ requires an integer operand")
		}
		x.SetType(promote(t))
	case minic.NOT:
		if !t.IsScalar() {
			c.errf(x.Pos, "! requires a scalar operand")
		}
		x.SetType(ctypes.IntType)
	case minic.STAR:
		if t.Kind != ctypes.Pointer {
			c.errf(x.Pos, "cannot dereference non-pointer type %s", t)
			x.SetType(ctypes.IntType)
			return x
		}
		// Dereferencing a function pointer yields the function type,
		// which immediately decays back to the pointer (C semantics).
		if t.Elem.Kind == ctypes.Func {
			x.SetType(t)
			return x.X // *fp == fp
		}
		x.SetType(c.decayType(t.Elem))
	case minic.INC, minic.DEC:
		if !c.isLvalue(x.X) {
			c.errf(x.Pos, "operand of %s must be an lvalue", x.Op)
		}
		if !t.IsArithmetic() && t.Kind != ctypes.Pointer {
			c.errf(x.Pos, "invalid operand type %s for %s", t, x.Op)
		}
		x.SetType(t)
	case minic.KwSizeof:
		x.SetType(ctypes.LongType)
	default:
		c.errf(x.Pos, "unhandled unary operator %s", x.Op)
		x.SetType(ctypes.IntType)
	}
	return x
}

// checkExprNoDecay checks an expression but keeps array types intact
// (for the operand of &).
func (c *checker) checkExprNoDecay(e minic.Expr) minic.Expr {
	if id, ok := e.(*minic.Ident); ok {
		sym := c.lookup(id.Name)
		if sym == nil {
			c.errf(id.Pos, "undeclared identifier %q", id.Name)
			id.SetType(ctypes.IntType)
			return id
		}
		id.Sym = sym
		id.SetType(sym.Type)
		return id
	}
	return c.checkExpr(e)
}

func (c *checker) isLvalue(e minic.Expr) bool {
	switch x := e.(type) {
	case *minic.Ident:
		return x.Sym == nil || x.Sym.Kind == minic.SymVar || x.Sym.Kind == minic.SymParam
	case *minic.Index, *minic.Member:
		return true
	case *minic.Unary:
		return x.Op == minic.STAR
	}
	return false
}

// promote applies the integer promotions (everything smaller than int
// becomes int).
func promote(t *ctypes.Type) *ctypes.Type {
	switch t.Kind {
	case ctypes.Bool, ctypes.Char, ctypes.Short, ctypes.Enum:
		return ctypes.IntType
	case ctypes.UChar, ctypes.UShort:
		return ctypes.IntType
	}
	return t
}

// usualArith applies the usual arithmetic conversions.
func usualArith(a, b *ctypes.Type) *ctypes.Type {
	if a.Kind == ctypes.Double || b.Kind == ctypes.Double {
		return ctypes.DoubleType
	}
	a, b = promote(a), promote(b)
	rank := func(t *ctypes.Type) int {
		switch t.Kind {
		case ctypes.Int:
			return 1
		case ctypes.UInt:
			return 2
		case ctypes.Long:
			return 3
		case ctypes.ULong:
			return 4
		}
		return 1
	}
	ra, rb := rank(a), rank(b)
	if ra >= rb {
		return a
	}
	return b
}

func (c *checker) checkBinary(x *minic.Binary) minic.Expr {
	x.L = c.checkExpr(x.L)
	x.R = c.checkExpr(x.R)
	lt, rt := x.L.ExprType(), x.R.ExprType()
	if lt == nil || rt == nil {
		x.SetType(ctypes.IntType)
		return x
	}
	switch x.Op {
	case minic.LAND, minic.LOR:
		if !lt.IsScalar() || !rt.IsScalar() {
			c.errf(x.Pos, "logical operator requires scalar operands")
		}
		x.SetType(ctypes.IntType)
		return x
	case minic.EQ, minic.NE, minic.LT, minic.GT, minic.LE, minic.GE:
		switch {
		case lt.IsArithmetic() && rt.IsArithmetic():
			res := usualArith(lt, rt)
			x.L = c.coerce(res, x.L, "comparison")
			x.R = c.coerce(res, x.R, "comparison")
		case lt.Kind == ctypes.Pointer && rt.Kind == ctypes.Pointer:
			// Pointer comparison; no coercion needed.
		case lt.Kind == ctypes.Pointer && rt.IsInteger():
			x.R = c.coerce(lt, x.R, "comparison")
		case rt.Kind == ctypes.Pointer && lt.IsInteger():
			x.L = c.coerce(rt, x.L, "comparison")
		default:
			c.errf(x.Pos, "invalid comparison: %s %s %s", lt, x.Op, rt)
		}
		x.SetType(ctypes.IntType)
		return x
	case minic.PLUS:
		if lt.Kind == ctypes.Pointer && rt.IsInteger() {
			x.SetType(lt)
			return x
		}
		if rt.Kind == ctypes.Pointer && lt.IsInteger() {
			x.SetType(rt)
			return x
		}
	case minic.MINUS:
		if lt.Kind == ctypes.Pointer && rt.IsInteger() {
			x.SetType(lt)
			return x
		}
		if lt.Kind == ctypes.Pointer && rt.Kind == ctypes.Pointer {
			x.SetType(ctypes.LongType)
			return x
		}
	case minic.PERCENT, minic.AMP, minic.PIPE, minic.CARET, minic.SHL, minic.SHR:
		if !lt.IsInteger() || !rt.IsInteger() {
			c.errf(x.Pos, "operator %s requires integer operands, got %s and %s", x.Op, lt, rt)
			x.SetType(ctypes.IntType)
			return x
		}
	}
	if !lt.IsArithmetic() || !rt.IsArithmetic() {
		c.errf(x.Pos, "invalid operands to %s: %s and %s", x.Op, lt, rt)
		x.SetType(ctypes.IntType)
		return x
	}
	res := usualArith(lt, rt)
	if x.Op == minic.SHL || x.Op == minic.SHR {
		// Shift result has the promoted left operand's type.
		res = promote(lt)
		x.L = c.coerce(res, x.L, "shift")
		x.SetType(res)
		return x
	}
	x.L = c.coerce(res, x.L, "arithmetic")
	x.R = c.coerce(res, x.R, "arithmetic")
	x.SetType(res)
	return x
}

func (c *checker) checkAssign(x *minic.Assign) minic.Expr {
	x.L = c.checkExpr(x.L)
	if !c.isLvalue(x.L) {
		c.errf(x.Pos, "assignment target is not an lvalue")
	}
	x.R = c.checkExpr(x.R)
	lt := x.L.ExprType()
	if lt == nil {
		x.SetType(ctypes.IntType)
		return x
	}
	if x.Op == minic.ASSIGN {
		x.R = c.coerce(lt, x.R, "assignment")
	} else {
		// Compound assignment: the operation happens at the common
		// arithmetic type, the result converts back to lt.
		rt := x.R.ExprType()
		if lt.Kind == ctypes.Pointer && (x.Op == minic.ADDEQ || x.Op == minic.SUBEQ) {
			if rt != nil && !rt.IsInteger() {
				c.errf(x.Pos, "pointer %s requires an integer, got %s", x.Op, rt)
			}
		} else if rt != nil {
			if !lt.IsArithmetic() || !rt.IsArithmetic() {
				c.errf(x.Pos, "invalid compound assignment: %s %s %s", lt, x.Op, rt)
			} else {
				x.R = c.coerce(usualArith(lt, rt), x.R, "assignment")
			}
		}
	}
	x.SetType(lt)
	return x
}

func (c *checker) checkCall(x *minic.Call) minic.Expr {
	var ft *ctypes.Type
	if id, ok := x.Fun.(*minic.Ident); ok {
		fun := c.checkIdent(id, true)
		x.Fun = fun
		t := fun.ExprType()
		switch {
		case t == nil:
			x.SetType(ctypes.IntType)
			return x
		case t.Kind == ctypes.Func:
			ft = t // direct call
		case t.IsFuncPointer():
			ft = t.Elem // variable of fp type: indirect call
		default:
			c.errf(x.Pos, "called object %q is not a function (%s)", id.Name, t)
			x.SetType(ctypes.IntType)
			return x
		}
	} else {
		x.Fun = c.checkExpr(x.Fun)
		t := x.Fun.ExprType()
		if t == nil || !t.IsFuncPointer() {
			c.errf(x.Pos, "called expression is not a function pointer (%v)", t)
			x.SetType(ctypes.IntType)
			return x
		}
		ft = t.Elem
	}
	nfixed := len(ft.Params)
	if len(x.Args) < nfixed || (!ft.Variadic && len(x.Args) > nfixed) {
		c.errf(x.Pos, "wrong number of arguments: got %d, want %d%s",
			len(x.Args), nfixed, map[bool]string{true: "+", false: ""}[ft.Variadic])
	}
	for i := range x.Args {
		a := c.checkExpr(x.Args[i])
		if i < nfixed {
			a = c.coerce(ft.Params[i], a, "argument")
		} else if at := a.ExprType(); at != nil && at.IsInteger() && promote(at) != at {
			// Default argument promotions for variadic tails.
			a = c.coerce(promote(at), a, "argument")
		}
		x.Args[i] = a
	}
	x.SetType(ft.Result)
	return x
}

// coerce converts expr to type want, inserting an ImplicitCast when the
// types are not structurally equal. Illegal conversions are reported.
func (c *checker) coerce(want *ctypes.Type, e minic.Expr, ctx string) minic.Expr {
	got := e.ExprType()
	if got == nil || want == nil || ctypes.Equal(want, got) {
		return e
	}
	legal := false
	switch {
	case want.IsArithmetic() && got.IsArithmetic():
		legal = true
	case want.Kind == ctypes.Pointer && got.Kind == ctypes.Pointer:
		legal = true // C permits it; the MCFI analyzer may flag it
	case want.Kind == ctypes.Pointer && got.IsInteger():
		legal = true // includes NULL-style literals
	case want.IsInteger() && got.Kind == ctypes.Pointer:
		legal = true
	}
	if !legal {
		c.errf(e.NodePos(), "cannot convert %s to %s in %s", got, want, ctx)
		return e
	}
	ic := &minic.ImplicitCast{To: want, X: e}
	ic.Pos = e.NodePos()
	ic.SetType(want)
	return ic
}

// coerceInit handles initializers, including braced lists for arrays
// and structs.
func (c *checker) coerceInit(want *ctypes.Type, e minic.Expr) minic.Expr {
	il, isList := e.(*minic.InitList)
	if !isList {
		// "char buf[] = "str"" style: string initializing a char array.
		if want.Kind == ctypes.Array && want.Elem.Kind == ctypes.Char {
			if _, isStr := e.(*minic.StrLit); isStr {
				e.SetType(want)
				return e
			}
		}
		return c.coerce(want, e, "initialization")
	}
	switch want.Kind {
	case ctypes.Array:
		if want.Len == 0 {
			want.Len = len(il.Elems)
		}
		if len(il.Elems) > want.Len {
			c.errf(il.Pos, "too many initializers for %s", want)
		}
		for i := range il.Elems {
			il.Elems[i] = c.coerceInit(want.Elem, il.Elems[i])
		}
	case ctypes.Struct:
		if len(il.Elems) > len(want.Fields) {
			c.errf(il.Pos, "too many initializers for %s", want)
		}
		for i := range il.Elems {
			if i < len(want.Fields) {
				il.Elems[i] = c.coerceInit(want.Fields[i].Type, il.Elems[i])
			}
		}
	case ctypes.Union:
		if len(il.Elems) > 1 {
			c.errf(il.Pos, "union initializer may set only the first member")
		}
		for i := range il.Elems {
			il.Elems[i] = c.coerceInit(want.Fields[0].Type, il.Elems[i])
		}
	default:
		if len(il.Elems) == 1 {
			return c.coerce(want, il.Elems[0], "initialization")
		}
		c.errf(il.Pos, "braced initializer for scalar type %s", want)
	}
	il.SetType(want)
	return il
}
