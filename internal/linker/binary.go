package linker

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"mcfi/internal/module"
	"mcfi/internal/visa"
)

// Binary image container, the on-disk form of a linked Image in the
// persistent build store:
//
//	magic   "MCFIIMG\x00"     8 bytes
//	version u32               currently 1
//	profile u32               32 or 64
//	flags   u32               bit 0: instrumented
//	entry   u64
//	...sections, each:  tag u32, length u32, payload
//
// The layout follows internal/module/binary.go: little-endian
// integers, u32-length-prefixed strings and byte blobs, a terminating
// end section, and unknown sections skipped for forward compatibility
// (bump imgVersion for incompatible changes). The aux section embeds
// the exact module.MarshalAux payload, so the two containers share one
// aux codec. Maps (symbols, GOT, PLT) are emitted in sorted key order:
// equal images marshal to equal bytes, which a content-addressed store
// relies on. Integrity (corruption detection) is the store's job — see
// buildstore.Seal — not this format's.

const (
	imgMagic   = "MCFIIMG\x00"
	imgVersion = 1

	isecCode    = 1
	isecData    = 2
	isecSyms    = 3
	isecAux     = 4
	isecGOT     = 5
	isecPLT     = 6
	isecModules = 7
	isecEnd     = 0xFFFF
)

type imgWriter struct {
	buf bytes.Buffer
}

func (w *imgWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.buf.Write(b[:])
}

func (w *imgWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.buf.Write(b[:])
}

func (w *imgWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.buf.WriteString(s)
}

func (w *imgWriter) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf.Write(b)
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// MarshalBinary serializes the image. The encoding is deterministic:
// two equal images produce identical bytes.
func (im *Image) MarshalBinary() ([]byte, error) {
	var w imgWriter
	w.buf.WriteString(imgMagic)
	w.u32(imgVersion)
	w.u32(uint32(im.Profile))
	flags := uint32(0)
	if im.Instrumented {
		flags |= 1
	}
	w.u32(flags)
	w.u64(uint64(im.Entry))

	section := func(tag uint32, body func(*imgWriter)) {
		var sw imgWriter
		body(&sw)
		w.u32(tag)
		w.bytes(sw.buf.Bytes())
	}

	section(isecCode, func(sw *imgWriter) { sw.bytes(im.Code) })
	section(isecData, func(sw *imgWriter) { sw.bytes(im.Data) })
	section(isecSyms, func(sw *imgWriter) {
		sw.u32(uint32(len(im.Syms)))
		for _, name := range sortedKeys(im.Syms) {
			s := im.Syms[name]
			sw.str(name)
			sw.u64(uint64(s.Addr))
			sw.buf.WriteByte(byte(s.Kind))
			sw.u32(uint32(s.Size))
			sw.str(s.Module)
		}
	})
	section(isecAux, func(sw *imgWriter) {
		sw.buf.Write(module.MarshalAux(&im.Aux))
	})
	writeAddrMap := func(sw *imgWriter, m map[string]int64) {
		sw.u32(uint32(len(m)))
		for _, name := range sortedKeys(m) {
			sw.str(name)
			sw.u64(uint64(m[name]))
		}
	}
	section(isecGOT, func(sw *imgWriter) { writeAddrMap(sw, im.GOT) })
	section(isecPLT, func(sw *imgWriter) { writeAddrMap(sw, im.PLT) })
	section(isecModules, func(sw *imgWriter) {
		sw.u32(uint32(len(im.Modules)))
		for _, m := range im.Modules {
			sw.str(m.Name)
			sw.u64(uint64(m.CodeStart))
			sw.u64(uint64(m.CodeEnd))
			sw.u64(uint64(m.DataStart))
			sw.u64(uint64(m.DataEnd))
		}
	})
	w.u32(isecEnd)
	w.u32(0)
	return w.buf.Bytes(), nil
}

type imgReader struct {
	b   []byte
	off int
}

var errImgTruncated = fmt.Errorf("linker: truncated image")

func (r *imgReader) u32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, errImgTruncated
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *imgReader) u64() (uint64, error) {
	if r.off+8 > len(r.b) {
		return 0, errImgTruncated
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

func (r *imgReader) byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, errImgTruncated
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *imgReader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	// Compare in uint64: on 32-bit platforms int(n) can be negative for
	// n >= 2^31, which would pass an int comparison and panic on the
	// slice below instead of reporting truncation.
	if uint64(n) > uint64(len(r.b)-r.off) {
		return "", errImgTruncated
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *imgReader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint64(n) > uint64(len(r.b)-r.off) {
		return nil, errImgTruncated
	}
	b := make([]byte, n)
	copy(b, r.b[r.off:])
	r.off += int(n)
	return b, nil
}

// UnmarshalImage parses a MarshalBinary payload.
func UnmarshalImage(data []byte) (*Image, error) {
	if len(data) < len(imgMagic)+20 || string(data[:len(imgMagic)]) != imgMagic {
		return nil, fmt.Errorf("linker: bad image magic")
	}
	r := &imgReader{b: data, off: len(imgMagic)}
	ver, err := r.u32()
	if err != nil {
		return nil, err
	}
	if ver != imgVersion {
		return nil, fmt.Errorf("linker: unsupported image version %d", ver)
	}
	prof, err := r.u32()
	if err != nil {
		return nil, err
	}
	if prof != 32 && prof != 64 {
		return nil, fmt.Errorf("linker: bad image profile %d", prof)
	}
	flags, err := r.u32()
	if err != nil {
		return nil, err
	}
	entry, err := r.u64()
	if err != nil {
		return nil, err
	}
	im := &Image{
		Profile:      visa.Profile(prof),
		Instrumented: flags&1 != 0,
		Entry:        int64(entry),
		Syms:         map[string]SymInfo{},
		GOT:          map[string]int64{},
		PLT:          map[string]int64{},
	}

	readAddrMap := func(sr *imgReader, m map[string]int64) error {
		n, err := sr.u32()
		if err != nil {
			return err
		}
		for i := uint32(0); i < n; i++ {
			name, err := sr.str()
			if err != nil {
				return err
			}
			addr, err := sr.u64()
			if err != nil {
				return err
			}
			m[name] = int64(addr)
		}
		return nil
	}

	for {
		tag, err := r.u32()
		if err != nil {
			return nil, err
		}
		if tag == isecEnd {
			if _, err := r.u32(); err != nil {
				return nil, err
			}
			break
		}
		payload, err := r.bytes()
		if err != nil {
			return nil, err
		}
		sr := &imgReader{b: payload}
		switch tag {
		case isecCode:
			if im.Code, err = sr.bytes(); err != nil {
				return nil, err
			}
		case isecData:
			if im.Data, err = sr.bytes(); err != nil {
				return nil, err
			}
		case isecSyms:
			n, err := sr.u32()
			if err != nil {
				return nil, err
			}
			for i := uint32(0); i < n; i++ {
				var s SymInfo
				name, err := sr.str()
				if err != nil {
					return nil, err
				}
				addr, err := sr.u64()
				if err != nil {
					return nil, err
				}
				s.Addr = int64(addr)
				k, err := sr.byte()
				if err != nil {
					return nil, err
				}
				s.Kind = module.SymKind(k)
				sz, err := sr.u32()
				if err != nil {
					return nil, err
				}
				s.Size = int(sz)
				if s.Module, err = sr.str(); err != nil {
					return nil, err
				}
				im.Syms[name] = s
			}
		case isecAux:
			aux, err := module.UnmarshalAux(payload)
			if err != nil {
				return nil, err
			}
			im.Aux = aux
		case isecGOT:
			if err := readAddrMap(sr, im.GOT); err != nil {
				return nil, err
			}
		case isecPLT:
			if err := readAddrMap(sr, im.PLT); err != nil {
				return nil, err
			}
		case isecModules:
			n, err := sr.u32()
			if err != nil {
				return nil, err
			}
			for i := uint32(0); i < n; i++ {
				var m ModuleRange
				if m.Name, err = sr.str(); err != nil {
					return nil, err
				}
				vs := [4]int64{}
				for j := range vs {
					v, err := sr.u64()
					if err != nil {
						return nil, err
					}
					vs[j] = int64(v)
				}
				m.CodeStart, m.CodeEnd, m.DataStart, m.DataEnd = vs[0], vs[1], vs[2], vs[3]
				im.Modules = append(im.Modules, m)
			}
		default:
			// Unknown sections are skipped for forward compatibility.
		}
	}
	return im, nil
}
