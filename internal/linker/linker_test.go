package linker_test

import (
	"encoding/binary"
	"strings"
	"testing"

	"mcfi/internal/linker"
	"mcfi/internal/module"
	"mcfi/internal/toolchain"
	"mcfi/internal/visa"
)

func compile(t *testing.T, name, src string, instrument bool) *module.Object {
	t.Helper()
	obj, err := toolchain.New(
		toolchain.WithProfile(visa.Profile64),
		toolchain.WithInstrument(instrument),
		toolchain.WithoutPrelude(),
	).Compile(toolchain.Source{Name: name, Text: src})
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

func TestLinkTwoModules(t *testing.T) {
	a := compile(t, "main", `
int helper(int);
int shared = 5;
int main(void) { return helper(shared); }`, true)
	b := compile(t, "lib", `
int shared;
int helper(int x) { return x * 2; }`, true)
	// "shared" is defined (non-extern) in both -> duplicate error.
	_, err := linker.Link([]*module.Object{a, b}, linker.Options{})
	if err == nil || !strings.Contains(err.Error(), "duplicate symbol") {
		t.Fatalf("want duplicate-symbol error, got %v", err)
	}
}

func TestLinkResolvesCrossModuleCalls(t *testing.T) {
	a := compile(t, "main", `
int helper(int);
int main(void) { return helper(20); }`, true)
	b := compile(t, "lib", `
int helper(int x) { return x * 2 + 2; }`, true)
	img, err := linker.Link([]*module.Object{a, b}, linker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if img.Entry == 0 {
		t.Error("entry not set")
	}
	if _, ok := img.Syms["helper"]; !ok {
		t.Error("helper not in the symbol table")
	}
	// RetSites from both modules merged and rebased into code range.
	for _, rs := range img.Aux.RetSites {
		if rs.Offset < visa.CodeBase || rs.Offset > visa.CodeBase+len(img.Code) {
			t.Errorf("ret site %#x outside code", rs.Offset)
		}
	}
}

func TestLinkMixedInstrumentationRejected(t *testing.T) {
	a := compile(t, "a", `int main(void) { return 0; }`, true)
	b := compile(t, "b", `int f(void) { return 1; }`, false)
	if _, err := linker.Link([]*module.Object{a, b}, linker.Options{}); err == nil {
		t.Error("mixing instrumented and baseline modules must fail")
	}
}

func TestLinkMixedProfilesRejected(t *testing.T) {
	a := compile(t, "a", `int main(void) { return 0; }`, true)
	b, err := toolchain.New(
		toolchain.WithProfile(visa.Profile32),
		toolchain.WithInstrumentation(),
		toolchain.WithoutPrelude(),
	).Compile(toolchain.Source{Name: "b", Text: `int f(void) { return 1; }`})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := linker.Link([]*module.Object{a, b}, linker.Options{}); err == nil {
		t.Error("mixing profiles must fail")
	}
}

func TestLinkMissingMain(t *testing.T) {
	a := compile(t, "a", `int f(void) { return 0; }`, true)
	if _, err := linker.Link([]*module.Object{a}, linker.Options{}); err == nil ||
		!strings.Contains(err.Error(), "main") {
		t.Errorf("want missing-main error, got %v", err)
	}
	// NoEntry skips the requirement (shared-library link).
	img, err := linker.Link([]*module.Object{a}, linker.Options{NoEntry: true})
	if err != nil {
		t.Fatal(err)
	}
	if img.Entry != 0 {
		t.Error("NoEntry image should have no entry point")
	}
}

func TestUnresolvedWithoutFlagFails(t *testing.T) {
	a := compile(t, "a", `
int ext(int);
int main(void) { return ext(1); }`, true)
	if _, err := linker.Link([]*module.Object{a}, linker.Options{}); err == nil {
		t.Error("unresolved symbol must fail without AllowUnresolved")
	}
}

func TestPLTGeneration(t *testing.T) {
	a := compile(t, "a", `
int ext(int);
int ext2(long);
int main(void) { return ext(1) + ext2(2) + ext(3); }`, true)
	img, err := linker.Link([]*module.Object{a}, linker.Options{AllowUnresolved: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(img.PLT) != 2 || len(img.GOT) != 2 {
		t.Fatalf("PLT=%d GOT=%d, want 2/2 (one per import)", len(img.PLT), len(img.GOT))
	}
	// PLT entries appear as IBPLT branches in the merged aux.
	nplt := 0
	for _, ib := range img.Aux.IBs {
		if ib.Kind == module.IBPLT {
			nplt++
			if ib.PLTSym != "ext" && ib.PLTSym != "ext2" {
				t.Errorf("unexpected PLT symbol %q", ib.PLTSym)
			}
			if ib.GotSlot != int(img.GOT[ib.PLTSym]) {
				t.Errorf("PLT %s GOT slot mismatch", ib.PLTSym)
			}
		}
	}
	if nplt != 2 {
		t.Errorf("IBPLT count = %d, want 2", nplt)
	}
	// GOT slots start zeroed (calls fault until the library loads).
	for sym, slot := range img.GOT {
		off := slot - visa.DataBase
		if v := binary.LittleEndian.Uint64(img.Data[off:]); v != 0 {
			t.Errorf("GOT[%s] = %#x, want 0 before dynamic linking", sym, v)
		}
	}
}

func TestCrossModuleAddrTakenMarking(t *testing.T) {
	// lib defines cb but never takes its address; main stores cb into a
	// function pointer. After linking, cb must be address-taken.
	a := compile(t, "main", `
int cb(int);
int (*fp)(int) = cb;
int main(void) { return fp(1); }`, true)
	b := compile(t, "lib", `
int cb(int x) { return x + 1; }`, true)
	img, err := linker.Link([]*module.Object{a, b}, linker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range img.Aux.Funcs {
		if f.Name == "cb" {
			found = true
			if !f.AddrTaken {
				t.Error("cb must be marked address-taken after cross-module linking")
			}
		}
	}
	if !found {
		t.Fatal("cb missing from merged aux")
	}
}

func TestJumpTableRelocDoesNotMarkAddrTaken(t *testing.T) {
	a := compile(t, "main", `
int pick(int x) {
	switch (x) {
	case 0: return 10;
	case 1: return 11;
	case 2: return 12;
	case 3: return 13;
	case 4: return 14;
	default: return -1;
	}
}
int main(void) { return pick(2); }`, true)
	img, err := linker.Link([]*module.Object{a}, linker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range img.Aux.Funcs {
		if f.Name == "pick" && f.AddrTaken {
			t.Error("switch lowering must not mark the function address-taken")
		}
	}
}

func TestModuleRangesAndAlignment(t *testing.T) {
	a := compile(t, "main", `int main(void) { return 0; }`, true)
	b := compile(t, "lib", `int f(void) { return 1; }`, true)
	img, err := linker.Link([]*module.Object{a, b}, linker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range img.Modules {
		if m.CodeStart%16 != 0 {
			t.Errorf("module %d code start %#x not 16-aligned", i, m.CodeStart)
		}
		if i > 0 && m.CodeStart < img.Modules[i-1].CodeEnd {
			t.Errorf("module %d overlaps predecessor", i)
		}
	}
	if img.CodeLimit() != visa.CodeBase+len(img.Code) {
		t.Error("CodeLimit inconsistent")
	}
}

func TestLinkEmptyInput(t *testing.T) {
	if _, err := linker.Link(nil, linker.Options{}); err == nil {
		t.Error("empty link must fail")
	}
}
