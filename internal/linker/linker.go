// Package linker implements MCFI's static linker: it combines
// separately compiled, separately instrumented MCFI modules into one
// loadable image, merging their auxiliary information (paper §6:
// "combining type information of multiple modules during linking is a
// simple union operation"), resolving relocations, and emitting
// MCFI-instrumented PLT entries for symbols left to dynamic linking
// (paper §5.2, §6).
package linker

import (
	"fmt"

	"mcfi/internal/module"
	"mcfi/internal/rewrite"
	"mcfi/internal/visa"
)

// Options configures a link.
type Options struct {
	// AllowUnresolved routes calls to undefined functions through PLT
	// entries backed by GOT slots the dynamic linker fills later.
	// Without it, undefined symbols are link errors.
	AllowUnresolved bool
	// NoEntry skips _start generation (used when linking a shared
	// library for dlopen).
	NoEntry bool
}

// SymInfo describes one resolved global symbol.
type SymInfo struct {
	Addr int64
	Kind module.SymKind
	Size int
	// Module is the name of the defining module.
	Module string
}

// ModuleRange records where one module landed in the image.
type ModuleRange struct {
	Name      string
	CodeStart int64 // absolute
	CodeEnd   int64
	DataStart int64
	DataEnd   int64
}

// Image is a linked, loadable MCFI program.
type Image struct {
	Profile      visa.Profile
	Instrumented bool
	// Code is loaded at visa.CodeBase.
	Code []byte
	// Data (including zeroed BSS and the GOT) is loaded at
	// visa.DataBase.
	Data []byte
	// Entry is the absolute address of _start (0 with NoEntry).
	Entry int64
	// Syms maps global symbols to their absolute addresses.
	Syms map[string]SymInfo
	// Aux is the merged auxiliary information with every code offset
	// rebased to an absolute guest address.
	Aux module.AuxInfo
	// GOT maps imported symbols to the absolute addresses of their GOT
	// slots; PLT maps them to their PLT entry addresses.
	GOT map[string]int64
	PLT map[string]int64
	// Modules lists the layout, in link order.
	Modules []ModuleRange
}

// CodeLimit returns the end of the code region (the Tary table must
// cover [0, CodeLimit)).
func (im *Image) CodeLimit() int { return visa.CodeBase + len(im.Code) }

// Link combines objects into an image. The first object conventionally
// contains main.
func Link(objs []*module.Object, opts Options) (*Image, error) {
	if len(objs) == 0 {
		return nil, fmt.Errorf("linker: no input modules")
	}
	profile := objs[0].Profile
	instrumented := objs[0].Instrumented
	for _, o := range objs[1:] {
		if o.Profile != profile {
			return nil, fmt.Errorf("linker: mixed profiles (%s vs %s in %s)", profile, o.Profile, o.Name)
		}
		if o.Instrumented != instrumented {
			return nil, fmt.Errorf("linker: mixing instrumented and baseline modules (%s)", o.Name)
		}
	}

	ld := &linkState{
		img: &Image{
			Profile:      profile,
			Instrumented: instrumented,
			Syms:         map[string]SymInfo{},
			GOT:          map[string]int64{},
			PLT:          map[string]int64{},
		},
		objs:       objs,
		localSyms:  make([]map[string]SymInfo, len(objs)),
		instrument: instrumented,
	}

	if !opts.NoEntry {
		start, err := makeStartObject(profile, instrumented)
		if err != nil {
			return nil, err
		}
		ld.objs = append([]*module.Object{start}, objs...)
		ld.localSyms = make([]map[string]SymInfo, len(ld.objs))
	}

	ld.layout()
	if err := ld.resolveSymbols(); err != nil {
		return nil, err
	}
	ld.mergeAux()
	if err := ld.applyRelocs(opts); err != nil {
		return nil, err
	}
	ld.markCrossModuleAddrTaken()

	if !opts.NoEntry {
		st, ok := ld.img.Syms["_start"]
		if !ok {
			return nil, fmt.Errorf("linker: missing _start")
		}
		ld.img.Entry = st.Addr
		if _, ok := ld.img.Syms["main"]; !ok {
			return nil, fmt.Errorf("linker: undefined symbol main")
		}
	}
	return ld.img, nil
}

type linkState struct {
	img        *Image
	objs       []*module.Object
	codeStarts []int   // per-object code offset within image code
	dataStarts []int64 // per-object absolute data base
	localSyms  []map[string]SymInfo
	instrument bool
}

const codeAlign = 16

// layout places every object's code and data.
func (ld *linkState) layout() {
	img := ld.img
	for _, o := range ld.objs {
		for len(img.Code)%codeAlign != 0 {
			img.Code = append(img.Code, byte(visa.NOP))
		}
		start := len(img.Code)
		ld.codeStarts = append(ld.codeStarts, start)
		img.Code = append(img.Code, o.Code...)

		for len(img.Data)%codeAlign != 0 {
			img.Data = append(img.Data, 0)
		}
		dstart := int64(visa.DataBase + len(img.Data))
		ld.dataStarts = append(ld.dataStarts, dstart)
		img.Data = append(img.Data, o.Data...)
		img.Data = append(img.Data, make([]byte, o.BSS)...)

		img.Modules = append(img.Modules, ModuleRange{
			Name:      o.Name,
			CodeStart: int64(visa.CodeBase + start),
			CodeEnd:   int64(visa.CodeBase + start + len(o.Code)),
			DataStart: dstart,
			DataEnd:   dstart + int64(len(o.Data)+o.BSS),
		})
	}
}

func (ld *linkState) resolveSymbols() error {
	for i, o := range ld.objs {
		ld.localSyms[i] = map[string]SymInfo{}
		for _, s := range o.Symbols {
			var addr int64
			if s.Kind == module.SymFunc {
				addr = int64(visa.CodeBase + ld.codeStarts[i] + s.Offset)
			} else {
				addr = ld.dataStarts[i] + int64(s.Offset)
			}
			info := SymInfo{Addr: addr, Kind: s.Kind, Size: s.Size, Module: o.Name}
			if s.Local {
				ld.localSyms[i][s.Name] = info
				continue
			}
			if prev, dup := ld.img.Syms[s.Name]; dup {
				return fmt.Errorf("linker: duplicate symbol %q (in %s and %s)",
					s.Name, prev.Module, o.Name)
			}
			ld.img.Syms[s.Name] = info
		}
	}
	return nil
}

// lookup resolves a symbol for object i: locals shadow globals.
func (ld *linkState) lookup(i int, name string) (SymInfo, bool) {
	if s, ok := ld.localSyms[i][name]; ok {
		return s, true
	}
	s, ok := ld.img.Syms[name]
	return s, ok
}

// mergeAux rebases and merges every object's auxiliary info.
func (ld *linkState) mergeAux() {
	img := ld.img
	for i, o := range ld.objs {
		base := visa.CodeBase + ld.codeStarts[i]
		for _, f := range o.Aux.Funcs {
			f.Offset += base
			img.Aux.Funcs = append(img.Aux.Funcs, f)
		}
		for _, ib := range o.Aux.IBs {
			ib.Offset += base
			if ib.TLoadIOffset >= 0 {
				ib.TLoadIOffset += base
			}
			if ib.CheckStart >= 0 {
				ib.CheckStart += base
			}
			if ib.TableLen > 0 {
				ib.TableOff += base
			}
			// Rebase into a fresh slice: the object may be linked into
			// several images (the toolchain memoizes compiled libc), so
			// its aux info must stay untouched.
			ts := make([]int, len(ib.Targets))
			for j, t := range ib.Targets {
				ts[j] = t + base
			}
			ib.Targets = ts
			img.Aux.IBs = append(img.Aux.IBs, ib)
		}
		for _, rs := range o.Aux.RetSites {
			rs.Offset += base
			img.Aux.RetSites = append(img.Aux.RetSites, rs)
		}
		for _, sc := range o.Aux.SetjmpConts {
			img.Aux.SetjmpConts = append(img.Aux.SetjmpConts, sc+base)
		}
		img.Aux.AsmAnnotations = append(img.Aux.AsmAnnotations, o.Aux.AsmAnnotations...)
	}
}

func (ld *linkState) applyRelocs(opts Options) error {
	img := ld.img
	for i, o := range ld.objs {
		cstart := ld.codeStarts[i]
		for _, r := range o.CodeRelocs {
			site := cstart + r.Offset
			sym, ok := ld.lookup(i, r.Symbol)
			switch r.Kind {
			case module.RelAbs64, module.RelJumpTable:
				if !ok {
					return fmt.Errorf("linker: %s: undefined symbol %q", o.Name, r.Symbol)
				}
				put64(img.Code[site:], uint64(sym.Addr+r.Addend))
			case module.RelCall32:
				var target int64
				if ok {
					target = sym.Addr
				} else {
					if !opts.AllowUnresolved {
						return fmt.Errorf("linker: %s: undefined symbol %q", o.Name, r.Symbol)
					}
					target = ld.pltEntry(r.Symbol)
				}
				rel := target - int64(visa.CodeBase+site+4)
				put32(img.Code[site:], uint32(int32(rel)))
			default:
				return fmt.Errorf("linker: unknown relocation kind %d", r.Kind)
			}
		}
		dstart := ld.dataStarts[i] - visa.DataBase
		for _, r := range o.DataRelocs {
			sym, ok := ld.lookup(i, r.Symbol)
			if !ok {
				return fmt.Errorf("linker: %s: undefined symbol %q in data", o.Name, r.Symbol)
			}
			put64(img.Data[dstart+int64(r.Offset):], uint64(sym.Addr+r.Addend))
		}
	}
	return nil
}

// pltEntry creates (or returns) the PLT entry for an imported symbol,
// appending its GOT slot to the data region and its instrumented stub
// to the code region (paper §5.2: "indirect jumps in the PLT ... need
// to reload the target address from GOT when a transaction is
// retried").
func (ld *linkState) pltEntry(name string) int64 {
	img := ld.img
	if addr, ok := img.PLT[name]; ok {
		return addr
	}
	// GOT slot, zero-initialized: a call before the defining library is
	// loaded faults on the unmapped null page.
	for len(img.Data)%8 != 0 {
		img.Data = append(img.Data, 0)
	}
	gotAddr := int64(visa.DataBase + len(img.Data))
	img.Data = append(img.Data, make([]byte, 8)...)
	img.GOT[name] = gotAddr

	a := visa.NewAsm()
	tloadi := rewrite.EmitPLTCheck(a, gotAddr, ld.instrument)
	branch := a.Pos()
	a.Emit(visa.Instr{Op: visa.JMPR, R1: visa.R11})
	if err := a.Finish(); err != nil {
		// Labels are all local and bound; this cannot happen.
		panic(err)
	}

	for len(img.Code)%codeAlign != 0 {
		img.Code = append(img.Code, byte(visa.NOP))
	}
	entry := int64(visa.CodeBase + len(img.Code))
	base := len(img.Code)
	img.Code = append(img.Code, a.Code...)
	img.PLT[name] = entry

	tl, checkStart := -1, -1
	if tloadi >= 0 {
		tl = visa.CodeBase + base + tloadi
		// The PLT check span starts at the stub's Try label — the MOVI
		// that reloads the GOT slot, i.e. the entry itself. A fusing
		// engine byte-matches it against the PLT template (the §5.2
		// GOT-reloading variant) and predecodes the whole span as one
		// superinstruction.
		checkStart = int(entry)
	}
	img.Aux.IBs = append(img.Aux.IBs, module.IndirectBranch{
		Offset:       visa.CodeBase + base + branch,
		Kind:         module.IBPLT,
		Func:         "plt." + name,
		TLoadIOffset: tl,
		CheckStart:   checkStart,
		GotSlot:      int(gotAddr),
		PLTSym:       name,
	})
	return entry
}

// markCrossModuleAddrTaken marks a function address-taken when any
// module references it through an address relocation — the
// cross-module complement of sema's per-unit analysis.
func (ld *linkState) markCrossModuleAddrTaken() {
	taken := map[string]bool{}
	for _, o := range ld.objs {
		for _, r := range o.CodeRelocs {
			if r.Kind == module.RelAbs64 {
				taken[r.Symbol] = true
			}
		}
		for _, r := range o.DataRelocs {
			taken[r.Symbol] = true
		}
	}
	for i := range ld.img.Aux.Funcs {
		f := &ld.img.Aux.Funcs[i]
		if taken[f.Name] {
			f.AddrTaken = true
		}
	}
}

// makeStartObject builds the _start stub: call main, then exit with
// its result.
func makeStartObject(profile visa.Profile, instrumented bool) (*module.Object, error) {
	a := visa.NewAsm()
	var aux module.AuxInfo
	start := a.Pos()
	callSize := visa.Instr{Op: visa.CALL}.Size()
	if instrumented {
		rewrite.PadForAlignedEnd(a, callSize)
	}
	callOff := a.Pos()
	a.Emit(visa.Instr{Op: visa.CALL, Imm: 0})
	aux.RetSites = append(aux.RetSites, module.RetSite{Offset: a.Pos(), Callee: "main"})
	a.Emit(visa.Instr{Op: visa.SYS, Imm: visa.SysExit})
	if err := a.Finish(); err != nil {
		return nil, err
	}
	size := a.Pos() - start
	aux.Funcs = append(aux.Funcs, module.FuncInfo{
		Name: "_start", Offset: start, Size: size, Sig: "f()->v",
	})
	return &module.Object{
		Name:         "_start",
		Profile:      profile,
		Instrumented: instrumented,
		Code:         a.Code,
		CodeRelocs: []module.Reloc{
			{Offset: callOff + 1, Symbol: "main", Kind: module.RelCall32},
		},
		Symbols: []module.Symbol{
			{Name: "_start", Kind: module.SymFunc, Offset: start, Size: size},
		},
		Aux: aux,
	}, nil
}

func put64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func put32(b []byte, v uint32) {
	for i := 0; i < 4; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
