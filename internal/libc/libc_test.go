package libc_test

import (
	"strings"
	"testing"

	"mcfi/internal/toolchain"
	"mcfi/internal/visa"
)

// run executes a MiniC program (with the libc prelude) and returns its
// output; the libc under test is linked in by the Builder.
func run(t *testing.T, src string) string {
	t.Helper()
	code, out, _, err := toolchain.New(
		toolchain.WithProfile(visa.Profile64),
		toolchain.WithInstrumentation(),
	).Run(500_000_000, toolchain.Source{Name: "t", Text: src})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Fatalf("exit %d, output %q", code, out)
	}
	return out
}

func TestStringFunctions(t *testing.T) {
	out := run(t, `
int main(void) {
	char buf[32];
	strcpy(buf, "hello");
	printf("%ld %d %d %d\n",
		strlen(buf),
		strcmp(buf, "hello"),
		strcmp(buf, "help") < 0 ? 1 : 0,
		strcmp("b", "a") > 0 ? 1 : 0);
	char *c = strchr(buf, 'l');
	printf("%d %d\n", (int)(c - buf), strchr(buf, 'z') == (char*)0 ? 1 : 0);
	return 0;
}`)
	if out != "5 0 1 1\n2 1\n" {
		t.Errorf("output %q", out)
	}
}

func TestMemFunctions(t *testing.T) {
	out := run(t, `
int main(void) {
	char a[64];
	char b[64];
	memset(a, 0x41, 64);
	memcpy(b, a, 64);
	printf("%d %d\n", memcmp(a, b, 64), a[63]);
	b[10] = 'B';
	printf("%d\n", memcmp(a, b, 64) != 0 ? 1 : 0);
	void *r = memcpy_fast(b, a, 64);
	printf("%d %d\n", memcmp(a, b, 64), r == (void*)b ? 1 : 0);
	return 0;
}`)
	if out != "0 65\n1\n0 1\n" {
		t.Errorf("output %q", out)
	}
}

func TestMallocFreeReuse(t *testing.T) {
	out := run(t, `
int main(void) {
	long first = 0;
	for (int i = 0; i < 200; i++) {
		long *p = (long*)malloc(64);
		if (i == 0) first = (long)p;
		p[0] = (long)i;
		p[7] = (long)i * 2;
		if (p[0] + p[7] != (long)i * 3) return 1;
		free(p);
	}
	long *q = (long*)malloc(64);
	printf("%d\n", (long)q == first ? 1 : 0);   // free list reuses blocks
	return 0;
}`)
	if out != "1\n" {
		t.Errorf("free list did not recycle: %q", out)
	}
}

func TestPrintfFormats(t *testing.T) {
	out := run(t, `
int main(void) {
	printf("%d %ld %u %x %s %c %% %f\n",
		-5, 1234567890123, 4000000000u, 48879, "txt", 'Q', 2.5);
	printf("%q\n", 0);   // unknown verb passes through
	return 0;
}`)
	want := "-5 1234567890123 4000000000 beef txt Q % 2.500000\n%q\n"
	if out != want {
		t.Errorf("printf output %q, want %q", out, want)
	}
}

func TestQsortStructs(t *testing.T) {
	out := run(t, `
struct kv { long key; long val; };
int cmp_kv(void *a, void *b) {
	long x = ((struct kv*)a)->key;
	long y = ((struct kv*)b)->key;
	if (x < y) return -1;
	if (x > y) return 1;
	return 0;
}
int main(void) {
	struct kv v[5];
	long keys[5];
	keys[0] = 42; keys[1] = 7; keys[2] = 99; keys[3] = 7; keys[4] = 1;
	for (int i = 0; i < 5; i++) { v[i].key = keys[i]; v[i].val = (long)i; }
	qsort(v, 5, sizeof(struct kv), cmp_kv);
	for (int i = 0; i < 5; i++) printf("%ld ", v[i].key);
	putchar(10);
	return 0;
}`)
	if out != "1 7 7 42 99 \n" {
		t.Errorf("qsort output %q", out)
	}
}

func TestCallocZeroes(t *testing.T) {
	out := run(t, `
int main(void) {
	// Dirty a block, free it, then calloc must hand back zeroed memory.
	char *d = (char*)malloc(128);
	memset(d, 0x55, 128);
	free(d);
	char *z = (char*)calloc(16, 8);
	int bad = 0;
	for (int i = 0; i < 128; i++) if (z[i] != 0) bad++;
	printf("%d\n", bad);
	return 0;
}`)
	if out != "0\n" {
		t.Errorf("calloc not zeroing: %q", out)
	}
}

func TestAbsAndRand(t *testing.T) {
	out := run(t, `
int main(void) {
	printf("%d %d %ld\n", abs(-9), abs(9), labs(-1000000000000));
	long a = sys_rand();
	long b = sys_rand();
	printf("%d %d\n", a != b ? 1 : 0, a >= 0 && b >= 0 ? 1 : 0);
	return 0;
}`)
	if !strings.HasPrefix(out, "9 9 1000000000000\n1 1\n") {
		t.Errorf("output %q", out)
	}
}

func TestLibcCompilesOnBothProfilesBaseline(t *testing.T) {
	for _, p := range []visa.Profile{visa.Profile32, visa.Profile64} {
		for _, instr := range []bool{false, true} {
			if _, err := toolchain.New(
				toolchain.WithProfile(p),
				toolchain.WithInstrument(instr),
			).Libc(); err != nil {
				t.Errorf("profile %s instrument=%v: %v", p, instr, err)
			}
		}
	}
}
