// Package libc provides the MiniC standard library — the reproduction's
// MUSL port (paper §7). It is compiled as an ordinary MCFI module,
// instrumented like any other, and exposes syscall-like wrappers over
// the runtime's interposed system calls, a free-list malloc, string and
// formatting routines, qsort with a comparator function pointer, and
// the thread trampoline used by the runtime's spawn syscall.
//
// Like MUSL in the paper, the library contains a handful of known
// C1-condition violations (function-pointer/integer casts at the
// syscall boundary) and one inline-assembly function with a type
// annotation — the analyzer is expected to find them (paper §7 reports
// 45 violations in MUSL, 5 of kind K1 and 40 of kind K2).
package libc

// Header declares the public libc interface. The toolchain prepends it
// to every translation unit (MiniC has no preprocessor; this plays the
// role of the C headers).
const Header = `
enum {
	SYS_EXIT = 0, SYS_WRITE = 1, SYS_SBRK = 2, SYS_MMAP = 3,
	SYS_MPROTECT = 4, SYS_DLOPEN = 5, SYS_DLSYM = 6, SYS_CLOCK = 7,
	SYS_SPAWN = 8, SYS_JOIN = 9, SYS_YIELD = 10, SYS_RAND = 11,
	SYS_TEXIT = 12
};

long __sys0(long n);
long __sys1(long n, long a);
long __sys2(long n, long a, long b);
long __sys3(long n, long a, long b, long c);
long __vararg(long i);

typedef long jmp_buf[4];
int setjmp(long *env);
void longjmp(long *env, int val);

void exit(int code);
long write(char *buf, long n);
long clock_instr(void);
long sys_rand(void);

void *malloc(long n);
void free(void *p);
void *calloc(long n, long sz);

long strlen(char *s);
int strcmp(char *a, char *b);
char *strcpy(char *dst, char *src);
char *strchr(char *s, int c);
void *memcpy(void *dst, void *src, long n);
void *memcpy_fast(void *dst, void *src, long n);
void *memset(void *p, int c, long n);
int memcmp(void *a, void *b, long n);

int putchar(int c);
int puts(char *s);
void print_long(long v);
void print_hex(unsigned long v);
void print_double(double d);
int printf(char *fmt, ...);

int abs(int x);
long labs(long x);

void qsort(void *base, long n, long size, int (*cmp)(void *, void *));

long thread_spawn(long (*fn)(long), long arg);
long thread_join(long tid);

long dlopen(char *name);
long dlsym(long handle, char *name);
`

// Source is the library implementation.
const Source = Header + `
// ---- syscall wrappers ----

void exit(int code) { __sys1(SYS_EXIT, code); }

long write(char *buf, long n) { return __sys2(SYS_WRITE, (long)buf, n); }

long clock_instr(void) { return __sys0(SYS_CLOCK); }

long sys_rand(void) { return __sys0(SYS_RAND); }

// ---- memory allocator: first-fit free list over sbrk ----

struct __blk {
	long size;            // payload size
	struct __blk *next;   // next free block
};

static struct __blk *__free_list;

static long __align16(long n) { return (n + 15) & ~15; }

void *malloc(long n) {
	if (n <= 0) n = 16;
	n = __align16(n);
	struct __blk *prev = (struct __blk*)0;
	struct __blk *b = __free_list;
	while (b) {
		if (b->size >= n) {
			if (prev) prev->next = b->next;
			else __free_list = b->next;
			return (void*)((char*)b + 16);
		}
		prev = b;
		b = b->next;
	}
	long want = n + 16;
	if (want < 4096) want = 4096;
	long base = __sys1(SYS_SBRK, want);
	if (base == -1) return (void*)0;
	struct __blk *nb = (struct __blk*)base;
	nb->size = want - 16;
	nb->next = (struct __blk*)0;
	if (nb->size > n + 32) {
		// split: the tail becomes a free block
		struct __blk *tail = (struct __blk*)((char*)nb + 16 + n);
		tail->size = nb->size - n - 16;
		tail->next = __free_list;
		__free_list = tail;
		nb->size = n;
	}
	return (void*)((char*)nb + 16);
}

void free(void *p) {
	if (!p) return;
	struct __blk *b = (struct __blk*)((char*)p - 16);
	b->next = __free_list;
	__free_list = b;
}

void *calloc(long n, long sz) {
	long total = n * sz;
	void *p = malloc(total);
	if (p) memset(p, 0, total);
	return p;
}

// ---- string routines ----

long strlen(char *s) {
	long n = 0;
	while (s[n]) n++;
	return n;
}

int strcmp(char *a, char *b) {
	long i = 0;
	while (a[i] && a[i] == b[i]) i++;
	return (int)(unsigned char)a[i] - (int)(unsigned char)b[i];
}

char *strcpy(char *dst, char *src) {
	long i = 0;
	while (src[i]) { dst[i] = src[i]; i++; }
	dst[i] = 0;
	return dst;
}

char *strchr(char *s, int c) {
	long i = 0;
	while (s[i]) {
		if (s[i] == (char)c) return s + i;
		i++;
	}
	return (char*)0;
}

void *memcpy(void *dst, void *src, long n) {
	char *d = (char*)dst;
	char *s = (char*)src;
	long i;
	for (i = 0; i + 8 <= n; i += 8) {
		*(long*)(d + i) = *(long*)(s + i);
	}
	for (; i < n; i++) d[i] = s[i];
	return dst;
}

// The CPU-specific memcpy uses inline assembly, with the function
// pointer type annotation MCFI requires for assembly (paper §6, C2).
void *memcpy_fast(void *dst, void *src, long n) {
	asm("rep movsb" : "memcpy_fast : f(*v,*v,l,)->*v");
	return memcpy(dst, src, n);
}

void *memset(void *p, int c, long n) {
	char *d = (char*)p;
	long i;
	long word = (long)(unsigned char)c;
	word = word | (word << 8);
	word = word | (word << 16);
	word = word | (word << 32);
	for (i = 0; i + 8 <= n; i += 8) *(long*)(d + i) = word;
	for (; i < n; i++) d[i] = (char)c;
	return p;
}

int memcmp(void *a, void *b, long n) {
	unsigned char *x = (unsigned char*)a;
	unsigned char *y = (unsigned char*)b;
	long i;
	for (i = 0; i < n; i++) {
		if (x[i] != y[i]) return (int)x[i] - (int)y[i];
	}
	return 0;
}

// ---- output ----

int putchar(int c) {
	char buf[1];
	buf[0] = (char)c;
	write(buf, 1);
	return c;
}

int puts(char *s) {
	write(s, strlen(s));
	putchar(10);
	return 0;
}

static void __print_ulong(unsigned long v, int base) {
	char buf[32];
	char digits[17];
	strcpy(digits, "0123456789abcdef");
	int i = 0;
	if (v == 0) { putchar('0'); return; }
	while (v) {
		buf[i] = digits[v % (unsigned long)base];
		v = v / (unsigned long)base;
		i++;
	}
	while (i > 0) { i--; putchar(buf[i]); }
}

void print_long(long v) {
	if (v < 0) { putchar('-'); __print_ulong((unsigned long)(-v), 10); return; }
	__print_ulong((unsigned long)v, 10);
}

void print_hex(unsigned long v) { __print_ulong(v, 16); }

void print_double(double d) {
	if (d < 0.0) { putchar('-'); d = -d; }
	long ip = (long)d;
	print_long(ip);
	putchar('.');
	double frac = d - (double)ip;
	int i;
	for (i = 0; i < 6; i++) {
		frac = frac * 10.0;
		int digit = (int)frac;
		putchar('0' + digit);
		frac = frac - (double)digit;
	}
}

// printf supports %d %ld %u %x %s %c %f %% — enough for the workloads.
// Variadic arguments arrive through the __vararg builtin.
int printf(char *fmt, ...) {
	long ai = 0;
	long i = 0;
	int n = 0;
	while (fmt[i]) {
		char c = fmt[i];
		if (c != '%') { putchar(c); i++; n++; continue; }
		i++;
		char k = fmt[i];
		if (k == 'l') { i++; k = fmt[i]; }   // %ld, %lu, %lx
		if (k == 'd') {
			print_long(__vararg(ai)); ai++;
		} else if (k == 'u') {
			__print_ulong((unsigned long)__vararg(ai), 10); ai++;
		} else if (k == 'x') {
			print_hex((unsigned long)__vararg(ai)); ai++;
		} else if (k == 's') {
			char *s = (char*)__vararg(ai); ai++;
			write(s, strlen(s));
		} else if (k == 'c') {
			putchar((int)__vararg(ai)); ai++;
		} else if (k == 'f') {
			// doubles travel as raw bit patterns in the vararg slots
			long bits = __vararg(ai); ai++;
			double *pd = (double*)&bits;
			print_double(*pd);
		} else if (k == '%') {
			putchar('%');
		} else {
			putchar('%'); putchar(k);
		}
		i++;
		n++;
	}
	return n;
}

// ---- misc ----

int abs(int x) { if (x < 0) return -x; return x; }
long labs(long x) { if (x < 0) return -x; return x; }

// ---- qsort: in-place quicksort through a comparator function
// pointer — the indirect-call workhorse of the libc (every call is a
// checked MCFI indirect branch of type int(void*,void*)) ----

static void __swap_bytes(char *a, char *b, long size) {
	long i;
	for (i = 0; i < size; i++) {
		char t = a[i];
		a[i] = b[i];
		b[i] = t;
	}
}

static void __qsort_rec(char *base, long lo, long hi, long size,
                        int (*cmp)(void *, void *)) {
	if (lo >= hi) return;
	long mid = lo + (hi - lo) / 2;
	__swap_bytes(base + mid * size, base + hi * size, size);
	long store = lo;
	long i;
	for (i = lo; i < hi; i++) {
		if (cmp((void*)(base + i * size), (void*)(base + hi * size)) < 0) {
			__swap_bytes(base + i * size, base + store * size, size);
			store++;
		}
	}
	__swap_bytes(base + store * size, base + hi * size, size);
	__qsort_rec(base, lo, store - 1, size, cmp);
	__qsort_rec(base, store + 1, hi, size, cmp);
}

void qsort(void *base, long n, long size, int (*cmp)(void *, void *)) {
	if (n > 1) __qsort_rec((char*)base, 0, n - 1, size, cmp);
}

// ---- threads ----

struct __thread_ctl {
	long (*fn)(long);
	long arg;
};

// __thread_main is entered raw by the runtime's spawn syscall with a
// control block argument; it invokes the user function through a
// checked indirect call and never returns.
void __thread_main(struct __thread_ctl *ctl) {
	long r = ctl->fn(ctl->arg);
	__sys1(SYS_TEXIT, r);
}

// Casting the function pointer to long for the syscall is a known C1
// violation (kind K2), mirroring MUSL's syscall-boundary casts.
long thread_spawn(long (*fn)(long), long arg) {
	return __sys2(SYS_SPAWN, (long)fn, arg);
}

long thread_join(long tid) { return __sys1(SYS_JOIN, tid); }

// ---- dynamic linking ----

long dlopen(char *name) { return __sys1(SYS_DLOPEN, (long)name); }
long dlsym(long handle, char *name) { return __sys2(SYS_DLSYM, handle, (long)name); }
`
