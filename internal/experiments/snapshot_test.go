package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func rec(exp, bench string, instrumented bool, rate float64) BenchRecord {
	return BenchRecord{
		Experiment: exp, Benchmark: bench,
		Engine: "fused", Profile: "VISA-64",
		Instrumented: instrumented,
		WallSecs:     1, Instret: int64(rate * 1e6), MinstrPerSec: rate,
	}
}

// TestDiffSnapshotsMatchesByKey: rows pair up on
// experiment/benchmark/engine/profile/variant, deltas are relative
// Minstr/s changes, and one-sided rows are reported, not dropped.
func TestDiffSnapshotsMatchesByKey(t *testing.T) {
	oldRecs := []BenchRecord{
		rec("fig5", "qsort", true, 100),
		rec("fig5", "qsort", false, 120),
		rec("fig5", "gone", true, 50),
	}
	newRecs := []BenchRecord{
		rec("fig5", "qsort", true, 90),   // -10%
		rec("fig5", "qsort", false, 150), // +25%
		rec("fig5", "added", true, 70),
	}
	d := DiffSnapshots(oldRecs, newRecs)
	if len(d.Matched) != 2 {
		t.Fatalf("matched %d rows, want 2", len(d.Matched))
	}
	byKey := map[string]BenchDelta{}
	for _, m := range d.Matched {
		byKey[m.Key] = m
	}
	mcfi := byKey["fig5/qsort/fused/VISA-64/mcfi"]
	if !mcfi.HasRate || mcfi.DeltaPct > -9.9 || mcfi.DeltaPct < -10.1 {
		t.Errorf("mcfi delta = %.2f%%, want -10%%", mcfi.DeltaPct)
	}
	base := byKey["fig5/qsort/fused/VISA-64/baseline"]
	if base.DeltaPct < 24.9 || base.DeltaPct > 25.1 {
		t.Errorf("baseline delta = %.2f%%, want +25%%", base.DeltaPct)
	}
	if len(d.OnlyOld) != 1 || !strings.Contains(d.OnlyOld[0], "gone") {
		t.Errorf("OnlyOld = %v, want the removed row", d.OnlyOld)
	}
	if len(d.OnlyNew) != 1 || !strings.Contains(d.OnlyNew[0], "added") {
		t.Errorf("OnlyNew = %v, want the added row", d.OnlyNew)
	}
}

// TestRegressionsRespectThreshold: only drops past the threshold
// count, and rate-less (wall-time-only) rows never gate.
func TestRegressionsRespectThreshold(t *testing.T) {
	wallOnly := BenchRecord{Experiment: "table3", Engine: "fused", Profile: "VISA-64",
		Instrumented: true, WallSecs: 100}
	wallOnlySlow := wallOnly
	wallOnlySlow.WallSecs = 500
	oldRecs := []BenchRecord{rec("fig5", "a", true, 100), rec("fig5", "b", true, 100), wallOnly}
	newRecs := []BenchRecord{rec("fig5", "a", true, 95), rec("fig5", "b", true, 60), wallOnlySlow}
	d := DiffSnapshots(oldRecs, newRecs)
	regs := d.Regressions(20)
	if len(regs) != 1 || regs[0].New.Benchmark != "b" {
		t.Fatalf("Regressions(20) = %v, want only benchmark b", regs)
	}
	if len(d.Regressions(50)) != 0 {
		t.Errorf("Regressions(50) should be empty")
	}
	out := d.Format(20)
	if !strings.Contains(out, "REGRESSION") {
		t.Errorf("Format should flag the regression:\n%s", out)
	}
	if strings.Contains(out, "table3") {
		t.Errorf("wall-time-only rows should not appear in the rate table:\n%s", out)
	}
}

// TestReadSnapshotRoundTrip reads a written snapshot back with the
// same schema mcfi-bench emits.
func TestReadSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	blob := `[
  {"experiment":"fig5","benchmark":"qsort","engine":"fused","profile":"VISA-64",
   "instrumented":true,"wall_secs":0.5,"instret":1000000,"minstr_per_sec":2.0}
]`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].MinstrPerSec != 2.0 || recs[0].Key() != "fig5/qsort/fused/VISA-64/mcfi" {
		t.Errorf("round trip gave %+v", recs)
	}
	if _, err := ReadSnapshot(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should error")
	}
}
