package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mcfi/internal/id"
	"mcfi/internal/module"
	"mcfi/internal/mrt"
	"mcfi/internal/toolchain"
	"mcfi/internal/workload"
)

// --- Update-transaction throughput: delta vs full publication ---

// UpdateRow is one variant of the dlopen-storm measurement: the same
// storm of module loads against the same base image, published either
// through the incremental delta path or through a full CFG rebuild per
// load (the pre-delta behavior, kept behind mrt.Options.ForceFullCFG).
type UpdateRow struct {
	Variant   string // "delta" or "full"
	Modules   int    // modules dlopen'ed + dlsym'ed during the storm
	Checkers  int    // concurrent host check loops racing the storm
	CodeBytes int    // base-image code size the full path scales with

	Publishes      int64 // update transactions during the storm
	DeltaPublishes int64 // of which took the incremental path
	Retries        int64 // check-transaction retries observed
	Checks         int64 // host checks completed during the storm
	WallSecs       float64
	UpdatesPerSec  float64
}

// updateModuleSrc is one storm module: a handful of functions so the
// module's own aux info is non-trivial, but small next to the base
// image — the quantity whose ratio the two variants disagree about.
// The exported functions deliberately do not call each other: a direct
// call would give upd%d_fn a published return-site class before its
// dlsym flip, and the flip would then genuinely merge that class with
// the indirect-return class — a correct but full-rebuild publication,
// which is not the path this experiment measures.
func updateModuleSrc(i int) toolchain.Source {
	return toolchain.Source{
		Name: fmt.Sprintf("upd%d", i),
		Text: fmt.Sprintf(`
long upd%d_state = %d;
long upd%d_fn(long x) { return x * upd%d_state + %d; }
long upd%d_aux(long x) { return x - %d; }
long upd%d_sum(long n) {
	long s = 0;
	for (long i = 0; i < n; i++) s += i;
	return s;
}
`, i, i+3, i, i, i, i, i, i),
	}
}

// UpdateThroughput measures update transactions per second during a
// dlopen storm — `modules` library loads (each one dlopen plus one
// dlsym address-taken flip) against a large instrumented base image,
// while `checkers` host check loops spin on known-valid (branch,
// target) pairs. It returns one row per publication strategy; the
// delta/full ratio is the headline claim (cost scales with the module,
// not the program).
func UpdateThroughput(c Config, modules, checkers int) ([]UpdateRow, error) {
	if modules <= 0 {
		modules = 24
	}
	if checkers <= 0 {
		checkers = 4
	}
	// The base image is the largest workload plus its synthetic scaling
	// module — the "program" whose size the full rebuild pays per load.
	w, _ := workload.ByName("gcc")
	img, err := buildImage(w, c, true, true)
	if err != nil {
		return nil, fmt.Errorf("base image: %w", err)
	}
	b := c.builder(true)
	objs := make([]*module.Object, modules)
	for i := 0; i < modules; i++ {
		obj, err := b.Compile(updateModuleSrc(i))
		if err != nil {
			return nil, fmt.Errorf("module %d: %w", i, err)
		}
		objs[i] = obj
	}

	var rows []UpdateRow
	for _, variant := range []struct {
		name string
		full bool
	}{{"delta", false}, {"full", true}} {
		rt, err := mrt.New(img, mrt.Options{ForceFullCFG: variant.full, ParallelCopy: true})
		if err != nil {
			return nil, err
		}
		for _, o := range objs {
			rt.RegisterLibrary(o)
		}

		// Harvest valid (branch index, target) pairs from the initial
		// policy for the checker loops: deltas never re-class a
		// published target, so these stay legal for the whole storm.
		tary, bary := rt.Tables.Snapshot()
		type pair struct{ idx, target int }
		var pairs []pair
		for i, bw := range bary {
			if !id.ID(bw).Valid() {
				continue
			}
			for wd, tw := range tary {
				if tw == bw {
					pairs = append(pairs, pair{idx: i, target: wd * 4})
					break
				}
			}
			if len(pairs) >= 16 {
				break
			}
		}
		if len(pairs) == 0 {
			return nil, fmt.Errorf("no valid (branch, target) pairs in the base policy")
		}

		var (
			checks atomic.Int64
			stop   = make(chan struct{})
			wg     sync.WaitGroup
		)
		for k := 0; k < checkers; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					for _, pr := range pairs {
						rt.Tables.Check(pr.idx, pr.target)
						checks.Add(1)
					}
				}
			}()
		}

		// On a single-core box a small delta storm can finish before the
		// checker goroutines are ever scheduled; don't start the clock
		// until at least one check has landed.
		for checks.Load() == 0 {
			runtime.Gosched()
		}

		updates0, retries0 := rt.Tables.Updates(), rt.Tables.Retries()
		start := time.Now()
		for i, o := range objs {
			h, err := rt.Dlopen(o.Name)
			if err != nil {
				close(stop)
				wg.Wait()
				return nil, fmt.Errorf("%s dlopen %s: %w", variant.name, o.Name, err)
			}
			if _, err := rt.Dlsym(h, fmt.Sprintf("upd%d_fn", i)); err != nil {
				close(stop)
				wg.Wait()
				return nil, fmt.Errorf("%s dlsym upd%d_fn: %w", variant.name, i, err)
			}
		}
		wall := time.Since(start).Seconds()
		close(stop)
		wg.Wait()

		n := rt.Tables.Updates() - updates0
		delta, _ := rt.PublishStats()
		row := UpdateRow{
			Variant: variant.name, Modules: modules, Checkers: checkers,
			CodeBytes: len(img.Code),
			Publishes: n, DeltaPublishes: delta,
			Retries:  rt.Tables.Retries() - retries0,
			Checks:   checks.Load(),
			WallSecs: wall,
		}
		if wall > 0 {
			row.UpdatesPerSec = float64(n) / wall
		}
		if variant.full && delta != 0 {
			return nil, fmt.Errorf("ForceFullCFG storm still published %d deltas", delta)
		}
		if !variant.full && delta < int64(modules) {
			return nil, fmt.Errorf("delta storm published only %d deltas for %d modules", delta, modules)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
