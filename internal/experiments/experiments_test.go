package experiments

import (
	"testing"

	"mcfi/internal/visa"
)

// Quick-scale config so the whole experiment suite smoke-tests in
// seconds; reference numbers come from cmd/mcfi-bench.
func quick() Config {
	return Config{Profile: visa.Profile64, Work: 2, GenScale: 0.05}
}

func TestFig5ShapeHolds(t *testing.T) {
	rows, err := Fig5(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 { // 12 benchmarks + average
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows[:12] {
		if r.MCFI <= r.Baseline {
			t.Errorf("%s: MCFI %d <= baseline %d", r.Name, r.MCFI, r.Baseline)
		}
		if r.OverheadPct < 0 || r.OverheadPct > 60 {
			t.Errorf("%s: overhead %.1f%% out of plausible range", r.Name, r.OverheadPct)
		}
	}
	avg := rows[12]
	if avg.Name != "average" || avg.OverheadPct <= 0 || avg.OverheadPct > 30 {
		t.Errorf("average overhead %.2f%% unexpected", avg.OverheadPct)
	}
}

func TestFig6RunsWithUpdates(t *testing.T) {
	rows, err := Fig6(quick(), 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows[:12] {
		if r.MCFI <= 0 {
			t.Errorf("%s did not run", r.Name)
		}
	}
}

func TestSpaceShape(t *testing.T) {
	rows, err := Space(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows[:12] {
		if r.MCFICode <= r.BaselineCode {
			t.Errorf("%s: instrumented code not larger", r.Name)
		}
		if r.TaryBytes != r.MCFICode {
			t.Errorf("%s: Tary must be sized as the code", r.Name)
		}
	}
}

func TestTables12Shape(t *testing.T) {
	rows, err := Tables12(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 { // 12 + libc
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[12].Name != "libc(musl)" || rows[12].Rep.VBE == 0 {
		t.Error("libc row missing or empty")
	}
}

func TestTable3Shape(t *testing.T) {
	rows, err := Table3(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.IBs <= 0 || r.IBTs <= 0 || r.EQCs <= 0 {
			t.Errorf("%s: degenerate stats %+v", r.Name, r)
		}
		// Fine-grained: EQC count far above coarse CFI's 1-2 classes.
		if r.EQCs < 10 {
			t.Errorf("%s: only %d classes", r.Name, r.EQCs)
		}
	}
	// gcc is the largest program (Table 3 shape).
	var gcc, lbm CFGRow
	for _, r := range rows {
		if r.Name == "gcc" {
			gcc = r
		}
		if r.Name == "lbm" {
			lbm = r
		}
	}
	if gcc.IBs <= lbm.IBs {
		t.Errorf("gcc (%d IBs) should exceed lbm (%d IBs)", gcc.IBs, lbm.IBs)
	}
}

func TestProfile64FewerEQCs(t *testing.T) {
	// Paper Table 3: "On x86-64, fewer equivalence classes are
	// generated, mainly because more tail calls are replaced with
	// jumps".
	c64 := quick()
	c32 := quick()
	c32.Profile = visa.Profile32
	r64, err := Table3(c64)
	if err != nil {
		t.Fatal(err)
	}
	r32, err := Table3(c32)
	if err != nil {
		t.Fatal(err)
	}
	sum64, sum32 := 0, 0
	for i := range r64 {
		sum64 += r64[i].EQCs
		sum32 += r32[i].EQCs
	}
	if sum64 >= sum32 {
		t.Errorf("EQCs on 64-bit (%d) should be fewer than 32-bit (%d)", sum64, sum32)
	}
}

func TestAIRTableShape(t *testing.T) {
	rows, err := AIRTable(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !(r.Values["MCFI"] >= r.Values["binCFI"]) {
			t.Errorf("%s: MCFI AIR %.4f < binCFI %.4f", r.Name,
				r.Values["MCFI"], r.Values["binCFI"])
		}
		if r.Values["none"] != 0 {
			t.Errorf("%s: no-CFI AIR must be 0", r.Name)
		}
	}
}

func TestROPShape(t *testing.T) {
	rows, err := ROP(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows[:12] {
		if r.Original == 0 {
			t.Errorf("%s: no gadgets in the baseline image?", r.Name)
		}
		if r.EliminationPct < 90 {
			t.Errorf("%s: elimination %.1f%% below the paper's ~95%%", r.Name, r.EliminationPct)
		}
	}
}

func TestSTMOrdering(t *testing.T) {
	rows := STM(200_000, 4, 200)
	if len(rows) != 4 || rows[0].Name != "MCFI" {
		t.Fatalf("rows = %+v", rows)
	}
	// The reproducible claim is the ordering: lock-based schemes are
	// substantially slower than MCFI's fused-word transaction.
	mcfi := rows[0].NsPerCheck
	for _, r := range rows[2:] { // RWL, Mutex
		if r.NsPerCheck < mcfi {
			t.Errorf("%s (%.1fns) should be slower than MCFI (%.1fns)",
				r.Name, r.NsPerCheck, mcfi)
		}
	}
}

func TestCFGGenFast(t *testing.T) {
	ms, stats, err := CFGGen(quick())
	if err != nil {
		t.Fatal(err)
	}
	if ms > 1000 {
		t.Errorf("CFG generation took %.1f ms; the paper's point is that it is fast", ms)
	}
	if stats.EQCs == 0 {
		t.Error("no classes generated")
	}
}

func TestSanityHelpers(t *testing.T) {
	if err := VerifyIDEncoding(); err != nil {
		t.Error(err)
	}
	if _, err := ModuleOf("gcc", quick()); err != nil {
		t.Error(err)
	}
	if _, err := ModuleOf("nope", quick()); err == nil {
		t.Error("unknown workload should fail")
	}
}

// TestUpdateThroughputDeltaWins: the dlopen-storm measurement keeps
// every publish on the delta path (UpdateThroughput errors internally
// if one falls back), the ForceFullCFG baseline publishes none, and
// per-module publication cost beats per-program cost even at the
// quick test scale.
func TestUpdateThroughputDeltaWins(t *testing.T) {
	rows, err := UpdateThroughput(Config{Profile: visa.Profile64, GenScale: 0.25}, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Variant != "delta" || rows[1].Variant != "full" {
		t.Fatalf("rows: %+v", rows)
	}
	d, f := rows[0], rows[1]
	if d.Publishes != f.Publishes {
		t.Errorf("publish counts differ: delta %d, full %d", d.Publishes, f.Publishes)
	}
	if d.Publishes < 16 { // one dlopen + one dlsym flip per module
		t.Errorf("storm ran only %d update transactions, want >= 16", d.Publishes)
	}
	if d.Checks == 0 || f.Checks == 0 {
		t.Error("checker loops did not run during the storm")
	}
	if d.UpdatesPerSec <= f.UpdatesPerSec {
		t.Errorf("delta %.1f upd/s not faster than full %.1f upd/s",
			d.UpdatesPerSec, f.UpdatesPerSec)
	}
	t.Logf("delta %.1f upd/s vs full %.1f upd/s (%.1fx, %d-byte base)",
		d.UpdatesPerSec, f.UpdatesPerSec, d.UpdatesPerSec/f.UpdatesPerSec, d.CodeBytes)
}
