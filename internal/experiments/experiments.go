// Package experiments regenerates every table and figure of the
// paper's evaluation (§8) over the reproduction's workload suite. Each
// experiment returns structured rows; cmd/mcfi-bench renders them and
// the repository's bench_test.go wraps them in testing.B benchmarks.
//
// Cost metric: the primary measurement is retired guest instructions
// (deterministic, hardware-independent); MCFI's overhead is the extra
// instrumentation instructions executed, which is what the paper's
// wall-clock percentages reflect on real hardware.
package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"mcfi/internal/air"
	"mcfi/internal/analyzer"
	"mcfi/internal/baseline"
	"mcfi/internal/buildstore"
	"mcfi/internal/cfg"
	"mcfi/internal/id"
	"mcfi/internal/libc"
	"mcfi/internal/linker"
	"mcfi/internal/module"
	"mcfi/internal/mrt"
	"mcfi/internal/rop"
	"mcfi/internal/tables"
	"mcfi/internal/toolchain"
	"mcfi/internal/visa"
	"mcfi/internal/vm"
	"mcfi/internal/workload"
)

// Config tunes experiment scale.
type Config struct {
	Profile visa.Profile
	// Work overrides each workload's iteration count (0 = reference).
	Work int
	// GenScale multiplies the Table 3 synthetic-module sizes
	// (1.0 approaches the paper's magnitudes; tests use less).
	GenScale float64
	// Engine selects the VM execution engine for workload runs
	// (default: the direct-threaded engine).
	Engine vm.Engine
	// JITThreshold sets vm.EngineBlockJIT's block-compile threshold
	// (0 = vm.DefaultJITThreshold).
	JITThreshold int64
	// Jobs bounds the worker pool fanning workloads per experiment and
	// the per-build compile concurrency (0 = GOMAXPROCS).
	Jobs int
	// Store, when non-nil, is the content-addressed build store every
	// experiment builder consults before compiling and publishes into —
	// re-running the suite against a warm store skips the builds.
	Store *buildstore.Tiered
}

func (c Config) jobs() int {
	if c.Jobs > 0 {
		return c.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) work(w workload.Workload) toolchain.Source {
	return toolchain.Source{Name: w.Name, Text: w.SourceWithWork(c.Work)}
}

// builder returns the toolchain Builder for this config's flavor; libc
// is memoized process-wide, so the twelve workloads of an experiment
// compile it once per (profile, instrument) pair.
func (c Config) builder(instrument bool) *toolchain.Builder {
	return toolchain.New(
		toolchain.WithProfile(c.Profile),
		toolchain.WithInstrument(instrument),
		toolchain.WithJobs(c.jobs()),
		toolchain.WithStore(c.Store),
	)
}

// buildImage links one workload (optionally with its scaling module)
// against libc.
func buildImage(w workload.Workload, c Config, instrument, withGen bool) (*linker.Image, error) {
	srcs := []toolchain.Source{c.work(w)}
	if withGen && c.GenScale > 0 {
		p := w.Gen
		p.Funcs = int(float64(p.Funcs) * c.GenScale)
		p.FPTypes = maxInt(1, int(float64(p.FPTypes)*c.GenScale))
		p.Callers = int(float64(p.Callers) * c.GenScale)
		p.Switches = int(float64(p.Switches) * c.GenScale)
		srcs = append(srcs, workload.GenerateModule(w.Name, 42, p))
	}
	return c.builder(instrument).Build(srcs...)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// forEachWorkload runs fn over every workload on a bounded worker
// pool and returns the results in table order (workload.All order).
// The first error, in that same order, wins.
func forEachWorkload[T any](c Config, fn func(w workload.Workload) (T, error)) ([]T, error) {
	ws := workload.All()
	out := make([]T, len(ws))
	errs := make([]error, len(ws))
	sem := make(chan struct{}, c.jobs())
	var wg sync.WaitGroup
	for i, w := range ws {
		wg.Add(1)
		go func(i int, w workload.Workload) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i], errs[i] = fn(w)
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// --- E1: Fig. 5 — execution overhead, no concurrent updates ---

// OverheadRow is one bar of Fig. 5/6.
type OverheadRow struct {
	Name         string
	Baseline     int64 // retired instructions, uninstrumented
	MCFI         int64 // retired instructions, instrumented
	OverheadPct  float64
	Retries      int64   // check-transaction retries (Fig. 6 only)
	Updates      int64   // update transactions observed (Fig. 6 only)
	BaselineSecs float64 // wall time of the uninstrumented run
	MCFISecs     float64 // wall time of the instrumented run
}

// MinstrPerSec converts a (retired instructions, wall time) pair into
// the throughput metric reported by bench snapshots.
func MinstrPerSec(instret int64, secs float64) float64 {
	if secs <= 0 {
		return 0
	}
	return float64(instret) / secs / 1e6
}

// runOnce executes one built image and returns retired instructions.
func (c Config) runOnce(img *linker.Image, during func(rt *mrt.Runtime, stop <-chan struct{})) (int64, *mrt.Runtime, error) {
	rt, err := mrt.New(img, mrt.Options{Engine: c.Engine, JITThreshold: c.JITThreshold})
	if err != nil {
		return 0, nil, err
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	if during != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			during(rt, stop)
		}()
	}
	code, err := rt.Run(0)
	close(stop)
	wg.Wait()
	if err != nil {
		return 0, rt, err
	}
	if code != 0 {
		return 0, rt, fmt.Errorf("workload exited %d: %s", code, rt.Output())
	}
	return rt.Instret(), rt, nil
}

// Fig5 measures instrumentation overhead with no concurrent update
// transactions (paper Fig. 5). Workloads are fanned across the
// config's worker pool; rows keep table order.
func Fig5(c Config) ([]OverheadRow, error) {
	rows, err := forEachWorkload(c, func(w workload.Workload) (OverheadRow, error) {
		base, err := buildImage(w, c, false, false)
		if err != nil {
			return OverheadRow{}, fmt.Errorf("%s: %w", w.Name, err)
		}
		inst, err := buildImage(w, c, true, false)
		if err != nil {
			return OverheadRow{}, fmt.Errorf("%s: %w", w.Name, err)
		}
		t0 := time.Now()
		nb, _, err := c.runOnce(base, nil)
		bsecs := time.Since(t0).Seconds()
		if err != nil {
			return OverheadRow{}, fmt.Errorf("%s baseline: %w", w.Name, err)
		}
		t0 = time.Now()
		ni, _, err := c.runOnce(inst, nil)
		isecs := time.Since(t0).Seconds()
		if err != nil {
			return OverheadRow{}, fmt.Errorf("%s mcfi: %w", w.Name, err)
		}
		return OverheadRow{
			Name: w.Name, Baseline: nb, MCFI: ni,
			OverheadPct:  pct(ni, nb),
			BaselineSecs: bsecs, MCFISecs: isecs,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, averageRow(rows))
	return rows, nil
}

// Fig6 repeats the measurement with an update thread re-versioning all
// IDs at the given frequency (the paper uses 50 Hz, derived from V8's
// code-installation rate).
func Fig6(c Config, hz int) ([]OverheadRow, error) {
	if hz <= 0 {
		hz = 50
	}
	interval := time.Second / time.Duration(hz)
	rows, err := forEachWorkload(c, func(w workload.Workload) (OverheadRow, error) {
		base, err := buildImage(w, c, false, false)
		if err != nil {
			return OverheadRow{}, err
		}
		inst, err := buildImage(w, c, true, false)
		if err != nil {
			return OverheadRow{}, err
		}
		t0 := time.Now()
		nb, _, err := c.runOnce(base, nil)
		bsecs := time.Since(t0).Seconds()
		if err != nil {
			return OverheadRow{}, fmt.Errorf("%s baseline: %w", w.Name, err)
		}
		t0 = time.Now()
		ni, rt, err := c.runOnce(inst, func(rt *mrt.Runtime, stop <-chan struct{}) {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					rt.Tables.Reversion(tables.UpdateOpts{Parallel: true})
				}
			}
		})
		isecs := time.Since(t0).Seconds()
		if err != nil {
			return OverheadRow{}, fmt.Errorf("%s mcfi+updates: %w", w.Name, err)
		}
		return OverheadRow{
			Name: w.Name, Baseline: nb, MCFI: ni,
			OverheadPct:  pct(ni, nb),
			Retries:      rt.Tables.Retries(),
			Updates:      rt.Tables.Updates(),
			BaselineSecs: bsecs, MCFISecs: isecs,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, averageRow(rows))
	return rows, nil
}

func pct(inst, base int64) float64 {
	if base == 0 {
		return 0
	}
	return float64(inst-base) / float64(base) * 100
}

func averageRow(rows []OverheadRow) OverheadRow {
	avg := OverheadRow{Name: "average"}
	if len(rows) == 0 {
		return avg
	}
	for _, r := range rows {
		avg.OverheadPct += r.OverheadPct
	}
	avg.OverheadPct /= float64(len(rows))
	return avg
}

// --- E4: space overhead (§8.1) ---

// SpaceRow reports static code-size increase and table sizes.
type SpaceRow struct {
	Name         string
	BaselineCode int
	MCFICode     int
	IncreasePct  float64
	TaryBytes    int // == covered code bytes (one word per 4 bytes)
	BaryBytes    int
}

// Space measures the static size cost of instrumentation.
func Space(c Config) ([]SpaceRow, error) {
	rows, err := forEachWorkload(c, func(w workload.Workload) (SpaceRow, error) {
		base, err := buildImage(w, c, false, false)
		if err != nil {
			return SpaceRow{}, err
		}
		inst, err := buildImage(w, c, true, false)
		if err != nil {
			return SpaceRow{}, err
		}
		nIBs := 0
		for _, ib := range inst.Aux.IBs {
			if ib.TLoadIOffset >= 0 {
				nIBs++
			}
		}
		return SpaceRow{
			Name:         w.Name,
			BaselineCode: len(base.Code),
			MCFICode:     len(inst.Code),
			IncreasePct:  pct(int64(len(inst.Code)), int64(len(base.Code))),
			TaryBytes:    len(inst.Code), // Tary is one 4-byte ID per 4 code bytes
			BaryBytes:    4 * nIBs,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var totB, totM int
	for _, r := range rows {
		totB += r.BaselineCode
		totM += r.MCFICode
	}
	rows = append(rows, SpaceRow{
		Name: "average", IncreasePct: pct(int64(totM), int64(totB)),
	})
	return rows, nil
}

// --- E5/E6: Tables 1 and 2 — the C1/C2 analyzer ---

// AnalyzerRow is one row of Tables 1 and 2.
type AnalyzerRow struct {
	Name string
	Rep  *analyzer.Report
}

// Tables12 runs the analyzer over every workload plus libc (§7).
func Tables12(c Config) ([]AnalyzerRow, error) {
	rows, err := forEachWorkload(c, func(w workload.Workload) (AnalyzerRow, error) {
		src := c.work(w)
		u, err := toolchain.New().Analyze(src)
		if err != nil {
			return AnalyzerRow{}, fmt.Errorf("%s: %w", w.Name, err)
		}
		rep := analyzer.Analyze(u)
		rep.Name = w.Name
		rep.SLOC = analyzer.CountSLOC(src.Text)
		return AnalyzerRow{Name: w.Name, Rep: rep}, nil
	})
	if err != nil {
		return nil, err
	}
	u, err := toolchain.New(toolchain.WithoutPrelude()).
		Analyze(toolchain.Source{Name: "libc", Text: libc.Source})
	if err != nil {
		return nil, err
	}
	rep := analyzer.Analyze(u)
	rep.Name = "libc(musl)"
	rep.SLOC = analyzer.CountSLOC(libc.Source)
	rows = append(rows, AnalyzerRow{Name: "libc(musl)", Rep: rep})
	return rows, nil
}

// --- E7: Table 3 — CFG statistics ---

// CFGRow is one row of Table 3 for one profile.
type CFGRow struct {
	Name             string
	IBs, IBTs, EQCs  int
	GenerationTimeMs float64
}

// Table3 links each workload (with its scaling module) and reports the
// CFG statistics plus generation time (§8.2 reports ~150 ms for gcc).
func Table3(c Config) ([]CFGRow, error) {
	return forEachWorkload(c, func(w workload.Workload) (CFGRow, error) {
		img, err := buildImage(w, c, true, true)
		if err != nil {
			return CFGRow{}, fmt.Errorf("%s: %w", w.Name, err)
		}
		in := cfg.Input{
			Funcs: img.Aux.Funcs, IBs: img.Aux.IBs,
			RetSites: img.Aux.RetSites, SetjmpConts: img.Aux.SetjmpConts,
			Annotations: img.Aux.AsmAnnotations, Profile: img.Profile,
		}
		start := time.Now()
		g := cfg.Generate(in)
		el := time.Since(start)
		return CFGRow{
			Name: w.Name, IBs: g.Stats.IBs, IBTs: g.Stats.IBTs,
			EQCs: g.Stats.EQCs, GenerationTimeMs: float64(el.Microseconds()) / 1000,
		}, nil
	})
}

// --- E8: AIR comparison (§8.3) ---

// AIRRow is one benchmark's AIR under every policy.
type AIRRow struct {
	Name   string
	Values map[string]float64 // policy name -> AIR
	Order  []string
}

// AIRTable computes the §8.3 comparison.
func AIRTable(c Config) ([]AIRRow, error) {
	return forEachWorkload(c, func(w workload.Workload) (AIRRow, error) {
		img, err := buildImage(w, c, true, true)
		if err != nil {
			return AIRRow{}, err
		}
		g := cfg.Generate(cfg.Input{
			Funcs: img.Aux.Funcs, IBs: img.Aux.IBs,
			RetSites: img.Aux.RetSites, SetjmpConts: img.Aux.SetjmpConts,
			Annotations: img.Aux.AsmAnnotations, Profile: img.Profile,
		})
		policies := baseline.Evaluate(img, g, len(img.Code))
		row := AIRRow{Name: w.Name, Values: map[string]float64{}}
		for _, p := range policies {
			row.Values[p.Name] = air.Compute(p.TargetSizes, len(img.Code))
			row.Order = append(row.Order, p.Name)
		}
		return row, nil
	})
}

// --- E9: ROP gadget elimination (§8.3) ---

// ROPRow reports gadget counts before/after hardening.
type ROPRow struct {
	Name     string
	Original int // unique gadgets in the baseline image
	// RawHardened counts gadget-shaped byte sequences in the hardened
	// image ignoring reachability (what rp++ sees on disk).
	RawHardened    int
	Usable         int // gadgets still reachable under MCFI's Tary policy
	EliminationPct float64
}

// ROP measures gadget elimination with the rp++-style finder.
func ROP(c Config) ([]ROPRow, error) {
	rows, err := forEachWorkload(c, func(w workload.Workload) (ROPRow, error) {
		base, err := buildImage(w, c, false, false)
		if err != nil {
			return ROPRow{}, err
		}
		inst, err := buildImage(w, c, true, false)
		if err != nil {
			return ROPRow{}, err
		}
		orig := rop.Find(base.Code, rop.DefaultMaxLen)

		g := cfg.Generate(cfg.Input{
			Funcs: inst.Aux.Funcs, IBs: inst.Aux.IBs,
			RetSites: inst.Aux.RetSites, SetjmpConts: inst.Aux.SetjmpConts,
			Annotations: inst.Aux.AsmAnnotations, Profile: inst.Profile,
		})
		hardened := rop.Find(inst.Code, rop.DefaultMaxLen)
		usable := rop.CountUsable(hardened, visa.CodeBase, func(addr int) bool {
			if addr%4 != 0 {
				return false
			}
			_, ok := g.TaryECN[addr]
			return ok
		})
		elim := rop.Elimination(len(orig), usable)
		return ROPRow{
			Name: w.Name, Original: len(orig), RawHardened: len(hardened),
			Usable: usable, EliminationPct: elim * 100,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var sumElim float64
	for _, r := range rows {
		sumElim += r.EliminationPct
	}
	rows = append(rows, ROPRow{
		Name:           "average",
		EliminationPct: sumElim / float64(len(rows)),
	})
	return rows, nil
}

// --- E3: the STM micro-benchmark (§8.1) ---

// STMRow is one synchronization strategy's measured check cost.
type STMRow struct {
	Name       string
	NsPerCheck float64
	Normalized float64 // relative to MCFI
}

// STM times the four check-transaction implementations under a
// concurrent re-versioning writer, reproducing the §8.1 table
// (MCFI 1 : TML 2 : RWL 29 : Mutex 22 on the paper's hardware; the
// ordering, not the constants, is the reproducible claim).
func STM(iters int, readers int, updateHz int) []STMRow {
	if iters <= 0 {
		iters = 2_000_000
	}
	if readers <= 0 {
		readers = 4
	}
	checkers := tables.NewCheckers(1<<16, 64, func(tb *tables.Tables) {
		tb.Update(func(addr int) int {
			if addr%64 == 0 {
				return addr/64%32 + 1
			}
			return -1
		}, func(i int) int {
			if i < 32 {
				return i + 1
			}
			return -1
		}, tables.UpdateOpts{})
	})
	var rows []STMRow
	for _, ck := range checkers {
		stop := make(chan struct{})
		var upd sync.WaitGroup
		if updateHz > 0 {
			upd.Add(1)
			go func() {
				defer upd.Done()
				tick := time.NewTicker(time.Second / time.Duration(updateHz))
				defer tick.Stop()
				for {
					select {
					case <-stop:
						return
					case <-tick.C:
						ck.Reversion()
					}
				}
			}()
		}
		start := time.Now()
		var wg sync.WaitGroup
		per := iters / readers
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(seed int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					b := (i + seed) % 32
					ck.Check(b, 64*b)
				}
			}(r)
		}
		wg.Wait()
		el := time.Since(start)
		close(stop)
		upd.Wait()
		rows = append(rows, STMRow{
			Name:       ck.Name(),
			NsPerCheck: float64(el.Nanoseconds()) / float64(per*readers),
		})
	}
	for i := range rows {
		rows[i].Normalized = rows[i].NsPerCheck / rows[0].NsPerCheck
	}
	return rows
}

// --- E10: CFG generation time at gcc scale ---

// CFGGen measures type-matching CFG generation on the largest linked
// input and returns (milliseconds, stats).
func CFGGen(c Config) (float64, cfg.Stats, error) {
	w, _ := workload.ByName("gcc")
	img, err := buildImage(w, c, true, true)
	if err != nil {
		return 0, cfg.Stats{}, err
	}
	in := cfg.Input{
		Funcs: img.Aux.Funcs, IBs: img.Aux.IBs,
		RetSites: img.Aux.RetSites, SetjmpConts: img.Aux.SetjmpConts,
		Annotations: img.Aux.AsmAnnotations, Profile: img.Profile,
	}
	const reps = 5
	start := time.Now()
	var g *cfg.Graph
	for i := 0; i < reps; i++ {
		g = cfg.Generate(in)
	}
	ms := float64(time.Since(start).Microseconds()) / 1000 / reps
	return ms, g.Stats, nil
}

// --- sanity helpers used by the harness ---

// VerifyIDEncoding double-checks the Fig. 2 invariants at run time
// (used by mcfi-bench -exp sanity).
func VerifyIDEncoding() error {
	d := id.Encode(12345, 678)
	if !d.Valid() || d.ECN() != 12345 || d.Version() != 678 {
		return fmt.Errorf("ID encoding broken: %08x", uint32(d))
	}
	if id.ID(0).Valid() {
		return fmt.Errorf("zero ID must be invalid")
	}
	return nil
}

// ModuleOf compiles one workload to an instrumented object (used by
// the verification sweep in mcfi-bench).
func ModuleOf(name string, c Config) (*module.Object, error) {
	w, ok := workload.ByName(name)
	if !ok {
		return nil, fmt.Errorf("unknown workload %q", name)
	}
	return c.builder(true).Compile(c.work(w))
}
