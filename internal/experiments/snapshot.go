package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// BenchRecord is one row of a mcfi-bench -json snapshot: either a
// whole experiment (Benchmark empty, wall time only) or one workload
// run within fig5/fig6 (retired instructions and throughput included).
// The snapshot files checked in at the repo root (BENCH_*.json) use
// this schema, and `mcfi-bench -diff` compares two of them.
type BenchRecord struct {
	Experiment   string  `json:"experiment"`
	Benchmark    string  `json:"benchmark,omitempty"`
	Engine       string  `json:"engine"`
	Profile      string  `json:"profile"`
	Instrumented bool    `json:"instrumented"`
	WallSecs     float64 `json:"wall_secs"`
	Instret      int64   `json:"instret,omitempty"`
	MinstrPerSec float64 `json:"minstr_per_sec,omitempty"`
	// Build-store provenance for the experiment, present only when
	// mcfi-bench ran with -store: per-tier hit counts ("mem", "disk",
	// "remote") and fresh compiles, as deltas over this record's run.
	StoreHits   map[string]int64 `json:"store_hits,omitempty"`
	StoreBuilds int64            `json:"store_builds,omitempty"`
	// Per-tenant job-latency percentiles in milliseconds (mcfi-load
	// serving records only): tenant name → [p50, p95, p99].
	TenantLatMs map[string][3]float64 `json:"tenant_lat_ms,omitempty"`
}

// Key identifies the measurement a record belongs to, independent of
// the measured values: two snapshots are compared row-by-row on it.
func (r BenchRecord) Key() string {
	variant := "baseline"
	if r.Instrumented {
		variant = "mcfi"
	}
	name := r.Benchmark
	if name == "" {
		name = "-"
	}
	return fmt.Sprintf("%s/%s/%s/%s/%s", r.Experiment, name, r.Engine, r.Profile, variant)
}

// ReadSnapshot loads a -json snapshot file.
func ReadSnapshot(path string) ([]BenchRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []BenchRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return recs, nil
}

// BenchDelta is one matched row of a snapshot diff.
type BenchDelta struct {
	Key      string
	Old, New BenchRecord
	// DeltaPct is the relative Minstr/s change, positive = faster.
	// Only meaningful when both rows carry throughput (HasRate).
	DeltaPct float64
	HasRate  bool
}

// DiffReport is the result of comparing two snapshots.
type DiffReport struct {
	Matched []BenchDelta
	// OnlyOld/OnlyNew list keys present in exactly one snapshot
	// (experiments added or removed between the two runs).
	OnlyOld, OnlyNew []string
}

// DiffSnapshots matches rows by Key and computes per-row throughput
// deltas. Rows without a Minstr/s figure (experiment-level wall-time
// rows) are matched but carry no delta — wall time across machines is
// too noisy to gate on.
func DiffSnapshots(oldRecs, newRecs []BenchRecord) DiffReport {
	oldByKey := map[string]BenchRecord{}
	for _, r := range oldRecs {
		oldByKey[r.Key()] = r
	}
	var rep DiffReport
	seen := map[string]bool{}
	for _, nr := range newRecs {
		k := nr.Key()
		seen[k] = true
		or, ok := oldByKey[k]
		if !ok {
			rep.OnlyNew = append(rep.OnlyNew, k)
			continue
		}
		d := BenchDelta{Key: k, Old: or, New: nr}
		if or.MinstrPerSec > 0 && nr.MinstrPerSec > 0 {
			d.HasRate = true
			d.DeltaPct = (nr.MinstrPerSec - or.MinstrPerSec) / or.MinstrPerSec * 100
		}
		rep.Matched = append(rep.Matched, d)
	}
	for _, r := range oldRecs {
		if !seen[r.Key()] {
			rep.OnlyOld = append(rep.OnlyOld, r.Key())
		}
	}
	sort.Slice(rep.Matched, func(i, j int) bool { return rep.Matched[i].Key < rep.Matched[j].Key })
	sort.Strings(rep.OnlyOld)
	sort.Strings(rep.OnlyNew)
	return rep
}

// Regressions returns the matched rows whose throughput dropped by
// more than thresholdPct percent.
func (d DiffReport) Regressions(thresholdPct float64) []BenchDelta {
	var out []BenchDelta
	for _, m := range d.Matched {
		if m.HasRate && m.DeltaPct < -thresholdPct {
			out = append(out, m)
		}
	}
	return out
}

// Format renders the diff as the table `mcfi-bench -diff` prints.
func (d DiffReport) Format(thresholdPct float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %12s %12s %9s\n", "experiment", "old Mi/s", "new Mi/s", "delta")
	for _, m := range d.Matched {
		if !m.HasRate {
			continue
		}
		flag := ""
		if m.DeltaPct < -thresholdPct {
			flag = "  REGRESSION"
		}
		fmt.Fprintf(&b, "%-40s %12.2f %12.2f %+8.2f%%%s\n",
			m.Key, m.Old.MinstrPerSec, m.New.MinstrPerSec, m.DeltaPct, flag)
	}
	for _, k := range d.OnlyOld {
		fmt.Fprintf(&b, "%-40s removed in new snapshot\n", k)
	}
	for _, k := range d.OnlyNew {
		fmt.Fprintf(&b, "%-40s new (no old measurement)\n", k)
	}
	return b.String()
}
