package workload

// Gobmk models the Go-playing workload: influence propagation and
// flood-fill group counting over a 9x9 board. Array-heavy integer
// code; like the original, no C1 violations.
func Gobmk() Workload {
	return Workload{
		Name:     "gobmk",
		Work:     60,
		TestWork: 5,
		Gen:      GenParams{Funcs: 1000, FPTypes: 30, Callers: 130, Switches: 24},
		Source: `
enum { WORK = 60, SZ = 9 };

static int board[SZ][SZ];
static int influence[SZ][SZ];
static int visited[SZ][SZ];

static void seed_board(unsigned long state) {
	for (int i = 0; i < SZ; i++) {
		for (int j = 0; j < SZ; j++) {
			state = state * 6364136223846793005 + 1442695040888963407;
			int r = (int)((state >> 33) % 8);
			if (r == 0) board[i][j] = 1;
			else if (r == 1) board[i][j] = 2;
			else board[i][j] = 0;
		}
	}
}

static void propagate(void) {
	for (int i = 0; i < SZ; i++)
		for (int j = 0; j < SZ; j++)
			influence[i][j] = 0;
	for (int i = 0; i < SZ; i++) {
		for (int j = 0; j < SZ; j++) {
			if (board[i][j] == 0) continue;
			int sign = board[i][j] == 1 ? 1 : -1;
			for (int di = -2; di <= 2; di++) {
				for (int dj = -2; dj <= 2; dj++) {
					int ni = i + di;
					int nj = j + dj;
					if (ni < 0 || ni >= SZ || nj < 0 || nj >= SZ) continue;
					int d = abs(di) + abs(dj);
					influence[ni][nj] += sign * (8 >> d);
				}
			}
		}
	}
}

static int flood(int i, int j, int color) {
	if (i < 0 || i >= SZ || j < 0 || j >= SZ) return 0;
	if (visited[i][j] || board[i][j] != color) return 0;
	visited[i][j] = 1;
	return 1 + flood(i - 1, j, color) + flood(i + 1, j, color)
	         + flood(i, j - 1, color) + flood(i, j + 1, color);
}

static int count_groups(int color) {
	for (int i = 0; i < SZ; i++)
		for (int j = 0; j < SZ; j++)
			visited[i][j] = 0;
	int groups = 0;
	int biggest = 0;
	for (int i = 0; i < SZ; i++) {
		for (int j = 0; j < SZ; j++) {
			if (board[i][j] == color && !visited[i][j]) {
				int n = flood(i, j, color);
				groups++;
				if (n > biggest) biggest = n;
			}
		}
	}
	return groups * 100 + biggest;
}

int main(void) {
	long acc = 0;
	for (int it = 0; it < WORK; it++) {
		seed_board((unsigned long)(it * 2654435761u + 7));
		propagate();
		long terr = 0;
		for (int i = 0; i < SZ; i++)
			for (int j = 0; j < SZ; j++)
				terr += influence[i][j] > 0 ? 1 : (influence[i][j] < 0 ? -1 : 0);
		acc += terr + count_groups(1) - count_groups(2);
		acc &= 0xFFFFFFF;
	}
	printf("gobmk: %ld\n", acc);
	return 0;
}
`,
	}
}

// Hmmer models the profile-HMM workload: Viterbi dynamic programming
// over a small plan7-style model whose malloc'ed profile struct (with
// a scoring callback) produces the MF findings of Table 1.
func Hmmer() Workload {
	return Workload{
		Name:     "hmmer",
		Work:     50,
		TestWork: 5,
		Gen:      GenParams{Funcs: 260, FPTypes: 14, Callers: 40, Switches: 5},
		Source: `
enum { WORK = 50, M = 24, L = 48 };

struct plan7 {
	int m;                       // model length
	int (*null_score)(int);      // score callback (real fp in hmmer)
	long tmat[M][3];             // match/insert/delete transitions
	long emit[M][4];             // emission scores
};

static int null_model(int x) { return x / 2; }

static struct plan7 *make_model(unsigned long state) {
	struct plan7 *p = (struct plan7*)malloc(sizeof(struct plan7));    // MF
	p->m = M;
	p->null_score = null_model;
	for (int k = 0; k < M; k++) {
		for (int t = 0; t < 3; t++) {
			state = state * 2862933555777941757 + 3037000493;
			p->tmat[k][t] = (long)((state >> 40) % 16) - 8;
		}
		for (int a = 0; a < 4; a++) {
			state = state * 2862933555777941757 + 3037000493;
			p->emit[k][a] = (long)((state >> 40) % 32) - 16;
		}
	}
	return p;
}

static long vmx[L + 1][M + 1];

static long viterbi(struct plan7 *p, int *seq, int n) {
	for (int i = 0; i <= n; i++)
		for (int k = 0; k <= p->m; k++)
			vmx[i][k] = -100000;
	vmx[0][0] = 0;
	for (int i = 1; i <= n; i++) {
		for (int k = 1; k <= p->m; k++) {
			long best = vmx[i - 1][k - 1] + p->tmat[k - 1][0];
			long del = vmx[i][k - 1] + p->tmat[k - 1][2];
			long ins = vmx[i - 1][k] + p->tmat[k - 1][1];
			if (del > best) best = del;
			if (ins > best) best = ins;
			vmx[i][k] = best + p->emit[k - 1][seq[i - 1] & 3];
		}
	}
	long sc = -100000;
	for (int k = 1; k <= p->m; k++)
		if (vmx[n][k] > sc) sc = vmx[n][k];
	return sc - (long)p->null_score(n);
}

int main(void) {
	long acc = 0;
	int seq[L];
	for (int it = 0; it < WORK; it++) {
		struct plan7 *p = make_model((unsigned long)(it + 3));
		unsigned long st = (unsigned long)(it * 31 + 1);
		for (int i = 0; i < L; i++) {
			st = st * 1103515245 + 12345;
			seq[i] = (int)((st >> 16) & 3);
		}
		acc += viterbi(p, seq, L);
		free(p);                                                      // MF
		acc &= 0xFFFFFFF;
	}
	printf("hmmer: %ld\n", acc);
	return 0;
}
`,
	}
}

// Sjeng models the chess workload: negamax search with alpha-beta
// pruning over a 4x4 capture game. Recursive integer search; clean of
// C1 violations like the original.
func Sjeng() Workload {
	return Workload{
		Name:     "sjeng",
		Work:     20,
		TestWork: 3,
		Gen:      GenParams{Funcs: 130, FPTypes: 10, Callers: 22, Switches: 8},
		Source: `
enum { WORK = 20, B = 4 };

static int cells[B * B];

static int evaluate(int side) {
	int score = 0;
	for (int i = 0; i < B * B; i++) {
		if (cells[i] == side) score += 10 + i % 3;
		else if (cells[i] == 3 - side) score -= 10 + i % 3;
	}
	return score;
}

static int negamax(int side, int depth, int alpha, int beta) {
	if (depth == 0) return evaluate(side);
	int best = -100000;
	for (int i = 0; i < B * B; i++) {
		if (cells[i] != 0) continue;
		cells[i] = side;
		// capturing rule: taking a cell flips one neighbor
		int flipped = -1;
		if (i + 1 < B * B && cells[i + 1] == 3 - side) {
			cells[i + 1] = side;
			flipped = i + 1;
		}
		int v = -negamax(3 - side, depth - 1, -beta, -alpha);
		cells[i] = 0;
		if (flipped >= 0) cells[flipped] = 3 - side;
		if (v > best) best = v;
		if (best > alpha) alpha = best;
		if (alpha >= beta) break;
	}
	if (best == -100000) return evaluate(side);
	return best;
}

int main(void) {
	long acc = 0;
	for (int it = 0; it < WORK; it++) {
		unsigned long st = (unsigned long)(it * 97 + 13);
		for (int i = 0; i < B * B; i++) {
			st = st * 6364136223846793005 + 1;
			int r = (int)((st >> 33) % 4);
			cells[i] = r == 3 ? 0 : r;
		}
		acc += negamax(1, 5, -100000, 100000);
		acc &= 0xFFFFFFF;
	}
	printf("sjeng: %ld\n", acc);
	return 0;
}
`,
	}
}

// Libquantum models the quantum-simulation workload: a state-vector
// register with rotation and controlled-not gates over fixed-point
// amplitudes. It carries the single K1 case the paper reports (kept
// dead, as the fixed source would remove it) plus one MF.
func Libquantum() Workload {
	return Workload{
		Name:     "libquantum",
		Work:     40,
		TestWork: 4,
		Gen:      GenParams{Funcs: 110, FPTypes: 9, Callers: 18, Switches: 2},
		Source: `
enum { WORK = 40, QUBITS = 6, STATES = 64 };

struct qreg {
	int width;
	void (*collapse)(int);       // measurement hook
	double re[STATES];
	double im[STATES];
};

static void collapse_noop(int s) {}

// The paper's libquantum K1: a gate callback registered with an
// incompatible type (kept dead; the 1-line fix retypes it).
typedef void (*gate_hook)(int);
static void bad_hook(long q) {}
static gate_hook dead_hook = (gate_hook)bad_hook;                      // K1 (dead)

static struct qreg *qreg_new(void) {
	struct qreg *r = (struct qreg*)malloc(sizeof(struct qreg));        // MF
	r->width = QUBITS;
	r->collapse = collapse_noop;
	for (int s = 0; s < STATES; s++) { r->re[s] = 0.0; r->im[s] = 0.0; }
	r->re[0] = 1.0;
	return r;
}

// "Hadamard-like" rotation on one qubit.
static void rot(struct qreg *r, int q) {
	double inv = 0.7071067811865475;
	for (int s = 0; s < STATES; s++) {
		if ((s & (1 << q)) == 0) {
			int t = s | (1 << q);
			double ar = r->re[s];
			double ai = r->im[s];
			double br = r->re[t];
			double bi = r->im[t];
			r->re[s] = (ar + br) * inv;
			r->im[s] = (ai + bi) * inv;
			r->re[t] = (ar - br) * inv;
			r->im[t] = (ai - bi) * inv;
		}
	}
}

static void cnot(struct qreg *r, int c, int t) {
	for (int s = 0; s < STATES; s++) {
		if ((s & (1 << c)) != 0 && (s & (1 << t)) == 0) {
			int u = s | (1 << t);
			double tr = r->re[s];
			double ti = r->im[s];
			r->re[s] = r->re[u];
			r->im[s] = r->im[u];
			r->re[u] = tr;
			r->im[u] = ti;
		}
	}
}

static long norm_fixed(struct qreg *r) {
	double n = 0.0;
	for (int s = 0; s < STATES; s++)
		n += r->re[s] * r->re[s] + r->im[s] * r->im[s];
	return (long)(n * 1000000.0);
}

int main(void) {
	long acc = 0;
	struct qreg *r = qreg_new();
	for (int it = 0; it < WORK; it++) {
		rot(r, it % QUBITS);
		cnot(r, it % QUBITS, (it + 1) % QUBITS);
		if (it % 5 == 0) rot(r, (it + 2) % QUBITS);
		r->collapse(it);
		acc += norm_fixed(r) + (long)(r->re[it % STATES] * 1000.0);
		acc &= 0xFFFFFFF;
	}
	if (dead_hook == 0) acc++;
	free(r);                                                           // MF
	printf("libquantum: %ld\n", acc);
	return 0;
}
`,
	}
}

// H264ref models the video encoder: 4x4 integer transform,
// quantization, and SAD-based mode decision through a prediction-mode
// function-pointer table (as the original's prediction dispatch). Its
// malloc'ed macroblock context produces the MF findings.
func H264ref() Workload {
	return Workload{
		Name:     "h264ref",
		Work:     40,
		TestWork: 4,
		Gen:      GenParams{Funcs: 420, FPTypes: 22, Callers: 60, Switches: 10},
		Source: `
enum { WORK = 40, BS = 4 };

struct mbctx {
	int qp;
	void (*store)(int);         // reconstruction hook
	int blk[BS][BS];
	int coef[BS][BS];
};

static void store_noop(int x) {}

static struct mbctx *mb_new(int qp) {
	struct mbctx *m = (struct mbctx*)malloc(sizeof(struct mbctx));     // MF
	m->qp = qp;
	m->store = store_noop;
	return m;
}

// prediction modes through a dispatch table
typedef int (*pred_fn)(int, int);
static int pred_dc(int x, int y) { return 128; }
static int pred_h(int x, int y) { return 100 + y * 8; }
static int pred_v(int x, int y) { return 100 + x * 8; }
static int pred_plane(int x, int y) { return 96 + x * 4 + y * 4; }
static pred_fn preds[4] = {pred_dc, pred_h, pred_v, pred_plane};

static void transform4x4(struct mbctx *m) {
	int tmp[BS][BS];
	for (int i = 0; i < BS; i++) {
		int s03 = m->blk[i][0] + m->blk[i][3];
		int d03 = m->blk[i][0] - m->blk[i][3];
		int s12 = m->blk[i][1] + m->blk[i][2];
		int d12 = m->blk[i][1] - m->blk[i][2];
		tmp[i][0] = s03 + s12;
		tmp[i][2] = s03 - s12;
		tmp[i][1] = 2 * d03 + d12;
		tmp[i][3] = d03 - 2 * d12;
	}
	for (int j = 0; j < BS; j++) {
		int s03 = tmp[0][j] + tmp[3][j];
		int d03 = tmp[0][j] - tmp[3][j];
		int s12 = tmp[1][j] + tmp[2][j];
		int d12 = tmp[1][j] - tmp[2][j];
		m->coef[0][j] = s03 + s12;
		m->coef[2][j] = s03 - s12;
		m->coef[1][j] = 2 * d03 + d12;
		m->coef[3][j] = d03 - 2 * d12;
	}
}

static long quant_sum(struct mbctx *m) {
	long s = 0;
	for (int i = 0; i < BS; i++)
		for (int j = 0; j < BS; j++) {
			int q = m->coef[i][j] / (m->qp + 1);
			s += (long)(q < 0 ? -q : q);
		}
	return s;
}

static long sad_mode(struct mbctx *m, int mode, int base) {
	long sad = 0;
	for (int i = 0; i < BS; i++)
		for (int j = 0; j < BS; j++) {
			int p = preds[mode](i, j);
			int d = (base + i * 16 + j * 5) - p;
			sad += (long)(d < 0 ? -d : d);
		}
	return sad;
}

int main(void) {
	long acc = 0;
	struct mbctx *m = mb_new(6);
	for (int it = 0; it < WORK; it++) {
		unsigned long st = (unsigned long)(it * 2654435761u + 99);
		for (int i = 0; i < BS; i++)
			for (int j = 0; j < BS; j++) {
				st = st * 1103515245 + 12345;
				m->blk[i][j] = (int)((st >> 18) & 255) - 128;
			}
		transform4x4(m);
		acc += quant_sum(m);
		// choose the best prediction mode (indirect calls)
		long best = 1 << 30;
		int bestMode = 0;
		for (int mode = 0; mode < 4; mode++) {
			long sad = sad_mode(m, mode, (int)(st & 255));
			if (sad < best) { best = sad; bestMode = mode; }
		}
		m->store(bestMode);
		acc += best + bestMode;
		acc &= 0xFFFFFFF;
	}
	free(m);                                                           // MF
	printf("h264ref: %ld\n", acc);
	return 0;
}
`,
	}
}
