package workload_test

import (
	"fmt"
	"strings"
	"testing"

	"mcfi/internal/analyzer"
	"mcfi/internal/toolchain"
	"mcfi/internal/visa"
	"mcfi/internal/workload"
)

// TestAllWorkloadsDifferential builds and runs every benchmark in all
// four configurations and requires identical output and a zero exit
// code — the instrumented build must be semantics-preserving.
func TestAllWorkloadsDifferential(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			var ref string
			for _, profile := range []visa.Profile{visa.Profile64, visa.Profile32} {
				for _, instr := range []bool{false, true} {
					b := toolchain.New(
						toolchain.WithProfile(profile),
						toolchain.WithInstrument(instr),
					)
					code, out, _, err := b.Run(2_000_000_000, w.TestSource())
					if err != nil {
						t.Fatalf("%s instr=%v: %v", profile, instr, err)
					}
					if code != 0 {
						t.Fatalf("%s instr=%v: exit %d (out %q)", profile, instr, code, out)
					}
					if !strings.HasPrefix(out, w.Name+":") {
						t.Fatalf("%s instr=%v: unexpected output %q", profile, instr, out)
					}
					if ref == "" {
						ref = out
					} else if out != ref {
						t.Fatalf("%s instr=%v: output %q differs from reference %q",
							profile, instr, out, ref)
					}
				}
			}
			t.Logf("%s -> %s", w.Name, strings.TrimSpace(ref))
		})
	}
}

// TestWorkloadViolationShape checks that the analyzer findings follow
// the paper's Table 1 shape: perlbench and gcc carry the most
// violations; mcf, gobmk, sjeng, and lbm are clean.
func TestWorkloadViolationShape(t *testing.T) {
	reps := map[string]*analyzer.Report{}
	for _, w := range workload.All() {
		u, err := toolchain.New().Analyze(w.TestSource())
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		reps[w.Name] = analyzer.Analyze(u)
	}
	for _, clean := range []string{"mcf", "gobmk", "sjeng", "lbm"} {
		if reps[clean].VBE != 0 {
			t.Errorf("%s should have no C1 violations, got %d: %v",
				clean, reps[clean].VBE, reps[clean].Findings)
		}
	}
	for _, dirty := range []string{"perlbench", "gcc", "bzip2", "libquantum", "milc"} {
		if reps[dirty].VBE == 0 {
			t.Errorf("%s should have C1 violations (Table 1 shape)", dirty)
		}
	}
	if reps["perlbench"].VBE < reps["hmmer"].VBE {
		t.Error("perlbench should out-violate hmmer (Table 1 shape)")
	}
	// Only the five benchmarks of Table 2 keep residual violations.
	for _, resid := range []string{"perlbench", "bzip2", "gcc", "libquantum", "milc"} {
		if reps[resid].VAE == 0 {
			t.Errorf("%s should have residual (VAE) cases, per Table 2", resid)
		}
	}
	for _, noResid := range []string{"hmmer", "h264ref", "sphinx3"} {
		if reps[noResid].VAE != 0 {
			t.Errorf("%s should have all violations eliminated, got VAE=%d: %v",
				noResid, reps[noResid].VAE, reps[noResid].Findings)
		}
	}
	// K1 cases exist only where the paper reports them, and all of
	// ours are dead code (shipping sources are "fixed").
	for name, rep := range reps {
		switch name {
		case "perlbench", "gcc", "libquantum":
			if rep.K1 == 0 {
				t.Errorf("%s should carry (dead) K1 cases", name)
			}
		default:
			if rep.K1 != 0 {
				t.Errorf("%s should have no K1 cases, got %d", name, rep.K1)
			}
		}
	}
}

// TestGenerateModuleCompilesAndLinks checks the Table 3 scaling
// generator produces valid modules that link with a workload.
func TestGenerateModuleCompilesAndLinks(t *testing.T) {
	w, _ := workload.ByName("mcf")
	gen := workload.GenerateModule("mcf", 7, workload.GenParams{
		Funcs: 60, FPTypes: 6, Callers: 10, Switches: 3,
	})
	code, out, _, err := toolchain.New(
		toolchain.WithProfile(visa.Profile64),
		toolchain.WithInstrumentation(),
	).Run(2_000_000_000, w.TestSource(), gen)
	if err != nil {
		t.Fatalf("link with generated module: %v", err)
	}
	if code != 0 || !strings.HasPrefix(out, "mcf:") {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestGenerateModuleDeterministic(t *testing.T) {
	a := workload.GenerateModule("x", 3, workload.GenParams{Funcs: 20, FPTypes: 4, Callers: 5, Switches: 2})
	b := workload.GenerateModule("x", 3, workload.GenParams{Funcs: 20, FPTypes: 4, Callers: 5, Switches: 2})
	if a.Text != b.Text {
		t.Error("generator must be deterministic for equal seeds")
	}
	c := workload.GenerateModule("x", 4, workload.GenParams{Funcs: 20, FPTypes: 4, Callers: 5, Switches: 2})
	if a.Text == c.Text {
		t.Error("different seeds should differ")
	}
}

func TestSourceWithWork(t *testing.T) {
	w, ok := workload.ByName("perlbench")
	if !ok {
		t.Fatal("perlbench missing")
	}
	scaled := w.SourceWithWork(7)
	if !strings.Contains(scaled, "WORK = 7") {
		t.Error("WORK not rescaled")
	}
	if w.SourceWithWork(0) != w.Source {
		t.Error("zero keeps default")
	}
}

func TestByName(t *testing.T) {
	if _, ok := workload.ByName("nope"); ok {
		t.Error("unknown name should fail")
	}
	names := map[string]bool{}
	for _, w := range workload.All() {
		if names[w.Name] {
			t.Errorf("duplicate workload %s", w.Name)
		}
		names[w.Name] = true
	}
	if len(names) != 12 {
		t.Errorf("suite has %d workloads, want 12", len(names))
	}
}

// TestInstrumentationOverheadPerWorkload measures the Fig. 5 metric at
// test scale: instrumented instruction counts should exceed baseline
// by a modest factor.
func TestInstrumentationOverheadPerWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var rows []string
	for _, w := range workload.All() {
		_, _, base, err := toolchain.New(
			toolchain.WithProfile(visa.Profile64),
		).Run(2_000_000_000, w.TestSource())
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		_, _, inst, err := toolchain.New(
			toolchain.WithProfile(visa.Profile64),
			toolchain.WithInstrumentation(),
		).Run(2_000_000_000, w.TestSource())
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		ov := float64(inst-base) / float64(base) * 100
		rows = append(rows, fmt.Sprintf("%-11s base=%-10d mcfi=%-10d overhead=%5.2f%%",
			w.Name, base, inst, ov))
		if inst <= base {
			t.Errorf("%s: instrumentation did not add instructions", w.Name)
		}
		if ov > 60 {
			t.Errorf("%s: overhead %.1f%% implausible", w.Name, ov)
		}
	}
	for _, r := range rows {
		t.Log(r)
	}
}
