package workload

// Milc models the lattice-QCD workload: 3x3 complex matrix algebra
// over a small lattice of sites, accumulating a plaquette-like trace.
// The site vector is malloc'ed through a struct holding a gauge-fixing
// callback (MF), and two handle round-trips survive as K2 — matching
// Table 1's milc row (MF 3, VAE 5).
func Milc() Workload {
	return Workload{
		Name:     "milc",
		Work:     30,
		TestWork: 3,
		Gen:      GenParams{Funcs: 170, FPTypes: 12, Callers: 28, Switches: 2},
		Source: `
enum { WORK = 30, SITES = 16 };

// 3x3 complex matrix: [row][col][re/im]
struct su3 { double m[3][3][2]; };

struct lattice {
	int n;
	void (*gauge_fix)(int);      // callback, as milc's generic hooks
	struct su3 links[SITES];
};

static void fix_noop(int s) {}

static struct lattice *lat_new(void) {
	struct lattice *l = (struct lattice*)malloc(sizeof(struct lattice)); // MF
	l->n = SITES;
	l->gauge_fix = fix_noop;
	return l;
}

static void *lat_handle;   // opaque handle (K2 round trip)

static void mat_mul(struct su3 *a, struct su3 *b, struct su3 *c) {
	for (int i = 0; i < 3; i++) {
		for (int j = 0; j < 3; j++) {
			double re = 0.0;
			double im = 0.0;
			for (int k = 0; k < 3; k++) {
				double ar = a->m[i][k][0];
				double ai = a->m[i][k][1];
				double br = b->m[k][j][0];
				double bi = b->m[k][j][1];
				re += ar * br - ai * bi;
				im += ar * bi + ai * br;
			}
			c->m[i][j][0] = re;
			c->m[i][j][1] = im;
		}
	}
}

static double re_trace(struct su3 *a) {
	return a->m[0][0][0] + a->m[1][1][0] + a->m[2][2][0];
}

static void seed_links(struct lattice *l, unsigned long st) {
	for (int s = 0; s < l->n; s++) {
		for (int i = 0; i < 3; i++)
			for (int j = 0; j < 3; j++) {
				st = st * 6364136223846793005 + 1442695040888963407;
				double v = (double)(long)((st >> 40) & 1023) / 1024.0 - 0.5;
				l->links[s].m[i][j][0] = i == j ? 1.0 + v * 0.1 : v * 0.2;
				st = st * 6364136223846793005 + 1442695040888963407;
				double w = (double)(long)((st >> 40) & 1023) / 1024.0 - 0.5;
				l->links[s].m[i][j][1] = w * 0.2;
			}
	}
}

int main(void) {
	long acc = 0;
	struct lattice *l = lat_new();
	lat_handle = (void*)l;                                // K2: fp-struct* -> void*
	for (int it = 0; it < WORK; it++) {
		struct lattice *ll = (struct lattice*)lat_handle; // K2: void* -> fp-struct*
		seed_links(ll, (unsigned long)(it * 77 + 5));
		double plaq = 0.0;
		struct su3 tmp;
		struct su3 tmp2;
		for (int s = 0; s < ll->n; s++) {
			int s2 = (s + 1) % ll->n;
			int s3 = (s + 4) % ll->n;
			mat_mul(&ll->links[s], &ll->links[s2], &tmp);
			mat_mul(&tmp, &ll->links[s3], &tmp2);
			plaq += re_trace(&tmp2);
		}
		ll->gauge_fix(it);
		acc += (long)(plaq * 1000.0);
		acc &= 0xFFFFFFF;
	}
	free(l);                                              // MF
	printf("milc: %ld\n", acc);
	return 0;
}
`,
	}
}

// Lbm models the fluid-dynamics workload: a simplified D2Q5
// lattice-Boltzmann relaxation over a small grid with bounce-back
// walls. Pure double-precision stencil code; no C1 violations.
func Lbm() Workload {
	return Workload{
		Name:     "lbm",
		Work:     40,
		TestWork: 4,
		Gen:      GenParams{Funcs: 60, FPTypes: 5, Callers: 10, Switches: 1},
		Source: `
enum { WORK = 40, NX = 16, NY = 12, Q = 5 };

// distribution functions: f[dir][x][y], directions: rest,E,W,N,S
static double fcur[Q][NX][NY];
static double fnew[Q][NX][NY];
static int solid[NX][NY];

static double weight(int d) { return d == 0 ? 0.4 : 0.15; }

static void init_field(void) {
	for (int x = 0; x < NX; x++) {
		for (int y = 0; y < NY; y++) {
			solid[x][y] = (y == 0 || y == NY - 1) ? 1 : 0;
			if (x > 5 && x < 9 && y > 3 && y < 7) solid[x][y] = 1;  // obstacle
			for (int d = 0; d < Q; d++)
				fcur[d][x][y] = weight(d) * (1.0 + 0.01 * (double)(x + y));
		}
	}
}

static int dx(int d) {
	switch (d) {
	case 1: return 1;
	case 2: return -1;
	default: return 0;
	}
}
static int dy(int d) {
	switch (d) {
	case 3: return 1;
	case 4: return -1;
	default: return 0;
	}
}
static int opposite(int d) {
	switch (d) {
	case 1: return 2;
	case 2: return 1;
	case 3: return 4;
	case 4: return 3;
	default: return 0;
	}
}

static void step(void) {
	double omega = 1.2;
	// collide
	for (int x = 0; x < NX; x++) {
		for (int y = 0; y < NY; y++) {
			if (solid[x][y]) continue;
			double rho = 0.0;
			double ux = 0.0;
			double uy = 0.0;
			for (int d = 0; d < Q; d++) {
				rho += fcur[d][x][y];
				ux += fcur[d][x][y] * (double)dx(d);
				uy += fcur[d][x][y] * (double)dy(d);
			}
			ux = ux / rho + 0.002;   // slight body force driving flow
			uy = uy / rho;
			for (int d = 0; d < Q; d++) {
				double cu = (double)dx(d) * ux + (double)dy(d) * uy;
				double feq = weight(d) * rho * (1.0 + 3.0 * cu);
				fcur[d][x][y] += omega * (feq - fcur[d][x][y]);
			}
		}
	}
	// stream with bounce-back
	for (int x = 0; x < NX; x++) {
		for (int y = 0; y < NY; y++) {
			for (int d = 0; d < Q; d++) {
				int nx = (x + dx(d) + NX) % NX;
				int ny = y + dy(d);
				if (ny < 0 || ny >= NY || solid[nx][ny]) {
					fnew[opposite(d)][x][y] = fcur[d][x][y];
				} else {
					fnew[d][nx][ny] = fcur[d][x][y];
				}
			}
		}
	}
	for (int d = 0; d < Q; d++)
		for (int x = 0; x < NX; x++)
			for (int y = 0; y < NY; y++)
				fcur[d][x][y] = fnew[d][x][y];
}

int main(void) {
	long acc = 0;
	for (int it = 0; it < WORK; it++) {
		init_field();
		for (int s = 0; s < 12; s++) step();
		double mass = 0.0;
		double mom = 0.0;
		for (int x = 0; x < NX; x++)
			for (int y = 0; y < NY; y++)
				for (int d = 0; d < Q; d++) {
					mass += fcur[d][x][y];
					mom += fcur[d][x][y] * (double)dx(d);
				}
		acc += (long)(mass * 100.0) + (long)(mom * 10000.0);
		acc &= 0xFFFFFFF;
	}
	printf("lbm: %ld\n", acc);
	return 0;
}
`,
	}
}

// Sphinx3 models the speech-recognition workload: Gaussian
// mixture-model scoring of feature frames with a fixed-point log-add,
// plus a simple beam over senone scores. The malloc'ed model with its
// log-math callback yields MF findings and one SU.
func Sphinx3() Workload {
	return Workload{
		Name:     "sphinx3",
		Work:     30,
		TestWork: 3,
		Gen:      GenParams{Funcs: 230, FPTypes: 13, Callers: 34, Switches: 4},
		Source: `
enum { WORK = 30, DIM = 8, MIX = 4, SEN = 10, FRAMES = 12 };

struct gmm {
	int nmix;
	long (*logadd)(long, long);          // log-math hook
	double mean[MIX][DIM];
	double ivar[MIX][DIM];
	long mixw[MIX];
};

static long logadd_approx(long a, long b) {
	long hi = a > b ? a : b;
	long lo = a > b ? b : a;
	long d = hi - lo;
	if (d > 512) return hi;
	return hi + (512 - d) / 8;
}

static struct gmm *models[SEN];

static struct gmm *gmm_new(unsigned long st) {
	struct gmm *g = (struct gmm*)malloc(sizeof(struct gmm));          // MF
	g->nmix = MIX;
	g->logadd = 0;                                                    // SU
	g->logadd = logadd_approx;
	for (int m = 0; m < MIX; m++) {
		g->mixw[m] = (long)(st % 64);
		for (int d = 0; d < DIM; d++) {
			st = st * 2862933555777941757 + 3037000493;
			g->mean[m][d] = (double)(long)((st >> 40) & 255) / 32.0;
			g->ivar[m][d] = 0.5 + (double)(long)((st >> 48) & 15) / 16.0;
		}
	}
	return g;
}

static long score_frame(struct gmm *g, double *feat) {
	long total = -100000;
	for (int m = 0; m < g->nmix; m++) {
		double d2 = 0.0;
		for (int d = 0; d < DIM; d++) {
			double diff = feat[d] - g->mean[m][d];
			d2 += diff * diff * g->ivar[m][d];
		}
		long sc = g->mixw[m] - (long)(d2 * 16.0);
		total = g->logadd(total, sc);
	}
	return total;
}

int main(void) {
	long acc = 0;
	for (int s = 0; s < SEN; s++) models[s] = gmm_new((unsigned long)(s * 131 + 17));
	double feat[DIM];
	for (int it = 0; it < WORK; it++) {
		unsigned long st = (unsigned long)(it * 41 + 3);
		long beam_best = -1000000;
		for (int f = 0; f < FRAMES; f++) {
			for (int d = 0; d < DIM; d++) {
				st = st * 1103515245 + 12345;
				feat[d] = (double)(long)((st >> 16) & 255) / 32.0;
			}
			long best = -1000000;
			int besti = 0;
			for (int s = 0; s < SEN; s++) {
				long sc = score_frame(models[s], feat);
				if (sc > best) { best = sc; besti = s; }
			}
			acc += best + besti;
			if (best > beam_best) beam_best = best;
		}
		acc += beam_best;
		acc &= 0xFFFFFFF;
	}
	for (int s = 0; s < SEN; s++) free(models[s]);                    // MF
	printf("sphinx3: %ld\n", acc);
	return 0;
}
`,
	}
}
