// Package workload provides the reproduction's stand-in for the
// SPECCPU2006 C benchmarks: twelve MiniC programs named after the
// paper's suite, each a small but real kernel in the spirit of the
// original (perlbench: a string/bytecode interpreter; bzip2: RLE+MTF
// compression; gcc: an expression compiler; mcf: min-cost flow; gobmk:
// board evaluation; hmmer: Viterbi DP; sjeng: game-tree search;
// libquantum: a quantum register; h264ref: block transforms; milc:
// complex matrix lattice; lbm: a lattice-Boltzmann stencil; sphinx3:
// Gaussian scoring).
//
// The sources deliberately embed the C1-violation patterns the paper's
// Table 1 catalogues (UC, DC, MF, SU, NF, K1, K2) in roughly the same
// relative shape — perlbench and gcc carry most of them; mcf, gobmk,
// sjeng and lbm are clean — so the analyzer experiment classifies real
// code rather than synthetic annotations. Every program self-checks
// and prints a deterministic checksum, which the differential tests
// compare across baseline/instrumented builds and both profiles.
//
// GenerateModule additionally synthesizes link-only modules with
// parameterized numbers of functions, function-pointer families, and
// switches, used to scale the static CFG statistics toward the paper's
// Table 3 magnitudes.
package workload

import (
	"fmt"
	"regexp"
	"strings"

	"mcfi/internal/toolchain"
)

// Workload is one benchmark program.
type Workload struct {
	Name   string
	Source string
	// Work is the default iteration scale ("reference input").
	Work int
	// TestWork is a reduced scale for unit tests.
	TestWork int
	// Gen configures the Table 3 scaling module for this benchmark
	// (numbers of synthetic functions/types/switches).
	Gen GenParams
}

// GenParams sizes a synthetic scaling module.
type GenParams struct {
	Funcs    int // total synthetic functions
	FPTypes  int // distinct function-pointer families
	Callers  int // functions full of direct calls (ret-site factories)
	Switches int // jump-table switches
}

var workRe = regexp.MustCompile(`WORK = \d+`)

// SourceWithWork returns the program text with its WORK constant
// replaced by n (n <= 0 keeps the default).
func (w Workload) SourceWithWork(n int) string {
	if n <= 0 {
		return w.Source
	}
	return workRe.ReplaceAllString(w.Source, fmt.Sprintf("WORK = %d", n))
}

// TestSource returns the reduced-scale source for quick tests.
func (w Workload) TestSource() toolchain.Source {
	return toolchain.Source{Name: w.Name, Text: w.SourceWithWork(w.TestWork)}
}

// RefSource returns the reference-scale source for benchmarks.
func (w Workload) RefSource() toolchain.Source {
	return toolchain.Source{Name: w.Name, Text: w.SourceWithWork(w.Work)}
}

// All returns the twelve benchmarks in the paper's Table order.
func All() []Workload {
	return []Workload{
		Perlbench(), Bzip2(), Gcc(), Mcf(), Gobmk(), Hmmer(),
		Sjeng(), Libquantum(), H264ref(), Milc(), Lbm(), Sphinx3(),
	}
}

// ByName returns a workload by its benchmark name.
func ByName(name string) (Workload, bool) {
	for _, w := range All() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// GenerateModule synthesizes a deterministic link-only MiniC module
// with the requested static structure. The module exports one root
// function ("<name>_gen_root") so linkers keep it; nothing calls it at
// runtime — it exists to scale static CFG statistics (IBs, IBTs, EQCs)
// toward Table 3 magnitudes.
func GenerateModule(name string, seed uint64, p GenParams) toolchain.Source {
	rng := seed*6364136223846793005 + 1442695040888963407
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		if n <= 0 {
			return 0
		}
		return int((rng >> 1) % uint64(n))
	}

	if p.FPTypes < 1 {
		p.FPTypes = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "// synthetic scaling module %s (seed %d)\n", name, seed)

	// Type families: param shapes distinguish the function types.
	shapes := make([]string, p.FPTypes)
	protos := make([]string, p.FPTypes)
	for t := 0; t < p.FPTypes; t++ {
		nargs := 1 + t%4
		var params []string
		for a := 0; a < nargs; a++ {
			switch (t + a) % 3 {
			case 0:
				params = append(params, "long")
			case 1:
				params = append(params, "int")
			default:
				params = append(params, "long*")
			}
		}
		ret := "long"
		if t%5 == 1 {
			ret = "int"
		}
		shapes[t] = strings.Join(params, ", ")
		protos[t] = ret
	}

	// Functions, assigned round-robin to families.
	funcsOfType := make([][]string, p.FPTypes)
	for i := 0; i < p.Funcs; i++ {
		t := i % p.FPTypes
		fname := fmt.Sprintf("%s_f%d", name, i)
		funcsOfType[t] = append(funcsOfType[t], fname)
		var args []string
		for a, pt := range strings.Split(shapes[t], ", ") {
			args = append(args, fmt.Sprintf("%s a%d", pt, a))
		}
		body := fmt.Sprintf("return (%s)(a0 + %d);", protos[t], next(1000))
		if strings.HasPrefix(shapes[t], "long*") {
			body = fmt.Sprintf("return (%s)(*a0 + %d);", protos[t], next(1000))
		}
		fmt.Fprintf(&b, "static %s %s(%s) { %s }\n", protos[t], fname,
			strings.Join(args, ", "), body)
	}

	// Function-pointer tables: make a deterministic subset
	// address-taken per family.
	for t := 0; t < p.FPTypes; t++ {
		fns := funcsOfType[t]
		if len(fns) == 0 {
			continue
		}
		take := 1 + len(fns)*3/4
		fmt.Fprintf(&b, "static %s (*%s_tab%d[%d])(%s) = {", protos[t], name, t, take, shapes[t])
		for i := 0; i < take; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(fns[i%len(fns)])
		}
		b.WriteString("};\n")
	}

	// Callers: direct-call chains manufacture return sites, plus one
	// indirect call per family to manufacture IBCall branches.
	for c := 0; c < p.Callers; c++ {
		fmt.Fprintf(&b, "static long %s_caller%d(long x) {\n\tlong acc = x;\n", name, c)
		calls := 4 + next(8)
		for k := 0; k < calls && p.Funcs > 0; k++ {
			t := (c + k) % p.FPTypes
			fns := funcsOfType[t]
			if len(fns) == 0 {
				continue
			}
			fn := fns[next(len(fns))]
			var args []string
			for a, pt := range strings.Split(shapes[t], ", ") {
				switch pt {
				case "long*":
					args = append(args, "&acc")
				default:
					args = append(args, fmt.Sprintf("(%s)(acc + %d)", pt, a))
				}
			}
			fmt.Fprintf(&b, "\tacc += (long)%s(%s);\n", fn, strings.Join(args, ", "))
		}
		// One indirect call through the family table.
		t := c % p.FPTypes
		if len(funcsOfType[t]) > 0 {
			var args []string
			for a, pt := range strings.Split(shapes[t], ", ") {
				switch pt {
				case "long*":
					args = append(args, "&acc")
				default:
					args = append(args, fmt.Sprintf("(%s)(acc + %d)", pt, a))
				}
			}
			fmt.Fprintf(&b, "\tacc += (long)%s_tab%d[(int)(acc & 1)](%s);\n",
				name, t, strings.Join(args, ", "))
		}
		// End in tail position through family 0 (long(long)): on the
		// 64-bit profile these become real tail calls and tail jumps,
		// which is what shrinks the x86-64 equivalence-class counts in
		// the paper's Table 3.
		if len(funcsOfType[0]) > 0 && shapes[0] == "long" && protos[0] == "long" {
			if c%2 == 0 {
				fmt.Fprintf(&b, "\treturn %s(acc);\n}\n",
					funcsOfType[0][c%len(funcsOfType[0])])
			} else {
				fmt.Fprintf(&b, "\treturn %s_tab0[(int)(acc & 1)](acc);\n}\n", name)
			}
			continue
		}
		b.WriteString("\treturn acc;\n}\n")
	}

	// Switches: dense case sets become jump tables.
	for s := 0; s < p.Switches; s++ {
		cases := 5 + next(10)
		fmt.Fprintf(&b, "static int %s_sw%d(int x) {\n\tswitch (x) {\n", name, s)
		for k := 0; k < cases; k++ {
			fmt.Fprintf(&b, "\tcase %d: return %d;\n", k, next(100))
		}
		fmt.Fprintf(&b, "\tdefault: return -1;\n\t}\n}\n")
	}

	// Root keeps everything referenced.
	fmt.Fprintf(&b, "long %s_gen_root(long x) {\n\tlong acc = x;\n", name)
	for c := 0; c < p.Callers; c++ {
		fmt.Fprintf(&b, "\tacc += %s_caller%d(acc);\n", name, c)
	}
	for s := 0; s < p.Switches; s++ {
		fmt.Fprintf(&b, "\tacc += %s_sw%d((int)(acc & 7));\n", name, s)
	}
	b.WriteString("\treturn acc;\n}\n")

	return toolchain.Source{Name: name + "_gen", Text: b.String()}
}
