package workload

// Perlbench models the SPEC interpreter workload: tagged scalar values
// (SVs) with physical subtyping, a bytecode loop dispatching through a
// function-pointer table, and string hashing. It carries the richest
// set of C1 patterns, as in the paper's Table 1: UC (sv upcasts), DC
// (tagged downcasts), MF (malloc), SU (NULL fp updates), NF (the
// XPVLV-style field peek), K2 (void* round trips), and one dead K1.
func Perlbench() Workload {
	return Workload{
		Name:     "perlbench",
		Work:     300,
		TestWork: 20,
		Gen:      GenParams{Funcs: 900, FPTypes: 40, Callers: 120, Switches: 12},
		Source: `
enum { WORK = 300 };

// --- tagged scalar values (physical subtyping, as perl's SV) ---
struct sv { int tag; int (*magic)(int); };
struct sv_int { int tag; int (*magic)(int); long iv; };
struct sv_str { int tag; int (*magic)(int); char buf[24]; long len; };

static int magic_int(int x) { return x + 1; }
static int magic_str(int x) { return x + 2; }

static struct sv *new_sv_int(long v) {
	struct sv_int *s = (struct sv_int*)malloc(sizeof(struct sv_int)); // MF
	s->tag = 1; s->magic = magic_int; s->iv = v;
	return (struct sv*)s;                                             // UC
}
static struct sv *new_sv_str(char *src) {
	struct sv_str *s = (struct sv_str*)malloc(sizeof(struct sv_str)); // MF
	s->tag = 2; s->magic = magic_str;
	strcpy(s->buf, src);
	s->len = strlen(src);
	return (struct sv*)s;                                             // UC
}
static long sv_value(struct sv *v) {
	if (v->tag == 1) return ((struct sv_int*)v)->iv;                  // DC (tagged)
	return ((struct sv_str*)v)->len;                                  // DC (tagged)
}

// NF: a cast whose result only touches a non-fp field.
struct xpvlv { long targlen; int (*vtbl)(int); };
struct svslot { void *any; };
static long peek_targlen(struct svslot *s) {
	return ((struct xpvlv*)s->any)->targlen;                          // NF
}

// --- opcode dispatch ---
typedef long (*op_fn)(long, long);
static long op_add(long a, long b) { return a + b; }
static long op_mul(long a, long b) { return a * 3 + b; }
static long op_xor(long a, long b) { return a ^ b; }
static long op_rot(long a, long b) { return ((a << (b & 7)) | (a >> 3)) & 0xFFFFFF; }
static op_fn optab[4] = {op_add, op_mul, op_xor, op_rot};

static op_fn cur_op = 0;                                              // SU (NULL init)
static void *saved_op;                                                // K2 stash slot

// Dead K1: a wrong-typed function pointer that is never invoked (the
// gcc-style dead case from Table 2).
static long op_wrong(int a) { return a; }
static op_fn dead_slot = (op_fn)op_wrong;                             // K1 (dead)

static unsigned long hash_str(char *s) {
	unsigned long h = 5381;
	long i = 0;
	while (s[i]) {
		h = h * 33 + (unsigned long)(unsigned char)s[i];
		i++;
	}
	return h;
}

int main(void) {
	char *words[4];
	words[0] = "my"; words[1] = "hash"; words[2] = "keys"; words[3] = "perl";
	struct sv *vals[8];
	for (int i = 0; i < 4; i++) vals[i] = new_sv_int((long)(i * 7 + 1));
	for (int i = 0; i < 4; i++) vals[4 + i] = new_sv_str(words[i]);

	long acc = 0;
	for (int it = 0; it < WORK; it++) {
		for (int i = 0; i < 8; i++) {
			struct sv *v = vals[i];
			long x = sv_value(v);
			cur_op = optab[(it + i) & 3];
			saved_op = cur_op;                  // K2: fp -> void*
			op_fn back = (op_fn)saved_op;       // K2: void* -> fp
			acc = back(acc, x + v->magic(i));
			acc += (long)hash_str(words[i & 3]) & 0xFFF;
		}
	}
	struct xpvlv lv;
	lv.targlen = 99; lv.vtbl = magic_int;
	struct svslot slot;
	slot.any = (void*)&lv;
	acc += peek_targlen(&slot);
	if (dead_slot == 0) acc++;
	printf("perlbench: %ld\n", acc & 0xFFFFFFF);
	return 0;
}
`,
	}
}

// Bzip2 models the compressor: run-length encoding plus move-to-front
// over a deterministic pseudo-text, with a bz_stream-like struct whose
// allocator function pointers produce the MF/SU/K2 casts the paper
// found.
func Bzip2() Workload {
	return Workload{
		Name:     "bzip2",
		Work:     60,
		TestWork: 5,
		Gen:      GenParams{Funcs: 90, FPTypes: 8, Callers: 16, Switches: 3},
		Source: `
enum { WORK = 60, N = 2048 };

struct stream {
	void *(*alloc_fn)(long);
	void (*free_fn)(void *);
	unsigned char *in;
	unsigned char *out;
	long in_len;
	long out_len;
};

static void *wrap_alloc(long n) { return malloc(n); }
static void wrap_free(void *p) { free(p); }

static struct stream *stream_new(void) {
	struct stream *s = (struct stream*)malloc(sizeof(struct stream)); // MF
	s->alloc_fn = wrap_alloc;
	s->free_fn = 0;                                                   // SU
	s->free_fn = wrap_free;
	s->in = (unsigned char*)s->alloc_fn(N);
	s->out = (unsigned char*)s->alloc_fn(2 * N + 16);
	s->in_len = N;
	s->out_len = 0;
	return s;
}

static void *handle_slot;  // opaque handle, as in bzlib's user data

static long rle_encode(struct stream *s) {
	long o = 0;
	long i = 0;
	while (i < s->in_len) {
		unsigned char c = s->in[i];
		long run = 1;
		while (i + run < s->in_len && s->in[i + run] == c && run < 255) run++;
		s->out[o] = c;
		s->out[o + 1] = (unsigned char)run;
		o += 2;
		i += run;
	}
	s->out_len = o;
	return o;
}

static int mtf_table[256];

static long mtf_transform(unsigned char *data, long n) {
	for (int i = 0; i < 256; i++) mtf_table[i] = i;
	long sum = 0;
	for (long i = 0; i < n; i++) {
		int c = (int)data[i];
		int j = 0;
		while (mtf_table[j] != c) j++;
		sum += j;
		while (j > 0) { mtf_table[j] = mtf_table[j - 1]; j--; }
		mtf_table[0] = c;
	}
	return sum;
}

int main(void) {
	struct stream *s = stream_new();
	handle_slot = (void*)s;                       // stash
	long acc = 0;
	unsigned long state = 12345;
	for (int round = 0; round < WORK; round++) {
		for (long i = 0; i < s->in_len; i++) {
			state = state * 1103515245 + 12345;
			// biased bytes so runs exist
			unsigned char c = (unsigned char)((state >> 20) & 7);
			s->in[i] = c;
		}
		struct stream *h = (struct stream*)handle_slot;
		long packed = rle_encode(h);
		acc += packed + mtf_transform(h->out, packed);
		acc &= 0xFFFFFFF;
	}
	s->free_fn((void*)s->in);
	s->free_fn((void*)s->out);
	free(s);                                      // MF (free)
	printf("bzip2: %ld\n", acc);
	return 0;
}
`,
	}
}

// Gcc models the compiler workload: a lexer and recursive-descent
// parser over arithmetic expressions, an AST with tagged subtyping, a
// constant folder dispatching through function pointers, bytecode
// emission, and a stack evaluator with a jump-table switch. It embeds
// the paper's gcc findings: the splay-tree K1 (shown fixed with the
// strcmp wrapper, §6), two dead K1s, plus DC/UC/MF/SU/NF/K2 cases.
func Gcc() Workload {
	return Workload{
		Name:     "gcc",
		Work:     120,
		TestWork: 8,
		Gen:      GenParams{Funcs: 2000, FPTypes: 90, Callers: 260, Switches: 30},
		Source: `
enum { WORK = 120 };

// --- AST with physical subtyping ---
struct node { int kind; };
struct num_node { int kind; long value; };
struct bin_node { int kind; int op; struct node *l; struct node *r; };

enum { K_NUM = 1, K_BIN = 2 };

static struct node *new_num(long v) {
	struct num_node *n = (struct num_node*)malloc(sizeof(struct num_node));
	n->kind = K_NUM; n->value = v;
	return (struct node*)n;                                            // UC
}
static struct node *new_bin(int op, struct node *l, struct node *r) {
	struct bin_node *n = (struct bin_node*)malloc(sizeof(struct bin_node));
	n->kind = K_BIN; n->op = op; n->l = l; n->r = r;
	return (struct node*)n;                                            // UC
}

// --- constant folding via fp dispatch ---
typedef long (*fold_fn)(long, long);
static long fold_add(long a, long b) { return a + b; }
static long fold_sub(long a, long b) { return a - b; }
static long fold_mul(long a, long b) { return a * b; }
static long fold_div(long a, long b) { if (b == 0) return 0; return a / b; }
static fold_fn folds[4] = {fold_add, fold_sub, fold_mul, fold_div};

static long eval_node(struct node *n) {
	if (n->kind == K_NUM) return ((struct num_node*)n)->value;         // DC
	struct bin_node *b = (struct bin_node*)n;                          // DC
	return folds[b->op](eval_node(b->l), eval_node(b->r));
}

// --- the splay-tree comparator, FIXED with a wrapper (paper §6) ---
static int cmp_keys(unsigned long a, unsigned long b) {
	return strcmp((char*)a, (char*)b);
}
static int (*key_cmp)(unsigned long, unsigned long) = cmp_keys;

// --- dead K1s: initialized, never used (Table 2's 14 gcc cases) ---
static long bad_target1(int x) { return x; }
static long bad_target2(int x, int y) { return x + y; }
static fold_fn dead1 = (fold_fn)bad_target1;                           // K1 (dead)
static fold_fn dead2 = (fold_fn)bad_target2;                           // K1 (dead)

// --- language-hook style record with a fp; only non-fp field read ---
struct lang_hooks { long langid; void (*init)(void); };
static long read_langid(void *hooks) {
	return ((struct lang_hooks*)hooks)->langid;                        // NF
}

static fold_fn pending = 0;                                            // SU
static void *spill;                                                   // K2 slot

// --- tiny parser over a generated expression string ---
static char *src_cur;
static long parse_expr(void);
static long parse_atom(void) {
	if (*src_cur == '(') {
		src_cur++;
		long v = parse_expr();
		src_cur++;  // ')'
		return v;
	}
	long v = 0;
	while (*src_cur >= '0' && *src_cur <= '9') {
		v = v * 10 + (*src_cur - '0');
		src_cur++;
	}
	return v;
}
static long parse_term(void) {
	long v = parse_atom();
	while (*src_cur == '*' || *src_cur == '/') {
		char op = *src_cur;
		src_cur++;
		long r = parse_atom();
		pending = folds[op == '*' ? 2 : 3];
		spill = pending;                         // K2: fp -> void*
		v = ((fold_fn)spill)(v, r);              // K2: void* -> fp
	}
	return v;
}
static long parse_expr(void) {
	long v = parse_term();
	while (*src_cur == '+' || *src_cur == '-') {
		char op = *src_cur;
		src_cur++;
		long r = parse_term();
		v = folds[op == '+' ? 0 : 1](v, r);
	}
	return v;
}

// --- bytecode evaluator (jump-table switch) ---
enum { OP_PUSH = 0, OP_ADD = 1, OP_SUB = 2, OP_MUL = 3, OP_DUP = 4, OP_SWAP = 5 };
static long run_bytecode(int *code, long *args, int n) {
	long stack[64];
	int sp = 0;
	for (int i = 0; i < n; i++) {
		switch (code[i]) {
		case OP_PUSH: stack[sp] = args[i]; sp++; break;
		case OP_ADD: sp--; stack[sp - 1] += stack[sp]; break;
		case OP_SUB: sp--; stack[sp - 1] -= stack[sp]; break;
		case OP_MUL: sp--; stack[sp - 1] *= stack[sp]; break;
		case OP_DUP: stack[sp] = stack[sp - 1]; sp++; break;
		case OP_SWAP: {
			long t = stack[sp - 1];
			stack[sp - 1] = stack[sp - 2];
			stack[sp - 2] = t;
			break;
		}
		default: break;
		}
	}
	return stack[0];
}

int main(void) {
	long acc = 0;
	char expr[64];
	for (int it = 0; it < WORK; it++) {
		// build "(a+b)*c+d/e" with varying digits
		long a = (long)(it % 9 + 1);
		strcpy(expr, "(0+0)*0+08/2");
		expr[1] = (char)('0' + (int)a);
		expr[3] = (char)('0' + (it * 3) % 10);
		expr[6] = (char)('0' + (it * 7) % 10);
		expr[8] = (char)('1' + it % 8);
		src_cur = expr;
		acc += parse_expr();

		struct node *t = new_bin(2, new_bin(0, new_num(a), new_num(it & 7)), new_num(3));
		acc += eval_node(t);
		free(t);

		int code[6];
		long args[6];
		code[0] = OP_PUSH; args[0] = a;
		code[1] = OP_PUSH; args[1] = it & 15;
		code[2] = OP_DUP;  args[2] = 0;
		code[3] = OP_MUL;  args[3] = 0;
		code[4] = OP_ADD;  args[4] = 0;
		code[5] = OP_PUSH; args[5] = 0;
		acc += run_bytecode(code, args, 6);
		acc &= 0xFFFFFFF;
	}
	char *ka = "alpha";
	char *kb = "beta";
	acc += (long)key_cmp((unsigned long)ka, (unsigned long)kb) & 3;   // K2 x2 (ptr->ulong)
	struct lang_hooks hooks;
	hooks.langid = 42; hooks.init = 0;                                 // SU
	acc += read_langid((void*)&hooks);
	if (dead1 == dead2) acc--;
	printf("gcc: %ld\n", acc);
	return 0;
}
`,
	}
}

// Mcf models the network-flow workload: successive shortest-path
// augmentation with Bellman-Ford over a fixed layered network. Pure
// integer pointer-chasing; like the original, it has no C1 violations.
func Mcf() Workload {
	return Workload{
		Name:     "mcf",
		Work:     40,
		TestWork: 4,
		Gen:      GenParams{Funcs: 80, FPTypes: 6, Callers: 14, Switches: 2},
		Source: `
enum { WORK = 40, NODES = 30, ARCS = 128 };

static int arc_from[ARCS];
static int arc_to[ARCS];
static long arc_cap[ARCS];
static long arc_cost[ARCS];
static long arc_flow[ARCS];
static int n_arcs;

static void add_arc(int u, int v, long cap, long cost) {
	arc_from[n_arcs] = u;
	arc_to[n_arcs] = v;
	arc_cap[n_arcs] = cap;
	arc_cost[n_arcs] = cost;
	arc_flow[n_arcs] = 0;
	n_arcs++;
}

static long dist[NODES];
static int pre[NODES];

// Bellman-Ford over residual arcs; returns 1 if sink reachable.
static int find_path(int src, int dst) {
	for (int i = 0; i < NODES; i++) { dist[i] = 1000000000; pre[i] = -1; }
	dist[src] = 0;
	for (int round = 0; round < NODES; round++) {
		int changed = 0;
		for (int a = 0; a < n_arcs; a++) {
			// forward residual
			if (arc_flow[a] < arc_cap[a]) {
				int u = arc_from[a];
				int v = arc_to[a];
				if (dist[u] + arc_cost[a] < dist[v]) {
					dist[v] = dist[u] + arc_cost[a];
					pre[v] = a;
					changed = 1;
				}
			}
			// backward residual
			if (arc_flow[a] > 0) {
				int u = arc_to[a];
				int v = arc_from[a];
				if (dist[u] - arc_cost[a] < dist[v]) {
					dist[v] = dist[u] - arc_cost[a];
					pre[v] = a + ARCS;   // mark reversed
					changed = 1;
				}
			}
		}
		if (!changed) break;
	}
	return dist[dst] < 1000000000;
}

static long augment(int src, int dst) {
	// find bottleneck
	long push = 1000000000;
	int v = dst;
	while (v != src) {
		int code = pre[v];
		if (code < ARCS) {
			long slack = arc_cap[code] - arc_flow[code];
			if (slack < push) push = slack;
			v = arc_from[code];
		} else {
			int a = code - ARCS;
			if (arc_flow[a] < push) push = arc_flow[a];
			v = arc_to[a];
		}
	}
	long cost = 0;
	v = dst;
	while (v != src) {
		int code = pre[v];
		if (code < ARCS) {
			arc_flow[code] += push;
			cost += push * arc_cost[code];
			v = arc_from[code];
		} else {
			int a = code - ARCS;
			arc_flow[a] -= push;
			cost -= push * arc_cost[a];
			v = arc_to[a];
		}
	}
	return cost;
}

int main(void) {
	long total = 0;
	for (int it = 0; it < WORK; it++) {
		n_arcs = 0;
		for (int a = 0; a < ARCS; a++) arc_flow[a] = 0;
		// layered network: 0 -> [1..9] -> [10..19] -> [20..28] -> 29
		for (int i = 1; i <= 9; i++) add_arc(0, i, 2 + (i + it) % 3, (long)i);
		for (int i = 1; i <= 9; i++)
			for (int j = 10; j <= 19; j += 2)
				add_arc(i, j, 1 + (i + j) % 2, (long)((i * j + it) % 7 + 1));
		for (int j = 10; j <= 19; j++)
			for (int k = 20; k <= 28; k += 3)
				add_arc(j, k, 2, (long)((j + k) % 5 + 1));
		for (int k = 20; k <= 28; k++) add_arc(k, 29, 3, (long)(k % 4 + 1));

		long cost = 0;
		while (find_path(0, 29)) cost += augment(0, 29);
		total += cost;
		total &= 0xFFFFFFF;
	}
	printf("mcf: %ld\n", total);
	return 0;
}
`,
	}
}
