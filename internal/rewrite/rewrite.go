// Package rewrite emits MCFI's instrumentation sequences — the check
// transactions that guard indirect branches (paper Fig. 4) and the
// sandboxing masks on memory writes. It corresponds to the paper's
// rewriter: "three passes inserted into LLVM's backend to reserve
// scratch registers used in TxCheck transactions, dump type
// information, and perform instrumentation" (§7). The code generator
// calls into this package at every indirect-branch site; when
// instrumentation is disabled (baseline builds for the overhead
// experiments) the plain branch is emitted instead.
package rewrite

import (
	"fmt"

	"mcfi/internal/visa"
)

// CheckSite records where the pieces of one emitted check transaction
// landed, for the module's auxiliary information.
type CheckSite struct {
	// TLoadIOffset is the code offset of the TLOADI instruction whose
	// immediate the loader patches with the branch's Bary table index
	// (-1 when not instrumented).
	TLoadIOffset int
	// BranchOffset is the code offset of the final branch instruction
	// (jmpr/callr/jrestore/ret).
	BranchOffset int
	// CheckStart is the code offset of the first instruction of the
	// check transaction (the and32 mask), i.e. the start of the
	// CheckSeqSize-byte canonical span that a fusing engine may replace
	// with one superinstruction (-1 when not instrumented).
	CheckStart int
}

// Layout of the canonical check-transaction span emitted by emitCheck.
// The cached VM engine byte-matches executable code against this shape
// to install a fused superinstruction; the constants let it locate the
// loader-patched TLOADI immediate and reproduce the interp engine's
// fault PCs exactly.
const (
	// CheckSeqSize is the byte length of the canonical span, from the
	// and32 mask through the hlt (exclusive of the final branch).
	CheckSeqSize = 36
	// CheckImmOffset is the offset within the span of the TLOADI
	// 32-bit immediate (the Bary byte index, patched by the loader).
	CheckImmOffset = 4
	// CheckTryOffset is the offset within the span of the Try label
	// (the TLOADI instruction) — where a version-mismatch retry lands.
	CheckTryOffset = 2
	// CheckHaltOffset is the offset within the span of the HLT.
	CheckHaltOffset = 35
)

// checkTemplate is the canonical byte encoding of one check
// transaction, built once from emitCheck itself so matching can never
// drift from emission. The TLOADI immediate bytes
// [CheckImmOffset, CheckImmOffset+4) are per-site and excluded from
// comparison.
var checkTemplate [CheckSeqSize]byte

func init() {
	a := visa.NewAsm()
	tl := emitCheck(a)
	if err := a.Finish(); err != nil {
		panic(fmt.Sprintf("rewrite: check template: %v", err))
	}
	code := a.Code
	if len(code) != CheckSeqSize {
		panic(fmt.Sprintf("rewrite: check template is %d bytes, want %d", len(code), CheckSeqSize))
	}
	if tl != CheckTryOffset {
		panic(fmt.Sprintf("rewrite: check template tloadi at %d, want %d", tl, CheckTryOffset))
	}
	copy(checkTemplate[:], code)
}

// MatchCheck reports whether code[off:] begins with the canonical
// check-transaction byte sequence (ignoring the per-site TLOADI
// immediate). Non-canonical variants — the PLT stub's check reloads
// the GOT inside its retry loop, so its JNE displacement differs —
// fail the match and stay unfused.
func MatchCheck(code []byte, off int) bool {
	if off < 0 || off+CheckSeqSize > len(code) {
		return false
	}
	for i := 0; i < CheckSeqSize; i++ {
		if i >= CheckImmOffset && i < CheckImmOffset+4 {
			continue
		}
		if code[off+i] != checkTemplate[i] {
			return false
		}
	}
	return true
}

// Layout of the PLT-stub check-transaction span emitted by
// EmitPLTCheck — the paper's §5.2 variant whose retry loop reloads the
// target address from the GOT slot ("indirect jumps in the PLT ...
// need to reload the target address from GOT when a transaction is
// retried"). The Try label covers the whole span, so a retried
// transaction re-executes the movi + ld64 reload. Two per-site
// wildcards: the MOVI's 64-bit GOT address and the TLOADI's 32-bit
// Bary index.
const (
	// PLTCheckSeqSize is the byte length of the PLT check span, from
	// the movi (== the Try label) through the hlt (exclusive of the
	// final jmpr).
	PLTCheckSeqSize = 53
	// PLTCheckGotOffset is the offset of the MOVI's 64-bit immediate
	// (the GOT slot address).
	PLTCheckGotOffset = 2
	// PLTCheckLoadOffset is the offset of the LD64 GOT reload — the
	// fault PC when the GOT slot is unreadable.
	PLTCheckLoadOffset = 10
	// PLTCheckImmOffset is the offset of the TLOADI 32-bit immediate
	// (the Bary byte index, patched by the loader).
	PLTCheckImmOffset = 21
	// PLTCheckHaltOffset is the offset of the HLT.
	PLTCheckHaltOffset = 52
)

// pltCheckTemplate is the canonical byte encoding of the PLT-stub
// check, built once from EmitPLTCheck itself so matching can never
// drift from emission. The GOT-address and TLOADI-immediate bytes are
// per-site and excluded from comparison.
var pltCheckTemplate [PLTCheckSeqSize]byte

func init() {
	a := visa.NewAsm()
	tl := EmitPLTCheck(a, 0, true)
	if err := a.Finish(); err != nil {
		panic(fmt.Sprintf("rewrite: PLT check template: %v", err))
	}
	code := a.Code
	if len(code) != PLTCheckSeqSize {
		panic(fmt.Sprintf("rewrite: PLT check template is %d bytes, want %d", len(code), PLTCheckSeqSize))
	}
	if tl != PLTCheckImmOffset-2 {
		panic(fmt.Sprintf("rewrite: PLT check template tloadi at %d, want %d", tl, PLTCheckImmOffset-2))
	}
	copy(pltCheckTemplate[:], code)
}

// MatchPLTCheck reports whether code[off:] begins with the PLT-stub
// check-transaction byte sequence, ignoring the per-site GOT address
// and TLOADI immediate.
func MatchPLTCheck(code []byte, off int) bool {
	if off < 0 || off+PLTCheckSeqSize > len(code) {
		return false
	}
	for i := 0; i < PLTCheckSeqSize; i++ {
		if i >= PLTCheckGotOffset && i < PLTCheckGotOffset+8 {
			continue
		}
		if i >= PLTCheckImmOffset && i < PLTCheckImmOffset+4 {
			continue
		}
		if code[off+i] != pltCheckTemplate[i] {
			return false
		}
	}
	return true
}

// seq is a per-assembler label uniquifier.
func seq(a *visa.Asm, what string) string {
	return fmt.Sprintf("mcfi.%s.%d", what, a.Pos())
}

// AlignIBT pads with NOPs until the current position is 4-byte aligned
// — applied before every indirect-branch target (function entries,
// case labels reached via jump tables need no Tary entry but return
// sites and setjmp continuations do). Paper §5.1: "inserts extra no-op
// instructions into the program to force indirect-branch targets to be
// four-byte aligned".
func AlignIBT(a *visa.Asm) {
	for a.Pos()%4 != 0 {
		a.Emit(visa.Instr{Op: visa.NOP})
	}
}

// PadForAlignedEnd pads with NOPs so that after emitting tailSize more
// bytes the position is 4-byte aligned. Used to align the address
// *following* a call (the return address / setjmp continuation).
func PadForAlignedEnd(a *visa.Asm, tailSize int) {
	for (a.Pos()+tailSize)%4 != 0 {
		a.Emit(visa.Instr{Op: visa.NOP})
	}
}

// emitCheck emits the core check transaction on the target address in
// R11, leaving the branch instruction to the caller. Mirrors Fig. 4:
//
//	movl %ecx, %ecx            -> and32 r11
//	Try: movl %gs:Const, %edi  -> tloadi r10, <patched>
//	movl %gs:(%rcx), %esi      -> tload  r9, r11
//	cmpl %edi, %esi            -> cmp    r10, r9
//	jne Check                  -> je     Ok (sense inverted)
//	Check: testb $1, %sil      -> testb  r9, 1
//	jz Halt                    -> jz     Halt
//	cmpw %di, %si              -> cmpw   r10, r9
//	jne Try                    -> jne    Try
//	Halt: hlt                  -> hlt
//	Ok:  jmpq *%rcx            -> (caller emits branch)
func emitCheck(a *visa.Asm) (tloadiOff int) {
	try := seq(a, "try")
	halt := seq(a, "halt")
	ok := seq(a, "ok")

	a.Emit(visa.Instr{Op: visa.AND32, R1: visa.R11})
	a.Label(try)
	tloadiOff = a.Pos()
	a.Emit(visa.Instr{Op: visa.TLOADI, R1: visa.R10, Imm: 0})
	a.Emit(visa.Instr{Op: visa.TLOAD, R1: visa.R9, R2: visa.R11})
	a.Emit(visa.Instr{Op: visa.CMP, R1: visa.R10, R2: visa.R9})
	a.EmitBranch(visa.JE, ok)
	a.Emit(visa.Instr{Op: visa.TESTB, R1: visa.R9, Imm: 1})
	a.EmitBranch(visa.JE, halt) // testb sets ZF when the bit is 0; JE == JZ
	a.Emit(visa.Instr{Op: visa.CMPW, R1: visa.R10, R2: visa.R9})
	a.EmitBranch(visa.JNE, try)
	a.Label(halt)
	a.Emit(visa.Instr{Op: visa.HLT})
	a.Label(ok)
	return tloadiOff
}

// EmitReturn emits a function return. Instrumented form pops the
// return address into the reserved register and runs a check
// transaction before an indirect jump — the popq/jmpq translation that
// stops a concurrent attacker from swapping the return address after
// the check (paper §5.2).
func EmitReturn(a *visa.Asm, instrumented bool) CheckSite {
	if !instrumented {
		off := a.Pos()
		a.Emit(visa.Instr{Op: visa.RET})
		return CheckSite{TLoadIOffset: -1, BranchOffset: off, CheckStart: -1}
	}
	a.Emit(visa.Instr{Op: visa.POP, R1: visa.R11})
	start := a.Pos()
	tl := emitCheck(a)
	off := a.Pos()
	a.Emit(visa.Instr{Op: visa.JMPR, R1: visa.R11})
	return CheckSite{TLoadIOffset: tl, BranchOffset: off, CheckStart: start}
}

// EmitIndirectCall emits an indirect call through the function-pointer
// value already in R11. In instrumented builds the call is preceded by
// a check transaction and padded so the return address (the byte after
// the callr) is 4-byte aligned.
func EmitIndirectCall(a *visa.Asm, instrumented bool) CheckSite {
	callrSize := visa.Instr{Op: visa.CALLR}.Size()
	if !instrumented {
		off := a.Pos()
		a.Emit(visa.Instr{Op: visa.CALLR, R1: visa.R11})
		return CheckSite{TLoadIOffset: -1, BranchOffset: off, CheckStart: -1}
	}
	start := a.Pos()
	tl := emitCheck(a)
	PadForAlignedEnd(a, callrSize)
	off := a.Pos()
	a.Emit(visa.Instr{Op: visa.CALLR, R1: visa.R11})
	return CheckSite{TLoadIOffset: tl, BranchOffset: off, CheckStart: start}
}

// EmitTailJump emits an interprocedural indirect jump (indirect tail
// call) through R11, checked in instrumented builds.
func EmitTailJump(a *visa.Asm, instrumented bool) CheckSite {
	if !instrumented {
		off := a.Pos()
		a.Emit(visa.Instr{Op: visa.JMPR, R1: visa.R11})
		return CheckSite{TLoadIOffset: -1, BranchOffset: off, CheckStart: -1}
	}
	start := a.Pos()
	tl := emitCheck(a)
	off := a.Pos()
	a.Emit(visa.Instr{Op: visa.JMPR, R1: visa.R11})
	return CheckSite{TLoadIOffset: tl, BranchOffset: off, CheckStart: start}
}

// EmitLongjmp emits the longjmp transfer: target PC in R11, saved SP in
// R3, saved FP in R4. The check transaction validates the (memory-
// loaded, attacker-corruptible) target before the restoring jump.
func EmitLongjmp(a *visa.Asm, instrumented bool) CheckSite {
	if !instrumented {
		off := a.Pos()
		a.Emit(visa.Instr{Op: visa.JRESTORE, R1: visa.R3, R2: visa.R4, R3: visa.R11})
		return CheckSite{TLoadIOffset: -1, BranchOffset: off, CheckStart: -1}
	}
	start := a.Pos()
	tl := emitCheck(a)
	off := a.Pos()
	a.Emit(visa.Instr{Op: visa.JRESTORE, R1: visa.R3, R2: visa.R4, R3: visa.R11})
	return CheckSite{TLoadIOffset: tl, BranchOffset: off, CheckStart: start}
}

// EmitPLTCheck emits the PLT stub's check transaction: load the target
// from the GOT slot, then validate it with the Fig. 4 transaction whose
// Try label spans the reload, so a version-mismatch retry observes the
// freshest GOT value (paper §5.2). The caller emits the final jmpr.
// Uninstrumented builds get only the reload. Returns the TLOADI offset
// within the assembler (-1 when not instrumented).
func EmitPLTCheck(a *visa.Asm, gotAddr int64, instrumented bool) (tloadiOff int) {
	try := seq(a, "plt.try")
	halt := seq(a, "plt.halt")
	ok := seq(a, "plt.ok")
	a.Label(try)
	a.Emit(visa.Instr{Op: visa.MOVI, R1: visa.R11, Imm: gotAddr})
	a.Emit(visa.Instr{Op: visa.LD64, R1: visa.R11, R2: visa.R11, Imm: 0})
	if !instrumented {
		return -1
	}
	a.Emit(visa.Instr{Op: visa.AND32, R1: visa.R11})
	tloadiOff = a.Pos()
	a.Emit(visa.Instr{Op: visa.TLOADI, R1: visa.R10, Imm: 0})
	a.Emit(visa.Instr{Op: visa.TLOAD, R1: visa.R9, R2: visa.R11})
	a.Emit(visa.Instr{Op: visa.CMP, R1: visa.R10, R2: visa.R9})
	a.EmitBranch(visa.JE, ok)
	a.Emit(visa.Instr{Op: visa.TESTB, R1: visa.R9, Imm: 1})
	a.EmitBranch(visa.JE, halt)
	a.Emit(visa.Instr{Op: visa.CMPW, R1: visa.R10, R2: visa.R9})
	a.EmitBranch(visa.JNE, try) // retry reloads the GOT entry
	a.Label(halt)
	a.Emit(visa.Instr{Op: visa.HLT})
	a.Label(ok)
	return tloadiOff
}

// IsMaskStorePair reports whether mask and store form the fusible
// sandbox-mask + store sequence EmitStoreMask produces: "andi r,
// StoreMask" immediately followed by a store whose address register is
// the masked one. The VM's trace-fusing fill path uses this predicate
// so the matcher can never drift from the emitter.
func IsMaskStorePair(mask, store visa.Instr) bool {
	if mask.Op != visa.ANDI || mask.Imm != visa.StoreMask {
		return false
	}
	switch store.Op {
	case visa.ST8, visa.ST16, visa.ST32, visa.ST64:
		return store.R2 == mask.R1
	}
	return false
}

// EmitStoreMask emits the sandbox mask on the address register of an
// upcoming store (paper §5.1: on x86-64 "memory writes are instrumented
// so that they are restricted to the [0, 4GB) memory region"). No-op in
// baseline builds and on Profile32, where the paper's sandbox comes for
// free from memory segmentation (as in NaCl) — the VM's page
// protections play the segment registers' role there.
func EmitStoreMask(a *visa.Asm, addrReg byte, instrumented bool, profile visa.Profile) {
	if instrumented && profile != visa.Profile32 {
		a.Emit(visa.Instr{Op: visa.ANDI, R1: addrReg, Imm: visa.StoreMask})
	}
}
