package rewrite

import (
	"testing"

	"mcfi/internal/visa"
)

func decode(t *testing.T, code []byte) []visa.Instr {
	t.Helper()
	is, err := visa.DecodeAll(code)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return is
}

func ops(is []visa.Instr) []visa.Op {
	out := make([]visa.Op, len(is))
	for i, ins := range is {
		out[i] = ins.Op
	}
	return out
}

// expectSeq checks the instruction stream contains exactly the Fig. 4
// check-transaction skeleton for the given branch op.
func expectSeq(t *testing.T, got []visa.Op, want []visa.Op) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("sequence length %d, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("instr %d = %s, want %s", i, got[i].Name(), want[i].Name())
		}
	}
}

func TestEmitReturnInstrumented(t *testing.T) {
	a := visa.NewAsm()
	site := EmitReturn(a, true)
	if err := a.Finish(); err != nil {
		t.Fatal(err)
	}
	is := decode(t, a.Code)
	expectSeq(t, ops(is), []visa.Op{
		visa.POP, visa.AND32, visa.TLOADI, visa.TLOAD, visa.CMP,
		visa.JE, visa.TESTB, visa.JE, visa.CMPW, visa.JNE, visa.HLT,
		visa.JMPR,
	})
	// Offsets recorded correctly.
	off := 0
	for i, ins := range is {
		if ins.Op == visa.TLOADI && off != site.TLoadIOffset {
			t.Errorf("TLoadIOffset = %d, want %d", site.TLoadIOffset, off)
		}
		if i == len(is)-1 && off != site.BranchOffset {
			t.Errorf("BranchOffset = %d, want %d", site.BranchOffset, off)
		}
		off += ins.Size()
	}
	// The retry (jne) must target the tloadi, the halt jump the hlt.
	var jne, hlt, tl int
	off = 0
	for _, ins := range is {
		switch ins.Op {
		case visa.TLOADI:
			tl = off
		case visa.JNE:
			jne = off + ins.Size() + int(ins.Imm)
		case visa.HLT:
			hlt = off
		}
		off += ins.Size()
	}
	if jne != tl {
		t.Errorf("jne retries to %#x, want tloadi at %#x", jne, tl)
	}
	_ = hlt
}

func TestEmitReturnBaseline(t *testing.T) {
	a := visa.NewAsm()
	site := EmitReturn(a, false)
	is := decode(t, a.Code)
	if len(is) != 1 || is[0].Op != visa.RET {
		t.Fatalf("baseline return = %v", ops(is))
	}
	if site.TLoadIOffset != -1 {
		t.Error("baseline has no TLOADI")
	}
}

func TestEmitIndirectCallAlignsReturnSite(t *testing.T) {
	for pad := 0; pad < 4; pad++ {
		a := visa.NewAsm()
		for i := 0; i < pad; i++ {
			a.Emit(visa.Instr{Op: visa.MOV, R1: 0, R2: 1}) // 3 bytes each
		}
		site := EmitIndirectCall(a, true)
		end := site.BranchOffset + visa.Instr{Op: visa.CALLR}.Size()
		if end%4 != 0 {
			t.Errorf("pad %d: return site at %#x not aligned", pad, end)
		}
	}
}

func TestEmitTailJumpAndLongjmpShapes(t *testing.T) {
	a := visa.NewAsm()
	st := EmitTailJump(a, true)
	if err := a.Finish(); err != nil {
		t.Fatal(err)
	}
	is := decode(t, a.Code)
	if is[len(is)-1].Op != visa.JMPR {
		t.Error("tail jump must end in jmpr")
	}
	if st.TLoadIOffset < 0 {
		t.Error("tail jump must be checked")
	}

	b := visa.NewAsm()
	lj := EmitLongjmp(b, true)
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	bis := decode(t, b.Code)
	last := bis[len(bis)-1]
	if last.Op != visa.JRESTORE || last.R3 != visa.R11 {
		t.Errorf("longjmp must end in jrestore via r11, got %s", last.String())
	}
	if lj.TLoadIOffset < 0 {
		t.Error("longjmp must be checked")
	}
}

func TestAlignIBT(t *testing.T) {
	for start := 0; start < 4; start++ {
		a := visa.NewAsm()
		for i := 0; i < start; i++ {
			a.Emit(visa.Instr{Op: visa.NOP})
		}
		AlignIBT(a)
		if a.Pos()%4 != 0 {
			t.Errorf("start %d: pos %d not aligned", start, a.Pos())
		}
	}
}

func TestEmitStoreMask(t *testing.T) {
	a := visa.NewAsm()
	EmitStoreMask(a, visa.R3, true, visa.Profile64)
	is := decode(t, a.Code)
	if len(is) != 1 || is[0].Op != visa.ANDI || is[0].R1 != visa.R3 ||
		is[0].Imm != visa.StoreMask {
		t.Errorf("mask = %v", is)
	}
	b := visa.NewAsm()
	EmitStoreMask(b, visa.R3, false, visa.Profile64)
	if len(b.Code) != 0 {
		t.Error("baseline emits no mask")
	}
	// Profile32 relies on segmentation (paper §5.1): no mask emitted.
	c := visa.NewAsm()
	EmitStoreMask(c, visa.R3, true, visa.Profile32)
	if len(c.Code) != 0 {
		t.Error("Profile32 must not emit store masks (segmentation)")
	}
}

// The reserved MCFI scratch registers must be the only registers the
// check sequence touches (paper §7: a compiler pass reserves them).
func TestCheckSequenceOnlyUsesReservedRegisters(t *testing.T) {
	a := visa.NewAsm()
	EmitIndirectCall(a, true)
	if err := a.Finish(); err != nil {
		t.Fatal(err)
	}
	for _, ins := range decode(t, a.Code) {
		switch ins.Op {
		case visa.AND32, visa.TLOADI, visa.TLOAD, visa.CMP, visa.CMPW,
			visa.TESTB, visa.CALLR:
			for _, r := range []byte{ins.R1, ins.R2} {
				if r != 0 && r != visa.R9 && r != visa.R10 && r != visa.R11 {
					t.Errorf("%s touches non-reserved r%d", ins.Op.Name(), r)
				}
			}
		}
	}
}
