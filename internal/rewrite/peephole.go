// Peephole metadata: the straight-line instruction shapes the block
// compiler (internal/vm EngineBlockJIT) fuses into single steps.
// Like IsMaskStorePair, the predicates live beside the emitters so
// the fusion matchers can never drift from what the rewriter
// produces — but they are keyed on byte shapes alone, so coincidental
// guest-authored pairs fuse too, harmlessly: the fused step
// reproduces both instructions' architectural effects exactly.
package rewrite

import "mcfi/internal/visa"

// IsCmpJccPair reports whether cmp and j form the fusible compare +
// conditional-branch shape: a pure flag-setting comparison
// immediately followed by the conditional branch consuming its flags.
// Every comparison in the ISA writes the full flag state, so the pair
// is fusible regardless of which registers it names.
func IsCmpJccPair(cmp, j visa.Instr) bool {
	switch cmp.Op {
	case visa.CMP, visa.CMPI, visa.CMPW, visa.TESTB, visa.FCMP:
	default:
		return false
	}
	switch j.Op {
	case visa.JE, visa.JNE, visa.JL, visa.JG, visa.JLE, visa.JGE,
		visa.JB, visa.JA, visa.JBE, visa.JAE:
		return true
	}
	return false
}

// IsLoadOpPair reports whether ld and op form the fusible load +
// consume shape: a load immediately followed by a register-register
// ALU instruction (or comparison) that reads the loaded register. The
// consumer must be pure — divisions are excluded because they can
// fault between the two halves.
func IsLoadOpPair(ld, op visa.Instr) bool {
	switch ld.Op {
	case visa.LD8, visa.LD16, visa.LD32, visa.LD64,
		visa.LD8U, visa.LD16U, visa.LD32U:
	default:
		return false
	}
	switch op.Op {
	case visa.ADD, visa.SUB, visa.MUL, visa.AND, visa.OR, visa.XOR,
		visa.SHL, visa.SHR, visa.SAR, visa.CMP, visa.CMPW, visa.MOV:
		return op.R1 == ld.R1 || op.R2 == ld.R1
	}
	return false
}
