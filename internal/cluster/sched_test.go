package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDWRRWeightedShares: with every tenant backlogged, service counts
// over a long window converge to the weight ratios.
func TestDWRRWeightedShares(t *testing.T) {
	s := NewSched[string](SchedConfig{
		TotalQueue: 4096,
		Tenants:    map[string]Quota{"a": {Weight: 4}, "b": {Weight: 2}, "c": {Weight: 1}},
	})
	for i := 0; i < 400; i++ {
		for _, tn := range []string{"a", "b", "c"} {
			if err := s.Submit(tn, 0, tn); err != nil {
				t.Fatal(err)
			}
		}
	}
	served := map[string]int{}
	for i := 0; i < 700; i++ { // 100 full rounds of 4+2+1
		v, ok := s.Next(nil)
		if !ok {
			t.Fatal("scheduler empty early")
		}
		served[v]++
		s.Done(v, 0)
	}
	if served["a"] != 400 || served["b"] != 200 || served["c"] != 100 {
		t.Errorf("served = %v, want 400/200/100 (weights 4:2:1)", served)
	}
}

// TestDWRRNoStarvation: a weight-1 tenant behind a weight-100 firehose
// is still served at least once per round.
func TestDWRRNoStarvation(t *testing.T) {
	s := NewSched[string](SchedConfig{
		TotalQueue: 4096,
		Tenants:    map[string]Quota{"big": {Weight: 100}},
	})
	for i := 0; i < 1000; i++ {
		s.Submit("big", 0, "big")
	}
	s.Submit("small", 0, "small")
	for i := 0; i < 102; i++ {
		v, ok := s.Next(nil)
		if !ok {
			t.Fatal("empty early")
		}
		s.Done(v, 0)
		if v == "small" {
			return // served within one full round
		}
	}
	t.Error("weight-1 tenant starved for a full round behind weight-100")
}

// TestQuotaEnforcement: per-tenant queue, in-flight, and instruction
// quotas refuse with QuotaError while other tenants stay admissible.
func TestQuotaEnforcement(t *testing.T) {
	s := NewSched[int](SchedConfig{
		TotalQueue: 100,
		Default:    Quota{MaxQueued: 2, MaxInstrInFlight: 1000},
	})
	if err := s.Submit("t", 400, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit("t", 400, 2); err != nil {
		t.Fatal(err)
	}
	var qe *QuotaError
	if err := s.Submit("t", 1, 3); !errors.As(err, &qe) {
		t.Fatalf("3rd queued submit = %v, want QuotaError (MaxQueued=2)", err)
	}
	// Drain one into running: queue quota frees, but instr quota binds.
	if _, ok := s.Next(nil); !ok {
		t.Fatal("no item")
	}
	if err := s.Submit("t", 300, 4); !errors.As(err, &qe) ||
		qe.Reason == "" {
		t.Fatalf("over-instr submit = %v, want instr QuotaError", err)
	}
	if err := s.Submit("t", 100, 5); err != nil {
		t.Fatalf("within-instr submit = %v", err)
	}
	// An unrelated tenant is unaffected.
	if err := s.Submit("other", 999, 6); err != nil {
		t.Fatalf("other tenant = %v", err)
	}
	// Completion releases the instr quota (drain two queued items
	// first so the queue bound is not what binds).
	s.Done("t", 400)
	s.Next(nil)
	s.Next(nil)
	if err := s.Submit("t", 300, 7); err != nil {
		t.Fatalf("post-Done submit = %v", err)
	}
	st := s.Stats()
	for _, ts := range st {
		if ts.Tenant == "t" && ts.Refused != 2 {
			t.Errorf("tenant t refused = %d, want 2", ts.Refused)
		}
	}
}

// TestSubmitBatchAtomic: a batch that exceeds quota is refused whole —
// none of its jobs are ever dequeued.
func TestSubmitBatchAtomic(t *testing.T) {
	s := NewSched[int](SchedConfig{TotalQueue: 100, Default: Quota{MaxQueued: 3}})
	vs, costs := []int{1, 2, 3, 4}, []int64{0, 0, 0, 0}
	var qe *QuotaError
	if err := s.SubmitBatch("t", costs, vs); !errors.As(err, &qe) {
		t.Fatalf("oversized batch = %v, want QuotaError", err)
	}
	if got := s.Queued(); got != 0 {
		t.Fatalf("queued = %d after refused batch, want 0", got)
	}
	if err := s.SubmitBatch("t", costs[:3], vs[:3]); err != nil {
		t.Fatalf("fitting batch = %v", err)
	}
	if got := s.Queued(); got != 3 {
		t.Fatalf("queued = %d, want 3", got)
	}
	// Global bound is atomic too.
	s2 := NewSched[int](SchedConfig{TotalQueue: 2})
	if err := s2.SubmitBatch("t", costs[:3], vs[:3]); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-global batch = %v, want ErrQueueFull", err)
	}
	if got := s2.Queued(); got != 0 {
		t.Fatalf("queued = %d after refused batch, want 0", got)
	}
}

// TestSubmitVsCloseRace is the scheduler-level half of the
// refused-xor-executed invariant: 64 submitters across 4 tenants race
// Close while consumers drain. Every job is either refused at Submit
// or dequeued exactly once — never both, never neither — and the
// per-tenant counters balance. Run under -race in CI.
func TestSubmitVsCloseRace(t *testing.T) {
	const (
		submitters   = 64
		perSubmitter = 20
		tenants      = 4
	)
	s := NewSched[int](SchedConfig{
		TotalQueue: submitters * perSubmitter,
		Tenants:    map[string]Quota{"t0": {Weight: 4}, "t1": {Weight: 3}, "t2": {Weight: 2}},
	})

	var admitted, refused atomic.Int64
	var dequeued atomic.Int64
	seen := make([]atomic.Int32, submitters*perSubmitter)

	var consumers sync.WaitGroup
	for c := 0; c < 8; c++ {
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			for {
				v, ok := s.Next(nil)
				if !ok {
					return
				}
				seen[v].Add(1)
				dequeued.Add(1)
				s.Done(fmt.Sprintf("t%d", v%tenants), 0)
			}
		}()
	}

	var producers sync.WaitGroup
	for p := 0; p < submitters; p++ {
		producers.Add(1)
		go func(p int) {
			defer producers.Done()
			for i := 0; i < perSubmitter; i++ {
				id := p*perSubmitter + i
				err := s.Submit(fmt.Sprintf("t%d", id%tenants), 0, id)
				switch {
				case err == nil:
					admitted.Add(1)
				case errors.Is(err, ErrClosed):
					refused.Add(1)
				default:
					t.Errorf("submit %d: %v", id, err)
				}
			}
		}(p)
	}

	time.Sleep(2 * time.Millisecond)
	s.Close()
	producers.Wait()
	consumers.Wait()

	if admitted.Load()+refused.Load() != submitters*perSubmitter {
		t.Errorf("admitted %d + refused %d != %d",
			admitted.Load(), refused.Load(), submitters*perSubmitter)
	}
	if dequeued.Load() != admitted.Load() {
		t.Errorf("dequeued %d != admitted %d (job lost or duplicated)",
			dequeued.Load(), admitted.Load())
	}
	for id := range seen {
		if n := seen[id].Load(); n > 1 {
			t.Errorf("job %d executed %d times", id, n)
		}
	}
	var sub, deq, comp, ref int64
	for _, ts := range s.Stats() {
		if ts.Queued != 0 || ts.Running != 0 || ts.InstrInFlight != 0 {
			t.Errorf("tenant %s not drained: %+v", ts.Tenant, ts)
		}
		if ts.Dequeued != ts.Completed || ts.Submitted != ts.Dequeued {
			t.Errorf("tenant %s counters unbalanced: %+v", ts.Tenant, ts)
		}
		sub += ts.Submitted
		deq += ts.Dequeued
		comp += ts.Completed
		ref += ts.Refused
	}
	// ErrClosed rejections are the caller's to count (the server maps
	// them to 503s); the scheduler's refused counter tracks quota and
	// queue-full refusals, of which this run has none.
	if sub != admitted.Load() || deq != admitted.Load() || comp != admitted.Load() || ref != 0 {
		t.Errorf("aggregate counters: submitted=%d dequeued=%d completed=%d refused=%d, want %d/%d/%d/0",
			sub, deq, comp, ref, admitted.Load(), admitted.Load(), admitted.Load())
	}
}

// TestNextQuit: a closed quit channel releases a blocked consumer
// without consuming work, and leaves queued items for others.
func TestNextQuit(t *testing.T) {
	s := NewSched[int](SchedConfig{TotalQueue: 8})
	quit := make(chan struct{})
	done := make(chan bool)
	go func() {
		_, ok := s.Next(quit)
		done <- ok
	}()
	close(quit)
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Next returned a job after quit")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not honor quit")
	}
	s.Submit("t", 0, 42)
	if v, ok := s.Next(nil); !ok || v != 42 {
		t.Fatalf("queued item lost: %v %v", v, ok)
	}
}
