package cluster

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestAutoscaleDecide walks the policy through a pressure cycle:
// ramp up one worker per interval while p95 exceeds target with
// backlog, hold while healthy, shrink slowly once idle.
func TestAutoscaleDecide(t *testing.T) {
	a := NewAutoscaler(AutoscaleConfig{
		Min: 1, Max: 4,
		TargetP95:    50 * time.Millisecond,
		Interval:     100 * time.Millisecond,
		DownCooldown: time.Second,
	})
	now := time.Unix(1000, 0)
	hot := Sample{P95: 200 * time.Millisecond, Depth: 6, Busy: 1}

	cur := 1
	for i := 0; i < 3; i++ {
		now = now.Add(150 * time.Millisecond)
		if next := a.Decide(now, cur, hot); next != cur+1 {
			t.Fatalf("step %d: hot decide %d -> %d, want +1", i, cur, next)
		}
		cur++
	}
	// At Max: no further growth.
	now = now.Add(150 * time.Millisecond)
	if next := a.Decide(now, 4, hot); next != 4 {
		t.Fatalf("at max: %d, want 4", next)
	}
	// Up-cooldown: two decisions inside one cooldown grow only once.
	a2 := NewAutoscaler(AutoscaleConfig{Min: 1, Max: 8, TargetP95: 10 * time.Millisecond, UpCooldown: time.Second})
	n2 := time.Unix(2000, 0)
	if a2.Decide(n2, 1, hot) != 2 {
		t.Fatal("first hot decide should scale up")
	}
	if got := a2.Decide(n2.Add(100*time.Millisecond), 2, hot); got != 2 {
		t.Fatalf("inside cooldown grew to %d", got)
	}

	// Healthy: queue drained but workers busy — hold.
	calm := Sample{P95: 5 * time.Millisecond, Depth: 0, Busy: 4}
	now = now.Add(2 * time.Second)
	if next := a.Decide(now, 4, calm); next != 4 {
		t.Fatalf("busy pool shrank to %d", next)
	}
	// Idle: shrink one at a time, honoring the down cooldown.
	idle := Sample{P95: 5 * time.Millisecond, Depth: 0, Busy: 0}
	if next := a.Decide(now, 4, idle); next != 3 {
		t.Fatalf("idle decide = %d, want 3", next)
	}
	if next := a.Decide(now.Add(100*time.Millisecond), 3, idle); next != 3 {
		t.Fatalf("shrank inside down-cooldown to %d", next)
	}
	now = now.Add(2 * time.Second)
	if next := a.Decide(now, 3, idle); next != 2 {
		t.Fatalf("second idle decide = %d, want 2", next)
	}
	// Never below Min.
	now = now.Add(2 * time.Second)
	if next := a.Decide(now, 1, idle); next != 1 {
		t.Fatalf("shrank below min: %d", next)
	}

	st := a.Stats()
	if st.ScaleUps != 3 || st.ScaleDowns != 2 {
		t.Errorf("stats ups/downs = %d/%d, want 3/2", st.ScaleUps, st.ScaleDowns)
	}
	if st.Min != 1 || st.Max != 4 || st.TargetP95Ms != 50 {
		t.Errorf("stats config echo wrong: %+v", st)
	}
}

// TestAutoscaleClamps: out-of-range pools snap back into [Min, Max].
func TestAutoscaleClamps(t *testing.T) {
	a := NewAutoscaler(AutoscaleConfig{Min: 2, Max: 5})
	now := time.Now()
	if got := a.Decide(now, 0, Sample{}); got != 2 {
		t.Errorf("below-min clamp = %d, want 2", got)
	}
	if got := a.Decide(now, 9, Sample{}); got != 5 {
		t.Errorf("above-max clamp = %d, want 5", got)
	}
}

// TestAutoscaleRun: the loop applies decisions through the resize
// callback against a live (fake) pool.
func TestAutoscaleRun(t *testing.T) {
	a := NewAutoscaler(AutoscaleConfig{
		Min: 1, Max: 3,
		TargetP95: time.Millisecond,
		Interval:  5 * time.Millisecond,
	})
	pool := make(chan int, 64)
	var cur atomic.Int64
	cur.Store(1)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		a.Run(stop,
			func() Sample { return Sample{P95: time.Second, Depth: 10, Busy: int(cur.Load())} },
			func() int { return int(cur.Load()) },
			func(n int) { cur.Store(int64(n)); pool <- n },
		)
	}()
	deadline := time.After(5 * time.Second)
	for cur.Load() < 3 {
		select {
		case <-pool:
		case <-deadline:
			t.Fatal("autoscaler never reached max under pressure")
		}
	}
	close(stop)
	<-done
}
