package cluster

import (
	"testing"
	"time"
)

// TestWindowQuantiles: nearest-rank percentiles over a known
// population, before and after the ring wraps.
func TestWindowQuantiles(t *testing.T) {
	w := NewWindow(100)
	qs := w.Quantiles(0.5, 0.95)
	if qs[0] != 0 || qs[1] != 0 {
		t.Errorf("empty window quantiles = %v, want zeros", qs)
	}
	for i := 1; i <= 100; i++ {
		w.Observe(time.Duration(i) * time.Millisecond)
	}
	qs = w.Quantiles(0.5, 0.95, 0.99, 1.0)
	want := []time.Duration{50 * time.Millisecond, 95 * time.Millisecond, 99 * time.Millisecond, 100 * time.Millisecond}
	for i := range want {
		if qs[i] != want[i] {
			t.Errorf("quantile[%d] = %v, want %v", i, qs[i], want[i])
		}
	}
	// Wrap: 100 new samples at a higher plateau fully displace the old.
	for i := 0; i < 100; i++ {
		w.Observe(time.Second)
	}
	if got := w.Quantiles(0.5)[0]; got != time.Second {
		t.Errorf("post-wrap p50 = %v, want 1s", got)
	}
	if w.Count() != 200 {
		t.Errorf("count = %d, want 200", w.Count())
	}
}

// TestRateMeter: events inside the horizon count, stale ones do not.
func TestRateMeter(t *testing.T) {
	r := NewRateMeter(64, 10*time.Second)
	now := time.Unix(5000, 0)
	if got := r.PerSec(now); got != 0 {
		t.Errorf("empty meter rate = %v", got)
	}
	for i := 0; i < 50; i++ {
		r.Observe(now.Add(time.Duration(-i) * 100 * time.Millisecond))
	}
	got := r.PerSec(now)
	if got < 4.5 || got > 5.5 {
		t.Errorf("rate = %.2f/s, want ~5 (50 events over 10s)", got)
	}
	// An hour later everything is stale.
	if got := r.PerSec(now.Add(time.Hour)); got != 0 {
		t.Errorf("stale rate = %v, want 0", got)
	}
}
