// Package cluster is the scheduling-and-routing layer of the MCFI
// serving fleet: a deficit-weighted round-robin tenant scheduler
// (sched.go), a consistent-hash ring that keys jobs to replicas by
// build fingerprint (ring.go), a queue-latency-driven worker
// autoscaler (autoscale.go), and the latency/rate samplers they share
// (latency.go). The package is deliberately free of HTTP and server
// types: internal/server wires it to the wire.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"sync"
)

// DefaultVNodes is the virtual-node count per replica when a Ring is
// built with vnodes <= 0. 96 points per peer keeps the ownership split
// within a few percent of uniform for small fleets while the ring
// stays tiny (hundreds of points).
const DefaultVNodes = 96

type ringPoint struct {
	hash uint64
	peer string
}

// Ring maps keys (build fingerprints) to owning peers with consistent
// hashing: each peer contributes vnodes points on a 64-bit circle and
// a key belongs to the first point at or after its own hash. Adding or
// removing one peer of N moves only ~1/N of the keyspace, so the rest
// of the fleet keeps its warm store tiers.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []ringPoint
	peers  []string // sorted
}

// NewRing builds a ring over the given peers (vnodes <= 0 uses
// DefaultVNodes). Duplicate and empty peer names are dropped.
func NewRing(vnodes int, peers ...string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{vnodes: vnodes}
	for _, p := range peers {
		r.Add(p)
	}
	return r
}

// VNodes reports the per-peer virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// Peers returns the member set, sorted.
func (r *Ring) Peers() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.peers))
	copy(out, r.peers)
	return out
}

// Size reports the number of peers.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.peers)
}

// Add inserts a peer (no-op when empty or already present).
func (r *Ring) Add(peer string) {
	if peer == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	i := sort.SearchStrings(r.peers, peer)
	if i < len(r.peers) && r.peers[i] == peer {
		return
	}
	r.peers = append(r.peers, "")
	copy(r.peers[i+1:], r.peers[i:])
	r.peers[i] = peer
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{hash: pointHash(peer, v), peer: peer})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
}

// Remove deletes a peer and its points (no-op when absent).
func (r *Ring) Remove(peer string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := sort.SearchStrings(r.peers, peer)
	if i == len(r.peers) || r.peers[i] != peer {
		return
	}
	r.peers = append(r.peers[:i], r.peers[i+1:]...)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.peer != peer {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Owner returns the peer owning key, or "" on an empty ring. The
// mapping is deterministic across processes: every replica computes
// the same owner from the same member list.
func (r *Ring) Owner(key string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: first point on the circle
	}
	return r.points[i].peer
}

func pointHash(peer string, vnode int) uint64 {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(vnode))
	h := sha256.New()
	h.Write([]byte(peer))
	h.Write([]byte{'#'})
	h.Write(buf[:])
	return binary.BigEndian.Uint64(h.Sum(nil)[:8])
}

func keyHash(key string) uint64 {
	h := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(h[:8])
}
