package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

// fingerprints generates n synthetic build fingerprints shaped like
// the real ones (hex SHA-256 of source material).
func fingerprints(n int) []string {
	out := make([]string, n)
	for i := range out {
		h := sha256.Sum256([]byte(fmt.Sprintf("mcfi-src-%d", i)))
		out[i] = hex.EncodeToString(h[:])
	}
	return out
}

// TestRingDeterministicAcrossInstances: two rings built from the same
// member list (in any order) agree on every owner — replicas can route
// without coordination.
func TestRingDeterministicAcrossInstances(t *testing.T) {
	a := NewRing(96, "http://a", "http://b", "http://c")
	b := NewRing(96, "http://c", "http://a", "http://b")
	for _, k := range fingerprints(500) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("rings disagree on %s: %s vs %s", k[:12], a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingBalance: with 96 vnodes, no replica of three owns less than
// half or more than double its fair share over 3k keys.
func TestRingBalance(t *testing.T) {
	r := NewRing(96, "http://a", "http://b", "http://c")
	counts := map[string]int{}
	keys := fingerprints(3000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	fair := len(keys) / 3
	for peer, n := range counts {
		if n < fair/2 || n > fair*2 {
			t.Errorf("peer %s owns %d of %d keys (fair share %d)", peer, n, len(keys), fair)
		}
	}
	if len(counts) != 3 {
		t.Errorf("only %d peers own keys: %v", len(counts), counts)
	}
}

// TestRingRebalanceDisplacement is the satellite requirement: adding
// or removing one replica of N moves only about 1/N of the keyspace.
// Measured over 2000 synthetic fingerprints; the bound is generous
// (1.8x the ideal fraction) to absorb vnode placement variance.
func TestRingRebalanceDisplacement(t *testing.T) {
	keys := fingerprints(2000)
	peers := []string{"http://a", "http://b", "http://c"}
	r := NewRing(96, peers...)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Owner(k)
	}

	// Add a 4th replica: ideally 1/4 of keys move (to the new peer);
	// nothing moves between survivors.
	r.Add("http://d")
	movedToNew, movedBetweenOld := 0, 0
	for _, k := range keys {
		now := r.Owner(k)
		if now == before[k] {
			continue
		}
		if now == "http://d" {
			movedToNew++
		} else {
			movedBetweenOld++
		}
	}
	if movedBetweenOld != 0 {
		t.Errorf("add: %d keys moved between surviving peers (consistent hashing must not reshuffle survivors)", movedBetweenOld)
	}
	ideal := len(keys) / 4
	if movedToNew > ideal*18/10 || movedToNew < ideal/2 {
		t.Errorf("add: %d of %d keys moved to the new peer, want ~%d (1/N)", movedToNew, len(keys), ideal)
	}

	// Remove it again: exactly the displaced keys return home.
	r.Remove("http://d")
	for _, k := range keys {
		if got := r.Owner(k); got != before[k] {
			t.Fatalf("remove did not restore ownership of %s: %s vs %s", k[:12], got, before[k])
		}
	}

	// Removing one of three moves only that peer's ~1/3 share.
	gone := "http://b"
	r.Remove(gone)
	moved := 0
	for _, k := range keys {
		now := r.Owner(k)
		if before[k] == gone {
			if now == gone {
				t.Fatalf("removed peer still owns %s", k[:12])
			}
			moved++
		} else if now != before[k] {
			t.Errorf("remove: key %s moved between surviving peers", k[:12])
		}
	}
	ideal = len(keys) / 3
	if moved > ideal*18/10 || moved < ideal/2 {
		t.Errorf("remove: %d of %d keys displaced, want ~%d (1/N)", moved, len(keys), ideal)
	}
}

// TestRingEdgeCases: empty ring, single peer, duplicate adds.
func TestRingEdgeCases(t *testing.T) {
	r := NewRing(0)
	if got := r.Owner("anything"); got != "" {
		t.Errorf("empty ring owner = %q, want \"\"", got)
	}
	if r.VNodes() != DefaultVNodes {
		t.Errorf("vnodes = %d, want default %d", r.VNodes(), DefaultVNodes)
	}
	r.Add("http://solo")
	r.Add("http://solo") // duplicate: no effect
	if got := len(r.Peers()); got != 1 {
		t.Fatalf("peers = %d, want 1", got)
	}
	for _, k := range fingerprints(50) {
		if got := r.Owner(k); got != "http://solo" {
			t.Fatalf("single-peer owner = %q", got)
		}
	}
	r.Remove("http://absent") // no-op
	r.Remove("http://solo")
	if got := r.Owner("x"); got != "" {
		t.Errorf("drained ring owner = %q, want \"\"", got)
	}
}
