package cluster

import (
	"sort"
	"sync"
	"time"
)

// Window is a fixed-size sliding sample window of durations (queue
// latencies) supporting percentile queries. Cheap enough for the hot
// path: Observe is O(1) under a mutex; Quantiles sorts a copy of at
// most size samples and is called only by /metrics and the autoscaler
// tick.
type Window struct {
	mu    sync.Mutex
	buf   []int64 // nanos, ring
	idx   int
	n     int // filled entries, <= len(buf)
	total int64
}

// NewWindow builds a window over the last size samples (<=0 → 1024).
func NewWindow(size int) *Window {
	if size <= 0 {
		size = 1024
	}
	return &Window{buf: make([]int64, size)}
}

// Observe records one sample.
func (w *Window) Observe(d time.Duration) {
	w.mu.Lock()
	w.buf[w.idx] = int64(d)
	w.idx = (w.idx + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
	w.total++
	w.mu.Unlock()
}

// Count reports the total samples ever observed.
func (w *Window) Count() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.total
}

// Quantiles returns the requested quantiles (0 < p <= 1) over the
// retained window, zeros when no samples have been observed. The
// estimate is the nearest-rank sample: Quantiles(0.5, 0.95, 0.99)
// gives p50/p95/p99.
func (w *Window) Quantiles(ps ...float64) []time.Duration {
	out := make([]time.Duration, len(ps))
	w.mu.Lock()
	if w.n == 0 {
		w.mu.Unlock()
		return out
	}
	tmp := make([]int64, w.n)
	copy(tmp, w.buf[:w.n])
	w.mu.Unlock()
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	for i, p := range ps {
		k := int(float64(len(tmp))*p+0.5) - 1
		if k < 0 {
			k = 0
		}
		if k >= len(tmp) {
			k = len(tmp) - 1
		}
		out[i] = time.Duration(tmp[k])
	}
	return out
}

// RateMeter estimates a recent event rate (job completions per
// second) from a ring of event timestamps. It powers Retry-After:
// 429 responses advertise roughly how long the queue needs to drain.
type RateMeter struct {
	mu      sync.Mutex
	times   []time.Time
	idx, n  int
	horizon time.Duration
}

// NewRateMeter retains up to size events (<=0 → 512) and rates them
// over the trailing horizon (<=0 → 10s).
func NewRateMeter(size int, horizon time.Duration) *RateMeter {
	if size <= 0 {
		size = 512
	}
	if horizon <= 0 {
		horizon = 10 * time.Second
	}
	return &RateMeter{times: make([]time.Time, size), horizon: horizon}
}

// Observe records one event.
func (r *RateMeter) Observe(t time.Time) {
	r.mu.Lock()
	r.times[r.idx] = t
	r.idx = (r.idx + 1) % len(r.times)
	if r.n < len(r.times) {
		r.n++
	}
	r.mu.Unlock()
}

// PerSec reports events per second over the trailing horizon
// (0 when nothing recent happened).
func (r *RateMeter) PerSec(now time.Time) float64 {
	cutoff := now.Add(-r.horizon)
	r.mu.Lock()
	var c int
	for i := 0; i < r.n; i++ {
		if r.times[i].After(cutoff) {
			c++
		}
	}
	r.mu.Unlock()
	if c == 0 {
		return 0
	}
	return float64(c) / r.horizon.Seconds()
}
