package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Admission errors. A QuotaError (per-tenant refusal) is distinct
// from ErrQueueFull (global backpressure): the former means *this
// tenant* is over its quota while the fleet may be idle, the latter
// that the shared queue is exhausted.
var (
	ErrQueueFull = errors.New("cluster: queue full")
	ErrClosed    = errors.New("cluster: scheduler closed")
)

// QuotaError reports a per-tenant admission refusal.
type QuotaError struct {
	Tenant string
	Reason string
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("cluster: tenant %q over quota: %s", e.Tenant, e.Reason)
}

// Quota bounds one tenant's admission. Zero fields are unlimited
// (except Weight, where 0 means DefaultWeight 1).
type Quota struct {
	// Weight is the DWRR service share: a weight-5 tenant drains up to
	// 5 jobs per scheduling round for every 1 a weight-1 tenant gets.
	// Minimum effective weight is 1, so no backlogged tenant starves.
	Weight int
	// MaxQueued bounds jobs queued (admitted, not yet running).
	MaxQueued int
	// MaxInFlight bounds jobs admitted but not completed (queued +
	// running).
	MaxInFlight int
	// MaxInstrInFlight bounds the summed instruction budgets of
	// admitted-but-not-completed jobs (jobs submitted with cost 0 —
	// unlimited budget — do not count).
	MaxInstrInFlight int64
}

// SchedConfig sizes a scheduler.
type SchedConfig struct {
	// TotalQueue bounds queued jobs across all tenants, beyond those
	// in hand-off to already-parked consumers (default 64).
	TotalQueue int
	// Default is the quota applied to tenants without an entry in
	// Tenants.
	Default Quota
	// Tenants overrides quotas per tenant name. Zero fields of an
	// override inherit from Default (so a map of {Weight: 5} entries
	// sets weights without re-stating limits).
	Tenants map[string]Quota
}

type entry[T any] struct {
	v    T
	cost int64
	at   time.Time // enqueue time, for the queue-wait window
}

type schedTenant[T any] struct {
	name   string
	quota  Quota
	fifo   []entry[T]
	credit int // remaining service this round
	active bool

	running       int
	instrInFlight int64

	submitted, refused, dequeued, completed int64

	// qwait samples this tenant's admission-to-dequeue latency (the
	// per-tenant view behind the fleet-wide autoscaler window).
	qwait *Window
}

func (t *schedTenant[T]) weight() int {
	if t.quota.Weight < 1 {
		return 1
	}
	return t.quota.Weight
}

// TenantStats is one tenant's scheduler snapshot (exported on
// /metrics by internal/server).
type TenantStats struct {
	Tenant        string `json:"tenant"`
	Weight        int    `json:"weight"`
	Queued        int    `json:"queued"`
	Running       int    `json:"running"`
	InstrInFlight int64  `json:"instr_in_flight"`
	Submitted     int64  `json:"submitted"`
	Refused       int64  `json:"refused"`
	Dequeued      int64  `json:"dequeued"`
	Completed     int64  `json:"completed"`
	// Queue-wait percentiles over the tenant's recent dequeues
	// (milliseconds; zero until the first dequeue).
	QueueP50Ms float64 `json:"queue_p50_ms"`
	QueueP95Ms float64 `json:"queue_p95_ms"`
	QueueP99Ms float64 `json:"queue_p99_ms"`
}

// Sched is a deficit-weighted round-robin scheduler over per-tenant
// FIFO queues. Producers Submit (or SubmitBatch) under a tenant name;
// consumers Next one item at a time. Tenants with backlog are served
// in a round-robin of bursts sized by their weight, so service ratios
// converge to the weight ratios while every backlogged tenant gets at
// least one job per round — weighted fairness without starvation.
//
// Admission enforces per-tenant quotas (Quota) and the global
// TotalQueue bound, and is atomic per call: SubmitBatch admits all of
// its jobs or none. After Close, Submit fails with ErrClosed while
// Next keeps draining what was already admitted — an admitted job is
// never silently dropped, and a refused job was never enqueued, so no
// job can be both refused and executed.
type Sched[T any] struct {
	mu      sync.Mutex
	cfg     SchedConfig
	tenants map[string]*schedTenant[T]
	active  []*schedTenant[T]
	idx     int
	queued  int
	waiting int // consumers parked in Next
	closed  bool

	wake     chan struct{}
	closedCh chan struct{}
}

// NewSched builds a scheduler.
func NewSched[T any](cfg SchedConfig) *Sched[T] {
	if cfg.TotalQueue <= 0 {
		cfg.TotalQueue = 64
	}
	return &Sched[T]{
		cfg:      cfg,
		tenants:  make(map[string]*schedTenant[T]),
		wake:     make(chan struct{}, 1),
		closedCh: make(chan struct{}),
	}
}

// quotaFor merges the per-tenant override over the default quota.
func (s *Sched[T]) quotaFor(name string) Quota {
	q := s.cfg.Default
	o, ok := s.cfg.Tenants[name]
	if !ok {
		return q
	}
	if o.Weight != 0 {
		q.Weight = o.Weight
	}
	if o.MaxQueued != 0 {
		q.MaxQueued = o.MaxQueued
	}
	if o.MaxInFlight != 0 {
		q.MaxInFlight = o.MaxInFlight
	}
	if o.MaxInstrInFlight != 0 {
		q.MaxInstrInFlight = o.MaxInstrInFlight
	}
	return q
}

func (s *Sched[T]) tenant(name string) *schedTenant[T] {
	t, ok := s.tenants[name]
	if !ok {
		t = &schedTenant[T]{name: name, quota: s.quotaFor(name)}
		s.tenants[name] = t
	}
	return t
}

// admitErr reports why n more jobs with summed instruction cost extra
// cannot be admitted for t, or nil. Called with s.mu held.
func (s *Sched[T]) admitErr(t *schedTenant[T], n int, extra int64) error {
	// The global bound is waiter-aware: a job that an idle, parked
	// consumer will pop the moment it wakes is in hand-off, not truly
	// queued. Without this, two concurrent submits against a depth-1
	// queue with an idle worker race the worker's wakeup and one is
	// spuriously refused (a buffered channel gets this for free; a
	// lock-and-signal queue has to model it).
	if s.queued+n > s.cfg.TotalQueue+s.waiting {
		return ErrQueueFull
	}
	q := t.quota
	if q.MaxQueued > 0 && len(t.fifo)+n > q.MaxQueued {
		return &QuotaError{Tenant: t.name, Reason: fmt.Sprintf("max %d queued", q.MaxQueued)}
	}
	if q.MaxInFlight > 0 && len(t.fifo)+t.running+n > q.MaxInFlight {
		return &QuotaError{Tenant: t.name, Reason: fmt.Sprintf("max %d in flight", q.MaxInFlight)}
	}
	if q.MaxInstrInFlight > 0 && t.instrInFlight+extra > q.MaxInstrInFlight {
		return &QuotaError{Tenant: t.name,
			Reason: fmt.Sprintf("instruction budget quota %d exhausted", q.MaxInstrInFlight)}
	}
	return nil
}

// Submit admits one job for tenant with the given instruction-budget
// cost (0 = unlimited budget, exempt from the instr quota).
func (s *Sched[T]) Submit(tenant string, cost int64, v T) error {
	return s.SubmitBatch(tenant, []int64{cost}, []T{v})
}

// SubmitBatch atomically admits all jobs or none: a batch is one
// admission decision, so a client cannot end up with half a job array
// queued behind a quota.
func (s *Sched[T]) SubmitBatch(tenant string, costs []int64, vs []T) error {
	if len(costs) != len(vs) {
		return fmt.Errorf("cluster: batch costs/jobs length mismatch (%d vs %d)", len(costs), len(vs))
	}
	if len(vs) == 0 {
		return nil
	}
	var extra int64
	for _, c := range costs {
		extra += c
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	t := s.tenant(tenant)
	if err := s.admitErr(t, len(vs), extra); err != nil {
		t.refused += int64(len(vs))
		s.mu.Unlock()
		return err
	}
	now := time.Now()
	for i, v := range vs {
		t.fifo = append(t.fifo, entry[T]{v: v, cost: costs[i], at: now})
	}
	t.submitted += int64(len(vs))
	t.instrInFlight += extra
	s.queued += len(vs)
	if !t.active {
		t.active = true
		t.credit = t.weight()
		s.active = append(s.active, t)
	}
	s.mu.Unlock()
	s.signal()
	return nil
}

func (s *Sched[T]) signal() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// pop dequeues the next job under the DWRR policy. Called with s.mu
// held.
func (s *Sched[T]) pop() (T, bool) {
	var zero T
	if len(s.active) == 0 {
		return zero, false
	}
	if s.idx >= len(s.active) {
		s.idx = 0
	}
	t := s.active[s.idx]
	if t.credit <= 0 {
		t.credit = t.weight() // new round for this tenant
	}
	e := t.fifo[0]
	t.fifo = t.fifo[1:]
	if !e.at.IsZero() {
		if t.qwait == nil {
			t.qwait = NewWindow(256)
		}
		t.qwait.Observe(time.Since(e.at))
	}
	t.credit--
	t.dequeued++
	t.running++
	s.queued--
	if len(t.fifo) == 0 {
		// Tenant drained: leave the round. (Deficit resets — an idle
		// tenant does not bank service.)
		t.active = false
		t.credit = 0
		s.active = append(s.active[:s.idx], s.active[s.idx+1:]...)
	} else if t.credit == 0 {
		s.idx++ // burst spent: next tenant's turn
	}
	return e.v, true
}

// Next blocks until a job is available and returns it, or returns
// ok=false when quit closes or the scheduler is closed and drained.
// The caller must pair every successful Next with a Done call carrying
// the same tenant and cost.
func (s *Sched[T]) Next(quit <-chan struct{}) (T, bool) {
	var zero T
	// parked tracks whether this consumer holds a waiting slot. The
	// slot is taken at first park and held until the consumer actually
	// pops (or exits) — a woken-but-not-yet-popped consumer still
	// justifies the admission headroom it advertised.
	parked := false
	release := func() {
		if parked {
			s.waiting--
			parked = false
		}
	}
	for {
		// A closed quit channel exits promptly even with backlog: the
		// job stays queued for the remaining consumers.
		if quit != nil {
			select {
			case <-quit:
				s.mu.Lock()
				release()
				s.mu.Unlock()
				return zero, false
			default:
			}
		}
		s.mu.Lock()
		v, ok := s.pop()
		more := s.queued > 0
		closed := s.closed
		if ok || closed {
			release()
		} else if !parked {
			s.waiting++ // about to park: admission may count on us
			parked = true
		}
		s.mu.Unlock()
		if ok {
			if more {
				s.signal() // pass the baton to another waiter
			}
			return v, true
		}
		if closed {
			return zero, false
		}
		if quit == nil {
			select {
			case <-s.wake:
			case <-s.closedCh:
			}
			continue
		}
		select {
		case <-s.wake:
		case <-s.closedCh:
		case <-quit:
			s.mu.Lock()
			release()
			s.mu.Unlock()
			return zero, false
		}
	}
}

// Done releases a dequeued job's quota share.
func (s *Sched[T]) Done(tenant string, cost int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenant(tenant)
	t.running--
	t.instrInFlight -= cost
	t.completed++
}

// Close stops admission. Already-queued jobs keep flowing through
// Next until the queue is empty. Idempotent.
func (s *Sched[T]) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.closedCh)
	}
	s.mu.Unlock()
}

// Queued reports the total queued (not yet running) jobs.
func (s *Sched[T]) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// Stats snapshots every tenant ever seen, sorted by name.
func (s *Sched[T]) Stats() []TenantStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TenantStats, 0, len(s.tenants))
	for _, t := range s.tenants {
		st := TenantStats{
			Tenant:        t.name,
			Weight:        t.weight(),
			Queued:        len(t.fifo),
			Running:       t.running,
			InstrInFlight: t.instrInFlight,
			Submitted:     t.submitted,
			Refused:       t.refused,
			Dequeued:      t.dequeued,
			Completed:     t.completed,
		}
		if t.qwait != nil {
			qs := t.qwait.Quantiles(0.5, 0.95, 0.99)
			st.QueueP50Ms = float64(qs[0]) / 1e6
			st.QueueP95Ms = float64(qs[1]) / 1e6
			st.QueueP99Ms = float64(qs[2]) / 1e6
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
