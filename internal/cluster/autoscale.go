package cluster

import (
	"sync/atomic"
	"time"
)

// AutoscaleConfig bounds and tunes a worker-pool autoscaler.
type AutoscaleConfig struct {
	// Min and Max bound the pool (Min >= 1; Max >= Min).
	Min, Max int
	// TargetP95 is the queue-latency ceiling: observed p95 above it
	// with a non-empty queue scales the pool up (default 100ms).
	TargetP95 time.Duration
	// Interval is the sampling/decision period (default 250ms).
	Interval time.Duration
	// UpCooldown is the minimum gap between consecutive scale-ups
	// (default Interval); DownCooldown between scale-downs (default
	// 2s), so the pool grows fast under pressure and shrinks slowly.
	UpCooldown, DownCooldown time.Duration
}

func (c *AutoscaleConfig) fillDefaults() {
	if c.Min < 1 {
		c.Min = 1
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.TargetP95 <= 0 {
		c.TargetP95 = 100 * time.Millisecond
	}
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.UpCooldown <= 0 {
		c.UpCooldown = c.Interval
	}
	if c.DownCooldown <= 0 {
		c.DownCooldown = 2 * time.Second
	}
}

// AutoscaleStats is the autoscaler's metrics snapshot.
type AutoscaleStats struct {
	Min         int     `json:"min"`
	Max         int     `json:"max"`
	TargetP95Ms float64 `json:"target_p95_ms"`
	ScaleUps    int64   `json:"scale_ups"`
	ScaleDowns  int64   `json:"scale_downs"`
	LastP95Ms   float64 `json:"last_p95_ms"`
}

// Sample is one autoscaler observation of the serving system.
type Sample struct {
	// P95 is the observed p95 queue latency over the recent window.
	P95 time.Duration
	// Depth is the current queued-job count.
	Depth int
	// Busy is the number of workers currently executing a job.
	Busy int
}

// Autoscaler sizes a worker pool between Min and Max against observed
// queue latency: scale up one worker per decision while the p95 queue
// wait exceeds TargetP95 and jobs are waiting; scale down one worker
// at a time — after a longer cooldown — while the queue is empty and a
// worker is idle. Decisions are pure (Decide) so policy is unit
// testable; Run drives them on a ticker against live callbacks.
type Autoscaler struct {
	cfg                  AutoscaleConfig
	lastUp, lastDown     time.Time
	scaleUps, scaleDowns atomic.Int64
	lastP95              atomic.Int64 // nanos
}

// NewAutoscaler builds an autoscaler.
func NewAutoscaler(cfg AutoscaleConfig) *Autoscaler {
	cfg.fillDefaults()
	return &Autoscaler{cfg: cfg}
}

// Config reports the effective (default-filled) configuration.
func (a *Autoscaler) Config() AutoscaleConfig { return a.cfg }

// Decide returns the target pool size for the observation at now,
// given the current size. It mutates only cooldown bookkeeping.
func (a *Autoscaler) Decide(now time.Time, cur int, s Sample) int {
	a.lastP95.Store(int64(s.P95))
	switch {
	case cur < a.cfg.Min:
		return a.cfg.Min
	case cur > a.cfg.Max:
		return a.cfg.Max
	case s.Depth > 0 && s.P95 > a.cfg.TargetP95 && cur < a.cfg.Max &&
		now.Sub(a.lastUp) >= a.cfg.UpCooldown:
		a.lastUp = now
		a.scaleUps.Add(1)
		return cur + 1
	case s.Depth == 0 && s.Busy < cur && cur > a.cfg.Min &&
		now.Sub(a.lastUp) >= a.cfg.DownCooldown &&
		now.Sub(a.lastDown) >= a.cfg.DownCooldown:
		a.lastDown = now
		a.scaleDowns.Add(1)
		return cur - 1
	}
	return cur
}

// Run drives Decide on the configured interval until stop closes.
// sample observes the system, size reports the current pool width, and
// resize applies a new target; resize is only called when the target
// differs from the current size.
func (a *Autoscaler) Run(stop <-chan struct{}, sample func() Sample, size func() int, resize func(int)) {
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			cur := size()
			if target := a.Decide(now, cur, sample()); target != cur {
				resize(target)
			}
		}
	}
}

// Stats snapshots the autoscaler counters.
func (a *Autoscaler) Stats() AutoscaleStats {
	return AutoscaleStats{
		Min:         a.cfg.Min,
		Max:         a.cfg.Max,
		TargetP95Ms: float64(a.cfg.TargetP95.Nanoseconds()) / 1e6,
		ScaleUps:    a.scaleUps.Load(),
		ScaleDowns:  a.scaleDowns.Load(),
		LastP95Ms:   float64(a.lastP95.Load()) / 1e6,
	}
}
