package toolchain

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"mcfi/internal/buildstore"
	"mcfi/internal/codegen"
	"mcfi/internal/libc"
	"mcfi/internal/linker"
	"mcfi/internal/minic"
	"mcfi/internal/module"
	"mcfi/internal/mrt"
	"mcfi/internal/sema"
	"mcfi/internal/visa"
)

// Builder is the MCFI build driver. It is constructed with functional
// options and is safe for concurrent use; Build compiles translation
// units in parallel and links against a memoized libc, so regenerating
// the full experiment suite compiles libc once per (profile,
// instrumentation) flavor instead of once per program.
//
//	b := toolchain.New(
//		toolchain.WithProfile(visa.Profile64),
//		toolchain.WithInstrumentation(),
//	)
//	img, err := b.Build(toolchain.Source{Name: "prog", Text: src})
type Builder struct {
	profile    visa.Profile
	instrument bool
	noPrelude  bool
	jobs       int
	cache      *LibcCache
	store      *buildstore.Tiered
	linkOpts   linker.Options
}

// Option configures a Builder.
type Option func(*Builder)

// New returns a Builder targeting Profile64, uninstrumented, with the
// libc prelude, the process-wide libc cache, and one compile job per
// CPU; options override each default.
func New(opts ...Option) *Builder {
	b := &Builder{
		profile: visa.Profile64,
		cache:   DefaultLibcCache(),
		jobs:    runtime.GOMAXPROCS(0),
	}
	for _, o := range opts {
		o(b)
	}
	if b.profile != visa.Profile32 {
		b.profile = visa.Profile64
	}
	if b.jobs < 1 {
		b.jobs = 1
	}
	return b
}

// WithProfile selects the VISA profile (Profile32 or Profile64).
func WithProfile(p visa.Profile) Option {
	return func(b *Builder) { b.profile = p }
}

// WithInstrumentation enables MCFI instrumentation.
func WithInstrumentation() Option {
	return func(b *Builder) { b.instrument = true }
}

// WithInstrument sets instrumentation from a flag value (the
// programmatic form of WithInstrumentation).
func WithInstrument(on bool) Option {
	return func(b *Builder) { b.instrument = on }
}

// WithoutPrelude skips prepending the libc header to sources (used
// when compiling the libc itself or fully self-contained modules).
func WithoutPrelude() Option {
	return func(b *Builder) { b.noPrelude = true }
}

// WithLibcCache substitutes the compiled-libc cache (nil disables
// memoization).
func WithLibcCache(c *LibcCache) Option {
	return func(b *Builder) { b.cache = c }
}

// WithLinkOptions sets the linker options used by Build and Link.
func WithLinkOptions(o linker.Options) Option {
	return func(b *Builder) { b.linkOpts = o }
}

// WithJobs bounds the number of concurrent compile jobs in Build
// (default: GOMAXPROCS).
func WithJobs(n int) Option {
	return func(b *Builder) { b.jobs = n }
}

// WithStore attaches a build store: Build consults it (keyed by
// Fingerprint) before compiling and publishes fresh images into it,
// and Libc rides the store's object plane so per-flavor libc objects
// persist across processes. nil (the default) builds from source every
// time, memoizing only libc in-process.
func WithStore(s *buildstore.Tiered) Option {
	return func(b *Builder) { b.store = s }
}

// Profile reports the builder's target profile.
func (b *Builder) Profile() visa.Profile { return b.profile }

// Instrumented reports whether the builder instruments code.
func (b *Builder) Instrumented() bool { return b.instrument }

// Fingerprint returns a content hash identifying the image Build would
// produce for the given sources: it covers everything that affects the
// output — the builder flavor (profile, instrumentation, prelude),
// link options, and every source name and text. The pipeline is
// deterministic, so equal fingerprints mean identical images; this is
// the key for content-addressed build caches (mcfi-serve builds each
// distinct fingerprint once, no matter how many concurrent jobs
// request it).
func (b *Builder) Fingerprint(srcs ...Source) string {
	h := sha256.New()
	fmt.Fprintf(h, "mcfi-build-v1|profile=%d|instrument=%t|prelude=%t|unresolved=%t|noentry=%t\n",
		b.profile, b.instrument, !b.noPrelude,
		b.linkOpts.AllowUnresolved, b.linkOpts.NoEntry)
	for _, s := range srcs {
		// Length-prefixed fields keep (name, text) pairs unambiguous.
		fmt.Fprintf(h, "%d:%s|%d:", len(s.Name), s.Name, len(s.Text))
		io.WriteString(h, s.Text)
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Compile runs parse+sema+codegen on one translation unit and returns
// its MCFI object module.
func (b *Builder) Compile(src Source) (*module.Object, error) {
	text := src.Text
	if !b.noPrelude {
		text = libc.Header + "\n" + text
	}
	file, err := minic.Parse(src.Name, text)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", src.Name, err)
	}
	unit, err := sema.Analyze(file)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", src.Name, err)
	}
	obj, err := codegen.Compile(unit, codegen.Options{
		Profile:    b.profile,
		Instrument: b.instrument,
		ModuleName: src.Name,
	})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", src.Name, err)
	}
	return obj, nil
}

// Analyze runs parse+sema only, returning the typed unit the C1/C2
// analyzer consumes. The prelude is prepended unless the builder was
// constructed WithoutPrelude.
func (b *Builder) Analyze(src Source) (*sema.Unit, error) {
	text := src.Text
	if !b.noPrelude {
		text = libc.Header + "\n" + text
	}
	file, err := minic.Parse(src.Name, text)
	if err != nil {
		return nil, err
	}
	return sema.Analyze(file)
}

// Libc returns the compiled libc module for the builder's flavor,
// memoized in the configured cache. With a store attached, the cache
// miss path first consults the store's blob plane (keyed by flavor and
// libc source text), so a warm disk store means zero libc compiles
// even in a fresh process. Callers must not mutate the result.
func (b *Builder) Libc() (*module.Object, error) {
	compile := func() (*module.Object, error) {
		lb := *b
		lb.noPrelude = true
		return lb.Compile(Source{Name: "libc", Text: libc.Source})
	}
	if b.store != nil && b.store.BlobTiers() > 0 {
		local := compile
		compile = func() (*module.Object, error) {
			key := buildstore.HashKey(fmt.Sprintf(
				"mcfi-libc-obj-v1|profile=%d|instrument=%t|", b.profile, b.instrument) + libc.Source)
			var built *module.Object
			payload, _, err := b.store.GetOrBuildObject(key, func() ([]byte, error) {
				obj, err := local()
				if err != nil {
					return nil, err
				}
				built = obj
				return obj.Bytes(), nil
			})
			if err != nil {
				return nil, err
			}
			if built != nil {
				return built, nil
			}
			return module.Read(payload)
		}
	}
	if b.cache == nil {
		return compile()
	}
	return b.cache.get(b.profile, b.instrument, compile)
}

// Link combines compiled objects into an executable image using the
// builder's link options.
func (b *Builder) Link(objs ...*module.Object) (*linker.Image, error) {
	return linker.Link(objs, b.linkOpts)
}

// Build compiles the given sources (concurrently, bounded by the
// builder's job count), appends the memoized libc, and statically
// links everything into an executable image. With a store attached
// this is BuildTiered without the provenance.
func (b *Builder) Build(srcs ...Source) (*linker.Image, error) {
	img, _, err := b.BuildTiered(srcs...)
	return img, err
}

// BuildTiered is Build plus provenance: the returned Tier names where
// the image came from (a store tier, or buildstore.TierBuilt for a
// fresh compile — always TierBuilt when no store is attached).
func (b *Builder) BuildTiered(srcs ...Source) (*linker.Image, buildstore.Tier, error) {
	img, tier, _, err := b.BuildTraced(srcs...)
	return img, tier, err
}

// BuildPhases times one build's phases for the job tracer: the store
// probe (plus any wait on a coalesced in-flight build), and — on a
// miss — the parallel compile section and the link.
type BuildPhases struct {
	Tier      buildstore.Tier
	StoreNs   int64
	CompileNs int64
	LinkNs    int64
}

// BuildTraced is BuildTiered with per-phase timings.
func (b *Builder) BuildTraced(srcs ...Source) (*linker.Image, buildstore.Tier, BuildPhases, error) {
	var ph BuildPhases
	if b.store == nil {
		img, err := b.buildFromSource(&ph, srcs...)
		ph.Tier = buildstore.TierBuilt
		return img, buildstore.TierBuilt, ph, err
	}
	img, tier, bt, err := b.store.GetOrBuildTraced(b.Fingerprint(srcs...), func() (*linker.Image, error) {
		return b.buildFromSource(&ph, srcs...)
	})
	ph.Tier = tier
	ph.StoreNs = bt.ProbeNs + bt.WaitNs
	return img, tier, ph, err
}

// buildFromSource is the uncached compile+link pipeline. ph, when
// non-nil, receives the compile/link split.
func (b *Builder) buildFromSource(ph *BuildPhases, srcs ...Source) (*linker.Image, error) {
	start := time.Now()
	objs := make([]*module.Object, len(srcs)+1)
	errs := make([]error, len(srcs)+1)
	sem := make(chan struct{}, b.jobs)
	var wg sync.WaitGroup
	for i, s := range srcs {
		wg.Add(1)
		go func(i int, s Source) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			objs[i], errs[i] = b.Compile(s)
		}(i, s)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		lc, err := b.Libc()
		if err != nil {
			err = fmt.Errorf("libc: %w", err)
		}
		objs[len(srcs)], errs[len(srcs)] = lc, err
	}()
	wg.Wait()
	if ph != nil {
		ph.CompileNs = time.Since(start).Nanoseconds()
	}
	// Report the first failure in source order, like a sequential
	// driver would.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	start = time.Now()
	img, err := b.Link(objs...)
	if ph != nil {
		ph.LinkNs = time.Since(start).Nanoseconds()
	}
	return img, err
}

// Run builds and executes a program to completion, returning its exit
// code, captured output, and retired-instruction count.
func (b *Builder) Run(maxInstr int64, srcs ...Source) (code int64, output string, instret int64, err error) {
	img, err := b.Build(srcs...)
	if err != nil {
		return -1, "", 0, err
	}
	rt, err := mrt.New(img, mrt.Options{})
	if err != nil {
		return -1, "", 0, err
	}
	code, err = rt.Run(maxInstr)
	return code, rt.Output(), rt.Instret(), err
}
