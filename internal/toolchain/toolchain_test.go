package toolchain

import (
	"strings"
	"testing"

	"mcfi/internal/visa"
)

// runBoth builds and runs a program under all four configurations
// (both profiles, instrumented and baseline) and checks exit code and
// output agree everywhere.
func runBoth(t *testing.T, src string, wantCode int64, wantOut string) {
	t.Helper()
	for _, profile := range []visa.Profile{visa.Profile64, visa.Profile32} {
		for _, instr := range []bool{false, true} {
			b := New(WithProfile(profile), WithInstrument(instr))
			code, out, _, err := b.Run(200_000_000, Source{Name: "main", Text: src})
			if err != nil {
				t.Fatalf("%s instrument=%v: %v", profile, instr, err)
			}
			if code != wantCode {
				t.Errorf("%s instrument=%v: exit code %d, want %d", profile, instr, code, wantCode)
			}
			if out != wantOut {
				t.Errorf("%s instrument=%v: output %q, want %q", profile, instr, out, wantOut)
			}
		}
	}
}

func TestHelloWorld(t *testing.T) {
	runBoth(t, `
int main(void) {
	puts("hello, MCFI");
	return 0;
}`, 0, "hello, MCFI\n")
}

func TestArithmetic(t *testing.T) {
	runBoth(t, `
int main(void) {
	long a = 1000000007;
	long b = 998244353;
	printf("%ld %ld %ld %ld\n", a + b, a - b, (a * b) % 1000003, a / 3);
	int x = -17;
	unsigned int u = 3000000000u;
	printf("%d %u %d %d\n", x / 5, u, x % 5, abs(x));
	printf("%d %d %d\n", 1 << 20, 255 >> 4, 0x3C ^ 0xFF);
	return 42;
}`, 42, "1998244360 1755654 614682 333333335\n-3 3000000000 -2 17\n1048576 15 195\n")
}

func TestControlFlowAndLoops(t *testing.T) {
	runBoth(t, `
int collatz(int n) {
	int steps = 0;
	while (n != 1) {
		if (n % 2 == 0) n = n / 2;
		else n = 3 * n + 1;
		steps++;
	}
	return steps;
}
int main(void) {
	int total = 0;
	for (int i = 1; i <= 20; i++) total += collatz(i);
	printf("%d\n", total);
	int i = 0;
	do { i += 3; } while (i < 10);
	printf("%d\n", i);
	return 0;
}`, 0, "196\n12\n")
}

func TestFunctionPointers(t *testing.T) {
	runBoth(t, `
int add(int a, int b) { return a + b; }
int sub(int a, int b) { return a - b; }
int mul(int a, int b) { return a * b; }

int (*ops[3])(int, int) = {add, sub, mul};

int apply(int (*f)(int, int), int a, int b) { return f(a, b); }

int main(void) {
	int total = 0;
	for (int i = 0; i < 3; i++) total += apply(ops[i], 10, 4);
	int (*p)(int, int) = &mul;
	total += p(6, 7);
	printf("%d\n", total);
	return 0;
}`, 0, "102\n")
}

func TestSwitchJumpTable(t *testing.T) {
	runBoth(t, `
char *name(int op) {
	switch (op) {
	case 0: return "add";
	case 1: return "sub";
	case 2: return "mul";
	case 3: return "div";
	case 4: return "mod";
	case 5: return "and";
	case 6: return "or";
	default: return "unknown";
	}
}
int eval(int op, int a, int b) {
	int r;
	switch (op) {
	case 0: r = a + b; break;
	case 1: r = a - b; break;
	case 2: r = a * b; break;
	case 3: r = a / b; break;
	case 4: r = a % b; break;
	case 5: r = a & b; break;
	case 6: r = a | b; break;
	default: r = -1;
	}
	return r;
}
int main(void) {
	for (int op = 0; op < 8; op++) {
		printf("%s=%d\n", name(op), eval(op, 36, 5));
	}
	return 0;
}`, 0, "add=41\nsub=31\nmul=180\ndiv=7\nmod=1\nand=4\nor=37\nunknown=-1\n")
}

func TestStructsAndPointers(t *testing.T) {
	runBoth(t, `
struct point { int x; int y; };
struct rect { struct point tl; struct point br; };

int area(struct rect *r) {
	return (r->br.x - r->tl.x) * (r->br.y - r->tl.y);
}
struct point mid(struct rect r) {
	struct point p;
	p.x = (r.tl.x + r.br.x) / 2;
	p.y = (r.tl.y + r.br.y) / 2;
	return p;
}
int main(void) {
	struct rect r = {{1, 2}, {11, 22}};
	struct point m = mid(r);
	printf("%d %d %d\n", area(&r), m.x, m.y);
	return 0;
}`, 0, "200 6 12\n")
}

func TestMallocAndStrings(t *testing.T) {
	runBoth(t, `
int main(void) {
	char *buf = (char*)malloc(64);
	strcpy(buf, "dynamic");
	printf("%s %ld\n", buf, strlen(buf));
	long *nums = (long*)malloc(10 * sizeof(long));
	for (int i = 0; i < 10; i++) nums[i] = (long)i * i;
	long sum = 0;
	for (int i = 0; i < 10; i++) sum += nums[i];
	free(nums);
	free(buf);
	char *big = (char*)calloc(100, 8);
	printf("%ld %d\n", sum, big[500]);
	return 0;
}`, 0, "dynamic 7\n285 0\n")
}

func TestQsortComparator(t *testing.T) {
	runBoth(t, `
int cmp_long(void *a, void *b) {
	long x = *(long*)a;
	long y = *(long*)b;
	if (x < y) return -1;
	if (x > y) return 1;
	return 0;
}
int main(void) {
	long v[8] = {42, 7, 99, -3, 15, 0, 23, 8};
	qsort(v, 8, sizeof(long), cmp_long);
	for (int i = 0; i < 8; i++) printf("%ld ", v[i]);
	putchar(10);
	return 0;
}`, 0, "-3 0 7 8 15 23 42 99 \n")
}

func TestSetjmpLongjmp(t *testing.T) {
	runBoth(t, `
jmp_buf env;

void fail(int depth) {
	if (depth == 0) longjmp(env, 7);
	fail(depth - 1);
}
int main(void) {
	int r = setjmp(env);
	if (r == 0) {
		puts("trying");
		fail(5);
		puts("unreachable");
	} else {
		printf("recovered %d\n", r);
	}
	return 0;
}`, 0, "trying\nrecovered 7\n")
}

func TestRecursionAndGoto(t *testing.T) {
	runBoth(t, `
long fib(long n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int main(void) {
	printf("%ld\n", fib(20));
	int i = 0;
	int sum = 0;
again:
	sum += i;
	i++;
	if (i < 5) goto again;
	printf("%d\n", sum);
	return 0;
}`, 0, "6765\n10\n")
}

func TestDoubles(t *testing.T) {
	runBoth(t, `
double mysqrt(double x) {
	double g = x / 2.0;
	for (int i = 0; i < 30; i++) g = (g + x / g) / 2.0;
	return g;
}
int main(void) {
	double s = mysqrt(2.0);
	print_double(s);
	putchar(10);
	double sum = 0.0;
	for (int i = 1; i <= 10; i++) sum += 1.0 / (double)i;
	print_double(sum);
	putchar(10);
	printf("%d\n", (int)(s * 100.0));
	return 0;
}`, 0, "1.414213\n2.928968\n141\n")
}

func TestGlobalsAndStatics(t *testing.T) {
	runBoth(t, `
int counter = 100;
static int hidden = 5;
int table[4] = {2, 4, 8, 16};
char *msg = "global string";

int bump(void) {
	static int calls;
	calls++;
	return calls;
}
int main(void) {
	counter += hidden;
	bump(); bump();
	printf("%d %d %d %s\n", counter, bump(), table[3], msg);
	return 0;
}`, 0, "105 3 16 global string\n")
}

func TestEnumsAndTypedef(t *testing.T) {
	runBoth(t, `
typedef struct node {
	int value;
	struct node *next;
} node_t;

enum color { RED, GREEN = 10, BLUE };

int main(void) {
	node_t a, b;
	a.value = 1; a.next = &b;
	b.value = 2; b.next = (node_t*)0;
	int sum = 0;
	node_t *p = &a;
	while (p) { sum += p->value; p = p->next; }
	printf("%d %d %d %d\n", sum, RED, GREEN, BLUE);
	return 0;
}`, 0, "3 0 10 11\n")
}

func TestVariadicPrintfEdge(t *testing.T) {
	runBoth(t, `
int main(void) {
	printf("%%d prints %d; %%s prints %s; %%c prints %c; hex %x\n",
	       -42, "str", 'Z', 255);
	return 0;
}`, 0, "%d prints -42; %s prints str; %c prints Z; hex ff\n")
}

func TestTernaryShortCircuit(t *testing.T) {
	runBoth(t, `
int calls = 0;
int bump(int v) { calls++; return v; }
int main(void) {
	int a = (5 > 3) ? bump(10) : bump(20);
	int b = 0 && bump(1);
	int c = 1 || bump(2);
	printf("%d %d %d %d\n", a, b, c, calls);
	return 0;
}`, 0, "10 0 1 1\n")
}

func TestMultiModuleLink(t *testing.T) {
	lib := Source{Name: "mathlib", Text: `
int square(int x) { return x * x; }
int cube(int x) { return x * x * x; }
int (*getop(int which))(int) {
	if (which == 0) return square;
	return cube;
}`}
	main := Source{Name: "main", Text: `
int square(int x);
int cube(int x);
int (*getop(int which))(int);
int main(void) {
	int direct = square(5) + cube(3);
	int (*f)(int) = getop(1);
	printf("%d %d\n", direct, f(2));
	return 0;
}`}
	for _, instr := range []bool{false, true} {
		code, out, _, err := New(WithInstrument(instr)).Run(10_000_000, main, lib)
		if err != nil {
			t.Fatalf("instrument=%v: %v", instr, err)
		}
		if code != 0 || out != "52 8\n" {
			t.Errorf("instrument=%v: code=%d out=%q", instr, code, out)
		}
	}
}

func TestTailCallProfile64(t *testing.T) {
	// Mutual recursion in tail position: deep enough that without TCO
	// the stack (1 MiB) would overflow on Profile64 if the transform
	// failed to reuse the frame.
	src := `
int is_odd(int n);
int is_even(int n) {
	if (n == 0) return 1;
	return is_odd(n - 1);
}
int is_odd(int n) {
	if (n == 0) return 0;
	return is_even(n - 1);
}
int main(void) {
	printf("%d %d\n", is_even(100000), is_odd(99999));
	return 0;
}`
	code, out, _, err := New(WithInstrumentation()).Run(100_000_000, Source{Name: "main", Text: src})
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 || out != "1 1\n" {
		t.Errorf("code=%d out=%q", code, out)
	}
}

func TestInstrumentationOverheadVisible(t *testing.T) {
	src := `
int bump(int x) { return x + 1; }
int main(void) {
	int v = 0;
	for (int i = 0; i < 10000; i++) v = bump(v);
	return v == 10000 ? 0 : 1;
}`
	_, _, base, err := New().Run(50_000_000, Source{Name: "m", Text: src})
	if err != nil {
		t.Fatal(err)
	}
	_, _, inst, err := New(WithInstrumentation()).Run(50_000_000, Source{Name: "m", Text: src})
	if err != nil {
		t.Fatal(err)
	}
	if inst <= base {
		t.Errorf("instrumented run (%d instrs) should retire more than baseline (%d)", inst, base)
	}
	overhead := float64(inst-base) / float64(base)
	if overhead > 0.60 {
		t.Errorf("overhead %.1f%% implausibly high", overhead*100)
	}
	t.Logf("baseline=%d instrumented=%d overhead=%.2f%%", base, inst, overhead*100)
}

func TestCompileErrorsSurface(t *testing.T) {
	_, _, _, err := New().Run(1000, Source{Name: "bad", Text: `int main(void) { return undeclared; }`})
	if err == nil || !strings.Contains(err.Error(), "undeclared") {
		t.Errorf("want undeclared-identifier error, got %v", err)
	}
	_, err2 := New().Build(
		Source{Name: "noext", Text: `int missing(int); int main(void) { return missing(1); }`})
	if err2 == nil || !strings.Contains(err2.Error(), "undefined symbol") {
		t.Errorf("want undefined-symbol error, got %v", err2)
	}
}

// TestCrossModuleTypeMatching: the property separate compilation hangs
// on (paper §6) — a struct type declared identically in two modules is
// structurally equal, so a function pointer of that type defined in one
// module may call a matching function defined in the other, through
// signatures merged at link time.
func TestCrossModuleTypeMatching(t *testing.T) {
	libSrc := Source{Name: "cblib", Text: `
struct event { int kind; long payload; };
long handle_event(struct event *e) { return e->payload * (long)e->kind; }
`}
	mainSrc := Source{Name: "main", Text: `
struct event { int kind; long payload; };
long handle_event(struct event *e);
long (*handler)(struct event *) = handle_event;
int main(void) {
	struct event e;
	e.kind = 3; e.payload = 14;
	printf("%ld\n", handler(&e));
	return 0;
}`}
	code, out, _, err := New(WithInstrumentation()).Run(10_000_000, mainSrc, libSrc)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 || out != "42\n" {
		t.Errorf("code=%d out=%q", code, out)
	}
}

// TestCrossModuleTypeMismatchBlocked: the complement — if the modules
// declare *different* struct shapes under the same calls, type matching
// must refuse the edge and the checked call halts.
func TestCrossModuleTypeMismatchBlocked(t *testing.T) {
	libSrc := Source{Name: "cblib", Text: `
struct event { long a; long b; long c; };   // different shape
long handle_event(struct event *e) { return e->a; }
long (*expose(void))(struct event *) { return handle_event; }
`}
	mainSrc := Source{Name: "main", Text: `
struct event { int kind; long payload; };
long (*expose(void))(struct event *);
int main(void) {
	long (*h)(struct event *) = expose();
	struct event e;
	e.kind = 1; e.payload = 2;
	h(&e);
	return 0;
}`}
	_, _, _, err := New(WithInstrumentation()).Run(10_000_000, mainSrc, libSrc)
	if err == nil {
		t.Fatal("shape-mismatched cross-module call should be halted by MCFI")
	}
}
