package toolchain

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"mcfi/internal/linker"
	"mcfi/internal/visa"
)

// TestLibcCacheMemoizes: the same flavor compiles libc once; distinct
// flavors get distinct entries.
func TestLibcCacheMemoizes(t *testing.T) {
	cache := NewLibcCache()
	b := New(WithInstrumentation(), WithLibcCache(cache))
	first, err := b.Libc()
	if err != nil {
		t.Fatal(err)
	}
	again, err := b.Libc()
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Error("same flavor must return the cached libc object")
	}
	if cache.Len() != 1 {
		t.Errorf("cache has %d entries, want 1", cache.Len())
	}
	other, err := New(WithLibcCache(cache)).Libc() // uninstrumented flavor
	if err != nil {
		t.Fatal(err)
	}
	if other == first {
		t.Error("different flavors must not share a libc object")
	}
	if cache.Len() != 2 {
		t.Errorf("cache has %d entries, want 2", cache.Len())
	}
}

// TestLibcCacheConcurrent hammers one cache from many goroutines; the
// libc must compile exactly once and every caller sees the same object.
func TestLibcCacheConcurrent(t *testing.T) {
	cache := NewLibcCache()
	objs := make([]interface{}, 16)
	var wg sync.WaitGroup
	for i := range objs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			obj, err := New(WithInstrumentation(), WithLibcCache(cache)).Libc()
			if err != nil {
				t.Error(err)
				return
			}
			objs[i] = obj
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(objs); i++ {
		if objs[i] != objs[0] {
			t.Fatal("concurrent Libc calls returned different objects")
		}
	}
	if cache.Len() != 1 {
		t.Errorf("cache has %d entries, want 1", cache.Len())
	}
}

// TestCachedLibcLinksRepeatedly links the same memoized libc object
// into many images and checks each program still runs correctly — the
// linker must not mutate its inputs.
func TestCachedLibcLinksRepeatedly(t *testing.T) {
	b := New(WithInstrumentation())
	for i := 0; i < 3; i++ {
		src := fmt.Sprintf(`
int main(void) {
	printf("round %%d\n", %d);
	return 0;
}`, i)
		code, out, _, err := b.Run(10_000_000, Source{Name: "r", Text: src})
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if code != 0 || out != fmt.Sprintf("round %d\n", i) {
			t.Errorf("round %d: code=%d out=%q", i, code, out)
		}
	}
}

// TestParallelBuildManyTUs compiles a multi-module program through the
// bounded worker pool and checks link order (and so image layout) is
// deterministic regardless of compile-finish order.
func TestParallelBuildManyTUs(t *testing.T) {
	var srcs []Source
	var calls, sum string
	for i := 0; i < 8; i++ {
		srcs = append(srcs, Source{
			Name: fmt.Sprintf("tu%d", i),
			Text: fmt.Sprintf("int f%d(void) { return %d; }", i, i*i),
		})
		calls += fmt.Sprintf("	total += f%d();\n", i)
	}
	for i := 0; i < 8; i++ {
		sum += fmt.Sprintf("int f%d(void);\n", i)
	}
	main := Source{Name: "main", Text: sum + `
int main(void) {
	int total = 0;
` + calls + `	printf("%d\n", total);
	return 0;
}`}
	b := New(WithInstrumentation(), WithJobs(4))
	img1, err := b.Build(append([]Source{main}, srcs...)...)
	if err != nil {
		t.Fatal(err)
	}
	img2, err := b.Build(append([]Source{main}, srcs...)...)
	if err != nil {
		t.Fatal(err)
	}
	if len(img1.Code) != len(img2.Code) {
		t.Errorf("parallel builds differ in size: %d vs %d", len(img1.Code), len(img2.Code))
	}
	for i, m := range img1.Modules {
		if img2.Modules[i].Name != m.Name {
			t.Fatalf("module order not deterministic: %s vs %s", m.Name, img2.Modules[i].Name)
		}
	}
	code, out, _, err := b.Run(10_000_000, append([]Source{main}, srcs...)...)
	if err != nil || code != 0 || out != "140\n" {
		t.Errorf("code=%d out=%q err=%v (want 140)", code, out, err)
	}
}

// TestBuildReportsFirstErrorInSourceOrder: with several failing TUs the
// reported error is the first in argument order, like a sequential
// driver, not whichever goroutine loses the race.
func TestBuildReportsFirstErrorInSourceOrder(t *testing.T) {
	_, err := New(WithJobs(4)).Build(
		Source{Name: "a", Text: `int main(void) { return first_bad; }`},
		Source{Name: "b", Text: `int g(void) { return second_bad; }`},
	)
	if err == nil || !strings.Contains(err.Error(), "first_bad") {
		t.Errorf("want the first source's error, got %v", err)
	}
}

// TestFingerprintKeysOnFlavorAndContent: the build-cache key changes
// with any input that changes the output image — source text, source
// name, instrumentation, profile, link options — and is stable across
// builders configured identically.
func TestFingerprintKeysOnFlavorAndContent(t *testing.T) {
	src := Source{Name: "p", Text: `int main(void) { return 0; }`}
	base := New(WithInstrumentation()).Fingerprint(src)
	if got := New(WithInstrumentation()).Fingerprint(src); got != base {
		t.Errorf("same flavor+source produced different fingerprints")
	}
	distinct := map[string]string{"base": base}
	add := func(label, fp string) {
		for prev, pfp := range distinct {
			if pfp == fp {
				t.Errorf("%s collides with %s", label, prev)
			}
		}
		distinct[label] = fp
	}
	add("uninstrumented", New().Fingerprint(src))
	add("profile32", New(WithInstrumentation(), WithProfile(visa.Profile32)).Fingerprint(src))
	add("renamed", New(WithInstrumentation()).Fingerprint(Source{Name: "q", Text: src.Text}))
	add("edited", New(WithInstrumentation()).Fingerprint(Source{Name: "p", Text: src.Text + " "}))
	add("linkopts", New(WithInstrumentation(),
		WithLinkOptions(linker.Options{AllowUnresolved: true})).Fingerprint(src))
	add("twosources", New(WithInstrumentation()).Fingerprint(src, src))
}
