// Package toolchain is the MCFI compilation driver: it runs the full
// pipeline (parse → sema → codegen) on MiniC sources, links programs
// against the MiniC libc, and loads them into runtimes. The cmd tools,
// examples, tests, and the experiment harness all build programs
// through this package.
package toolchain

import (
	"fmt"

	"mcfi/internal/codegen"
	"mcfi/internal/libc"
	"mcfi/internal/linker"
	"mcfi/internal/minic"
	"mcfi/internal/module"
	"mcfi/internal/mrt"
	"mcfi/internal/sema"
	"mcfi/internal/visa"
)

// Config selects the build flavor.
type Config struct {
	Profile    visa.Profile // default Profile64
	Instrument bool
	// NoPrelude skips prepending the libc header (used when compiling
	// the libc itself or fully self-contained sources).
	NoPrelude bool
}

// Source is one translation unit.
type Source struct {
	Name string
	Text string
}

// CompileSource runs parse+sema+codegen on one translation unit and
// returns its MCFI object module.
func CompileSource(src Source, cfg Config) (*module.Object, error) {
	text := src.Text
	if !cfg.NoPrelude {
		text = libc.Header + "\n" + text
	}
	file, err := minic.Parse(src.Name, text)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", src.Name, err)
	}
	unit, err := sema.Analyze(file)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", src.Name, err)
	}
	obj, err := codegen.Compile(unit, codegen.Options{
		Profile:    cfg.Profile,
		Instrument: cfg.Instrument,
		ModuleName: src.Name,
	})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", src.Name, err)
	}
	return obj, nil
}

// AnalyzeSource runs parse+sema only, returning the typed unit (the
// C1/C2 analyzer consumes this).
func AnalyzeSource(src Source, withPrelude bool) (*sema.Unit, error) {
	text := src.Text
	if withPrelude {
		text = libc.Header + "\n" + text
	}
	file, err := minic.Parse(src.Name, text)
	if err != nil {
		return nil, err
	}
	return sema.Analyze(file)
}

// CompileLibc builds the libc module for the given configuration.
func CompileLibc(cfg Config) (*module.Object, error) {
	cfg.NoPrelude = true
	return CompileSource(Source{Name: "libc", Text: libc.Source}, cfg)
}

// BuildProgram compiles the given sources, compiles libc, and
// statically links everything into an executable image.
func BuildProgram(cfg Config, opts linker.Options, sources ...Source) (*linker.Image, error) {
	var objs []*module.Object
	for _, s := range sources {
		obj, err := CompileSource(s, cfg)
		if err != nil {
			return nil, err
		}
		objs = append(objs, obj)
	}
	lc, err := CompileLibc(cfg)
	if err != nil {
		return nil, fmt.Errorf("libc: %w", err)
	}
	objs = append(objs, lc)
	return linker.Link(objs, opts)
}

// Run builds and executes a program to completion, returning its exit
// code and captured output. A convenience wrapper used by tests and
// examples.
func Run(cfg Config, maxInstr int64, sources ...Source) (code int64, output string, instret int64, err error) {
	img, err := BuildProgram(cfg, linker.Options{}, sources...)
	if err != nil {
		return -1, "", 0, err
	}
	rt, err := mrt.New(img, mrt.Options{})
	if err != nil {
		return -1, "", 0, err
	}
	code, err = rt.Run(maxInstr)
	return code, rt.Output(), rt.Instret(), err
}
