// Package toolchain is the MCFI compilation driver: it runs the full
// pipeline (parse → sema → codegen) on MiniC sources, links programs
// against the MiniC libc, and loads them into runtimes. The cmd tools,
// examples, tests, and the experiment harness all build programs
// through this package.
//
// The surface is the Builder (see builder.go), constructed via
// functional options:
//
//	b := toolchain.New(toolchain.WithProfile(visa.Profile64),
//		toolchain.WithInstrumentation())
//	img, err := b.Build(srcs...)
package toolchain

// Source is one translation unit.
type Source struct {
	Name string
	Text string
}
