// Package toolchain is the MCFI compilation driver: it runs the full
// pipeline (parse → sema → codegen) on MiniC sources, links programs
// against the MiniC libc, and loads them into runtimes. The cmd tools,
// examples, tests, and the experiment harness all build programs
// through this package.
//
// The primary surface is the Builder (see builder.go), constructed via
// functional options:
//
//	b := toolchain.New(toolchain.WithProfile(visa.Profile64),
//		toolchain.WithInstrumentation())
//	img, err := b.Build(srcs...)
//
// The Config struct and the free functions below are the pre-Builder
// surface, kept as thin deprecated wrappers.
package toolchain

import (
	"mcfi/internal/linker"
	"mcfi/internal/module"
	"mcfi/internal/sema"
	"mcfi/internal/visa"
)

// Config selects the build flavor.
//
// Deprecated: construct a Builder with New and functional options.
type Config struct {
	Profile    visa.Profile // default Profile64
	Instrument bool
	// NoPrelude skips prepending the libc header (used when compiling
	// the libc itself or fully self-contained sources).
	NoPrelude bool
}

// builder converts the legacy config into an equivalent Builder.
func (c Config) builder(opts ...Option) *Builder {
	base := []Option{WithProfile(c.Profile), WithInstrument(c.Instrument)}
	if c.NoPrelude {
		base = append(base, WithoutPrelude())
	}
	return New(append(base, opts...)...)
}

// Source is one translation unit.
type Source struct {
	Name string
	Text string
}

// CompileSource runs parse+sema+codegen on one translation unit and
// returns its MCFI object module.
//
// Deprecated: use Builder.Compile.
func CompileSource(src Source, cfg Config) (*module.Object, error) {
	return cfg.builder().Compile(src)
}

// AnalyzeSource runs parse+sema only, returning the typed unit (the
// C1/C2 analyzer consumes this).
//
// Deprecated: use Builder.Analyze.
func AnalyzeSource(src Source, withPrelude bool) (*sema.Unit, error) {
	b := New()
	if !withPrelude {
		b = New(WithoutPrelude())
	}
	return b.Analyze(src)
}

// CompileLibc builds the libc module for the given configuration.
//
// Deprecated: use Builder.Libc.
func CompileLibc(cfg Config) (*module.Object, error) {
	return cfg.builder().Libc()
}

// BuildProgram compiles the given sources, compiles libc, and
// statically links everything into an executable image.
//
// Deprecated: use Builder.Build.
func BuildProgram(cfg Config, opts linker.Options, sources ...Source) (*linker.Image, error) {
	return cfg.builder(WithLinkOptions(opts)).Build(sources...)
}

// Run builds and executes a program to completion, returning its exit
// code and captured output.
//
// Deprecated: use Builder.Run.
func Run(cfg Config, maxInstr int64, sources ...Source) (code int64, output string, instret int64, err error) {
	return cfg.builder().Run(maxInstr, sources...)
}
