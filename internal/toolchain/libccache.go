package toolchain

import (
	"sync"

	"mcfi/internal/module"
	"mcfi/internal/visa"
)

// LibcCache memoizes compiled libc modules per (profile,
// instrumentation) flavor. Every MCFI program links the whole libc, so
// without memoization each Builder.Build call re-parses and re-compiles
// it from scratch — by far the largest fixed cost of regenerating the
// experiment suite. The cache is safe for concurrent use; parallel
// builders requesting the same flavor block on one compilation.
//
// Cached objects are shared by reference: the linker and the runtime
// both treat input modules as immutable (the linker copies code and
// rebases aux info into the image), so handing the same *module.Object
// to many links is safe.
type LibcCache struct {
	mu sync.Mutex
	m  map[libcKey]*libcEntry
}

type libcKey struct {
	profile    visa.Profile
	instrument bool
}

type libcEntry struct {
	once sync.Once
	obj  *module.Object
	err  error
}

// NewLibcCache returns an empty cache.
func NewLibcCache() *LibcCache {
	return &LibcCache{m: map[libcKey]*libcEntry{}}
}

var defaultLibcCache = NewLibcCache()

// DefaultLibcCache returns the process-wide cache every Builder uses
// unless overridden with WithLibcCache.
func DefaultLibcCache() *LibcCache { return defaultLibcCache }

// get returns the cached libc for the flavor, compiling it at most
// once per cache.
func (c *LibcCache) get(p visa.Profile, instrument bool, compile func() (*module.Object, error)) (*module.Object, error) {
	c.mu.Lock()
	e, ok := c.m[libcKey{p, instrument}]
	if !ok {
		e = &libcEntry{}
		c.m[libcKey{p, instrument}] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.obj, e.err = compile() })
	return e.obj, e.err
}

// Len reports how many flavors are cached (test hook).
func (c *LibcCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
