package toolchain

import (
	"bytes"
	"testing"

	"mcfi/internal/buildstore"
	"mcfi/internal/mrt"
	"mcfi/internal/visa"
)

const storeTestSrc = `
int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
int main(void) {
	printf("%d\n", fib(15));
	return 0;
}`

func storeBuilder(t *testing.T, dir string) (*Builder, *buildstore.Tiered) {
	t.Helper()
	disk, err := buildstore.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts := buildstore.NewTiered(buildstore.NewMem(0), disk)
	t.Cleanup(func() { ts.Close() })
	// A fresh LibcCache per builder so the warm path must come from the
	// store's object plane, not in-process memoization.
	b := New(
		WithProfile(visa.Profile64),
		WithInstrumentation(),
		WithLibcCache(NewLibcCache()),
		WithStore(ts),
	)
	return b, ts
}

// TestStoreWarmRestartSkipsAllCompilation: a second builder process
// over the same store directory serves both the linked image and the
// libc object from disk — zero image builds, zero libc compiles — and
// the image is byte-identical to the cold build's.
func TestStoreWarmRestartSkipsAllCompilation(t *testing.T) {
	dir := t.TempDir()
	src := Source{Name: "fib", Text: storeTestSrc}

	cold, ts1 := storeBuilder(t, dir)
	img1, tier, err := cold.BuildTiered(src)
	if err != nil {
		t.Fatal(err)
	}
	if tier != buildstore.TierBuilt {
		t.Fatalf("cold build tier = %s, want built", tier)
	}
	if m := ts1.Metrics(); m.Builds != 1 || m.ObjectBuilds != 1 {
		t.Fatalf("cold metrics: builds=%d object_builds=%d, want 1/1", m.Builds, m.ObjectBuilds)
	}
	bytes1, err := img1.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	// "Restart": new store handles, new builder, new libc cache.
	warm, ts2 := storeBuilder(t, dir)
	img2, tier, err := warm.BuildTiered(src)
	if err != nil {
		t.Fatal(err)
	}
	if tier != buildstore.TierDisk {
		t.Fatalf("warm build tier = %s, want disk", tier)
	}
	if m := ts2.Metrics(); m.Builds != 0 || m.ObjectBuilds != 0 {
		t.Fatalf("warm restart recompiled: builds=%d object_builds=%d, want 0/0", m.Builds, m.ObjectBuilds)
	}
	if warm.cache.Len() != 0 {
		t.Errorf("libc cache populated (%d entries) — libc was compiled, not fetched", warm.cache.Len())
	}
	bytes2, err := img2.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes1, bytes2) {
		t.Fatal("warm-restart image differs from cold build")
	}

	// The store-served image actually runs, and runs correctly.
	rt, err := mrt.New(img2, mrt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	code, err := rt.Run(50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 || rt.Output() != "610\n" {
		t.Errorf("store-served image: code=%d out=%q, want 0/%q", code, rt.Output(), "610\n")
	}
}

// TestStoreLibcObjectSharedAcrossBuilders: two builders with disjoint
// libc caches but one store compile libc once per flavor.
func TestStoreLibcObjectSharedAcrossBuilders(t *testing.T) {
	dir := t.TempDir()
	a, ts := storeBuilder(t, dir)
	if _, err := a.Build(Source{Name: "p1", Text: storeTestSrc}); err != nil {
		t.Fatal(err)
	}
	base := ts.Metrics().ObjectBuilds

	b := New(
		WithProfile(visa.Profile64),
		WithInstrumentation(),
		WithLibcCache(NewLibcCache()), // cold in-process cache
		WithStore(ts),
	)
	if _, err := b.Build(Source{Name: "p2", Text: `int main(void){ puts("x"); return 0; }`}); err != nil {
		t.Fatal(err)
	}
	if got := ts.Metrics().ObjectBuilds; got != base {
		t.Fatalf("second builder recompiled libc: object_builds %d -> %d", base, got)
	}
}

// TestStoreDisabledBuilderUnchanged: a nil store is the legacy path.
func TestStoreDisabledBuilderUnchanged(t *testing.T) {
	b := New(WithProfile(visa.Profile64), WithInstrumentation())
	img, tier, err := b.BuildTiered(Source{Name: "p", Text: storeTestSrc})
	if err != nil {
		t.Fatal(err)
	}
	if tier != buildstore.TierBuilt || img == nil {
		t.Fatalf("storeless build: tier=%s img=%v", tier, img != nil)
	}
}
