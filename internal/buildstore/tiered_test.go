package buildstore

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"mcfi/internal/linker"
)

func TestTieredSingleflightCoalescesBuilds(t *testing.T) {
	ts := NewTiered(NewMem(0))
	k := testKey("coalesce")
	var builds atomic.Int64
	release := make(chan struct{})

	const n = 8
	var wg sync.WaitGroup
	tiers := make([]Tier, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			img, tier, err := ts.GetOrBuild(k, func() (*linker.Image, error) {
				builds.Add(1)
				<-release // hold the build so every waiter piles up
				return testImage(1), nil
			})
			if err != nil {
				t.Errorf("job %d: %v", i, err)
				return
			}
			tiers[i] = tier
			sameImage(t, img, testImage(1))
		}(i)
	}
	// Wait until the leader has registered its flight, then release it.
	// (Latecomers that arrive after settle hit the backfilled mem tier,
	// which reports the same TierMem.)
	for {
		ts.mu.Lock()
		inflight := len(ts.inflight)
		ts.mu.Unlock()
		if inflight == 1 {
			break
		}
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if got := builds.Load(); got != 1 {
		t.Fatalf("builds = %d, want 1", got)
	}
	var built, mem int
	for _, tier := range tiers {
		switch tier {
		case TierBuilt:
			built++
		case TierMem:
			mem++
		}
	}
	if built != 1 || mem != n-1 {
		t.Fatalf("tiers: %d built, %d mem; want 1/%d", built, mem, n-1)
	}
	m := ts.Metrics()
	if m.Builds != 1 || m.Hits != n-1 || m.Misses != 1 {
		t.Errorf("metrics: %+v", m)
	}
}

func TestTieredNegativeCaching(t *testing.T) {
	ts := NewTiered(NewMem(0))
	k := testKey("bad-source")
	boom := errors.New("syntax error")
	calls := 0
	for i := 0; i < 3; i++ {
		_, _, err := ts.GetOrBuild(k, func() (*linker.Image, error) {
			calls++
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("attempt %d: %v", i, err)
		}
	}
	if calls != 1 {
		t.Fatalf("failing build ran %d times, want 1 (negative cache)", calls)
	}
	if m := ts.Metrics(); m.FailedBuilds != 1 {
		t.Errorf("failed_builds = %d, want 1", m.FailedBuilds)
	}
}

func TestTieredNegativeCacheBounded(t *testing.T) {
	ts := NewTiered(NewMem(0))
	ts.failMax = 4
	for i := 0; i < 10; i++ {
		ts.GetOrBuild(testKey(fmt.Sprintf("bad-%d", i)), func() (*linker.Image, error) {
			return nil, errors.New("nope")
		})
	}
	ts.mu.Lock()
	n := len(ts.failed)
	ts.mu.Unlock()
	if n > 4 {
		t.Fatalf("negative cache grew to %d entries, bound is 4", n)
	}
}

// TestTieredDiskHitBackfillsMem: a warm disk tier serves a fresh
// process's first request (tier "disk"), and the hit is backfilled so
// the second request is a mem hit.
func TestTieredDiskHitBackfillsMem(t *testing.T) {
	dir := t.TempDir()
	k := testKey("warm")

	warm := openTestDisk(t, dir)
	if err := warm.Put(k, testImage(2)); err != nil {
		t.Fatal(err)
	}
	warm.Close()

	ts := NewTiered(NewMem(0), openTestDisk(t, dir))
	defer ts.Close()
	fail := func() (*linker.Image, error) {
		t.Error("build ran despite warm disk store")
		return nil, errors.New("unreachable")
	}
	img, tier, err := ts.GetOrBuild(k, fail)
	if err != nil || tier != TierDisk {
		t.Fatalf("first get: tier=%s err=%v, want disk", tier, err)
	}
	sameImage(t, img, testImage(2))

	img, tier, err = ts.GetOrBuild(k, fail)
	if err != nil || tier != TierMem {
		t.Fatalf("second get: tier=%s err=%v, want mem (backfilled)", tier, err)
	}
	sameImage(t, img, testImage(2))

	m := ts.Metrics()
	if m.Builds != 0 || m.TierHits["disk"] != 1 || m.TierHits["mem"] != 1 {
		t.Errorf("metrics: %+v", m)
	}
}

// TestTieredWriteThroughPersists: a fresh build lands in every tier,
// so a second Tiered over the same directory never rebuilds.
func TestTieredWriteThroughPersists(t *testing.T) {
	dir := t.TempDir()
	k := testKey("writethrough")

	ts1 := NewTiered(NewMem(0), openTestDisk(t, dir))
	_, tier, err := ts1.GetOrBuild(k, func() (*linker.Image, error) { return testImage(4), nil })
	if err != nil || tier != TierBuilt {
		t.Fatalf("cold build: tier=%s err=%v", tier, err)
	}
	ts1.Close()

	ts2 := NewTiered(NewMem(0), openTestDisk(t, dir))
	defer ts2.Close()
	img, tier, err := ts2.GetOrBuild(k, func() (*linker.Image, error) {
		t.Error("rebuilt after restart")
		return nil, errors.New("unreachable")
	})
	if err != nil || tier != TierDisk {
		t.Fatalf("warm get: tier=%s err=%v", tier, err)
	}
	sameImage(t, img, testImage(4))
}

func TestTieredObjectPlane(t *testing.T) {
	dir := t.TempDir()
	k := testKey("libc-object")
	payload := []byte("compiled object bytes")

	ts1 := NewTiered(NewMem(0), openTestDisk(t, dir))
	got, tier, err := ts1.GetOrBuildObject(k, func() ([]byte, error) { return payload, nil })
	if err != nil || tier != TierBuilt || string(got) != string(payload) {
		t.Fatalf("cold object: tier=%s err=%v", tier, err)
	}
	if m := ts1.Metrics(); m.ObjectBuilds != 1 {
		t.Errorf("object_builds = %d, want 1", m.ObjectBuilds)
	}
	ts1.Close()

	ts2 := NewTiered(NewMem(0), openTestDisk(t, dir))
	defer ts2.Close()
	got, tier, err = ts2.GetOrBuildObject(k, func() ([]byte, error) {
		t.Error("object rebuilt despite warm store")
		return nil, errors.New("unreachable")
	})
	if err != nil || tier != TierDisk || string(got) != string(payload) {
		t.Fatalf("warm object: tier=%s err=%v", tier, err)
	}
	if m := ts2.Metrics(); m.ObjectBuilds != 0 {
		t.Errorf("warm object_builds = %d, want 0", m.ObjectBuilds)
	}
}
