package buildstore

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"mcfi/internal/linker"
)

// testSecret is the shared cluster secret both ends of the protocol
// tests authenticate with.
const testSecret = "test-cluster-secret"

// remotePairSecrets serves a disk store over the /v1/store protocol
// with serverSecret and returns a Remote client using clientSecret.
func remotePairSecrets(t *testing.T, serverSecret, clientSecret string) (*Disk, *Remote) {
	t.Helper()
	disk := openTestDisk(t, t.TempDir())
	mux := http.NewServeMux()
	mux.Handle("/v1/store/", Handler(disk, serverSecret))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return disk, NewRemote(srv.URL, srv.Client(), clientSecret)
}

// remotePair is the common case: both ends share one secret.
func remotePair(t *testing.T) (*Disk, *Remote) {
	t.Helper()
	return remotePairSecrets(t, testSecret, testSecret)
}

func TestRemoteRoundTrip(t *testing.T) {
	disk, r := remotePair(t)
	k := testKey("remote")
	img := testImage(6)

	// Publish through the client; the serving side persists it.
	if err := r.Put(k, img); err != nil {
		t.Fatal(err)
	}
	if !disk.Has(k) {
		t.Fatal("PUT did not reach the serving disk store")
	}
	if !r.Has(k) {
		t.Error("HEAD after PUT says absent")
	}
	got, err := r.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	sameImage(t, got, img)

	if _, err := r.Get(testKey("absent")); !errors.Is(err, ErrNotFound) {
		t.Errorf("absent key: %v, want ErrNotFound", err)
	}
	if r.Has(testKey("absent")) {
		t.Error("HEAD of absent key says present")
	}
	st := r.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Errorf("client stats: %+v", st)
	}
}

// TestRemoteRefusesCorruptPeer: bytes corrupted on the serving side
// fail client-side verification and surface as a miss, never as a
// decodable artifact.
func TestRemoteRefusesCorruptPeer(t *testing.T) {
	disk, r := remotePair(t)
	k := testKey("evil-peer")
	if err := r.Put(k, testImage(8)); err != nil {
		t.Fatal(err)
	}
	// Flip a payload bit at rest; the server's GetBlob quarantines it,
	// so the client sees 404 → ErrNotFound.
	path := disk.blobPath(k)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x80
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt peer entry: %v, want ErrNotFound", err)
	}
}

// TestRemotePutRequiresSecret: the write plane is off by default — a
// server with no secret refuses every PUT, even a well-formed sealed
// envelope, so an attacker who can reach the port cannot publish an
// arbitrary image under a victim source's fingerprint.
func TestRemotePutRequiresSecret(t *testing.T) {
	disk, r := remotePairSecrets(t, "", "")
	k := testKey("poison")

	// A secretless client refuses to even try.
	if err := r.PutBlob(k, []byte("attacker image")); !errors.Is(err, ErrReadOnly) {
		t.Errorf("secretless client PutBlob: %v, want ErrReadOnly", err)
	}

	// A raw, perfectly sealed PUT straight at the handler gets 403.
	req, _ := http.NewRequest(http.MethodPut, r.url(k), bytes.NewReader(Seal([]byte("attacker image"))))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unauthenticated PUT = %d, want 403", resp.StatusCode)
	}
	if disk.Has(k) {
		t.Fatal("refused PUT still landed in the store")
	}
}

// TestRemotePutRejectsBadMAC: a sealed envelope with a missing or
// wrong-secret MAC is refused — the envelope's self-hash alone does
// not bind the payload to the key, so it must not authorize a write.
func TestRemotePutRejectsBadMAC(t *testing.T) {
	disk, r := remotePair(t)
	k := testKey("substitute")
	payload := []byte("attacker image")
	for name, mac := range map[string]string{
		"no MAC":            "",
		"wrong secret":      blobMAC("guessed-secret", k, payload),
		"wrong key binding": blobMAC(testSecret, testKey("other"), payload),
	} {
		req, _ := http.NewRequest(http.MethodPut, r.url(k), bytes.NewReader(Seal(payload)))
		if mac != "" {
			req.Header.Set(macHeader, mac)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Errorf("%s: PUT = %d, want 403", name, resp.StatusCode)
		}
	}
	if disk.Has(k) {
		t.Fatal("MAC-less PUT landed in the store")
	}
}

// TestRemoteGetVerifiesMAC: a secret-holding client refuses blobs a
// peer cannot vouch for (no shared secret → no valid MAC on the GET),
// even though the envelope itself verifies.
func TestRemoteGetVerifiesMAC(t *testing.T) {
	disk, r := remotePairSecrets(t, "", testSecret)
	k := testKey("unvouched")
	// Seed the serving store locally (a secretless server can still
	// hold and serve entries it built itself).
	if err := disk.PutBlob(k, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.GetBlob(k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unvouched GET: %v, want ErrNotFound", err)
	}
	if st := r.Stats(); st.Corrupt != 1 {
		t.Errorf("refused blob not counted corrupt: %+v", st)
	}

	// With matching secrets the same fetch succeeds.
	_, rOK := remotePairSecrets(t, testSecret, testSecret)
	if err := rOK.PutBlob(k, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, err := rOK.GetBlob(k)
	if err != nil || string(got) != "payload" {
		t.Fatalf("vouched GET: %q, %v", got, err)
	}
}

func TestRemoteProtocolRejectsBadRequests(t *testing.T) {
	_, r := remotePair(t)
	if err := r.PutBlob("not-a-key", []byte("x")); !errors.Is(err, errBadKey) {
		t.Errorf("bad key: %v", err)
	}
	// Handler-side: a malformed envelope is a 400.
	resp, err := http.Post(r.url(testKey("x")), "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST = %d, want 405", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodPut, r.url(testKey("x")), nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("PUT of unsealed body = %d, want 400", resp.StatusCode)
	}
}

// TestTieredRemoteTier: a cold replica with a warm peer serves from
// the remote tier and backfills locally.
func TestTieredRemoteTier(t *testing.T) {
	_, r := remotePair(t)
	k := testKey("replica")
	if err := r.Put(k, testImage(3)); err != nil {
		t.Fatal(err)
	}

	ts := NewTiered(NewMem(0), r)
	defer ts.Close()
	img, tier, err := ts.GetOrBuild(k, func() (*linker.Image, error) {
		t.Error("built despite warm peer")
		return nil, errors.New("unreachable")
	})
	if err != nil || tier != TierRemote {
		t.Fatalf("cold replica get: tier=%s err=%v, want remote", tier, err)
	}
	sameImage(t, img, testImage(3))

	// Backfilled: second lookup is local.
	_, tier, err = ts.GetOrBuild(k, nil)
	if err != nil || tier != TierMem {
		t.Fatalf("second get: tier=%s err=%v, want mem", tier, err)
	}
	if m := ts.Metrics(); m.TierHits["remote"] != 1 || m.TierHits["mem"] != 1 {
		t.Errorf("metrics: %+v", m)
	}
}
