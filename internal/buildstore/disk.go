package buildstore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"mcfi/internal/linker"
)

// Disk is the persistent tier: a content-addressed store of sealed
// blobs on the local filesystem, safe to share between processes.
//
//	<dir>/objects/<key[:2]>/<key>   sealed blob (Seal envelope)
//	<dir>/index.jsonl               append-only publish journal
//
// Publishing is atomic: a blob is written to a temp file in its final
// directory and renamed into place, so a reader never observes a
// partial entry and two processes publishing the same key concurrently
// converge on one complete file (the builds are deterministic, so both
// bodies are identical — last rename wins harmlessly). Reads re-verify
// the envelope hash; an entry that fails (truncated, bit-flipped) is
// quarantined (removed) and reported as ErrNotFound so the caller
// rebuilds instead of executing corrupt code.
//
// The index journal is an optimization, never an authority: Get falls
// through to the filesystem on an index miss (another process may have
// published since we opened), and entries whose files have vanished
// are dropped when loaded. A missing journal is rebuilt by walking the
// object directory.
type Disk struct {
	dir string

	mu     sync.Mutex
	index  map[string]int64 // key -> payload size
	bytes  int64
	indexF *os.File // O_APPEND journal handle
	closed bool

	hits, misses, puts, corrupt atomic.Int64
}

// OpenDisk opens (creating if needed) an on-disk store rooted at dir.
func OpenDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("buildstore: %w", err)
	}
	d := &Disk{dir: dir, index: map[string]int64{}}
	if err := d.loadIndex(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(d.indexPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("buildstore: %w", err)
	}
	d.indexF = f
	return d, nil
}

func (d *Disk) indexPath() string { return filepath.Join(d.dir, "index.jsonl") }

func (d *Disk) blobPath(key string) string {
	return filepath.Join(d.dir, "objects", key[:2], key)
}

type indexLine struct {
	Key  string `json:"key"`
	Size int64  `json:"size"`
}

// loadIndex populates the in-memory index from the journal, dropping
// entries whose blob files are gone; with no journal it rebuilds by
// walking the object directory.
func (d *Disk) loadIndex() error {
	f, err := os.Open(d.indexPath())
	if err != nil {
		if os.IsNotExist(err) {
			return d.rebuildIndex()
		}
		return fmt.Errorf("buildstore: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var il indexLine
		// A torn concurrent append can leave one malformed line; skip it
		// (the entry is still findable via the filesystem fallback).
		if json.Unmarshal([]byte(line), &il) != nil || !ValidKey(il.Key) {
			continue
		}
		if _, err := os.Stat(d.blobPath(il.Key)); err != nil {
			delete(d.index, il.Key)
			continue
		}
		if old, ok := d.index[il.Key]; ok {
			d.bytes -= old
		}
		d.index[il.Key] = il.Size
		d.bytes += il.Size
	}
	return sc.Err()
}

// rebuildIndex scans objects/ and rewrites the journal.
func (d *Disk) rebuildIndex() error {
	root := filepath.Join(d.dir, "objects")
	subs, err := os.ReadDir(root)
	if err != nil {
		return fmt.Errorf("buildstore: %w", err)
	}
	var lines []byte
	for _, sub := range subs {
		if !sub.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(root, sub.Name()))
		if err != nil {
			continue
		}
		for _, fi := range files {
			key := fi.Name()
			if !ValidKey(key) {
				continue // temp file or stray
			}
			info, err := fi.Info()
			if err != nil {
				continue
			}
			size := info.Size() - blobHdrLen
			if size < 0 {
				size = 0
			}
			d.index[key] = size
			d.bytes += size
			b, _ := json.Marshal(indexLine{Key: key, Size: size})
			lines = append(lines, append(b, '\n')...)
		}
	}
	if len(lines) > 0 {
		if err := os.WriteFile(d.indexPath(), lines, 0o644); err != nil {
			return fmt.Errorf("buildstore: %w", err)
		}
	}
	return nil
}

// GetBlob reads and verifies the payload stored under key. Corrupt
// entries are quarantined and reported as ErrNotFound.
func (d *Disk) GetBlob(key string) ([]byte, error) {
	if !ValidKey(key) {
		return nil, errBadKey
	}
	env, err := os.ReadFile(d.blobPath(key))
	if err != nil {
		if os.IsNotExist(err) {
			d.misses.Add(1)
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("buildstore: %w", err)
	}
	payload, err := Open(env)
	if err != nil {
		// Truncated or bit-flipped at rest: quarantine so the next
		// lookup rebuilds, and never hand corrupt bytes to a decoder.
		d.misses.Add(1)
		d.quarantine(key)
		return nil, ErrNotFound
	}
	d.hits.Add(1)
	d.noteEntry(key, int64(len(payload)), false)
	return payload, nil
}

// quarantine removes a bad entry — corrupt envelope or undecodable
// payload — and drops it from the index so Has stops advertising it
// and Stats entries/bytes stay truthful without a journal reload.
func (d *Disk) quarantine(key string) {
	d.corrupt.Add(1)
	os.Remove(d.blobPath(key))
	d.mu.Lock()
	if old, ok := d.index[key]; ok {
		d.bytes -= old
		delete(d.index, key)
	}
	d.mu.Unlock()
}

// PutBlob seals and publishes a payload under key with an atomic
// rename, then journals the entry.
func (d *Disk) PutBlob(key string, payload []byte) error {
	if !ValidKey(key) {
		return errBadKey
	}
	d.puts.Add(1)
	path := d.blobPath(key)
	if _, err := os.Stat(path); err == nil {
		// Already published (by us or a peer process); contents are
		// deterministic per key, so keep the existing file.
		d.noteEntry(key, int64(len(payload)), false)
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("buildstore: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-"+key[:8]+"-*")
	if err != nil {
		return fmt.Errorf("buildstore: %w", err)
	}
	_, werr := tmp.Write(Seal(payload))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("buildstore: %w", werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("buildstore: %w", err)
	}
	d.noteEntry(key, int64(len(payload)), true)
	return nil
}

// HasBlob reports whether key is present (index first, then the
// filesystem, so cross-process publishes are visible).
func (d *Disk) HasBlob(key string) bool {
	if !ValidKey(key) {
		return false
	}
	d.mu.Lock()
	_, ok := d.index[key]
	d.mu.Unlock()
	if ok {
		return true
	}
	_, err := os.Stat(d.blobPath(key))
	return err == nil
}

// noteEntry records key in the in-memory index and, if journal is set,
// appends it to the journal (one JSON line per publish; O_APPEND keeps
// concurrent writers from interleaving partial lines in practice —
// and a torn line is skipped on load anyway).
func (d *Disk) noteEntry(key string, size int64, journal bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if old, ok := d.index[key]; ok {
		d.bytes -= old
	} else if journal && d.indexF != nil && !d.closed {
		b, _ := json.Marshal(indexLine{Key: key, Size: size})
		d.indexF.Write(append(b, '\n'))
	}
	d.index[key] = size
	d.bytes += size
}

// Get retrieves and decodes an image.
func (d *Disk) Get(key string) (*linker.Image, error) {
	payload, err := d.GetBlob(key)
	if err != nil {
		return nil, err
	}
	img, err := decodeImage(payload)
	if err != nil {
		// The envelope verified but the payload does not decode (e.g. a
		// format-version rollover): treat as absent so it is rebuilt and
		// republished in the current format.
		d.quarantine(key)
		return nil, ErrNotFound
	}
	return img, nil
}

// Put encodes, seals, and publishes an image.
func (d *Disk) Put(key string, img *linker.Image) error {
	payload, err := encodeImage(img)
	if err != nil {
		return err
	}
	return d.PutBlob(key, payload)
}

// Has reports presence.
func (d *Disk) Has(key string) bool { return d.HasBlob(key) }

// Stats snapshots the tier.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	n, b := len(d.index), d.bytes
	d.mu.Unlock()
	return Stats{
		Tier: string(TierDisk), Entries: n, Bytes: b,
		Hits: d.hits.Load(), Misses: d.misses.Load(),
		Puts: d.puts.Load(), Corrupt: d.corrupt.Load(),
	}
}

// Close releases the journal handle. The store directory remains valid
// for the next process.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	if d.indexF != nil {
		return d.indexF.Close()
	}
	return nil
}
