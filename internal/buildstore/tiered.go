package buildstore

import (
	"sync"
	"sync/atomic"
	"time"

	"mcfi/internal/linker"
)

// BuildTrace times one GetOrBuild's phases for the job tracer: the
// tier probe, the build itself (zero on a hit), and time spent waiting
// on another request's in-flight build of the same key.
type BuildTrace struct {
	ProbeNs int64
	BuildNs int64
	WaitNs  int64
}

// DefaultFailedEntries bounds the negative cache (deterministic build
// failures remembered so a bad source is not recompiled per request).
const DefaultFailedEntries = 256

// Tiered composes tiers (checked in order, cheapest first) behind one
// front end and owns the cross-cutting policies that no single tier
// should: build coalescing (concurrent requests for one key share one
// build), negative caching (the pipeline is deterministic, so a source
// that failed once fails the same way forever), backfill (a hit at a
// lower tier is copied into the tiers above it), and write-through
// (a fresh build is published to every tier, best-effort — a full disk
// or down peer never fails the request).
type Tiered struct {
	tiers  []Store
	labels []Tier      // labels[i] names tiers[i] (from its Stats)
	blobs  []BlobStore // persistent subset of tiers, same order

	mu       sync.Mutex
	inflight map[string]*flight
	failed   map[string]error
	failOrd  []string // FIFO bound on failed
	failMax  int

	hits, misses atomic.Int64
	builds       atomic.Int64
	objectBuilds atomic.Int64
	failedBuilds atomic.Int64
	tierHits     map[Tier]*atomic.Int64
	closeOnce    sync.Once
	closeErr     error
}

type flight struct {
	done chan struct{}
	img  *linker.Image
	err  error
}

// NewTiered composes the given tiers, checked in argument order. Tiers
// that also implement BlobStore (disk, remote) serve the object-blob
// plane for libc artifacts.
func NewTiered(tiers ...Store) *Tiered {
	t := &Tiered{
		tiers:    tiers,
		inflight: map[string]*flight{},
		failed:   map[string]error{},
		failMax:  DefaultFailedEntries,
		tierHits: map[Tier]*atomic.Int64{},
	}
	for _, s := range tiers {
		label := Tier(s.Stats().Tier)
		t.labels = append(t.labels, label)
		if _, ok := t.tierHits[label]; !ok {
			t.tierHits[label] = new(atomic.Int64)
		}
		if bs, ok := s.(BlobStore); ok {
			t.blobs = append(t.blobs, bs)
		}
	}
	for _, l := range []Tier{TierMem, TierDisk, TierRemote} {
		if _, ok := t.tierHits[l]; !ok {
			t.tierHits[l] = new(atomic.Int64)
		}
	}
	return t
}

func (t *Tiered) countHit(tier Tier) {
	t.hits.Add(1)
	if c, ok := t.tierHits[tier]; ok {
		c.Add(1)
	}
}

// probe checks the tiers in order; on a hit the image is backfilled
// into every tier above the one that had it.
func (t *Tiered) probe(key string) (*linker.Image, Tier, bool) {
	for i, s := range t.tiers {
		img, err := s.Get(key)
		if err != nil {
			continue // ErrNotFound, quarantined corruption, or a tier fault
		}
		for j := i - 1; j >= 0; j-- {
			t.tiers[j].Put(key, img)
		}
		return img, t.labels[i], true
	}
	return nil, "", false
}

// GetOrBuild returns the image for key, consulting each tier in order
// and falling back to build on a total miss. The returned Tier names
// the source: a cache tier, or TierBuilt for a fresh compile.
// Concurrent callers for one key share a single build (waiters report
// TierMem: they received an in-memory shared result). Build failures
// are cached, so repeat requests for a broken source fail fast.
func (t *Tiered) GetOrBuild(key string, build func() (*linker.Image, error)) (*linker.Image, Tier, error) {
	img, tier, _, err := t.GetOrBuildTraced(key, build)
	return img, tier, err
}

// GetOrBuildTraced is GetOrBuild with per-phase timings for the job
// tracer.
func (t *Tiered) GetOrBuildTraced(key string, build func() (*linker.Image, error)) (*linker.Image, Tier, BuildTrace, error) {
	var bt BuildTrace
	if !ValidKey(key) {
		return nil, "", bt, errBadKey
	}
	t.mu.Lock()
	if err, ok := t.failed[key]; ok {
		t.mu.Unlock()
		t.countHit(TierMem)
		return nil, TierMem, bt, err
	}
	if f, ok := t.inflight[key]; ok {
		t.mu.Unlock()
		wait := time.Now()
		<-f.done
		bt.WaitNs = time.Since(wait).Nanoseconds()
		// Waiters share the leader's in-memory result (or its failure),
		// and count as hits either way, like the old BuildCache.
		t.countHit(TierMem)
		return f.img, TierMem, bt, f.err
	}
	f := &flight{done: make(chan struct{})}
	t.inflight[key] = f
	t.mu.Unlock()

	start := time.Now()
	img, tier, ok := t.probe(key)
	bt.ProbeNs = time.Since(start).Nanoseconds()
	if ok {
		t.countHit(tier)
		t.settle(key, f, img, nil)
		return img, tier, bt, nil
	}

	t.misses.Add(1)
	t.builds.Add(1)
	start = time.Now()
	img, err := build()
	bt.BuildNs = time.Since(start).Nanoseconds()
	if err != nil {
		t.failedBuilds.Add(1)
		t.noteFailed(key, err)
		t.settle(key, f, nil, err)
		return nil, TierBuilt, bt, err
	}
	for _, s := range t.tiers {
		s.Put(key, img) // best-effort write-through
	}
	t.settle(key, f, img, nil)
	return img, TierBuilt, bt, nil
}

// settle publishes a flight's result and releases its waiters.
func (t *Tiered) settle(key string, f *flight, img *linker.Image, err error) {
	f.img, f.err = img, err
	t.mu.Lock()
	delete(t.inflight, key)
	t.mu.Unlock()
	close(f.done)
}

// noteFailed records a deterministic build failure, evicting the
// oldest remembered failure when over the bound.
func (t *Tiered) noteFailed(key string, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.failed[key]; !ok {
		t.failOrd = append(t.failOrd, key)
		if len(t.failOrd) > t.failMax {
			delete(t.failed, t.failOrd[0])
			t.failOrd = t.failOrd[1:]
		}
	}
	t.failed[key] = err
}

// BlobTiers reports how many composed tiers carry the raw-blob plane
// (disk, remote). Zero means GetOrBuildObject can never hit and
// callers may skip the store for object artifacts entirely.
func (t *Tiered) BlobTiers() int { return len(t.blobs) }

// GetOrBuildObject is GetOrBuild's raw-blob sibling, used for compiled
// libc objects: it consults the persistent (blob-capable) tiers only —
// in-process memoization of decoded objects is the toolchain
// LibcCache's job — and publishes a fresh build to all of them.
// ObjectBuilds counts the total-miss path; a warm store keeps it at
// zero across restarts.
func (t *Tiered) GetOrBuildObject(key string, build func() ([]byte, error)) ([]byte, Tier, error) {
	if !ValidKey(key) {
		return nil, "", errBadKey
	}
	for i, bs := range t.blobs {
		payload, err := bs.GetBlob(key)
		if err != nil {
			continue
		}
		for j := i - 1; j >= 0; j-- {
			t.blobs[j].PutBlob(key, payload)
		}
		tier := TierDisk
		if _, isRemote := bs.(*Remote); isRemote {
			tier = TierRemote
		}
		t.countHit(tier)
		return payload, tier, nil
	}
	t.misses.Add(1)
	t.objectBuilds.Add(1)
	payload, err := build()
	if err != nil {
		return nil, TierBuilt, err
	}
	for _, bs := range t.blobs {
		bs.PutBlob(key, payload) // best-effort
	}
	return payload, TierBuilt, nil
}

// Metrics is the aggregate view the server exports: totals across the
// composite plus a per-tier breakdown.
type Metrics struct {
	Hits         int64            `json:"hits"`
	Misses       int64            `json:"misses"`
	Builds       int64            `json:"builds"`
	ObjectBuilds int64            `json:"object_builds"`
	FailedBuilds int64            `json:"failed_builds"`
	HitRate      float64          `json:"hit_rate"`
	TierHits     map[string]int64 `json:"tier_hits"`
	Tiers        []Stats          `json:"tiers"`
}

// Metrics snapshots the composite.
func (t *Tiered) Metrics() Metrics {
	m := Metrics{
		Hits:         t.hits.Load(),
		Misses:       t.misses.Load(),
		Builds:       t.builds.Load(),
		ObjectBuilds: t.objectBuilds.Load(),
		FailedBuilds: t.failedBuilds.Load(),
		TierHits:     map[string]int64{},
	}
	if total := m.Hits + m.Misses; total > 0 {
		m.HitRate = float64(m.Hits) / float64(total)
	}
	for tier, c := range t.tierHits {
		m.TierHits[string(tier)] = c.Load()
	}
	for _, s := range t.tiers {
		m.Tiers = append(m.Tiers, s.Stats())
	}
	return m
}

// Get probes the tiers (with backfill) without building.
func (t *Tiered) Get(key string) (*linker.Image, error) {
	if !ValidKey(key) {
		return nil, errBadKey
	}
	if img, tier, ok := t.probe(key); ok {
		t.countHit(tier)
		return img, nil
	}
	t.misses.Add(1)
	return nil, ErrNotFound
}

// Put writes through to every tier.
func (t *Tiered) Put(key string, img *linker.Image) error {
	if !ValidKey(key) {
		return errBadKey
	}
	var firstErr error
	for _, s := range t.tiers {
		if err := s.Put(key, img); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Has reports whether any tier holds key.
func (t *Tiered) Has(key string) bool {
	for _, s := range t.tiers {
		if s.Has(key) {
			return true
		}
	}
	return false
}

// Stats aggregates the composite as one Store (per-tier detail is in
// Metrics). Entries/Bytes report the first tier, which bounds what is
// servable without I/O.
func (t *Tiered) Stats() Stats {
	s := Stats{
		Tier: "tiered",
		Hits: t.hits.Load(), Misses: t.misses.Load(),
	}
	if len(t.tiers) > 0 {
		first := t.tiers[0].Stats()
		s.Entries, s.Bytes = first.Entries, first.Bytes
	}
	for _, tier := range t.tiers {
		st := tier.Stats()
		s.Puts += st.Puts
		s.Corrupt += st.Corrupt
	}
	return s
}

// Close closes every tier once; subsequent calls return the first
// result.
func (t *Tiered) Close() error {
	t.closeOnce.Do(func() {
		for _, s := range t.tiers {
			if err := s.Close(); err != nil && t.closeErr == nil {
				t.closeErr = err
			}
		}
	})
	return t.closeErr
}
