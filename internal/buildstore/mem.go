package buildstore

import (
	"container/list"
	"sync"
	"sync/atomic"

	"mcfi/internal/linker"
)

// DefaultMemEntries bounds the in-memory tier when the config does not.
const DefaultMemEntries = 256

// Mem is the in-process tier: decoded images behind an LRU. It
// replaces the FIFO eviction of the old server.BuildCache — under a
// burst of one-off raw-source tenants, FIFO evicted the oldest entries
// regardless of use, which were exactly the hot, expensive shared
// images (libc-heavy workloads every tenant runs); LRU keeps whatever
// keeps getting hit.
//
// Mem holds successful builds only. Negative caching (deterministic
// build failures) and build coalescing live in Tiered, which fronts
// this tier.
type Mem struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	max     int
	bytes   int64

	hits, misses, puts atomic.Int64
}

type memEntry struct {
	key  string
	img  *linker.Image
	size int64
}

// NewMem returns an in-memory store holding at most max images
// (<= 0 means DefaultMemEntries).
func NewMem(max int) *Mem {
	if max <= 0 {
		max = DefaultMemEntries
	}
	return &Mem{entries: map[string]*list.Element{}, lru: list.New(), max: max}
}

// Get returns the cached image and marks it most recently used.
func (m *Mem) Get(key string) (*linker.Image, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.entries[key]
	if !ok {
		m.misses.Add(1)
		return nil, ErrNotFound
	}
	m.hits.Add(1)
	m.lru.MoveToFront(el)
	return el.Value.(*memEntry).img, nil
}

// Put inserts (or refreshes) an entry, evicting least-recently-used
// entries to stay within the bound.
func (m *Mem) Put(key string, img *linker.Image) error {
	if !ValidKey(key) {
		return errBadKey
	}
	size := int64(len(img.Code) + len(img.Data))
	m.mu.Lock()
	defer m.mu.Unlock()
	m.puts.Add(1)
	if el, ok := m.entries[key]; ok {
		e := el.Value.(*memEntry)
		m.bytes += size - e.size
		e.img, e.size = img, size
		m.lru.MoveToFront(el)
		return nil
	}
	m.entries[key] = m.lru.PushFront(&memEntry{key: key, img: img, size: size})
	m.bytes += size
	for len(m.entries) > m.max {
		el := m.lru.Back()
		e := el.Value.(*memEntry)
		m.lru.Remove(el)
		delete(m.entries, e.key)
		m.bytes -= e.size
	}
	return nil
}

// Has reports whether key is cached (without touching recency).
func (m *Mem) Has(key string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.entries[key]
	return ok
}

// Stats snapshots the tier.
func (m *Mem) Stats() Stats {
	m.mu.Lock()
	n, b := len(m.entries), m.bytes
	m.mu.Unlock()
	return Stats{
		Tier: string(TierMem), Entries: n, Bytes: b,
		Hits: m.hits.Load(), Misses: m.misses.Load(), Puts: m.puts.Load(),
	}
}

// Close drops all entries.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries = map[string]*list.Element{}
	m.lru.Init()
	m.bytes = 0
	return nil
}
