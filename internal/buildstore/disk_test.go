package buildstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openTestDisk(t *testing.T, dir string) *Disk {
	t.Helper()
	d, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func TestDiskRoundTripAndPersistence(t *testing.T) {
	dir := t.TempDir()
	k := testKey("persist")
	img := testImage(7)

	d := openTestDisk(t, dir)
	if err := d.Put(k, img); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	sameImage(t, got, img)
	d.Close()

	// A fresh instance over the same directory (a "restarted process")
	// serves the artifact without any rebuild.
	d2 := openTestDisk(t, dir)
	if !d2.Has(k) {
		t.Fatal("artifact not visible after reopen")
	}
	got, err = d2.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	sameImage(t, got, img)
	if st := d2.Stats(); st.Entries != 1 || st.Hits != 1 {
		t.Errorf("reopened stats: %+v", st)
	}
}

// TestDiskCorruptionQuarantined: truncated and bit-flipped entries are
// detected on read, reported as ErrNotFound (so the caller rebuilds),
// and removed so they cannot be served later.
func TestDiskCorruptionQuarantined(t *testing.T) {
	for _, tc := range []struct {
		name    string
		corrupt func(path string, raw []byte) []byte
	}{
		{"truncated", func(_ string, raw []byte) []byte { return raw[:len(raw)/2] }},
		{"bitflip", func(_ string, raw []byte) []byte {
			raw[len(raw)-1] ^= 0x01 // flip inside the payload
			return raw
		}},
		{"emptied", func(_ string, _ []byte) []byte { return nil }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			d := openTestDisk(t, dir)
			k := testKey("corrupt-" + tc.name)
			if err := d.Put(k, testImage(9)); err != nil {
				t.Fatal(err)
			}
			path := d.blobPath(k)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.corrupt(path, raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := d.Get(k); !errors.Is(err, ErrNotFound) {
				t.Fatalf("corrupt entry: %v, want ErrNotFound", err)
			}
			if st := d.Stats(); st.Corrupt != 1 {
				t.Errorf("corrupt counter = %d, want 1", st.Corrupt)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupt blob not quarantined from disk")
			}
			// The slot is rebuildable: a fresh Put serves clean again.
			if err := d.Put(k, testImage(9)); err != nil {
				t.Fatal(err)
			}
			if _, err := d.Get(k); err != nil {
				t.Fatalf("rebuilt entry unreadable: %v", err)
			}
		})
	}
}

// TestDiskUndecodableQuarantineCleansIndex: an entry whose envelope
// verifies but whose payload does not decode (e.g. a format-version
// rollover) is quarantined completely — Has stops advertising it and
// Stats entries/bytes drop, not just the blob file.
func TestDiskUndecodableQuarantineCleansIndex(t *testing.T) {
	d := openTestDisk(t, t.TempDir())
	k := testKey("undecodable")
	// A validly sealed blob that is not a marshaled image.
	if err := d.PutBlob(k, []byte("not an image")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get(k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("undecodable entry: %v, want ErrNotFound", err)
	}
	if d.Has(k) {
		t.Error("Has still true after decode-failure quarantine")
	}
	if st := d.Stats(); st.Entries != 0 || st.Bytes != 0 || st.Corrupt != 1 {
		t.Errorf("stats after quarantine: %+v, want 0 entries, 0 bytes, 1 corrupt", st)
	}
}

// TestDiskConcurrentPublishersConverge: many writers across two store
// instances sharing one directory (two "processes") publish the same
// keys concurrently; every key converges to one complete, verifiable
// entry. Run under -race.
func TestDiskConcurrentPublishersConverge(t *testing.T) {
	dir := t.TempDir()
	a := openTestDisk(t, dir)
	b := openTestDisk(t, dir)

	const keys, writers = 8, 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		for i := 0; i < keys; i++ {
			wg.Add(1)
			go func(w, i int) {
				defer wg.Done()
				d := a
				if w%2 == 1 {
					d = b
				}
				k := testKey(fmt.Sprintf("conv-%d", i))
				if err := d.Put(k, testImage(byte(i))); err != nil {
					t.Errorf("put %d/%d: %v", w, i, err)
				}
			}(w, i)
		}
	}
	wg.Wait()

	for i := 0; i < keys; i++ {
		k := testKey(fmt.Sprintf("conv-%d", i))
		img, err := a.Get(k)
		if err != nil {
			t.Fatalf("key %d from a: %v", i, err)
		}
		sameImage(t, img, testImage(byte(i)))
		if img2, err := b.Get(k); err != nil {
			t.Fatalf("key %d from b: %v", i, err)
		} else {
			sameImage(t, img2, img)
		}
	}
	// No temp files left behind by the atomic-rename publishes.
	filepath.WalkDir(filepath.Join(dir, "objects"), func(path string, e os.DirEntry, err error) error {
		if err == nil && !e.IsDir() && !ValidKey(e.Name()) {
			t.Errorf("stray file after concurrent publish: %s", path)
		}
		return nil
	})
}

// TestDiskIndexRebuild: deleting the journal does not lose artifacts —
// the index is rebuilt by walking the object directory.
func TestDiskIndexRebuild(t *testing.T) {
	dir := t.TempDir()
	d := openTestDisk(t, dir)
	k := testKey("rebuild")
	if err := d.Put(k, testImage(5)); err != nil {
		t.Fatal(err)
	}
	d.Close()
	if err := os.Remove(filepath.Join(dir, "index.jsonl")); err != nil {
		t.Fatal(err)
	}
	d2 := openTestDisk(t, dir)
	if st := d2.Stats(); st.Entries != 1 {
		t.Fatalf("rebuilt index has %d entries, want 1", st.Entries)
	}
	if _, err := d2.Get(k); err != nil {
		t.Fatalf("artifact lost with journal: %v", err)
	}
}

// TestDiskTornJournalLineSkipped: a torn (partial) trailing journal
// line — as a crashed writer would leave — is skipped at load, and the
// artifact stays reachable via the filesystem fallback.
func TestDiskTornJournalLineSkipped(t *testing.T) {
	dir := t.TempDir()
	d := openTestDisk(t, dir)
	k := testKey("torn")
	if err := d.Put(k, testImage(3)); err != nil {
		t.Fatal(err)
	}
	d.Close()
	f, err := os.OpenFile(filepath.Join(dir, "index.jsonl"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"deadbeef`) // torn mid-write
	f.Close()

	d2 := openTestDisk(t, dir)
	if _, err := d2.Get(k); err != nil {
		t.Fatalf("artifact unreachable after torn journal line: %v", err)
	}
}
