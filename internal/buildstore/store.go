// Package buildstore is the persistent, shareable, content-addressed
// store for compiled MCFI artifacts. MCFI compiles and instruments
// modules separately and composes them at link/update time (paper §4,
// §6), which makes a compiled artifact a natural content-addressed
// object: its key is toolchain.Builder.Fingerprint — a SHA-256 over
// the build flavor and every source — and the build pipeline is
// deterministic, so equal keys mean interchangeable artifacts.
//
// Three tiers implement one Store interface and compose behind a
// Tiered front end, checked in order:
//
//	mem    — in-process LRU of decoded images (the old server
//	         BuildCache, minus singleflight, which moved to Tiered)
//	disk   — on-disk CAS: sealed blobs + an index journal, published
//	         by atomic rename, hash-verified on every read
//	remote — another replica's (or a shared cache's) /v1/store HTTP
//	         endpoint
//
// A hit at a lower tier is backfilled into the tiers above it, so a
// mcfi-serve restart against a warm disk store (or a cold replica next
// to a warm one) serves its first jobs without recompiling anything.
package buildstore

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"

	"mcfi/internal/linker"
)

// Tier names which store level satisfied a lookup. Job results carry
// it so clients can see where their build came from.
type Tier string

// Tiers, cheapest first; TierBuilt means no tier had it and the
// artifact was compiled from source.
const (
	TierMem    Tier = "mem"
	TierDisk   Tier = "disk"
	TierRemote Tier = "remote"
	TierBuilt  Tier = "built"
)

// ErrNotFound reports a key absent from a store.
var ErrNotFound = errors.New("buildstore: not found")

// Store is one build-store tier: a content-addressed map from build
// fingerprints to linked images. Implementations must be safe for
// concurrent use. Get returns ErrNotFound for absent keys; a
// persistent store also returns ErrNotFound (after quarantining the
// entry) when stored bytes fail hash re-verification, so corruption
// surfaces as a rebuild, never as executing a torn image.
type Store interface {
	Get(key string) (*linker.Image, error)
	Put(key string, img *linker.Image) error
	Has(key string) bool
	Stats() Stats
	Close() error
}

// Stats is a point-in-time view of one tier.
type Stats struct {
	Tier    string `json:"tier"`
	Entries int    `json:"entries"`
	Bytes   int64  `json:"bytes"`
	Hits    int64  `json:"hits"`
	Misses  int64  `json:"misses"`
	Puts    int64  `json:"puts"`
	// Corrupt counts entries that failed hash re-verification on read
	// and were quarantined (disk) or refused (remote).
	Corrupt int64 `json:"corrupt,omitempty"`
}

// BlobStore is the raw-bytes plane of a persistent tier. Images are
// one artifact kind; compiled libc objects (per-flavor, pre-link) ride
// the same CAS as opaque blobs, and the /v1/store HTTP protocol moves
// sealed blobs without caring what is inside. Payloads returned by
// GetBlob are already integrity-verified.
type BlobStore interface {
	GetBlob(key string) ([]byte, error)
	PutBlob(key string, payload []byte) error
	HasBlob(key string) bool
}

// Blob envelope: every payload at rest or on the wire is sealed as
//
//	magic   "MCFS"    4 bytes
//	version u32       currently 1
//	sum     32 bytes  SHA-256 of payload
//	length  u64       payload length
//	payload
//
// Open re-verifies the hash, so truncation and bit flips anywhere in a
// stored or fetched entry are detected before anything decodes — a
// corrupt image is rebuilt rather than executed.

const (
	blobMagic   = "MCFS"
	blobVersion = 1
	blobHdrLen  = 4 + 4 + sha256.Size + 8
)

// Seal wraps a payload in the integrity envelope.
func Seal(payload []byte) []byte {
	out := make([]byte, blobHdrLen, blobHdrLen+len(payload))
	copy(out, blobMagic)
	binary.LittleEndian.PutUint32(out[4:], blobVersion)
	sum := sha256.Sum256(payload)
	copy(out[8:], sum[:])
	binary.LittleEndian.PutUint64(out[8+sha256.Size:], uint64(len(payload)))
	return append(out, payload...)
}

// Open unwraps a sealed blob, verifying length and hash.
func Open(envelope []byte) ([]byte, error) {
	if len(envelope) < blobHdrLen || string(envelope[:4]) != blobMagic {
		return nil, fmt.Errorf("buildstore: bad blob magic")
	}
	if v := binary.LittleEndian.Uint32(envelope[4:]); v != blobVersion {
		return nil, fmt.Errorf("buildstore: unsupported blob version %d", v)
	}
	want := envelope[8 : 8+sha256.Size]
	n := binary.LittleEndian.Uint64(envelope[8+sha256.Size:])
	payload := envelope[blobHdrLen:]
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("buildstore: blob truncated (%d of %d payload bytes)", len(payload), n)
	}
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(want) {
		return nil, fmt.Errorf("buildstore: blob hash mismatch")
	}
	return payload, nil
}

// ValidKey reports whether key is a well-formed content address (a
// lowercase hex SHA-256). Stores reject anything else: keys become
// file names and URL path segments, so this is also the traversal
// guard.
func ValidKey(key string) bool {
	if len(key) != 2*sha256.Size {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

var errBadKey = errors.New("buildstore: malformed key (want lowercase hex sha-256)")

// blobMAC authenticates a (key, payload) pair for the /v1/store wire
// protocol: HMAC-SHA256 over key || payload under a shared cluster
// secret. The envelope's self-embedded SHA-256 only proves integrity —
// anyone can seal arbitrary bytes — and the store key is a fingerprint
// of *sources*, not derivable from the artifact, so without this MAC a
// writer could publish a well-formed hostile image under a victim's
// key. The MAC binds both: only a secret holder can vouch that this
// payload is the artifact for this key.
func blobMAC(secret, key string, payload []byte) string {
	m := hmac.New(sha256.New, []byte(secret))
	m.Write([]byte(key))
	m.Write(payload)
	return hex.EncodeToString(m.Sum(nil))
}

// macEqual compares MACs in constant time.
func macEqual(a, b string) bool { return hmac.Equal([]byte(a), []byte(b)) }

// macHeader carries the blobMAC on /v1/store requests and responses.
const macHeader = "X-Mcfi-Store-Mac"

// HashKey returns the content address of raw key material — a helper
// for callers that key artifacts by something other than a builder
// fingerprint (e.g. per-flavor libc objects).
func HashKey(material string) string {
	sum := sha256.Sum256([]byte(material))
	return hex.EncodeToString(sum[:])
}

func encodeImage(img *linker.Image) ([]byte, error) {
	return img.MarshalBinary()
}

func decodeImage(payload []byte) (*linker.Image, error) {
	return linker.UnmarshalImage(payload)
}
