package buildstore

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"mcfi/internal/linker"
	"mcfi/internal/module"
	"mcfi/internal/visa"
)

// testImage builds a small synthetic linked image whose content varies
// with seed; buildstore never inspects the semantics, only round-trips
// and verifies bytes.
func testImage(seed byte) *linker.Image {
	return &linker.Image{
		Profile:      visa.Profile64,
		Instrumented: true,
		Code:         []byte{seed, 0x01, 0x02, 0x03, seed},
		Data:         []byte{0x10, seed},
		Entry:        64,
		Syms: map[string]linker.SymInfo{
			"main": {Addr: 64, Kind: module.SymFunc, Size: 5, Module: "t"},
		},
		Aux: module.AuxInfo{SetjmpConts: []int{int(seed)}},
		GOT: map[string]int64{"g": 8},
		PLT: map[string]int64{"p": 16},
		Modules: []linker.ModuleRange{
			{Name: "t", CodeStart: 64, CodeEnd: 69, DataStart: 0, DataEnd: 2},
		},
	}
}

func testKey(s string) string { return HashKey("test-material|" + s) }

func sameImage(t *testing.T, a, b *linker.Image) {
	t.Helper()
	ab, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatalf("images differ after round-trip")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	payload := []byte("the compiled artifact bytes")
	got, err := Open(Seal(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mangled: %q", got)
	}
	if _, err := Open(Seal(nil)); err != nil {
		t.Fatalf("empty payload: %v", err)
	}
}

func TestOpenDetectsTruncationAndBitFlips(t *testing.T) {
	env := Seal([]byte("some artifact that will be damaged at rest"))
	// Truncation at every boundary, including inside the header.
	for _, n := range []int{0, 3, blobHdrLen - 1, blobHdrLen, len(env) - 1} {
		if _, err := Open(env[:n]); err == nil {
			t.Errorf("truncation to %d bytes not detected", n)
		}
	}
	// A single flipped bit anywhere must fail verification.
	for _, pos := range []int{0, 5, blobHdrLen - 2, blobHdrLen, len(env) - 1} {
		bad := append([]byte(nil), env...)
		bad[pos] ^= 0x40
		if _, err := Open(bad); err == nil {
			t.Errorf("bit flip at offset %d not detected", pos)
		}
	}
}

func TestValidKey(t *testing.T) {
	good := HashKey("x")
	if !ValidKey(good) {
		t.Fatalf("HashKey output %q rejected", good)
	}
	for _, bad := range []string{
		"", "abc", good[:63], good + "0",
		"../../../../etc/passwd0000000000000000000000000000000000000000",
		"ABCDEF0000000000000000000000000000000000000000000000000000000000", // uppercase
		"zzzzzz0000000000000000000000000000000000000000000000000000000000"[:64],
	} {
		if ValidKey(bad) {
			t.Errorf("ValidKey(%q) = true", bad)
		}
	}
}

func TestMemLRUEvictsLeastRecentlyUsed(t *testing.T) {
	m := NewMem(3)
	keys := make([]string, 4)
	for i := range keys {
		keys[i] = testKey(fmt.Sprint("k", i))
	}
	for i := 0; i < 3; i++ {
		if err := m.Put(keys[i], testImage(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Touch k0 so k1 becomes the LRU entry; a FIFO cache would evict k0.
	if _, err := m.Get(keys[0]); err != nil {
		t.Fatal(err)
	}
	if err := m.Put(keys[3], testImage(3)); err != nil {
		t.Fatal(err)
	}
	if !m.Has(keys[0]) {
		t.Error("k0 evicted despite being recently used (FIFO behavior)")
	}
	if m.Has(keys[1]) {
		t.Error("k1 (least recently used) survived eviction")
	}
	if st := m.Stats(); st.Entries != 3 {
		t.Errorf("entries = %d, want 3", st.Entries)
	}
	if _, err := m.Get(testKey("absent")); !errors.Is(err, ErrNotFound) {
		t.Errorf("absent key: %v, want ErrNotFound", err)
	}
}

func TestMemPutRefreshesExisting(t *testing.T) {
	m := NewMem(2)
	k := testKey("refresh")
	m.Put(k, testImage(1))
	m.Put(k, testImage(2))
	img, err := m.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	sameImage(t, img, testImage(2))
	if st := m.Stats(); st.Entries != 1 {
		t.Errorf("entries = %d after refresh, want 1", st.Entries)
	}
}
