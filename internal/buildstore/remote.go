package buildstore

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"mcfi/internal/linker"
)

// The fetch/publish protocol: sealed blobs move verbatim over
//
//	GET  /v1/store/{key}   200 + envelope | 404
//	HEAD /v1/store/{key}   200 | 404
//	PUT  /v1/store/{key}   envelope body -> 204 | 400 (bad key/seal)
//
// Both ends verify the Seal envelope, so a corrupted transfer (or a
// hostile peer) is rejected, never decoded. Every mcfi-serve replica
// mounts Handler over its disk tier, so replicas can point -store-remote
// at each other (or at a dedicated cache) and share one warm store.

// Remote is a Store backed by another process's /v1/store endpoint.
type Remote struct {
	base   string // e.g. "http://cache:8377" (no trailing slash)
	client *http.Client

	hits, misses, puts, corrupt atomic.Int64
}

// NewRemote returns a client for the store at base (the server root;
// "/v1/store/" is appended). A nil client gets a 30s timeout default.
func NewRemote(base string, client *http.Client) *Remote {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &Remote{base: strings.TrimRight(base, "/"), client: client}
}

func (r *Remote) url(key string) string { return r.base + "/v1/store/" + key }

// GetBlob fetches and verifies the payload under key.
func (r *Remote) GetBlob(key string) ([]byte, error) {
	if !ValidKey(key) {
		return nil, errBadKey
	}
	resp, err := r.client.Get(r.url(key))
	if err != nil {
		r.misses.Add(1)
		return nil, fmt.Errorf("buildstore: remote get: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		r.misses.Add(1)
		return nil, ErrNotFound
	}
	if resp.StatusCode != http.StatusOK {
		r.misses.Add(1)
		return nil, fmt.Errorf("buildstore: remote get: %s", resp.Status)
	}
	env, err := io.ReadAll(resp.Body)
	if err != nil {
		r.misses.Add(1)
		return nil, fmt.Errorf("buildstore: remote get: %w", err)
	}
	payload, err := Open(env)
	if err != nil {
		// The peer served bytes that fail verification: refuse them.
		r.corrupt.Add(1)
		r.misses.Add(1)
		return nil, ErrNotFound
	}
	r.hits.Add(1)
	return payload, nil
}

// PutBlob publishes a payload to the peer. Publish failures are
// returned but callers treat the remote as best-effort (a down peer
// must not fail the build).
func (r *Remote) PutBlob(key string, payload []byte) error {
	if !ValidKey(key) {
		return errBadKey
	}
	r.puts.Add(1)
	req, err := http.NewRequest(http.MethodPut, r.url(key), bytes.NewReader(Seal(payload)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := r.client.Do(req)
	if err != nil {
		return fmt.Errorf("buildstore: remote put: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("buildstore: remote put: %s", resp.Status)
	}
	return nil
}

// HasBlob probes the peer with a HEAD request.
func (r *Remote) HasBlob(key string) bool {
	if !ValidKey(key) {
		return false
	}
	resp, err := r.client.Head(r.url(key))
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Get fetches and decodes an image.
func (r *Remote) Get(key string) (*linker.Image, error) {
	payload, err := r.GetBlob(key)
	if err != nil {
		return nil, err
	}
	img, err := decodeImage(payload)
	if err != nil {
		r.corrupt.Add(1)
		return nil, ErrNotFound
	}
	return img, nil
}

// Put encodes and publishes an image.
func (r *Remote) Put(key string, img *linker.Image) error {
	payload, err := encodeImage(img)
	if err != nil {
		return err
	}
	return r.PutBlob(key, payload)
}

// Has probes the peer.
func (r *Remote) Has(key string) bool { return r.HasBlob(key) }

// Stats snapshots the client-side counters (entry counts live on the
// serving side).
func (r *Remote) Stats() Stats {
	return Stats{
		Tier: string(TierRemote),
		Hits: r.hits.Load(), Misses: r.misses.Load(),
		Puts: r.puts.Load(), Corrupt: r.corrupt.Load(),
	}
}

// Close is a no-op (the HTTP client owns no persistent state).
func (r *Remote) Close() error { return nil }

// Handler serves the fetch/publish protocol from a local blob store.
// Mount it at "/v1/store/" (and the legacy "/store/" alias if
// desired); the key is the final path segment.
func Handler(bs BlobStore) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		key := req.URL.Path[strings.LastIndexByte(req.URL.Path, '/')+1:]
		if !ValidKey(key) {
			http.Error(w, "malformed store key", http.StatusBadRequest)
			return
		}
		switch req.Method {
		case http.MethodHead:
			if !bs.HasBlob(key) {
				w.WriteHeader(http.StatusNotFound)
				return
			}
			w.WriteHeader(http.StatusOK)
		case http.MethodGet:
			payload, err := bs.GetBlob(key)
			if err != nil {
				http.Error(w, "not found", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(Seal(payload))
		case http.MethodPut:
			env, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxBlobBytes))
			if err != nil {
				http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
				return
			}
			payload, err := Open(env)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if err := bs.PutBlob(key, payload); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "GET, HEAD, or PUT", http.StatusMethodNotAllowed)
		}
	})
}

// maxBlobBytes bounds a published blob (64 MiB — far above any linked
// MCFI image, low enough to stop a hostile peer from exhausting
// memory).
const maxBlobBytes = 64 << 20
