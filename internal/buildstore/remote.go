package buildstore

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"mcfi/internal/linker"
)

// The fetch/publish protocol: sealed blobs move verbatim over
//
//	GET  /v1/store/{key}   200 + envelope | 404
//	HEAD /v1/store/{key}   200 | 404
//	PUT  /v1/store/{key}   envelope body -> 204 | 400 (bad key/seal) | 403
//
// Threat model. The Seal envelope detects *corruption* (truncation,
// bit flips in transit or at rest) — its hash is self-embedded, so it
// cannot detect *substitution*: anyone can seal arbitrary bytes, and
// the store key is Builder.Fingerprint over sources, which is not
// recomputable from the artifact. Authenticity therefore comes from a
// shared cluster secret that MACs each (key, payload) pair
// (X-Mcfi-Store-Mac, HMAC-SHA256):
//
//   - PUT always requires a valid MAC. A server with no secret
//     configured refuses every PUT (403) — the write surface is OFF by
//     default, so an unauthenticated peer can never publish an image
//     under someone else's fingerprint and have it fetched, backfilled,
//     and executed.
//   - GET responses from a secret-holding server carry the MAC, and a
//     secret-holding client verifies it, so a peer that serves bytes it
//     cannot vouch for is refused. A client with no secret only
//     integrity-checks GETs — acceptable only because -store-remote is
//     an operator-configured, explicitly trusted peer.
//
// Give every replica in a trust domain the same -store-secret and they
// can point -store-remote at each other (or a dedicated cache) and
// share one warm store read-write.

// Remote is a Store backed by another process's /v1/store endpoint.
type Remote struct {
	base   string // e.g. "http://cache:8377" (no trailing slash)
	client *http.Client
	secret string // shared cluster secret; "" = read-only, unverified

	hits, misses, puts, corrupt atomic.Int64
}

// ErrReadOnly reports a publish attempted without a shared secret —
// the peer would refuse it, so it is not sent at all.
var ErrReadOnly = errors.New("buildstore: remote store is read-only (no shared secret configured)")

// NewRemote returns a client for the store at base (the server root;
// "/v1/store/" is appended) authenticating with secret ("" = read-only
// probing with no authenticity check). A nil client gets a 3s timeout:
// the remote tier sits on every cold-miss path, and a hung (not down)
// peer must stall a build by seconds, not the 30s http.Client default;
// pass an explicit client for slow links or very large artifacts.
func NewRemote(base string, client *http.Client, secret string) *Remote {
	if client == nil {
		client = &http.Client{Timeout: 3 * time.Second}
	}
	return &Remote{base: strings.TrimRight(base, "/"), client: client, secret: secret}
}

func (r *Remote) url(key string) string { return r.base + "/v1/store/" + key }

// GetBlob fetches and verifies the payload under key: envelope hash
// always, key-binding MAC too when a secret is configured.
func (r *Remote) GetBlob(key string) ([]byte, error) {
	if !ValidKey(key) {
		return nil, errBadKey
	}
	resp, err := r.client.Get(r.url(key))
	if err != nil {
		r.misses.Add(1)
		return nil, fmt.Errorf("buildstore: remote get: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		r.misses.Add(1)
		return nil, ErrNotFound
	}
	if resp.StatusCode != http.StatusOK {
		r.misses.Add(1)
		return nil, fmt.Errorf("buildstore: remote get: %s", resp.Status)
	}
	env, err := io.ReadAll(io.LimitReader(resp.Body, maxBlobBytes+blobHdrLen))
	if err != nil {
		r.misses.Add(1)
		return nil, fmt.Errorf("buildstore: remote get: %w", err)
	}
	payload, err := Open(env)
	if err != nil {
		// The peer served bytes that fail verification: refuse them.
		r.corrupt.Add(1)
		r.misses.Add(1)
		return nil, ErrNotFound
	}
	if r.secret != "" && !macEqual(resp.Header.Get(macHeader), blobMAC(r.secret, key, payload)) {
		// Intact envelope but the peer cannot vouch that this payload
		// belongs to this key: refuse a possible substitution.
		r.corrupt.Add(1)
		r.misses.Add(1)
		return nil, ErrNotFound
	}
	r.hits.Add(1)
	return payload, nil
}

// PutBlob publishes a payload to the peer, authenticated with the
// shared secret. Without one it fails fast with ErrReadOnly. Publish
// failures are returned but callers treat the remote as best-effort (a
// down peer must not fail the build).
func (r *Remote) PutBlob(key string, payload []byte) error {
	if !ValidKey(key) {
		return errBadKey
	}
	if r.secret == "" {
		return ErrReadOnly
	}
	r.puts.Add(1)
	req, err := http.NewRequest(http.MethodPut, r.url(key), bytes.NewReader(Seal(payload)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(macHeader, blobMAC(r.secret, key, payload))
	resp, err := r.client.Do(req)
	if err != nil {
		return fmt.Errorf("buildstore: remote put: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("buildstore: remote put: %s", resp.Status)
	}
	return nil
}

// HasBlob probes the peer with a HEAD request.
func (r *Remote) HasBlob(key string) bool {
	if !ValidKey(key) {
		return false
	}
	resp, err := r.client.Head(r.url(key))
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Get fetches and decodes an image.
func (r *Remote) Get(key string) (*linker.Image, error) {
	payload, err := r.GetBlob(key)
	if err != nil {
		return nil, err
	}
	img, err := decodeImage(payload)
	if err != nil {
		r.corrupt.Add(1)
		return nil, ErrNotFound
	}
	return img, nil
}

// Put encodes and publishes an image.
func (r *Remote) Put(key string, img *linker.Image) error {
	payload, err := encodeImage(img)
	if err != nil {
		return err
	}
	return r.PutBlob(key, payload)
}

// Has probes the peer.
func (r *Remote) Has(key string) bool { return r.HasBlob(key) }

// Stats snapshots the client-side counters (entry counts live on the
// serving side).
func (r *Remote) Stats() Stats {
	return Stats{
		Tier: string(TierRemote),
		Hits: r.hits.Load(), Misses: r.misses.Load(),
		Puts: r.puts.Load(), Corrupt: r.corrupt.Load(),
	}
}

// Close is a no-op (the HTTP client owns no persistent state).
func (r *Remote) Close() error { return nil }

// Handler serves the fetch/publish protocol from a local blob store.
// Mount it at "/v1/store/"; the key is the final path segment. secret
// is the shared cluster secret: every PUT must carry a matching
// (key, payload) MAC, and with secret == "" the handler is read-only —
// all PUTs are refused, so an open port cannot be used to poison the
// store. GET responses carry the MAC when a secret is configured, so
// secret-holding clients can verify what they fetch.
func Handler(bs BlobStore, secret string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		key := req.URL.Path[strings.LastIndexByte(req.URL.Path, '/')+1:]
		if !ValidKey(key) {
			http.Error(w, "malformed store key", http.StatusBadRequest)
			return
		}
		switch req.Method {
		case http.MethodHead:
			if !bs.HasBlob(key) {
				w.WriteHeader(http.StatusNotFound)
				return
			}
			w.WriteHeader(http.StatusOK)
		case http.MethodGet:
			payload, err := bs.GetBlob(key)
			if err != nil {
				http.Error(w, "not found", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			if secret != "" {
				w.Header().Set(macHeader, blobMAC(secret, key, payload))
			}
			w.Write(Seal(payload))
		case http.MethodPut:
			if secret == "" {
				http.Error(w, "store writes disabled (no shared secret configured)", http.StatusForbidden)
				return
			}
			env, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxBlobBytes))
			if err != nil {
				http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
				return
			}
			payload, err := Open(env)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if !macEqual(req.Header.Get(macHeader), blobMAC(secret, key, payload)) {
				http.Error(w, "missing or invalid store MAC", http.StatusForbidden)
				return
			}
			if err := bs.PutBlob(key, payload); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "GET, HEAD, or PUT", http.StatusMethodNotAllowed)
		}
	})
}

// maxBlobBytes bounds a published blob (64 MiB — far above any linked
// MCFI image, low enough to stop a hostile peer from exhausting
// memory).
const maxBlobBytes = 64 << 20
