// Package ctypes implements the C-like type system used by the MiniC
// front end and by MCFI's type-matching CFG generation.
//
// The central operation is structural type equivalence (Equal): MCFI
// allows an indirect call through a function pointer of type τ* to
// target any address-taken function whose type is structurally
// equivalent to τ, where named types (typedefs, struct tags) are
// replaced by their definitions. Recursive struct types are handled
// coinductively with an assumption set, the standard algorithm for
// equi-recursive structural equality.
package ctypes

import (
	"fmt"
	"strings"
)

// Kind enumerates the kinds of MiniC types.
type Kind int

const (
	// Void is the C void type (valid only as a return type or behind a pointer).
	Void Kind = iota
	// Bool is the boolean type produced by comparisons.
	Bool
	// Char is a signed 8-bit integer.
	Char
	// Short is a signed 16-bit integer.
	Short
	// Int is a signed 32-bit integer.
	Int
	// Long is a signed 64-bit integer.
	Long
	// UChar is an unsigned 8-bit integer.
	UChar
	// UShort is an unsigned 16-bit integer.
	UShort
	// UInt is an unsigned 32-bit integer.
	UInt
	// ULong is an unsigned 64-bit integer.
	ULong
	// Double is a 64-bit IEEE float.
	Double
	// Pointer is a pointer to Elem.
	Pointer
	// Array is a fixed-size array of Elem with Len elements.
	Array
	// Struct is a record with ordered named fields.
	Struct
	// Union is an overlapping record.
	Union
	// Func is a function type with Params, Result, and optional variadic tail.
	Func
	// Enum is an enumerated type; represented with Int's layout.
	Enum
)

// Type represents a MiniC type. Types are immutable after construction
// except for struct/union bodies, which may be completed after the type
// object is created (to permit self-referential structs).
type Type struct {
	Kind Kind

	// Elem is the pointee for Pointer, the element for Array.
	Elem *Type
	// Len is the element count for Array.
	Len int

	// Name is the tag for Struct/Union/Enum or the typedef name that
	// introduced the type. Equality never depends on Name.
	Name string
	// Fields holds the members of a Struct or Union in declaration order.
	Fields []Field
	// Incomplete marks a struct/union that was declared but not yet defined.
	Incomplete bool

	// Params and Result describe a Func. Variadic marks a "..." tail.
	Params   []*Type
	Result   *Type
	Variadic bool
}

// Field is one member of a struct or union.
type Field struct {
	Name   string
	Type   *Type
	Offset int // byte offset within the record, filled by Layout
}

// Basic singleton types. These are shared; callers must not mutate them.
var (
	VoidType   = &Type{Kind: Void}
	BoolType   = &Type{Kind: Bool}
	CharType   = &Type{Kind: Char}
	ShortType  = &Type{Kind: Short}
	IntType    = &Type{Kind: Int}
	LongType   = &Type{Kind: Long}
	UCharType  = &Type{Kind: UChar}
	UShortType = &Type{Kind: UShort}
	UIntType   = &Type{Kind: UInt}
	ULongType  = &Type{Kind: ULong}
	DoubleType = &Type{Kind: Double}
)

// PointerTo returns a pointer type to elem.
func PointerTo(elem *Type) *Type { return &Type{Kind: Pointer, Elem: elem} }

// ArrayOf returns an array type of n elems.
func ArrayOf(elem *Type, n int) *Type { return &Type{Kind: Array, Elem: elem, Len: n} }

// FuncOf returns a function type.
func FuncOf(result *Type, params []*Type, variadic bool) *Type {
	return &Type{Kind: Func, Result: result, Params: params, Variadic: variadic}
}

// IsInteger reports whether t is an integer type (including bool, char,
// and enum, which all participate in integer arithmetic).
func (t *Type) IsInteger() bool {
	switch t.Kind {
	case Bool, Char, Short, Int, Long, UChar, UShort, UInt, ULong, Enum:
		return true
	}
	return false
}

// IsUnsigned reports whether t is an unsigned integer type.
func (t *Type) IsUnsigned() bool {
	switch t.Kind {
	case UChar, UShort, UInt, ULong, Bool:
		return true
	}
	return false
}

// IsArithmetic reports whether t is an integer or floating type.
func (t *Type) IsArithmetic() bool { return t.IsInteger() || t.Kind == Double }

// IsScalar reports whether t is arithmetic or a pointer.
func (t *Type) IsScalar() bool { return t.IsArithmetic() || t.Kind == Pointer }

// IsFuncPointer reports whether t is a pointer to a function type.
func (t *Type) IsFuncPointer() bool {
	return t.Kind == Pointer && t.Elem != nil && t.Elem.Kind == Func
}

// HasFuncPointer reports whether t contains a function pointer anywhere
// in its structure (directly, or inside a struct/union/array member).
// It is used by the C1 analyzer to decide whether a cast "involves"
// function pointer types. Recursive structs are handled with a visited set.
func (t *Type) HasFuncPointer() bool { return hasFP(t, map[*Type]bool{}) }

func hasFP(t *Type, seen map[*Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch t.Kind {
	case Pointer:
		return t.Elem != nil && t.Elem.Kind == Func
	case Array:
		return hasFP(t.Elem, seen)
	case Struct, Union:
		for _, f := range t.Fields {
			if hasFP(f.Type, seen) {
				return true
			}
		}
	}
	return false
}

// Size returns the size of t in bytes under the MCFI data model
// (ILP32-like integer widths, 8-byte pointers and longs — matching the
// visa64 profile; the visa32 profile uses 4-byte pointers but layout
// differences never affect type equivalence).
func (t *Type) Size() int { return t.sizeRec(map[*Type]bool{}) }

func (t *Type) sizeRec(seen map[*Type]bool) int {
	switch t.Kind {
	case Void:
		return 0
	case Bool, Char, UChar:
		return 1
	case Short, UShort:
		return 2
	case Int, UInt, Enum:
		return 4
	case Long, ULong, Double, Pointer, Func:
		return 8
	case Array:
		return t.Len * t.Elem.sizeRec(seen)
	case Struct:
		// seen guards cycles along the current path only (a struct can
		// legally appear as a field type in several siblings); it is
		// unmarked on exit.
		if seen[t] {
			return 0 // malformed direct self-reference; be total
		}
		seen[t] = true
		size, maxAlign := 0, 1
		for _, f := range t.Fields {
			a := f.Type.alignRec(map[*Type]bool{})
			if a > maxAlign {
				maxAlign = a
			}
			size = alignUp(size, a)
			size += f.Type.sizeRec(seen)
		}
		delete(seen, t)
		return alignUp(size, maxAlign)
	case Union:
		if seen[t] {
			return 0
		}
		seen[t] = true
		size, maxAlign := 0, 1
		for _, f := range t.Fields {
			if a := f.Type.alignRec(map[*Type]bool{}); a > maxAlign {
				maxAlign = a
			}
			if s := f.Type.sizeRec(seen); s > size {
				size = s
			}
		}
		delete(seen, t)
		return alignUp(size, maxAlign)
	}
	return 0
}

// Align returns the alignment of t in bytes.
func (t *Type) Align() int { return t.alignRec(map[*Type]bool{}) }

func (t *Type) alignRec(seen map[*Type]bool) int {
	switch t.Kind {
	case Bool, Char, UChar, Void:
		return 1
	case Short, UShort:
		return 2
	case Int, UInt, Enum:
		return 4
	case Long, ULong, Double, Pointer, Func:
		return 8
	case Array:
		return t.Elem.alignRec(seen)
	case Struct, Union:
		if seen[t] {
			return 1
		}
		seen[t] = true
		a := 1
		for _, f := range t.Fields {
			if fa := f.Type.alignRec(seen); fa > a {
				a = fa
			}
		}
		delete(seen, t)
		return a
	}
	return 1
}

func alignUp(n, a int) int {
	if a <= 1 {
		return n
	}
	return (n + a - 1) / a * a
}

// Layout computes field offsets for a struct or union in place.
func (t *Type) Layout() {
	if t.Kind == Union {
		for i := range t.Fields {
			t.Fields[i].Offset = 0
		}
		return
	}
	if t.Kind != Struct {
		return
	}
	off := 0
	for i := range t.Fields {
		a := t.Fields[i].Type.alignRec(map[*Type]bool{t: true})
		off = alignUp(off, a)
		t.Fields[i].Offset = off
		off += t.Fields[i].Type.sizeRec(map[*Type]bool{t: true})
	}
}

// Field returns the field with the given name and true, or a zero Field
// and false if no such member exists.
func (t *Type) Field(name string) (Field, bool) {
	for _, f := range t.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// typePair keys the coinductive assumption set for Equal.
type typePair struct{ a, b *Type }

// Equal reports structural equivalence of a and b, unfolding named
// types. It is the equivalence relation used by MCFI's type-matching
// CFG generation (paper §6).
func Equal(a, b *Type) bool { return equalRec(a, b, map[typePair]bool{}) }

func equalRec(a, b *Type, assume map[typePair]bool) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	if a.Kind != b.Kind {
		return false
	}
	pair := typePair{a, b}
	if assume[pair] {
		return true // coinductive hypothesis
	}
	assume[pair] = true
	switch a.Kind {
	case Void, Bool, Char, Short, Int, Long, UChar, UShort, UInt, ULong, Double:
		return true
	case Enum:
		return true // enums all share int layout; names are ignored
	case Pointer:
		return equalRec(a.Elem, b.Elem, assume)
	case Array:
		return a.Len == b.Len && equalRec(a.Elem, b.Elem, assume)
	case Struct, Union:
		if len(a.Fields) != len(b.Fields) || a.Incomplete != b.Incomplete {
			return false
		}
		for i := range a.Fields {
			// Field names are part of structural identity for records,
			// matching the physical-subtyping treatment in the paper's
			// analyzer; types must match too.
			if a.Fields[i].Name != b.Fields[i].Name {
				return false
			}
			if !equalRec(a.Fields[i].Type, b.Fields[i].Type, assume) {
				return false
			}
		}
		return true
	case Func:
		if a.Variadic != b.Variadic || len(a.Params) != len(b.Params) {
			return false
		}
		if !equalRec(a.Result, b.Result, assume) {
			return false
		}
		for i := range a.Params {
			if !equalRec(a.Params[i], b.Params[i], assume) {
				return false
			}
		}
		return true
	}
	return false
}

// VariadicMatch implements the paper's rule for variadic function
// pointers (§6): an indirect call through a pointer of variadic
// function type fp may target function fn when fn's address is taken,
// return types match, and fn's parameter list begins with fp's fixed
// parameter types. fp must be a Func type with Variadic set.
func VariadicMatch(fp, fn *Type) bool {
	if fp == nil || fn == nil || fp.Kind != Func || fn.Kind != Func || !fp.Variadic {
		return false
	}
	if !Equal(fp.Result, fn.Result) {
		return false
	}
	if len(fn.Params) < len(fp.Params) {
		return false
	}
	for i := range fp.Params {
		if !Equal(fp.Params[i], fn.Params[i]) {
			return false
		}
	}
	return true
}

// CallMatch reports whether an indirect call through a function pointer
// with pointee type fp may target a function of type fn under MCFI's
// type-matching policy. Non-variadic pointers require full structural
// equality; variadic pointers use the prefix rule.
func CallMatch(fp, fn *Type) bool {
	if fp == nil || fn == nil {
		return false
	}
	if fp.Variadic {
		return VariadicMatch(fp, fn)
	}
	return Equal(fp, fn)
}

// IsPrefixStruct reports whether inner's fields are a prefix of outer's
// fields (same names and structurally equal types). This is the
// "physical subtype" relation used to recognize upcasts (UC) in the
// analyzer's false-positive elimination.
func IsPrefixStruct(outer, inner *Type) bool {
	if outer == nil || inner == nil || outer.Kind != Struct || inner.Kind != Struct {
		return false
	}
	if len(inner.Fields) > len(outer.Fields) {
		return false
	}
	for i := range inner.Fields {
		if outer.Fields[i].Name != inner.Fields[i].Name {
			return false
		}
		if !Equal(outer.Fields[i].Type, inner.Fields[i].Type) {
			return false
		}
	}
	return true
}

// String renders t in a C-like syntax. Recursive structs print their
// tag instead of recursing forever.
func (t *Type) String() string { return t.str(map[*Type]bool{}) }

func (t *Type) str(seen map[*Type]bool) string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case Void:
		return "void"
	case Bool:
		return "bool"
	case Char:
		return "char"
	case Short:
		return "short"
	case Int:
		return "int"
	case Long:
		return "long"
	case UChar:
		return "unsigned char"
	case UShort:
		return "unsigned short"
	case UInt:
		return "unsigned int"
	case ULong:
		return "unsigned long"
	case Double:
		return "double"
	case Enum:
		if t.Name != "" {
			return "enum " + t.Name
		}
		return "enum"
	case Pointer:
		return t.Elem.str(seen) + "*"
	case Array:
		return fmt.Sprintf("%s[%d]", t.Elem.str(seen), t.Len)
	case Struct, Union:
		kw := "struct"
		if t.Kind == Union {
			kw = "union"
		}
		if seen[t] {
			if t.Name != "" {
				return kw + " " + t.Name
			}
			return kw + " <anon>"
		}
		seen[t] = true
		var b strings.Builder
		b.WriteString(kw)
		if t.Name != "" {
			b.WriteString(" " + t.Name)
		}
		b.WriteString("{")
		for i, f := range t.Fields {
			if i > 0 {
				b.WriteString("; ")
			}
			b.WriteString(f.Name + ":" + f.Type.str(seen))
		}
		b.WriteString("}")
		return b.String()
	case Func:
		var b strings.Builder
		b.WriteString(t.Result.str(seen))
		b.WriteString("(")
		for i, p := range t.Params {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(p.str(seen))
		}
		if t.Variadic {
			if len(t.Params) > 0 {
				b.WriteString(", ")
			}
			b.WriteString("...")
		}
		b.WriteString(")")
		return b.String()
	}
	return "<unknown>"
}

// Signature returns a canonical, structure-only string for t, suitable
// as a map key for grouping structurally equal function types. Two
// types with equal signatures are structurally equal; the converse
// holds for the types MiniC can express (recursive records are keyed by
// a stable visit index so isomorphic cycles agree).
func Signature(t *Type) string {
	var b strings.Builder
	sigRec(t, &b, map[*Type]int{}, new(int))
	return b.String()
}

func sigRec(t *Type, b *strings.Builder, idx map[*Type]int, n *int) {
	if t == nil {
		b.WriteString("?")
		return
	}
	switch t.Kind {
	case Void:
		b.WriteString("v")
	case Bool:
		b.WriteString("b")
	case Char:
		b.WriteString("c")
	case Short:
		b.WriteString("s")
	case Int:
		b.WriteString("i")
	case Long:
		b.WriteString("l")
	case UChar:
		b.WriteString("C")
	case UShort:
		b.WriteString("S")
	case UInt:
		b.WriteString("I")
	case ULong:
		b.WriteString("L")
	case Double:
		b.WriteString("d")
	case Enum:
		b.WriteString("i") // enum == int for matching purposes
	case Pointer:
		b.WriteString("*")
		sigRec(t.Elem, b, idx, n)
	case Array:
		fmt.Fprintf(b, "[%d]", t.Len)
		sigRec(t.Elem, b, idx, n)
	case Struct, Union:
		if i, ok := idx[t]; ok {
			fmt.Fprintf(b, "@%d", i)
			return
		}
		*n++
		idx[t] = *n
		if t.Kind == Union {
			b.WriteString("u{")
		} else {
			b.WriteString("r{")
		}
		for _, f := range t.Fields {
			b.WriteString(f.Name)
			b.WriteString(":")
			sigRec(f.Type, b, idx, n)
			b.WriteString(";")
		}
		b.WriteString("}")
	case Func:
		b.WriteString("f(")
		for _, p := range t.Params {
			sigRec(p, b, idx, n)
			b.WriteString(",")
		}
		if t.Variadic {
			b.WriteString("...")
		}
		b.WriteString(")->")
		sigRec(t.Result, b, idx, n)
	}
}
