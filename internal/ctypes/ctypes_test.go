package ctypes

import (
	"testing"
	"testing/quick"
)

func TestBasicEquality(t *testing.T) {
	cases := []struct {
		a, b *Type
		want bool
	}{
		{IntType, IntType, true},
		{IntType, LongType, false},
		{IntType, UIntType, false},
		{CharType, UCharType, false},
		{DoubleType, DoubleType, true},
		{PointerTo(IntType), PointerTo(IntType), true},
		{PointerTo(IntType), PointerTo(CharType), false},
		{ArrayOf(IntType, 4), ArrayOf(IntType, 4), true},
		{ArrayOf(IntType, 4), ArrayOf(IntType, 5), false},
		{VoidType, VoidType, true},
	}
	for i, c := range cases {
		if got := Equal(c.a, c.b); got != c.want {
			t.Errorf("case %d: Equal(%s, %s) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestNamedTypesUnfold(t *testing.T) {
	// typedef int myint; myint and int must be structurally equal.
	myint := &Type{Kind: Int, Name: "myint"}
	if !Equal(myint, IntType) {
		t.Error("typedef'd int should equal int")
	}
	// Two structs with different tags but identical bodies are equal.
	a := &Type{Kind: Struct, Name: "A", Fields: []Field{{Name: "x", Type: IntType}}}
	b := &Type{Kind: Struct, Name: "B", Fields: []Field{{Name: "x", Type: IntType}}}
	if !Equal(a, b) {
		t.Error("identically-shaped structs with different tags should be equal")
	}
	// Differing field names break equality.
	c := &Type{Kind: Struct, Fields: []Field{{Name: "y", Type: IntType}}}
	if Equal(a, c) {
		t.Error("structs with different field names should differ")
	}
}

func TestRecursiveStructEquality(t *testing.T) {
	// struct list { int v; struct list *next; } in two separate instances.
	mk := func() *Type {
		s := &Type{Kind: Struct, Name: "list"}
		s.Fields = []Field{
			{Name: "v", Type: IntType},
			{Name: "next", Type: PointerTo(s)},
		}
		return s
	}
	a, b := mk(), mk()
	if !Equal(a, b) {
		t.Error("isomorphic recursive structs should be equal")
	}
	// A recursive struct vs one extra field should differ.
	c := mk()
	c.Fields = append(c.Fields, Field{Name: "extra", Type: CharType})
	if Equal(a, c) {
		t.Error("recursive structs with different field counts should differ")
	}
	// Mutually recursive pair vs self-recursive: isomorphic unfolding.
	x := &Type{Kind: Struct, Name: "x"}
	y := &Type{Kind: Struct, Name: "y"}
	x.Fields = []Field{{Name: "v", Type: IntType}, {Name: "next", Type: PointerTo(y)}}
	y.Fields = []Field{{Name: "v", Type: IntType}, {Name: "next", Type: PointerTo(x)}}
	if !Equal(a, x) {
		t.Error("mutually recursive structs with isomorphic unfolding should equal self-recursive struct")
	}
}

func TestFuncEquality(t *testing.T) {
	f1 := FuncOf(IntType, []*Type{IntType, IntType}, false)
	f2 := FuncOf(IntType, []*Type{IntType, IntType}, false)
	f3 := FuncOf(IntType, []*Type{IntType}, false)
	f4 := FuncOf(LongType, []*Type{IntType, IntType}, false)
	f5 := FuncOf(IntType, []*Type{IntType, IntType}, true)
	if !Equal(f1, f2) {
		t.Error("identical func types should be equal")
	}
	for i, f := range []*Type{f3, f4, f5} {
		if Equal(f1, f) {
			t.Errorf("func variant %d should differ from f1", i)
		}
	}
}

func TestVariadicMatch(t *testing.T) {
	// int (*)(int, ...) matches int f(int), int f(int,char), but not
	// long f(int) and not int f(char).
	fp := FuncOf(IntType, []*Type{IntType}, true)
	ok := []*Type{
		FuncOf(IntType, []*Type{IntType}, false),
		FuncOf(IntType, []*Type{IntType, CharType}, false),
		FuncOf(IntType, []*Type{IntType}, true),
	}
	bad := []*Type{
		FuncOf(LongType, []*Type{IntType}, false),
		FuncOf(IntType, []*Type{CharType}, false),
		FuncOf(IntType, nil, false),
	}
	for i, f := range ok {
		if !VariadicMatch(fp, f) {
			t.Errorf("ok[%d]: VariadicMatch(%s, %s) = false, want true", i, fp, f)
		}
	}
	for i, f := range bad {
		if VariadicMatch(fp, f) {
			t.Errorf("bad[%d]: VariadicMatch(%s, %s) = true, want false", i, fp, f)
		}
	}
	// Non-variadic fp never VariadicMatches.
	if VariadicMatch(FuncOf(IntType, nil, false), FuncOf(IntType, nil, false)) {
		t.Error("non-variadic fp should not use variadic matching")
	}
}

func TestCallMatch(t *testing.T) {
	fp := FuncOf(IntType, []*Type{PointerTo(CharType)}, false)
	fnGood := FuncOf(IntType, []*Type{PointerTo(CharType)}, false)
	fnBad := FuncOf(IntType, []*Type{PointerTo(ULongType)}, false)
	if !CallMatch(fp, fnGood) {
		t.Error("exact match should succeed")
	}
	if CallMatch(fp, fnBad) {
		t.Error("strcmp-vs-ulong-comparator case (paper §6 gcc splay tree) must NOT match")
	}
	vfp := FuncOf(IntType, []*Type{PointerTo(CharType)}, true)
	if !CallMatch(vfp, fnGood) {
		t.Error("variadic pointer should prefix-match")
	}
}

func TestHasFuncPointer(t *testing.T) {
	fp := PointerTo(FuncOf(VoidType, nil, false))
	s := &Type{Kind: Struct, Fields: []Field{{Name: "cb", Type: fp}}}
	u := &Type{Kind: Union, Fields: []Field{{Name: "f", Type: fp}, {Name: "i", Type: IntType}}}
	rec := &Type{Kind: Struct, Name: "r"}
	rec.Fields = []Field{{Name: "next", Type: PointerTo(rec)}}

	cases := []struct {
		t    *Type
		want bool
	}{
		{fp, true},
		{s, true},
		{u, true},
		{PointerTo(s), false}, // pointer to struct-with-fp is not itself an fp container
		{ArrayOf(fp, 3), true},
		{IntType, false},
		{rec, false},
		{PointerTo(IntType), false},
	}
	for i, c := range cases {
		if got := c.t.HasFuncPointer(); got != c.want {
			t.Errorf("case %d: HasFuncPointer(%s) = %v, want %v", i, c.t, got, c.want)
		}
	}
}

func TestSizeAlign(t *testing.T) {
	cases := []struct {
		t          *Type
		size, algn int
	}{
		{CharType, 1, 1},
		{ShortType, 2, 2},
		{IntType, 4, 4},
		{LongType, 8, 8},
		{DoubleType, 8, 8},
		{PointerTo(IntType), 8, 8},
		{ArrayOf(IntType, 10), 40, 4},
		{&Type{Kind: Struct, Fields: []Field{{Name: "c", Type: CharType}, {Name: "i", Type: IntType}}}, 8, 4},
		{&Type{Kind: Struct, Fields: []Field{{Name: "c", Type: CharType}, {Name: "l", Type: LongType}, {Name: "c2", Type: CharType}}}, 24, 8},
		{&Type{Kind: Union, Fields: []Field{{Name: "c", Type: CharType}, {Name: "l", Type: LongType}}}, 8, 8},
	}
	for i, c := range cases {
		if got := c.t.Size(); got != c.size {
			t.Errorf("case %d: Size(%s) = %d, want %d", i, c.t, got, c.size)
		}
		if got := c.t.Align(); got != c.algn {
			t.Errorf("case %d: Align(%s) = %d, want %d", i, c.t, got, c.algn)
		}
	}
}

func TestLayoutOffsets(t *testing.T) {
	s := &Type{Kind: Struct, Fields: []Field{
		{Name: "c", Type: CharType},
		{Name: "i", Type: IntType},
		{Name: "l", Type: LongType},
		{Name: "c2", Type: CharType},
	}}
	s.Layout()
	want := []int{0, 4, 8, 16}
	for i, w := range want {
		if s.Fields[i].Offset != w {
			t.Errorf("field %d offset = %d, want %d", i, s.Fields[i].Offset, w)
		}
	}
	u := &Type{Kind: Union, Fields: []Field{{Name: "a", Type: LongType}, {Name: "b", Type: CharType}}}
	u.Layout()
	for i := range u.Fields {
		if u.Fields[i].Offset != 0 {
			t.Errorf("union field %d offset = %d, want 0", i, u.Fields[i].Offset)
		}
	}
}

func TestRecursiveStructSizeTerminates(t *testing.T) {
	s := &Type{Kind: Struct, Name: "node"}
	s.Fields = []Field{{Name: "v", Type: LongType}, {Name: "next", Type: PointerTo(s)}}
	if got := s.Size(); got != 16 {
		t.Errorf("recursive node size = %d, want 16", got)
	}
	s.Layout()
	if s.Fields[1].Offset != 8 {
		t.Errorf("next offset = %d, want 8", s.Fields[1].Offset)
	}
}

func TestIsPrefixStruct(t *testing.T) {
	base := &Type{Kind: Struct, Fields: []Field{{Name: "tag", Type: IntType}}}
	derived := &Type{Kind: Struct, Fields: []Field{
		{Name: "tag", Type: IntType},
		{Name: "payload", Type: LongType},
	}}
	if !IsPrefixStruct(derived, base) {
		t.Error("base should be a physical prefix of derived")
	}
	if IsPrefixStruct(base, derived) {
		t.Error("derived is not a prefix of base")
	}
	renamed := &Type{Kind: Struct, Fields: []Field{{Name: "kind", Type: IntType}}}
	if IsPrefixStruct(derived, renamed) {
		t.Error("field-name mismatch must not be a prefix")
	}
}

func TestStringRendering(t *testing.T) {
	fp := PointerTo(FuncOf(IntType, []*Type{IntType}, true))
	if got := fp.String(); got != "int(int, ...)*" {
		t.Errorf("String() = %q", got)
	}
	rec := &Type{Kind: Struct, Name: "n"}
	rec.Fields = []Field{{Name: "next", Type: PointerTo(rec)}}
	// Must terminate and mention the tag.
	s := rec.String()
	if len(s) == 0 || len(s) > 200 {
		t.Errorf("recursive String() suspicious: %q", s)
	}
}

func TestSignatureAgreesWithEqual(t *testing.T) {
	mkList := func() *Type {
		s := &Type{Kind: Struct, Name: "l"}
		s.Fields = []Field{{Name: "v", Type: IntType}, {Name: "next", Type: PointerTo(s)}}
		return s
	}
	pairs := []struct {
		a, b *Type
	}{
		{FuncOf(IntType, []*Type{IntType}, false), FuncOf(IntType, []*Type{IntType}, false)},
		{mkList(), mkList()},
		{PointerTo(mkList()), PointerTo(mkList())},
	}
	for i, p := range pairs {
		if !Equal(p.a, p.b) {
			t.Fatalf("pair %d should be Equal", i)
		}
		if Signature(p.a) != Signature(p.b) {
			t.Errorf("pair %d: equal types have different signatures:\n%s\n%s",
				i, Signature(p.a), Signature(p.b))
		}
	}
	unequal := []struct {
		a, b *Type
	}{
		{IntType, LongType},
		{FuncOf(IntType, nil, false), FuncOf(IntType, nil, true)},
		{PointerTo(IntType), PointerTo(CharType)},
	}
	for i, p := range unequal {
		if Signature(p.a) == Signature(p.b) {
			t.Errorf("unequal pair %d has identical signatures", i)
		}
	}
}

// genType builds a deterministic pseudo-random type from a seed; used
// by property tests below.
func genType(seed uint64, depth int) *Type {
	basics := []*Type{VoidType, CharType, ShortType, IntType, LongType,
		UCharType, UIntType, ULongType, DoubleType}
	next := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 33
	}
	var build func(d int) *Type
	build = func(d int) *Type {
		if d <= 0 {
			return basics[1+next()%uint64(len(basics)-1)] // never bare void at leaf
		}
		switch next() % 5 {
		case 0:
			return basics[1+next()%uint64(len(basics)-1)]
		case 1:
			return PointerTo(build(d - 1))
		case 2:
			return ArrayOf(build(d-1), int(1+next()%8))
		case 3:
			n := int(1 + next()%3)
			fs := make([]Field, n)
			for i := range fs {
				fs[i] = Field{Name: string(rune('a' + i)), Type: build(d - 1)}
			}
			return &Type{Kind: Struct, Fields: fs}
		default:
			n := int(next() % 3)
			ps := make([]*Type, n)
			for i := range ps {
				ps[i] = build(d - 1)
			}
			return FuncOf(build(d-1), ps, next()%4 == 0)
		}
	}
	return build(depth)
}

func TestPropEqualReflexiveSymmetric(t *testing.T) {
	f := func(seed uint64) bool {
		a := genType(seed, 4)
		b := genType(seed, 4) // same seed → isomorphic copy
		c := genType(seed+1, 4)
		if !Equal(a, a) || !Equal(a, b) || !Equal(b, a) {
			return false
		}
		// Symmetry on arbitrary pairs.
		return Equal(a, c) == Equal(c, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropSignatureCharacterizesEqual(t *testing.T) {
	f := func(s1, s2 uint64) bool {
		a := genType(s1, 4)
		b := genType(s2, 4)
		eq := Equal(a, b)
		sig := Signature(a) == Signature(b)
		return eq == sig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropSizeNonNegativeAndAlignDivides(t *testing.T) {
	f := func(seed uint64) bool {
		tt := genType(seed, 4)
		sz, al := tt.Size(), tt.Align()
		if sz < 0 || al < 1 {
			return false
		}
		if tt.Kind == Struct && al > 0 && sz%al != 0 {
			return false // struct size must be a multiple of its alignment
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
