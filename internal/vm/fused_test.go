package vm

import (
	"testing"

	"mcfi/internal/rewrite"
	"mcfi/internal/tables"
	"mcfi/internal/visa"
)

// checkBlob assembles one instrumented tail-jump check (movi r11,
// target; check; jmpr r11 is left to the caller's prelude) and patches
// branch's Bary index into the TLOADI immediate.
func checkBlob(t *testing.T, tb *tables.Tables, branch int) ([]byte, rewrite.CheckSite) {
	t.Helper()
	a := visa.NewAsm()
	site := rewrite.EmitTailJump(a, true)
	if err := a.Finish(); err != nil {
		t.Fatal(err)
	}
	imm := uint32(tb.BaryBase() + 4*branch)
	for i := 0; i < 4; i++ {
		a.Code[site.TLoadIOffset+2+i] = byte(imm >> (8 * i))
	}
	return a.Code, site
}

// fusedGrid builds the shared table configuration of
// TestGuestCheckAgreesWithHostCheck.
func fusedGrid(t *testing.T) *tables.Tables {
	t.Helper()
	const codeLimit = 1 << 16
	tb := tables.New(codeLimit, 64)
	tb.Update(func(addr int) int {
		if addr >= 0x1000 && addr < 0x1000+64*64 && (addr-0x1000)%64 == 0 {
			return (addr-0x1000)/64%8 + 1
		}
		return -1
	}, func(i int) int {
		if i < 8 {
			return i + 1
		}
		return -1
	}, tables.UpdateOpts{})
	return tb
}

// runOutcome captures everything architecturally observable about one
// bounded run.
type runOutcome struct {
	faultKind FaultKind
	faultPC   int64
	faulted   bool
	instret   int64
	pc        int64
	r9, r10   int64
	r11       int64
	fa, fb    int64
}

// TestFusedCheckMatchesInterp runs the same check over a grid of
// (branch, target) pairs under the interp and fused engines and
// demands identical architectural outcomes: fault kind and PC, retired
// count, continuation PC, the MCFI scratch registers, and the flags.
// Every target lands on an HLT, so passing checks terminate
// deterministically (at the landing pad's PC) rather than by budget.
func TestFusedCheckMatchesInterp(t *testing.T) {
	const codeLimit = 1 << 16
	tb := fusedGrid(t)

	// The blob lives at an address outside the grid's target set, so a
	// passing jump always leaves it and lands on the HLT carpet.
	const blobAddr = 0x8000

	run := func(e Engine, branch, target int) (runOutcome, *Thread) {
		code, site := checkBlob(t, tb, branch)
		p := NewProcess()
		p.Tables = tb
		p.SetEngine(e)
		// Carpet the code region with HLTs so any passing jump faults
		// at its landing address.
		for i := visa.CodeBase; i < visa.CodeBase+codeLimit; i++ {
			p.Mem[i] = byte(visa.HLT)
		}
		copy(p.Mem[blobAddr:], code)
		p.Protect(visa.CodeBase, codeLimit, visa.ProtRead|visa.ProtExec)
		p.RegisterCheckSites([]int64{int64(blobAddr + site.CheckStart)})

		th := p.NewThread(blobAddr, visa.SandboxSize-64)
		th.Reg[visa.R11] = int64(target)
		err := th.Run(4096)
		out := runOutcome{
			instret: th.Instret, pc: th.PC,
			r9: th.Reg[visa.R9], r10: th.Reg[visa.R10], r11: th.Reg[visa.R11],
			fa: th.fa, fb: th.fb,
		}
		if f, ok := err.(*Fault); ok {
			out.faulted, out.faultKind, out.faultPC = true, f.Kind, f.PC
		}
		return out, th
	}

	targets := []int{
		0x1000, 0x1040, 0x1080, 0x10C0,
		0x1000 + 64*8,
		0x1002,
		0x0FF0,
		0x9000,
		0x1000 + 64*63,
	}
	for branch := 0; branch < 8; branch++ {
		for _, target := range targets {
			want, _ := run(EngineInterp, branch, target)
			got, fth := run(EngineFused, branch, target)
			if want != got {
				t.Errorf("branch %d target %#x:\n  interp: %+v\n  fused:  %+v",
					branch, target, want, got)
			}
			if fth.FusedExecs != 1 {
				t.Errorf("branch %d target %#x: FusedExecs = %d, want 1 (fusion did not engage)",
					branch, target, fth.FusedExecs)
			}
		}
	}
}

// spinLoop assembles "L: movi r11, loopAddr; check; jmpr r11" — a
// self-targeting checked jump — at loopAddr, with branch 0's Bary
// index patched in. Returns the code and the absolute check start.
func spinLoop(t *testing.T, tb *tables.Tables, loopAddr int64) ([]byte, int64) {
	t.Helper()
	a := visa.NewAsm()
	a.Emit(visa.Instr{Op: visa.MOVI, R1: visa.R11, Imm: loopAddr})
	site := rewrite.EmitTailJump(a, true)
	if err := a.Finish(); err != nil {
		t.Fatal(err)
	}
	imm := uint32(tb.BaryBase())
	for i := 0; i < 4; i++ {
		a.Code[site.TLoadIOffset+2+i] = byte(imm >> (8 * i))
	}
	return a.Code, loopAddr + int64(site.CheckStart)
}

// TestFusedVerdictCacheHitsAndInstret pins the verdict cache: a
// spinning self-checked jump must serve every iteration after the
// first from the cache, while the retired count stays bit-identical to
// the interp engine over the same number of loop iterations.
func TestFusedVerdictCacheHitsAndInstret(t *testing.T) {
	mk := func() *tables.Tables {
		tb := tables.New(1<<14, 8)
		tb.Update(func(addr int) int {
			if addr == 0x1000 {
				return 1
			}
			return -1
		}, func(i int) int {
			if i == 0 {
				return 1
			}
			return -1
		}, tables.UpdateOpts{})
		return tb
	}

	// One loop iteration retires movi + and32 + (tloadi tload cmp je) +
	// jmpr = 7 instructions; budget a whole number of iterations so
	// both engines stop at the same architectural point.
	const iters = 1000
	const budget = 7 * iters

	run := func(e Engine) (*Thread, error) {
		tb := mk()
		code, checkStart := spinLoop(t, tb, 0x1000)
		p := NewProcess()
		p.Tables = tb
		p.SetEngine(e)
		copy(p.Mem[0x1000:], code)
		p.Protect(0x1000, int64(len(code)), visa.ProtRead|visa.ProtExec)
		p.RegisterCheckSites([]int64{checkStart})
		th := p.NewThread(0x1000, visa.SandboxSize-64)
		err := th.Run(budget)
		return th, err
	}

	ith, ierr := run(EngineInterp)
	fth, ferr := run(EngineFused)
	if _, ok := ierr.(*Fault); ok {
		t.Fatalf("interp spin faulted: %v", ierr)
	}
	if _, ok := ferr.(*Fault); ok {
		t.Fatalf("fused spin faulted: %v", ferr)
	}
	if ith.Instret != fth.Instret {
		t.Errorf("instret diverges: interp %d, fused %d", ith.Instret, fth.Instret)
	}
	if fth.FusedExecs != iters {
		t.Errorf("FusedExecs = %d, want %d", fth.FusedExecs, iters)
	}
	if fth.FusedVerdictHits != iters-1 {
		t.Errorf("FusedVerdictHits = %d, want %d (every pass after the first)",
			fth.FusedVerdictHits, iters-1)
	}
	// The process-wide counters (the serving /metrics source) must
	// agree with the thread-local ones once Run has flushed.
	st := fth.P.CheckStatsSnapshot()
	if st.Execs != fth.FusedExecs || st.VerdictHits != fth.FusedVerdictHits {
		t.Errorf("process counters %+v diverge from thread (execs %d, hits %d)",
			st, fth.FusedExecs, fth.FusedVerdictHits)
	}
	if st.VerdictMisses != 1 {
		t.Errorf("VerdictMisses = %d, want 1 (only the first pass)", st.VerdictMisses)
	}
}

// TestFusedVerdictDiesOnUpdate is the stale-verdict check: a site
// passes and caches its verdict, then an update transaction moves the
// branch into a different equivalence class. The next execution MUST
// re-load the tables and halt; a verdict surviving the version bump
// would let an old-CFG edge through the new CFG.
func TestFusedVerdictDiesOnUpdate(t *testing.T) {
	tb := tables.New(1<<14, 8)
	classOf := func(branchClass int) (func(int) int, func(int) int) {
		return func(addr int) int {
				if addr == 0x1000 {
					return 1
				}
				return -1
			}, func(i int) int {
				if i == 0 {
					return branchClass
				}
				return -1
			}
	}
	taryF, baryF := classOf(1)
	tb.Update(taryF, baryF, tables.UpdateOpts{})

	code, checkStart := spinLoop(t, tb, 0x1000)
	p := NewProcess()
	p.Tables = tb
	p.SetEngine(EngineFused)
	// Wire the invalidation hook exactly as mrt.New does.
	tb.OnUpdate(p.BumpCheckEpoch)
	copy(p.Mem[0x1000:], code)
	p.Protect(0x1000, int64(len(code)), visa.ProtRead|visa.ProtExec)
	p.RegisterCheckSites([]int64{checkStart})

	th := p.NewThread(0x1000, visa.SandboxSize-64)
	if err := th.Run(700); err != nil {
		if _, ok := err.(*Fault); ok {
			t.Fatalf("priming spin faulted: %v", err)
		}
	}
	if th.FusedVerdictHits == 0 {
		t.Fatalf("no verdict hits while priming; cache not engaged")
	}

	// The branch moves to class 2; its only target stays class 1. Both
	// now carry the same (new) version, so the check must halt.
	taryF2, baryF2 := classOf(2)
	tb.Update(taryF2, baryF2, tables.UpdateOpts{})

	// Run's budget is an absolute Instret bound; extend it past the
	// priming run's count.
	err := th.Run(th.Instret + 700)
	f, ok := err.(*Fault)
	if !ok || f.Kind != FaultCFI {
		t.Fatalf("stale verdict survived the update: err=%v (want CFI halt)", err)
	}
	if f.PC != checkStart+rewrite.CheckHaltOffset {
		t.Errorf("halt PC = %#x, want %#x", f.PC, checkStart+rewrite.CheckHaltOffset)
	}
}

// TestFusedRetriesThroughUpdate mirrors
// TestGuestCheckRetriesThroughUpdate on the fused engine: the spinning
// checked jump keeps passing while a host goroutine re-versions the
// tables continuously. Run under -race this also exercises the
// verdict-cache/update-transaction interleavings.
func TestFusedRetriesThroughUpdate(t *testing.T) {
	tb := tables.New(1<<14, 8)
	tb.Update(func(addr int) int {
		if addr == 0x1000 {
			return 1
		}
		return -1
	}, func(i int) int {
		if i == 0 {
			return 1
		}
		return -1
	}, tables.UpdateOpts{})

	code, checkStart := spinLoop(t, tb, 0x1000)
	p := NewProcess()
	p.Tables = tb
	p.SetEngine(EngineFused)
	tb.OnUpdate(p.BumpCheckEpoch)
	copy(p.Mem[0x1000:], code)
	p.Protect(0x1000, int64(len(code)), visa.ProtRead|visa.ProtExec)
	p.RegisterCheckSites([]int64{checkStart})
	th := p.NewThread(0x1000, visa.SandboxSize-64)

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				tb.Reversion(tables.UpdateOpts{})
			}
		}
	}()
	err := th.Run(300_000)
	close(stop)
	<-done
	if f, ok := err.(*Fault); ok {
		t.Fatalf("fused checked jump faulted under concurrent updates: %v", f)
	}
	if th.FusedExecs == 0 {
		t.Error("fusion did not engage")
	}
}

// TestFusedFallbackOnNonCanonicalSite registers an address that does
// not hold the canonical check sequence; predecode must re-verify the
// bytes, refuse to fuse, and execute identically to the interp engine.
func TestFusedFallbackOnNonCanonicalSite(t *testing.T) {
	a := visa.NewAsm()
	a.Emit(visa.Instr{Op: visa.MOVI, R1: visa.R1, Imm: 7})
	a.Emit(visa.Instr{Op: visa.MOVI, R1: visa.R2, Imm: 35})
	a.Emit(visa.Instr{Op: visa.ADD, R1: visa.R1, R2: visa.R2})
	a.Emit(visa.Instr{Op: visa.HLT})
	if err := a.Finish(); err != nil {
		t.Fatal(err)
	}

	run := func(e Engine) *Thread {
		tb := tables.New(1<<14, 8)
		p := NewProcess()
		p.Tables = tb
		p.SetEngine(e)
		copy(p.Mem[0x1000:], a.Code)
		p.Protect(0x1000, int64(len(a.Code)), visa.ProtRead|visa.ProtExec)
		p.RegisterCheckSites([]int64{0x1000}) // bogus: not a check
		th := p.NewThread(0x1000, visa.SandboxSize-64)
		err := th.Run(100)
		if f, ok := err.(*Fault); !ok || f.Kind != FaultCFI {
			t.Fatalf("engine %s: want the trailing hlt, got %v", e, err)
		}
		return th
	}

	ith := run(EngineInterp)
	fth := run(EngineFused)
	if ith.Instret != fth.Instret || ith.Reg[visa.R1] != fth.Reg[visa.R1] {
		t.Errorf("fallback diverges: interp (instret=%d r1=%d) fused (instret=%d r1=%d)",
			ith.Instret, ith.Reg[visa.R1], fth.Instret, fth.Reg[visa.R1])
	}
	if fth.Reg[visa.R1] != 42 {
		t.Errorf("r1 = %d, want 42", fth.Reg[visa.R1])
	}
	if fth.FusedExecs != 0 {
		t.Errorf("FusedExecs = %d, want 0 (non-canonical bytes must not fuse)", fth.FusedExecs)
	}
}
