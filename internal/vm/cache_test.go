package vm

import (
	"testing"

	"mcfi/internal/visa"
)

// runToHalt executes a fresh thread at CodeBase until the HLT fault
// and returns R0 (the probe value the code computed).
func runToHalt(t *testing.T, p *Process) int64 {
	t.Helper()
	th := p.NewThread(visa.CodeBase, visa.DataBase+1<<16)
	err := th.Run(4096)
	f, ok := err.(*Fault)
	if !ok || f.Kind != FaultCFI {
		t.Fatalf("expected HLT fault, got %v", err)
	}
	return th.Reg[visa.R0]
}

func emitProbe(imm int64) []byte {
	var code []byte
	code = visa.Encode(code, visa.Instr{Op: visa.MOVI, R1: visa.R0, Imm: imm})
	code = visa.Encode(code, visa.Instr{Op: visa.HLT})
	return code
}

// TestDecodeCacheInvalidation is the jitsim regression: code runs from
// a page, the page is made writable and rewritten (a JIT installing a
// new stage), then flipped back to executable — exactly the
// write-page-then-mprotect-to-exec cycle of examples/jitsim and the
// dlopen path. The cached engine must never execute the stale
// predecoded instructions.
func TestDecodeCacheInvalidation(t *testing.T) {
	p := NewProcess()
	p.Protect(visa.DataBase, 1<<16, visa.ProtRead|visa.ProtWrite)

	copy(p.Mem[visa.CodeBase:], emitProbe(111))
	p.Protect(visa.CodeBase, PageSize, visa.ProtRead|visa.ProtExec)
	if got := runToHalt(t, p); got != 111 {
		t.Fatalf("first run: R0 = %d, want 111", got)
	}

	// JIT cycle: write page -> mprotect to exec.
	p.Protect(visa.CodeBase, PageSize, visa.ProtRead|visa.ProtWrite)
	copy(p.Mem[visa.CodeBase:], emitProbe(222))
	p.Protect(visa.CodeBase, PageSize, visa.ProtRead|visa.ProtExec)
	if got := runToHalt(t, p); got != 222 {
		t.Fatalf("after rewrite: R0 = %d, want 222 (stale decode cache?)", got)
	}
}

// TestDecodeCacheInvalidationSpanningPage rewrites only the second of
// two pages when a cached instruction starts on the first and its
// immediate extends into the second. Invalidating the written page
// alone would leave the stale instruction cached under the first page,
// so Protect must also drop the preceding page.
func TestDecodeCacheInvalidationSpanningPage(t *testing.T) {
	p := NewProcess()
	p.Protect(visa.DataBase, 1<<16, visa.ProtRead|visa.ProtWrite)

	// Pad with NOPs so the 10-byte MOVI starts 5 bytes before the page
	// boundary: opcode+reg on page 0, the imm64 split across both.
	pageEnd := int64(visa.CodeBase) + PageSize - int64(visa.CodeBase%PageSize)
	probe := emitProbe(0x1111_2222_3333_4444)
	start := pageEnd - 5
	for a := int64(visa.CodeBase); a < start; a++ {
		p.Mem[a] = byte(visa.NOP)
	}
	copy(p.Mem[start:], probe)
	p.Protect(visa.CodeBase, 2*PageSize, visa.ProtRead|visa.ProtExec)
	if got := runToHalt(t, p); got != 0x1111_2222_3333_4444 {
		t.Fatalf("first run: R0 = %#x", got)
	}

	// Rewrite ONLY the second page: the 5 immediate bytes that landed
	// there (the HLT right after them stays intact).
	p.Protect(pageEnd, PageSize, visa.ProtRead|visa.ProtWrite)
	for i := int64(0); i < 5; i++ {
		p.Mem[pageEnd+i] = 0x55
	}
	p.Protect(pageEnd, PageSize, visa.ProtRead|visa.ProtExec)
	got := runToHalt(t, p)
	// The low 3 immediate bytes live on page 0 and are unchanged; the
	// 5 bytes on page 1 now read 0x55.
	want := int64(0x5555_5555_5533_4444)
	if got != want {
		t.Fatalf("after partial rewrite: R0 = %#x, want %#x (stale spanning instruction?)", got, want)
	}
}

// TestEnginesRetireIdenticalStreams runs the same program under both
// engines and checks the retired-instruction count and final registers
// are bit-identical (the Fig. 5/6 metric is engine-independent).
func TestEnginesRetireIdenticalStreams(t *testing.T) {
	// A loop: R1 counts down from 100, R2 accumulates.
	a := visa.NewAsm()
	a.Emit(visa.Instr{Op: visa.MOVI, R1: visa.R1, Imm: 100})
	a.Emit(visa.Instr{Op: visa.MOVI, R1: visa.R2, Imm: 0})
	a.Label("loop")
	a.Emit(visa.Instr{Op: visa.ADD, R1: visa.R2, R2: visa.R1})
	a.Emit(visa.Instr{Op: visa.ADDI, R1: visa.R1, Imm: -1})
	a.Emit(visa.Instr{Op: visa.CMPI, R1: visa.R1, Imm: 0})
	a.EmitBranch(visa.JNE, "loop")
	a.Emit(visa.Instr{Op: visa.HLT})
	if err := a.Finish(); err != nil {
		t.Fatal(err)
	}

	run := func(e Engine) (int64, int64) {
		p := NewProcess()
		p.SetEngine(e)
		copy(p.Mem[visa.CodeBase:], a.Code)
		p.Protect(visa.CodeBase, PageSize, visa.ProtRead|visa.ProtExec)
		p.Protect(visa.DataBase, 1<<16, visa.ProtRead|visa.ProtWrite)
		th := p.NewThread(visa.CodeBase, visa.DataBase+1<<16)
		err := th.Run(10_000)
		if f, ok := err.(*Fault); !ok || f.Kind != FaultCFI {
			t.Fatalf("engine %s: %v", e, err)
		}
		return th.Instret, th.Reg[visa.R2]
	}
	ci, cs := run(EngineCached)
	ii, is := run(EngineInterp)
	if ci != ii || cs != is {
		t.Fatalf("engines diverge: cached (instret=%d sum=%d) vs interp (instret=%d sum=%d)",
			ci, cs, ii, is)
	}
	if cs != 5050 {
		t.Fatalf("sum = %d, want 5050", cs)
	}
}
