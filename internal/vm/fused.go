// Check-transaction fusion: the EngineFused fetch path recognizes the
// canonical check sequence the rewriter emits before every indirect
// branch (paper Fig. 4 — and32; Try: tloadi, tload, cmp, je Ok; testb,
// je Halt; cmpw, jne Try; Halt: hlt) and predecodes the whole
// 36-byte span as ONE superinstruction that runs the transaction in
// host Go: one atomic Bary load, one atomic Tary load, the ID compare,
// and the version-mismatch retry loop. The instrumented program pays
// one dispatch instead of nine per check, while Instret is credited
// with the exact number of guest instructions the interp engine would
// have retired, so the Fig. 5/6 cost metric and the differential tests
// stay bit-identical.
//
// On top of fusion sits a per-site verdict cache keyed by an epoch
// counter: a site that passed for (epoch, target) skips the table
// loads entirely until the target changes or the epoch moves. The
// epoch is bumped by every completed update transaction (via
// tables.Tables.OnUpdate) and by every page-protection transition, so
// a cached verdict is only ever reused within one published CFG —
// the same old-CFG/new-CFG atomicity argument as the paper's §5:
// a check that reuses a verdict while an update is in flight
// linearizes before that update. The epoch is 64-bit, so unlike the
// 14-bit version field it cannot wrap around (no ABA).
package vm

import (
	"sync"
	"sync/atomic"

	"mcfi/internal/rewrite"
	"mcfi/internal/visa"
)

// The fused pseudo-opcodes occupy holes in the ISA encoding space —
// visa.Decode rejects the bytes, so they can only ever enter the
// pipeline through a predecoded cache slot installed at fill time,
// never from guest bytes.
const (
	// opFusedCheck is the fused canonical check transaction (paper
	// Fig. 4). Under the branch-folding engines (threaded, blockjit)
	// the slot may also fold the indirect
	// branch that follows the check: R1 carries the branch opcode byte
	// (0 = unfolded — no real opcode is 0-valued-and-branching), R2 the
	// count of alignment NOPs between check and branch, and the slot
	// size covers the whole folded span.
	opFusedCheck = visa.Op(0xF8)
	// opFusedCheckPLT is the fused PLT-stub check: the GOT-slot-
	// reloading retry variant of §5.2 (the stub reloads the target from
	// the GOT on every retry, so a retried transaction cannot be split
	// from its reload). Same R1/R2 branch-folding convention.
	opFusedCheckPLT = visa.Op(0xF9)
	// opTraceMaskStore is the trace superinstruction for the rewriter's
	// sandbox-mask + store pair (see threaded.go).
	opTraceMaskStore = visa.Op(0xFA)
)

// maxFusedRetries bounds the host-side retry loop of one fused step.
// The guest loop is unbounded (a check spins until the versions agree,
// Fig. 4), but an unbounded host loop would be invisible to Run's
// exit/budget polling; after this many version mismatches the fused
// step retires its rounds and hands the PC back to the per-instruction
// engine at Try, which preserves the spin semantics interruptibly.
const maxFusedRetries = 64

// fusedVerdict is one cached check outcome: at epoch, the branch
// whose site this is was allowed to reach target (both table loads
// returned id). Reusing it is sound while the epoch is unchanged — no
// update transaction has completed since the loads, so they would
// return the same IDs.
type fusedVerdict struct {
	epoch      int64
	target, id uint32
}

// fusedSite is the runtime state of one registered check transaction.
type fusedSite struct {
	// start is the guest address of the span's first instruction (the
	// and32 mask, or the PLT stub's movi).
	start int64
	// baryOff is the TLOADI immediate — the Bary byte offset patched
	// into the code by the loader — read from memory at predecode time
	// (-1 until the first fill).
	baryOff atomic.Int64
	// gotAddr is the GOT slot address a PLT-variant site reloads its
	// target from (the stub's MOVI immediate), -1 for canonical sites.
	gotAddr atomic.Int64
	// verdict is the last successful check outcome, nil if none.
	verdict atomic.Pointer[fusedVerdict]
}

// fusedState is the Process's fusion state. Sites only accumulate
// (modules are never unloaded); the slice is copy-on-write under mu so
// stepFused can index it with one atomic load while Dlopen registers
// new sites.
type fusedState struct {
	mu    sync.Mutex
	sites atomic.Pointer[[]*fusedSite]
	index map[int64]int // start address → slice index; guarded by mu

	// epoch invalidates every cached verdict when bumped: wired to
	// tables update transactions and to page-protection transitions.
	epoch atomic.Int64
}

// RegisterCheckSites tells the process where canonical check
// transactions start (absolute guest addresses of their and32 masks).
// The fused engine may predecode each into one superinstruction; the
// other engines ignore the registration. Safe to call while threads
// run (the dlopen path registers freshly loaded modules). Addresses
// already registered are skipped; addresses that do not actually hold
// the canonical byte sequence are harmless — predecode re-verifies
// with rewrite.MatchCheck and falls back to plain decoding.
func (p *Process) RegisterCheckSites(starts []int64) {
	f := &p.fused
	f.mu.Lock()
	defer f.mu.Unlock()
	var sites []*fusedSite
	if cur := f.sites.Load(); cur != nil {
		sites = append(sites, *cur...)
	}
	if f.index == nil {
		f.index = make(map[int64]int)
	}
	for _, s := range starts {
		if _, dup := f.index[s]; dup || s < 0 {
			continue
		}
		fs := &fusedSite{start: s}
		fs.baryOff.Store(-1)
		fs.gotAddr.Store(-1)
		f.index[s] = len(sites)
		sites = append(sites, fs)
	}
	f.sites.Store(&sites)
}

// BumpCheckEpoch invalidates every cached check verdict and marks
// every compiled block stale (the discard floor advances to the new
// epoch). The runtime subscribes it to full-range table update
// transactions so each completed update kills verdicts and blocks
// bound to the previous CFG.
func (p *Process) BumpCheckEpoch() {
	e := p.fused.epoch.Add(1)
	p.jit.floor.Store(e)
}

// BumpCheckEpochExtent is the delta-update variant: it invalidates
// every cached check verdict (verdicts are cheap to recompute and may
// depend on any table word, so the epoch still bumps), but instead of
// condemning every compiled block it drops only the block-compiler
// pages overlapping [lo, hi) — the discard floor stays put, so blocks
// outside the changed extent survive a dlopen. Sound because a block
// embeds only code bytes and pre-bound handlers, never a check
// verdict: fused check steps re-validate against the tables (and the
// new epoch) at execution time, so a surviving block cannot replay a
// pre-update verdict.
func (p *Process) BumpCheckEpochExtent(lo, hi int64) {
	p.fused.epoch.Add(1)
	first := lo / PageSize
	if first > 0 {
		first-- // a block one page back may span into the extent
	}
	last := (hi + PageSize - 1) / PageSize
	for pg := first; pg >= 0 && pg < last && pg < int64(len(p.jit.pages)); pg++ {
		p.jit.pages[pg].Store(nil)
	}
}

// CheckEpoch returns the current verdict-cache epoch.
func (p *Process) CheckEpoch() int64 { return p.fused.epoch.Load() }

// fusedSiteAt returns the registered site starting at pc, if any.
func (p *Process) fusedSiteAt(pc int64) (int, *fusedSite) {
	f := &p.fused
	f.mu.Lock()
	idx, ok := f.index[pc]
	f.mu.Unlock()
	if !ok {
		return -1, nil
	}
	return idx, (*f.sites.Load())[idx]
}

// tryFuse attempts to predecode the bytes at pc as one fused check
// transaction. It requires a fusing engine (fused or threaded), live
// tables, a registered site, an executable span, and an exact byte
// match against one of the two check templates — the canonical
// sequence or the PLT stub's GOT-reloading variant (per-site immediate
// wildcards excepted). Anything else falls back to ordinary decoding,
// so a stale or wrong registration can never change semantics.
func (p *Process) tryFuse(pc int64) (visa.Instr, int, bool) {
	if !p.engine.fusesChecks() || p.Tables == nil {
		return visa.Instr{}, 0, false
	}
	idx, site := p.fusedSiteAt(pc)
	if site == nil {
		return visa.Instr{}, 0, false
	}
	if ins, n, ok := p.tryFuseCanonical(pc, idx, site); ok {
		return ins, n, true
	}
	return p.tryFusePLT(pc, idx, site)
}

// tryFuseCanonical matches the canonical check template at pc.
func (p *Process) tryFuseCanonical(pc int64, idx int, site *fusedSite) (visa.Instr, int, bool) {
	end := pc + rewrite.CheckSeqSize
	if end > int64(len(p.Mem)) || p.Prot(end-1)&visa.ProtExec == 0 {
		return visa.Instr{}, 0, false
	}
	if !rewrite.MatchCheck(p.Mem, int(pc)) {
		return visa.Instr{}, 0, false
	}
	m := p.Mem[pc+rewrite.CheckImmOffset:]
	imm := uint32(m[0]) | uint32(m[1])<<8 | uint32(m[2])<<16 | uint32(m[3])<<24
	site.baryOff.Store(int64(imm))
	ins := visa.Instr{Op: opFusedCheck, Imm: int64(idx)}
	size := int(rewrite.CheckSeqSize)
	if p.engine.foldsBranches() {
		if bop, nops, bsize, ok := p.scanFoldableBranch(end); ok {
			ins.R1, ins.R2 = byte(bop), byte(nops)
			size += nops + bsize
		}
	}
	return ins, size, true
}

// tryFusePLT matches the PLT-stub check template at pc (§5.2: the
// retry loop reloads the target address from the GOT slot, so the
// MOVI's GOT address and the TLOADI immediate are the wildcards).
func (p *Process) tryFusePLT(pc int64, idx int, site *fusedSite) (visa.Instr, int, bool) {
	end := pc + rewrite.PLTCheckSeqSize
	if end > int64(len(p.Mem)) || p.Prot(end-1)&visa.ProtExec == 0 {
		return visa.Instr{}, 0, false
	}
	if !rewrite.MatchPLTCheck(p.Mem, int(pc)) {
		return visa.Instr{}, 0, false
	}
	m := p.Mem[pc+rewrite.PLTCheckImmOffset:]
	imm := uint32(m[0]) | uint32(m[1])<<8 | uint32(m[2])<<16 | uint32(m[3])<<24
	site.baryOff.Store(int64(imm))
	g := p.Mem[pc+rewrite.PLTCheckGotOffset:]
	var got int64
	for i := 0; i < 8; i++ {
		got |= int64(g[i]) << (8 * i)
	}
	site.gotAddr.Store(got)
	ins := visa.Instr{Op: opFusedCheckPLT, Imm: int64(idx)}
	size := int(rewrite.PLTCheckSeqSize)
	if p.engine.foldsBranches() {
		if bop, nops, bsize, ok := p.scanFoldableBranch(end); ok {
			ins.R1, ins.R2 = byte(bop), byte(nops)
			size += nops + bsize
		}
	}
	return ins, size, true
}

// scanFoldableBranch inspects the bytes after a matched check span for
// the indirect branch the rewriter emits there — up to three alignment
// NOPs, then exactly JMPR R11, CALLR R11, or the longjmp transfer
// JRESTORE R3:R4:R11 (returns are a POP into R11 followed by JMPR, so
// they fold as JMPR). Anything else — including a span that leaves the
// executable region — refuses the fold; the check superinstruction
// then ends at the hlt and the branch executes as its own step.
func (p *Process) scanFoldableBranch(start int64) (visa.Op, int, int, bool) {
	pc := start
	nops := 0
	for ; nops <= 3; nops++ {
		ins, n, err := visa.Decode(p.Mem, int(pc))
		if err != nil {
			return 0, 0, 0, false
		}
		if ins.Op == visa.NOP {
			pc += int64(n)
			continue
		}
		switch {
		case ins.Op == visa.JMPR && ins.R1 == visa.R11,
			ins.Op == visa.CALLR && ins.R1 == visa.R11,
			ins.Op == visa.JRESTORE && ins.R1 == visa.R3 && ins.R2 == visa.R4 && ins.R3 == visa.R11:
			end := pc + int64(n)
			if end > int64(len(p.Mem)) || p.Prot(end-1)&visa.ProtExec == 0 {
				return 0, 0, 0, false
			}
			return ins.Op, nops, n, true
		}
		return 0, 0, 0, false
	}
	return 0, 0, 0, false
}

// stepFused executes one fused check transaction. Step has already
// retired the and32 (Instret++); this routine retires the rest of the
// guest instructions the interp engine would have executed, reproducing
// its architectural effects exactly: registers R9–R11, the comparison
// flags, the continuation PC, and on a violation the fault PC of the
// hlt. pc is the span start; ins is the cache slot (its R1/R2 carry a
// folded branch, if any).
func (t *Thread) stepFused(pc int64, ins *visa.Instr) error {
	p := t.P
	idx := int(ins.Imm)
	sites := p.fused.sites.Load()
	if sites == nil || idx < 0 || idx >= len(*sites) {
		return t.fault(FaultDecode, "fused check slot with no registered site")
	}
	site := (*sites)[idx]
	r := &t.Reg

	// and32 r11 — the masked target is what both the guest tload and
	// the verdict key see.
	r[visa.R11] = int64(uint32(r[visa.R11]))
	target := uint32(r[visa.R11])
	t.FusedExecs++

	// The epoch MUST be read before the table loads: a verdict records
	// "the loads said yes at this epoch", so the epoch bound to it may
	// be older than the loads (the verdict dies early — harmless) but
	// never newer (an old-CFG pass would survive a version bump).
	epoch := p.fused.epoch.Load()

	if v := site.verdict.Load(); v != nil && v.epoch == epoch && v.target == target {
		// Cached verdict: architecturally identical to a zero-retry
		// pass — tloadi, tload, cmp, je Ok — without the table loads.
		t.FusedVerdictHits++
		idv := int64(v.id)
		r[visa.R10], r[visa.R9] = idv, idv
		t.fa, t.fb, t.fFloat = idv, idv, false
		t.Instret += 4
		t.PC = pc + rewrite.CheckSeqSize
		return t.foldedBranch(ins)
	}

	baryOff := site.baryOff.Load()
	for retries := 0; ; retries++ {
		// Try: tloadi r10; tload r9, r11.
		bid := p.Tables.Load32(baryOff)
		tid := p.Tables.Load32(int64(target))
		r[visa.R10], r[visa.R9] = int64(bid), int64(tid)

		if bid == tid {
			// cmp; je Ok (taken): 4 instructions this round.
			t.fa, t.fb, t.fFloat = int64(bid), int64(tid), false
			t.Instret += int64(8*retries) + 4
			t.PC = pc + rewrite.CheckSeqSize
			site.verdict.Store(&fusedVerdict{epoch: epoch, target: target, id: bid})
			return t.foldedBranch(ins)
		}
		if tid&1 == 0 {
			// testb finds the validity bit clear; je Halt (taken); hlt:
			// 7 instructions this round.
			t.fa, t.fb, t.fFloat = 0, 0, false
			t.Instret += int64(8*retries) + 7
			t.PC = pc + rewrite.CheckHaltOffset
			return t.cfiFault(CheckIndirect, int64(target), "hlt")
		}
		t.fa, t.fb, t.fFloat = int64(bid&0xFFFF), int64(tid&0xFFFF), false
		if bid&0xFFFF == tid&0xFFFF {
			// Same version, different ECN — a true violation: cmpw;
			// jne Try falls through; hlt: 9 instructions this round.
			t.Instret += int64(8*retries) + 9
			t.PC = pc + rewrite.CheckHaltOffset
			return t.cfiFault(CheckIndirect, int64(target), "hlt")
		}
		// Version mismatch: jne Try (taken), 8 instructions, go again.
		if retries+1 >= maxFusedRetries {
			// An update storm (or an unpublished Bary ID) keeps the
			// versions apart. Retire the rounds and resume per-
			// instruction at Try so the spin stays interruptible by
			// Run's exit and budget polling. The folded branch (if any)
			// is NOT executed — per-instruction stepping will reach its
			// plain bytes after the re-run check passes.
			t.Instret += int64(8 * (retries + 1))
			t.PC = pc + rewrite.CheckTryOffset
			return nil
		}
	}
}

// foldedBranch completes a passed check whose slot folded the
// following indirect branch (threaded engine). On entry t.PC is the
// check span's end — where the interp engine would sit after je Ok —
// and R11 holds the masked, validated target. The alignment NOPs and
// the branch itself retire exactly as the interp engine would retire
// them; a verdict-cache hit reaches here too, so the memoized target
// transfers without re-decoding the branch. Slots without a fold
// (ins.R1 == 0) return immediately.
func (t *Thread) foldedBranch(ins *visa.Instr) error {
	if ins.R1 == 0 {
		return nil
	}
	r := &t.Reg
	t.Instret += int64(ins.R2) // alignment NOPs between check and branch
	branchPC := t.PC + int64(ins.R2)
	op := visa.Op(ins.R1)
	t.Instret++ // the branch retires even if its push faults
	switch op {
	case visa.JMPR:
		t.PC = r[visa.R11]
	case visa.CALLR:
		// The return address is the byte after the callr; a stack fault
		// must report the callr's own PC.
		t.PC = branchPC
		if err := t.push(branchPC + int64(op.Size())); err != nil {
			return err
		}
		t.PC = r[visa.R11]
	case visa.JRESTORE:
		t.Reg[visa.SP] = r[visa.R3]
		t.Reg[visa.FP] = r[visa.R4]
		t.PC = r[visa.R11]
	default:
		return t.fault(FaultDecode, "fused slot folds unknown branch %s", op.Name())
	}
	return nil
}

// stepFusedPLT executes one fused PLT-stub check transaction — the
// GOT-slot-reloading variant (§5.2): every retry round re-executes the
// stub's movi + ld64 so a retried transaction observes the freshest
// GOT value, exactly as the guest loop would. Step has already retired
// the leading movi; pc is the stub's try label (= span start). Instret
// per round is movi, ld64, and32, then the canonical tail: pass = 7,
// invalid-bit halt = 10, same-version halt = 12, full retry round = 11.
func (t *Thread) stepFusedPLT(pc int64, ins *visa.Instr) error {
	p := t.P
	idx := int(ins.Imm)
	sites := p.fused.sites.Load()
	if sites == nil || idx < 0 || idx >= len(*sites) {
		return t.fault(FaultDecode, "fused PLT slot with no registered site")
	}
	site := (*sites)[idx]
	r := &t.Reg
	gotAddr := site.gotAddr.Load()
	baryOff := site.baryOff.Load()
	t.FusedExecs++
	t.FusedPLTExecs++

	// Epoch before any load (same ordering argument as stepFused). The
	// GOT slot is rewritten only inside update transactions, whose
	// completion bumps the epoch, so a verdict hit may also skip the
	// GOT reload: a check reusing the verdict linearizes before the
	// in-flight update, GOT rewrite included.
	epoch := p.fused.epoch.Load()

	if v := site.verdict.Load(); v != nil && v.epoch == epoch {
		// Cached verdict: replays a zero-retry pass — movi (already
		// retired), ld64, and32, tloadi, tload, cmp, je Ok.
		t.FusedVerdictHits++
		idv := int64(v.id)
		r[visa.R11] = int64(v.target)
		r[visa.R10], r[visa.R9] = idv, idv
		t.fa, t.fb, t.fFloat = idv, idv, false
		t.Instret += 6
		t.PC = pc + rewrite.PLTCheckSeqSize
		return t.foldedBranch(ins)
	}

	for retries := 0; ; retries++ {
		if retries > 0 {
			t.Instret++ // movi (Step covered round 0's)
		}
		r[visa.R11] = gotAddr // movi's architectural effect
		// ld64 r11, [r11] — the GOT reload. It can fault like any guest
		// load; the fault PC is the ld64's own address and the load
		// still retires.
		t.Instret++
		t.PC = pc + rewrite.PLTCheckLoadOffset
		v, err := t.load(gotAddr, 8)
		// Like Step's load handlers, the destination is clobbered with
		// the (zero) loaded value even when the load faults.
		r[visa.R11] = int64(v)
		if err != nil {
			return err
		}
		// and32 r11.
		t.Instret++
		r[visa.R11] = int64(uint32(r[visa.R11]))
		target := uint32(r[visa.R11])

		// Try tail: tloadi r10; tload r9, r11.
		bid := p.Tables.Load32(baryOff)
		tid := p.Tables.Load32(int64(target))
		r[visa.R10], r[visa.R9] = int64(bid), int64(tid)

		if bid == tid {
			// cmp; je Ok (taken): 4 more this round.
			t.fa, t.fb, t.fFloat = int64(bid), int64(tid), false
			t.Instret += 4
			t.PC = pc + rewrite.PLTCheckSeqSize
			site.verdict.Store(&fusedVerdict{epoch: epoch, target: target, id: bid})
			return t.foldedBranch(ins)
		}
		if tid&1 == 0 {
			// testb; je Halt (taken); hlt: 7 more this round.
			t.fa, t.fb, t.fFloat = 0, 0, false
			t.Instret += 7
			t.PC = pc + rewrite.PLTCheckHaltOffset
			return t.cfiFault(CheckPLT, int64(target), "hlt")
		}
		t.fa, t.fb, t.fFloat = int64(bid&0xFFFF), int64(tid&0xFFFF), false
		if bid&0xFFFF == tid&0xFFFF {
			// cmpw; jne Try falls through; hlt: 9 more this round.
			t.Instret += 9
			t.PC = pc + rewrite.PLTCheckHaltOffset
			return t.cfiFault(CheckPLT, int64(target), "hlt")
		}
		// Version mismatch: jne Try (taken), 8 more, reload the GOT and
		// go again.
		t.Instret += 8
		if retries+1 >= maxFusedRetries {
			// Hand the spin back to the run loop at Try (= the span
			// start, so the slot re-enters bounded rounds) to stay
			// interruptible by exit/budget polling.
			t.PC = pc
			return nil
		}
	}
}
