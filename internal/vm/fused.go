// Check-transaction fusion: the EngineFused fetch path recognizes the
// canonical check sequence the rewriter emits before every indirect
// branch (paper Fig. 4 — and32; Try: tloadi, tload, cmp, je Ok; testb,
// je Halt; cmpw, jne Try; Halt: hlt) and predecodes the whole
// 36-byte span as ONE superinstruction that runs the transaction in
// host Go: one atomic Bary load, one atomic Tary load, the ID compare,
// and the version-mismatch retry loop. The instrumented program pays
// one dispatch instead of nine per check, while Instret is credited
// with the exact number of guest instructions the interp engine would
// have retired, so the Fig. 5/6 cost metric and the differential tests
// stay bit-identical.
//
// On top of fusion sits a per-site verdict cache keyed by an epoch
// counter: a site that passed for (epoch, target) skips the table
// loads entirely until the target changes or the epoch moves. The
// epoch is bumped by every completed update transaction (via
// tables.Tables.OnUpdate) and by every page-protection transition, so
// a cached verdict is only ever reused within one published CFG —
// the same old-CFG/new-CFG atomicity argument as the paper's §5:
// a check that reuses a verdict while an update is in flight
// linearizes before that update. The epoch is 64-bit, so unlike the
// 14-bit version field it cannot wrap around (no ABA).
package vm

import (
	"sync"
	"sync/atomic"

	"mcfi/internal/rewrite"
	"mcfi/internal/visa"
)

// opFusedCheck is the pseudo-opcode of the fused check transaction. It
// occupies a hole in the ISA encoding space — visa.Decode rejects the
// byte, so the opcode can only ever enter the pipeline through a
// predecoded cache slot installed by tryFuse, never from guest bytes.
const opFusedCheck = visa.Op(0xF8)

// maxFusedRetries bounds the host-side retry loop of one fused step.
// The guest loop is unbounded (a check spins until the versions agree,
// Fig. 4), but an unbounded host loop would be invisible to Run's
// exit/budget polling; after this many version mismatches the fused
// step retires its rounds and hands the PC back to the per-instruction
// engine at Try, which preserves the spin semantics interruptibly.
const maxFusedRetries = 64

// fusedVerdict is one cached check outcome: at epoch, the branch
// whose site this is was allowed to reach target (both table loads
// returned id). Reusing it is sound while the epoch is unchanged — no
// update transaction has completed since the loads, so they would
// return the same IDs.
type fusedVerdict struct {
	epoch      int64
	target, id uint32
}

// fusedSite is the runtime state of one registered check transaction.
type fusedSite struct {
	// start is the guest address of the span's first instruction (the
	// and32 mask).
	start int64
	// baryOff is the TLOADI immediate — the Bary byte offset patched
	// into the code by the loader — read from memory at predecode time
	// (-1 until the first fill).
	baryOff atomic.Int64
	// verdict is the last successful check outcome, nil if none.
	verdict atomic.Pointer[fusedVerdict]
}

// fusedState is the Process's fusion state. Sites only accumulate
// (modules are never unloaded); the slice is copy-on-write under mu so
// stepFused can index it with one atomic load while Dlopen registers
// new sites.
type fusedState struct {
	mu    sync.Mutex
	sites atomic.Pointer[[]*fusedSite]
	index map[int64]int // start address → slice index; guarded by mu

	// epoch invalidates every cached verdict when bumped: wired to
	// tables update transactions and to page-protection transitions.
	epoch atomic.Int64
}

// RegisterCheckSites tells the process where canonical check
// transactions start (absolute guest addresses of their and32 masks).
// The fused engine may predecode each into one superinstruction; the
// other engines ignore the registration. Safe to call while threads
// run (the dlopen path registers freshly loaded modules). Addresses
// already registered are skipped; addresses that do not actually hold
// the canonical byte sequence are harmless — predecode re-verifies
// with rewrite.MatchCheck and falls back to plain decoding.
func (p *Process) RegisterCheckSites(starts []int64) {
	f := &p.fused
	f.mu.Lock()
	defer f.mu.Unlock()
	var sites []*fusedSite
	if cur := f.sites.Load(); cur != nil {
		sites = append(sites, *cur...)
	}
	if f.index == nil {
		f.index = make(map[int64]int)
	}
	for _, s := range starts {
		if _, dup := f.index[s]; dup || s < 0 {
			continue
		}
		fs := &fusedSite{start: s}
		fs.baryOff.Store(-1)
		f.index[s] = len(sites)
		sites = append(sites, fs)
	}
	f.sites.Store(&sites)
}

// BumpCheckEpoch invalidates every cached check verdict. The runtime
// subscribes it to tables.Tables.OnUpdate so each completed update
// transaction kills verdicts bound to the previous CFG.
func (p *Process) BumpCheckEpoch() { p.fused.epoch.Add(1) }

// CheckEpoch returns the current verdict-cache epoch.
func (p *Process) CheckEpoch() int64 { return p.fused.epoch.Load() }

// fusedSiteAt returns the registered site starting at pc, if any.
func (p *Process) fusedSiteAt(pc int64) (int, *fusedSite) {
	f := &p.fused
	f.mu.Lock()
	idx, ok := f.index[pc]
	f.mu.Unlock()
	if !ok {
		return -1, nil
	}
	return idx, (*f.sites.Load())[idx]
}

// tryFuse attempts to predecode the bytes at pc as one fused check
// transaction. It requires the fused engine, live tables, a registered
// site, an executable span, and an exact byte match against the
// canonical sequence (the loader-patched TLOADI immediate excepted) —
// anything else falls back to ordinary decoding, so a stale or wrong
// registration can never change semantics.
func (p *Process) tryFuse(pc int64) (visa.Instr, int, bool) {
	if p.engine != EngineFused || p.Tables == nil {
		return visa.Instr{}, 0, false
	}
	idx, site := p.fusedSiteAt(pc)
	if site == nil {
		return visa.Instr{}, 0, false
	}
	end := pc + rewrite.CheckSeqSize
	if end > int64(len(p.Mem)) || p.Prot(end-1)&visa.ProtExec == 0 {
		return visa.Instr{}, 0, false
	}
	if !rewrite.MatchCheck(p.Mem, int(pc)) {
		return visa.Instr{}, 0, false
	}
	m := p.Mem[pc+rewrite.CheckImmOffset:]
	imm := uint32(m[0]) | uint32(m[1])<<8 | uint32(m[2])<<16 | uint32(m[3])<<24
	site.baryOff.Store(int64(imm))
	return visa.Instr{Op: opFusedCheck, Imm: int64(idx)}, rewrite.CheckSeqSize, true
}

// stepFused executes one fused check transaction. Step has already
// retired the and32 (Instret++); this routine retires the rest of the
// guest instructions the interp engine would have executed, reproducing
// its architectural effects exactly: registers R9–R11, the comparison
// flags, the continuation PC, and on a violation the fault PC of the
// hlt. pc is the span start.
func (t *Thread) stepFused(pc int64, idx int) error {
	p := t.P
	sites := p.fused.sites.Load()
	if sites == nil || idx < 0 || idx >= len(*sites) {
		return t.fault(FaultDecode, "fused check slot with no registered site")
	}
	site := (*sites)[idx]
	r := &t.Reg

	// and32 r11 — the masked target is what both the guest tload and
	// the verdict key see.
	r[visa.R11] = int64(uint32(r[visa.R11]))
	target := uint32(r[visa.R11])
	t.FusedExecs++

	// The epoch MUST be read before the table loads: a verdict records
	// "the loads said yes at this epoch", so the epoch bound to it may
	// be older than the loads (the verdict dies early — harmless) but
	// never newer (an old-CFG pass would survive a version bump).
	epoch := p.fused.epoch.Load()

	if v := site.verdict.Load(); v != nil && v.epoch == epoch && v.target == target {
		// Cached verdict: architecturally identical to a zero-retry
		// pass — tloadi, tload, cmp, je Ok — without the table loads.
		t.FusedVerdictHits++
		idv := int64(v.id)
		r[visa.R10], r[visa.R9] = idv, idv
		t.fa, t.fb, t.fFloat = idv, idv, false
		t.Instret += 4
		t.PC = pc + rewrite.CheckSeqSize
		return nil
	}

	baryOff := site.baryOff.Load()
	for retries := 0; ; retries++ {
		// Try: tloadi r10; tload r9, r11.
		bid := p.Tables.Load32(baryOff)
		tid := p.Tables.Load32(int64(target))
		r[visa.R10], r[visa.R9] = int64(bid), int64(tid)

		if bid == tid {
			// cmp; je Ok (taken): 4 instructions this round.
			t.fa, t.fb, t.fFloat = int64(bid), int64(tid), false
			t.Instret += int64(8*retries) + 4
			t.PC = pc + rewrite.CheckSeqSize
			site.verdict.Store(&fusedVerdict{epoch: epoch, target: target, id: bid})
			return nil
		}
		if tid&1 == 0 {
			// testb finds the validity bit clear; je Halt (taken); hlt:
			// 7 instructions this round.
			t.fa, t.fb, t.fFloat = 0, 0, false
			t.Instret += int64(8*retries) + 7
			t.PC = pc + rewrite.CheckHaltOffset
			return t.fault(FaultCFI, "hlt")
		}
		t.fa, t.fb, t.fFloat = int64(bid&0xFFFF), int64(tid&0xFFFF), false
		if bid&0xFFFF == tid&0xFFFF {
			// Same version, different ECN — a true violation: cmpw;
			// jne Try falls through; hlt: 9 instructions this round.
			t.Instret += int64(8*retries) + 9
			t.PC = pc + rewrite.CheckHaltOffset
			return t.fault(FaultCFI, "hlt")
		}
		// Version mismatch: jne Try (taken), 8 instructions, go again.
		if retries+1 >= maxFusedRetries {
			// An update storm (or an unpublished Bary ID) keeps the
			// versions apart. Retire the rounds and resume per-
			// instruction at Try so the spin stays interruptible by
			// Run's exit and budget polling.
			t.Instret += int64(8 * (retries + 1))
			t.PC = pc + rewrite.CheckTryOffset
			return nil
		}
	}
}
