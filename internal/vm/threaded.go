// Direct-threaded dispatch engine. The cached engine still pays a
// per-step opcode switch after its cache hit; EngineThreaded stores
// each slot's operation func pointer alongside the predecoded
// visa.Instr (the opFusedCheck slot-rewriting mechanism generalized to
// every opcode), so executing one instruction is a single indirect
// call. The engine's run loop also hoists the exit/cancel/budget
// polling out of the per-instruction path: the inner loop runs
// straight-line until the same 1024-retired-instruction watermark the
// generic Run loop uses, so cancellation latency is unchanged.
//
// On top of pointer dispatch the threaded engine fuses two sequence
// shapes at icache-fill time:
//
//   - check + indirect branch: the jmpr/callr/jrestore following a
//     fused check transaction (plus the rewriter's alignment NOPs)
//     folds into the superinstruction, so a checked transfer is one
//     host step and a verdict-cache hit replays the memoized branch
//     target without re-decoding the branch (fused.go).
//   - sandbox-mask + store: the rewriter's "andi r, StoreMask" is
//     always immediately followed by the store it masks; the pair
//     becomes one trace superinstruction (stepTraceMaskStore below).
//
// Every handler reproduces the interp engine's architectural behavior
// bit-exactly: Instret is incremented before the operation (a faulting
// instruction still retires, as in Step), the fault PC is the
// faulting instruction's address, and registers/flags mutate in the
// same order — including the quirk that a faulting load still clobbers
// its destination register with the zero value.
package vm

import (
	"fmt"
	"math"
	"sync/atomic"

	"mcfi/internal/rewrite"
	"mcfi/internal/visa"
)

// stepFn executes one predecoded instruction. t.PC == pc on entry; the
// handler retires the instruction (Instret++ first, so faults retire
// too), performs it, and sets t.PC to the continuation on success. On a
// fault it returns the *Fault with t.PC still naming the faulting
// instruction. next is pc plus the slot's encoded size.
type stepFn func(t *Thread, ins *visa.Instr, pc, next int64) error

// opFuncs maps every opcode (including the fused pseudo-opcodes) to
// its handler; unknown bytes get the decode-fault handler. Built once
// at init, mirroring Step's switch case for case.
var opFuncs [256]stepFn

// storeInsSize is the encoded size of the STx instructions (they share
// one layout), used to recover the store's PC inside a fused
// mask+store trace slot.
var storeInsSize = int64(visa.ST64.Size())

func init() {
	for i := range opFuncs {
		opFuncs[i] = stepBadOp
	}
	f := func(op visa.Op, fn stepFn) { opFuncs[op] = fn }

	f(visa.NOP, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.PC = next
		return nil
	})
	f(visa.HLT, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		return t.cfiHalt()
	})
	f(opFusedCheck, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++ // the leading and32
		return t.stepFused(pc, ins)
	})
	f(opFusedCheckPLT, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++ // the leading movi (GOT address)
		return t.stepFusedPLT(pc, ins)
	})
	f(opTraceMaskStore, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++ // the leading andi (sandbox mask)
		return t.stepTraceMaskStore(ins, next)
	})
	f(visa.MOVI, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.Reg[ins.R1] = ins.Imm
		t.PC = next
		return nil
	})
	f(visa.MOV, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.Reg[ins.R1] = t.Reg[ins.R2]
		t.PC = next
		return nil
	})

	// Loads. As in Step, the destination register is written before the
	// error check, so a faulting load clobbers it with zero.
	f(visa.LD8, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		v, err := t.load(t.Reg[ins.R2]+ins.Imm, 1)
		t.Reg[ins.R1] = int64(int8(v))
		if err != nil {
			return err
		}
		t.PC = next
		return nil
	})
	f(visa.LD8U, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		v, err := t.load(t.Reg[ins.R2]+ins.Imm, 1)
		t.Reg[ins.R1] = int64(uint8(v))
		if err != nil {
			return err
		}
		t.PC = next
		return nil
	})
	f(visa.LD16, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		v, err := t.load(t.Reg[ins.R2]+ins.Imm, 2)
		t.Reg[ins.R1] = int64(int16(v))
		if err != nil {
			return err
		}
		t.PC = next
		return nil
	})
	f(visa.LD16U, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		v, err := t.load(t.Reg[ins.R2]+ins.Imm, 2)
		t.Reg[ins.R1] = int64(uint16(v))
		if err != nil {
			return err
		}
		t.PC = next
		return nil
	})
	f(visa.LD32, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		v, err := t.load(t.Reg[ins.R2]+ins.Imm, 4)
		t.Reg[ins.R1] = int64(int32(v))
		if err != nil {
			return err
		}
		t.PC = next
		return nil
	})
	f(visa.LD32U, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		v, err := t.load(t.Reg[ins.R2]+ins.Imm, 4)
		t.Reg[ins.R1] = int64(uint32(v))
		if err != nil {
			return err
		}
		t.PC = next
		return nil
	})
	f(visa.LD64, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		v, err := t.load(t.Reg[ins.R2]+ins.Imm, 8)
		t.Reg[ins.R1] = int64(v)
		if err != nil {
			return err
		}
		t.PC = next
		return nil
	})

	// Stores.
	st := func(op visa.Op, sz int) {
		f(op, func(t *Thread, ins *visa.Instr, pc, next int64) error {
			t.Instret++
			if err := t.store(t.Reg[ins.R2]+ins.Imm, sz, uint64(t.Reg[ins.R1])); err != nil {
				return err
			}
			t.PC = next
			return nil
		})
	}
	st(visa.ST8, 1)
	st(visa.ST16, 2)
	st(visa.ST32, 4)
	st(visa.ST64, 8)

	// Integer ALU.
	f(visa.ADD, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.Reg[ins.R1] += t.Reg[ins.R2]
		t.PC = next
		return nil
	})
	f(visa.SUB, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.Reg[ins.R1] -= t.Reg[ins.R2]
		t.PC = next
		return nil
	})
	f(visa.MUL, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.Reg[ins.R1] *= t.Reg[ins.R2]
		t.PC = next
		return nil
	})
	f(visa.DIV, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		if t.Reg[ins.R2] == 0 {
			return t.fault(FaultArith, "division by zero")
		}
		t.Reg[ins.R1] /= t.Reg[ins.R2]
		t.PC = next
		return nil
	})
	f(visa.MOD, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		if t.Reg[ins.R2] == 0 {
			return t.fault(FaultArith, "mod by zero")
		}
		t.Reg[ins.R1] %= t.Reg[ins.R2]
		t.PC = next
		return nil
	})
	f(visa.UDIV, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		if t.Reg[ins.R2] == 0 {
			return t.fault(FaultArith, "division by zero")
		}
		t.Reg[ins.R1] = int64(uint64(t.Reg[ins.R1]) / uint64(t.Reg[ins.R2]))
		t.PC = next
		return nil
	})
	f(visa.UMOD, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		if t.Reg[ins.R2] == 0 {
			return t.fault(FaultArith, "mod by zero")
		}
		t.Reg[ins.R1] = int64(uint64(t.Reg[ins.R1]) % uint64(t.Reg[ins.R2]))
		t.PC = next
		return nil
	})
	f(visa.AND, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.Reg[ins.R1] &= t.Reg[ins.R2]
		t.PC = next
		return nil
	})
	f(visa.OR, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.Reg[ins.R1] |= t.Reg[ins.R2]
		t.PC = next
		return nil
	})
	f(visa.XOR, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.Reg[ins.R1] ^= t.Reg[ins.R2]
		t.PC = next
		return nil
	})
	f(visa.SHL, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.Reg[ins.R1] <<= uint64(t.Reg[ins.R2]) & 63
		t.PC = next
		return nil
	})
	f(visa.SHR, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.Reg[ins.R1] = int64(uint64(t.Reg[ins.R1]) >> (uint64(t.Reg[ins.R2]) & 63))
		t.PC = next
		return nil
	})
	f(visa.SAR, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.Reg[ins.R1] >>= uint64(t.Reg[ins.R2]) & 63
		t.PC = next
		return nil
	})
	f(visa.NEG, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.Reg[ins.R1] = -t.Reg[ins.R1]
		t.PC = next
		return nil
	})
	f(visa.NOTI, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.Reg[ins.R1] = ^t.Reg[ins.R1]
		t.PC = next
		return nil
	})
	f(visa.ADDI, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.Reg[ins.R1] += ins.Imm
		t.PC = next
		return nil
	})
	f(visa.ANDI, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.Reg[ins.R1] &= ins.Imm
		t.PC = next
		return nil
	})

	// Flags and conditional control flow.
	f(visa.CMP, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.fa, t.fb, t.fFloat = t.Reg[ins.R1], t.Reg[ins.R2], false
		t.PC = next
		return nil
	})
	f(visa.CMPI, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.fa, t.fb, t.fFloat = t.Reg[ins.R1], ins.Imm, false
		t.PC = next
		return nil
	})
	f(visa.CMPW, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.fa, t.fb, t.fFloat = t.Reg[ins.R1]&0xFFFF, t.Reg[ins.R2]&0xFFFF, false
		t.PC = next
		return nil
	})
	f(visa.TESTB, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.fa, t.fb, t.fFloat = t.Reg[ins.R1]&ins.Imm&0xFF, 0, false
		t.PC = next
		return nil
	})
	for op := range jccToCond {
		f(op, stepJcc)
	}
	f(visa.SET, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		if t.cond(ins.R1) {
			t.Reg[ins.R2] = 1
		} else {
			t.Reg[ins.R2] = 0
		}
		t.PC = next
		return nil
	})

	// Unconditional control flow.
	f(visa.JMP, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.PC = next + ins.Imm
		return nil
	})
	f(visa.CALL, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		if err := t.push(next); err != nil {
			return err
		}
		t.PC = next + ins.Imm
		return nil
	})
	f(visa.CALLR, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		if err := t.push(next); err != nil {
			return err
		}
		t.PC = t.Reg[ins.R1]
		return nil
	})
	f(visa.JMPR, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.PC = t.Reg[ins.R1]
		return nil
	})
	f(visa.RET, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		v, err := t.pop()
		if err != nil {
			return err
		}
		t.PC = v
		return nil
	})
	f(visa.PUSH, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		if err := t.push(t.Reg[ins.R1]); err != nil {
			return err
		}
		t.PC = next
		return nil
	})
	f(visa.POP, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		v, err := t.pop()
		if err != nil {
			return err
		}
		t.Reg[ins.R1] = v
		t.PC = next
		return nil
	})
	f(visa.SYS, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		if t.P.Handler == nil {
			return t.fault(FaultSys, "no syscall handler")
		}
		t.PC = next // handlers observe the continuation PC
		if err := t.P.Handler.Syscall(t, int(ins.Imm)); err != nil {
			return err
		}
		if t.P.exited.Load() {
			return ErrExited
		}
		return nil // the handler may have redirected t.PC
	})

	// Floating point and conversions.
	f(visa.FADD, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.fop(ins, func(a, b float64) float64 { return a + b })
		t.PC = next
		return nil
	})
	f(visa.FSUB, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.fop(ins, func(a, b float64) float64 { return a - b })
		t.PC = next
		return nil
	})
	f(visa.FMUL, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.fop(ins, func(a, b float64) float64 { return a * b })
		t.PC = next
		return nil
	})
	f(visa.FDIV, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.fop(ins, func(a, b float64) float64 { return a / b })
		t.PC = next
		return nil
	})
	f(visa.FCMP, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.ffa = math.Float64frombits(uint64(t.Reg[ins.R1]))
		t.ffb = math.Float64frombits(uint64(t.Reg[ins.R2]))
		t.fFloat = true
		t.PC = next
		return nil
	})
	f(visa.CVIF, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.Reg[ins.R1] = int64(math.Float64bits(float64(t.Reg[ins.R1])))
		t.PC = next
		return nil
	})
	f(visa.CVFI, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		fv := math.Float64frombits(uint64(t.Reg[ins.R1]))
		switch {
		case math.IsNaN(fv):
			t.Reg[ins.R1] = 0
		case fv >= math.MaxInt64:
			t.Reg[ins.R1] = math.MaxInt64
		case fv <= math.MinInt64:
			t.Reg[ins.R1] = math.MinInt64
		default:
			t.Reg[ins.R1] = int64(fv)
		}
		t.PC = next
		return nil
	})

	// Width changes.
	f(visa.SX8, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.Reg[ins.R1] = int64(int8(t.Reg[ins.R1]))
		t.PC = next
		return nil
	})
	f(visa.SX16, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.Reg[ins.R1] = int64(int16(t.Reg[ins.R1]))
		t.PC = next
		return nil
	})
	f(visa.SX32, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.Reg[ins.R1] = int64(int32(t.Reg[ins.R1]))
		t.PC = next
		return nil
	})
	f(visa.ZX8, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.Reg[ins.R1] = int64(uint8(t.Reg[ins.R1]))
		t.PC = next
		return nil
	})
	f(visa.ZX16, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.Reg[ins.R1] = int64(uint16(t.Reg[ins.R1]))
		t.PC = next
		return nil
	})
	f(visa.AND32, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		t.Reg[ins.R1] = int64(uint32(t.Reg[ins.R1]))
		t.PC = next
		return nil
	})

	// MCFI table loads.
	f(visa.TLOAD, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		if t.P.Tables == nil {
			return t.fault(FaultMem, "tload without tables")
		}
		t.Reg[ins.R1] = int64(t.P.Tables.Load32(t.Reg[ins.R2]))
		t.PC = next
		return nil
	})
	f(visa.TLOADI, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		if t.P.Tables == nil {
			return t.fault(FaultMem, "tloadi without tables")
		}
		t.Reg[ins.R1] = int64(t.P.Tables.Load32(ins.Imm))
		t.PC = next
		return nil
	})

	// setjmp/longjmp.
	f(visa.SETJ, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		t.Instret++
		env := t.Reg[ins.R1]
		if err := t.store(env, 8, uint64(t.Reg[visa.SP])); err != nil {
			return err
		}
		if err := t.store(env+8, 8, uint64(t.Reg[visa.FP])); err != nil {
			return err
		}
		if err := t.store(env+16, 8, uint64(next)); err != nil {
			return err
		}
		t.Reg[visa.R0] = 0
		t.PC = next
		return nil
	})
	f(visa.JRESTORE, func(t *Thread, ins *visa.Instr, pc, next int64) error {
		// Same operand read/write order as Step (R2/R3 are read after
		// SP/FP are written, in case they name those registers).
		t.Instret++
		t.Reg[visa.SP] = t.Reg[ins.R1]
		t.Reg[visa.FP] = t.Reg[ins.R2]
		t.PC = t.Reg[ins.R3]
		return nil
	})
}

func stepBadOp(t *Thread, ins *visa.Instr, pc, next int64) error {
	t.Instret++
	return t.fault(FaultDecode, "unimplemented opcode %s", ins.Op.Name())
}

func stepJcc(t *Thread, ins *visa.Instr, pc, next int64) error {
	t.Instret++
	if cc := jccCond[ins.Op]; cc != 0 && t.cond(cc-1) {
		next += ins.Imm
	}
	t.PC = next
	return nil
}

// runThreaded is EngineThreaded's run loop. The outer block performs
// exactly the checks the generic Run loop does at its poll points —
// budget, exit, cancellation, counter flush — and the inner loop then
// executes without per-step checks until the next watermark: the same
// 1024-retired-instruction cadence, with the budget clamped in so
// exhaustion is detected on the precise instruction, not at the next
// flush. The fetch is open-coded in the loop (rather than a cacheHit
// call) because the call itself is measurable at this dispatch rate;
// the unsigned page-index compare folds the pc<0 check into the bounds
// check.
func (t *Thread) runThreaded(maxInstr int64) error {
	p := t.P
	icache := p.icache
	for {
		if maxInstr > 0 && t.Instret >= maxInstr {
			return fmt.Errorf("%w (limit %d)", ErrBudget, maxInstr)
		}
		if p.exited.Load() {
			return ErrExited
		}
		if p.cancelled.Load() {
			return ErrCancelled
		}
		t.flushCounters()
		limit := t.flushed + 1024
		if maxInstr > 0 && maxInstr < limit {
			limit = maxInstr
		}
		for t.Instret < limit {
			pc := t.PC
			if pg := uint64(pc) / PageSize; pg < uint64(len(icache)) {
				if c := icache[pg].Load(); c != nil {
					off := int(pc & (PageSize - 1))
					if atomic.LoadUint32(&c.valid[off>>5])&(uint32(1)<<(off&31)) != 0 {
						s := &c.slots[off]
						if err := s.fn(t, &s.ins, pc, pc+int64(s.size)); err != nil {
							return err
						}
						continue
					}
				}
			}
			// Miss: check executability, fill the slot, dispatch once
			// from the fill result (the slot may not have been cached if
			// the page raced an invalidation).
			if p.Prot(pc)&visa.ProtExec == 0 {
				return t.fault(FaultExec, "pc %#x not executable", pc)
			}
			ins, size, err := p.cacheFill(pc)
			if err != nil {
				return t.fault(FaultDecode, "%v", err)
			}
			if err := opFuncs[ins.Op](t, ins, pc, pc+int64(size)); err != nil {
				return err
			}
		}
	}
}

// tryFuseTrace upgrades a freshly decoded instruction into a trace
// superinstruction when it starts a fusible straight-line pair. The
// only shape today is the rewriter's sandbox-mask + store: EmitStoreMask
// always emits "andi r, StoreMask" immediately before the store it
// masks, so the pair executes as one host step. Fusing is keyed on the
// byte shapes alone (rewrite.IsMaskStorePair), so a coincidental
// guest-authored pair fuses too — harmlessly, because the handler
// reproduces both instructions' architectural effects exactly.
func (p *Process) tryFuseTrace(ins visa.Instr, n int, pc int64) (visa.Instr, int) {
	if ins.Op != visa.ANDI || ins.Imm != visa.StoreMask {
		return ins, n
	}
	st, n2, err := visa.Decode(p.Mem, int(pc)+n)
	if err != nil || !rewrite.IsMaskStorePair(ins, st) {
		return ins, n
	}
	end := pc + int64(n+n2)
	if end > int64(len(p.Mem)) || p.Prot(end-1)&visa.ProtExec == 0 {
		return ins, n
	}
	var sz byte
	switch st.Op {
	case visa.ST8:
		sz = 1
	case visa.ST16:
		sz = 2
	case visa.ST32:
		sz = 4
	case visa.ST64:
		sz = 8
	default:
		return ins, n
	}
	// R1 = masked address register, R2 = store source register,
	// R3 = store width, Imm = store displacement. The mask constant is
	// implied (the pair only fuses when it is visa.StoreMask).
	return visa.Instr{Op: opTraceMaskStore, R1: ins.R1, R2: st.R1, R3: sz, Imm: st.Imm}, n + n2
}

// stepTraceMaskStore executes a fused sandbox-mask + store pair. The
// caller has retired the andi; this routine applies the mask, then
// retires and performs the store with the interp engine's exact fault
// behavior (the fault PC is the store's own address and the store
// counts as retired).
func (t *Thread) stepTraceMaskStore(ins *visa.Instr, next int64) error {
	r := &t.Reg
	r[ins.R1] &= visa.StoreMask
	t.Instret++
	t.PC = next - storeInsSize
	if err := t.store(r[ins.R1]+ins.Imm, int(ins.R3), uint64(r[ins.R2])); err != nil {
		return err
	}
	t.PC = next
	return nil
}
