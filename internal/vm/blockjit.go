// Profile-guided fill-time block compiler. The threaded engine pays
// one icache lookup plus one indirect call per retired instruction;
// EngineBlockJIT compiles each hot straight-line block into a
// compiled trace — a contiguous array of pre-bound steps the
// dispatcher executes with one block lookup per *block* — so the run
// loop's per-instruction costs (icache probe, valid-bitmap test,
// watermark compare, PC/Instret stores for pure ops) are paid once
// per block instead of once per instruction. Pure register steps are
// bound as inline micro-ops (a jump-table dispatch with operands and
// constants pre-extracted — no call at all); steps that can fault or
// leave the VM keep a pre-bound func pointer to their threaded
// handler so fault semantics live in exactly one place.
//
// Profile guidance: every potential block start (the target of any
// control transfer) carries an execution counter, and only starts
// whose count crosses the JIT threshold pay compile cost. Cold code
// executes on the threaded engine's dispatch path unchanged, so a
// block that never gets hot costs one counter increment per entry and
// nothing else.
//
// Block boundaries. A block is the maximal trace from its start such
// that every instruction *starts* inside the start's page: it follows
// the fall-through edge of conditional branches (a taken branch exits
// the block early with PC on the target), folds forward
// unconditional jumps within the page, and ends at the first
// unpredictable transfer (indirect branch, call, return, syscall,
// hlt, longjmp, backward jump), at a fused check superinstruction's
// join (the check manages PC itself — on retry exhaustion it loops
// back to the transaction start), or at the page boundary. The page
// rule makes invalidation congruent with the icache: dropping pages
// [first-1, last) covers every block whose instructions could span
// the changed range.
//
// Invalidation reuses the verdict caches' epoch: a block is stamped
// with the check epoch read BEFORE its first byte is decoded, and the
// dispatcher refuses any block whose stamp is below the discard
// floor. A full update transaction advances the floor to the new
// epoch (BumpCheckEpoch), condemning every block; a delta update or
// Protect advances only the epoch and drops the compiler pages
// overlapping the changed extent (BumpCheckEpochExtent), so blocks
// elsewhere survive. Either way a block can never replay a check
// verdict (checks re-validate at execution) or code bytes from before
// the change; a condemned block is dropped at dispatch and its start
// re-profiled from zero.
//
// Accounting is bit-identical to the other engines. Pure register
// steps defer their Instret/PC updates into a pending count that the
// next effectful step (or the block epilogue) credits before acting,
// so a fault inside a block reports the exact interp-engine Instret
// and fault PC. Near the instruction budget — within the block's
// worst-case retire bound — the dispatcher falls back to single
// stepping so ErrBudget lands on the precise instruction.
package vm

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"mcfi/internal/rewrite"
	"mcfi/internal/visa"
)

// DefaultJITThreshold is the execution count at which a block start
// becomes hot and is compiled. Override per process with
// SetJITThreshold (the -jit-threshold flag).
const DefaultJITThreshold = 64

// maxBlockSteps bounds the compiled steps of one block, so a page of
// straight-line code cannot produce an unboundedly expensive compile
// or an arbitrarily long poll-free run.
const maxBlockSteps = 256

// Micro-op kinds of a compiled block step. The zero value is the
// handler delegation so a mis-initialized step fails safe (through
// the threaded handler, never a silent register micro-op).
const (
	kHandler  uint8 = iota // delegate to the threaded handler (s.h, s.ins)
	kEnd                   // block epilogue: credit retires, land PC
	kJmp                   // pre-bound direct jump (backward / page-leaving)
	kCall                  // pre-bound direct call
	kJcc                   // conditional branch: taken exits the block
	kCmpRRJcc              // fused reg-reg compare + conditional branch
	kCmpRIJcc              // fused reg-imm compare + conditional branch
	kLoadOp                // fused load (via handler) + register ALU op

	// Memory micro-ops: the handler bodies inlined (same t.load/t.store
	// calls, same clobber-on-fault quirk), with the fault PC restored
	// before the access. r1 = data register, r2 = base register,
	// imm = displacement.
	kLd8
	kLd8U
	kLd16
	kLd16U
	kLd32
	kLd32U
	kLd64
	kSt8
	kSt16
	kSt32
	kSt64

	// Pure register/flag micro-ops: cannot fault, Instret/PC deferred.
	kMovI
	kMov
	kAdd
	kSub
	kMul
	kAnd
	kOr
	kXor
	kShl
	kShr
	kSar
	kNeg
	kNot
	kAddI
	kAndI
	kCmp
	kCmpI
	kCmpW
	kTestB
	kFCmp
	kSet
	kSx8
	kSx16
	kSx32
	kZx8
	kZx16
	kAnd32
	kFAdd
	kFSub
	kFMul
	kFDiv
	kCvIF
	kCvFI
)

// blockStep is one micro-op of a compiled block: a kind tag plus
// pre-extracted operands, one cache line, stored in a contiguous
// array — the block loop walks it like the icache slot array instead
// of chasing per-step heap closures. Field use by kind:
//
//	pures:     r1, r2, imm as in the source instruction (cc for kSet)
//	kJcc:      cc; pc = fall-through, next = taken, pending = retire
//	kCmp*Jcc:  compare in r1/r2/imm, branch as kJcc
//	kJmp:      imm = target, pending = retire
//	kCall:     pc = call site, next = return address, imm = target
//	kEnd:      pc = fall-through PC, pending = retire
//	kHandler:  h + ins + pc/next per the stepFn contract
//	kLoadOp:   load in h/ins/pc/next, ALU micro-op in cc with r1/r2,
//	           imm = PC after the pair
type blockStep struct {
	kind    uint8
	cc      uint8
	r1, r2  uint8
	imm     int64
	pc      int64
	next    int64
	pending int64
	h       stepFn
	ins     visa.Instr
}

// compiledBlock is one compiled block.
type compiledBlock struct {
	// epoch is the check epoch the block's bytes and fused-check
	// bindings were read at; the dispatcher drops the block when the
	// stamp falls below the process's discard floor (advanced by each
	// full-range update transaction).
	epoch int64
	// steps is the block body, executed in order by Thread.runBlock.
	steps []blockStep
	// maxRetire is a conservative upper bound on instructions one
	// dispatch can retire; the dispatcher single-steps instead when
	// the remaining budget is smaller, keeping ErrBudget exact.
	maxRetire int64
}

// jitPage holds per-offset profiling counters and compiled blocks for
// one guest page, mirroring pageCache's indexing. Both arrays are
// lock-free: counters are monotonic heuristics and block pointers are
// published whole.
type jitPage struct {
	counts [PageSize]atomic.Uint32
	blocks [PageSize]atomic.Pointer[compiledBlock]
}

// jitState is the block compiler's per-process state plus its
// process-wide counters (flushed from threads at the watermark
// cadence, read lock-free by serving metrics).
type jitState struct {
	pages     []atomic.Pointer[jitPage]
	threshold int64

	// floor is the discard floor: a block whose epoch stamp is below
	// it is stale. BumpCheckEpoch stores the new epoch here (full
	// invalidation); BumpCheckEpochExtent leaves it alone and drops
	// pages instead (extent invalidation). Invariant: floor <= epoch,
	// so a freshly stamped block is never born stale.
	floor atomic.Int64

	compiled     atomic.Int64
	compileNanos atomic.Int64
	discards     atomic.Int64
	blockRuns    atomic.Int64
	coldSteps    atomic.Int64
}

// SetJITThreshold sets the block-compile execution threshold for
// EngineBlockJIT (<= 0 restores DefaultJITThreshold). Call before the
// process starts executing.
func (p *Process) SetJITThreshold(n int64) { p.jit.threshold = n }

// jitPageAt returns the jitPage for page pg, installing one if
// needed. If an invalidation races the install the orphan page is
// returned; its lost counts only delay recompilation.
func (p *Process) jitPageAt(pg uint64) *jitPage {
	slot := &p.jit.pages[pg]
	if jp := slot.Load(); jp != nil {
		return jp
	}
	njp := &jitPage{}
	if slot.CompareAndSwap(nil, njp) {
		return njp
	}
	if jp := slot.Load(); jp != nil {
		return jp
	}
	return njp
}

// runBlock executes one compiled block body and returns nil when the
// block ran to its end or exited early at a taken branch (PC is on
// the branch target); a non-nil error is a real fault or exit from a
// handler step.
func (t *Thread) runBlock(b *compiledBlock) error {
	ss := b.steps
	for i := range ss {
		s := &ss[i]
		switch s.kind {
		case kHandler:
			t.Instret += s.pending
			t.PC = s.pc
			if err := s.h(t, &s.ins, s.pc, s.next); err != nil {
				return err
			}
		case kEnd:
			t.Instret += s.pending
			t.PC = s.pc
		case kJmp:
			t.Instret += s.pending
			t.PC = s.imm
		case kCall:
			t.Instret += s.pending
			t.PC = s.pc // a stack fault reports the call's own address
			if err := t.push(s.next); err != nil {
				return err
			}
			t.PC = s.imm
		case kJcc:
			t.Instret += s.pending
			if t.cond(s.cc) {
				t.PC = s.next
				return nil
			}
			t.PC = s.pc
		case kCmpRRJcc:
			t.Instret += s.pending
			t.fa, t.fb, t.fFloat = t.Reg[s.r1], t.Reg[s.r2], false
			if t.cond(s.cc) {
				t.PC = s.next
				return nil
			}
			t.PC = s.pc
		case kCmpRIJcc:
			t.Instret += s.pending
			t.fa, t.fb, t.fFloat = t.Reg[s.r1], s.imm, false
			if t.cond(s.cc) {
				t.PC = s.next
				return nil
			}
			t.PC = s.pc
		case kLoadOp:
			t.Instret += s.pending
			t.PC = s.pc
			if err := s.h(t, &s.ins, s.pc, s.next); err != nil {
				return err
			}
			t.Instret++
			runPureALU(t, s.cc, s.r1, s.r2)
			t.PC = s.imm
		case kLd8:
			t.Instret += s.pending + 1
			t.PC = s.pc
			v, err := t.load(t.Reg[s.r2]+s.imm, 1)
			t.Reg[s.r1] = int64(int8(v))
			if err != nil {
				return err
			}
			t.PC = s.next
		case kLd8U:
			t.Instret += s.pending + 1
			t.PC = s.pc
			v, err := t.load(t.Reg[s.r2]+s.imm, 1)
			t.Reg[s.r1] = int64(uint8(v))
			if err != nil {
				return err
			}
			t.PC = s.next
		case kLd16:
			t.Instret += s.pending + 1
			t.PC = s.pc
			v, err := t.load(t.Reg[s.r2]+s.imm, 2)
			t.Reg[s.r1] = int64(int16(v))
			if err != nil {
				return err
			}
			t.PC = s.next
		case kLd16U:
			t.Instret += s.pending + 1
			t.PC = s.pc
			v, err := t.load(t.Reg[s.r2]+s.imm, 2)
			t.Reg[s.r1] = int64(uint16(v))
			if err != nil {
				return err
			}
			t.PC = s.next
		case kLd32:
			t.Instret += s.pending + 1
			t.PC = s.pc
			v, err := t.load(t.Reg[s.r2]+s.imm, 4)
			t.Reg[s.r1] = int64(int32(v))
			if err != nil {
				return err
			}
			t.PC = s.next
		case kLd32U:
			t.Instret += s.pending + 1
			t.PC = s.pc
			v, err := t.load(t.Reg[s.r2]+s.imm, 4)
			t.Reg[s.r1] = int64(uint32(v))
			if err != nil {
				return err
			}
			t.PC = s.next
		case kLd64:
			t.Instret += s.pending + 1
			t.PC = s.pc
			v, err := t.load(t.Reg[s.r2]+s.imm, 8)
			t.Reg[s.r1] = int64(v)
			if err != nil {
				return err
			}
			t.PC = s.next
		case kSt8:
			t.Instret += s.pending + 1
			t.PC = s.pc
			if err := t.store(t.Reg[s.r2]+s.imm, 1, uint64(t.Reg[s.r1])); err != nil {
				return err
			}
			t.PC = s.next
		case kSt16:
			t.Instret += s.pending + 1
			t.PC = s.pc
			if err := t.store(t.Reg[s.r2]+s.imm, 2, uint64(t.Reg[s.r1])); err != nil {
				return err
			}
			t.PC = s.next
		case kSt32:
			t.Instret += s.pending + 1
			t.PC = s.pc
			if err := t.store(t.Reg[s.r2]+s.imm, 4, uint64(t.Reg[s.r1])); err != nil {
				return err
			}
			t.PC = s.next
		case kSt64:
			t.Instret += s.pending + 1
			t.PC = s.pc
			if err := t.store(t.Reg[s.r2]+s.imm, 8, uint64(t.Reg[s.r1])); err != nil {
				return err
			}
			t.PC = s.next
		case kMovI:
			t.Reg[s.r1] = s.imm
		case kMov:
			t.Reg[s.r1] = t.Reg[s.r2]
		case kAdd:
			t.Reg[s.r1] += t.Reg[s.r2]
		case kSub:
			t.Reg[s.r1] -= t.Reg[s.r2]
		case kMul:
			t.Reg[s.r1] *= t.Reg[s.r2]
		case kAnd:
			t.Reg[s.r1] &= t.Reg[s.r2]
		case kOr:
			t.Reg[s.r1] |= t.Reg[s.r2]
		case kXor:
			t.Reg[s.r1] ^= t.Reg[s.r2]
		case kShl:
			t.Reg[s.r1] <<= uint64(t.Reg[s.r2]) & 63
		case kShr:
			t.Reg[s.r1] = int64(uint64(t.Reg[s.r1]) >> (uint64(t.Reg[s.r2]) & 63))
		case kSar:
			t.Reg[s.r1] >>= uint64(t.Reg[s.r2]) & 63
		case kNeg:
			t.Reg[s.r1] = -t.Reg[s.r1]
		case kNot:
			t.Reg[s.r1] = ^t.Reg[s.r1]
		case kAddI:
			t.Reg[s.r1] += s.imm
		case kAndI:
			t.Reg[s.r1] &= s.imm
		case kCmp:
			t.fa, t.fb, t.fFloat = t.Reg[s.r1], t.Reg[s.r2], false
		case kCmpI:
			t.fa, t.fb, t.fFloat = t.Reg[s.r1], s.imm, false
		case kCmpW:
			t.fa, t.fb, t.fFloat = t.Reg[s.r1]&0xFFFF, t.Reg[s.r2]&0xFFFF, false
		case kTestB:
			t.fa, t.fb, t.fFloat = t.Reg[s.r1]&s.imm&0xFF, 0, false
		case kFCmp:
			t.ffa = math.Float64frombits(uint64(t.Reg[s.r1]))
			t.ffb = math.Float64frombits(uint64(t.Reg[s.r2]))
			t.fFloat = true
		case kSet:
			if t.cond(s.cc) {
				t.Reg[s.r2] = 1
			} else {
				t.Reg[s.r2] = 0
			}
		case kSx8:
			t.Reg[s.r1] = int64(int8(t.Reg[s.r1]))
		case kSx16:
			t.Reg[s.r1] = int64(int16(t.Reg[s.r1]))
		case kSx32:
			t.Reg[s.r1] = int64(int32(t.Reg[s.r1]))
		case kZx8:
			t.Reg[s.r1] = int64(uint8(t.Reg[s.r1]))
		case kZx16:
			t.Reg[s.r1] = int64(uint16(t.Reg[s.r1]))
		case kAnd32:
			t.Reg[s.r1] = int64(uint32(t.Reg[s.r1]))
		case kFAdd:
			a := math.Float64frombits(uint64(t.Reg[s.r1]))
			b := math.Float64frombits(uint64(t.Reg[s.r2]))
			t.Reg[s.r1] = int64(math.Float64bits(a + b))
		case kFSub:
			a := math.Float64frombits(uint64(t.Reg[s.r1]))
			b := math.Float64frombits(uint64(t.Reg[s.r2]))
			t.Reg[s.r1] = int64(math.Float64bits(a - b))
		case kFMul:
			a := math.Float64frombits(uint64(t.Reg[s.r1]))
			b := math.Float64frombits(uint64(t.Reg[s.r2]))
			t.Reg[s.r1] = int64(math.Float64bits(a * b))
		case kFDiv:
			// Float division cannot fault (0/0 is NaN, x/0 is Inf).
			a := math.Float64frombits(uint64(t.Reg[s.r1]))
			b := math.Float64frombits(uint64(t.Reg[s.r2]))
			t.Reg[s.r1] = int64(math.Float64bits(a / b))
		case kCvIF:
			t.Reg[s.r1] = int64(math.Float64bits(float64(t.Reg[s.r1])))
		case kCvFI:
			fv := math.Float64frombits(uint64(t.Reg[s.r1]))
			switch {
			case math.IsNaN(fv):
				t.Reg[s.r1] = 0
			case fv >= math.MaxInt64:
				t.Reg[s.r1] = math.MaxInt64
			case fv <= math.MinInt64:
				t.Reg[s.r1] = math.MinInt64
			default:
				t.Reg[s.r1] = int64(fv)
			}
		}
	}
	return nil
}

// runPureALU executes the register ALU half of a kLoadOp pair. The
// admitted ops (rewrite.IsLoadOpPair) are all register-register.
func runPureALU(t *Thread, kind, r1, r2 uint8) {
	switch kind {
	case kAdd:
		t.Reg[r1] += t.Reg[r2]
	case kSub:
		t.Reg[r1] -= t.Reg[r2]
	case kMul:
		t.Reg[r1] *= t.Reg[r2]
	case kAnd:
		t.Reg[r1] &= t.Reg[r2]
	case kOr:
		t.Reg[r1] |= t.Reg[r2]
	case kXor:
		t.Reg[r1] ^= t.Reg[r2]
	case kShl:
		t.Reg[r1] <<= uint64(t.Reg[r2]) & 63
	case kShr:
		t.Reg[r1] = int64(uint64(t.Reg[r1]) >> (uint64(t.Reg[r2]) & 63))
	case kSar:
		t.Reg[r1] >>= uint64(t.Reg[r2]) & 63
	case kCmp:
		t.fa, t.fb, t.fFloat = t.Reg[r1], t.Reg[r2], false
	case kCmpW:
		t.fa, t.fb, t.fFloat = t.Reg[r1]&0xFFFF, t.Reg[r2]&0xFFFF, false
	case kMov:
		t.Reg[r1] = t.Reg[r2]
	}
}

// memKind maps a plain load or store to its memory micro-op kind.
// Fused pseudo-opcodes (trace mask store, check superinstructions)
// never match: they keep their threaded handlers.
func memKind(op visa.Op) (uint8, bool) {
	switch op {
	case visa.LD8:
		return kLd8, true
	case visa.LD8U:
		return kLd8U, true
	case visa.LD16:
		return kLd16, true
	case visa.LD16U:
		return kLd16U, true
	case visa.LD32:
		return kLd32, true
	case visa.LD32U:
		return kLd32U, true
	case visa.LD64:
		return kLd64, true
	case visa.ST8:
		return kSt8, true
	case visa.ST16:
		return kSt16, true
	case visa.ST32:
		return kSt32, true
	case visa.ST64:
		return kSt64, true
	}
	return 0, false
}

// pureKind maps an instruction whose only architectural effect is on
// registers or flags — it cannot fault, touch memory, or transfer
// control — to its micro-op kind. Returns false for anything
// effectful; the compiler then emits a handler step.
func pureKind(op visa.Op) (uint8, bool) {
	switch op {
	case visa.MOVI:
		return kMovI, true
	case visa.MOV:
		return kMov, true
	case visa.ADD:
		return kAdd, true
	case visa.SUB:
		return kSub, true
	case visa.MUL:
		return kMul, true
	case visa.AND:
		return kAnd, true
	case visa.OR:
		return kOr, true
	case visa.XOR:
		return kXor, true
	case visa.SHL:
		return kShl, true
	case visa.SHR:
		return kShr, true
	case visa.SAR:
		return kSar, true
	case visa.NEG:
		return kNeg, true
	case visa.NOTI:
		return kNot, true
	case visa.ADDI:
		return kAddI, true
	case visa.ANDI:
		return kAndI, true
	case visa.CMP:
		return kCmp, true
	case visa.CMPI:
		return kCmpI, true
	case visa.CMPW:
		return kCmpW, true
	case visa.TESTB:
		return kTestB, true
	case visa.FCMP:
		return kFCmp, true
	case visa.SET:
		return kSet, true
	case visa.SX8:
		return kSx8, true
	case visa.SX16:
		return kSx16, true
	case visa.SX32:
		return kSx32, true
	case visa.ZX8:
		return kZx8, true
	case visa.ZX16:
		return kZx16, true
	case visa.AND32:
		return kAnd32, true
	case visa.FADD:
		return kFAdd, true
	case visa.FSUB:
		return kFSub, true
	case visa.FMUL:
		return kFMul, true
	case visa.FDIV:
		// Float division cannot fault (0/0 is NaN, x/0 is Inf).
		return kFDiv, true
	case visa.CVIF:
		return kCvIF, true
	case visa.CVFI:
		return kCvFI, true
	}
	return 0, false
}

// bindPureStep builds the micro-op step for a pure instruction. SET
// keeps its condition code in cc (R1 is the condition operand).
func bindPureStep(kind uint8, ins visa.Instr) blockStep {
	s := blockStep{kind: kind, r1: ins.R1, r2: ins.R2, imm: ins.Imm}
	if kind == kSet {
		s.cc = ins.R1
	}
	return s
}

// runBlockJIT is EngineBlockJIT's run loop: the threaded engine's
// watermark loop with a compiled-block dispatch in front of the
// per-instruction path. atStart tracks whether pc was reached by a
// control transfer — only such pcs are block starts, so a 20-step
// loop body profiles (and compiles) once at its head instead of once
// per suffix.
func (t *Thread) runBlockJIT(maxInstr int64) error {
	p := t.P
	icache := p.icache
	jpages := p.jit.pages
	threshold := p.jit.threshold
	if threshold <= 0 {
		threshold = DefaultJITThreshold
	}
	if threshold > math.MaxUint32 {
		threshold = math.MaxUint32
	}
	blockBudget := int64(math.MaxInt64)
	if maxInstr > 0 {
		blockBudget = maxInstr
	}
	atStart := true
	for {
		if maxInstr > 0 && t.Instret >= maxInstr {
			return fmt.Errorf("%w (limit %d)", ErrBudget, maxInstr)
		}
		if p.exited.Load() {
			return ErrExited
		}
		if p.cancelled.Load() {
			return ErrCancelled
		}
		t.flushCounters()
		limit := t.flushed + 1024
		if maxInstr > 0 && maxInstr < limit {
			limit = maxInstr
		}
		// The discard floor is re-read once per watermark window; the
		// discard path refreshes it before condemning a block, so a
		// block compiled inside the current window is not thrashed.
		floor := p.jit.floor.Load()
		for t.Instret < limit {
			pc := t.PC
			pg := uint64(pc) / PageSize
			off := int(pc & (PageSize - 1))
			var jp *jitPage
			if pg < uint64(len(jpages)) {
				jp = jpages[pg].Load()
			}
			if jp != nil {
				if b := jp.blocks[off].Load(); b != nil {
					stale := b.epoch < floor
					if stale {
						floor = p.jit.floor.Load()
						stale = b.epoch < floor
					}
					if stale {
						// Compiled before the last full update
						// transaction: drop it and re-profile, so stale
						// code bytes or pre-bound state can never
						// execute.
						jp.blocks[off].CompareAndSwap(b, nil)
						jp.counts[off].Store(0)
						p.jit.discards.Add(1)
					} else if t.Instret+b.maxRetire <= blockBudget {
						t.JITBlockRuns++
						if err := t.runBlock(b); err != nil {
							return err
						}
						atStart = true
						continue
					}
					// Within maxRetire of the budget: single-step the
					// tail so exhaustion lands on the exact instruction.
				}
			}
			// Cold path: threaded dispatch plus block-start profiling.
			t.JITColdSteps++
			if pg < uint64(len(icache)) {
				if c := icache[pg].Load(); c != nil {
					if atomic.LoadUint32(&c.valid[off>>5])&(uint32(1)<<(off&31)) != 0 {
						if atStart {
							if jp == nil {
								jp = p.jitPageAt(pg)
							}
							if jp.counts[off].Add(1) == uint32(threshold) {
								if b := p.compileBlock(pc); b != nil {
									jp.blocks[off].Store(b)
								}
							}
						}
						s := &c.slots[off]
						if err := s.fn(t, &s.ins, pc, pc+int64(s.size)); err != nil {
							return err
						}
						atStart = t.PC != pc+int64(s.size)
						continue
					}
				}
			}
			// Miss: check executability, fill the slot, dispatch once
			// from the fill result (as runThreaded).
			if p.Prot(pc)&visa.ProtExec == 0 {
				return t.fault(FaultExec, "pc %#x not executable", pc)
			}
			ins, size, err := p.cacheFill(pc)
			if err != nil {
				return t.fault(FaultDecode, "%v", err)
			}
			if err := opFuncs[ins.Op](t, ins, pc, pc+int64(size)); err != nil {
				return err
			}
			atStart = t.PC != pc+int64(size)
		}
	}
}

// terminatesBlock reports whether an instruction unconditionally ends
// a compiled trace: any unpredictable control transfer (indirect
// branch, call, return), the syscall gate (the handler may redirect
// PC), and the fused check superinstructions (they manage PC
// themselves, including the retry-exhaustion loop back to the
// transaction start). Conditional branches and direct jumps do NOT
// terminate: the compiler follows their fall-through / target edge.
func terminatesBlock(op visa.Op) bool {
	switch op {
	case visa.CALL, visa.CALLR, visa.JMPR, visa.RET,
		visa.SYS, visa.HLT, visa.JRESTORE,
		opFusedCheck, opFusedCheckPLT:
		return true
	}
	return false
}

// maxRetireOf bounds how many guest instructions one step of the
// given opcode can retire. Fused checks are bounded by their
// host-side retry cap plus the pass tail and folded branch span; the
// bounds are deliberately conservative (an overestimate only makes
// the dispatcher single-step a little earlier near the budget).
func maxRetireOf(op visa.Op) int64 {
	switch op {
	case opFusedCheck:
		return 8*maxFusedRetries + 16
	case opFusedCheckPLT:
		return 11*maxFusedRetries + 16
	case opTraceMaskStore:
		return 2
	}
	return 1
}

// fetchForCompile decodes the instruction at pc exactly as the
// threaded fill path would — fused check superinstructions and trace
// pairs included — without publishing into the icache, so compiled
// blocks retire the identical instruction stream.
func (p *Process) fetchForCompile(pc int64) (visa.Instr, int, bool) {
	if pc < 0 || pc >= int64(len(p.Mem)) || p.Prot(pc)&visa.ProtExec == 0 {
		return visa.Instr{}, 0, false
	}
	if ins, n, ok := p.tryFuse(pc); ok {
		return ins, n, true
	}
	ins, n, err := visa.Decode(p.Mem, int(pc))
	if err != nil {
		return visa.Instr{}, 0, false
	}
	ins, n = p.tryFuseTrace(ins, n, pc)
	return ins, n, true
}

// compileBlock compiles the trace starting at pc into a
// compiledBlock, or returns nil when there is nothing to compile
// (e.g. the start raced an invalidation). The epoch is read before
// any byte: Protect bumps it after changing code, so a block compiled
// from bytes that moved underneath it is stale on arrival and never
// dispatched.
func (p *Process) compileBlock(start int64) *compiledBlock {
	t0 := time.Now()
	epoch := p.fused.epoch.Load()
	pageEnd := (start/PageSize + 1) * PageSize

	var steps []blockStep
	var maxRetire int64
	pending := int64(0) // pure-step retires deferred to the next effect
	pc := start
	done := false

	for !done && len(steps) < maxBlockSteps && pc < pageEnd {
		ins, n, ok := p.fetchForCompile(pc)
		if !ok {
			break
		}
		next := pc + int64(n)

		if ins.Op == visa.JMP {
			target := next + ins.Imm
			if ins.Imm >= 0 && target < pageEnd {
				// Forward jump within the page: fold it away and keep
				// compiling at the target (it retires one instruction).
				pending++
				maxRetire++
				pc = target
				continue
			}
			// Backward or page-leaving jump: pre-bound target.
			steps = append(steps, blockStep{kind: kJmp, imm: target, pending: pending + 1})
			maxRetire += pending + 1
			pending = 0
			done = true
			break
		}

		if cc := jccCond[ins.Op]; cc != 0 {
			// Lone conditional branch (flags set by an earlier step or
			// before block entry): the block continues on the
			// fall-through edge; a taken branch exits early.
			steps = append(steps, blockStep{
				kind: kJcc, cc: cc - 1,
				pc: next, next: next + ins.Imm, pending: pending + 1,
			})
			maxRetire += pending + 1
			pending = 0
			pc = next
			continue
		}

		if terminatesBlock(ins.Op) {
			if ins.Op == visa.CALL {
				steps = append(steps, blockStep{
					kind: kCall, pc: pc, next: next,
					imm: next + ins.Imm, pending: pending + 1,
				})
				maxRetire += pending + 1
			} else {
				steps = append(steps, blockStep{
					kind: kHandler, h: opFuncs[ins.Op], ins: ins,
					pc: pc, next: next, pending: pending,
				})
				maxRetire += pending + maxRetireOf(ins.Op)
			}
			pending = 0
			done = true
			break
		}

		if ins.Op == visa.NOP {
			// Retires but has no effect: fold into the pending count.
			pending++
			maxRetire++
			pc = next
			continue
		}

		if kind, isPure := pureKind(ins.Op); isPure {
			// Peephole: compare + conditional branch. The flag setter
			// and the jcc consuming it become one step evaluating the
			// condition against pre-bound taken/fallthrough targets.
			if j, jn, ok2 := p.fetchForCompile(next); ok2 && next < pageEnd &&
				rewrite.IsCmpJccPair(ins, j) {
				fall := next + int64(jn)
				s := blockStep{
					cc: jccCond[j.Op] - 1, r1: ins.R1, r2: ins.R2, imm: ins.Imm,
					pc: fall, next: fall + j.Imm, pending: pending + 2,
				}
				switch ins.Op {
				case visa.CMP:
					s.kind = kCmpRRJcc
				case visa.CMPI:
					s.kind = kCmpRIJcc
				default:
					// Wider flag setters (CMPW, TESTB, FCMP) keep their
					// own micro-op followed by the branch step.
					steps = append(steps, bindPureStep(kind, ins))
					s = blockStep{
						kind: kJcc, cc: jccCond[j.Op] - 1,
						pc: fall, next: fall + j.Imm, pending: pending + 2,
					}
				}
				steps = append(steps, s)
				maxRetire += pending + 2
				pending = 0
				pc = fall
				continue
			}
			steps = append(steps, bindPureStep(kind, ins))
			pending++
			maxRetire++
			pc = next
			continue
		}

		// Peephole: load + register ALU op consuming the loaded value.
		// The load delegates to its threaded handler (exact fault PC
		// and the clobber-on-fault quirk); the ALU half runs inline.
		if o2, n2, ok2 := p.fetchForCompile(next); ok2 && next < pageEnd &&
			rewrite.IsLoadOpPair(ins, o2) {
			if aluKind, okp := pureKind(o2.Op); okp {
				after := next + int64(n2)
				steps = append(steps, blockStep{
					kind: kLoadOp, cc: aluKind, r1: o2.R1, r2: o2.R2,
					h: opFuncs[ins.Op], ins: ins,
					pc: pc, next: next, imm: after, pending: pending,
				})
				maxRetire += pending + 2
				pending = 0
				pc = after
				continue
			}
		}

		// Plain load/store: its handler body runs inline as a memory
		// micro-op (same t.load/t.store path, exact fault semantics).
		if kind, isMem := memKind(ins.Op); isMem {
			steps = append(steps, blockStep{
				kind: kind, r1: ins.R1, r2: ins.R2, imm: ins.Imm,
				pc: pc, next: next, pending: pending,
			})
			maxRetire += pending + 1
			pending = 0
			pc = next
			continue
		}

		// Effect step: delegate to the threaded handler (exact fault
		// semantics); the block loop credits pending and restores PC.
		steps = append(steps, blockStep{
			kind: kHandler, h: opFuncs[ins.Op], ins: ins,
			pc: pc, next: next, pending: pending,
		})
		maxRetire += pending + maxRetireOf(ins.Op)
		pending = 0
		pc = next
	}

	// Fall-through exit (page boundary, step cap, or undecodable
	// successor): credit any deferred retires and land PC on the next
	// instruction. When pending is zero the last step already set PC.
	if !done && pending > 0 {
		steps = append(steps, blockStep{kind: kEnd, pc: pc, pending: pending})
	}
	if len(steps) == 0 {
		return nil
	}

	p.jit.compiled.Add(1)
	p.jit.compileNanos.Add(time.Since(t0).Nanoseconds())
	return &compiledBlock{epoch: epoch, steps: steps, maxRetire: maxRetire}
}
