// Package vm implements the VISA virtual machine: a flat guest address
// space with page protections, a register-file interpreter, and the
// MCFI table-access instructions wired to the shared ID tables.
//
// The VM is the reproduction's stand-in for the CPU and MMU. Two
// properties matter for fidelity. First, the ID-table instructions
// (TLOAD/TLOADI) perform single atomic 32-bit loads against
// tables.Tables, so guest check transactions genuinely race against
// host-side update transactions, as in the paper's multithreaded
// setting. Second, the interpreter counts retired instructions, which
// is the deterministic cost metric behind the Fig. 5/6 overhead
// experiments (extra executed instrumentation = overhead).
//
// The fetch engines — one per rung of the perf ladder, enumerated by
// Engines() in cache.go — all retire the exact same instruction
// stream, so the cost metric is engine-independent: EngineInterp
// decodes raw bytes every step; EngineCached predecodes each
// instruction once per executable-page generation; EngineFused adds
// check-transaction superinstructions (fused.go); EngineThreaded, the
// default, dispatches through per-slot func pointers with branch
// folding and trace superinstructions (threaded.go); EngineBlockJIT
// compiles hot straight-line blocks into composed closures
// (blockjit.go).
package vm

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"mcfi/internal/rewrite"
	"mcfi/internal/tables"
	"mcfi/internal/visa"
)

// PageSize is the protection granularity.
const PageSize = 4096

// FaultKind classifies execution faults.
type FaultKind int

// Fault kinds.
const (
	// FaultCFI is a halted check transaction: a control-flow-integrity
	// violation detected by MCFI instrumentation (the hlt of Fig. 4).
	FaultCFI FaultKind = iota
	// FaultDecode is an attempt to execute an invalid encoding.
	FaultDecode
	// FaultMem is an out-of-range or permission-violating access.
	FaultMem
	// FaultExec is execution of non-executable memory.
	FaultExec
	// FaultArith is a division by zero.
	FaultArith
	// FaultSys is an invalid system call.
	FaultSys
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultCFI:
		return "CFI violation"
	case FaultDecode:
		return "invalid instruction"
	case FaultMem:
		return "memory fault"
	case FaultExec:
		return "exec fault"
	case FaultArith:
		return "arithmetic fault"
	case FaultSys:
		return "bad syscall"
	}
	return "fault"
}

// CheckKind classifies which MCFI check template raised a CFI fault,
// for the security audit log.
type CheckKind int

// Check kinds.
const (
	// CheckDirect is a raw hlt retired outside any registered check
	// transaction — straight-line execution ran into rewritten padding
	// or a corrupted code span.
	CheckDirect CheckKind = iota
	// CheckIndirect is the canonical Fig. 4 check transaction halting
	// on an indirect branch target the tables refuse.
	CheckIndirect
	// CheckPLT is the PLT-stub (GOT-reloading) check variant.
	CheckPLT
)

// String names the check kind as it appears in audit records.
func (k CheckKind) String() string {
	switch k {
	case CheckIndirect:
		return "indirect"
	case CheckPLT:
		return "plt"
	}
	return "direct"
}

// Fault is a guest execution fault.
type Fault struct {
	Kind FaultKind
	PC   int64
	Msg  string
	// Check and Target classify FaultCFI for the audit log: the check
	// template that halted and the masked branch target it refused
	// (zero for a direct hlt and for non-CFI kinds). They do not
	// appear in Error(), so engine-differential comparisons of error
	// strings are unaffected.
	Check  CheckKind
	Target int64
}

func (f *Fault) Error() string {
	return fmt.Sprintf("%s at pc=%#x: %s", f.Kind, f.PC, f.Msg)
}

// ErrExited is returned by Run when the process has exited normally.
var ErrExited = fmt.Errorf("vm: process exited")

// ErrCancelled is returned by Run when the process was cancelled from
// the host side (Process.Cancel) — a timeout or shutdown, NOT a CFI
// fault: callers that classify outcomes by FaultKind must test for it
// with errors.Is before inspecting *Fault.
var ErrCancelled = fmt.Errorf("vm: execution cancelled")

// ErrBudget is the sentinel wrapped by Run's instruction-budget error;
// match it with errors.Is to distinguish budget exhaustion from
// faults.
var ErrBudget = fmt.Errorf("vm: instruction budget exhausted")

// SyscallHandler executes SYS instructions on behalf of a thread. It
// is the MCFI runtime's system-call interposition hook.
type SyscallHandler interface {
	Syscall(t *Thread, num int) error
}

// Process is one guest address space plus shared execution state.
type Process struct {
	// Mem is the flat guest memory: [0, SandboxSize) plus the guard
	// band.
	Mem []byte
	// perms holds per-page protection bits, accessed atomically so the
	// dynamic linker can flip page protections while threads run.
	perms []uint32

	// Tables is the MCFI table region (nil for baseline builds).
	Tables *tables.Tables

	// Handler interposes on system calls.
	Handler SyscallHandler

	// engine selects the fetch implementation (default EngineThreaded);
	// icache is the per-page predecoded instruction cache it uses.
	engine Engine
	icache []atomic.Pointer[pageCache]

	// fused holds the registered check-transaction sites, their verdict
	// cache, and the invalidation epoch (see fused.go).
	fused fusedState

	// jit holds the block compiler's profiling counters, compiled
	// blocks, and threshold (EngineBlockJIT; see blockjit.go).
	jit jitState

	exited   atomic.Bool
	exitCode atomic.Int64
	instret  atomic.Int64

	// cancelled is the host-side stop flag (timeouts, shutdown): every
	// thread's Run loop polls it at the flush cadence and returns
	// ErrCancelled. cancelCh is closed on the first Cancel so host-side
	// blocking points (e.g. the runtime's join syscall) can select on
	// cancellation instead of polling.
	cancelled  atomic.Bool
	cancelOnce sync.Once
	cancelCh   chan struct{}

	// Process-wide check-transaction counters, flushed from the
	// per-thread fields at the same watermark cadence as instret (so
	// the hot loop never touches shared cache lines) and read lock-free
	// by serving metrics. checkHalts counts CFI faults and is bumped
	// directly at fault construction — violations are terminal, so
	// contention is irrelevant there.
	checkExecs  atomic.Int64
	checkHalts  atomic.Int64
	verdictHits atomic.Int64
	pltExecs    atomic.Int64

	// icacheFills counts cold predecodes into the per-page instruction
	// cache — the cache-miss side of the perf ladder, exported for
	// tracing (a first run on a replica shows a fill burst; a warm
	// verdict-cached run shows none).
	icacheFills atomic.Int64

	// nextTID hands out thread ids; threads tracks live ones.
	nextTID  atomic.Int64
	mu       sync.Mutex
	joinable map[int64]chan int64
}

// NewProcess allocates a guest address space.
func NewProcess() *Process {
	size := visa.SandboxSize + visa.GuardSize
	p := &Process{
		Mem:      make([]byte, size),
		perms:    make([]uint32, size/PageSize),
		icache:   make([]atomic.Pointer[pageCache], size/PageSize),
		joinable: map[int64]chan int64{},
		cancelCh: make(chan struct{}),
	}
	p.jit.pages = make([]atomic.Pointer[jitPage], size/PageSize)
	return p
}

// Protect sets protection bits on [addr, addr+size). Every W^X
// transition flows through here (the runtime's mmap/mprotect analogue
// and the dlopen load path), so it also drops the predecoded
// instruction cache of the affected pages — before the permission
// flip, so no thread can fill a cache against bytes about to change,
// and after it, so entries decoded from the old bytes cannot survive
// the transition.
func (p *Process) Protect(addr, size int64, prot uint32) {
	first := addr / PageSize
	last := (addr + size + PageSize - 1) / PageSize
	p.invalidate(first, last)
	for pg := first; pg < last && pg < int64(len(p.perms)); pg++ {
		atomic.StoreUint32(&p.perms[pg], prot)
	}
	p.invalidate(first, last)
	// Code (and so the meaning of a cached check verdict) may have
	// changed across the transition — but only inside [addr,
	// addr+size), so condemn blocks and verdicts per-extent rather
	// than flushing the whole block compiler; a dlopen then costs the
	// new module's pages, not every hot block in the program.
	p.BumpCheckEpochExtent(addr, addr+size)
}

// Prot returns the protection bits of the page containing addr.
func (p *Process) Prot(addr int64) uint32 {
	pg := addr / PageSize
	if pg < 0 || pg >= int64(len(p.perms)) {
		return 0
	}
	return atomic.LoadUint32(&p.perms[pg])
}

// CheckWX reports whether any page is both writable and executable —
// the invariant MCFI's runtime maintains (paper §4).
func (p *Process) CheckWX() error {
	for pg := range p.perms {
		pr := atomic.LoadUint32(&p.perms[pg])
		if pr&visa.ProtWrite != 0 && pr&visa.ProtExec != 0 {
			return fmt.Errorf("vm: page %#x is writable and executable", pg*PageSize)
		}
	}
	return nil
}

// Exit marks the process exited with the given code.
func (p *Process) Exit(code int64) {
	p.exitCode.Store(code)
	p.exited.Store(true)
}

// Exited reports whether the process has exited, and its code.
func (p *Process) Exited() (bool, int64) {
	return p.exited.Load(), p.exitCode.Load()
}

// Cancel requests that every thread of the process stop executing:
// each Run loop observes the flag within its poll window (at most 1024
// retired instructions) and returns ErrCancelled. Idempotent and safe
// from any goroutine; this is how host-side timeouts interrupt a guest
// mid-execution.
func (p *Process) Cancel() {
	p.cancelled.Store(true)
	p.cancelOnce.Do(func() { close(p.cancelCh) })
}

// Cancelled reports whether Cancel has been called.
func (p *Process) Cancelled() bool { return p.cancelled.Load() }

// CancelChan returns a channel closed on the first Cancel, for
// host-side code that blocks on guest progress (e.g. thread join) and
// must also unblock on cancellation.
func (p *Process) CancelChan() <-chan struct{} { return p.cancelCh }

// CheckStats is a lock-free snapshot of the process's MCFI
// check-transaction counters (the serving /metrics source).
type CheckStats struct {
	// Execs counts fused check transactions executed (EngineFused
	// superinstruction dispatches; the other engines retire checks as
	// ordinary instructions and do not count here).
	Execs int64
	// Halts counts halted checks — CFI faults — under every engine.
	Halts int64
	// VerdictHits counts fused checks served from the per-site verdict
	// cache without touching the tables; Misses is the remainder.
	VerdictHits   int64
	VerdictMisses int64
	// PLTExecs counts the subset of Execs that ran the PLT-stub check
	// template (the GOT-reloading variant) — the observable proof that
	// dynamically linked call sites execute fused rather than falling
	// back to per-instruction stepping.
	PLTExecs int64
	// ICacheFills counts cold predecodes into the per-page instruction
	// cache (zero under EngineInterp, which never caches).
	ICacheFills int64
	// Block-compiler counters (EngineBlockJIT; zero elsewhere).
	// JITBlocks counts blocks compiled and JITCompileNanos the host
	// time spent compiling them; JITBlockRuns counts compiled-block
	// dispatches and JITColdSteps single-instruction (cold or
	// budget-edge) dispatches, so hot/cold ratio is
	// BlockRuns/(BlockRuns+ColdSteps); JITDiscards counts blocks
	// dropped at dispatch because the check epoch moved.
	JITBlocks       int64
	JITCompileNanos int64
	JITBlockRuns    int64
	JITColdSteps    int64
	JITDiscards     int64
}

// CheckStatsSnapshot reads the process-wide counters. Threads flush at
// the same watermark cadence as instret, so in-flight deltas (< 1024
// instructions per running thread) may be missing; after Run returns
// the totals are exact.
func (p *Process) CheckStatsSnapshot() CheckStats {
	execs := p.checkExecs.Load()
	hits := p.verdictHits.Load()
	return CheckStats{
		Execs:           execs,
		Halts:           p.checkHalts.Load(),
		VerdictHits:     hits,
		VerdictMisses:   execs - hits,
		PLTExecs:        p.pltExecs.Load(),
		ICacheFills:     p.icacheFills.Load(),
		JITBlocks:       p.jit.compiled.Load(),
		JITCompileNanos: p.jit.compileNanos.Load(),
		JITBlockRuns:    p.jit.blockRuns.Load(),
		JITColdSteps:    p.jit.coldSteps.Load(),
		JITDiscards:     p.jit.discards.Load(),
	}
}

// Instret returns the total retired instruction count across all
// threads that have reported so far (threads flush periodically and on
// completion).
func (p *Process) Instret() int64 { return p.instret.Load() }

// PendingInstret returns instructions retired by this thread but not
// yet flushed to the process-wide counter, so
// P.Instret()+t.PendingInstret() counts this thread exactly regardless
// of the engine's flush cadence.
func (t *Thread) PendingInstret() int64 { return t.Instret - t.flushed }

// RegisterThread allocates a thread id and its join channel.
func (p *Process) RegisterThread() (int64, chan int64) {
	tid := p.nextTID.Add(1)
	ch := make(chan int64, 1)
	p.mu.Lock()
	p.joinable[tid] = ch
	p.mu.Unlock()
	return tid, ch
}

// JoinChan returns the join channel for a thread id.
func (p *Process) JoinChan(tid int64) (chan int64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ch, ok := p.joinable[tid]
	return ch, ok
}

// Thread is one virtual CPU.
type Thread struct {
	P *Process
	// Reg is the register file. Architecturally only the first
	// visa.NumRegs entries exist — visa.Decode rejects any register
	// operand >= NumRegs — but the array is sized so a decoded byte
	// operand indexes it without a bounds check in the hot dispatch
	// loop.
	Reg [256]int64
	PC  int64

	// comparison flags (operands of the last CMP-style instruction).
	fa, fb   int64
	ffa, ffb float64
	fFloat   bool

	// Instret counts instructions retired by this thread.
	Instret int64
	// flushed is the portion of Instret already added to the
	// process-wide counter (Run's periodic flush watermark).
	flushed int64

	// FusedExecs counts fused check transactions executed by this
	// thread; FusedVerdictHits counts the subset served from the
	// verdict cache without touching the tables; FusedPLTExecs the
	// subset that ran the PLT-stub template. All flush to the
	// process-wide counters at the instret watermark cadence.
	FusedExecs       int64
	FusedVerdictHits int64
	FusedPLTExecs    int64
	flushedExecs     int64
	flushedHits      int64
	flushedPLT       int64

	// JITBlockRuns counts compiled-block dispatches by this thread;
	// JITColdSteps counts its single-instruction dispatches under
	// EngineBlockJIT. Flushed at the same watermark cadence.
	JITBlockRuns     int64
	JITColdSteps     int64
	flushedBlockRuns int64
	flushedColdSteps int64
}

// NewThread creates a thread with its stack pointer set.
func (p *Process) NewThread(pc, sp int64) *Thread {
	t := &Thread{P: p, PC: pc}
	t.Reg[visa.SP] = sp
	return t
}

func (t *Thread) fault(kind FaultKind, format string, args ...interface{}) error {
	if kind == FaultCFI {
		t.P.checkHalts.Add(1)
	}
	return &Fault{Kind: kind, PC: t.PC, Msg: fmt.Sprintf(format, args...)}
}

// cfiFault builds a classified CFI fault: the check template that
// halted plus the masked branch target it refused, for the audit log.
// It bumps checkHalts itself — callers must not also go through fault.
func (t *Thread) cfiFault(check CheckKind, target int64, format string, args ...interface{}) error {
	t.P.checkHalts.Add(1)
	return &Fault{
		Kind: FaultCFI, PC: t.PC, Msg: fmt.Sprintf(format, args...),
		Check: check, Target: target,
	}
}

// cfiHalt classifies a plain hlt retirement by position. The
// non-fusing engines execute check transactions as ordinary
// instructions, so a halted check surfaces here as a hlt at a known
// offset inside a registered site; a hlt anywhere else is a direct
// control transfer into rewritten padding. Classification keeps the
// Fault identical across engines (the differential tests compare
// faults, and the audit log must not depend on the engine).
func (t *Thread) cfiHalt() error {
	check, target := t.classifyHalt()
	return t.cfiFault(check, target, "hlt")
}

func (t *Thread) classifyHalt() (CheckKind, int64) {
	pc := t.PC
	if _, s := t.P.fusedSiteAt(pc - rewrite.CheckHaltOffset); s != nil && s.gotAddr.Load() < 0 {
		return CheckIndirect, int64(uint32(t.Reg[visa.R11]))
	}
	if _, s := t.P.fusedSiteAt(pc - rewrite.PLTCheckHaltOffset); s != nil && s.gotAddr.Load() >= 0 {
		return CheckPLT, int64(uint32(t.Reg[visa.R11]))
	}
	return CheckDirect, 0
}

// memRange validates [addr, addr+n) and required protection.
func (t *Thread) memCheck(addr int64, n int64, prot uint32) error {
	if addr < 0 || addr+n > int64(len(t.P.Mem)) {
		return t.fault(FaultMem, "access %#x+%d out of range", addr, n)
	}
	if t.P.Prot(addr)&prot == 0 {
		return t.fault(FaultMem, "access %#x lacks prot %d", addr, prot)
	}
	return nil
}

func (t *Thread) load(addr int64, size int) (uint64, error) {
	if err := t.memCheck(addr, int64(size), visa.ProtRead); err != nil {
		return 0, err
	}
	var v uint64
	m := t.P.Mem[addr:]
	switch size {
	case 1:
		v = uint64(m[0])
	case 2:
		v = uint64(m[0]) | uint64(m[1])<<8
	case 4:
		v = uint64(m[0]) | uint64(m[1])<<8 | uint64(m[2])<<16 | uint64(m[3])<<24
	case 8:
		for i := 0; i < 8; i++ {
			v |= uint64(m[i]) << (8 * i)
		}
	}
	return v, nil
}

func (t *Thread) store(addr int64, size int, v uint64) error {
	if err := t.memCheck(addr, int64(size), visa.ProtWrite); err != nil {
		return err
	}
	m := t.P.Mem[addr:]
	switch size {
	case 1:
		m[0] = byte(v)
	case 2:
		m[0], m[1] = byte(v), byte(v>>8)
	case 4:
		m[0], m[1], m[2], m[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	case 8:
		for i := 0; i < 8; i++ {
			m[i] = byte(v >> (8 * i))
		}
	}
	return nil
}

func (t *Thread) push(v int64) error {
	t.Reg[visa.SP] -= 8
	return t.store(t.Reg[visa.SP], 8, uint64(v))
}

func (t *Thread) pop() (int64, error) {
	v, err := t.load(t.Reg[visa.SP], 8)
	if err != nil {
		return 0, err
	}
	t.Reg[visa.SP] += 8
	return int64(v), nil
}

// cond evaluates a condition code against the flags.
func (t *Thread) cond(cc byte) bool {
	if t.fFloat {
		a, b := t.ffa, t.ffb
		switch cc {
		case visa.CcE:
			return a == b
		case visa.CcNE:
			return a != b
		case visa.CcL, visa.CcB:
			return a < b
		case visa.CcG, visa.CcA:
			return a > b
		case visa.CcLE, visa.CcBE:
			return a <= b
		case visa.CcGE, visa.CcAE:
			return a >= b
		}
		return false
	}
	a, b := t.fa, t.fb
	switch cc {
	case visa.CcE:
		return a == b
	case visa.CcNE:
		return a != b
	case visa.CcL:
		return a < b
	case visa.CcG:
		return a > b
	case visa.CcLE:
		return a <= b
	case visa.CcGE:
		return a >= b
	case visa.CcB:
		return uint64(a) < uint64(b)
	case visa.CcA:
		return uint64(a) > uint64(b)
	case visa.CcBE:
		return uint64(a) <= uint64(b)
	case visa.CcAE:
		return uint64(a) >= uint64(b)
	}
	return false
}

var jccToCond = map[visa.Op]byte{
	visa.JE: visa.CcE, visa.JNE: visa.CcNE, visa.JL: visa.CcL,
	visa.JG: visa.CcG, visa.JLE: visa.CcLE, visa.JGE: visa.CcGE,
	visa.JB: visa.CcB, visa.JA: visa.CcA, visa.JBE: visa.CcBE,
	visa.JAE: visa.CcAE,
}

// jccCond is the dense version of jccToCond for the interpreter loop.
var jccCond [256]byte

func init() {
	for op, cc := range jccToCond {
		jccCond[op] = cc + 1 // 0 means "not a jcc"
	}
}

// flushCounters publishes this thread's retired-instruction and check
// counters to the process-wide atomics (the watermark flush).
func (t *Thread) flushCounters() {
	t.P.instret.Add(t.Instret - t.flushed)
	t.flushed = t.Instret
	t.P.checkExecs.Add(t.FusedExecs - t.flushedExecs)
	t.flushedExecs = t.FusedExecs
	t.P.verdictHits.Add(t.FusedVerdictHits - t.flushedHits)
	t.flushedHits = t.FusedVerdictHits
	t.P.pltExecs.Add(t.FusedPLTExecs - t.flushedPLT)
	t.flushedPLT = t.FusedPLTExecs
	t.P.jit.blockRuns.Add(t.JITBlockRuns - t.flushedBlockRuns)
	t.flushedBlockRuns = t.JITBlockRuns
	t.P.jit.coldSteps.Add(t.JITColdSteps - t.flushedColdSteps)
	t.flushedColdSteps = t.JITColdSteps
}

// Run executes until process exit, cancellation, a fault, or maxInstr
// instructions (0 = unlimited). It returns ErrExited on clean process
// exit, ErrCancelled if Process.Cancel interrupted the run, and an
// error wrapping ErrBudget when the instruction budget runs out.
//
// The flush/poll cadence uses a watermark rather than Instret%1024: a
// fused step retires several guest instructions at once, so Instret
// skips values and an exact-multiple test would miss flushes.
func (t *Thread) Run(maxInstr int64) error {
	defer t.flushCounters()
	switch t.P.engine {
	case EngineThreaded:
		return t.runThreaded(maxInstr)
	case EngineBlockJIT:
		return t.runBlockJIT(maxInstr)
	}
	poll := true
	for {
		if maxInstr > 0 && t.Instret >= maxInstr {
			return fmt.Errorf("%w (limit %d)", ErrBudget, maxInstr)
		}
		if poll || t.Instret-t.flushed >= 1024 {
			if t.P.exited.Load() {
				return ErrExited
			}
			if t.P.cancelled.Load() {
				return ErrCancelled
			}
			t.flushCounters()
			poll = false
		}
		if err := t.Step(); err != nil {
			return err
		}
	}
}

// Step executes one instruction.
func (t *Thread) Step() error {
	pc := t.PC
	var ins *visa.Instr
	var size int
	if t.P.engine != EngineInterp {
		// Fast path: a valid cache entry implies the page was
		// executable when it was filled and no protection transition
		// has happened since (Protect invalidates on every call), so
		// the per-step Prot check is skipped entirely.
		var ok bool
		ins, size, ok = t.P.cacheHit(pc)
		if !ok {
			if t.P.Prot(pc)&visa.ProtExec == 0 {
				return t.fault(FaultExec, "pc %#x not executable", pc)
			}
			var err error
			ins, size, err = t.P.cacheFill(pc)
			if err != nil {
				return t.fault(FaultDecode, "%v", err)
			}
		}
	} else {
		if t.P.Prot(pc)&visa.ProtExec == 0 {
			return t.fault(FaultExec, "pc %#x not executable", pc)
		}
		i, n, err := visa.Decode(t.P.Mem, int(pc))
		if err != nil {
			return t.fault(FaultDecode, "%v", err)
		}
		ins, size = &i, n
	}
	next := pc + int64(size)
	t.Instret++

	r := &t.Reg
	switch ins.Op {
	case visa.NOP:
	case visa.HLT:
		return t.cfiHalt()
	case opFusedCheck:
		// The fused check transaction manages PC, flags, and Instret
		// itself (Instret++ above covered its leading and32).
		return t.stepFused(pc, ins)
	case opFusedCheckPLT:
		// PLT variant: Instret++ above covered the stub's leading movi.
		return t.stepFusedPLT(pc, ins)
	case opTraceMaskStore:
		// Fused sandbox-mask + store pair: Instret++ above covered the
		// andi; the handler retires and performs the store.
		return t.stepTraceMaskStore(ins, next)
	case visa.MOVI:
		r[ins.R1] = ins.Imm
	case visa.MOV:
		r[ins.R1] = r[ins.R2]
	case visa.LD8, visa.LD16, visa.LD32, visa.LD64, visa.LD8U, visa.LD16U, visa.LD32U:
		var v uint64
		var err error
		addr := r[ins.R2] + ins.Imm
		switch ins.Op {
		case visa.LD8:
			v, err = t.load(addr, 1)
			r[ins.R1] = int64(int8(v))
		case visa.LD8U:
			v, err = t.load(addr, 1)
			r[ins.R1] = int64(uint8(v))
		case visa.LD16:
			v, err = t.load(addr, 2)
			r[ins.R1] = int64(int16(v))
		case visa.LD16U:
			v, err = t.load(addr, 2)
			r[ins.R1] = int64(uint16(v))
		case visa.LD32:
			v, err = t.load(addr, 4)
			r[ins.R1] = int64(int32(v))
		case visa.LD32U:
			v, err = t.load(addr, 4)
			r[ins.R1] = int64(uint32(v))
		case visa.LD64:
			v, err = t.load(addr, 8)
			r[ins.R1] = int64(v)
		}
		if err != nil {
			return err
		}
	case visa.ST8, visa.ST16, visa.ST32, visa.ST64:
		addr := r[ins.R2] + ins.Imm
		var sz int
		switch ins.Op {
		case visa.ST8:
			sz = 1
		case visa.ST16:
			sz = 2
		case visa.ST32:
			sz = 4
		case visa.ST64:
			sz = 8
		}
		if err := t.store(addr, sz, uint64(r[ins.R1])); err != nil {
			return err
		}
	case visa.ADD:
		r[ins.R1] += r[ins.R2]
	case visa.SUB:
		r[ins.R1] -= r[ins.R2]
	case visa.MUL:
		r[ins.R1] *= r[ins.R2]
	case visa.DIV:
		if r[ins.R2] == 0 {
			return t.fault(FaultArith, "division by zero")
		}
		r[ins.R1] /= r[ins.R2]
	case visa.MOD:
		if r[ins.R2] == 0 {
			return t.fault(FaultArith, "mod by zero")
		}
		r[ins.R1] %= r[ins.R2]
	case visa.UDIV:
		if r[ins.R2] == 0 {
			return t.fault(FaultArith, "division by zero")
		}
		r[ins.R1] = int64(uint64(r[ins.R1]) / uint64(r[ins.R2]))
	case visa.UMOD:
		if r[ins.R2] == 0 {
			return t.fault(FaultArith, "mod by zero")
		}
		r[ins.R1] = int64(uint64(r[ins.R1]) % uint64(r[ins.R2]))
	case visa.AND:
		r[ins.R1] &= r[ins.R2]
	case visa.OR:
		r[ins.R1] |= r[ins.R2]
	case visa.XOR:
		r[ins.R1] ^= r[ins.R2]
	case visa.SHL:
		r[ins.R1] <<= uint64(r[ins.R2]) & 63
	case visa.SHR:
		r[ins.R1] = int64(uint64(r[ins.R1]) >> (uint64(r[ins.R2]) & 63))
	case visa.SAR:
		r[ins.R1] >>= uint64(r[ins.R2]) & 63
	case visa.NEG:
		r[ins.R1] = -r[ins.R1]
	case visa.NOTI:
		r[ins.R1] = ^r[ins.R1]
	case visa.ADDI:
		r[ins.R1] += ins.Imm
	case visa.CMP:
		t.fa, t.fb, t.fFloat = r[ins.R1], r[ins.R2], false
	case visa.CMPI:
		t.fa, t.fb, t.fFloat = r[ins.R1], ins.Imm, false
	case visa.CMPW:
		t.fa, t.fb, t.fFloat = r[ins.R1]&0xFFFF, r[ins.R2]&0xFFFF, false
	case visa.TESTB:
		t.fa, t.fb, t.fFloat = r[ins.R1]&ins.Imm&0xFF, 0, false
	case visa.JMP:
		next += ins.Imm
	case visa.JE, visa.JNE, visa.JL, visa.JG, visa.JLE, visa.JGE,
		visa.JB, visa.JA, visa.JBE, visa.JAE:
		// handled by the jccCond table below
	case visa.CALL:
		if err := t.push(next); err != nil {
			return err
		}
		next += ins.Imm
	case visa.CALLR:
		if err := t.push(next); err != nil {
			return err
		}
		next = r[ins.R1]
	case visa.JMPR:
		next = r[ins.R1]
	case visa.RET:
		v, err := t.pop()
		if err != nil {
			return err
		}
		next = v
	case visa.PUSH:
		if err := t.push(r[ins.R1]); err != nil {
			return err
		}
	case visa.POP:
		v, err := t.pop()
		if err != nil {
			return err
		}
		r[ins.R1] = v
	case visa.SYS:
		if t.P.Handler == nil {
			return t.fault(FaultSys, "no syscall handler")
		}
		t.PC = next // handlers observe the continuation PC
		if err := t.P.Handler.Syscall(t, int(ins.Imm)); err != nil {
			return err
		}
		if t.P.exited.Load() {
			return ErrExited
		}
		next = t.PC
	case visa.FADD:
		t.fop(ins, func(a, b float64) float64 { return a + b })
	case visa.FSUB:
		t.fop(ins, func(a, b float64) float64 { return a - b })
	case visa.FMUL:
		t.fop(ins, func(a, b float64) float64 { return a * b })
	case visa.FDIV:
		t.fop(ins, func(a, b float64) float64 { return a / b })
	case visa.FCMP:
		t.ffa = math.Float64frombits(uint64(r[ins.R1]))
		t.ffb = math.Float64frombits(uint64(r[ins.R2]))
		t.fFloat = true
	case visa.CVIF:
		r[ins.R1] = int64(math.Float64bits(float64(r[ins.R1])))
	case visa.CVFI:
		f := math.Float64frombits(uint64(r[ins.R1]))
		switch {
		case math.IsNaN(f):
			r[ins.R1] = 0
		case f >= math.MaxInt64:
			r[ins.R1] = math.MaxInt64
		case f <= math.MinInt64:
			r[ins.R1] = math.MinInt64
		default:
			r[ins.R1] = int64(f)
		}
	case visa.SET:
		if t.cond(ins.R1) {
			r[ins.R2] = 1
		} else {
			r[ins.R2] = 0
		}
	case visa.SX8:
		r[ins.R1] = int64(int8(r[ins.R1]))
	case visa.SX16:
		r[ins.R1] = int64(int16(r[ins.R1]))
	case visa.SX32:
		r[ins.R1] = int64(int32(r[ins.R1]))
	case visa.ZX8:
		r[ins.R1] = int64(uint8(r[ins.R1]))
	case visa.ZX16:
		r[ins.R1] = int64(uint16(r[ins.R1]))
	case visa.AND32:
		r[ins.R1] = int64(uint32(r[ins.R1]))
	case visa.ANDI:
		r[ins.R1] &= ins.Imm
	case visa.TLOAD:
		if t.P.Tables == nil {
			return t.fault(FaultMem, "tload without tables")
		}
		r[ins.R1] = int64(t.P.Tables.Load32(r[ins.R2]))
	case visa.TLOADI:
		if t.P.Tables == nil {
			return t.fault(FaultMem, "tloadi without tables")
		}
		r[ins.R1] = int64(t.P.Tables.Load32(ins.Imm))
	case visa.SETJ:
		env := r[ins.R1]
		if err := t.store(env, 8, uint64(t.Reg[visa.SP])); err != nil {
			return err
		}
		if err := t.store(env+8, 8, uint64(t.Reg[visa.FP])); err != nil {
			return err
		}
		if err := t.store(env+16, 8, uint64(next)); err != nil {
			return err
		}
		r[visa.R0] = 0
	case visa.JRESTORE:
		t.Reg[visa.SP] = r[ins.R1]
		t.Reg[visa.FP] = r[ins.R2]
		next = r[ins.R3]
	default:
		return t.fault(FaultDecode, "unimplemented opcode %s", ins.Op.Name())
	}

	// Conditional branches.
	if cc := jccCond[ins.Op]; cc != 0 {
		if t.cond(cc - 1) {
			next += ins.Imm
		}
	}
	t.PC = next
	return nil
}

// fop applies a float64 operation on register bit patterns.
func (t *Thread) fop(ins *visa.Instr, f func(a, b float64) float64) {
	a := math.Float64frombits(uint64(t.Reg[ins.R1]))
	b := math.Float64frombits(uint64(t.Reg[ins.R2]))
	t.Reg[ins.R1] = int64(math.Float64bits(f(a, b)))
}
