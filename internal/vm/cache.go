// Predecoded execution engine: a per-executable-page instruction
// cache. The interpreter's fetch path calls visa.Decode on raw bytes
// at every retired instruction; for long-running workloads that is the
// dominant cost of the stand-in CPU. The cached engine decodes each
// instruction once into its fixed-size internal form (visa.Instr plus
// encoded length) and dispatches from the cache thereafter.
//
// Correctness hinges on precise invalidation. Code can only change
// while its page is not executable (the W^X invariant), and every
// protection transition goes through Process.Protect — the runtime's
// mprotect/mmap analogue and the dlopen path both use it — so Protect
// drops the cache of every affected page. Because VISA instructions
// are variable-length (up to 10 bytes), an instruction cached in page
// P may extend into page P+1; invalidating a range therefore also
// drops the page immediately before it.
//
// Retired-instruction counts and fault behavior are bit-identical to
// the plain interpreter: both engines feed the same decoded
// instruction stream to the same execution switch, and the Fig. 5/6
// cost metric is a property of that stream, not of how it is fetched.
package vm

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"mcfi/internal/visa"
)

// Engine selects the instruction-fetch implementation of a Process.
type Engine int

// Engines. The zero value is the direct-threaded engine, so every
// Process is fast by default (the ROADMAP soak criterion: mcfi-serve
// defaulted to threaded for several PRs first); the plain interpreter
// remains available for differential testing and as the reference
// semantics.
const (
	// EngineThreaded is the direct-threaded engine (see threaded.go):
	// every cache slot carries the operation's func pointer alongside
	// the predecoded instruction, so dispatch is one indirect call. It
	// subsumes EngineFused's check fusion and adds branch folding (the
	// jmpr/callr/jrestore after a check joins its superinstruction) and
	// trace-level superinstructions (sandbox-mask + store pairs).
	EngineThreaded Engine = iota
	// EngineInterp decodes raw bytes at every retired instruction.
	EngineInterp
	// EngineCached fetches from the per-page predecoded cache.
	EngineCached
	// EngineFused is the cached engine plus check-transaction fusion:
	// at decode time each registered canonical check sequence is
	// replaced by one superinstruction executing the whole transaction
	// in host Go (see fused.go). Retired-instruction counts stay
	// bit-identical to the other engines.
	EngineFused
	// EngineBlockJIT is the threaded engine plus a profile-guided
	// fill-time block compiler (see blockjit.go): straight-line basic
	// blocks whose execution count crosses the JIT threshold are
	// compiled into one composed closure with operands pre-bound, so
	// the run loop makes one dispatch per block instead of per
	// instruction. Cold code falls back to threaded dispatch.
	EngineBlockJIT
)

// Engines returns every engine, in engine-ladder order (the order the
// PRs added them: reference interpreter, predecode, check fusion,
// direct threading, block compilation). Differential tests iterate
// this list so a newly added engine cannot silently drop out of
// coverage.
func Engines() []Engine {
	return []Engine{EngineInterp, EngineCached, EngineFused, EngineThreaded, EngineBlockJIT}
}

// EngineNames returns the flag names of every engine, in Engines()
// order — the single source for ParseEngine errors, CLI flag help, and
// server-side request validation.
func EngineNames() []string {
	es := Engines()
	names := make([]string, len(es))
	for i, e := range es {
		names[i] = e.String()
	}
	return names
}

// String names the engine (flag syntax of cmd/mcfi-run and
// cmd/mcfi-bench).
func (e Engine) String() string {
	switch e {
	case EngineInterp:
		return "interp"
	case EngineCached:
		return "cached"
	case EngineFused:
		return "fused"
	case EngineBlockJIT:
		return "blockjit"
	}
	return "threaded"
}

// fusesChecks reports whether the engine predecodes registered check
// transactions into fused superinstructions at icache-fill time.
func (e Engine) fusesChecks() bool {
	return e == EngineFused || e == EngineThreaded || e == EngineBlockJIT
}

// foldsBranches reports whether the engine folds the indirect branch
// after a check (and trace superinstructions) into its cache slots —
// the threaded fill path, which the block compiler builds on.
func (e Engine) foldsBranches() bool {
	return e == EngineThreaded || e == EngineBlockJIT
}

// ParseEngine parses the -engine flag syntax.
func ParseEngine(s string) (Engine, error) {
	if s == "" {
		return EngineThreaded, nil
	}
	for _, e := range Engines() {
		if s == e.String() {
			return e, nil
		}
	}
	return 0, fmt.Errorf("vm: unknown engine %q (want one of: %s)", s, strings.Join(EngineNames(), ", "))
}

// pageCache holds the predecoded instructions of one guest page,
// indexed by the instruction's starting offset within the page. Slots
// are published with an atomic bitmap store after their fields are
// written, so concurrent guest threads can share one cache; fills take
// the mutex (slow path only — each slot is decoded once per page
// generation).
type pageCache struct {
	mu    sync.Mutex
	valid [PageSize / 32]uint32
	slots [PageSize]cacheSlot
}

// cacheSlot colocates everything one dispatch needs — the predecoded
// instruction, its encoded size, and the operation's func pointer (the
// direct-threaded engine's dispatch target) — so a hit touches one
// cache line instead of three parallel arrays. fn is filled for every
// slot regardless of engine: it is a pure function of ins.Op, so the
// extra store costs nothing and a page shared across engine settings
// stays safe.
type cacheSlot struct {
	ins  visa.Instr
	fn   stepFn
	size uint8
}

// cacheHit returns the predecoded instruction at pc if its cache slot
// is valid. A hit needs no Prot check: slots are filled only after the
// executability check passes, and Protect invalidates every affected
// page on every transition, so a valid slot implies the page has been
// continuously executable since the fill. The returned pointer aliases
// the cache entry, which is immutable once its valid bit is published.
func (p *Process) cacheHit(pc int64) (*visa.Instr, int, bool) {
	pg := pc / PageSize
	if pc < 0 || pg >= int64(len(p.icache)) {
		return nil, 0, false
	}
	c := p.icache[pg].Load()
	if c == nil {
		return nil, 0, false
	}
	off := int(pc & (PageSize - 1))
	if atomic.LoadUint32(&c.valid[off>>5])&(uint32(1)<<(off&31)) == 0 {
		return nil, 0, false
	}
	s := &c.slots[off]
	return &s.ins, int(s.size), true
}

// cacheFill decodes the instruction at pc and publishes it into the
// page's cache. The caller has already checked that pc is executable.
// Under the check-fusing engines (fused, threaded, blockjit) a
// registered, byte-verified check transaction is predecoded as one
// fused superinstruction instead; the branch-folding engines
// additionally fuse sandbox-mask + store pairs into trace
// superinstructions.
func (p *Process) cacheFill(pc int64) (*visa.Instr, int, error) {
	p.icacheFills.Add(1)
	ins, n, ok := p.tryFuse(pc)
	if !ok {
		var err error
		ins, n, err = visa.Decode(p.Mem, int(pc))
		if err != nil {
			return nil, 0, err
		}
		if p.engine.foldsBranches() {
			ins, n = p.tryFuseTrace(ins, n, pc)
		}
	}
	slot := &p.icache[pc/PageSize]
	c := slot.Load()
	if c == nil {
		nc := &pageCache{}
		if slot.CompareAndSwap(nil, nc) {
			c = nc
		} else {
			c = slot.Load()
		}
	}
	if c == nil {
		// The page was invalidated while we were decoding; execute the
		// instruction we decoded without caching it.
		tmp := ins
		return &tmp, n, nil
	}
	off := int(pc & (PageSize - 1))
	word, bit := &c.valid[off>>5], uint32(1)<<(off&31)
	c.mu.Lock()
	if atomic.LoadUint32(word)&bit == 0 {
		c.slots[off] = cacheSlot{ins: ins, size: uint8(n), fn: opFuncs[ins.Op]}
		atomic.StoreUint32(word, atomic.LoadUint32(word)|bit)
	}
	c.mu.Unlock()
	return &c.slots[off].ins, n, nil
}

// invalidate drops the decode cache of pages [first-1, last) — one
// page before the changed range because a variable-length instruction
// cached there may span into it. The block compiler's pages drop on
// the same bounds: a compiled block contains only instructions that
// start inside its own page, so the one-page-back rule covers every
// block that could span the changed range. (Protect additionally
// bumps the check epoch over the same extent, so cached verdicts
// bound to the old bytes cannot be replayed either.)
func (p *Process) invalidate(first, last int64) {
	if first > 0 {
		first--
	}
	if first < 0 {
		first = 0
	}
	for pg := first; pg < last && pg < int64(len(p.icache)); pg++ {
		p.icache[pg].Store(nil)
		p.jit.pages[pg].Store(nil)
	}
}

// SetEngine selects the fetch implementation. Call it before the
// process starts executing.
func (p *Process) SetEngine(e Engine) { p.engine = e }

// Engine reports the process's fetch implementation.
func (p *Process) Engine() Engine { return p.engine }
