package vm

import (
	"errors"
	"testing"
	"time"

	"mcfi/internal/visa"
)

// TestCancelInterruptsSpin verifies the serving-timeout primitive: a
// guest spinning in an infinite loop is stopped by Process.Cancel from
// another goroutine, Run returns ErrCancelled (not a Fault), and the
// cancel channel is closed.
func TestCancelInterruptsSpin(t *testing.T) {
	p, th := buildProc(t, []visa.Instr{{Op: visa.JMP, Imm: -5}})
	done := make(chan error, 1)
	go func() { done <- th.Run(0) }()
	time.Sleep(10 * time.Millisecond)
	p.Cancel()
	select {
	case err := <-done:
		if !errors.Is(err, ErrCancelled) {
			t.Fatalf("Run = %v, want ErrCancelled", err)
		}
		var f *Fault
		if errors.As(err, &f) {
			t.Fatalf("cancellation must not be a Fault, got %v", f)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Cancel did not interrupt the spinning guest")
	}
	select {
	case <-p.CancelChan():
	default:
		t.Fatal("CancelChan not closed after Cancel")
	}
	// Cancel is idempotent.
	p.Cancel()
	// Instret flushed on the way out.
	if p.Instret() != th.Instret {
		t.Errorf("process instret %d != thread instret %d after cancelled Run",
			p.Instret(), th.Instret)
	}
}

// TestCancelBeatsBudgetSemantics: a budget error wraps ErrBudget and is
// distinguishable from both cancellation and faults.
func TestBudgetErrorIsTyped(t *testing.T) {
	_, th := buildProc(t, []visa.Instr{{Op: visa.JMP, Imm: -5}})
	err := th.Run(500)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("Run = %v, want ErrBudget", err)
	}
	if errors.Is(err, ErrCancelled) {
		t.Fatal("budget exhaustion must not match ErrCancelled")
	}
}

// TestCheckCountersFlushToProcess: the process-wide counters reflect
// per-thread fused-check activity after Run returns, and CFI halts are
// counted on every engine.
func TestCheckCountersFlushToProcess(t *testing.T) {
	// A plain HLT is a halted check under any engine.
	p, th := buildProc(t, []visa.Instr{{Op: visa.HLT}})
	err := th.Run(0)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultCFI {
		t.Fatalf("HLT: got %v, want CFI fault", err)
	}
	st := p.CheckStatsSnapshot()
	if st.Halts != 1 {
		t.Errorf("Halts = %d, want 1", st.Halts)
	}
	if st.Execs != 0 || st.VerdictHits != 0 || st.VerdictMisses != 0 {
		t.Errorf("unexpected fused counters without fused engine: %+v", st)
	}
}
