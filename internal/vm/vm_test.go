package vm

import (
	"math"
	"testing"

	"mcfi/internal/tables"
	"mcfi/internal/visa"
)

// buildProc assembles instructions into a minimal runnable process.
func buildProc(t *testing.T, instrs []visa.Instr) (*Process, *Thread) {
	t.Helper()
	var code []byte
	for _, i := range instrs {
		code = visa.Encode(code, i)
	}
	p := NewProcess()
	copy(p.Mem[visa.CodeBase:], code)
	p.Protect(visa.CodeBase, int64(len(code)), visa.ProtRead|visa.ProtExec)
	// A writable scratch area and stack.
	p.Protect(visa.DataBase, 1<<20, visa.ProtRead|visa.ProtWrite)
	th := p.NewThread(visa.CodeBase, visa.DataBase+1<<20)
	return p, th
}

func run(t *testing.T, th *Thread, steps int) error {
	t.Helper()
	for i := 0; i < steps; i++ {
		if err := th.Step(); err != nil {
			return err
		}
	}
	return nil
}

func TestArithmeticOps(t *testing.T) {
	_, th := buildProc(t, []visa.Instr{
		{Op: visa.MOVI, R1: visa.R0, Imm: 100},
		{Op: visa.MOVI, R1: visa.R1, Imm: 7},
		{Op: visa.ADD, R1: visa.R0, R2: visa.R1}, // 107
		{Op: visa.MUL, R1: visa.R0, R2: visa.R1}, // 749
		{Op: visa.MOVI, R1: visa.R2, Imm: 10},
		{Op: visa.MOD, R1: visa.R0, R2: visa.R2}, // 9
		{Op: visa.SHL, R1: visa.R0, R2: visa.R1}, // 9 << 7 = 1152
		{Op: visa.NEG, R1: visa.R0},              // -1152
		{Op: visa.SAR, R1: visa.R0, R2: visa.R2}, // -1152 >> 10 = -2
	})
	if err := run(t, th, 9); err != nil {
		t.Fatal(err)
	}
	if th.Reg[visa.R0] != -2 {
		t.Errorf("R0 = %d, want -2", th.Reg[visa.R0])
	}
}

func TestUnsignedOps(t *testing.T) {
	_, th := buildProc(t, []visa.Instr{
		{Op: visa.MOVI, R1: visa.R0, Imm: -8}, // 0xFFFF...F8
		{Op: visa.MOVI, R1: visa.R1, Imm: 16},
		{Op: visa.UDIV, R1: visa.R0, R2: visa.R1},
	})
	if err := run(t, th, 3); err != nil {
		t.Fatal(err)
	}
	want := int64(uint64(0xFFFFFFFFFFFFFFF8) / 16)
	if th.Reg[visa.R0] != want {
		t.Errorf("udiv = %d, want %d", th.Reg[visa.R0], want)
	}
}

func TestDivByZeroFaults(t *testing.T) {
	_, th := buildProc(t, []visa.Instr{
		{Op: visa.MOVI, R1: visa.R0, Imm: 1},
		{Op: visa.MOVI, R1: visa.R1, Imm: 0},
		{Op: visa.DIV, R1: visa.R0, R2: visa.R1},
	})
	err := run(t, th, 3)
	f, ok := err.(*Fault)
	if !ok || f.Kind != FaultArith {
		t.Errorf("want arithmetic fault, got %v", err)
	}
}

func TestLoadStoreWidths(t *testing.T) {
	base := int64(visa.DataBase)
	_, th := buildProc(t, []visa.Instr{
		{Op: visa.MOVI, R1: visa.R1, Imm: base},
		{Op: visa.MOVI, R1: visa.R0, Imm: -2}, // 0xFFFE...
		{Op: visa.ST16, R1: visa.R0, R2: visa.R1, Imm: 0},
		{Op: visa.LD16, R1: visa.R2, R2: visa.R1, Imm: 0},
		{Op: visa.LD16U, R1: visa.R3, R2: visa.R1, Imm: 0},
		{Op: visa.LD8, R1: visa.R4, R2: visa.R1, Imm: 0},
		{Op: visa.LD8U, R1: visa.R5, R2: visa.R1, Imm: 0},
	})
	if err := run(t, th, 7); err != nil {
		t.Fatal(err)
	}
	if th.Reg[visa.R2] != -2 {
		t.Errorf("ld16 = %d, want -2 (sign-extended)", th.Reg[visa.R2])
	}
	if th.Reg[visa.R3] != 0xFFFE {
		t.Errorf("ld16u = %#x, want 0xFFFE", th.Reg[visa.R3])
	}
	if th.Reg[visa.R4] != -2 || th.Reg[visa.R5] != 0xFE {
		t.Errorf("ld8/ld8u = %d/%#x", th.Reg[visa.R4], th.Reg[visa.R5])
	}
}

func TestWriteToCodeFaults(t *testing.T) {
	_, th := buildProc(t, []visa.Instr{
		{Op: visa.MOVI, R1: visa.R1, Imm: visa.CodeBase},
		{Op: visa.MOVI, R1: visa.R0, Imm: 0x28},
		{Op: visa.ST8, R1: visa.R0, R2: visa.R1, Imm: 0},
	})
	err := run(t, th, 3)
	f, ok := err.(*Fault)
	if !ok || f.Kind != FaultMem {
		t.Errorf("writing code should be a memory fault, got %v", err)
	}
}

func TestExecuteDataFaults(t *testing.T) {
	_, th := buildProc(t, []visa.Instr{
		{Op: visa.MOVI, R1: visa.R1, Imm: visa.DataBase},
		{Op: visa.JMPR, R1: visa.R1},
	})
	if err := run(t, th, 2); err != nil {
		t.Fatal(err)
	}
	err := th.Step() // fetch from data region
	f, ok := err.(*Fault)
	if !ok || f.Kind != FaultExec {
		t.Errorf("executing data should be an exec fault, got %v", err)
	}
}

func TestHltIsCFIFault(t *testing.T) {
	_, th := buildProc(t, []visa.Instr{{Op: visa.HLT}})
	err := th.Step()
	f, ok := err.(*Fault)
	if !ok || f.Kind != FaultCFI {
		t.Errorf("hlt should be a CFI fault, got %v", err)
	}
}

func TestCallRetRoundTrip(t *testing.T) {
	// call +0 (next instr); callee: movi r0, 5; ret
	_, th := buildProc(t, []visa.Instr{
		{Op: visa.CALL, Imm: 5},              // skip the jmp
		{Op: visa.JMP, Imm: 11},              // return lands here, jump to end
		{Op: visa.MOVI, R1: visa.R0, Imm: 5}, // callee
		{Op: visa.RET},
		{Op: visa.NOP}, // end
	})
	if err := run(t, th, 5); err != nil {
		t.Fatal(err)
	}
	if th.Reg[visa.R0] != 5 {
		t.Errorf("R0 = %d, want 5", th.Reg[visa.R0])
	}
	if th.PC != visa.CodeBase+5+5+10+1+1 {
		t.Errorf("PC = %#x", th.PC)
	}
}

func TestConditionalBranches(t *testing.T) {
	cases := []struct {
		a, b  int64
		op    visa.Op
		taken bool
	}{
		{1, 1, visa.JE, true}, {1, 2, visa.JE, false},
		{1, 2, visa.JNE, true},
		{-1, 1, visa.JL, true}, {-1, 1, visa.JB, false}, // signed vs unsigned
		{2, 1, visa.JA, true}, {1, 2, visa.JBE, true},
		{5, 5, visa.JGE, true}, {4, 5, visa.JG, false},
	}
	for _, c := range cases {
		_, th := buildProc(t, []visa.Instr{
			{Op: visa.MOVI, R1: visa.R0, Imm: c.a},
			{Op: visa.MOVI, R1: visa.R1, Imm: c.b},
			{Op: visa.CMP, R1: visa.R0, R2: visa.R1},
			{Op: c.op, Imm: 10},
			{Op: visa.MOVI, R1: visa.R2, Imm: 111}, // skipped when taken
		})
		if err := run(t, th, 4); err != nil {
			t.Fatal(err)
		}
		wasTaken := th.PC != visa.CodeBase+10+10+3+5
		if wasTaken != c.taken {
			t.Errorf("%s with (%d, %d): taken=%v, want %v",
				c.op.Name(), c.a, c.b, wasTaken, c.taken)
		}
	}
}

func TestFloatOps(t *testing.T) {
	bits := func(f float64) int64 { return int64(math.Float64bits(f)) }
	_, th := buildProc(t, []visa.Instr{
		{Op: visa.MOVI, R1: visa.R0, Imm: bits(2.5)},
		{Op: visa.MOVI, R1: visa.R1, Imm: bits(4.0)},
		{Op: visa.FMUL, R1: visa.R0, R2: visa.R1}, // 10.0
		{Op: visa.CVFI, R1: visa.R0},              // 10
		{Op: visa.CVIF, R1: visa.R0},              // 10.0
		{Op: visa.FCMP, R1: visa.R0, R2: visa.R1},
		{Op: visa.SET, R1: visa.CcG, R2: visa.R2}, // 10.0 > 4.0
	})
	if err := run(t, th, 7); err != nil {
		t.Fatal(err)
	}
	if th.Reg[visa.R2] != 1 {
		t.Error("float comparison failed")
	}
}

func TestTloadAgainstTables(t *testing.T) {
	p, th := buildProc(t, []visa.Instr{
		{Op: visa.MOVI, R1: visa.R11, Imm: 8},
		{Op: visa.TLOAD, R1: visa.R9, R2: visa.R11},
		{Op: visa.TLOADI, R1: visa.R10, Imm: 1 << 16}, // BaryBase of tables below
	})
	tb := tables.New(1<<16, 4)
	tb.Update(func(addr int) int {
		if addr == 8 {
			return 3
		}
		return -1
	}, func(i int) int {
		if i == 0 {
			return 3
		}
		return -1
	}, tables.UpdateOpts{})
	p.Tables = tb
	if err := run(t, th, 3); err != nil {
		t.Fatal(err)
	}
	if th.Reg[visa.R9] != th.Reg[visa.R10] || th.Reg[visa.R9] == 0 {
		t.Errorf("tload=%#x tloadi=%#x", th.Reg[visa.R9], th.Reg[visa.R10])
	}
}

func TestTloadWithoutTablesFaults(t *testing.T) {
	_, th := buildProc(t, []visa.Instr{{Op: visa.TLOAD, R1: visa.R9, R2: visa.R11}})
	if err := th.Step(); err == nil {
		t.Error("tload without tables should fault")
	}
}

func TestSetjmpRestore(t *testing.T) {
	env := int64(visa.DataBase + 64)
	_, th := buildProc(t, []visa.Instr{
		{Op: visa.MOVI, R1: visa.R1, Imm: env},
		{Op: visa.SETJ, R1: visa.R1},          // writes env, R0=0
		{Op: visa.MOVI, R1: visa.R5, Imm: 77}, // continuation
		{Op: visa.LD64, R1: visa.R3, R2: visa.R1, Imm: 0},
		{Op: visa.LD64, R1: visa.R4, R2: visa.R1, Imm: 8},
		{Op: visa.LD64, R1: visa.R11, R2: visa.R1, Imm: 16},
		{Op: visa.JRESTORE, R1: visa.R3, R2: visa.R4, R3: visa.R11},
	})
	// First pass: through setjmp, loads, jrestore -> back to continuation.
	if err := run(t, th, 7); err != nil {
		t.Fatal(err)
	}
	// After jrestore, PC is at the continuation (movi r5).
	wantPC := int64(visa.CodeBase + 10 + 2)
	if th.PC != wantPC {
		t.Errorf("PC after jrestore = %#x, want %#x", th.PC, wantPC)
	}
	if err := th.Step(); err != nil {
		t.Fatal(err)
	}
	if th.Reg[visa.R5] != 77 {
		t.Error("continuation did not execute")
	}
}

func TestExitStopsRun(t *testing.T) {
	p, th := buildProc(t, []visa.Instr{
		{Op: visa.JMP, Imm: -5}, // infinite loop
	})
	go func() {
		p.Exit(42)
	}()
	err := th.Run(0)
	if err != ErrExited {
		t.Errorf("want ErrExited, got %v", err)
	}
	_, code := p.Exited()
	if code != 42 {
		t.Errorf("exit code = %d", code)
	}
}

func TestInstructionBudget(t *testing.T) {
	_, th := buildProc(t, []visa.Instr{{Op: visa.JMP, Imm: -5}})
	if err := th.Run(1000); err == nil || err == ErrExited {
		t.Errorf("budget exhaustion should error, got %v", err)
	}
	if th.Instret < 1000 {
		t.Errorf("retired %d, want >= 1000", th.Instret)
	}
}

func TestWXInvariantChecker(t *testing.T) {
	p := NewProcess()
	p.Protect(0x1000, 0x1000, visa.ProtRead|visa.ProtExec)
	if err := p.CheckWX(); err != nil {
		t.Errorf("RX only: %v", err)
	}
	p.Protect(0x2000, 0x1000, visa.ProtRead|visa.ProtWrite|visa.ProtExec)
	if err := p.CheckWX(); err == nil {
		t.Error("W+X page must be detected")
	}
}
