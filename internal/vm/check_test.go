package vm

import (
	"testing"

	"mcfi/internal/rewrite"
	"mcfi/internal/tables"
	"mcfi/internal/visa"
)

// TestGuestCheckAgreesWithHostCheck cross-validates the two
// implementations of the check transaction: the VISA instruction
// sequence emitted by internal/rewrite (executed here by the VM) and
// the host-side tables.Check used by the runtime and the STM
// benchmarks. For a grid of (branch, target) pairs over a shared table
// configuration, both must reach the same verdict.
func TestGuestCheckAgreesWithHostCheck(t *testing.T) {
	const codeLimit = 1 << 16
	tb := tables.New(codeLimit, 64)
	// Classes: addresses 0x1000+64k belong to class (k%8)+1; branches
	// 0..7 carry classes 1..8.
	tb.Update(func(addr int) int {
		if addr >= 0x1000 && addr < 0x1000+64*64 && (addr-0x1000)%64 == 0 {
			return (addr-0x1000)/64%8 + 1
		}
		return -1
	}, func(i int) int {
		if i < 8 {
			return i + 1
		}
		return -1
	}, tables.UpdateOpts{})

	// The guest: a tail-jump check sequence on R11, then (at 'land') an
	// infinite loop the passing jump can only reach via the table.
	run := func(branch, target int) (pass bool) {
		a := visa.NewAsm()
		site := rewrite.EmitTailJump(a, true)
		if err := a.Finish(); err != nil {
			t.Fatal(err)
		}
		// Patch the Bary index into the TLOADI immediate.
		imm := uint32(tb.BaryBase() + 4*branch)
		for i := 0; i < 4; i++ {
			a.Code[site.TLoadIOffset+2+i] = byte(imm >> (8 * i))
		}

		p := NewProcess()
		p.Tables = tb
		copy(p.Mem[visa.CodeBase:], a.Code)
		// Make the entire low code region executable so a passing jump
		// can land anywhere the table allows.
		p.Protect(visa.CodeBase, codeLimit, visa.ProtRead|visa.ProtExec)
		p.Protect(visa.DataBase, 1<<16, visa.ProtRead|visa.ProtWrite)

		th := p.NewThread(visa.CodeBase, visa.DataBase+1<<16)
		th.Reg[visa.R11] = int64(target)
		err := th.Run(4096)
		if f, ok := err.(*Fault); ok && f.Kind == FaultCFI {
			return false // halted by the check
		}
		// Budget exhausted (spinning on NOP-sleds/zeroes) or another
		// fault after the jump: the check itself passed.
		return true
	}

	// Branches 0..7 have loader-assigned valid IDs. (An unconfigured
	// Bary index carries the all-zero invalid ID; against a non-target
	// address — also all-zero — the Fig. 4 fast path compares equal and
	// passes, in the paper exactly as here. That is why branch IDs are
	// a loader guarantee, not something checks re-establish; the
	// defensive host-side Check reports Violation instead, a documented
	// divergence.)
	for branch := 0; branch < 8; branch++ {
		for _, target := range []int{
			0x1000, 0x1040, 0x1080, 0x10C0, // class 1..4 entries
			0x1000 + 64*8,  // class 1 again
			0x1002,         // misaligned
			0x0FF0,         // not a target
			0x9000,         // far, not a target
			0x1000 + 64*63, // last classed address
		} {
			want := tb.Check(branch, target) == tables.Pass
			got := run(branch, target)
			if got != want {
				t.Errorf("branch %d target %#x: guest=%v host=%v",
					branch, target, got, want)
			}
		}
	}
}

// TestGuestCheckRetriesThroughUpdate pins the concurrency story at the
// instruction level: a guest thread spinning on one checked jump keeps
// passing while a host goroutine re-versions the tables continuously.
func TestGuestCheckRetriesThroughUpdate(t *testing.T) {
	const codeLimit = 1 << 14
	tb := tables.New(codeLimit, 8)
	tb.Update(func(addr int) int {
		if addr == 0x1000 {
			return 1
		}
		return -1
	}, func(i int) int {
		if i == 0 {
			return 1
		}
		return -1
	}, tables.UpdateOpts{})

	// Code at 0x1000: movi r11, 0x1000; <check>; jmpr r11 -> loops back
	// through the check forever.
	a := visa.NewAsm()
	a.Emit(visa.Instr{Op: visa.MOVI, R1: visa.R11, Imm: 0x1000})
	rewrite.EmitTailJump(a, true)
	if err := a.Finish(); err != nil {
		t.Fatal(err)
	}
	// The jump target must be the movi itself (offset 0 of this blob at
	// 0x1000), and the Tary entry is at 0x1000 — consistent.
	var tl int
	for _, ib := range []int{0} {
		_ = ib
	}
	// Find the TLOADI and patch index 0.
	off := 0
	for off < len(a.Code) {
		ins, n, err := visa.Decode(a.Code, off)
		if err != nil {
			t.Fatal(err)
		}
		if ins.Op == visa.TLOADI {
			tl = off
		}
		off += n
	}
	imm := uint32(tb.BaryBase())
	for i := 0; i < 4; i++ {
		a.Code[tl+2+i] = byte(imm >> (8 * i))
	}

	p := NewProcess()
	p.Tables = tb
	copy(p.Mem[0x1000:], a.Code)
	p.Protect(0x1000, int64(len(a.Code)), visa.ProtRead|visa.ProtExec)
	th := p.NewThread(0x1000, visa.SandboxSize-64)

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				tb.Reversion(tables.UpdateOpts{})
			}
		}
	}()
	err := th.Run(300_000)
	close(stop)
	<-done
	// The only acceptable exit is budget exhaustion: a CFI fault would
	// mean a check observed an inconsistent table state.
	if f, ok := err.(*Fault); ok {
		t.Fatalf("spinning checked jump faulted under concurrent updates: %v", f)
	}
	if tb.Updates() < 2 {
		t.Logf("only %d updates raced the guest", tb.Updates())
	}
}
