package vm

import (
	"errors"
	"testing"

	"mcfi/internal/visa"
)

// emitCountLoop emits a loop that increments R1 `iters` times (two
// ADDIs per iteration plus a fused-able CMPI+JNE backedge) and then
// halts — enough straight-line body for the block compiler to bind
// pure steps and the compare+jcc peephole.
func emitCountLoop(iters int64) []byte {
	var code []byte
	code = visa.Encode(code, visa.Instr{Op: visa.MOVI, R1: visa.R1, Imm: 0})
	loop := int64(len(code))
	code = visa.Encode(code, visa.Instr{Op: visa.ADDI, R1: visa.R1, Imm: 1})
	code = visa.Encode(code, visa.Instr{Op: visa.ADDI, R1: visa.R1, Imm: 1})
	code = visa.Encode(code, visa.Instr{Op: visa.CMPI, R1: visa.R1, Imm: 2 * iters})
	// Backedge displacement is relative to the jcc's continuation.
	end := int64(len(code)) + int64(visa.JNE.Size())
	code = visa.Encode(code, visa.Instr{Op: visa.JNE, Imm: loop - end})
	code = visa.Encode(code, visa.Instr{Op: visa.HLT})
	return code
}

// newLoopProcess loads the counting loop at CodeBase under the given
// engine with a compile-on-first-execution threshold.
func newLoopProcess(e Engine, iters int64) *Process {
	p := NewProcess()
	p.SetEngine(e)
	p.SetJITThreshold(1)
	copy(p.Mem[visa.CodeBase:], emitCountLoop(iters))
	p.Protect(visa.CodeBase, PageSize, visa.ProtRead|visa.ProtExec)
	p.Protect(visa.DataBase, 1<<16, visa.ProtRead|visa.ProtWrite)
	return p
}

// TestBlockJITCompilesAndMatchesInterp runs the loop hot enough to
// compile and requires bit-identical architectural results against
// the reference interpreter, with the block counters proving the hot
// path actually ran compiled blocks.
func TestBlockJITCompilesAndMatchesInterp(t *testing.T) {
	run := func(e Engine) (*Thread, error) {
		p := newLoopProcess(e, 500)
		th := p.NewThread(visa.CodeBase, visa.DataBase+1<<16)
		return th, th.Run(1 << 20)
	}
	ref, refErr := run(EngineInterp)
	got, gotErr := run(EngineBlockJIT)
	rf, ok1 := refErr.(*Fault)
	gf, ok2 := gotErr.(*Fault)
	if !ok1 || !ok2 || rf.Kind != FaultCFI || gf.Kind != FaultCFI {
		t.Fatalf("want HLT faults, got interp=%v blockjit=%v", refErr, gotErr)
	}
	if got.Instret != ref.Instret || got.PC != ref.PC || got.Reg[visa.R1] != ref.Reg[visa.R1] || gf.PC != rf.PC {
		t.Errorf("blockjit diverges: instret=%d/%d pc=%#x/%#x r1=%d/%d faultpc=%#x/%#x",
			got.Instret, ref.Instret, got.PC, ref.PC,
			got.Reg[visa.R1], ref.Reg[visa.R1], gf.PC, rf.PC)
	}
	st := got.P.CheckStatsSnapshot()
	if st.JITBlocks == 0 {
		t.Errorf("no blocks compiled (threshold 1, 500 iterations)")
	}
	if st.JITBlockRuns == 0 {
		t.Errorf("no compiled-block dispatches")
	}
	if st.JITBlockRuns <= st.JITColdSteps {
		t.Errorf("hot/cold ratio inverted: %d block runs vs %d cold steps",
			st.JITBlockRuns, st.JITColdSteps)
	}
}

// TestBlockJITBudgetExact sweeps the instruction budget across values
// that land before, inside, and after compiled-block dispatches: at
// every budget the blockjit engine must return ErrBudget (or the halt)
// with exactly the interpreter's Instret, PC, and register state — the
// dispatcher may never overshoot into a block it cannot finish.
func TestBlockJITBudgetExact(t *testing.T) {
	const iters = 64
	type snap struct {
		instret, pc, r1 int64
		budget          bool
		fault           bool
	}
	run := func(e Engine, budget int64) snap {
		p := newLoopProcess(e, iters)
		// Warm the profile so blocks are compiled before the measured
		// run: a first thread executes the whole loop.
		if e == EngineBlockJIT {
			warm := p.NewThread(visa.CodeBase, visa.DataBase+1<<16)
			if err := warm.Run(1 << 20); err == nil {
				t.Fatal("warm run did not halt")
			}
			if st := p.CheckStatsSnapshot(); st.JITBlocks == 0 {
				t.Fatal("warm run compiled no blocks")
			}
		}
		th := p.NewThread(visa.CodeBase, visa.DataBase+1<<16)
		err := th.Run(budget)
		var f *Fault
		return snap{
			instret: th.Instret, pc: th.PC, r1: th.Reg[visa.R1],
			budget: errors.Is(err, ErrBudget),
			fault:  errors.As(err, &f),
		}
	}
	for budget := int64(1); budget < 4*iters+8; budget++ {
		ref := run(EngineInterp, budget)
		got := run(EngineBlockJIT, budget)
		if got != ref {
			t.Fatalf("budget %d: blockjit %+v, interp %+v", budget, got, ref)
		}
	}
}

// TestBlockJITFaultInsideBlock ends the loop body with a store to
// unmapped memory so the fault fires from inside a compiled block;
// the fault PC and retired count must match the interpreter exactly
// (including the deferred retires of the pure steps before it).
func TestBlockJITFaultInsideBlock(t *testing.T) {
	var code []byte
	code = visa.Encode(code, visa.Instr{Op: visa.MOVI, R1: visa.R2, Imm: -8})
	code = visa.Encode(code, visa.Instr{Op: visa.ADDI, R1: visa.R1, Imm: 7})
	code = visa.Encode(code, visa.Instr{Op: visa.ST64, R1: visa.R1, R2: visa.R2, Imm: 0})
	code = visa.Encode(code, visa.Instr{Op: visa.HLT})

	run := func(e Engine) (*Thread, *Fault) {
		p := NewProcess()
		p.SetEngine(e)
		p.SetJITThreshold(1)
		copy(p.Mem[visa.CodeBase:], code)
		p.Protect(visa.CodeBase, PageSize, visa.ProtRead|visa.ProtExec)
		// First pass fills the icache, second profiles and compiles,
		// third dispatches the compiled block.
		for i := 0; ; i++ {
			th := p.NewThread(visa.CodeBase, visa.DataBase+1<<16)
			err := th.Run(4096)
			if i == 2 {
				f, ok := err.(*Fault)
				if !ok {
					t.Fatalf("engine %s: want fault, got %v", e, err)
				}
				return th, f
			}
		}
	}
	ref, rf := run(EngineInterp)
	got, gf := run(EngineBlockJIT)
	if st := got.P.CheckStatsSnapshot(); st.JITBlocks == 0 || st.JITBlockRuns == 0 {
		t.Fatalf("fault path did not execute a compiled block: %+v", st)
	}
	if gf.Kind != rf.Kind || gf.PC != rf.PC || got.Instret != ref.Instret || got.Reg[visa.R1] != ref.Reg[visa.R1] {
		t.Errorf("fault diverges: kind=%v/%v pc=%#x/%#x instret=%d/%d r1=%d/%d",
			gf.Kind, rf.Kind, gf.PC, rf.PC, got.Instret, ref.Instret,
			got.Reg[visa.R1], ref.Reg[visa.R1])
	}
}

// TestBlockJITEpochDiscard proves a compiled block is discarded when
// the check epoch moves (the update-transaction / Protect signal):
// after a bump the old block must never dispatch again — it is
// dropped at the dispatch check and the start re-profiled.
func TestBlockJITEpochDiscard(t *testing.T) {
	p := newLoopProcess(EngineBlockJIT, 100)
	runOnce := func() {
		th := p.NewThread(visa.CodeBase, visa.DataBase+1<<16)
		if err := th.Run(1 << 20); err == nil {
			t.Fatal("run did not halt")
		}
	}
	runOnce()
	before := p.CheckStatsSnapshot()
	if before.JITBlocks == 0 || before.JITBlockRuns == 0 {
		t.Fatalf("no compiled blocks to invalidate: %+v", before)
	}

	p.BumpCheckEpoch()
	runOnce()
	after := p.CheckStatsSnapshot()
	if after.JITDiscards <= before.JITDiscards {
		t.Errorf("epoch bump did not discard any block: discards %d -> %d",
			before.JITDiscards, after.JITDiscards)
	}
	if after.JITBlocks <= before.JITBlocks {
		t.Errorf("discarded blocks were not recompiled: blocks %d -> %d",
			before.JITBlocks, after.JITBlocks)
	}
}

// TestBlockJITStaleCode is the jitsim regression under the block
// compiler: code runs hot (compiled), its page is rewritten through
// the write-then-mprotect cycle, and the new code must execute — the
// old block is fenced by both the epoch stamp and the page drop.
func TestBlockJITStaleCode(t *testing.T) {
	p := NewProcess()
	p.SetEngine(EngineBlockJIT)
	p.SetJITThreshold(1)
	p.Protect(visa.DataBase, 1<<16, visa.ProtRead|visa.ProtWrite)

	copy(p.Mem[visa.CodeBase:], emitProbe(111))
	p.Protect(visa.CodeBase, PageSize, visa.ProtRead|visa.ProtExec)
	for i := 0; i < 3; i++ { // profile, compile, run hot
		if got := runToHalt(t, p); got != 111 {
			t.Fatalf("run %d: R0 = %d, want 111", i, got)
		}
	}
	if st := p.CheckStatsSnapshot(); st.JITBlocks == 0 || st.JITBlockRuns == 0 {
		t.Fatalf("probe never ran compiled: %+v", st)
	}

	p.Protect(visa.CodeBase, PageSize, visa.ProtRead|visa.ProtWrite)
	copy(p.Mem[visa.CodeBase:], emitProbe(222))
	p.Protect(visa.CodeBase, PageSize, visa.ProtRead|visa.ProtExec)
	if got := runToHalt(t, p); got != 222 {
		t.Fatalf("after rewrite: R0 = %d, want 222 (stale compiled block?)", got)
	}
}
