package vm

import (
	"sync"
	"testing"

	"mcfi/internal/rewrite"
	"mcfi/internal/tables"
	"mcfi/internal/visa"
)

// threadedOutcome runs one thread to a fault/budget stop and captures
// everything architecturally observable (the fused_test runOutcome plus
// nothing — same struct).
func threadedOutcome(th *Thread, err error) runOutcome {
	out := runOutcome{
		instret: th.Instret, pc: th.PC,
		r9: th.Reg[visa.R9], r10: th.Reg[visa.R10], r11: th.Reg[visa.R11],
		fa: th.fa, fb: th.fb,
	}
	if f, ok := err.(*Fault); ok {
		out.faulted, out.faultKind, out.faultPC = true, f.Kind, f.PC
	}
	return out
}

// TestThreadedCheckMatchesInterp is the fused grid test on the
// threaded engine: the blob is a tail-jump check whose jmpr folds into
// the superinstruction, so every (branch, target) outcome — pass,
// invalid-bit halt, same-version halt — exercises the folded-branch
// path against the interp reference.
func TestThreadedCheckMatchesInterp(t *testing.T) {
	const codeLimit = 1 << 16
	tb := fusedGrid(t)
	const blobAddr = 0x8000

	run := func(e Engine, branch, target int) (runOutcome, *Thread) {
		code, site := checkBlob(t, tb, branch)
		p := NewProcess()
		p.Tables = tb
		p.SetEngine(e)
		for i := visa.CodeBase; i < visa.CodeBase+codeLimit; i++ {
			p.Mem[i] = byte(visa.HLT)
		}
		copy(p.Mem[blobAddr:], code)
		p.Protect(visa.CodeBase, codeLimit, visa.ProtRead|visa.ProtExec)
		p.RegisterCheckSites([]int64{int64(blobAddr + site.CheckStart)})

		th := p.NewThread(blobAddr, visa.SandboxSize-64)
		th.Reg[visa.R11] = int64(target)
		err := th.Run(4096)
		return threadedOutcome(th, err), th
	}

	targets := []int{
		0x1000, 0x1040, 0x1080, 0x10C0,
		0x1000 + 64*8,
		0x1002,
		0x0FF0,
		0x9000,
		0x1000 + 64*63,
	}
	for branch := 0; branch < 8; branch++ {
		for _, target := range targets {
			want, _ := run(EngineInterp, branch, target)
			got, tth := run(EngineThreaded, branch, target)
			if want != got {
				t.Errorf("branch %d target %#x:\n  interp:   %+v\n  threaded: %+v",
					branch, target, want, got)
			}
			if tth.FusedExecs != 1 {
				t.Errorf("branch %d target %#x: FusedExecs = %d, want 1 (fusion did not engage)",
					branch, target, tth.FusedExecs)
			}
		}
	}
}

// TestThreadedVerdictFoldInstret pins the folded verdict-hit path: the
// self-targeting checked jump retires movi + and32 + (tloadi tload cmp
// je) + jmpr = 7 per iteration on every engine, with every iteration
// after the first served from the verdict cache AND transferring
// through the memoized folded branch.
func TestThreadedVerdictFoldInstret(t *testing.T) {
	mk := func() *tables.Tables {
		tb := tables.New(1<<14, 8)
		tb.Update(func(addr int) int {
			if addr == 0x1000 {
				return 1
			}
			return -1
		}, func(i int) int {
			if i == 0 {
				return 1
			}
			return -1
		}, tables.UpdateOpts{})
		return tb
	}
	const iters = 1000
	const budget = 7 * iters

	run := func(e Engine) (*Thread, error) {
		tb := mk()
		code, checkStart := spinLoop(t, tb, 0x1000)
		p := NewProcess()
		p.Tables = tb
		p.SetEngine(e)
		copy(p.Mem[0x1000:], code)
		p.Protect(0x1000, int64(len(code)), visa.ProtRead|visa.ProtExec)
		p.RegisterCheckSites([]int64{checkStart})
		th := p.NewThread(0x1000, visa.SandboxSize-64)
		err := th.Run(budget)
		return th, err
	}

	ith, ierr := run(EngineInterp)
	tth, terr := run(EngineThreaded)
	if _, ok := ierr.(*Fault); ok {
		t.Fatalf("interp spin faulted: %v", ierr)
	}
	if _, ok := terr.(*Fault); ok {
		t.Fatalf("threaded spin faulted: %v", terr)
	}
	if ith.Instret != tth.Instret {
		t.Errorf("instret diverges: interp %d, threaded %d", ith.Instret, tth.Instret)
	}
	if tth.FusedExecs != iters {
		t.Errorf("FusedExecs = %d, want %d", tth.FusedExecs, iters)
	}
	if tth.FusedVerdictHits != iters-1 {
		t.Errorf("FusedVerdictHits = %d, want %d", tth.FusedVerdictHits, iters-1)
	}
}

// callrBlob assembles an instrumented indirect call (check + alignment
// NOPs + callr) with the branch's Bary index patched in.
func callrBlob(t *testing.T, tb *tables.Tables, branch int) ([]byte, rewrite.CheckSite) {
	t.Helper()
	a := visa.NewAsm()
	site := rewrite.EmitIndirectCall(a, true)
	if err := a.Finish(); err != nil {
		t.Fatal(err)
	}
	imm := uint32(tb.BaryBase() + 4*branch)
	for i := 0; i < 4; i++ {
		a.Code[site.TLoadIOffset+2+i] = byte(imm >> (8 * i))
	}
	return a.Code, site
}

// TestThreadedFoldedCallr exercises the folded callr — including the
// rewriter's alignment NOPs between check and branch, the pushed
// return address, and a push that faults on an unmapped stack (the
// fault must name the callr's PC and retire it, exactly as interp).
func TestThreadedFoldedCallr(t *testing.T) {
	const codeLimit = 1 << 16
	tb := fusedGrid(t)
	const blobAddr = 0x8000

	run := func(e Engine, target int, sp int64) (runOutcome, *Thread, *Process) {
		code, site := callrBlob(t, tb, 0)
		p := NewProcess()
		p.Tables = tb
		p.SetEngine(e)
		for i := visa.CodeBase; i < visa.CodeBase+codeLimit; i++ {
			p.Mem[i] = byte(visa.HLT)
		}
		copy(p.Mem[blobAddr:], code)
		p.Protect(visa.CodeBase, codeLimit, visa.ProtRead|visa.ProtExec)
		p.RegisterCheckSites([]int64{int64(blobAddr + site.CheckStart)})
		th := p.NewThread(blobAddr, sp)
		th.Reg[visa.R11] = int64(target)
		err := th.Run(4096)
		return threadedOutcome(th, err), th, p
	}

	// Passing call: lands on the HLT carpet with the return address
	// pushed; compare the stack word too.
	wantOut, wantTh, wantP := run(EngineInterp, 0x1000, visa.SandboxSize-64)
	gotOut, gotTh, gotP := run(EngineThreaded, 0x1000, visa.SandboxSize-64)
	if wantOut != gotOut {
		t.Errorf("pass: interp %+v != threaded %+v", wantOut, gotOut)
	}
	if wantTh.Reg[visa.SP] != gotTh.Reg[visa.SP] {
		t.Errorf("pass: SP diverges: %#x vs %#x", wantTh.Reg[visa.SP], gotTh.Reg[visa.SP])
	}
	sp := wantTh.Reg[visa.SP]
	for i := int64(0); i < 8; i++ {
		if wantP.Mem[sp+i] != gotP.Mem[sp+i] {
			t.Errorf("pass: pushed return address diverges at +%d: %#x vs %#x",
				i, wantP.Mem[sp+i], gotP.Mem[sp+i])
		}
	}
	if gotTh.FusedExecs != 1 {
		t.Errorf("pass: FusedExecs = %d, want 1", gotTh.FusedExecs)
	}

	// Faulting push: SP in the unmapped guard band.
	wantOut, _, _ = run(EngineInterp, 0x1000, 8)
	gotOut, _, _ = run(EngineThreaded, 0x1000, 8)
	if wantOut != gotOut {
		t.Errorf("push fault: interp %+v != threaded %+v", wantOut, gotOut)
	}
	if !gotOut.faulted || gotOut.faultKind != FaultMem {
		t.Errorf("push fault: got %+v, want a memory fault at the callr", gotOut)
	}
}

// pltBlob assembles one instrumented PLT stub (GOT-reloading check +
// jmpr) with the branch's Bary index patched in.
func pltBlob(t *testing.T, tb *tables.Tables, branch int, gotAddr int64) []byte {
	t.Helper()
	a := visa.NewAsm()
	tl := rewrite.EmitPLTCheck(a, gotAddr, true)
	a.Emit(visa.Instr{Op: visa.JMPR, R1: visa.R11})
	if err := a.Finish(); err != nil {
		t.Fatal(err)
	}
	imm := uint32(tb.BaryBase() + 4*branch)
	for i := 0; i < 4; i++ {
		a.Code[tl+2+i] = byte(imm >> (8 * i))
	}
	return a.Code
}

// TestThreadedPLTCheckMatchesInterp runs the PLT-stub template over the
// (branch, target) grid on the fused and threaded engines: the GOT
// slot holds the target, the stub reloads it each round, and both the
// pass and halt paths must match interp bit-exactly — as must a GOT
// slot on an unmapped page, whose ld64 faults mid-superinstruction.
func TestThreadedPLTCheckMatchesInterp(t *testing.T) {
	const codeLimit = 1 << 16
	tb := fusedGrid(t)
	const blobAddr = 0x8000
	const gotPage = int64(0x4000)

	run := func(e Engine, branch, target int, gotAddr int64) (runOutcome, *Thread) {
		code := pltBlob(t, tb, branch, gotAddr)
		p := NewProcess()
		p.Tables = tb
		p.SetEngine(e)
		for i := visa.CodeBase; i < visa.CodeBase+codeLimit; i++ {
			p.Mem[i] = byte(visa.HLT)
		}
		copy(p.Mem[blobAddr:], code)
		p.Protect(visa.CodeBase, codeLimit, visa.ProtRead|visa.ProtExec)
		p.Protect(gotPage, PageSize, visa.ProtRead|visa.ProtWrite)
		for i := 0; i < 8; i++ {
			p.Mem[gotPage+int64(i)] = byte(uint64(target) >> (8 * i))
		}
		p.RegisterCheckSites([]int64{blobAddr})

		th := p.NewThread(blobAddr, visa.SandboxSize-64)
		err := th.Run(4096)
		return threadedOutcome(th, err), th
	}

	targets := []int{
		0x1000, 0x1040, 0x10C0,
		0x1000 + 64*8, // invalid bit
		0x1002,        // misaligned -> invalid
		0x9000,        // outside the table
	}
	for _, e := range []Engine{EngineFused, EngineThreaded} {
		for branch := 0; branch < 4; branch++ {
			for _, target := range targets {
				want, _ := run(EngineInterp, branch, target, gotPage)
				got, th := run(e, branch, target, gotPage)
				if want != got {
					t.Errorf("%s branch %d target %#x:\n  interp: %+v\n  %s: %+v",
						e, branch, target, want, e, got)
				}
				if th.FusedPLTExecs != 1 {
					t.Errorf("%s branch %d target %#x: FusedPLTExecs = %d, want 1",
						e, branch, target, th.FusedPLTExecs)
				}
			}
		}
		// GOT slot on an unmapped page: the ld64 reload faults.
		want, _ := run(EngineInterp, 0, 0x1000, int64(visa.SandboxSize))
		got, _ := run(e, 0, 0x1000, int64(visa.SandboxSize))
		if want != got {
			t.Errorf("%s GOT fault: interp %+v != %s %+v", e, want, e, got)
		}
		if !got.faulted || got.faultKind != FaultMem || got.faultPC != blobAddr+rewrite.PLTCheckLoadOffset {
			t.Errorf("%s GOT fault: got %+v, want memory fault at the ld64 (%#x)",
				e, got, blobAddr+rewrite.PLTCheckLoadOffset)
		}
	}
}

// TestThreadedPLTVerdictCache pins the PLT verdict cache: a spinning
// PLT stub whose GOT points back at the stub itself serves every
// round after the first from the cache, with instret bit-identical to
// interp (each round is movi, ld64, and32, tloadi, tload, cmp, je,
// jmpr = 8 instructions).
func TestThreadedPLTVerdictCache(t *testing.T) {
	const stub = int64(0x1000)
	const gotPage = int64(0x4000)
	mk := func() *tables.Tables {
		tb := tables.New(1<<14, 8)
		tb.Update(func(addr int) int {
			if addr == int(stub) {
				return 1
			}
			return -1
		}, func(i int) int {
			if i == 0 {
				return 1
			}
			return -1
		}, tables.UpdateOpts{})
		return tb
	}
	const iters = 500
	const budget = 8 * iters

	run := func(e Engine) (*Thread, error) {
		tb := mk()
		code := pltBlob(t, tb, 0, gotPage)
		p := NewProcess()
		p.Tables = tb
		p.SetEngine(e)
		copy(p.Mem[stub:], code)
		p.Protect(stub, int64(len(code)), visa.ProtRead|visa.ProtExec)
		p.Protect(gotPage, PageSize, visa.ProtRead|visa.ProtWrite)
		for i := 0; i < 8; i++ {
			p.Mem[gotPage+int64(i)] = byte(uint64(stub) >> (8 * i))
		}
		p.RegisterCheckSites([]int64{stub})
		th := p.NewThread(stub, visa.SandboxSize-64)
		err := th.Run(budget)
		return th, err
	}

	ith, ierr := run(EngineInterp)
	tth, terr := run(EngineThreaded)
	if _, ok := ierr.(*Fault); ok {
		t.Fatalf("interp PLT spin faulted: %v", ierr)
	}
	if _, ok := terr.(*Fault); ok {
		t.Fatalf("threaded PLT spin faulted: %v", terr)
	}
	if ith.Instret != tth.Instret {
		t.Errorf("instret diverges: interp %d, threaded %d", ith.Instret, tth.Instret)
	}
	if tth.FusedPLTExecs != iters {
		t.Errorf("FusedPLTExecs = %d, want %d", tth.FusedPLTExecs, iters)
	}
	if tth.FusedVerdictHits != iters-1 {
		t.Errorf("FusedVerdictHits = %d, want %d", tth.FusedVerdictHits, iters-1)
	}
}

// TestThreadedTraceMaskStore pins the sandbox-mask + store trace
// superinstruction: architectural effects, memory contents, and the
// faulting variant (store to a read-only page) must match interp.
func TestThreadedTraceMaskStore(t *testing.T) {
	build := func(dst int64) []byte {
		a := visa.NewAsm()
		a.Emit(visa.Instr{Op: visa.MOVI, R1: visa.R1, Imm: dst})
		a.Emit(visa.Instr{Op: visa.MOVI, R1: visa.R2, Imm: 0x1122334455667788})
		a.Emit(visa.Instr{Op: visa.ANDI, R1: visa.R1, Imm: visa.StoreMask})
		a.Emit(visa.Instr{Op: visa.ST64, R1: visa.R2, R2: visa.R1, Imm: 8})
		a.Emit(visa.Instr{Op: visa.HLT})
		if err := a.Finish(); err != nil {
			t.Fatal(err)
		}
		return a.Code
	}

	run := func(e Engine, dst int64, writable bool) (runOutcome, *Process, *Thread) {
		code := build(dst)
		p := NewProcess()
		p.SetEngine(e)
		copy(p.Mem[0x1000:], code)
		p.Protect(0x1000, int64(len(code)), visa.ProtRead|visa.ProtExec)
		prot := uint32(visa.ProtRead)
		if writable {
			prot |= visa.ProtWrite
		}
		p.Protect(0x4000, PageSize, prot)
		th := p.NewThread(0x1000, visa.SandboxSize-64)
		err := th.Run(64)
		return threadedOutcome(th, err), p, th
	}

	for _, c := range []struct {
		name     string
		dst      int64
		writable bool
	}{
		{"store-ok", 0x4000, true},
		{"store-fault", 0x4000, false},
		// The mask matters: an address with bits above the sandbox set
		// must be wrapped into range before the store.
		{"mask-applies", 0x4000 | (1 << 40), true},
	} {
		want, wp, wth := run(EngineInterp, c.dst, c.writable)
		got, gp, gth := run(EngineThreaded, c.dst, c.writable)
		if want != got {
			t.Errorf("%s: interp %+v != threaded %+v", c.name, want, got)
		}
		if wth.Reg[visa.R1] != gth.Reg[visa.R1] || wth.Reg[visa.R2] != gth.Reg[visa.R2] {
			t.Errorf("%s: registers diverge: r1 %#x/%#x r2 %#x/%#x", c.name,
				wth.Reg[visa.R1], gth.Reg[visa.R1], wth.Reg[visa.R2], gth.Reg[visa.R2])
		}
		for i := int64(0); i < 16; i++ {
			if wp.Mem[0x4000+i] != gp.Mem[0x4000+i] {
				t.Errorf("%s: memory diverges at %#x: %#x vs %#x",
					c.name, 0x4000+i, wp.Mem[0x4000+i], gp.Mem[0x4000+i])
			}
		}
	}
}

// TestThreadedFillInvalidateRace drives the threaded engine's
// fill/fold path while a host goroutine keeps flipping the code
// pages' protection (the dlopen rebasing pattern) and re-registering
// check sites. Under -race this exercises slot publication against
// invalidation; semantically the spin must never fault, because every
// protection transition leaves the code executable again and the
// epoch bump only forces re-validation.
func TestThreadedFillInvalidateRace(t *testing.T) {
	tb := tables.New(1<<14, 8)
	tb.Update(func(addr int) int {
		if addr == 0x1000 {
			return 1
		}
		return -1
	}, func(i int) int {
		if i == 0 {
			return 1
		}
		return -1
	}, tables.UpdateOpts{})

	code, checkStart := spinLoop(t, tb, 0x1000)
	p := NewProcess()
	p.Tables = tb
	p.SetEngine(EngineThreaded)
	tb.OnUpdate(p.BumpCheckEpoch)
	copy(p.Mem[0x1000:], code)
	p.Protect(0x1000, int64(len(code)), visa.ProtRead|visa.ProtExec)
	p.RegisterCheckSites([]int64{checkStart})
	th := p.NewThread(0x1000, visa.SandboxSize-64)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				// The dlopen pattern: W^X flip, register, flip back.
				p.Protect(0x1000, int64(len(code)), visa.ProtRead|visa.ProtExec)
				p.RegisterCheckSites([]int64{checkStart})
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tb.Reversion(tables.UpdateOpts{})
			}
		}
	}()
	err := th.Run(500_000)
	close(stop)
	wg.Wait()
	if f, ok := err.(*Fault); ok {
		t.Fatalf("threaded spin faulted under invalidate storm: %v", f)
	}
	if th.FusedExecs == 0 {
		t.Error("fusion did not engage")
	}
}
