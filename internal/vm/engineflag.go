package vm

import "strings"

// Engine selection helpers shared by every front end (mcfi-run,
// mcfi-bench, mcfi-load CLI flags and mcfi-serve request validation),
// so the set of valid names, the error message enumerating them, and
// the flag help text all come from one place.

// ParseEngineDefault parses an engine name, mapping the empty string
// to def instead of EngineCached — the form servers use so "engine
// omitted from the request" picks the service default.
func ParseEngineDefault(s string, def Engine) (Engine, error) {
	if s == "" {
		return def, nil
	}
	return ParseEngine(s)
}

// EngineUsage returns flag help text for an -engine flag.
func EngineUsage() string {
	return "dispatch engine: " + strings.Join(EngineNames(), ", ")
}

// EngineFlag is a flag.Value for -engine flags:
//
//	engine := vm.EngineThreaded
//	flag.Var((*vm.EngineFlag)(&engine), "engine", vm.EngineUsage())
//
// Invalid names fail at flag-parse time with the same enumerated
// error ParseEngine gives everywhere else.
type EngineFlag Engine

func (f *EngineFlag) String() string { return Engine(*f).String() }

// Set implements flag.Value.
func (f *EngineFlag) Set(s string) error {
	e, err := ParseEngine(s)
	if err != nil {
		return err
	}
	*f = EngineFlag(e)
	return nil
}

// Engine returns the selected engine.
func (f *EngineFlag) Engine() Engine { return Engine(*f) }
