// Incremental CFG maintenance for dynamic linking: instead of
// regenerating the whole control-flow policy on every dlopen (the
// paper reports full generation at ~150 ms for gcc-sized inputs, paid
// per module load), the runtime keeps the union-find state of the last
// published policy memoized and merges each new module's functions,
// branches, and return sites into it, reporting only the addresses and
// branches whose equivalence-class numbers are new or changed.
//
// The incremental path preserves every published ECN: a new target
// joining an existing class adopts that class's number, and brand-new
// classes take numbers the published tables have never used. When an
// extension would merge two classes that both already have distinct
// published numbers — real cross-module class unification, where
// existing Tary words would have to move — Extend reports failure and
// the caller falls back to a full Generate + full table rebuild. That
// invariant (existing words never change class in a delta) is exactly
// what makes the tables' version-neutral UpdateDelta publication safe.
package cfg

import (
	"sort"

	"mcfi/internal/id"
	"mcfi/internal/module"
	"mcfi/internal/visa"
)

// Delta is the policy change one Extend produced: the equivalence-class
// assignments for addresses that became valid targets, and the branch
// ECNs that are new or changed. Existing target addresses never appear
// (their classes are immutable under the incremental path).
type Delta struct {
	// TaryECN maps newly valid target addresses to their ECNs. It can
	// include old-extent addresses: a pre-existing function newly made
	// address-taken, or a pre-existing return site that a new module's
	// call graph reaches.
	TaryECN map[int]int
	// BranchECN maps branch addresses to their ECNs, for branches that
	// are new or whose class changed (an empty-target branch gaining
	// its first targets).
	BranchECN map[int]int
}

// Incremental is the memoized CFG-generation state of the currently
// published policy. It is not safe for concurrent use; the runtime
// serializes Extend with its link lock.
type Incremental struct {
	profile     visa.Profile
	funcs       []module.FuncInfo
	funcIdx     map[string]int // name -> index into funcs
	annotated   map[string]string
	setjmpConts []int

	// Union-find over target addresses plus the published numbering.
	d       *dsu
	ecnOf   map[int]int // class root -> published ECN
	next    int         // next never-published ECN
	taryECN map[int]int // published target map (mirror of the tables)

	retSitesOf map[string][]int
	tailEdges  map[string][]string // g -> tail callees, memoized

	branchTargets map[int][]int
	branchECN     map[int]int

	// Secondary indexes so Extend matches a delta against the program
	// in O(delta × distinct signatures), not O(program²).
	callIBsBySig   map[string][]int    // fp sig -> IBCall/IBTailJmp offsets
	retIBsByFunc   map[string][]int    // func name -> IBRet offsets
	longjmpIBs     []int               // IBLongjmp offsets
	pltIBsBySym    map[string][]int    // symbol -> IBPLT offsets
	indRetBySig    map[string][]int    // fp sig -> indirect ret-site offsets
	tailSigCallers map[string][]string // fp sig -> funcs tail-calling through it
	addrTakenBySig map[string][]int    // effective sig -> addr-taken func offsets
}

func (inc *Incremental) effAddrTaken(f *module.FuncInfo) bool {
	if f.AddrTaken {
		return true
	}
	_, ok := inc.annotated[f.Name]
	return ok
}

func (inc *Incremental) effSig(f *module.FuncInfo) string {
	if s, ok := inc.annotated[f.Name]; ok && s != "" {
		return s
	}
	return f.Sig
}

// NewIncremental memoizes the generation state behind an already
// generated policy. g must be Generate(in) for the same input; the
// returned state reproduces g's exact ECN numbering, which is the
// numbering the caller published to the ID tables.
func NewIncremental(in Input, g *Graph) *Incremental {
	inc := &Incremental{
		profile:        in.Profile,
		funcs:          append([]module.FuncInfo(nil), in.Funcs...),
		funcIdx:        make(map[string]int, len(in.Funcs)),
		annotated:      parseAnnotations(in.Annotations),
		setjmpConts:    append([]int(nil), in.SetjmpConts...),
		d:              newDSU(),
		ecnOf:          map[int]int{},
		next:           1,
		taryECN:        make(map[int]int, len(g.TaryECN)),
		retSitesOf:     map[string][]int{},
		branchTargets:  make(map[int][]int, len(g.BranchTargets)),
		branchECN:      make(map[int]int, len(g.BranchECN)),
		callIBsBySig:   map[string][]int{},
		retIBsByFunc:   map[string][]int{},
		pltIBsBySym:    map[string][]int{},
		indRetBySig:    map[string][]int{},
		tailSigCallers: map[string][]string{},
		addrTakenBySig: map[string][]int{},
	}
	for i := range inc.funcs {
		inc.funcIdx[inc.funcs[i].Name] = i
	}

	// Rebuild the union-find and the root -> ECN map from the published
	// classes, and continue numbering past every ECN the graph used
	// (including the memberless classes of empty-target branches).
	for ecn, members := range g.ClassMembers {
		for _, m := range members[1:] {
			inc.d.union(members[0], m)
		}
		inc.ecnOf[inc.d.find(members[0])] = ecn
		if ecn >= inc.next {
			inc.next = ecn + 1
		}
	}
	for addr, ecn := range g.TaryECN {
		inc.taryECN[addr] = ecn
	}
	for off, ecn := range g.BranchECN {
		inc.branchECN[off] = ecn
		if ecn >= inc.next {
			inc.next = ecn + 1
		}
	}
	for off, targets := range g.BranchTargets {
		inc.branchTargets[off] = targets
	}

	// Recompute the return-site map the same way Generate did (the
	// graph does not retain it), then memoize the tail-call edges.
	addrTaken := func(f *module.FuncInfo) bool { return inc.effAddrTaken(f) }
	sigOf := func(f *module.FuncInfo) string { return inc.effSig(f) }
	for _, rs := range in.RetSites {
		if rs.Callee != "" {
			inc.retSitesOf[rs.Callee] = append(inc.retSitesOf[rs.Callee], rs.Offset)
			continue
		}
		inc.indRetBySig[rs.FpSig] = append(inc.indRetBySig[rs.FpSig], rs.Offset)
		for i := range inc.funcs {
			f := &inc.funcs[i]
			if addrTaken(f) && SigCallMatch(rs.FpSig, sigOf(f)) {
				inc.retSitesOf[f.Name] = append(inc.retSitesOf[f.Name], rs.Offset)
			}
		}
	}
	inc.tailEdges = buildTailEdges(inc.funcs, addrTaken, sigOf)
	if in.Profile == visa.Profile64 {
		propagateTailCalls(inc.tailEdges, inc.retSitesOf, nil)
	}

	// Secondary indexes over the existing branches and functions.
	for i := range in.IBs {
		ib := &in.IBs[i]
		switch ib.Kind {
		case module.IBRet:
			inc.retIBsByFunc[ib.Func] = append(inc.retIBsByFunc[ib.Func], ib.Offset)
		case module.IBCall, module.IBTailJmp:
			inc.callIBsBySig[ib.FpSig] = append(inc.callIBsBySig[ib.FpSig], ib.Offset)
		case module.IBLongjmp:
			inc.longjmpIBs = append(inc.longjmpIBs, ib.Offset)
		case module.IBPLT:
			inc.pltIBsBySym[ib.PLTSym] = append(inc.pltIBsBySym[ib.PLTSym], ib.Offset)
		}
	}
	for i := range inc.funcs {
		f := &inc.funcs[i]
		for _, sig := range f.TailSigs {
			inc.tailSigCallers[sig] = append(inc.tailSigCallers[sig], f.Name)
		}
		if addrTaken(f) {
			inc.addrTakenBySig[sigOf(f)] = append(inc.addrTakenBySig[sigOf(f)], f.Offset)
		}
	}
	return inc
}

// unionChecked unions two target addresses while keeping the published
// numbering intact. It fails (returning false) when both roots already
// carry distinct published ECNs — the cross-module class merge the
// incremental path cannot express without moving existing table words.
func (inc *Incremental) unionChecked(a, b int) bool {
	ra, rb := inc.d.find(a), inc.d.find(b)
	if ra == rb {
		return true
	}
	ea, okA := inc.ecnOf[ra]
	eb, okB := inc.ecnOf[rb]
	if okA && okB && ea != eb {
		return false
	}
	inc.d.parent[ra] = rb
	if okA {
		delete(inc.ecnOf, ra)
		inc.ecnOf[rb] = ea
	} else if okB {
		inc.ecnOf[rb] = eb
	}
	return true
}

// Extend merges one module's auxiliary information into the memoized
// state and returns the policy delta to publish. flipped names
// pre-existing functions that just became address-taken (dlsym, or a
// data relocation in the new module referring to an old function).
//
// The second return is false when the delta cannot be expressed
// incrementally — cross-module class merges, an annotation retyping an
// existing function, a duplicate function name, or ECN exhaustion —
// and the caller must regenerate the full policy (and a fresh
// Incremental: the state may be partially mutated and must be
// discarded either way).
func (inc *Incremental) Extend(delta Input, flipped []string) (*Delta, bool) {
	if delta.Profile != inc.profile {
		return nil, false
	}
	// New annotations may only describe new functions: retyping or
	// address-taking an already-published function via assembly text
	// would change existing classes.
	newAnn := parseAnnotations(delta.Annotations)
	for name, sig := range newAnn {
		if _, exists := inc.funcIdx[name]; exists {
			return nil, false
		}
		inc.annotated[name] = sig
	}

	addrTaken := func(f *module.FuncInfo) bool { return inc.effAddrTaken(f) }
	sigOf := func(f *module.FuncInfo) string { return inc.effSig(f) }

	// Phase A: apply structural additions and collect, per branch, the
	// target addresses it gains.
	adds := map[int][]int{}   // branch offset -> added targets
	grew := map[string]bool{} // funcs whose return-site set grew
	var activated []int       // indexes of funcs that became targets

	for _, name := range flipped {
		i, ok := inc.funcIdx[name]
		if !ok {
			continue
		}
		f := &inc.funcs[i]
		if addrTaken(f) {
			continue // already a target; nothing changes
		}
		f.AddrTaken = true
		activated = append(activated, i)
	}

	firstNew := len(inc.funcs)
	for _, f := range delta.Funcs {
		if _, dup := inc.funcIdx[f.Name]; dup {
			return nil, false
		}
		inc.funcIdx[f.Name] = len(inc.funcs)
		inc.funcs = append(inc.funcs, f)
	}
	for i := firstNew; i < len(inc.funcs); i++ {
		f := &inc.funcs[i]
		if addrTaken(f) {
			activated = append(activated, i)
		}
		// The new function as a tail CALLER: direct edges plus
		// indirect edges against every current address-taken function.
		inc.tailEdges[f.Name] = append(inc.tailEdges[f.Name], f.TailCalls...)
		for _, sig := range f.TailSigs {
			inc.tailSigCallers[sig] = append(inc.tailSigCallers[sig], f.Name)
			for j := range inc.funcs {
				h := &inc.funcs[j]
				if addrTaken(h) && SigCallMatch(sig, sigOf(h)) {
					inc.tailEdges[f.Name] = append(inc.tailEdges[f.Name], h.Name)
				}
			}
		}
		// A new definition of a symbol old PLT branches import.
		for _, off := range inc.pltIBsBySym[f.Name] {
			adds[off] = append(adds[off], f.Offset)
		}
	}

	// Newly activated targets join every signature-matched indirect
	// call, indirect return edge, and indirect tail-call edge.
	for _, i := range activated {
		f := &inc.funcs[i]
		fsig := sigOf(f)
		inc.addrTakenBySig[fsig] = append(inc.addrTakenBySig[fsig], f.Offset)
		for fpSig, offs := range inc.callIBsBySig {
			if SigCallMatch(fpSig, fsig) {
				for _, off := range offs {
					adds[off] = append(adds[off], f.Offset)
				}
			}
		}
		for fpSig, sites := range inc.indRetBySig {
			if SigCallMatch(fpSig, fsig) {
				inc.retSitesOf[f.Name] = append(inc.retSitesOf[f.Name], sites...)
				grew[f.Name] = true
			}
		}
		for sig, callers := range inc.tailSigCallers {
			if SigCallMatch(sig, fsig) {
				for _, g := range callers {
					// The fixed-point pass below walks every edge, so the
					// new edge needs no grew seeding of its own.
					inc.tailEdges[g] = append(inc.tailEdges[g], f.Name)
				}
			}
		}
	}

	// The module's return sites: direct ones extend the callee's edge
	// set by name (the callee may be an old function — a call into
	// libc — or one of the module's own); indirect ones match every
	// current address-taken function.
	for _, rs := range delta.RetSites {
		if rs.Callee != "" {
			inc.retSitesOf[rs.Callee] = append(inc.retSitesOf[rs.Callee], rs.Offset)
			grew[rs.Callee] = true
			continue
		}
		inc.indRetBySig[rs.FpSig] = append(inc.indRetBySig[rs.FpSig], rs.Offset)
		for j := range inc.funcs {
			f := &inc.funcs[j]
			if addrTaken(f) && SigCallMatch(rs.FpSig, sigOf(f)) {
				inc.retSitesOf[f.Name] = append(inc.retSitesOf[f.Name], rs.Offset)
				grew[f.Name] = true
			}
		}
	}

	// New setjmp continuations become targets of every longjmp branch.
	if len(delta.SetjmpConts) > 0 {
		inc.setjmpConts = append(inc.setjmpConts, delta.SetjmpConts...)
		for _, off := range inc.longjmpIBs {
			adds[off] = append(adds[off], delta.SetjmpConts...)
		}
	}

	// Tail-call chasing over the memoized edges, tracking which
	// functions' return-site sets changed.
	if inc.profile == visa.Profile64 {
		propagateTailCalls(inc.tailEdges, inc.retSitesOf, grew)
	}
	for name := range grew {
		for _, off := range inc.retIBsByFunc[name] {
			adds[off] = append(adds[off], inc.retSitesOf[name]...)
		}
	}

	// The module's own branches, resolved against the merged state, and
	// folded into the indexes for the next Extend.
	for i := range delta.IBs {
		ib := &delta.IBs[i]
		switch ib.Kind {
		case module.IBRet:
			inc.retIBsByFunc[ib.Func] = append(inc.retIBsByFunc[ib.Func], ib.Offset)
			adds[ib.Offset] = append(adds[ib.Offset], inc.retSitesOf[ib.Func]...)
		case module.IBCall, module.IBTailJmp:
			inc.callIBsBySig[ib.FpSig] = append(inc.callIBsBySig[ib.FpSig], ib.Offset)
			for fsig, offs := range inc.addrTakenBySig {
				if SigCallMatch(ib.FpSig, fsig) {
					adds[ib.Offset] = append(adds[ib.Offset], offs...)
				}
			}
		case module.IBLongjmp:
			inc.longjmpIBs = append(inc.longjmpIBs, ib.Offset)
			adds[ib.Offset] = append(adds[ib.Offset], inc.setjmpConts...)
		case module.IBPLT:
			inc.pltIBsBySym[ib.PLTSym] = append(inc.pltIBsBySym[ib.PLTSym], ib.Offset)
			if j, ok := inc.funcIdx[ib.PLTSym]; ok {
				adds[ib.Offset] = append(adds[ib.Offset], inc.funcs[j].Offset)
			}
		case module.IBSwitch:
			continue
		}
		if _, seen := adds[ib.Offset]; !seen {
			adds[ib.Offset] = []int{} // empty-target branch, still needs an ECN
		}
	}

	// Phase B: merge the grown target sets into the union-find. A
	// branch whose set actually grew unions its additions into its
	// existing class; failure means two published classes would merge.
	touched := make([]int, 0, len(adds))
	for off := range adds {
		touched = append(touched, off)
	}
	sort.Ints(touched)
	changedBranches := make([]int, 0, len(touched))
	for _, off := range touched {
		merged := dedupSorted(append(append([]int(nil), inc.branchTargets[off]...), adds[off]...))
		old, existed := inc.branchTargets[off]
		if existed && len(merged) == len(old) {
			continue // no new targets (duplicates only)
		}
		inc.branchTargets[off] = merged
		changedBranches = append(changedBranches, off)
		if len(merged) == 0 {
			continue // brand-new empty-target branch
		}
		for _, t := range merged[1:] {
			if !inc.unionChecked(merged[0], t) {
				return nil, false
			}
		}
	}

	// Phase C: number the classes. Addresses absent from the published
	// Tary map are the delta; roots without an ECN get fresh numbers,
	// deterministically by smallest member.
	newAddrs := map[int][]int{} // root -> new member addresses
	for _, off := range changedBranches {
		for _, t := range inc.branchTargets[off] {
			if _, published := inc.taryECN[t]; !published {
				r := inc.d.find(t)
				newAddrs[r] = append(newAddrs[r], t)
			}
		}
	}
	type newClass struct {
		root     int
		smallest int
	}
	var fresh []newClass
	for r, members := range newAddrs {
		newAddrs[r] = dedupSorted(members)
		if _, ok := inc.ecnOf[r]; !ok {
			fresh = append(fresh, newClass{root: r, smallest: newAddrs[r][0]})
		}
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].smallest < fresh[j].smallest })
	for _, nc := range fresh {
		if inc.next >= id.MaxECN {
			return nil, false
		}
		inc.ecnOf[nc.root] = inc.next
		inc.next++
	}

	out := &Delta{TaryECN: map[int]int{}, BranchECN: map[int]int{}}
	for r, members := range newAddrs {
		ecn := inc.ecnOf[r]
		for _, t := range members {
			inc.taryECN[t] = ecn
			out.TaryECN[t] = ecn
		}
	}

	// Phase D: branch numbering. Branches whose sets changed adopt
	// their class's ECN; empty-target branches get a memberless
	// singleton each, like Generate.
	for _, off := range changedBranches {
		targets := inc.branchTargets[off]
		var ecn int
		if len(targets) == 0 {
			if old, ok := inc.branchECN[off]; ok {
				ecn = old // keep the published singleton
			} else {
				if inc.next >= id.MaxECN {
					return nil, false
				}
				ecn = inc.next
				inc.next++
			}
		} else {
			ecn = inc.ecnOf[inc.d.find(targets[0])]
		}
		if old, ok := inc.branchECN[off]; !ok || old != ecn {
			inc.branchECN[off] = ecn
			out.BranchECN[off] = ecn
		}
	}
	return out, true
}

// BranchECNs returns the full published branch numbering (branch
// address -> ECN). The runtime uses it to rebuild its Bary image after
// a fallback regeneration check.
func (inc *Incremental) BranchECNs() map[int]int { return inc.branchECN }

// TaryECNs returns the full published target numbering.
func (inc *Incremental) TaryECNs() map[int]int { return inc.taryECN }
