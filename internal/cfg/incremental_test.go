package cfg

import (
	"fmt"
	"sort"
	"testing"

	"mcfi/internal/module"
	"mcfi/internal/visa"
)

// classKeys maps every target address and every branch to a canonical
// description of its equivalence class — the sorted member list — so
// two policies can be compared semantically even when their ECN
// numbering differs (the incremental path preserves old numbers and
// appends; a full regeneration renumbers densely). A branch whose
// class has no members is keyed "∅": all memberless singletons behave
// identically (every transfer violates).
func classKeys(tary, branch map[int]int) (targetKey, branchKey map[int]string) {
	members := map[int][]int{}
	for addr, ecn := range tary {
		members[ecn] = append(members[ecn], addr)
	}
	keyOf := map[int]string{}
	for ecn, ms := range members {
		sort.Ints(ms)
		keyOf[ecn] = fmt.Sprint(ms)
	}
	targetKey = make(map[int]string, len(tary))
	for addr, ecn := range tary {
		targetKey[addr] = keyOf[ecn]
	}
	branchKey = make(map[int]string, len(branch))
	for off, ecn := range branch {
		if k, ok := keyOf[ecn]; ok {
			branchKey[off] = k
		} else {
			branchKey[off] = "∅"
		}
	}
	return targetKey, branchKey
}

func requireSamePolicy(t *testing.T, full *Graph, incTary, incBranch map[int]int) {
	t.Helper()
	fullT, fullB := classKeys(full.TaryECN, full.BranchECN)
	gotT, gotB := classKeys(incTary, incBranch)
	if len(fullT) != len(gotT) {
		t.Errorf("target count: full %d, incremental %d", len(fullT), len(gotT))
	}
	for addr, k := range fullT {
		if gk, ok := gotT[addr]; !ok {
			t.Errorf("target %#x missing from incremental policy", addr)
		} else if gk != k {
			t.Errorf("target %#x class: full %s, incremental %s", addr, k, gk)
		}
	}
	if len(fullB) != len(gotB) {
		t.Errorf("branch count: full %d, incremental %d", len(fullB), len(gotB))
	}
	for off, k := range fullB {
		if gk, ok := gotB[off]; !ok {
			t.Errorf("branch %#x missing from incremental policy", off)
		} else if gk != k {
			t.Errorf("branch %#x class: full %s, incremental %s", off, k, gk)
		}
	}
}

// baseInput is a program with direct and indirect calls, returns, a
// longjmp, a tail call, and a dormant (not yet address-taken) function
// behind an empty-target indirect call.
func deltaBaseInput() Input {
	return Input{
		Profile: visa.Profile64,
		Funcs: []module.FuncInfo{
			{Name: "main", Offset: 0x100, Sig: sigVV},
			{Name: "cb1", Offset: 0x200, Sig: sigII, AddrTaken: true},
			{Name: "cb2", Offset: 0x300, Sig: sigII, AddrTaken: true},
			{Name: "vh", Offset: 0x400, Sig: sigVV, AddrTaken: true},
			{Name: "dorm", Offset: 0x500, Sig: sigLI},
			{Name: "tc", Offset: 0x600, Sig: sigII, AddrTaken: true, TailCalls: []string{"cb1"}},
		},
		IBs: []module.IndirectBranch{
			{Offset: 0x110, Kind: module.IBCall, Func: "main", FpSig: sigII},
			{Offset: 0x118, Kind: module.IBRet, Func: "cb1"},
			{Offset: 0x120, Kind: module.IBLongjmp, Func: "main"},
			{Offset: 0x128, Kind: module.IBCall, Func: "main", FpSig: sigLI},
		},
		RetSites: []module.RetSite{
			{Offset: 0x114, Callee: "cb1"},
			{Offset: 0x11c, FpSig: sigII},
		},
		SetjmpConts: []int{0x130},
	}
}

// plugin1 is a dynamically loaded module: its own indirect calls,
// returns, a PLT branch importing the dormant function (which its load
// also flips address-taken), a longjmp, and a direct call back into
// the base program.
func plugin1() (Input, []string) {
	return Input{
		Profile: visa.Profile64,
		Funcs: []module.FuncInfo{
			{Name: "pe", Offset: 0x1000, Sig: sigII, AddrTaken: true},
			{Name: "pv", Offset: 0x1100, Sig: sigVV, AddrTaken: true},
			{Name: "pl", Offset: 0x1200, Sig: sigLI, AddrTaken: true},
			{Name: "ph", Offset: 0x1300, Sig: sigIC},
		},
		IBs: []module.IndirectBranch{
			{Offset: 0x1010, Kind: module.IBCall, Func: "pe", FpSig: sigVV},
			{Offset: 0x1018, Kind: module.IBRet, Func: "pe"},
			{Offset: 0x1020, Kind: module.IBPLT, PLTSym: "dorm"},
			{Offset: 0x1028, Kind: module.IBLongjmp, Func: "pe"},
		},
		RetSites: []module.RetSite{
			{Offset: 0x1014, Callee: "cb1"},
			{Offset: 0x101c, FpSig: sigII},
		},
		SetjmpConts: []int{0x1040},
	}, []string{"dorm"}
}

func mergeInputs(a, b Input, flipped []string) Input {
	out := Input{Profile: a.Profile}
	out.Funcs = append(append([]module.FuncInfo{}, a.Funcs...), b.Funcs...)
	out.IBs = append(append([]module.IndirectBranch{}, a.IBs...), b.IBs...)
	out.RetSites = append(append([]module.RetSite{}, a.RetSites...), b.RetSites...)
	out.SetjmpConts = append(append([]int{}, a.SetjmpConts...), b.SetjmpConts...)
	out.Annotations = append(append([]string{}, a.Annotations...), b.Annotations...)
	flip := map[string]bool{}
	for _, n := range flipped {
		flip[n] = true
	}
	for i := range out.Funcs {
		if flip[out.Funcs[i].Name] {
			out.Funcs[i].AddrTaken = true
		}
	}
	return out
}

// TestExtendMatchesFullGenerate: two successive module loads through
// Extend produce exactly the policy a full Generate over the merged
// input produces — same target partition, same branch classes — while
// never renumbering a published class.
func TestExtendMatchesFullGenerate(t *testing.T) {
	base := deltaBaseInput()
	g0 := Generate(base)
	inc := NewIncremental(base, g0)

	d1, flipped := plugin1()
	out1, ok := inc.Extend(d1, flipped)
	if !ok {
		t.Fatal("Extend(plugin1) fell back; want incremental")
	}
	merged1 := mergeInputs(base, d1, flipped)
	requireSamePolicy(t, Generate(merged1), inc.TaryECNs(), inc.BranchECNs())

	// The delta must not touch published targets: every address it
	// reports was previously absent.
	for addr := range out1.TaryECN {
		if _, ok := g0.TaryECN[addr]; ok {
			t.Errorf("delta republished existing target %#x", addr)
		}
	}
	// Old-extent additions do appear: dorm (0x500) was just flipped.
	if _, ok := out1.TaryECN[0x500]; !ok {
		t.Error("flipped function dorm did not enter the delta")
	}

	// A second module joining existing classes.
	d2 := Input{
		Profile: visa.Profile64,
		Funcs: []module.FuncInfo{
			{Name: "q1", Offset: 0x2000, Sig: sigVV, AddrTaken: true},
		},
	}
	if _, ok := inc.Extend(d2, nil); !ok {
		t.Fatal("Extend(plugin2) fell back; want incremental")
	}
	merged2 := mergeInputs(merged1, d2, nil)
	requireSamePolicy(t, Generate(merged2), inc.TaryECNs(), inc.BranchECNs())
}

// TestExtendDlsymFlip: the dlsym path — an empty module delta that
// only flips one function address-taken — matches the full rebuild.
func TestExtendDlsymFlip(t *testing.T) {
	base := deltaBaseInput()
	inc := NewIncremental(base, Generate(base))
	out, ok := inc.Extend(Input{Profile: visa.Profile64}, []string{"dorm"})
	if !ok {
		t.Fatal("dlsym flip fell back; want incremental")
	}
	if _, ok := out.TaryECN[0x500]; !ok {
		t.Error("flip did not publish dorm's address")
	}
	// The previously empty-target sigLI branch adopts dorm's class.
	if _, ok := out.BranchECN[0x128]; !ok {
		t.Error("flip did not renumber the dormant call branch")
	}
	full := Generate(mergeInputs(base, Input{Profile: visa.Profile64}, []string{"dorm"}))
	requireSamePolicy(t, full, inc.TaryECNs(), inc.BranchECNs())
}

// TestExtendCrossModuleMergeFallsBack: a variadic function pointer in
// a new module bridges two previously distinct published classes —
// the one change a delta cannot express (existing Tary words would
// have to move) — so Extend must report failure.
func TestExtendCrossModuleMergeFallsBack(t *testing.T) {
	base := Input{
		Profile: visa.Profile64,
		Funcs: []module.FuncInfo{
			{Name: "a", Offset: 0x100, Sig: sigII, AddrTaken: true},
			{Name: "b", Offset: 0x200, Sig: sigIIC, AddrTaken: true},
		},
		IBs: []module.IndirectBranch{
			{Offset: 0x110, Kind: module.IBCall, Func: "a", FpSig: sigII},
			{Offset: 0x118, Kind: module.IBCall, Func: "a", FpSig: sigIIC},
		},
	}
	g := Generate(base)
	if g.Classes != 2 {
		t.Fatalf("base classes = %d, want 2", g.Classes)
	}
	inc := NewIncremental(base, g)
	delta := Input{
		Profile: visa.Profile64,
		IBs: []module.IndirectBranch{
			// int(int,...) matches both int(int) and int(int,char).
			{Offset: 0x1000, Kind: module.IBCall, Func: "a", FpSig: sigIIv},
		},
	}
	if _, ok := inc.Extend(delta, nil); ok {
		t.Fatal("Extend expressed a cross-module class merge; want fallback")
	}
	// The full path handles it: one merged class.
	full := Generate(mergeInputs(base, delta, nil))
	if full.Classes != 1 {
		t.Errorf("full rebuild classes = %d, want 1", full.Classes)
	}
}

// TestExtendAnnotationRetypeFallsBack: an inline-assembly annotation
// naming an already-published function would retype it in place, which
// the incremental path refuses.
func TestExtendAnnotationRetypeFallsBack(t *testing.T) {
	base := deltaBaseInput()
	inc := NewIncremental(base, Generate(base))
	delta := Input{
		Profile:     visa.Profile64,
		Annotations: []string{"dorm : " + sigII},
	}
	if _, ok := inc.Extend(delta, nil); ok {
		t.Fatal("Extend accepted an annotation retyping an existing function")
	}
}
