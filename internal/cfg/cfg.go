// Package cfg implements MCFI's type-matching control-flow-graph
// generation (paper §6) and the equivalence-class construction from
// the classic CFI (paper §2), producing the ECN assignments that the
// ID tables publish.
//
// The generator consumes the merged auxiliary information of all
// currently loaded modules — function types, indirect-branch sites,
// return sites, setjmp continuations — with code offsets already
// rebased to absolute guest addresses. It is deliberately fast
// (straight scans plus a union-find) because it runs inside dynamic
// linking (paper §8.2 reports ~150 ms for gcc-sized inputs).
package cfg

import (
	"sort"

	"mcfi/internal/module"
	"mcfi/internal/visa"
)

// Input is the merged auxiliary information of the loaded modules.
type Input struct {
	Funcs       []module.FuncInfo
	IBs         []module.IndirectBranch
	RetSites    []module.RetSite
	SetjmpConts []int
	Profile     visa.Profile
	// Annotations are inline-assembly "name : signature" records
	// (paper §6, condition C2): they declare extra functions or
	// function pointers visible only to assembly, which the generator
	// honors by treating the named function as address-taken with the
	// annotated type.
	Annotations []string
}

// Graph is the generated control-flow policy.
type Graph struct {
	// TaryECN maps a code address to its equivalence-class number (the
	// getTaryECN function of paper Fig. 3); addresses absent from the
	// map are not indirect-branch targets.
	TaryECN map[int]int
	// BranchECN maps an instrumented indirect branch (keyed by the
	// branch instruction's address) to its branch ECN (getBaryECN).
	BranchECN map[int]int
	// BranchTargets maps each instrumented branch address to its
	// resolved target set (sorted), before equivalence-class merging.
	// Used by the AIR metric, which wants per-branch target counts.
	BranchTargets map[int][]int
	// Classes is the number of target equivalence classes (the EQC
	// column of paper Table 3).
	Classes int
	// ClassMembers lists the target addresses of each class.
	ClassMembers map[int][]int
	// Stats summarizes Table 3 quantities.
	Stats Stats
}

// Stats are the Table 3 quantities for one linked program.
type Stats struct {
	IBs  int // instrumented indirect branches
	IBTs int // possible indirect-branch targets
	EQCs int // equivalence classes of target addresses
}

// union-find over target addresses.
type dsu struct{ parent map[int]int }

func newDSU() *dsu { return &dsu{parent: map[int]int{}} }

func (d *dsu) find(x int) int {
	p, ok := d.parent[x]
	if !ok {
		d.parent[x] = x
		return x
	}
	if p == x {
		return x
	}
	r := d.find(p)
	d.parent[x] = r
	return r
}

func (d *dsu) union(a, b int) {
	ra, rb := d.find(a), d.find(b)
	if ra != rb {
		d.parent[ra] = rb
	}
}

// Generate builds the control-flow policy for the merged modules.
func Generate(in Input) *Graph {
	g := &Graph{
		TaryECN:       map[int]int{},
		BranchECN:     map[int]int{},
		BranchTargets: map[int][]int{},
		ClassMembers:  map[int][]int{},
	}

	funcsByName := map[string]*module.FuncInfo{}
	for i := range in.Funcs {
		funcsByName[in.Funcs[i].Name] = &in.Funcs[i]
	}

	// Inline-assembly annotations add address-taken functions with
	// explicit signatures.
	annotated := parseAnnotations(in.Annotations)
	addrTaken := func(f *module.FuncInfo) bool {
		if f.AddrTaken {
			return true
		}
		_, ok := annotated[f.Name]
		return ok
	}
	sigOf := func(f *module.FuncInfo) string {
		if s, ok := annotated[f.Name]; ok && s != "" {
			return s
		}
		return f.Sig
	}

	// Return-edge computation: retTargets[fname] = the return sites a
	// return in fname may target. Start from the call graph, then chase
	// tail calls (paper §6: "if in function f there is a call node
	// calling g, and g calls h through a series of tail calls, then an
	// edge from the call node in f to h is added").
	retSitesOf := map[string][]int{}
	for _, rs := range in.RetSites {
		if rs.Callee != "" {
			retSitesOf[rs.Callee] = append(retSitesOf[rs.Callee], rs.Offset)
			continue
		}
		// Indirect call: any type-matched address-taken function.
		for i := range in.Funcs {
			f := &in.Funcs[i]
			if addrTaken(f) && SigCallMatch(rs.FpSig, sigOf(f)) {
				retSitesOf[f.Name] = append(retSitesOf[f.Name], rs.Offset)
			}
		}
	}
	// Tail-call chasing: propagate return sites from caller to tail
	// callee until a fixed point.
	if in.Profile == visa.Profile64 {
		chaseTailCalls(in.Funcs, retSitesOf, addrTaken, sigOf)
	}

	// Resolve each instrumented branch's target set.
	for i := range in.IBs {
		ib := &in.IBs[i]
		var targets []int
		switch ib.Kind {
		case module.IBRet:
			targets = retSitesOf[ib.Func]
		case module.IBCall, module.IBTailJmp:
			for j := range in.Funcs {
				f := &in.Funcs[j]
				if addrTaken(f) && SigCallMatch(ib.FpSig, sigOf(f)) {
					targets = append(targets, f.Offset)
				}
			}
		case module.IBLongjmp:
			targets = append(targets, in.SetjmpConts...)
		case module.IBPLT:
			if f, ok := funcsByName[ib.PLTSym]; ok {
				targets = append(targets, f.Offset)
			}
		case module.IBSwitch:
			// Statically verified; not table-checked.
			continue
		}
		targets = dedupSorted(targets)
		g.BranchTargets[ib.Offset] = targets
	}

	// Equivalence classes: merge overlapping target sets (paper §2).
	d := newDSU()
	for _, targets := range g.BranchTargets {
		if len(targets) == 0 {
			continue
		}
		for _, t := range targets[1:] {
			d.union(targets[0], t)
		}
	}

	// Assign dense ECNs per class root, deterministically (by smallest
	// member address).
	rootMembers := map[int][]int{}
	for _, targets := range g.BranchTargets {
		for _, t := range targets {
			r := d.find(t)
			rootMembers[r] = append(rootMembers[r], t)
		}
	}
	roots := make([]int, 0, len(rootMembers))
	for r := range rootMembers {
		rootMembers[r] = dedupSorted(rootMembers[r])
		roots = append(roots, rootMembers[r][0])
	}
	sort.Ints(roots)
	ecnOf := map[int]int{} // class root -> ECN
	next := 1              // ECN 0 is never used: a zero Tary word must stay invalid
	for _, smallest := range roots {
		r := d.find(smallest)
		if _, ok := ecnOf[r]; !ok {
			ecnOf[r] = next
			g.ClassMembers[next] = rootMembers[r]
			next++
		}
	}
	g.Classes = next - 1

	for addr := range d.parent {
		g.TaryECN[addr] = ecnOf[d.find(addr)]
	}
	nIBs := 0
	for i := range in.IBs {
		ib := &in.IBs[i]
		if ib.Kind == module.IBSwitch {
			continue
		}
		nIBs++
		targets := g.BranchTargets[ib.Offset]
		if len(targets) == 0 {
			// No legal target: give the branch a class of its own so
			// every transfer violates (ECN with no members).
			g.BranchECN[ib.Offset] = next
			next++
			continue
		}
		g.BranchECN[ib.Offset] = ecnOf[d.find(targets[0])]
	}

	g.Stats = Stats{IBs: nIBs, IBTs: len(g.TaryECN), EQCs: g.Classes}
	return g
}

// chaseTailCalls propagates return sites through tail-call edges to a
// fixed point.
func chaseTailCalls(funcs []module.FuncInfo, retSitesOf map[string][]int,
	addrTaken func(*module.FuncInfo) bool, sigOf func(*module.FuncInfo) string) {
	edges := buildTailEdges(funcs, addrTaken, sigOf)
	propagateTailCalls(edges, retSitesOf, nil)
}

// buildTailEdges builds the tail-call edge map g -> h (g tail-calls h),
// resolving indirect tail calls by signature match against the
// address-taken functions.
func buildTailEdges(funcs []module.FuncInfo,
	addrTaken func(*module.FuncInfo) bool, sigOf func(*module.FuncInfo) string) map[string][]string {
	edges := map[string][]string{}
	for i := range funcs {
		g := &funcs[i]
		edges[g.Name] = append(edges[g.Name], g.TailCalls...)
		for _, sig := range g.TailSigs {
			for j := range funcs {
				h := &funcs[j]
				if addrTaken(h) && SigCallMatch(sig, sigOf(h)) {
					edges[g.Name] = append(edges[g.Name], h.Name)
				}
			}
		}
	}
	return edges
}

// propagateTailCalls runs the return-site propagation to a fixed point.
// When grew is non-nil, every function whose return-site set gained
// members is recorded in it (the incremental path uses this to find
// which existing return branches need new targets).
func propagateTailCalls(edges map[string][]string, retSitesOf map[string][]int, grew map[string]bool) {
	changed := true
	for changed {
		changed = false
		for gname, callees := range edges {
			sites := retSitesOf[gname]
			if len(sites) == 0 {
				continue
			}
			for _, h := range callees {
				before := len(retSitesOf[h])
				retSitesOf[h] = dedupSorted(append(retSitesOf[h], sites...))
				if len(retSitesOf[h]) != before {
					changed = true
					if grew != nil {
						grew[h] = true
					}
				}
			}
		}
	}
}

func dedupSorted(xs []int) []int {
	if len(xs) == 0 {
		return xs
	}
	sort.Ints(xs)
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
