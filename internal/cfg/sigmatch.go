package cfg

import "strings"

// Function-type signatures (ctypes.Signature) have the shape
//
//	f(<param>,<param>,...)->(<result>)
//
// where each parameter is followed by a comma and a trailing "..."
// marks a variadic type. Parameters may nest parentheses and braces
// (function-pointer and record types), so splitting happens at depth 0
// only.

// parsedSig is a decomposed function-type signature.
type parsedSig struct {
	params   []string
	variadic bool
	result   string
}

// parseSig decomposes a function signature; ok is false for strings
// that are not function signatures.
func parseSig(sig string) (parsedSig, bool) {
	if !strings.HasPrefix(sig, "f(") {
		return parsedSig{}, false
	}
	depth := 0
	var ps parsedSig
	start := 2
	i := 2
	for ; i < len(sig); i++ {
		switch sig[i] {
		case '(', '{':
			depth++
		case ')', '}':
			if depth == 0 {
				goto closed
			}
			depth--
		case ',':
			if depth == 0 {
				part := sig[start:i]
				if part == "" {
					// trailing comma after a previous param
				} else if part == "..." {
					ps.variadic = true
				} else {
					ps.params = append(ps.params, part)
				}
				start = i + 1
			}
		}
	}
	return parsedSig{}, false
closed:
	if rest := sig[start:i]; rest != "" {
		if rest == "..." {
			ps.variadic = true
		} else {
			ps.params = append(ps.params, rest)
		}
	}
	if !strings.HasPrefix(sig[i:], ")->") {
		return parsedSig{}, false
	}
	ps.result = sig[i+3:]
	return ps, true
}

// SigCallMatch implements the type-matching rule of paper §6 on
// signature strings: an indirect call through a function pointer whose
// pointee signature is fpSig may target a function with signature
// fnSig when the signatures are structurally equal, or — for variadic
// pointers — when the return types match and the function's parameters
// begin with the pointer's fixed parameter types.
func SigCallMatch(fpSig, fnSig string) bool {
	if fpSig == "" || fnSig == "" {
		return false
	}
	if fpSig == fnSig {
		return true
	}
	fp, ok := parseSig(fpSig)
	if !ok || !fp.variadic {
		return false
	}
	fn, ok := parseSig(fnSig)
	if !ok {
		return false
	}
	if fp.result != fn.result {
		return false
	}
	if len(fn.params) < len(fp.params) {
		return false
	}
	for i := range fp.params {
		if fp.params[i] != fn.params[i] {
			return false
		}
	}
	return true
}

// parseAnnotations decodes inline-assembly annotations of the form
// "name : signature" into a map. Annotations whose signature part is a
// function-pointer signature ("*f(...)") are normalized to the pointee.
func parseAnnotations(anns []string) map[string]string {
	out := map[string]string{}
	for _, a := range anns {
		idx := strings.Index(a, ":")
		if idx < 0 {
			continue
		}
		name := strings.TrimSpace(a[:idx])
		sig := strings.TrimSpace(a[idx+1:])
		sig = strings.TrimPrefix(sig, "*")
		if name != "" {
			out[name] = sig
		}
	}
	return out
}
