package cfg

import (
	"testing"

	"mcfi/internal/ctypes"
	"mcfi/internal/module"
	"mcfi/internal/visa"
)

func sig(result *ctypes.Type, params []*ctypes.Type, variadic bool) string {
	return ctypes.Signature(ctypes.FuncOf(result, params, variadic))
}

var (
	sigII  = sig(ctypes.IntType, []*ctypes.Type{ctypes.IntType}, false)  // int(int)
	sigVV  = sig(ctypes.VoidType, nil, false)                            // void(void)
	sigIIv = sig(ctypes.IntType, []*ctypes.Type{ctypes.IntType}, true)   // int(int,...)
	sigLI  = sig(ctypes.LongType, []*ctypes.Type{ctypes.IntType}, false) // long(int)
	sigIC  = sig(ctypes.IntType, []*ctypes.Type{ctypes.CharType}, false) // int(char)
	sigIIC = sig(ctypes.IntType, []*ctypes.Type{ctypes.IntType, ctypes.CharType}, false)
)

func TestParseSig(t *testing.T) {
	ps, ok := parseSig(sigII)
	if !ok || len(ps.params) != 1 || ps.variadic || ps.result != "i" {
		t.Errorf("parseSig(%q) = %+v, %v", sigII, ps, ok)
	}
	ps, ok = parseSig(sigIIv)
	if !ok || !ps.variadic || len(ps.params) != 1 {
		t.Errorf("parseSig(%q) = %+v, %v", sigIIv, ps, ok)
	}
	// Nested function-pointer parameter.
	fp := ctypes.PointerTo(ctypes.FuncOf(ctypes.IntType, []*ctypes.Type{ctypes.IntType}, false))
	nested := sig(ctypes.IntType, []*ctypes.Type{fp, ctypes.IntType}, false)
	ps, ok = parseSig(nested)
	if !ok || len(ps.params) != 2 {
		t.Errorf("parseSig(%q) = %+v, %v", nested, ps, ok)
	}
	// Record parameter with fields (braces containing semicolons).
	rec := &ctypes.Type{Kind: ctypes.Struct, Fields: []ctypes.Field{
		{Name: "a", Type: ctypes.IntType}, {Name: "b", Type: fp}}}
	withRec := sig(ctypes.VoidType, []*ctypes.Type{ctypes.PointerTo(rec), ctypes.LongType}, false)
	ps, ok = parseSig(withRec)
	if !ok || len(ps.params) != 2 {
		t.Errorf("parseSig(%q) = %+v, %v", withRec, ps, ok)
	}
	if _, ok := parseSig("i"); ok {
		t.Error("non-function signature should not parse")
	}
	if _, ok := parseSig("f(i,"); ok {
		t.Error("unterminated signature should not parse")
	}
}

func TestSigCallMatch(t *testing.T) {
	cases := []struct {
		fp, fn string
		want   bool
	}{
		{sigII, sigII, true},
		{sigII, sigLI, false},
		{sigII, sigIC, false},
		{sigIIv, sigII, true},  // int(int,...) matches int(int)
		{sigIIv, sigIIC, true}, // and int(int,char)
		{sigIIv, sigIC, false}, // but not int(char)
		{sigIIv, sigLI, false}, // return type must match
		{sigVV, sigII, false},
		{"", sigII, false},
		{sigII, "", false},
	}
	for _, c := range cases {
		if got := SigCallMatch(c.fp, c.fn); got != c.want {
			t.Errorf("SigCallMatch(%q, %q) = %v, want %v", c.fp, c.fn, got, c.want)
		}
	}
}

// baseInput builds a small program:
//
//	main calls helper directly (ret site 100) and fp() indirectly
//	(ret site 200, type int(int)); cb1 and cb2 are address-taken
//	int(int); cb3 is address-taken void(void); helper is not
//	address-taken.
func baseInput(profile visa.Profile) Input {
	return Input{
		Profile: profile,
		Funcs: []module.FuncInfo{
			{Name: "main", Offset: 0x1000, Size: 0x100, Sig: sigVV},
			{Name: "helper", Offset: 0x1100, Size: 0x40, Sig: sigII},
			{Name: "cb1", Offset: 0x1200, Size: 0x40, Sig: sigII, AddrTaken: true},
			{Name: "cb2", Offset: 0x1300, Size: 0x40, Sig: sigII, AddrTaken: true},
			{Name: "cb3", Offset: 0x1400, Size: 0x40, Sig: sigVV, AddrTaken: true},
		},
		IBs: []module.IndirectBranch{
			{Offset: 0x10F0, Kind: module.IBRet, Func: "main"},
			{Offset: 0x1130, Kind: module.IBRet, Func: "helper"},
			{Offset: 0x1230, Kind: module.IBRet, Func: "cb1"},
			{Offset: 0x1330, Kind: module.IBRet, Func: "cb2"},
			{Offset: 0x1430, Kind: module.IBRet, Func: "cb3"},
			{Offset: 0x1050, Kind: module.IBCall, Func: "main", FpSig: sigII},
		},
		RetSites: []module.RetSite{
			{Offset: 0x1004, Callee: "helper"},
			{Offset: 0x1008, FpSig: sigII},
		},
	}
}

func TestGenerateTypeMatching(t *testing.T) {
	g := Generate(baseInput(visa.Profile32))

	icallTargets := g.BranchTargets[0x1050]
	if len(icallTargets) != 2 {
		t.Fatalf("icall targets = %v, want cb1+cb2", icallTargets)
	}
	if icallTargets[0] != 0x1200 || icallTargets[1] != 0x1300 {
		t.Errorf("icall targets = %#v", icallTargets)
	}
	// cb3 (void(void)) must not be a target: no indirect call of that
	// type exists, so its entry address has no Tary entry either.
	if _, ok := g.TaryECN[0x1400]; ok {
		t.Error("cb3 should not be a Tary target")
	}
	// helper's return goes to the direct-call site.
	if ts := g.BranchTargets[0x1130]; len(ts) != 1 || ts[0] != 0x1004 {
		t.Errorf("helper return targets = %v", ts)
	}
	// cb1/cb2 returns both go to the indirect-call ret site; same class.
	if g.BranchECN[0x1230] != g.BranchECN[0x1330] {
		t.Error("cb1 and cb2 returns should share an ECN")
	}
	// main's return has no callers: fresh violating class.
	if _, ok := g.BranchECN[0x10F0]; !ok {
		t.Error("main's return must still get a branch ECN")
	}
	// cb1 and cb2 entries share a class; helper's ret site is distinct.
	if g.TaryECN[0x1200] != g.TaryECN[0x1300] {
		t.Error("cb1 and cb2 entries should share a class")
	}
	if g.TaryECN[0x1004] == g.TaryECN[0x1200] {
		t.Error("direct-call ret site should not share the icall target class")
	}
	if g.Stats.IBs != 6 {
		t.Errorf("IBs = %d, want 6", g.Stats.IBs)
	}
	// Targets: cb1, cb2 entries + 2 ret sites = 4.
	if g.Stats.IBTs != 4 {
		t.Errorf("IBTs = %d, want 4", g.Stats.IBTs)
	}
	// Classes: {cb1,cb2}, {0x1004}, {0x1008} = 3.
	if g.Stats.EQCs != 3 {
		t.Errorf("EQCs = %d, want 3", g.Stats.EQCs)
	}
}

func TestECNsStartAtOneAndDense(t *testing.T) {
	g := Generate(baseInput(visa.Profile32))
	seen := map[int]bool{}
	for _, e := range g.TaryECN {
		if e < 1 {
			t.Fatalf("ECN %d < 1", e)
		}
		seen[e] = true
	}
	for e := 1; e <= g.Classes; e++ {
		if !seen[e] {
			t.Errorf("ECN %d unused (not dense)", e)
		}
	}
}

func TestTailCallChasing(t *testing.T) {
	// f calls g (ret site S); g tail-calls h. On Profile64 a return in
	// h may target S; on Profile32 the aux carries no tail-call info.
	in := Input{
		Profile: visa.Profile64,
		Funcs: []module.FuncInfo{
			{Name: "f", Offset: 0x1000, Size: 0x40, Sig: sigVV},
			{Name: "g", Offset: 0x1100, Size: 0x40, Sig: sigII, TailCalls: []string{"h"}},
			{Name: "h", Offset: 0x1200, Size: 0x40, Sig: sigII},
		},
		IBs: []module.IndirectBranch{
			{Offset: 0x1230, Kind: module.IBRet, Func: "h"},
			{Offset: 0x1130, Kind: module.IBRet, Func: "g"},
		},
		RetSites: []module.RetSite{
			{Offset: 0x1008, Callee: "g"},
		},
	}
	g := Generate(in)
	if ts := g.BranchTargets[0x1230]; len(ts) != 1 || ts[0] != 0x1008 {
		t.Errorf("h's return targets = %v, want [0x1008]", ts)
	}
	// Same input on Profile32 still records the aux, but chasing is the
	// 64-bit compiler's behaviour; h has no callers of its own.
	in.Profile = visa.Profile32
	g32 := Generate(in)
	if ts := g32.BranchTargets[0x1230]; len(ts) != 0 {
		t.Errorf("h's return targets on 32-bit = %v, want none", ts)
	}
}

func TestIndirectTailCallChasing(t *testing.T) {
	// g makes an indirect tail call of type int(int); h matches.
	in := Input{
		Profile: visa.Profile64,
		Funcs: []module.FuncInfo{
			{Name: "g", Offset: 0x1100, Size: 0x40, Sig: sigII, TailSigs: []string{sigII}},
			{Name: "h", Offset: 0x1200, Size: 0x40, Sig: sigII, AddrTaken: true},
		},
		IBs: []module.IndirectBranch{
			{Offset: 0x1230, Kind: module.IBRet, Func: "h"},
		},
		RetSites: []module.RetSite{
			{Offset: 0x1008, Callee: "g"},
		},
	}
	g := Generate(in)
	if ts := g.BranchTargets[0x1230]; len(ts) != 1 || ts[0] != 0x1008 {
		t.Errorf("h's return targets = %v, want [0x1008]", ts)
	}
}

func TestLongjmpEdges(t *testing.T) {
	in := Input{
		Profile: visa.Profile64,
		Funcs: []module.FuncInfo{
			{Name: "f", Offset: 0x1000, Size: 0x100, Sig: sigVV},
		},
		IBs: []module.IndirectBranch{
			{Offset: 0x1080, Kind: module.IBLongjmp, Func: "f"},
		},
		SetjmpConts: []int{0x1010, 0x1044},
	}
	g := Generate(in)
	ts := g.BranchTargets[0x1080]
	if len(ts) != 2 || ts[0] != 0x1010 || ts[1] != 0x1044 {
		t.Errorf("longjmp targets = %v", ts)
	}
	// Both continuations are merged into one class.
	if g.TaryECN[0x1010] != g.TaryECN[0x1044] {
		t.Error("setjmp continuations should share a class")
	}
}

func TestPLTEdges(t *testing.T) {
	in := Input{
		Profile: visa.Profile64,
		Funcs: []module.FuncInfo{
			{Name: "libfn", Offset: 0x2000, Size: 0x40, Sig: sigII},
		},
		IBs: []module.IndirectBranch{
			{Offset: 0x1800, Kind: module.IBPLT, Func: "", PLTSym: "libfn"},
			{Offset: 0x1840, Kind: module.IBPLT, Func: "", PLTSym: "missing"},
		},
	}
	g := Generate(in)
	if ts := g.BranchTargets[0x1800]; len(ts) != 1 || ts[0] != 0x2000 {
		t.Errorf("resolved PLT targets = %v", ts)
	}
	if ts := g.BranchTargets[0x1840]; len(ts) != 0 {
		t.Errorf("unresolved PLT targets = %v, want none", ts)
	}
	// The unresolved PLT branch must have an ECN that matches nothing.
	ecn := g.BranchECN[0x1840]
	for _, e := range g.TaryECN {
		if e == ecn {
			t.Error("unresolved PLT ECN collides with a real class")
		}
	}
}

func TestSwitchNotTableChecked(t *testing.T) {
	in := Input{
		Profile: visa.Profile64,
		Funcs: []module.FuncInfo{
			{Name: "f", Offset: 0x1000, Size: 0x100, Sig: sigVV},
		},
		IBs: []module.IndirectBranch{
			{Offset: 0x1040, Kind: module.IBSwitch, Func: "f", Targets: []int{0x1050, 0x1060}},
		},
	}
	g := Generate(in)
	if len(g.TaryECN) != 0 {
		t.Errorf("switch targets should not enter Tary: %v", g.TaryECN)
	}
	if _, ok := g.BranchECN[0x1040]; ok {
		t.Error("switch branch should not get a Bary ECN")
	}
	if g.Stats.IBs != 0 {
		t.Errorf("switch should not count as an instrumented IB, got %d", g.Stats.IBs)
	}
}

func TestVariadicCallTargets(t *testing.T) {
	in := Input{
		Profile: visa.Profile64,
		Funcs: []module.FuncInfo{
			{Name: "printf_like", Offset: 0x1000, Size: 0x40, Sig: sigIIC, AddrTaken: true},
			{Name: "intint", Offset: 0x1100, Size: 0x40, Sig: sigII, AddrTaken: true},
			{Name: "wrong", Offset: 0x1200, Size: 0x40, Sig: sigIC, AddrTaken: true},
		},
		IBs: []module.IndirectBranch{
			{Offset: 0x1300, Kind: module.IBCall, Func: "main", FpSig: sigIIv},
		},
	}
	g := Generate(in)
	ts := g.BranchTargets[0x1300]
	if len(ts) != 2 {
		t.Fatalf("variadic call targets = %v, want 2", ts)
	}
}

func TestAsmAnnotationAddsTarget(t *testing.T) {
	// memfast is not address-taken in C code, but an asm annotation
	// declares it; the annotated type drives matching.
	in := Input{
		Profile: visa.Profile64,
		Funcs: []module.FuncInfo{
			{Name: "memfast", Offset: 0x1000, Size: 0x40, Sig: sigVV},
		},
		IBs: []module.IndirectBranch{
			{Offset: 0x1100, Kind: module.IBCall, Func: "main", FpSig: sigII},
		},
		Annotations: []string{"memfast : " + sigII},
	}
	g := Generate(in)
	if ts := g.BranchTargets[0x1100]; len(ts) != 1 || ts[0] != 0x1000 {
		t.Errorf("annotated targets = %v", ts)
	}
}

func TestGnuPGAttackScenario(t *testing.T) {
	// Paper §8.3: a hijacked function pointer cannot reach execve
	// because the types do not match. Model: fp type void(void);
	// execve-analogue has a different type and is address-taken.
	sigExec := sig(ctypes.IntType, []*ctypes.Type{
		ctypes.PointerTo(ctypes.CharType),
		ctypes.PointerTo(ctypes.PointerTo(ctypes.CharType)),
	}, false)
	in := Input{
		Profile: visa.Profile64,
		Funcs: []module.FuncInfo{
			{Name: "execve", Offset: 0x3000, Size: 0x40, Sig: sigExec, AddrTaken: true},
			{Name: "cb", Offset: 0x1000, Size: 0x40, Sig: sigVV, AddrTaken: true},
		},
		IBs: []module.IndirectBranch{
			{Offset: 0x1500, Kind: module.IBCall, Func: "main", FpSig: sigVV},
		},
	}
	g := Generate(in)
	for _, tgt := range g.BranchTargets[0x1500] {
		if tgt == 0x3000 {
			t.Fatal("void(void) fp must not reach execve")
		}
	}
	if g.TaryECN[0x3000] == 0 {
		// execve is address-taken but no indirect call matches it: it
		// should not even be a Tary target.
		if _, ok := g.TaryECN[0x3000]; ok {
			t.Error("execve with no matching callers should have no Tary entry")
		}
	}
}

func TestMergingOverlappingSets(t *testing.T) {
	// Two indirect calls with sets {A,B} and {B,C}: classic CFI merges
	// them into one class {A,B,C} (paper §2 precision loss).
	in := Input{
		Profile: visa.Profile64,
		Funcs: []module.FuncInfo{
			{Name: "A", Offset: 0x1000, Size: 8, Sig: sigII, AddrTaken: true},
			{Name: "B", Offset: 0x1100, Size: 8, Sig: sigII, AddrTaken: true},
			{Name: "C", Offset: 0x1200, Size: 8, Sig: sigLI, AddrTaken: true},
		},
		IBs: []module.IndirectBranch{
			{Offset: 0x2000, Kind: module.IBCall, Func: "m", FpSig: sigII},
			{Offset: 0x2100, Kind: module.IBCall, Func: "m", FpSig: sigLI},
		},
	}
	g := Generate(in)
	// Here the sets don't overlap ({A,B} vs {C}), so two classes.
	if g.Classes != 2 {
		t.Errorf("classes = %d, want 2", g.Classes)
	}
	// Now force an overlap through a longjmp-style shared target: both
	// call sigs match B via annotation trickery is overkill; instead
	// simulate two rets sharing a site.
	in2 := Input{
		Profile: visa.Profile64,
		Funcs: []module.FuncInfo{
			{Name: "f", Offset: 0x1000, Size: 8, Sig: sigII},
			{Name: "g", Offset: 0x1100, Size: 8, Sig: sigII},
		},
		IBs: []module.IndirectBranch{
			{Offset: 0x1040, Kind: module.IBRet, Func: "f"},
			{Offset: 0x1140, Kind: module.IBRet, Func: "g"},
		},
		RetSites: []module.RetSite{
			{Offset: 0x2000, Callee: "f"},
			{Offset: 0x2004, Callee: "g"},
			{Offset: 0x2008, Callee: "f"},
		},
	}
	// g and f share no ret sites here, so classes stay separate.
	g2 := Generate(in2)
	if g2.BranchECN[0x1040] == g2.BranchECN[0x1140] {
		t.Error("f and g returns should be in different classes")
	}
	// Add a shared site: an fp call whose type matches both f and g
	// would merge them — model by marking both addr-taken with an
	// indirect ret site.
	in2.Funcs[0].AddrTaken = true
	in2.Funcs[1].AddrTaken = true
	in2.RetSites = append(in2.RetSites, module.RetSite{Offset: 0x200C, FpSig: sigII})
	g3 := Generate(in2)
	if g3.BranchECN[0x1040] != g3.BranchECN[0x1140] {
		t.Error("shared indirect ret site must merge f and g return classes")
	}
}

func TestDeterministicECNs(t *testing.T) {
	a := Generate(baseInput(visa.Profile64))
	for i := 0; i < 5; i++ {
		b := Generate(baseInput(visa.Profile64))
		if a.Classes != b.Classes {
			t.Fatal("class count not deterministic")
		}
		for addr, e := range a.TaryECN {
			if b.TaryECN[addr] != e {
				t.Fatalf("TaryECN[%#x] differs across runs: %d vs %d", addr, e, b.TaryECN[addr])
			}
		}
		for off, e := range a.BranchECN {
			if b.BranchECN[off] != e {
				t.Fatalf("BranchECN[%#x] differs across runs", off)
			}
		}
	}
}
