package server

import (
	"sync"
	"sync/atomic"

	"mcfi/internal/linker"
)

// BuildCache is a content-addressed, singleflight cache of linked
// images, keyed by toolchain.Builder.Fingerprint. Concurrent Gets for
// the same key share ONE build: the first caller compiles while the
// rest block on the entry's ready channel, so a burst of identical
// jobs (the common serving pattern — many tenants running the same
// workload) costs one compile and N-1 cache hits.
//
// Failed builds are cached too: compilation is deterministic, so a
// source that failed once fails forever, and re-compiling it per
// request would hand hostile tenants a cheap CPU-burn primitive.
type BuildCache struct {
	mu      sync.Mutex
	entries map[string]*buildEntry
	// order is the FIFO eviction queue (oldest first). Entries are
	// only evicted once built, so a key is never in flight twice.
	order []string
	max   int

	hits   atomic.Int64
	misses atomic.Int64
	builds atomic.Int64
}

type buildEntry struct {
	ready chan struct{} // closed when img/err are final
	img   *linker.Image
	err   error
}

// DefaultCacheEntries bounds the cache when the config does not.
const DefaultCacheEntries = 256

// NewBuildCache returns a cache holding at most max images (<= 0 means
// DefaultCacheEntries).
func NewBuildCache(max int) *BuildCache {
	if max <= 0 {
		max = DefaultCacheEntries
	}
	return &BuildCache{entries: map[string]*buildEntry{}, max: max}
}

// Get returns the image for key, building it with build() if no entry
// exists. The boolean reports whether the result came from the cache
// (including waiting on another caller's in-flight build — the build
// itself was shared, which is what the hit metric means).
func (c *BuildCache) Get(key string, build func() (*linker.Image, error)) (*linker.Image, bool, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		<-e.ready
		return e.img, true, e.err
	}
	e := &buildEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.order = append(c.order, key)
	c.evictLocked()
	c.mu.Unlock()

	c.misses.Add(1)
	c.builds.Add(1)
	e.img, e.err = build()
	close(e.ready)
	return e.img, false, e.err
}

// evictLocked drops the oldest BUILT entries until the cache fits.
// In-flight entries are skipped (waiters hold a pointer to them; the
// map entry must stay so duplicates keep coalescing).
func (c *BuildCache) evictLocked() {
	for len(c.entries) > c.max {
		evicted := false
		for i, k := range c.order {
			e := c.entries[k]
			select {
			case <-e.ready:
			default:
				continue // still building
			}
			delete(c.entries, k)
			c.order = append(c.order[:i], c.order[i+1:]...)
			evicted = true
			break
		}
		if !evicted {
			return // everything in flight; over-full transiently
		}
	}
}

// CacheStats is a point-in-time view of cache effectiveness.
type CacheStats struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	Builds  int64   `json:"builds"`
	Entries int     `json:"entries"`
	HitRate float64 `json:"hit_rate"`
}

// Stats snapshots the counters.
func (c *BuildCache) Stats() CacheStats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	h, m := c.hits.Load(), c.misses.Load()
	s := CacheStats{Hits: h, Misses: m, Builds: c.builds.Load(), Entries: n}
	if h+m > 0 {
		s.HitRate = float64(h) / float64(h+m)
	}
	return s
}
