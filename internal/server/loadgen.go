package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"mcfi/internal/workload"
)

// LoadConfig drives a load run against a serving endpoint.
type LoadConfig struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8377".
	BaseURL string
	// Concurrency is the number of in-flight requests (default 8).
	Concurrency int
	// Requests is the total jobs to complete (default 3 per workload).
	Requests int
	// Workloads cycles through these benchmark names (default: all 12).
	Workloads []string
	// Work overrides the iteration count; 0 = reference inputs;
	// UseTestWork uses each workload's reduced test scale instead.
	Work        int
	UseTestWork bool
	// Engine/Baseline/MaxInstr/TimeoutMs pass through to every job.
	Engine    string
	Baseline  bool
	MaxInstr  int64
	TimeoutMs int64
	// Client overrides the HTTP client (default: 5-minute timeout).
	Client *http.Client
}

// LoadReport is the serving-throughput snapshot a load run emits
// (the BENCH_*_serving.json schema).
type LoadReport struct {
	Kind        string   `json:"kind"` // "mcfi-serve-load"
	Concurrency int      `json:"concurrency"`
	Requests    int      `json:"requests"`
	Workloads   []string `json:"workloads"`
	Engine      string   `json:"engine"`

	WallSecs     float64 `json:"wall_secs"`
	JobsPerSec   float64 `json:"jobs_per_sec"`
	GuestInstret int64   `json:"guest_instret"`
	// MinstrPerSecWall is end-to-end serving throughput: aggregate
	// retired guest instructions over the whole run's wall time
	// (queueing, builds, and cache hits included).
	MinstrPerSecWall float64 `json:"minstr_per_sec_wall"`
	// MinstrPerSecExec is the server's execution-only throughput from
	// its /metrics (instret over summed per-job run time).
	MinstrPerSecExec float64 `json:"minstr_per_sec_exec"`

	CacheHitRate float64 `json:"cache_hit_rate"`
	// StoreTiers counts completed jobs by where their image came from
	// ("mem", "disk", "remote", "built") as reported per response.
	StoreTiers map[string]int64 `json:"store_tiers"`
	Rejected   int64            `json:"rejected_429"`
	Statuses   map[string]int64 `json:"statuses"`
	// ServerMetrics is the endpoint's final /metrics document.
	ServerMetrics *Metrics `json:"server_metrics,omitempty"`
}

// RunLoad hammers the endpoint with a mixed workload set at the
// configured concurrency until Requests jobs complete, then snapshots
// the server's metrics. Queue-full rejections (HTTP 429) are counted
// and retried with backoff — backpressure is an expected, measured
// outcome, not a failure. Any transport-level error aborts the run.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if len(cfg.Workloads) == 0 {
		for _, w := range workload.All() {
			cfg.Workloads = append(cfg.Workloads, w.Name)
		}
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 3 * len(cfg.Workloads)
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Minute}
	}

	rep := &LoadReport{
		Kind:        "mcfi-serve-load",
		Concurrency: cfg.Concurrency,
		Requests:    cfg.Requests,
		Workloads:   cfg.Workloads,
		Engine:      cfg.Engine,
		Statuses:    map[string]int64{},
		StoreTiers:  map[string]int64{},
	}

	reqOf := func(i int) JobRequest {
		name := cfg.Workloads[i%len(cfg.Workloads)]
		work := cfg.Work
		if cfg.UseTestWork {
			if w, ok := workload.ByName(name); ok {
				work = w.TestWork
			}
		}
		return JobRequest{
			Workload: name, Work: work,
			Engine: cfg.Engine, Baseline: cfg.Baseline,
			MaxInstr: cfg.MaxInstr, TimeoutMs: cfg.TimeoutMs,
		}
	}

	var (
		mu       sync.Mutex
		firstErr error
		hits     int64
		results  int64
	)
	idx := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				res, err := postJob(ctx, client, cfg.BaseURL, reqOf(i), &rep.Rejected, &mu)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				results++
				rep.Statuses[res.Status]++
				rep.GuestInstret += res.Instret
				if res.StoreTier != "" {
					rep.StoreTiers[res.StoreTier]++
				}
				if res.BuildCacheHit {
					hits++
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < cfg.Requests; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			i = cfg.Requests
		}
	}
	close(idx)
	wg.Wait()
	rep.WallSecs = time.Since(start).Seconds()
	if firstErr != nil {
		return rep, firstErr
	}
	if err := ctx.Err(); err != nil {
		return rep, err
	}

	rep.JobsPerSec = float64(results) / rep.WallSecs
	if results > 0 {
		rep.CacheHitRate = float64(hits) / float64(results)
	}
	if rep.WallSecs > 0 {
		rep.MinstrPerSecWall = float64(rep.GuestInstret) / rep.WallSecs / 1e6
	}

	m, err := fetchMetrics(ctx, client, cfg.BaseURL)
	if err == nil {
		rep.ServerMetrics = m
		rep.MinstrPerSecExec = m.Exec.MinstrPerSec
	}
	return rep, nil
}

// postJob POSTs one job, retrying 429s with backoff (each rejection is
// counted under the caller's lock).
func postJob(ctx context.Context, client *http.Client, base string, jr JobRequest, rejected *int64, mu *sync.Mutex) (*JobResult, error) {
	body, err := json.Marshal(jr)
	if err != nil {
		return nil, err
	}
	backoff := 5 * time.Millisecond
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/run", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var res JobResult
			if err := json.Unmarshal(data, &res); err != nil {
				return nil, fmt.Errorf("bad /run response: %v", err)
			}
			return &res, nil
		case http.StatusTooManyRequests:
			mu.Lock()
			*rejected++
			mu.Unlock()
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if backoff < 200*time.Millisecond {
				backoff *= 2
			}
		default:
			return nil, fmt.Errorf("POST /run: %s: %s", resp.Status, bytes.TrimSpace(data))
		}
	}
}

func fetchMetrics(ctx context.Context, client *http.Client, base string) (*Metrics, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Summary renders the report as the human-readable table mcfi-load
// prints.
func (r *LoadReport) Summary() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "serving load: %d jobs, concurrency %d, %d workloads, %.2fs wall\n",
		r.Requests, r.Concurrency, len(r.Workloads), r.WallSecs)
	fmt.Fprintf(&b, "  throughput: %.2f jobs/s, %.2f Minstr/s end-to-end, %.2f Minstr/s exec\n",
		r.JobsPerSec, r.MinstrPerSecWall, r.MinstrPerSecExec)
	fmt.Fprintf(&b, "  build store: %.0f%% hit rate (mem=%d disk=%d remote=%d built=%d); backpressure: %d rejections retried\n",
		100*r.CacheHitRate, r.StoreTiers["mem"], r.StoreTiers["disk"],
		r.StoreTiers["remote"], r.StoreTiers["built"], r.Rejected)
	var keys []string
	for k := range r.Statuses {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(&b, "  outcomes:")
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%d", k, r.Statuses[k])
	}
	fmt.Fprintln(&b)
	if m := r.ServerMetrics; m != nil {
		fmt.Fprintf(&b, "  server: %d accepted, %d completed, %d CFI violations, %d timeouts, %d checks (%d verdict-cache hits)\n",
			m.Jobs.Accepted, m.Jobs.Completed, m.Jobs.CFIViolations,
			m.Jobs.Timeouts, m.Exec.CheckExecs, m.Exec.VerdictHits)
	}
	return b.String()
}
