package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mcfi/internal/workload"
)

// LoadConfig drives a load run against one serving endpoint or a
// replica set.
type LoadConfig struct {
	// BaseURL is a single server root, e.g. "http://127.0.0.1:8377".
	// Addrs lists several replica roots; submissions round-robin
	// across them (the replicas' own fingerprint routing decides where
	// each job executes). Setting both treats BaseURL as one more
	// replica.
	BaseURL string
	Addrs   []string
	// Concurrency is the number of in-flight requests (default 8).
	Concurrency int
	// Requests is the total jobs to complete (default 3 per workload).
	Requests int
	// Tenants cycles jobs across these tenant names (default: the
	// server-side default tenant).
	Tenants []string
	// Workloads cycles through these benchmark names (default: all 12).
	Workloads []string
	// Distinct > 0 switches the corpus from named workloads to Distinct
	// deterministic synthetic sources (SyntheticFuncs functions each,
	// default 256): build-heavy, run-light jobs whose working set
	// exercises the build store rather than guest execution.
	Distinct       int
	SyntheticFuncs int
	// Batch > 1 submits jobs through POST /v1/batch in groups of Batch
	// (refused jobs are retried after the advertised Retry-After).
	Batch int
	// JobMix assigns relative weights to job kinds ("run", "dlopen",
	// "jitsim"); jobs cycle through a deterministic weighted pattern.
	// Empty or {"run": n} means plain run jobs only. Non-run kinds
	// ignore the corpus settings (the server synthesizes their guests).
	JobMix map[string]int
	// Work overrides the iteration count; 0 = reference inputs;
	// UseTestWork uses each workload's reduced test scale instead.
	Work        int
	UseTestWork bool
	// Engine/Baseline/MaxInstr/TimeoutMs pass through to every job.
	Engine    string
	Baseline  bool
	MaxInstr  int64
	TimeoutMs int64
	// RetryCap bounds how long a worker sleeps on a server's
	// Retry-After before resubmitting (default 500ms, so short smoke
	// runs are not serialized by the server's 1s clamp floor).
	RetryCap time.Duration
	// Client overrides the HTTP client (default: 5-minute timeout).
	Client *http.Client
}

// TenantLoad is one tenant's slice of a load run, as observed by the
// client.
type TenantLoad struct {
	Tenant   string  `json:"tenant"`
	Jobs     int64   `json:"jobs"`
	Rejected int64   `json:"rejected_429"`
	MeanMs   float64 `json:"mean_ms"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// KindLoad is one job kind's slice of a mixed load run, with its own
// latency distribution (a dlopen job and a qsort run have very
// different cost profiles; mixing their percentiles hides both).
type KindLoad struct {
	Kind   string  `json:"kind"`
	Jobs   int64   `json:"jobs"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	// Updates/DeltaPublishes aggregate the update-transaction counters
	// the server reports per job (non-zero for dynamic kinds).
	Updates        int64 `json:"updates,omitempty"`
	DeltaPublishes int64 `json:"delta_publishes,omitempty"`
}

// ReplicaLoad is one replica's slice of a load run: jobs attributed by
// the JobResult.Replica field (falling back to the submission address
// outside cluster mode), plus that replica's final /metrics.
type ReplicaLoad struct {
	Addr    string `json:"addr"`
	Jobs    int64  `json:"jobs"`
	Proxied int64  `json:"proxied"`
	// HitRate is the fraction of this replica's jobs served from any
	// store tier (not freshly built).
	HitRate    float64          `json:"hit_rate"`
	StoreTiers map[string]int64 `json:"store_tiers"`
	MeanMs     float64          `json:"mean_ms"`
	P95Ms      float64          `json:"p95_ms"`
	Metrics    *Metrics         `json:"metrics,omitempty"`
}

// LoadReport is the serving-throughput snapshot a load run emits
// (the BENCH_*_serving.json schema).
type LoadReport struct {
	Kind        string   `json:"kind"` // "mcfi-serve-load"
	Addrs       []string `json:"addrs"`
	Concurrency int      `json:"concurrency"`
	Requests    int      `json:"requests"`
	Workloads   []string `json:"workloads,omitempty"`
	Distinct    int      `json:"distinct_sources,omitempty"`
	BatchSize   int      `json:"batch_size,omitempty"`
	Engine      string   `json:"engine"`

	WallSecs     float64 `json:"wall_secs"`
	JobsPerSec   float64 `json:"jobs_per_sec"`
	GuestInstret int64   `json:"guest_instret"`
	// MinstrPerSecWall is end-to-end serving throughput: aggregate
	// retired guest instructions over the whole run's wall time
	// (queueing, builds, and cache hits included).
	MinstrPerSecWall float64 `json:"minstr_per_sec_wall"`
	// MinstrPerSecExec is the server's execution-only throughput from
	// its /metrics (instret over summed per-job run time).
	MinstrPerSecExec float64 `json:"minstr_per_sec_exec"`

	CacheHitRate float64 `json:"cache_hit_rate"`
	// StoreTiers counts completed jobs by where their image came from
	// ("mem", "disk", "remote", "built") as reported per response.
	StoreTiers map[string]int64 `json:"store_tiers"`
	Rejected   int64            `json:"rejected_429"`
	Proxied    int64            `json:"proxied_jobs"`
	Statuses   map[string]int64 `json:"statuses"`

	// TenantLoads, ReplicaLoads, and KindLoads break the run down by
	// scheduling tenant, executing replica, and job kind.
	TenantLoads  []TenantLoad  `json:"tenant_loads,omitempty"`
	ReplicaLoads []ReplicaLoad `json:"replica_loads,omitempty"`
	KindLoads    []KindLoad    `json:"kind_loads,omitempty"`

	// ServerMetrics is the first endpoint's final /metrics document
	// (kept for single-replica compatibility; per-replica metrics live
	// in ReplicaLoads).
	ServerMetrics *Metrics `json:"server_metrics,omitempty"`
}

// loadBucket accumulates per-tenant or per-replica observations.
type loadBucket struct {
	jobs     int64
	rejected int64
	proxied  int64
	hits     int64
	updates  int64
	deltas   int64
	tiers    map[string]int64
	latMs    []float64
}

func newBucket() *loadBucket { return &loadBucket{tiers: map[string]int64{}} }

func (b *loadBucket) observe(res *JobResult, latMs float64) {
	b.jobs++
	b.latMs = append(b.latMs, latMs)
	if res.StoreTier != "" {
		b.tiers[res.StoreTier]++
	}
	if res.BuildCacheHit {
		b.hits++
	}
	if res.Proxied {
		b.proxied++
	}
	b.updates += res.Updates
	b.deltas += res.DeltaPublishes
}

func meanP95(lats []float64) (mean, p95 float64) {
	mean, qs := meanQuantiles(lats, 0.95)
	return mean, qs[0]
}

// meanQuantiles returns the mean and the nearest-rank quantiles of a
// latency sample (zeros when empty).
func meanQuantiles(lats []float64, ps ...float64) (float64, []float64) {
	qs := make([]float64, len(ps))
	if len(lats) == 0 {
		return 0, qs
	}
	sorted := append([]float64(nil), lats...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	for i, p := range ps {
		k := int(float64(len(sorted))*p+0.5) - 1
		if k < 0 {
			k = 0
		}
		if k >= len(sorted) {
			k = len(sorted) - 1
		}
		qs[i] = sorted[k]
	}
	return sum / float64(len(sorted)), qs
}

// loadRun is the shared mutable state of one RunLoad.
type loadRun struct {
	cfg    LoadConfig
	addrs  []string
	client *http.Client
	rep    *LoadReport

	// mixPattern is the deterministic weighted kind schedule job i is
	// assigned from (kind = mixPattern[i % len]); empty means all "run".
	mixPattern []string

	mu       sync.Mutex
	firstErr error
	hits     int64
	results  int64
	tenants  map[string]*loadBucket
	replicas map[string]*loadBucket
	kinds    map[string]*loadBucket
}

// RunLoad hammers the endpoint(s) with the configured corpus at the
// configured concurrency until Requests jobs complete, then snapshots
// every replica's metrics. Queue-full rejections (HTTP 429) are
// counted and retried after the server's advertised Retry-After
// (capped at RetryCap) — backpressure is an expected, measured
// outcome, not a failure. Any transport-level error aborts the run.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Distinct <= 0 && len(cfg.Workloads) == 0 {
		for _, w := range workload.All() {
			cfg.Workloads = append(cfg.Workloads, w.Name)
		}
	}
	if cfg.Requests <= 0 {
		if cfg.Distinct > 0 {
			cfg.Requests = 3 * cfg.Distinct
		} else {
			cfg.Requests = 3 * len(cfg.Workloads)
		}
	}
	if cfg.SyntheticFuncs <= 0 {
		cfg.SyntheticFuncs = 256
	}
	if cfg.RetryCap <= 0 {
		cfg.RetryCap = 500 * time.Millisecond
	}
	var addrs []string
	if cfg.BaseURL != "" {
		addrs = append(addrs, normalizeURL(cfg.BaseURL))
	}
	for _, a := range cfg.Addrs {
		if u := normalizeURL(a); u != "" {
			addrs = append(addrs, u)
		}
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("load: no server address configured")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Minute}
	}

	mixPattern, err := mixScheduleOf(cfg.JobMix)
	if err != nil {
		return nil, err
	}

	lr := &loadRun{
		cfg: cfg, addrs: addrs, client: client,
		mixPattern: mixPattern,
		tenants:    map[string]*loadBucket{},
		replicas:   map[string]*loadBucket{},
		kinds:      map[string]*loadBucket{},
		rep: &LoadReport{
			Kind:        "mcfi-serve-load",
			Addrs:       addrs,
			Concurrency: cfg.Concurrency,
			Requests:    cfg.Requests,
			Workloads:   cfg.Workloads,
			Distinct:    cfg.Distinct,
			BatchSize:   cfg.Batch,
			Engine:      cfg.Engine,
			Statuses:    map[string]int64{},
			StoreTiers:  map[string]int64{},
		},
	}

	start := time.Now()
	err = lr.run(ctx)
	lr.rep.WallSecs = time.Since(start).Seconds()
	if err != nil {
		return lr.rep, err
	}
	if err := ctx.Err(); err != nil {
		return lr.rep, err
	}
	lr.finish(ctx)
	return lr.rep, nil
}

// mixScheduleOf expands kind weights into the repeating schedule jobs
// cycle through, interleaved by largest remainder so a run=4,dlopen=1
// mix does not submit its dlopens back to back.
func mixScheduleOf(mix map[string]int) ([]string, error) {
	if len(mix) == 0 {
		return nil, nil
	}
	kinds := make([]string, 0, len(mix))
	total := 0
	for k, w := range mix {
		switch k {
		case "run", "dlopen", "jitsim":
		default:
			return nil, fmt.Errorf("load: unknown job kind %q in mix (want run, dlopen, or jitsim)", k)
		}
		if w < 0 {
			return nil, fmt.Errorf("load: negative weight %d for job kind %q", w, k)
		}
		if w > 0 {
			kinds = append(kinds, k)
			total += w
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("load: job mix has no positive weights")
	}
	sort.Strings(kinds)
	pattern := make([]string, 0, total)
	credit := map[string]float64{}
	for len(pattern) < total {
		best, bestCredit := "", 0.0
		for _, k := range kinds {
			credit[k] += float64(mix[k]) / float64(total)
			if credit[k] > bestCredit {
				best, bestCredit = k, credit[k]
			}
		}
		credit[best]--
		pattern = append(pattern, best)
	}
	return pattern, nil
}

func (lr *loadRun) kindOf(n int) string {
	if len(lr.mixPattern) == 0 {
		return "run"
	}
	return lr.mixPattern[n%len(lr.mixPattern)]
}

func (lr *loadRun) tenantOf(n int) string {
	if len(lr.cfg.Tenants) == 0 {
		return ""
	}
	return lr.cfg.Tenants[n%len(lr.cfg.Tenants)]
}

// reqOf builds job i. With a synthetic corpus the variant index is
// LCG-scrambled so the access order is not a cache-friendly cycle: the
// instantaneous working set is the whole corpus.
func (lr *loadRun) reqOf(i int) JobRequest {
	cfg := lr.cfg
	jr := JobRequest{
		Engine: cfg.Engine, Baseline: cfg.Baseline,
		MaxInstr: cfg.MaxInstr, TimeoutMs: cfg.TimeoutMs,
	}
	if kind := lr.kindOf(i); kind != "run" {
		jr.Kind, jr.Work = kind, cfg.Work
		return jr
	}
	if cfg.Distinct > 0 {
		v := int((uint64(i)*6364136223846793005 + 1442695040888963407) >> 33 % uint64(cfg.Distinct))
		jr.Source = SyntheticSource(v, cfg.SyntheticFuncs)
		jr.Name = fmt.Sprintf("synth-%04d", v)
		return jr
	}
	name := cfg.Workloads[i%len(cfg.Workloads)]
	work := cfg.Work
	if cfg.UseTestWork {
		if w, ok := workload.ByName(name); ok {
			work = w.TestWork
		}
	}
	jr.Workload, jr.Work = name, work
	return jr
}

func (lr *loadRun) record(res *JobResult, jr *JobRequest, tenant, addr string, latMs float64) {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	lr.results++
	lr.rep.Statuses[res.Status]++
	lr.rep.GuestInstret += res.Instret
	if res.StoreTier != "" {
		lr.rep.StoreTiers[res.StoreTier]++
	}
	if res.BuildCacheHit {
		lr.hits++
	}
	if res.Proxied {
		lr.rep.Proxied++
	}
	tn := tenant
	if tn == "" {
		tn = DefaultTenant
	}
	tb := lr.tenants[tn]
	if tb == nil {
		tb = newBucket()
		lr.tenants[tn] = tb
	}
	tb.observe(res, latMs)
	rn := res.Replica
	if rn == "" {
		rn = addr
	}
	rb := lr.replicas[rn]
	if rb == nil {
		rb = newBucket()
		lr.replicas[rn] = rb
	}
	rb.observe(res, latMs)
	kind := jr.Kind
	if kind == "" {
		kind = "run"
	}
	kb := lr.kinds[kind]
	if kb == nil {
		kb = newBucket()
		lr.kinds[kind] = kb
	}
	kb.observe(res, latMs)
}

func (lr *loadRun) countRejected(tenant string, n int64) {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	lr.rep.Rejected += n
	tn := tenant
	if tn == "" {
		tn = DefaultTenant
	}
	tb := lr.tenants[tn]
	if tb == nil {
		tb = newBucket()
		lr.tenants[tn] = tb
	}
	tb.rejected += n
}

func (lr *loadRun) fail(err error) {
	lr.mu.Lock()
	if lr.firstErr == nil {
		lr.firstErr = err
	}
	lr.mu.Unlock()
}

func (lr *loadRun) run(ctx context.Context) error {
	if lr.cfg.Batch > 1 {
		lr.runBatched(ctx)
	} else {
		lr.runSingles(ctx)
	}
	lr.mu.Lock()
	defer lr.mu.Unlock()
	return lr.firstErr
}

func (lr *loadRun) runSingles(ctx context.Context) {
	idx := make(chan int)
	var wg sync.WaitGroup
	for c := 0; c < lr.cfg.Concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				jr := lr.reqOf(i)
				jr.Tenant = lr.tenantOf(i)
				addr := lr.addrs[i%len(lr.addrs)]
				t0 := time.Now()
				res, err := lr.postJob(ctx, addr, jr)
				if err != nil {
					lr.fail(err)
					return
				}
				lr.record(res, &jr, jr.Tenant, addr, ms(time.Since(t0)))
			}
		}()
	}
	for i := 0; i < lr.cfg.Requests; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			i = lr.cfg.Requests
		}
	}
	close(idx)
	wg.Wait()
}

// runBatched groups jobs into /v1/batch calls, one tenant per batch,
// resubmitting rejected jobs after the advertised Retry-After.
func (lr *loadRun) runBatched(ctx context.Context) {
	type chunk struct {
		start, n, batchNo int
	}
	chunks := make(chan chunk)
	var wg sync.WaitGroup
	for c := 0; c < lr.cfg.Concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ch := range chunks {
				tenant := lr.tenantOf(ch.batchNo)
				addr := lr.addrs[ch.batchNo%len(lr.addrs)]
				jobs := make([]JobRequest, ch.n)
				for k := 0; k < ch.n; k++ {
					jobs[k] = lr.reqOf(ch.start + k)
				}
				if err := lr.postBatch(ctx, addr, tenant, jobs); err != nil {
					lr.fail(err)
					return
				}
			}
		}()
	}
	batchNo := 0
	for i := 0; i < lr.cfg.Requests; i += lr.cfg.Batch {
		n := lr.cfg.Batch
		if i+n > lr.cfg.Requests {
			n = lr.cfg.Requests - i
		}
		select {
		case chunks <- chunk{i, n, batchNo}:
		case <-ctx.Done():
			i = lr.cfg.Requests
		}
		batchNo++
	}
	close(chunks)
	wg.Wait()
}

// retrySleep honors a server-advertised Retry-After (seconds), capped
// by RetryCap, falling back to the given default.
func (lr *loadRun) retrySleep(ctx context.Context, header string, fallback time.Duration) error {
	d := fallback
	if secs, err := strconv.Atoi(strings.TrimSpace(header)); err == nil && secs > 0 {
		d = time.Duration(secs) * time.Second
	}
	if d > lr.cfg.RetryCap {
		d = lr.cfg.RetryCap
	}
	select {
	case <-time.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// postJob POSTs one job, retrying 429s per the server's Retry-After.
func (lr *loadRun) postJob(ctx context.Context, base string, jr JobRequest) (*JobResult, error) {
	body, err := json.Marshal(jr)
	if err != nil {
		return nil, err
	}
	fallback := 5 * time.Millisecond
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/run", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := lr.client.Do(req)
		if err != nil {
			return nil, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var res JobResult
			if err := json.Unmarshal(data, &res); err != nil {
				return nil, fmt.Errorf("bad /run response: %v", err)
			}
			return &res, nil
		case http.StatusTooManyRequests:
			lr.countRejected(jr.Tenant, 1)
			if err := lr.retrySleep(ctx, resp.Header.Get("Retry-After"), fallback); err != nil {
				return nil, err
			}
			if fallback < 200*time.Millisecond {
				fallback *= 2
			}
		default:
			return nil, fmt.Errorf("POST /run: %s: %s", resp.Status, bytes.TrimSpace(data))
		}
	}
}

// postBatch submits one batch, recording executed results and
// resubmitting rejected jobs until none remain.
func (lr *loadRun) postBatch(ctx context.Context, addr, tenant string, jobs []JobRequest) error {
	pending := jobs
	for len(pending) > 0 {
		breq := BatchRequest{Tenant: tenant, Jobs: pending}
		body, err := json.Marshal(breq)
		if err != nil {
			return err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/v1/batch", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		t0 := time.Now()
		resp, err := lr.client.Do(req)
		if err != nil {
			return err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			return fmt.Errorf("POST /v1/batch: %s: %s", resp.Status, bytes.TrimSpace(data))
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST /v1/batch: %s: %s", resp.Status, bytes.TrimSpace(data))
		}
		var bresp BatchResponse
		if err := json.Unmarshal(data, &bresp); err != nil {
			return fmt.Errorf("bad /v1/batch response: %v", err)
		}
		if len(bresp.Results) != len(pending) {
			return fmt.Errorf("batch returned %d results for %d jobs", len(bresp.Results), len(pending))
		}
		perJobMs := ms(time.Since(t0)) / float64(len(pending))
		var retry []JobRequest
		for i := range bresp.Results {
			res := bresp.Results[i]
			if res.Status == StatusRejected {
				retry = append(retry, pending[i])
				continue
			}
			lr.record(&res, &pending[i], tenant, addr, perJobMs)
		}
		if len(retry) > 0 {
			lr.countRejected(tenant, int64(len(retry)))
			if err := lr.retrySleep(ctx, resp.Header.Get("Retry-After"), 50*time.Millisecond); err != nil {
				return err
			}
		}
		pending = retry
	}
	return nil
}

// finish derives rates and breakdowns and snapshots replica metrics.
func (lr *loadRun) finish(ctx context.Context) {
	rep := lr.rep
	rep.JobsPerSec = float64(lr.results) / rep.WallSecs
	if lr.results > 0 {
		rep.CacheHitRate = float64(lr.hits) / float64(lr.results)
	}
	if rep.WallSecs > 0 {
		rep.MinstrPerSecWall = float64(rep.GuestInstret) / rep.WallSecs / 1e6
	}

	for tn, b := range lr.tenants {
		mean, qs := meanQuantiles(b.latMs, 0.50, 0.95, 0.99)
		rep.TenantLoads = append(rep.TenantLoads, TenantLoad{
			Tenant: tn, Jobs: b.jobs, Rejected: b.rejected,
			MeanMs: mean, P50Ms: qs[0], P95Ms: qs[1], P99Ms: qs[2],
		})
	}
	sort.Slice(rep.TenantLoads, func(i, j int) bool { return rep.TenantLoads[i].Tenant < rep.TenantLoads[j].Tenant })

	// Per-kind breakdown, emitted only for mixed runs — a single-kind
	// run's numbers are the top-level ones.
	if len(lr.cfg.JobMix) > 0 {
		for kind, b := range lr.kinds {
			mean, qs := meanQuantiles(b.latMs, 0.50, 0.95, 0.99)
			rep.KindLoads = append(rep.KindLoads, KindLoad{
				Kind: kind, Jobs: b.jobs,
				MeanMs: mean, P50Ms: qs[0], P95Ms: qs[1], P99Ms: qs[2],
				Updates: b.updates, DeltaPublishes: b.deltas,
			})
		}
		sort.Slice(rep.KindLoads, func(i, j int) bool { return rep.KindLoads[i].Kind < rep.KindLoads[j].Kind })
	}

	// Per-replica metrics snapshots, matched to execution buckets by
	// the replica's self URL (or the submission addr when routing is
	// off).
	metricsByAddr := map[string]*Metrics{}
	for _, a := range lr.addrs {
		if m, err := fetchMetrics(ctx, lr.client, a); err == nil {
			metricsByAddr[a] = m
		}
	}
	names := make([]string, 0, len(lr.replicas))
	for n := range lr.replicas {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		b := lr.replicas[n]
		mean, p95 := meanP95(b.latMs)
		rl := ReplicaLoad{
			Addr: n, Jobs: b.jobs, Proxied: b.proxied,
			StoreTiers: b.tiers, MeanMs: mean, P95Ms: p95,
			Metrics: metricsByAddr[n],
		}
		if b.jobs > 0 {
			rl.HitRate = float64(b.hits) / float64(b.jobs)
		}
		rep.ReplicaLoads = append(rep.ReplicaLoads, rl)
	}
	if m := metricsByAddr[lr.addrs[0]]; m != nil {
		rep.ServerMetrics = m
		rep.MinstrPerSecExec = m.Exec.MinstrPerSec
	}
	// Sum execution throughput across replicas when clustered.
	if len(lr.addrs) > 1 {
		var total float64
		for _, m := range metricsByAddr {
			total += m.Exec.MinstrPerSec
		}
		rep.MinstrPerSecExec = total
	}
}

func fetchMetrics(ctx context.Context, client *http.Client, base string) (*Metrics, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Summary renders the report as the human-readable table mcfi-load
// prints.
func (r *LoadReport) Summary() string {
	var b bytes.Buffer
	corpus := fmt.Sprintf("%d workloads", len(r.Workloads))
	if r.Distinct > 0 {
		corpus = fmt.Sprintf("%d distinct sources", r.Distinct)
	}
	fmt.Fprintf(&b, "serving load: %d jobs, concurrency %d, %s, %d replicas, %.2fs wall\n",
		r.Requests, r.Concurrency, corpus, len(r.Addrs), r.WallSecs)
	fmt.Fprintf(&b, "  throughput: %.2f jobs/s, %.2f Minstr/s end-to-end, %.2f Minstr/s exec\n",
		r.JobsPerSec, r.MinstrPerSecWall, r.MinstrPerSecExec)
	fmt.Fprintf(&b, "  build store: %.0f%% hit rate (mem=%d disk=%d remote=%d built=%d); backpressure: %d rejections retried; %d jobs proxied\n",
		100*r.CacheHitRate, r.StoreTiers["mem"], r.StoreTiers["disk"],
		r.StoreTiers["remote"], r.StoreTiers["built"], r.Rejected, r.Proxied)
	var keys []string
	for k := range r.Statuses {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(&b, "  outcomes:")
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%d", k, r.Statuses[k])
	}
	fmt.Fprintln(&b)
	for _, t := range r.TenantLoads {
		fmt.Fprintf(&b, "  tenant %-12s %5d jobs, %4d rejected, mean %.1fms, p50 %.1fms, p95 %.1fms, p99 %.1fms\n",
			t.Tenant, t.Jobs, t.Rejected, t.MeanMs, t.P50Ms, t.P95Ms, t.P99Ms)
	}
	for _, rl := range r.ReplicaLoads {
		fmt.Fprintf(&b, "  replica %-24s %5d jobs (%d proxied), %3.0f%% store hits, mean %.1fms, p95 %.1fms\n",
			rl.Addr, rl.Jobs, rl.Proxied, 100*rl.HitRate, rl.MeanMs, rl.P95Ms)
	}
	for _, kl := range r.KindLoads {
		fmt.Fprintf(&b, "  kind   %-12s %5d jobs, mean %.1fms, p50 %.1fms, p95 %.1fms, p99 %.1fms",
			kl.Kind, kl.Jobs, kl.MeanMs, kl.P50Ms, kl.P95Ms, kl.P99Ms)
		if kl.Updates > 0 {
			fmt.Fprintf(&b, ", %d updates (%d delta)", kl.Updates, kl.DeltaPublishes)
		}
		fmt.Fprintln(&b)
	}
	if m := r.ServerMetrics; m != nil {
		fmt.Fprintf(&b, "  server: %d accepted, %d completed, %d CFI violations, %d timeouts, %d checks (%d verdict-cache hits)\n",
			m.Jobs.Accepted, m.Jobs.Completed, m.Jobs.CFIViolations,
			m.Jobs.Timeouts, m.Exec.CheckExecs, m.Exec.VerdictHits)
	}
	return b.String()
}
