package server

// Fingerprint-keyed job routing across a replica set.
//
// Every replica builds the same consistent-hash ring from Config.Peers
// (deterministic: no coordination, no leader), keyed by the build
// fingerprint of each job's sources — the same content hash the build
// store is addressed by. One replica therefore owns each distinct
// program, its store tiers stay hot for that shard, and N replicas
// aggregate to N× the warm cache footprint.
//
// Routing is a single hop: a replica that receives a job it does not
// own relays the request verbatim to the owner with the X-Mcfi-Routed
// marker set; the owner executes locally (the marker suppresses
// re-routing, so a stale or disagreeing ring can never bounce a job
// around the cluster). If the owner is down, unreachable, or
// draining, the receiving replica falls back to executing locally —
// availability beats shard affinity — and remembers the failure for a
// cooldown so a dead peer is not re-probed on every job.

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"sort"
	"time"
)

// headerRouted marks a relayed request; its presence means "execute
// here, do not route again" (single-hop rule).
const headerRouted = "X-Mcfi-Routed"

// headerTrace propagates the ingress-minted trace ID across the
// relay hop, so a proxied job is one trace on both replicas.
const headerTrace = "X-Mcfi-Trace"

// maxRequestBytes bounds one request body (a batch of sources).
const maxRequestBytes = 32 << 20

// peerDownCooldown is how long a replica sits out of routing after a
// failed relay before it is probed again.
const peerDownCooldown = 2 * time.Second

type peerState struct {
	downUntil time.Time
	proxiedTo int64
}

// ownerOf resolves a request far enough to compute its build
// fingerprint and maps it through the ring. ok=false when the request
// is malformed (the local path will produce the build error) or the
// ring is empty.
func (s *Server) ownerOf(req JobRequest) (string, bool) {
	b, src, _, err := s.resolve(req)
	if err != nil {
		return "", false
	}
	owner := s.ring.Owner(b.Fingerprint(src))
	return owner, owner != ""
}

// peerUp reports whether a peer is currently eligible for relays.
func (s *Server) peerUp(peer string) bool {
	s.peerMu.Lock()
	defer s.peerMu.Unlock()
	ps, ok := s.peers[peer]
	return ok && time.Now().After(ps.downUntil)
}

func (s *Server) markPeerDown(peer string) {
	s.peerMu.Lock()
	defer s.peerMu.Unlock()
	if ps, ok := s.peers[peer]; ok {
		ps.downUntil = time.Now().Add(peerDownCooldown)
	}
}

func (s *Server) markPeerProxied(peer string) {
	s.peerMu.Lock()
	defer s.peerMu.Unlock()
	if ps, ok := s.peers[peer]; ok {
		ps.proxiedTo++
	}
}

// relay forwards a request body to the owning replica and, on
// success, copies the owner's response verbatim (status, Retry-After,
// body) so a proxied JobResult is byte-identical to a locally served
// one. It returns false — nothing written — when the relay should
// fall back to local execution: owner in its down cooldown, transport
// failure, or owner draining (503).
func (s *Server) relay(w http.ResponseWriter, ctx context.Context, owner, path string, body []byte, trace string) bool {
	if !s.peerUp(owner) {
		s.proxyFallbacks.Add(1)
		return false
	}
	start := time.Now()
	resp, err := s.relayRequestTraced(ctx, owner, path, body, trace)
	if err != nil {
		s.markPeerDown(owner)
		s.proxyFallbacks.Add(1)
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable {
		// Owner is draining: it still answers but admits nothing.
		// Serve the job here rather than bounce the client.
		s.markPeerDown(owner)
		s.proxyFallbacks.Add(1)
		return false
	}
	s.proxiedOut.Add(1)
	s.markPeerProxied(owner)
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	s.relaySpan(trace, owner, start, time.Since(start))
	return true
}

// relayRequest performs the single-hop POST to a peer.
func (s *Server) relayRequest(ctx context.Context, owner, path string, body []byte) (*http.Response, error) {
	return s.relayRequestTraced(ctx, owner, path, body, "")
}

func (s *Server) relayRequestTraced(ctx context.Context, owner, path string, body []byte, trace string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(headerRouted, s.self)
	if trace != "" {
		req.Header.Set(headerTrace, trace)
	}
	return s.proxyClient.Do(req)
}

func (s *Server) clusterMetrics() *ClusterMetrics {
	cm := &ClusterMetrics{
		Self:           s.self,
		VNodes:         s.ring.VNodes(),
		ProxiedIn:      s.proxiedIn.Load(),
		ProxiedOut:     s.proxiedOut.Load(),
		ProxyFallbacks: s.proxyFallbacks.Load(),
	}
	now := time.Now()
	s.peerMu.Lock()
	for _, p := range s.ring.Peers() {
		st := PeerStatus{URL: p, Up: true}
		if p == s.self {
			st.Self = true
		} else if ps, ok := s.peers[p]; ok {
			st.Up = now.After(ps.downUntil)
			st.ProxiedTo = ps.proxiedTo
		}
		cm.Peers = append(cm.Peers, st)
	}
	s.peerMu.Unlock()
	sort.Slice(cm.Peers, func(i, j int) bool { return cm.Peers[i].URL < cm.Peers[j].URL })
	return cm
}
