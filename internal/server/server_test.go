package server

import (
	"context"
	"errors"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

const spinSrc = `
int main(void) {
	while (1) {}
	return 0;
}`

// smashSrc is the attackdemo payload: a stack write redirects a return
// to an address-taken function, which MCFI's return check must halt.
const smashSrc = `
int pwned = 0;
void evil(void) { pwned = 1; puts("evil ran"); }
void (*keep)(void) = evil;

long victim(long target) {
	long x = 0;
	long *p = &x;
	p[2] = target;
	return x;
}
int main(void) {
	victim((long)evil);
	return pwned;
}`

const helloSrc = `
int main(void) {
	puts("hello");
	return 0;
}`

func newTest(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func drain(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	s.Drain(ctx)
}

// TestBuildCacheSingleflight: N concurrent identical jobs share ONE
// compile — the content-addressed cache coalesces in-flight builds.
func TestBuildCacheSingleflight(t *testing.T) {
	s := newTest(t, Config{Workers: 8, QueueDepth: 32})
	defer drain(t, s)

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	results := make([]JobResult, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Submit(context.Background(),
				JobRequest{Source: helloSrc, Name: "hello"})
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		if results[i].Status != StatusOK || results[i].Output != "hello\n" {
			t.Fatalf("job %d: %+v", i, results[i])
		}
	}
	st := s.Store().Metrics()
	if st.Builds != 1 {
		t.Errorf("builds = %d, want exactly 1 (singleflight)", st.Builds)
	}
	if st.Hits != n-1 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want %d/1", st.Hits, st.Misses, n-1)
	}
	if mem := st.TierHits["mem"]; mem != n-1 {
		t.Errorf("mem tier hits = %d, want %d", mem, n-1)
	}
}

// TestCFIViolationIsStructuredAndIsolated: a violating job yields a
// first-class violation verdict (not a 500, not a poisoned worker),
// and the same worker then serves a clean job.
func TestCFIViolationIsStructuredAndIsolated(t *testing.T) {
	s := newTest(t, Config{Workers: 1, QueueDepth: 4})
	defer drain(t, s)

	res, err := s.Submit(context.Background(), JobRequest{Source: smashSrc, Name: "smash"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusCFI {
		t.Fatalf("status = %q, want %q (result: %+v)", res.Status, StatusCFI, res)
	}
	if res.Fault == nil || res.Fault.Kind != "CFI violation" {
		t.Fatalf("fault info missing or wrong: %+v", res.Fault)
	}
	if res.Output != "" {
		t.Fatalf("MCFI let evil() run before halting: %q", res.Output)
	}
	// Baseline flavor of the same attack IS hijacked: evil() runs (the
	// crash afterwards on the smashed stack is not a CFI verdict) —
	// the verdict difference is the whole point.
	res, err = s.Submit(context.Background(), JobRequest{Source: smashSrc, Name: "smash", Baseline: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == StatusCFI || !strings.Contains(res.Output, "evil ran") {
		t.Fatalf("baseline smash not hijacked: %+v", res)
	}
	// The single worker is still healthy.
	res, err = s.Submit(context.Background(), JobRequest{Source: helloSrc, Name: "hello"})
	if err != nil || res.Status != StatusOK {
		t.Fatalf("server poisoned after violation: res=%+v err=%v", res, err)
	}
	m := s.MetricsSnapshot()
	if m.Jobs.CFIViolations != 1 || m.Exec.CheckHalts < 1 {
		t.Errorf("violation not counted: %+v", m.Jobs)
	}
}

// TestTimeoutCancellationFreesWorker: a wall-clock timeout interrupts
// a spinning guest and the worker immediately serves the next job.
func TestTimeoutCancellationFreesWorker(t *testing.T) {
	s := newTest(t, Config{Workers: 1, QueueDepth: 4})
	defer drain(t, s)

	res, err := s.Submit(context.Background(),
		JobRequest{Source: spinSrc, Name: "spin", TimeoutMs: 150})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusTimeout {
		t.Fatalf("status = %q, want %q", res.Status, StatusTimeout)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		res, err = s.Submit(context.Background(), JobRequest{Source: helloSrc, Name: "hello"})
	}()
	select {
	case <-done:
		if err != nil || res.Status != StatusOK {
			t.Fatalf("post-timeout job: res=%+v err=%v", res, err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker not freed after timeout")
	}
	if m := s.MetricsSnapshot(); m.Jobs.Timeouts != 1 {
		t.Errorf("timeouts = %d, want 1", m.Jobs.Timeouts)
	}
}

// TestBudgetExhaustionIsDistinguishable: instruction budgets yield
// their own verdict, distinct from timeouts and violations.
func TestBudgetExhaustionIsDistinguishable(t *testing.T) {
	s := newTest(t, Config{Workers: 1, QueueDepth: 4})
	defer drain(t, s)
	res, err := s.Submit(context.Background(),
		JobRequest{Source: spinSrc, Name: "spin", MaxInstr: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusBudget {
		t.Fatalf("status = %q, want %q (%+v)", res.Status, StatusBudget, res)
	}
	if res.Instret < 50_000 {
		t.Errorf("instret = %d, want >= budget", res.Instret)
	}
}

// TestQueueBackpressure: when every worker is busy and the queue is
// full, admission fails fast with ErrBusy instead of queueing
// unboundedly.
func TestQueueBackpressure(t *testing.T) {
	s := newTest(t, Config{Workers: 1, QueueDepth: 1})
	defer drain(t, s)

	var wg sync.WaitGroup
	// Job A occupies the worker; job B fills the one queue slot.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Submit(context.Background(),
				JobRequest{Source: spinSrc, Name: "spin", TimeoutMs: 1000})
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		m := s.MetricsSnapshot()
		if m.Queue.Busy == 1 && m.Queue.Depth == 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	_, err := s.Submit(context.Background(), JobRequest{Source: helloSrc})
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("overflow submit = %v, want ErrBusy", err)
	}
	if m := s.MetricsSnapshot(); m.Jobs.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", m.Jobs.Rejected)
	}
	wg.Wait()
}

// TestDrainFinishesQueuedJobs: Drain stops admission but completes
// everything already admitted.
func TestDrainFinishesQueuedJobs(t *testing.T) {
	s := newTest(t, Config{Workers: 2, QueueDepth: 8})
	const n = 4
	var wg sync.WaitGroup
	errs := make([]error, n)
	results := make([]JobResult, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Submit(context.Background(),
				JobRequest{Source: helloSrc, Name: "hello"})
		}(i)
	}
	// Wait for all four to be admitted before draining.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && s.MetricsSnapshot().Jobs.Accepted < n {
		time.Sleep(2 * time.Millisecond)
	}
	drain(t, s)
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil || results[i].Status != StatusOK {
			t.Errorf("job %d after drain: res=%+v err=%v", i, results[i], errs[i])
		}
	}
	if _, err := s.Submit(context.Background(), JobRequest{Source: helloSrc}); !errors.Is(err, ErrDraining) {
		t.Errorf("submit during drain = %v, want ErrDraining", err)
	}
}

// TestDrainDeadlineCancelsInflight: when the grace period expires,
// in-flight guests are force-cancelled rather than blocking shutdown.
func TestDrainDeadlineCancelsInflight(t *testing.T) {
	s := newTest(t, Config{Workers: 2, QueueDepth: 4})
	var wg sync.WaitGroup
	results := make([]JobResult, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Spin with a long timeout: only force-cancel stops it.
			results[i], _ = s.Submit(context.Background(),
				JobRequest{Source: spinSrc, Name: "spin", TimeoutMs: 60_000})
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && s.MetricsSnapshot().Queue.Busy < 2 {
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	s.Drain(ctx)
	if el := time.Since(start); el > 20*time.Second {
		t.Fatalf("drain took %v despite force deadline", el)
	}
	wg.Wait()
	for i, r := range results {
		if r.Status != StatusCancelled {
			t.Errorf("job %d: status %q, want %q", i, r.Status, StatusCancelled)
		}
	}
}

// TestLoadMixedWorkloads is the end-to-end serving benchmark in
// miniature (the acceptance scenario): mcfi-load's driver at
// concurrency 8 over all 12 workloads against a real HTTP server,
// with repeated jobs hitting the build cache and zero goroutines
// leaked after drain.
func TestLoadMixedWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("full 12-workload serving run")
	}
	before := runtime.NumGoroutine()

	s := newTest(t, Config{Workers: 4, QueueDepth: 16})
	ts := httptest.NewServer(s.Handler())

	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:     ts.URL,
		Concurrency: 8,
		Requests:    36, // 3 × 12 workloads → 2/3 cache hit rate
		UseTestWork: true,
		Engine:      "fused",
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Statuses[StatusOK]; got != 36 {
		t.Fatalf("ok = %d of 36; statuses: %v", got, rep.Statuses)
	}
	if rep.CacheHitRate <= 0.5 {
		t.Errorf("cache hit rate %.2f, want > 0.5 on repeated jobs", rep.CacheHitRate)
	}
	if rep.GuestInstret <= 0 || rep.MinstrPerSecWall <= 0 {
		t.Errorf("throughput not measured: %+v", rep)
	}
	m := rep.ServerMetrics
	if m == nil {
		t.Fatal("no final server metrics")
	}
	if m.Jobs.Completed != 36 || m.Jobs.Ok != 36 {
		t.Errorf("server counts: %+v", m.Jobs)
	}
	if m.Exec.CheckExecs <= 0 || m.Exec.VerdictHits <= 0 {
		t.Errorf("fused check counters not exported: %+v", m.Exec)
	}

	drain(t, s)
	ts.Close()
	ts.Client().CloseIdleConnections()

	// Zero leaked goroutines: everything the run spawned (workers,
	// watchers, guest threads, HTTP conns) must be gone.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestDynamicJobKinds: the dlopen and jitsim job kinds run end to end
// — the server synthesizes the guest, compiles and registers the
// plugin modules, and the result reports the update-transaction
// counters (a dlopen job must have taken the delta publication path).
func TestDynamicJobKinds(t *testing.T) {
	s := newTest(t, Config{Workers: 2, QueueDepth: 8})
	defer drain(t, s)

	res, err := s.Submit(context.Background(), JobRequest{Kind: "dlopen", Work: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOK {
		t.Fatalf("dlopen job: %+v", res)
	}
	if res.Updates < 4 {
		t.Errorf("dlopen job ran %d update transactions, want >= 4", res.Updates)
	}
	if res.DeltaPublishes < 4 {
		t.Errorf("dlopen job published %d deltas, want >= 4 (one per module)", res.DeltaPublishes)
	}

	res, err = s.Submit(context.Background(), JobRequest{Kind: "jitsim"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOK {
		t.Fatalf("jitsim job: %+v", res)
	}
	if res.Updates == 0 || res.DeltaPublishes == 0 {
		t.Errorf("jitsim job reported no update activity: %+v", res)
	}

	// A dynamic kind with an explicit source is a contradiction, and an
	// unknown kind is a 400-class error, not a crash.
	if res, err = s.Submit(context.Background(), JobRequest{Kind: "dlopen", Source: helloSrc}); err == nil && res.Status == StatusOK {
		t.Errorf("kind+source accepted: %+v", res)
	}
	if res, err = s.Submit(context.Background(), JobRequest{Kind: "nope"}); err == nil && res.Status == StatusOK {
		t.Errorf("unknown kind accepted: %+v", res)
	}
}

// TestLoadJobMix: a weighted run/dlopen/jitsim mix through the load
// generator completes, honors the weights, and reports per-kind
// latency percentiles plus the dynamic kinds' update counters.
func TestLoadJobMix(t *testing.T) {
	s := newTest(t, Config{Workers: 4, QueueDepth: 16})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		drain(t, s)
		ts.Close()
	}()

	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:     ts.URL,
		Concurrency: 4,
		Requests:    18,
		Workloads:   []string{"bzip2", "mcf"},
		UseTestWork: true,
		JobMix:      map[string]int{"run": 4, "dlopen": 1, "jitsim": 1},
		Client:      ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Statuses[StatusOK]; got != 18 {
		t.Fatalf("ok = %d of 18; statuses: %v", got, rep.Statuses)
	}
	byKind := map[string]KindLoad{}
	for _, kl := range rep.KindLoads {
		byKind[kl.Kind] = kl
	}
	// 18 jobs over a 4:1:1 pattern of length 6 = 3 full cycles.
	if byKind["run"].Jobs != 12 || byKind["dlopen"].Jobs != 3 || byKind["jitsim"].Jobs != 3 {
		t.Fatalf("kind split: %+v", rep.KindLoads)
	}
	for _, kind := range []string{"dlopen", "jitsim"} {
		kl := byKind[kind]
		if kl.P50Ms <= 0 || kl.P99Ms < kl.P50Ms {
			t.Errorf("%s percentiles malformed: %+v", kind, kl)
		}
		if kl.Updates == 0 || kl.DeltaPublishes == 0 {
			t.Errorf("%s jobs reported no update transactions: %+v", kind, kl)
		}
	}
	// Plain run jobs carry only the initial policy publication (one
	// full update transaction each) and no deltas.
	if rk := byKind["run"]; rk.DeltaPublishes != 0 || rk.Updates > rk.Jobs {
		t.Errorf("plain run jobs reported dlopen activity: %+v", rk)
	}

	// An invalid kind in the mix fails fast, before any request.
	if _, err := RunLoad(context.Background(), LoadConfig{
		BaseURL: ts.URL, Requests: 1,
		JobMix: map[string]int{"bogus": 1},
		Client: ts.Client(),
	}); err == nil {
		t.Error("bogus job kind accepted by RunLoad")
	}
}
