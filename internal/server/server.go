// Package server is the MCFI execution service: a long-running,
// multi-tenant front end over the toolchain + runtime + VM stack.
// Jobs (a named workload or raw MiniC source) are compiled through a
// content-addressed build cache, then executed each in its own
// sandboxed vm.Process on an elastic worker pool with per-job
// instruction budgets and wall-clock timeouts.
//
// Admission runs through a per-tenant deficit-weighted round-robin
// scheduler (internal/cluster): each tenant gets a service share
// proportional to its weight, bounded by per-tenant in-flight and
// instruction-budget quotas, so one hot tenant cannot starve the
// rest. Overflow is refused immediately (HTTP 429 with a Retry-After
// derived from the observed drain rate), and shutdown is a graceful
// drain: stop admitting, finish or cancel in-flight jobs, keep
// /metrics readable throughout.
//
// When configured with a replica set (Config.Peers/Self), jobs route
// by build fingerprint over a consistent-hash ring: each replica owns
// a shard of the fingerprint space and transparently proxies the rest
// to their owners (a single hop, falling back to local execution when
// the owner is down or draining), so every replica's store tiers stay
// hot for its shard. See cluster.go for routing and batch.go for the
// job-array surface.
//
// The point of the service (vs. the one-shot CLIs) is that MCFI's
// policy machinery keeps enforcing while untrusted code runs
// continuously: enforcement outcomes — clean exit, CFI violation,
// budget exhaustion, timeout — are first-class, distinguishable
// results in the API, and a violating job never poisons its worker.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mcfi/internal/buildstore"
	"mcfi/internal/cluster"
	"mcfi/internal/mrt"
	"mcfi/internal/obs"
	"mcfi/internal/toolchain"
	"mcfi/internal/visa"
	"mcfi/internal/vm"
	"mcfi/internal/workload"
)

// Job statuses: every completed job carries exactly one.
const (
	StatusOK         = "ok"               // clean guest exit (see ExitCode)
	StatusCFI        = "cfi_violation"    // halted check transaction
	StatusFault      = "fault"            // non-CFI guest fault
	StatusTimeout    = "timeout"          // wall-clock deadline cancelled the run
	StatusCancelled  = "cancelled"        // caller went away or server drained
	StatusBudget     = "budget_exhausted" // instruction budget ran out
	StatusBuildError = "build_error"      // source failed to compile/link
	// StatusRejected appears only in batch responses: the job was
	// refused at admission (quota or queue full) and never executed.
	StatusRejected = "rejected"
)

// DefaultTenant is the tenant name applied to requests that do not
// set one.
const DefaultTenant = "default"

// Submission errors.
var (
	// ErrBusy: the shared admission queue is full (backpressure; HTTP 429).
	ErrBusy = errors.New("server: queue full")
	// ErrTenantBusy: the job's tenant is over its quota while the
	// server may have capacity for others (HTTP 429, scoped).
	ErrTenantBusy = errors.New("server: tenant over quota")
	// ErrDraining: the server no longer admits jobs (HTTP 503).
	ErrDraining = errors.New("server: draining")
)

// JobRequest is one execution request.
type JobRequest struct {
	// Workload names a built-in benchmark (workload.All); Work
	// overrides its iteration count (0 = reference input). Mutually
	// exclusive with Source.
	Workload string `json:"workload,omitempty"`
	Work     int    `json:"work,omitempty"`
	// Source is raw MiniC text compiled as one translation unit; Name
	// labels it in diagnostics (default "job").
	Source string `json:"source,omitempty"`
	Name   string `json:"name,omitempty"`
	// Kind selects the job shape: "run" (default) executes the
	// workload/source as-is; "dlopen" synthesizes a dlopen storm (the
	// guest loads Work modules, each a policy update transaction);
	// "jitsim" synthesizes a staged-JIT guest (few modules, hot checked
	// calls through each stage). The dynamic kinds take no workload or
	// source; Work scales the module count.
	Kind string `json:"kind,omitempty"`
	// Tenant attributes the job for weighted-fair scheduling and
	// quotas (default "default").
	Tenant string `json:"tenant,omitempty"`
	// Baseline skips MCFI instrumentation; Profile selects 32/64
	// (default 64); Engine selects any vm.EngineNames() entry (default
	// threaded).
	Baseline bool   `json:"baseline,omitempty"`
	Profile  int    `json:"profile,omitempty"`
	Engine   string `json:"engine,omitempty"`
	// MaxInstr caps retired guest instructions (0 = server default);
	// TimeoutMs caps wall time (0 = server default).
	MaxInstr  int64 `json:"max_instr,omitempty"`
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// FaultInfo describes a guest fault in a result.
type FaultInfo struct {
	Kind string `json:"kind"`
	PC   int64  `json:"pc"`
	Msg  string `json:"msg"`
}

// JobResult is the outcome of one completed job.
type JobResult struct {
	Status   string `json:"status"`
	ExitCode int64  `json:"exit_code"`
	Instret  int64  `json:"instret"`
	// Tenant echoes the scheduling tenant; Replica names the replica
	// that executed the job (Config.Self, empty outside cluster mode);
	// Proxied reports that the job reached its executor via a routing
	// hop from another replica.
	Tenant  string `json:"tenant,omitempty"`
	Replica string `json:"replica,omitempty"`
	Proxied bool   `json:"proxied,omitempty"`
	// StoreTier names where the job's image came from: "mem", "disk",
	// "remote", or "built" (compiled for this job). BuildCacheHit is
	// the legacy boolean view of the same fact (any tier but "built").
	StoreTier     string `json:"store_tier,omitempty"`
	BuildCacheHit bool   `json:"build_cache_hit"`
	// Updates counts the job's table update transactions (initial
	// policy publication plus one per dlopen/dlsym policy change);
	// DeltaPublishes is how many of those took the incremental delta
	// path instead of a full table rebuild. Zero for baseline jobs.
	Updates        int64      `json:"updates,omitempty"`
	DeltaPublishes int64      `json:"delta_publishes,omitempty"`
	QueueMs        float64    `json:"queue_ms"`
	BuildMs        float64    `json:"build_ms"`
	RunMs          float64    `json:"run_ms"`
	Output         string     `json:"output,omitempty"`
	Error          string     `json:"error,omitempty"`
	Fault          *FaultInfo `json:"fault,omitempty"`
	// TraceID names the job's recorded trace, retrievable at
	// /v1/trace/{id} on the executing replica while it stays in the
	// ring (empty when the job was not sampled). Phases is the
	// phase-duration summary attached to every completed job.
	TraceID string        `json:"trace_id,omitempty"`
	Phases  *PhaseSummary `json:"phases,omitempty"`
}

// PhaseSummary breaks a job's wall time into pipeline phases
// (milliseconds). StoreMs covers the build-store probe (and any wait
// on a coalesced in-flight build); CompileMs/LinkMs are nonzero only
// when the job actually built (store tier "built").
type PhaseSummary struct {
	AdmissionMs float64 `json:"admission_ms"`
	QueueMs     float64 `json:"queue_ms"`
	StoreMs     float64 `json:"store_ms"`
	CompileMs   float64 `json:"compile_ms"`
	LinkMs      float64 `json:"link_ms"`
	RunMs       float64 `json:"run_ms"`
}

// Config sizes the service.
type Config struct {
	// Workers is the execution pool width when the pool is fixed
	// (default 4). WorkersMin/WorkersMax, when they describe a real
	// range (Max > Min), enable the queue-latency autoscaler between
	// those bounds; otherwise the pool stays at WorkersMin (which
	// defaults to Workers).
	Workers    int
	WorkersMin int
	WorkersMax int
	// AutoscaleTarget is the p95 queue-latency ceiling the autoscaler
	// defends (default 100ms).
	AutoscaleTarget time.Duration
	// QueueDepth bounds jobs admitted but not yet running across all
	// tenants; overflow is rejected with ErrBusy (default 2×WorkersMax).
	QueueDepth int
	// TenantWeights sets per-tenant DWRR service shares (unlisted
	// tenants get TenantQuota.Weight, minimum 1).
	TenantWeights map[string]int
	// TenantQuota is the default per-tenant quota: zero fields are
	// unlimited. Weight here is the default weight for tenants not in
	// TenantWeights.
	TenantQuota cluster.Quota
	// CacheEntries bounds the in-memory store tier (default
	// buildstore.DefaultMemEntries).
	CacheEntries int
	// StoreDir, when set, adds a persistent on-disk store tier rooted
	// there: images and libc objects survive restarts, and concurrent
	// server processes may share the directory.
	StoreDir string
	// RemoteStore, when set, adds a remote store tier: the base URL of
	// a peer mcfi-serve (or shared cache) whose /v1/store endpoint is
	// consulted after mem and disk, and published to on fresh builds
	// (publishing requires StoreSecret).
	RemoteStore string
	// StoreSecret is the shared cluster secret that authenticates the
	// /v1/store write plane: PUTs this server accepts, and blobs this
	// server fetches from or publishes to RemoteStore, carry an
	// HMAC binding payload to key. Empty means the store surface is
	// read-only: all incoming PUTs are refused, nothing is published to
	// the peer, and fetched blobs are integrity-checked only.
	StoreSecret string
	// Peers is the replica set for fingerprint-keyed job routing: base
	// URLs of every replica including this one. Empty disables
	// routing. Self must name this replica's own base URL (as it
	// appears to peers) whenever Peers is set.
	Peers []string
	Self  string
	// VNodes is the consistent-hash virtual-node count per replica
	// (default cluster.DefaultVNodes).
	VNodes int
	// ProxyTimeout caps one routed job round trip (default
	// DefaultTimeout + 30s, so a proxied job can queue and run to its
	// own deadline before the hop gives up).
	ProxyTimeout time.Duration
	// DefaultMaxInstr is the per-job instruction budget when a request
	// does not set one (default 2e9). <0 disables the default.
	DefaultMaxInstr int64
	// DefaultTimeout is the per-job wall-clock limit when a request
	// does not set one (default 60s).
	DefaultTimeout time.Duration
	// MaxOutputBytes truncates captured guest output (default 1 MiB).
	MaxOutputBytes int64
	// BuildJobs bounds per-build compile concurrency (default 1: the
	// pool itself provides the parallelism).
	BuildJobs int
	// TraceSample is the fraction of jobs traced end to end, decided
	// deterministically from the trace ID so replicas agree without
	// coordination (0 → default 1.0; negative → tracing off).
	TraceSample float64
	// TraceBuffer bounds retained traces (default
	// obs.DefaultTraceBuffer); the oldest trace is evicted first.
	TraceBuffer int
	// AuditBuffer bounds the in-memory CFI audit ring (default
	// obs.DefaultAuditBuffer). AuditSink, when set, additionally
	// receives every audit record as one NDJSON line (the -audit-log
	// file); sink errors are counted, never surfaced to jobs.
	AuditBuffer int
	AuditSink   io.Writer
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.WorkersMin <= 0 {
		c.WorkersMin = c.Workers
	}
	if c.WorkersMax < c.WorkersMin {
		c.WorkersMax = c.WorkersMin
	}
	if c.AutoscaleTarget <= 0 {
		c.AutoscaleTarget = 100 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.WorkersMax
	}
	if c.VNodes <= 0 {
		c.VNodes = cluster.DefaultVNodes
	}
	if c.DefaultMaxInstr == 0 {
		c.DefaultMaxInstr = 2_000_000_000
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.ProxyTimeout <= 0 {
		c.ProxyTimeout = c.DefaultTimeout + 30*time.Second
	}
	if c.MaxOutputBytes <= 0 {
		c.MaxOutputBytes = 1 << 20
	}
	if c.BuildJobs <= 0 {
		c.BuildJobs = 1
	}
	if c.TraceSample == 0 {
		c.TraceSample = 1
	} else if c.TraceSample < 0 {
		c.TraceSample = 0 // explicit off
	}
}

// job is one admitted request plus its completion signal.
type job struct {
	req      JobRequest
	ctx      context.Context
	tenant   string
	cost     int64 // effective instruction budget (0 = unlimited)
	maxInstr int64
	timeout  time.Duration
	proxied  bool
	queuedAt time.Time     // ingress (job creation)
	admitted time.Time     // scheduler accepted (zero if tracing off)
	admitDur time.Duration // ingress → admitted
	wait     time.Duration // set at dequeue
	trace    string        // sampled trace ID, "" when unsampled
	res      JobResult
	done     chan struct{}
}

type workerHandle struct {
	quit chan struct{}
}

// Server is one running MCFI execution service.
type Server struct {
	cfg   Config
	store *buildstore.Tiered
	disk  *buildstore.Disk // persistent tier, also served at /v1/store
	sched *cluster.Sched[*job]
	start time.Time

	draining atomic.Bool

	// force cancels every in-flight guest when Drain's grace period
	// expires.
	force     context.Context
	forceStop context.CancelFunc

	poolMu  sync.Mutex
	handles []*workerHandle
	workers sync.WaitGroup
	busy    atomic.Int64

	qlat        *cluster.Window    // queue-wait samples (at dequeue)
	completions *cluster.RateMeter // drain rate, powers Retry-After

	scaler     *cluster.Autoscaler
	scalerStop chan struct{}
	scalerDone chan struct{}

	// Cluster routing state (nil/empty outside cluster mode).
	ring        *cluster.Ring
	self        string
	proxyClient *http.Client
	peerMu      sync.Mutex
	peers       map[string]*peerState

	// Observability plane: the sampled trace ring, the CFI audit log,
	// and the latency histograms behind ?format=prom.
	tracer    *obs.Recorder
	audit     *obs.AuditLog
	queueHist *obs.HistVec // by tenant
	buildHist *obs.HistVec // by store tier
	runHist   *obs.HistVec // by engine

	// Metrics counters (lock-free).
	accepted, completed, rejected          atomic.Int64
	tenantRejected                         atomic.Int64
	batches, batchJobs                     atomic.Int64
	proxiedIn, proxiedOut, proxyFallbacks  atomic.Int64
	ok, cfi, faults, timeouts, cancelled   atomic.Int64
	budget, buildErrs                      atomic.Int64
	instret, execNanos                     atomic.Int64
	checkExecs, checkHalts, vHits, vMisses atomic.Int64
	icacheFills                            atomic.Int64
	jitBlocks, jitCompileNanos             atomic.Int64
	jitBlockRuns, jitColdSteps             atomic.Int64
}

// New starts a server's worker pool, assembling the build store from
// the config: always an in-memory tier, plus a disk tier when StoreDir
// is set and a remote tier when RemoteStore is set. It fails when the
// store directory cannot be opened or the cluster config is
// inconsistent. Callers must eventually Drain.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	tiers := []buildstore.Store{buildstore.NewMem(cfg.CacheEntries)}
	var disk *buildstore.Disk
	if cfg.StoreDir != "" {
		d, err := buildstore.OpenDisk(cfg.StoreDir)
		if err != nil {
			return nil, err
		}
		disk = d
		tiers = append(tiers, d)
	}
	if cfg.RemoteStore != "" {
		tiers = append(tiers, buildstore.NewRemote(cfg.RemoteStore, nil, cfg.StoreSecret))
	}

	tenants := make(map[string]cluster.Quota, len(cfg.TenantWeights))
	for name, w := range cfg.TenantWeights {
		tenants[name] = cluster.Quota{Weight: w}
	}
	s := &Server{
		cfg:   cfg,
		store: buildstore.NewTiered(tiers...),
		disk:  disk,
		sched: cluster.NewSched[*job](cluster.SchedConfig{
			TotalQueue: cfg.QueueDepth,
			Default:    cfg.TenantQuota,
			Tenants:    tenants,
		}),
		qlat:        cluster.NewWindow(1024),
		completions: cluster.NewRateMeter(512, 10*time.Second),
		start:       time.Now(),
		tracer:      obs.NewRecorder(cfg.TraceSample, cfg.TraceBuffer),
		audit:       obs.NewAuditLog(cfg.AuditBuffer, cfg.AuditSink),
		queueHist:   obs.NewHistVec(nil),
		buildHist:   obs.NewHistVec(nil),
		runHist:     obs.NewHistVec(nil),
	}
	s.force, s.forceStop = context.WithCancel(context.Background())

	if len(cfg.Peers) > 0 {
		self := normalizeURL(cfg.Self)
		if self == "" {
			s.store.Close()
			return nil, fmt.Errorf("server: Peers set but Self empty (each replica must know its own base URL)")
		}
		peers := make([]string, 0, len(cfg.Peers)+1)
		seen := map[string]bool{}
		for _, p := range append([]string{self}, cfg.Peers...) {
			if u := normalizeURL(p); u != "" && !seen[u] {
				seen[u] = true
				peers = append(peers, u)
			}
		}
		s.self = self
		s.ring = cluster.NewRing(cfg.VNodes, peers...)
		s.peers = make(map[string]*peerState, len(peers))
		for _, p := range peers {
			if p != self {
				s.peers[p] = &peerState{}
			}
		}
		s.proxyClient = &http.Client{Timeout: cfg.ProxyTimeout}
	}

	s.resize(cfg.WorkersMin)
	if cfg.WorkersMax > cfg.WorkersMin {
		s.scaler = cluster.NewAutoscaler(cluster.AutoscaleConfig{
			Min: cfg.WorkersMin, Max: cfg.WorkersMax,
			TargetP95: cfg.AutoscaleTarget,
		})
		s.scalerStop = make(chan struct{})
		s.scalerDone = make(chan struct{})
		go func() {
			defer close(s.scalerDone)
			s.scaler.Run(s.scalerStop,
				func() cluster.Sample {
					return cluster.Sample{
						P95:   s.qlat.Quantiles(0.95)[0],
						Depth: s.sched.Queued(),
						Busy:  int(s.busy.Load()),
					}
				},
				s.Workers,
				func(n int) { s.resize(n) },
			)
		}()
	}
	return s, nil
}

func normalizeURL(u string) string { return strings.TrimRight(strings.TrimSpace(u), "/") }

// Store exposes the server's build store (metrics, tests, warm-up).
func (s *Server) Store() *buildstore.Tiered { return s.store }

// Workers reports the current pool width.
func (s *Server) Workers() int {
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	return len(s.handles)
}

// resize grows or shrinks the pool to n workers. Shrinking signals
// the newest workers to exit after their current job; their queued
// work stays with the survivors.
func (s *Server) resize(n int) {
	if n < 1 {
		n = 1
	}
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	for len(s.handles) < n {
		h := &workerHandle{quit: make(chan struct{})}
		s.handles = append(s.handles, h)
		s.workers.Add(1)
		go s.worker(h)
	}
	for len(s.handles) > n {
		h := s.handles[len(s.handles)-1]
		s.handles = s.handles[:len(s.handles)-1]
		close(h.quit)
	}
}

// newJob resolves a request's effective limits and tenant.
func (s *Server) newJob(ctx context.Context, req JobRequest, proxied bool) *job {
	tenant := req.Tenant
	if tenant == "" {
		tenant = DefaultTenant
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	maxInstr := s.cfg.DefaultMaxInstr
	if req.MaxInstr > 0 {
		maxInstr = req.MaxInstr
	}
	if maxInstr < 0 {
		maxInstr = 0
	}
	return &job{
		req: req, ctx: ctx, tenant: tenant,
		cost: maxInstr, maxInstr: maxInstr, timeout: timeout,
		proxied: proxied, queuedAt: time.Now(), done: make(chan struct{}),
	}
}

// submitJob admits one job through the scheduler, mapping scheduler
// errors to the server's admission errors and counting rejections.
func (s *Server) submitJob(j *job) error {
	s.stampAdmission(j)
	err := s.sched.Submit(j.tenant, j.cost, j)
	switch {
	case err == nil:
		s.accepted.Add(1)
		s.admitSpan(j)
		return nil
	case errors.Is(err, cluster.ErrClosed):
		return ErrDraining
	case errors.Is(err, cluster.ErrQueueFull):
		s.rejected.Add(1)
		return ErrBusy
	default:
		var qe *cluster.QuotaError
		if errors.As(err, &qe) {
			s.tenantRejected.Add(1)
			return fmt.Errorf("%w: %s", ErrTenantBusy, qe.Reason)
		}
		return err
	}
}

// Submit admits a job and blocks until it completes. It returns
// ErrBusy/ErrTenantBusy when admission refuses (backpressure) and
// ErrDraining after Drain started; every other outcome (including CFI
// violations and faults) is a JobResult, not an error.
func (s *Server) Submit(ctx context.Context, req JobRequest) (JobResult, error) {
	return s.submit(ctx, req, false)
}

func (s *Server) submit(ctx context.Context, req JobRequest, proxied bool) (JobResult, error) {
	return s.submitTraced(ctx, req, proxied, "")
}

// submitTraced is submit with an ingress-minted (or peer-propagated)
// trace ID; empty mints a fresh one.
func (s *Server) submitTraced(ctx context.Context, req JobRequest, proxied bool, trace string) (JobResult, error) {
	j := s.newJob(ctx, req, proxied)
	j.trace = s.adoptTrace(trace)
	if err := s.submitJob(j); err != nil {
		return JobResult{}, err
	}
	<-j.done
	return j.res, nil
}

// SubmitBatch atomically admits every request (all under one tenant)
// or none, then blocks until all complete. Results are in request
// order. Admission errors mirror Submit's.
func (s *Server) SubmitBatch(ctx context.Context, tenant string, reqs []JobRequest) ([]JobResult, error) {
	jobs, err := s.admitBatch(ctx, tenant, reqs, false)
	if err != nil {
		return nil, err
	}
	results := make([]JobResult, len(jobs))
	for i, j := range jobs {
		<-j.done
		results[i] = j.res
	}
	return results, nil
}

// admitBatch admits all-or-nothing and returns the live jobs.
func (s *Server) admitBatch(ctx context.Context, tenant string, reqs []JobRequest, proxied bool) ([]*job, error) {
	if tenant == "" {
		tenant = DefaultTenant
	}
	jobs := make([]*job, len(reqs))
	costs := make([]int64, len(reqs))
	for i, req := range reqs {
		if req.Tenant != "" && req.Tenant != tenant {
			return nil, fmt.Errorf("batch tenant %q conflicts with job %d tenant %q", tenant, i, req.Tenant)
		}
		req.Tenant = tenant
		jobs[i] = s.newJob(ctx, req, proxied)
		jobs[i].tenant = tenant
		jobs[i].trace = s.adoptTrace("")
		costs[i] = jobs[i].cost
		s.stampAdmission(jobs[i])
	}
	err := s.sched.SubmitBatch(tenant, costs, jobs)
	switch {
	case err == nil:
		s.accepted.Add(int64(len(jobs)))
		s.batches.Add(1)
		s.batchJobs.Add(int64(len(jobs)))
		for _, j := range jobs {
			s.admitSpan(j)
		}
		return jobs, nil
	case errors.Is(err, cluster.ErrClosed):
		return nil, ErrDraining
	case errors.Is(err, cluster.ErrQueueFull):
		s.rejected.Add(int64(len(jobs)))
		return nil, ErrBusy
	default:
		var qe *cluster.QuotaError
		if errors.As(err, &qe) {
			s.tenantRejected.Add(int64(len(jobs)))
			return nil, fmt.Errorf("%w: %s", ErrTenantBusy, qe.Reason)
		}
		return nil, err
	}
}

// Drain stops admission, waits for queued and in-flight jobs to finish,
// and — if ctx expires first — cancels every running guest, then waits
// for the (now prompt) pool shutdown. Always returns with the pool
// stopped.
func (s *Server) Drain(ctx context.Context) {
	if s.draining.Swap(true) {
		s.workers.Wait()
		return
	}
	// Stop the autoscaler first so no resize races the shutdown.
	if s.scalerStop != nil {
		close(s.scalerStop)
		<-s.scalerDone
	}
	// No new admissions; workers exit once the scheduler drains.
	s.sched.Close()
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.forceStop() // cancel in-flight guests
		<-done
	}
	// Pool stopped: release the store (flushes the disk tier's journal
	// handle; the directory stays valid for the next process).
	s.store.Close()
}

// Draining reports whether Drain has started.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) worker(h *workerHandle) {
	defer s.workers.Done()
	for {
		j, ok := s.sched.Next(h.quit)
		if !ok {
			return
		}
		j.wait = time.Since(j.queuedAt)
		s.qlat.Observe(j.wait)
		s.queueHist.Observe(j.tenant, j.wait)
		if !j.admitted.IsZero() {
			s.span(j, obs.SpanQueue, j.admitted, time.Since(j.admitted),
				map[string]string{"tenant": j.tenant})
		}
		s.busy.Add(1)
		j.res = s.runJob(j)
		s.recordResult(j.res)
		s.sched.Done(j.tenant, j.cost)
		s.completions.Observe(time.Now())
		s.busy.Add(-1)
		close(j.done)
	}
}

// retryAfterSecs estimates how long a refused client should wait
// before retrying, from the current backlog over the observed drain
// rate, clamped to [1, 30] seconds.
func (s *Server) retryAfterSecs() int {
	depth := s.sched.Queued()
	rate := s.completions.PerSec(time.Now())
	if rate <= 0 {
		return 2 // cold start: no drain history yet
	}
	secs := int(math.Ceil(float64(depth+1) / rate))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// limitWriter truncates guest output host-side past a byte budget (the
// guest's writes still succeed — a tenant cannot detect or exploit the
// cap).
type limitWriter struct {
	buf []byte
	max int64
}

func (w *limitWriter) Write(p []byte) (int, error) {
	if int64(len(w.buf)) < w.max {
		keep := w.max - int64(len(w.buf))
		if keep > int64(len(p)) {
			keep = int64(len(p))
		}
		w.buf = append(w.buf, p[:keep]...)
	}
	return len(p), nil
}

// resolve turns a request into buildable sources plus the builder for
// its flavor. For the dynamic-linking job kinds it also returns the
// plugin module sources the runtime registers before execution.
func (s *Server) resolve(req JobRequest) (*toolchain.Builder, toolchain.Source, []toolchain.Source, error) {
	var src toolchain.Source
	var plugins []toolchain.Source
	switch req.Kind {
	case "", "run":
		switch {
		case req.Workload != "" && req.Source != "":
			return nil, src, nil, fmt.Errorf("request sets both workload and source")
		case req.Workload != "":
			w, ok := workload.ByName(req.Workload)
			if !ok {
				return nil, src, nil, fmt.Errorf("unknown workload %q", req.Workload)
			}
			src = toolchain.Source{Name: w.Name, Text: w.SourceWithWork(req.Work)}
		case req.Source != "":
			name := req.Name
			if name == "" {
				name = "job"
			}
			src = toolchain.Source{Name: name, Text: req.Source}
		default:
			return nil, src, nil, fmt.Errorf("request needs a workload name or source text")
		}
	case "dlopen", "jitsim":
		if req.Workload != "" || req.Source != "" {
			return nil, src, nil, fmt.Errorf("kind %q synthesizes its own guest; drop workload/source", req.Kind)
		}
		var err error
		src, plugins, err = dynSources(req.Kind, req.Work)
		if err != nil {
			return nil, src, nil, err
		}
	default:
		return nil, src, nil, fmt.Errorf("unknown job kind %q (want run, dlopen, or jitsim)", req.Kind)
	}
	profile := visa.Profile64
	switch req.Profile {
	case 0, 64:
	case 32:
		profile = visa.Profile32
	default:
		return nil, src, nil, fmt.Errorf("unknown profile %d (want 32 or 64)", req.Profile)
	}
	b := toolchain.New(
		toolchain.WithProfile(profile),
		toolchain.WithInstrument(!req.Baseline),
		toolchain.WithJobs(s.cfg.BuildJobs),
		toolchain.WithStore(s.store),
	)
	return b, src, plugins, nil
}

// runJob executes one job end to end: cache-keyed build, bounded run,
// outcome classification. It never panics the worker: a hostile or
// violating guest is torn down inside its own vm.Process.
func (s *Server) runJob(j *job) JobResult {
	res := JobResult{
		QueueMs: ms(j.wait),
		Tenant:  j.tenant,
		Replica: s.self,
		Proxied: j.proxied,
		TraceID: j.trace,
	}
	if err := j.ctx.Err(); err != nil {
		res.Status, res.Error = StatusCancelled, "cancelled before execution"
		return res
	}

	b, src, plugins, err := s.resolve(j.req)
	if err != nil {
		res.Status, res.Error = StatusBuildError, err.Error()
		return res
	}
	engine, err := vm.ParseEngineDefault(j.req.Engine, vm.EngineThreaded)
	if err != nil {
		res.Status, res.Error = StatusBuildError, err.Error()
		return res
	}

	t0 := time.Now()
	img, tier, ph, err := b.BuildTraced(src)
	buildDur := time.Since(t0)
	res.BuildMs = ms(buildDur)
	res.StoreTier = string(tier)
	res.BuildCacheHit = tier != buildstore.TierBuilt
	s.buildHist.Observe(string(tier), buildDur)
	s.span(j, obs.SpanBuild, t0, buildDur, map[string]string{"tier": string(tier)})
	if ph.StoreNs > 0 {
		s.span(j, obs.SpanStore, t0, time.Duration(ph.StoreNs), nil)
	}
	if ph.CompileNs > 0 {
		s.span(j, obs.SpanCompile, t0, time.Duration(ph.CompileNs), nil)
	}
	if ph.LinkNs > 0 {
		s.span(j, obs.SpanLink, t0.Add(buildDur-time.Duration(ph.LinkNs)),
			time.Duration(ph.LinkNs), nil)
	}
	if err != nil {
		res.Status, res.Error = StatusBuildError, err.Error()
		res.Phases = &PhaseSummary{
			AdmissionMs: ms(j.admitDur),
			QueueMs:     res.QueueMs,
			StoreMs:     ms(time.Duration(ph.StoreNs)),
			CompileMs:   ms(time.Duration(ph.CompileNs)),
			LinkMs:      ms(time.Duration(ph.LinkNs)),
		}
		return res
	}

	out := &limitWriter{max: s.cfg.MaxOutputBytes}
	rt, err := mrt.New(img, mrt.Options{Out: out, Engine: engine})
	if err != nil {
		res.Status, res.Error = StatusBuildError, err.Error()
		return res
	}
	// Dynamic job kinds ship plugin modules the guest dlopens — each
	// load is a policy update transaction under serving load.
	for _, ps := range plugins {
		obj, cerr := b.Compile(ps)
		if cerr != nil {
			res.Status, res.Error = StatusBuildError, cerr.Error()
			return res
		}
		rt.RegisterLibrary(obj)
	}

	runCtx, cancel := context.WithTimeout(j.ctx, j.timeout)
	watchDone := make(chan struct{})
	ranDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		select {
		case <-s.force.Done():
			cancel() // drain deadline: stop this guest now
		case <-ranDone:
		}
	}()

	t1 := time.Now()
	code, runErr := rt.RunContext(runCtx, j.maxInstr)
	execDur := time.Since(t1)
	close(ranDone)
	<-watchDone
	cancel()

	res.RunMs = ms(execDur)
	res.Instret = rt.Instret()
	res.Output = string(out.buf)
	if rt.Tables != nil {
		res.Updates = rt.Tables.Updates()
		res.DeltaPublishes, _ = rt.PublishStats()
	}
	s.instret.Add(res.Instret)
	s.execNanos.Add(execDur.Nanoseconds())
	st := rt.CheckStats()
	s.checkExecs.Add(st.Execs)
	s.checkHalts.Add(st.Halts)
	s.vHits.Add(st.VerdictHits)
	s.vMisses.Add(st.VerdictMisses)
	s.icacheFills.Add(st.ICacheFills)
	s.jitBlocks.Add(st.JITBlocks)
	s.jitCompileNanos.Add(st.JITCompileNanos)
	s.jitBlockRuns.Add(st.JITBlockRuns)
	s.jitColdSteps.Add(st.JITColdSteps)
	s.runHist.Observe(engine.String(), execDur)

	var fault *vm.Fault
	switch {
	case runErr == nil:
		res.Status, res.ExitCode = StatusOK, code
	case errors.Is(runErr, vm.ErrCancelled):
		if errors.Is(runCtx.Err(), context.DeadlineExceeded) {
			res.Status = StatusTimeout
			res.Error = fmt.Sprintf("wall-clock timeout after %v", j.timeout)
		} else {
			res.Status, res.Error = StatusCancelled, "cancelled"
		}
	case errors.Is(runErr, vm.ErrBudget):
		res.Status = StatusBudget
		res.Error = runErr.Error()
	case errors.As(runErr, &fault):
		res.Fault = &FaultInfo{Kind: fault.Kind.String(), PC: fault.PC, Msg: fault.Msg}
		if fault.Kind == vm.FaultCFI {
			res.Status = StatusCFI
			s.audit.Emit(obs.AuditRecord{
				Trace:       j.trace,
				Tenant:      j.tenant,
				Replica:     s.self,
				Job:         src.Name,
				Engine:      engine.String(),
				Fingerprint: b.Fingerprint(src),
				PC:          fault.PC,
				Target:      fault.Target,
				Check:       fault.Check.String(),
				Msg:         fault.Msg,
				Instret:     res.Instret,
			})
		} else {
			res.Status = StatusFault
		}
		res.Error = fault.Error()
	default:
		res.Status, res.Error = StatusFault, runErr.Error()
	}
	s.span(j, obs.SpanRun, t1, execDur, map[string]string{
		"engine":         engine.String(),
		"status":         res.Status,
		"instret":        strconv.FormatInt(res.Instret, 10),
		"check_execs":    strconv.FormatInt(st.Execs, 10),
		"check_halts":    strconv.FormatInt(st.Halts, 10),
		"verdict_hits":   strconv.FormatInt(st.VerdictHits, 10),
		"icache_fills":   strconv.FormatInt(st.ICacheFills, 10),
		"jit_blocks":     strconv.FormatInt(st.JITBlocks, 10),
		"jit_block_runs": strconv.FormatInt(st.JITBlockRuns, 10),
	})
	res.Phases = &PhaseSummary{
		AdmissionMs: ms(j.admitDur),
		QueueMs:     res.QueueMs,
		StoreMs:     ms(time.Duration(ph.StoreNs)),
		CompileMs:   ms(time.Duration(ph.CompileNs)),
		LinkMs:      ms(time.Duration(ph.LinkNs)),
		RunMs:       res.RunMs,
	}
	return res
}

func (s *Server) recordResult(res JobResult) {
	s.completed.Add(1)
	switch res.Status {
	case StatusOK:
		s.ok.Add(1)
	case StatusCFI:
		s.cfi.Add(1)
	case StatusFault:
		s.faults.Add(1)
	case StatusTimeout:
		s.timeouts.Add(1)
	case StatusCancelled:
		s.cancelled.Add(1)
	case StatusBudget:
		s.budget.Add(1)
	case StatusBuildError:
		s.buildErrs.Add(1)
	}
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// --- metrics ---

// Metrics is the /metrics document.
type Metrics struct {
	UptimeSecs float64               `json:"uptime_secs"`
	Draining   bool                  `json:"draining"`
	Jobs       JobCounts             `json:"jobs"`
	Queue      QueueState            `json:"queue"`
	Tenants    []cluster.TenantStats `json:"tenants,omitempty"`
	Autoscale  *AutoscaleMetrics     `json:"autoscale,omitempty"`
	Cluster    *ClusterMetrics       `json:"cluster,omitempty"`
	BuildStore buildstore.Metrics    `json:"build_store"`
	Exec       ExecMetrics           `json:"exec"`
	Obs        ObsMetrics            `json:"obs"`
}

// ObsMetrics reports the observability plane's own state: trace
// sampling and retention, and the CFI audit log.
type ObsMetrics struct {
	TraceSampleRate float64 `json:"trace_sample_rate"`
	TracesSampled   int64   `json:"traces_sampled"`
	SpansRecorded   int64   `json:"spans_recorded"`
	TracesEvicted   int64   `json:"traces_evicted"`
	TracesRetained  int     `json:"traces_retained"`
	AuditRecords    int64   `json:"audit_records_total"`
	AuditSinkErrors int64   `json:"audit_sink_errors"`
}

// JobCounts breaks down admission and outcomes.
type JobCounts struct {
	Accepted  int64 `json:"accepted"`
	Completed int64 `json:"completed"`
	Rejected  int64 `json:"rejected"`
	// TenantRejected counts per-tenant quota refusals (a subset of
	// backpressure distinct from shared-queue rejections).
	TenantRejected  int64 `json:"tenant_rejected"`
	Batches         int64 `json:"batches"`
	BatchJobs       int64 `json:"batch_jobs"`
	Ok              int64 `json:"ok"`
	CFIViolations   int64 `json:"cfi_violations"`
	Faults          int64 `json:"faults"`
	Timeouts        int64 `json:"timeouts"`
	Cancelled       int64 `json:"cancelled"`
	BudgetExhausted int64 `json:"budget_exhausted"`
	BuildErrors     int64 `json:"build_errors"`
}

// QueueState reports live backpressure, including queue-latency
// percentiles over the recent sample window (what the autoscaler
// steers on) and the Retry-After estimate 429s currently carry.
type QueueState struct {
	Depth          int     `json:"depth"`
	Capacity       int     `json:"capacity"`
	Workers        int     `json:"workers"`
	Busy           int     `json:"busy"`
	P50Ms          float64 `json:"queue_p50_ms"`
	P95Ms          float64 `json:"queue_p95_ms"`
	P99Ms          float64 `json:"queue_p99_ms"`
	RetryAfterSecs int     `json:"retry_after_secs"`
}

// AutoscaleMetrics reports the worker autoscaler's state.
type AutoscaleMetrics struct {
	Enabled bool `json:"enabled"`
	Workers int  `json:"workers"`
	cluster.AutoscaleStats
}

// PeerStatus is one replica's health as seen from this one.
type PeerStatus struct {
	URL       string `json:"url"`
	Self      bool   `json:"self,omitempty"`
	Up        bool   `json:"up"`
	ProxiedTo int64  `json:"proxied_to,omitempty"`
}

// ClusterMetrics reports fingerprint-routing state.
type ClusterMetrics struct {
	Self           string       `json:"self"`
	VNodes         int          `json:"vnodes"`
	Peers          []PeerStatus `json:"peers"`
	ProxiedIn      int64        `json:"proxied_in"`
	ProxiedOut     int64        `json:"proxied_out"`
	ProxyFallbacks int64        `json:"proxy_fallbacks"`
}

// ExecMetrics aggregates guest execution across all completed jobs.
type ExecMetrics struct {
	GuestInstret  int64   `json:"guest_instret"`
	ExecSecs      float64 `json:"exec_secs"`
	MinstrPerSec  float64 `json:"minstr_per_sec"`
	CheckExecs    int64   `json:"check_execs"`
	CheckHalts    int64   `json:"check_halts"`
	VerdictHits   int64   `json:"verdict_hits"`
	VerdictMisses int64   `json:"verdict_misses"`
	ICacheFills   int64   `json:"icache_fills"`
	// Block-compiler counters, aggregated across jobs that ran the
	// blockjit engine (zero otherwise). JITHotRatio is the fraction of
	// dispatches served by compiled blocks.
	JITBlocks      int64   `json:"jit_blocks_compiled"`
	JITCompileSecs float64 `json:"jit_compile_secs"`
	JITBlockRuns   int64   `json:"jit_block_runs"`
	JITColdSteps   int64   `json:"jit_cold_steps"`
	JITHotRatio    float64 `json:"jit_hot_ratio"`
}

// MetricsSnapshot assembles the live metrics document.
func (s *Server) MetricsSnapshot() Metrics {
	execSecs := float64(s.execNanos.Load()) / 1e9
	instret := s.instret.Load()
	qs := s.qlat.Quantiles(0.50, 0.95, 0.99)
	m := Metrics{
		UptimeSecs: time.Since(s.start).Seconds(),
		Draining:   s.Draining(),
		Jobs: JobCounts{
			Accepted:        s.accepted.Load(),
			Completed:       s.completed.Load(),
			Rejected:        s.rejected.Load(),
			TenantRejected:  s.tenantRejected.Load(),
			Batches:         s.batches.Load(),
			BatchJobs:       s.batchJobs.Load(),
			Ok:              s.ok.Load(),
			CFIViolations:   s.cfi.Load(),
			Faults:          s.faults.Load(),
			Timeouts:        s.timeouts.Load(),
			Cancelled:       s.cancelled.Load(),
			BudgetExhausted: s.budget.Load(),
			BuildErrors:     s.buildErrs.Load(),
		},
		Queue: QueueState{
			Depth:          s.sched.Queued(),
			Capacity:       s.cfg.QueueDepth,
			Workers:        s.Workers(),
			Busy:           int(s.busy.Load()),
			P50Ms:          ms(qs[0]),
			P95Ms:          ms(qs[1]),
			P99Ms:          ms(qs[2]),
			RetryAfterSecs: s.retryAfterSecs(),
		},
		Tenants:    s.sched.Stats(),
		BuildStore: s.store.Metrics(),
		Exec: ExecMetrics{
			GuestInstret:   instret,
			ExecSecs:       execSecs,
			CheckExecs:     s.checkExecs.Load(),
			CheckHalts:     s.checkHalts.Load(),
			VerdictHits:    s.vHits.Load(),
			VerdictMisses:  s.vMisses.Load(),
			ICacheFills:    s.icacheFills.Load(),
			JITBlocks:      s.jitBlocks.Load(),
			JITCompileSecs: float64(s.jitCompileNanos.Load()) / 1e9,
			JITBlockRuns:   s.jitBlockRuns.Load(),
			JITColdSteps:   s.jitColdSteps.Load(),
		},
	}
	am := AutoscaleMetrics{Enabled: s.scaler != nil, Workers: m.Queue.Workers}
	if s.scaler != nil {
		am.AutoscaleStats = s.scaler.Stats()
	} else {
		am.Min, am.Max = s.cfg.WorkersMin, s.cfg.WorkersMax
	}
	m.Autoscale = &am
	if s.ring != nil {
		m.Cluster = s.clusterMetrics()
	}
	ts := s.tracer.Stats()
	m.Obs = ObsMetrics{
		TraceSampleRate: s.tracer.SampleRate(),
		TracesSampled:   ts.Sampled,
		SpansRecorded:   ts.Spans,
		TracesEvicted:   ts.Evicted,
		TracesRetained:  ts.Retained,
		AuditRecords:    s.audit.Total(),
		AuditSinkErrors: s.audit.SinkErrs(),
	}
	if execSecs > 0 {
		m.Exec.MinstrPerSec = float64(instret) / execSecs / 1e6
	}
	if d := m.Exec.JITBlockRuns + m.Exec.JITColdSteps; d > 0 {
		m.Exec.JITHotRatio = float64(m.Exec.JITBlockRuns) / float64(d)
	}
	return m
}

// --- HTTP surface ---

// Handler returns the service mux. The surface is versioned under
// /v1/ — POST /v1/run, POST /v1/batch, GET /v1/healthz, GET
// /v1/metrics, and the store protocol at /v1/store/{key} (GET/HEAD/PUT
// of sealed blobs, backed by the disk tier) — with the original
// unversioned routes kept as aliases so existing clients keep working.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/trace/", s.handleTrace)
	mux.HandleFunc("/v1/audit", s.handleAudit)
	mux.Handle("/v1/store/", s.storeHandler())
	// Legacy (pre-/v1) aliases.
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// storeHandler serves the replica-sharing protocol from the disk tier;
// without one (no -store-dir) there is nothing persistent to share.
// Writes are gated on the shared secret (see Config.StoreSecret):
// without it the surface is read-only, so an open serve port cannot be
// used to publish a hostile artifact under a victim fingerprint.
func (s *Server) storeHandler() http.Handler {
	if s.disk == nil {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "no persistent store configured (start with -store-dir)", http.StatusNotFound)
		})
	}
	return buildstore.Handler(s.disk, s.cfg.StoreSecret)
}

// writeSubmitError maps an admission error onto the HTTP surface,
// attaching Retry-After to backpressure responses so clients know
// when the queue should have drained.
func (s *Server) writeSubmitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrBusy), errors.Is(err, ErrTenantBusy):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs()))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, ErrDraining):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	var req JobRequest
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	routed := r.Header.Get(headerRouted) != ""
	// Trace IDs are minted at ingress and ride the relay hop in
	// X-Mcfi-Trace, so a proxied job keeps one identity end to end.
	trace := r.Header.Get(headerTrace)
	if !routed || trace == "" {
		trace = obs.Mint()
	}
	if !routed && s.ring != nil {
		if owner, ok := s.ownerOf(req); ok && owner != s.self {
			if s.relay(w, r.Context(), owner, "/v1/run", body, trace) {
				return
			}
		}
	}
	if routed {
		s.proxiedIn.Add(1)
	}
	res, err := s.submitTraced(r.Context(), req, routed, trace)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	writeJSON(w, res)
}

// Health is the /v1/healthz body: enough for a load balancer or a
// fleet dashboard to identify the replica without scraping /metrics.
type Health struct {
	Status     string  `json:"status"` // "ok" or "draining"
	Version    string  `json:"version"`
	Replica    string  `json:"replica,omitempty"` // Config.Self in cluster mode
	Engine     string  `json:"engine"`            // default execution engine
	Draining   bool    `json:"draining"`
	UptimeSecs float64 `json:"uptime_secs"`
	Workers    int     `json:"workers"`
}

func (s *Server) health() Health {
	h := Health{
		Status:     "ok",
		Version:    Version,
		Replica:    s.self,
		Engine:     vm.EngineThreaded.String(),
		Draining:   s.Draining(),
		UptimeSecs: time.Since(s.start).Seconds(),
		Workers:    s.Workers(),
	}
	if h.Draining {
		h.Status = "draining"
	}
	return h
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.health()
	w.Header().Set("Content-Type", "application/json")
	if h.Draining {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(s.renderProm())
		return
	}
	writeJSON(w, s.MetricsSnapshot())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
